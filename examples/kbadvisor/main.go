// Kbadvisor demonstrates the knowledge-base workflow of Section 2.3: an
// expert authors a custom pattern with recommendation templates in the
// handler tagging language, saves the knowledge base to JSON, a (possibly
// different) user loads it and routinizes plan checks over a workload,
// getting ranked recommendations adapted to each plan's context.
//
// Run with: go run ./examples/kbadvisor
package main

import (
	"bytes"
	"fmt"
	"log"

	"optimatch"
)

func main() {
	// --- Expert side: author patterns and recommendations. ---
	k := optimatch.CanonicalKB() // the paper's four expert patterns

	// Add a custom organizational rule: TEMP (materialization) feeding a
	// nested loop join is a known anti-pattern in this shop.
	b := optimatch.NewPatternBuilder("temp-into-nljoin",
		"temporary table materialized directly under a nested loop join")
	nl := b.Pop("NLJOIN").Alias("TOP")
	tmp := b.Pop("TEMP").Alias("TMP")
	nl.InnerChild(tmp)
	p, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := k.Add(p, optimatch.Recommendation{
		Title:    "Avoid TEMP on the inner of an NLJOIN",
		Category: "REWRITE",
		Weight:   0.9,
		Template: "Plan builds @TMP (cost @TMP.COST) on the inner side of @TOP; " +
			"consider rewriting so the materialization happens once on the outer side, " +
			"or index its source columns (@TMP(COLUMNS)).",
	}); err != nil {
		log.Fatal(err)
	}

	// Persist: the KB travels as JSON between expert and user.
	var buf bytes.Buffer
	if err := k.Save(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("knowledge base saved: %d entries, %d bytes of JSON\n\n", k.Len(), buf.Len())

	// --- User side: load the KB and routinize plan checks. ---
	loaded, err := optimatch.LoadKB(&buf)
	if err != nil {
		log.Fatal(err)
	}
	w, err := optimatch.GenerateWorkload(optimatch.WorkloadConfig{
		Seed: 11, NumPlans: 60, MinOps: 30, MaxOps: 120,
		InjectA: 6, InjectB: 5, InjectC: 7, InjectD: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng := optimatch.New()
	if err := eng.LoadPlans(w.Plans); err != nil {
		log.Fatal(err)
	}
	reports, err := eng.RunKB(loaded)
	if err != nil {
		log.Fatal(err)
	}

	shown := 0
	for i := range reports {
		r := &reports[i]
		if !r.HasRecommendations() {
			continue
		}
		shown++
		if shown > 4 {
			fmt.Println("...")
			break
		}
		fmt.Printf("=== %s — %s\n", r.Plan.ID, r.Message())
		for j, rec := range r.Recommendations {
			if j == 2 {
				fmt.Println("    ...")
				break
			}
			fmt.Printf("  [%.2f] %s\n      %s\n", rec.Confidence, rec.Recommendation.Title, rec.Text)
		}
	}

	s := optimatch.Summarize(reports)
	fmt.Printf("\nsummary: %d/%d plans received recommendations\n", s.PlansMatched, s.TotalPlans)
	for _, ec := range s.ByEntry {
		fmt.Printf("  %-28s %2d plan(s)  %2d recommendation(s)\n", ec.Name, ec.Plans, ec.Recs)
	}
}
