// Quickstart: load the paper's Figure 1 explain plan, draw it, search it
// for Pattern A (an NLJOIN repeatedly scanning a large inner table) and ask
// the canonical knowledge base for recommendations.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"optimatch"
)

// figure1 is the explain file from the paper's Figure 1 in the OptImatch
// explain format: an NLJOIN whose inner input rescans CUST_DIM (4043 rows)
// for each of the ~19 outer rows.
const figure1 = `OPTIMATCH EXPLAIN FILE

Statement ID:	Q2
Statement:
	SELECT F.SALE_AMT, C.CUST_NAME FROM SALES_FACT F, CUST_DIM C
	WHERE F.CUST_ID = C.CUST_ID AND F.SALE_DATE > '2015-01-01'

Access Plan:
-----------
	Total Cost:		15782.2
	Query Degree:		1

Plan Details:
-------------

	1) RETURN: (Return of Data)
		Cumulative Total Cost:		15782.2
		Cumulative I/O Cost:		1320
		Estimated Cardinality:		19.12

		Input Streams:
		-------------
			1) From Operator #2
				Stream Type:	GENERAL
				Estimated Rows:	19.12

	2) NLJOIN: (Nested Loop Join)
		Cumulative Total Cost:		15771
		Cumulative I/O Cost:		1318
		Estimated Cardinality:		19.12

		Predicates:
		----------
		(Q1.CUST_ID = Q2.CUST_ID)

		Input Streams:
		-------------
			1) From Operator #3
				Stream Type:	OUTER
				Estimated Rows:	19.12
				Columns:	+Q2.SALE_AMT+Q2.CUST_ID

			2) From Operator #5
				Stream Type:	INNER
				Estimated Rows:	4043
				Columns:	+Q1.CUST_NAME+Q1.CUST_ID

	3) FETCH: (Fetch)
		Cumulative Total Cost:		19.12
		Cumulative I/O Cost:		2
		Estimated Cardinality:		19.12

		Input Streams:
		-------------
			1) From Operator #4
				Stream Type:	GENERAL
				Estimated Rows:	19.12

	4) IXSCAN: (Index Scan)
		Cumulative Total Cost:		12.3
		Cumulative I/O Cost:		1
		Estimated Cardinality:		19.12

		Arguments:
		---------
		INDEX: IDX1

		Input Streams:
		-------------
			1) From Object SALES_FACT
				Stream Type:	GENERAL
				Estimated Rows:	1.0E+07

	5) TBSCAN: (Table Scan)
		Cumulative Total Cost:		15771
		Cumulative I/O Cost:		1316
		Estimated Cardinality:		4043

		Input Streams:
		-------------
			1) From Object CUST_DIM
				Stream Type:	GENERAL
				Estimated Rows:	4043
				Columns:	+Q1.CUST_NAME+Q1.CUST_ID

Base Objects:
-------------
	CUST_DIM
		Type:	TABLE
		Cardinality:	4043
		Columns:	CUST_ID,CUST_NAME,REGION

	SALES_FACT
		Type:	TABLE
		Cardinality:	1.0E+07
		Columns:	CUST_ID,SALE_AMT,SALE_DATE

End of Explain
`

func main() {
	eng := optimatch.New()
	plan, err := eng.LoadText(figure1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Loaded plan %s with %d operators (total cost %.1f)\n\n",
		plan.ID, plan.NumOps(), plan.TotalCost)
	fmt.Println(optimatch.RenderPlan(plan))

	// Search for Pattern A: NLJOIN whose inner input is a large table scan.
	matches, err := eng.FindPattern(optimatch.PatternA())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pattern A matches: %d\n", len(matches))
	for _, m := range matches {
		fmt.Println(" ", m.String())
	}

	// Ask the expert knowledge base what to do about it.
	reports, err := eng.RunKB(optimatch.CanonicalKB())
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		fmt.Printf("\nRecommendations for %s (%s):\n", r.Plan.ID, r.Message())
		for _, rec := range r.Recommendations {
			fmt.Printf("  [confidence %.2f] %s\n    %s\n",
				rec.Confidence, rec.Recommendation.Title, rec.Text)
		}
	}
}
