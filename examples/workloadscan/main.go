// Workloadscan demonstrates the paper's motivating scenario: a DBA facing a
// large workload of explain files asks ad-hoc structural questions that
// grep cannot answer, expressed as user-defined patterns:
//
//  1. "Find all queries that might have a spilling hash join below an
//     aggregation and whose cost is more than a constant N" (paper §1).
//  2. "Find queries doing a table scan whose plan total cost is high — what
//     would an index buy us?"
//  3. A raw SPARQL query over the workload's RDF form for everything else.
//
// Run with: go run ./examples/workloadscan
package main

import (
	"fmt"
	"log"

	"optimatch"
)

func main() {
	// Stand-in for a directory of customer explain files: a seeded
	// synthetic workload with known problem injections.
	w, err := optimatch.GenerateWorkload(optimatch.WorkloadConfig{
		Seed:     7,
		NumPlans: 200,
		MinOps:   40,
		MaxOps:   160,
		InjectA:  20, InjectB: 14, InjectC: 22, InjectD: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng := optimatch.New()
	if err := eng.LoadPlans(w.Plans); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Workload loaded: %d plans\n\n", eng.NumPlans())

	// Question 1: hash join below an aggregation, expensive plan.
	b := optimatch.NewPatternBuilder("hsjoin-under-aggregation",
		"hash join somewhere below an aggregation in an expensive plan")
	agg := b.Pop("GRPBY").Alias("AGG")
	join := b.Pop("HSJOIN").Alias("JOIN")
	agg.Descendant(join)
	join.Where("hasTotalCost", ">", 50000)
	p1, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	m1, err := eng.FindPattern(p1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q1: %d occurrence(s) of an expensive HSJOIN below a GRPBY, e.g.:\n", len(m1))
	for i, m := range m1 {
		if i == 3 {
			fmt.Println("  ...")
			break
		}
		fmt.Println(" ", m.String())
	}

	// Question 2: spilling sorts (Pattern D) across the workload — how many
	// queries would benefit from more sort memory?
	m2, err := eng.FindPattern(optimatch.PatternD())
	if err != nil {
		log.Fatal(err)
	}
	plans := map[string]bool{}
	for _, m := range m2 {
		plans[m.Plan.ID] = true
	}
	fmt.Printf("\nQ2: %d plan(s) contain a spilling SORT (injected: %d)\n",
		len(plans), w.Truth.Count("D"))

	// Question 3: raw SPARQL — table scans over tables bigger than 1e6 rows,
	// with the table name in the projection.
	query := `
PREFIX preduri: <http://optimatch/pred/>
SELECT ?scan AS ?SCAN ?obj AS ?TABLE
WHERE {
  ?scan preduri:hasPopType "TBSCAN" .
  ?scan preduri:hasChildPop ?obj .
  ?obj preduri:isABaseObj ?h1 .
  ?obj preduri:hasEstimateCardinality ?card .
  FILTER(?card > 1000000) .
}
ORDER BY ?scan`
	m3, err := eng.FindSPARQL(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ3: %d full scan(s) of tables above one million rows, e.g.:\n", len(m3))
	for i, m := range m3 {
		if i == 3 {
			fmt.Println("  ...")
			break
		}
		fmt.Println(" ", m.String())
	}

	// Question 4: per-plan analytics with SPARQL aggregation — the top
	// operator types of the most expensive plan, by total self-cost.
	var costliest *optimatch.Plan
	for _, p := range w.Plans {
		if costliest == nil || p.TotalCost > costliest.TotalCost {
			costliest = p
		}
	}
	aggQuery := `
PREFIX preduri: <http://optimatch/pred/>
SELECT ?t (COUNT(?op) AS ?n) (SUM(?self) AS ?selfCost)
WHERE {
  ?op preduri:hasPopType ?t .
  ?op preduri:hasTotalCostIncrease ?self .
  ?op preduri:hasOperatorNumber ?num .
}
GROUP BY ?t
HAVING (SUM(?self) > 0)
ORDER BY DESC(SUM(?self))
LIMIT 5`
	eng4 := optimatch.New()
	if err := eng4.LoadPlans([]*optimatch.Plan{costliest}); err != nil {
		log.Fatal(err)
	}
	m4, err := eng4.FindSPARQL(aggQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ4: costliest plan %s (cost %.0f) — operator types by own cost:\n",
		costliest.ID, costliest.TotalCost)
	for _, m := range m4 {
		fmt.Printf("  %-8s x%-4s self-cost %s\n",
			m.Binding("t").Display, m.Binding("n").Display, m.Binding("selfCost").Display)
	}
}
