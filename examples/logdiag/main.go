// Logdiag demonstrates the paper's Section 5 generalization: the
// transform-to-RDF / match-with-SPARQL methodology applied to a diagnostic
// domain other than query plans — here, application log data relating to
// network usage. Events become resources, their fields become predicates,
// causal links become relationships, and a "problem pattern" is again a
// graph query: find a request whose retry chain crosses three hops and ends
// in a timeout on a different host than it started on.
//
// Run with: go run ./examples/logdiag
package main

import (
	"fmt"
	"log"

	"optimatch"
)

// event is one parsed log record of the (synthetic) diagnostic artifact.
type event struct {
	id      string
	kind    string // REQUEST, RETRY, TIMEOUT, RESPONSE
	host    string
	latency float64 // milliseconds
	caused  string  // id of the event this one caused, "" for terminal events
}

// A synthetic log: request r1 retries across hosts and times out; request
// r2 completes normally.
var events = []event{
	{"e1", "REQUEST", "host-a", 12, "e2"},
	{"e2", "RETRY", "host-a", 250, "e3"},
	{"e3", "RETRY", "host-b", 260, "e4"},
	{"e4", "RETRY", "host-b", 270, "e5"},
	{"e5", "TIMEOUT", "host-c", 5000, ""},
	{"e6", "REQUEST", "host-a", 10, "e7"},
	{"e7", "RESPONSE", "host-a", 35, ""},
}

const ns = "http://optimatch/logdiag/"

func main() {
	// Transform the diagnostic data into an RDF graph — the log-domain
	// analogue of Algorithm 1.
	g := optimatch.NewGraph()
	for _, e := range events {
		node := optimatch.IRI(ns + "event/" + e.id)
		g.Add(node, optimatch.IRI(ns+"hasKind"), optimatch.Lit(e.kind))
		g.Add(node, optimatch.IRI(ns+"hasHost"), optimatch.Lit(e.host))
		g.Add(node, optimatch.IRI(ns+"hasLatencyMs"), optimatch.Num(e.latency))
		if e.caused != "" {
			g.Add(node, optimatch.IRI(ns+"caused"), optimatch.IRI(ns+"event/"+e.caused))
		}
	}
	fmt.Printf("log transformed into %d triples\n\n", g.Len())

	// The problem pattern, as SPARQL with a recursive property path: a
	// REQUEST whose causal chain (one or more hops) reaches a TIMEOUT on a
	// different host, with total chain latency above 1000 ms somewhere.
	query := `
PREFIX lg: <http://optimatch/logdiag/>
SELECT ?req AS ?REQUEST ?to AS ?TIMEOUT ?h1 AS ?FROMHOST ?h2 AS ?TOHOST
WHERE {
  ?req lg:hasKind "REQUEST" .
  ?req lg:caused+ ?to .
  ?to lg:hasKind "TIMEOUT" .
  ?req lg:hasHost ?h1 .
  ?to lg:hasHost ?h2 .
  ?to lg:hasLatencyMs ?lat .
  FILTER(?h1 != ?h2 && ?lat > 1000) .
}
ORDER BY ?req`
	res, err := optimatch.Query(g, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-host timeout chains found: %d\n", res.Len())
	for i := 0; i < res.Len(); i++ {
		fmt.Printf("  request %s (on %s) -> timeout %s (on %s)\n",
			res.Get(i, "REQUEST").Value, res.Get(i, "FROMHOST").Value,
			res.Get(i, "TIMEOUT").Value, res.Get(i, "TOHOST").Value)
	}

	// Count retries along the way — another ad-hoc question, no new code.
	res2, err := optimatch.Query(g, `
PREFIX lg: <http://optimatch/logdiag/>
SELECT DISTINCT ?r WHERE { ?r lg:hasKind "RETRY" . ?r lg:hasLatencyMs ?l . FILTER(?l >= 250) }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nslow retries (>= 250 ms): %d\n", res2.Len())
}
