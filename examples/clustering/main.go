// Clustering demonstrates the last motivating scenario of the paper's
// introduction: "Perform cost based clustering and correlate results of
// applying expert patterns to each cluster." The workload is grouped into
// cost-based clusters, each expert pattern is matched workload-wide, and
// per-cluster match rates and lifts show which kind of queries each problem
// concentrates in.
//
// Run with: go run ./examples/clustering
package main

import (
	"fmt"
	"log"

	"optimatch"
)

func main() {
	w, err := optimatch.GenerateWorkload(optimatch.WorkloadConfig{
		Seed: 21, NumPlans: 240, MinOps: 20, MaxOps: 220, Bimodal: true,
		InjectA: 30, InjectB: 18, InjectC: 28, InjectD: 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng := optimatch.New()
	if err := eng.LoadPlans(w.Plans); err != nil {
		log.Fatal(err)
	}

	const k = 4
	clusters, err := optimatch.ClusterWorkload(w.Plans, k, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload of %d plans grouped into %d cost-based clusters:\n", len(w.Plans), k)
	for c, cl := range clusters.Clusters {
		fmt.Printf("  cluster %d: %3d plans\n", c, len(cl.PlanIDs))
	}

	patterns := map[string]*optimatch.Pattern{
		"A (nljoin/table scan)": optimatch.PatternA(),
		"B (LOJ both sides)":    optimatch.PatternB(),
		"C (card collapse)":     optimatch.PatternC(),
		"D (sort spill)":        optimatch.PatternD(),
	}
	names := []string{"A (nljoin/table scan)", "B (LOJ both sides)", "C (card collapse)", "D (sort spill)"}

	fmt.Printf("\n%-24s %8s", "pattern", "overall")
	for c := 0; c < k; c++ {
		fmt.Printf("  c%d rate (lift)", c)
	}
	fmt.Println()
	for _, name := range names {
		matches, err := eng.FindPattern(patterns[name])
		if err != nil {
			log.Fatal(err)
		}
		pc := optimatch.CorrelateMatches(clusters, name, matches, len(w.Plans))
		fmt.Printf("%-24s %7.0f%%", name, pc.Overall*100)
		for c := 0; c < k; c++ {
			fmt.Printf("  %5.0f%% (%.1fx)", pc.Rate[c]*100, pc.Lift[c])
		}
		fmt.Println()
	}
	fmt.Println("\nlift > 1 means the problem concentrates in that cluster;")
	fmt.Println("a DBA can focus tuning effort on the cluster with the highest lift.")
}
