// Package optimatch is a from-scratch, stdlib-only reproduction of the
// OptImatch system (Damasio, Szlichta, Mierzejewski, Zuzarte: "Query
// Performance Problem Determination with Knowledge Base in Semantic Web
// System OptImatch", EDBT 2016): query performance problem determination
// over DB2-style query execution plans via RDF transformation, SPARQL
// pattern matching and a knowledge base of expert recommendations.
//
// The typical flow:
//
//	eng := optimatch.New()
//	plan, err := eng.LoadText(explainText) // parse + transform to RDF
//	matches, err := eng.FindPattern(optimatch.PatternA())
//	reports, err := eng.RunKB(optimatch.CanonicalKB())
//
// Custom patterns are built fluently (the programmatic equivalent of the
// paper's GUI pattern builder):
//
//	b := optimatch.NewPatternBuilder("my-pattern", "expensive sort over join")
//	srt := b.Pop("SORT")
//	j := b.Pop(optimatch.TypeJoin)
//	srt.Descendant(j)
//	srt.Where("hasTotalCost", ">", 10000)
//	p, err := b.Build()
//
// or decoded from the JSON form of the paper's Figure 5 via ParsePatternJSON.
//
// This package is a thin facade: the implementation lives in the internal
// packages (rdf, sparql, qep, transform, pattern, kb, workload, core), each
// documented independently.
package optimatch

import (
	"io"

	"optimatch/internal/cluster"
	"optimatch/internal/core"
	"optimatch/internal/kb"
	"optimatch/internal/pattern"
	"optimatch/internal/qep"
	"optimatch/internal/rdf"
	"optimatch/internal/sparql"
	"optimatch/internal/workload"
)

// Engine loads query execution plans and matches patterns against them.
type Engine = core.Engine

// Match is one pattern occurrence in one plan with de-transformed bindings.
type Match = core.Match

// Binding is one result-handler binding of a match.
type Binding = core.Binding

// PlanReport is the knowledge-base outcome for one plan.
type PlanReport = core.PlanReport

// WorkloadSummary aggregates a knowledge-base run over a workload.
type WorkloadSummary = core.WorkloadSummary

// Option configures an Engine.
type Option = core.Option

// New creates an engine. Use WithWorkers to bound matcher parallelism.
func New(opts ...Option) *Engine { return core.New(opts...) }

// WithWorkers bounds the engine's parallelism.
func WithWorkers(n int) Option { return core.WithWorkers(n) }

// Summarize aggregates knowledge-base reports.
func Summarize(reports []PlanReport) WorkloadSummary { return core.Summarize(reports) }

// NoRecommendation is reported for plans no knowledge-base entry matches.
const NoRecommendation = core.NoRecommendation

// Plan is a parsed query execution plan (a tree of LOLEPOPs).
type Plan = qep.Plan

// Operator is one LOLEPOP of a plan.
type Operator = qep.Operator

// BaseObject is a table or index referenced by a plan.
type BaseObject = qep.BaseObject

// ParsePlan parses explain text in the OptImatch explain format.
func ParsePlan(text string) (*Plan, error) { return qep.Parse(text) }

// RenderPlan draws the classic ASCII plan graph (the paper's Figure 1).
func RenderPlan(p *Plan) string { return qep.Render(p) }

// ParsePlanGraph parses a Figure-1-style ASCII plan graph back into a
// (structural) plan — the inverse of RenderPlan. Useful for pasting plan
// snippets from papers, tickets or terminal captures.
func ParsePlanGraph(id, text string) (*Plan, error) { return qep.ParseGraph(id, text) }

// WritePlan serializes a plan back to explain text.
func WritePlan(w io.Writer, p *Plan) error { return qep.Write(w, p) }

// Pattern is a problem pattern (the paper's Figure 5 JSON object).
type Pattern = pattern.Pattern

// PatternBuilder builds patterns fluently.
type PatternBuilder = pattern.Builder

// CompiledPattern is a pattern compiled to SPARQL with its handler table.
type CompiledPattern = pattern.Compiled

// Pseudo operator types usable in patterns.
const (
	TypeAny     = pattern.TypeAny
	TypeJoin    = pattern.TypeJoin
	TypeScan    = pattern.TypeScan
	TypeBaseObj = pattern.TypeBaseObj
)

// NewPatternBuilder starts a fluent pattern definition.
func NewPatternBuilder(name, description string) *PatternBuilder {
	return pattern.NewBuilder(name, description)
}

// ParsePatternJSON decodes a pattern from its JSON (Figure 5) form.
func ParsePatternJSON(data []byte) (*Pattern, error) { return pattern.FromJSON(data) }

// CompilePattern translates a pattern into an executable SPARQL query
// through handlers (the paper's Algorithm 2 / Figure 6).
func CompilePattern(p *Pattern) (*CompiledPattern, error) { return pattern.Compile(p) }

// The paper's canonical expert patterns plus the motivating-scenario
// extensions.
var (
	PatternA = pattern.A // NLJOIN over a large inner table scan
	PatternB = pattern.B // join of two left-outer-join subtrees
	PatternC = pattern.C // scan with collapsed cardinality estimate
	PatternD = pattern.D // spilling SORT
	PatternE = pattern.E // materialized subquery above 50% of plan cost
	PatternF = pattern.F // shared common subexpression (multi-consumer TEMP)
)

// KnowledgeBase is a library of expert patterns and recommendations.
type KnowledgeBase = kb.KnowledgeBase

// KBEntry is one knowledge-base record.
type KBEntry = kb.Entry

// Recommendation is an expert remedy written in the handler tagging
// language (templates with @ALIAS tags).
type Recommendation = kb.Recommendation

// Ranked is a context-adapted, confidence-scored recommendation.
type Ranked = kb.Ranked

// NewKB returns an empty knowledge base.
func NewKB() *KnowledgeBase { return kb.New() }

// CanonicalKB returns a knowledge base populated with the paper's four
// expert patterns and their recommendations.
func CanonicalKB() *KnowledgeBase { return kb.MustCanonical() }

// ExtendedKB returns CanonicalKB plus entries for the expensive-subquery
// and shared-common-subexpression patterns (E and F).
func ExtendedKB() *KnowledgeBase { return kb.MustExtended() }

// LoadKB reads a knowledge base saved with (*KnowledgeBase).Save.
func LoadKB(r io.Reader) (*KnowledgeBase, error) { return kb.Load(r) }

// WorkloadConfig controls synthetic workload generation (the stand-in for
// the paper's proprietary IBM customer workload; see DESIGN.md).
type WorkloadConfig = workload.Config

// Workload is a generated plan set with pattern-injection ground truth.
type Workload = workload.Workload

// GenerateWorkload builds a deterministic synthetic workload.
func GenerateWorkload(cfg WorkloadConfig) (*Workload, error) { return workload.Generate(cfg) }

// ClusterResult is a cost-based clustering of a workload.
type ClusterResult = cluster.Result

// PatternCorrelation reports how a pattern's matches distribute over the
// clusters (the paper's "perform cost based clustering and correlate
// results of applying expert patterns to each cluster", Section 1.1).
type PatternCorrelation = cluster.PatternCorrelation

// ClusterWorkload groups plans into k cost-based clusters (deterministic
// k-means over log-cost/size/operator-mix features).
func ClusterWorkload(plans []*Plan, k int, seed int64) (*ClusterResult, error) {
	return cluster.KMeans(plans, k, seed)
}

// CorrelateMatches computes per-cluster match rates and lifts for a set of
// pattern matches.
func CorrelateMatches(res *ClusterResult, patternName string, matches []Match, totalPlans int) PatternCorrelation {
	matched := make(map[string]bool, len(matches))
	for _, m := range matches {
		matched[m.Plan.ID] = true
	}
	return cluster.Correlate(res, patternName, matched, totalPlans)
}

// --- Generic diagnostic data (paper Section 5) ---
//
// The paper's methodology applies to any machine-generated diagnostic data
// that lends itself to a property-graph representation: log data, debug
// traces, sensor streams. The RDF store and SPARQL engine underneath
// OptImatch are exposed here so other diagnostic domains can transform
// their artifacts and reuse the same pattern matching (see
// examples/logdiag).

// Graph is an in-memory RDF graph: a dictionary-encoded triple store with
// SPO/POS/OSP indexes.
type Graph = rdf.Graph

// Term is an RDF term (IRI, blank node or literal).
type Term = rdf.Term

// Triple is one RDF statement.
type Triple = rdf.Triple

// QueryResults is a SPARQL solution table.
type QueryResults = sparql.Results

// NewGraph returns an empty RDF graph.
func NewGraph() *Graph { return rdf.NewGraph() }

// IRI, Blank, Lit and Num construct RDF terms for custom diagnostic graphs.
func IRI(iri string) Term     { return rdf.IRI(iri) }
func Blank(label string) Term { return rdf.Blank(label) }
func Lit(s string) Term       { return rdf.String(s) }
func Num(f float64) Term      { return rdf.Float(f) }
func BoolTerm(b bool) Term    { return rdf.Bool(b) }

// Query parses and executes a SPARQL query against a graph.
func Query(g *Graph, query string) (*QueryResults, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	return q.Exec(g)
}

// WriteNTriples serializes a graph in N-Triples form; ReadNTriples parses
// it back.
func WriteNTriples(w io.Writer, g *Graph) error { return rdf.WriteNTriples(w, g) }

// ReadNTriples parses N-Triples statements into a fresh graph.
func ReadNTriples(r io.Reader) (*Graph, error) { return rdf.ParseNTriples(r) }
