package sparql

import (
	"testing"

	"optimatch/internal/rdf"
)

// analyze parses the query and returns its static analysis.
func analyze(t *testing.T, query string) *Analysis {
	t.Helper()
	q, err := Parse(query)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return q.Analysis()
}

func requiredSet(a *Analysis) map[rdf.Term]bool {
	m := make(map[rdf.Term]bool, len(a.Required))
	for _, t := range a.Required {
		m[t] = true
	}
	return m
}

func constSet(a *Analysis) map[rdf.Term]bool {
	m := make(map[rdf.Term]bool, len(a.Consts))
	for _, t := range a.Consts {
		m[t] = true
	}
	return m
}

const predIRI = "http://optimatch/pred/"

func TestAnalysisBGPConstants(t *testing.T) {
	a := analyze(t, predPrefix+`
SELECT ?pop WHERE {
  ?pop pred:hasPopType "TBSCAN" .
  ?pop pred:hasEstimateCardinality ?card .
}`)
	req := requiredSet(a)
	for _, want := range []rdf.Term{
		rdf.String("TBSCAN"),
		rdf.IRI(predIRI + "hasPopType"),
		rdf.IRI(predIRI + "hasEstimateCardinality"),
	} {
		if !req[want] {
			t.Errorf("required set misses %v", want)
		}
	}
	if len(a.Required) != 3 {
		t.Errorf("Required = %v, want 3 terms", a.Required)
	}
}

func TestAnalysisOptionalNotRequired(t *testing.T) {
	a := analyze(t, predPrefix+`
SELECT ?pop WHERE {
  ?pop pred:hasPopType ?t .
  OPTIONAL { ?pop pred:hasJoinType "LEFT_OUTER" }
}`)
	req := requiredSet(a)
	if req[rdf.String("LEFT_OUTER")] || req[rdf.IRI(predIRI+"hasJoinType")] {
		t.Errorf("OPTIONAL constants must not be required: %v", a.Required)
	}
	// ... but they are still registered for one-shot ID resolution.
	consts := constSet(a)
	if !consts[rdf.String("LEFT_OUTER")] || !consts[rdf.IRI(predIRI+"hasJoinType")] {
		t.Errorf("OPTIONAL constants missing from Consts: %v", a.Consts)
	}
}

func TestAnalysisUnionIntersection(t *testing.T) {
	a := analyze(t, predPrefix+`
SELECT ?pop WHERE {
  { ?pop pred:hasPopType "HSJOIN" . ?pop pred:hasJoinType "INNER" }
  UNION
  { ?pop pred:hasPopType "NLJOIN" . ?pop pred:hasJoinType "INNER" }
}`)
	req := requiredSet(a)
	if req[rdf.String("HSJOIN")] || req[rdf.String("NLJOIN")] {
		t.Errorf("branch-local constants must not be required: %v", a.Required)
	}
	// Common to both branches: the two predicates and "INNER".
	for _, want := range []rdf.Term{
		rdf.IRI(predIRI + "hasPopType"),
		rdf.IRI(predIRI + "hasJoinType"),
		rdf.String("INNER"),
	} {
		if !req[want] {
			t.Errorf("required set misses union-common term %v", want)
		}
	}
}

func TestAnalysisPathModifiers(t *testing.T) {
	a := analyze(t, predPrefix+`
SELECT ?a WHERE {
  ?a pred:hasChildPop+ ?b .
  ?a pred:hasOutputStream* ?c .
  ?a pred:hasInputStream? ?d .
}`)
	req := requiredSet(a)
	if !req[rdf.IRI(predIRI+"hasChildPop")] {
		t.Errorf("`+` path predicate must be required: %v", a.Required)
	}
	if req[rdf.IRI(predIRI+"hasOutputStream")] || req[rdf.IRI(predIRI+"hasInputStream")] {
		t.Errorf("`*`/`?` path predicates must not be required: %v", a.Required)
	}
	consts := constSet(a)
	if !consts[rdf.IRI(predIRI+"hasOutputStream")] || !consts[rdf.IRI(predIRI+"hasInputStream")] {
		t.Errorf("all path predicates must be in Consts: %v", a.Consts)
	}
}

func TestAnalysisAltPathIntersection(t *testing.T) {
	a := analyze(t, predPrefix+`
SELECT ?a WHERE {
  ?a (pred:hasOuterInputStream/pred:x)|(pred:hasInnerInputStream/pred:x) ?b .
}`)
	req := requiredSet(a)
	if req[rdf.IRI(predIRI+"hasOuterInputStream")] || req[rdf.IRI(predIRI+"hasInnerInputStream")] {
		t.Errorf("alternation-local predicates must not be required: %v", a.Required)
	}
	if !req[rdf.IRI(predIRI+"x")] {
		t.Errorf("predicate common to all alternatives must be required: %v", a.Required)
	}
}

func TestAnalysisFilterExists(t *testing.T) {
	a := analyze(t, predPrefix+`
SELECT ?pop WHERE {
  ?pop pred:hasPopType ?t .
  FILTER EXISTS { ?pop pred:hasJoinType "LEFT_OUTER" }
  FILTER NOT EXISTS { ?pop pred:hasPopType "TEMP" }
}`)
	req := requiredSet(a)
	if !req[rdf.String("LEFT_OUTER")] {
		t.Errorf("FILTER EXISTS constants must be required: %v", a.Required)
	}
	if req[rdf.String("TEMP")] {
		t.Errorf("FILTER NOT EXISTS constants must not be required: %v", a.Required)
	}
}

func TestRequiredInProbesVocabulary(t *testing.T) {
	g := evalTestGraph()
	have := analyze(t, predPrefix+`SELECT ?p WHERE { ?p pred:hasPopType "TBSCAN" }`)
	if !have.RequiredIn(g) {
		t.Error("RequiredIn = false for a query whose constants are all present")
	}
	miss := analyze(t, predPrefix+`SELECT ?p WHERE { ?p pred:hasPopType "ZZTOP" }`)
	if miss.RequiredIn(g) {
		t.Error("RequiredIn = true despite a literal absent from the vocabulary")
	}
	optional := analyze(t, predPrefix+`
SELECT ?p WHERE { ?p pred:hasPopType ?t . OPTIONAL { ?p pred:hasPopType "ZZTOP" } }`)
	if !optional.RequiredIn(g) {
		t.Error("RequiredIn must ignore constants that appear only under OPTIONAL")
	}
}

// TestSpecializedMatchesLegacy runs a spread of queries with the specialized
// evaluator (default) and the legacy term-space evaluator and requires
// identical results. This keeps the legacy path covered and pins the
// equivalence the ablation benchmarks rely on.
func TestSpecializedMatchesLegacy(t *testing.T) {
	g := evalTestGraph()
	queries := []string{
		`SELECT ?pop WHERE { ?pop pred:hasPopType "TBSCAN" }`,
		`SELECT ?pop ?t WHERE { ?pop pred:hasPopType ?t } ORDER BY ?t ?pop`,
		`SELECT ?type WHERE {
		   ?pop pred:hasPopType ?type .
		   ?pop pred:hasEstimateCardinality ?card .
		   FILTER(?card > 100)
		 } ORDER BY ?type`,
		`SELECT ?pop ?jt WHERE {
		   ?pop pred:hasPopType ?t .
		   OPTIONAL { ?pop pred:hasJoinType ?jt }
		 } ORDER BY ?pop`,
		`SELECT ?pop WHERE {
		   { ?pop pred:hasPopType "TBSCAN" } UNION { ?pop pred:hasPopType "IXSCAN" }
		 } ORDER BY ?pop`,
		`SELECT ?a ?b WHERE { ?a pred:hasChildPop+ ?b } ORDER BY ?a ?b`,
		`SELECT ?a ?b WHERE { ?a (pred:hasOuterInputStream|pred:hasInnerInputStream)/pred:hasInnerInputStream ?b } ORDER BY ?a ?b`,
		`SELECT ?pop WHERE {
		   ?pop pred:hasPopType ?t .
		   FILTER EXISTS { ?pop pred:hasEstimateCardinality ?c }
		 } ORDER BY ?pop`,
		`SELECT ?t (COUNT(?pop) AS ?n) WHERE { ?pop pred:hasPopType ?t } GROUP BY ?t ORDER BY ?t`,
		`SELECT ?pop ?double WHERE {
		   ?pop pred:hasEstimateCardinality ?c .
		   BIND(?c * 2 AS ?double)
		 } ORDER BY ?pop`,
		`SELECT ?pop WHERE { ?pop pred:hasPopType "NO_SUCH_TYPE" }`,
		`SELECT (COUNT(?pop) AS ?n) WHERE { ?pop pred:hasPopType "NO_SUCH_TYPE" }`,
	}
	for _, text := range queries {
		q, err := Parse(predPrefix + text)
		if err != nil {
			t.Fatalf("Parse(%s): %v", text, err)
		}
		fast, err := q.ExecOpts(g, ExecOptions{})
		if err != nil {
			t.Fatalf("specialized Exec(%s): %v", text, err)
		}
		slow, err := q.ExecOpts(g, ExecOptions{DisableSpecialization: true})
		if err != nil {
			t.Fatalf("legacy Exec(%s): %v", text, err)
		}
		if len(fast.Vars) != len(slow.Vars) {
			t.Fatalf("%s: vars %v vs %v", text, fast.Vars, slow.Vars)
		}
		if fast.Len() != slow.Len() {
			t.Fatalf("%s: rows %d (specialized) vs %d (legacy)", text, fast.Len(), slow.Len())
		}
		for i := 0; i < fast.Len(); i++ {
			for c := range fast.Vars {
				if fast.At(i, c) != slow.At(i, c) {
					t.Fatalf("%s: row %d col %s: %v (specialized) vs %v (legacy)",
						text, i, fast.Vars[c], fast.At(i, c), slow.At(i, c))
				}
			}
		}
	}
}
