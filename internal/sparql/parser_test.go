package sparql

import (
	"reflect"
	"strings"
	"testing"

	"optimatch/internal/rdf"
)

func mustParse(t *testing.T, q string) *Query {
	t.Helper()
	parsed, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return parsed
}

func TestParsePrologueAndSelect(t *testing.T) {
	q := mustParse(t, `
PREFIX pred: <http://optimatch/pred/>
SELECT ?a ?b
WHERE { ?a pred:hasPopType ?b . }
`)
	if q.Prefixes["pred"] != "http://optimatch/pred/" {
		t.Errorf("prefix = %q", q.Prefixes["pred"])
	}
	if len(q.Select) != 2 || q.Select[0].Alias != "a" || q.Select[1].Alias != "b" {
		t.Errorf("select = %+v", q.Select)
	}
	if len(q.Where.Elems) != 1 {
		t.Fatalf("where elems = %d", len(q.Where.Elems))
	}
	tp, ok := q.Where.Elems[0].(TriplePattern)
	if !ok {
		t.Fatalf("elem type %T", q.Where.Elems[0])
	}
	pp, ok := tp.P.(PredPath)
	if !ok || pp.IRI != "http://optimatch/pred/hasPopType" {
		t.Errorf("predicate = %#v", tp.P)
	}
}

func TestParseSelectAliases(t *testing.T) {
	// The paper's Figure 6 uses the bare `?pop1 AS ?TOP` alias form.
	q := mustParse(t, `SELECT ?pop1 AS ?TOP ?pop2 AS ?ANY2 ?pop4 AS ?BASE4 WHERE { ?pop1 <p> ?pop2 . ?pop2 <p> ?pop4 }`)
	wantAliases := []string{"TOP", "ANY2", "BASE4"}
	var got []string
	for _, s := range q.Select {
		got = append(got, s.Alias)
	}
	if !reflect.DeepEqual(got, wantAliases) {
		t.Errorf("aliases = %v, want %v", got, wantAliases)
	}
}

func TestParseParenthesizedAlias(t *testing.T) {
	q := mustParse(t, `SELECT (?x AS ?y) (?a + 1 AS ?b) WHERE { ?x <p> ?a }`)
	if q.Select[0].Alias != "y" || q.Select[1].Alias != "b" {
		t.Errorf("aliases = %+v", q.Select)
	}
	if _, ok := q.Select[1].Expr.(ArithExpr); !ok {
		t.Errorf("expected arithmetic expr, got %T", q.Select[1].Expr)
	}
}

func TestParseSelectStar(t *testing.T) {
	q := mustParse(t, `SELECT * WHERE { ?s ?p ?o }`)
	if !q.Star {
		t.Error("Star not set")
	}
}

func TestParseDistinctLimitOffsetOrder(t *testing.T) {
	q := mustParse(t, `SELECT DISTINCT ?s WHERE { ?s <p> ?o } ORDER BY DESC(?o) ?s LIMIT 5 OFFSET 2`)
	if !q.Distinct {
		t.Error("DISTINCT not set")
	}
	if q.Limit != 5 || q.Offset != 2 {
		t.Errorf("limit/offset = %d/%d", q.Limit, q.Offset)
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Errorf("orderBy = %+v", q.OrderBy)
	}
}

func TestParseFilterForms(t *testing.T) {
	q := mustParse(t, `
SELECT ?s WHERE {
  ?s <card> ?c .
  FILTER (?c > 100) .
  FILTER (?c < 1.0E7)
  FILTER REGEX(?s, "JOIN", "i")
}`)
	filters := 0
	for _, el := range q.Where.Elems {
		if _, ok := el.(FilterElem); ok {
			filters++
		}
	}
	if filters != 3 {
		t.Errorf("filters = %d, want 3", filters)
	}
}

func TestParsePropertyPaths(t *testing.T) {
	q := mustParse(t, `PREFIX p: <urn:> SELECT ?a WHERE { ?a (p:x/p:y)+ ?b . ?b ^p:z ?c . ?c p:q|p:r ?d . ?d p:s? ?e }`)
	tps := make([]TriplePattern, 0, 4)
	for _, el := range q.Where.Elems {
		tps = append(tps, el.(TriplePattern))
	}
	if _, ok := tps[0].P.(ModPath); !ok {
		t.Errorf("path 0 = %#v", tps[0].P)
	}
	if mp := tps[0].P.(ModPath); mp.Mod != ModOneOrMore {
		t.Errorf("mod = %c", mp.Mod)
	}
	if _, ok := tps[1].P.(InvPath); !ok {
		t.Errorf("path 1 = %#v", tps[1].P)
	}
	if _, ok := tps[2].P.(AltPath); !ok {
		t.Errorf("path 2 = %#v", tps[2].P)
	}
	if mp, ok := tps[3].P.(ModPath); !ok || mp.Mod != ModZeroOrOne {
		t.Errorf("path 3 = %#v", tps[3].P)
	}
}

func TestParseSemicolonCommaAbbreviations(t *testing.T) {
	q := mustParse(t, `SELECT ?s WHERE { ?s <p> ?a ; <q> ?b , ?c . }`)
	if n := len(q.Where.Elems); n != 3 {
		t.Fatalf("elems = %d, want 3", n)
	}
	for _, el := range q.Where.Elems {
		tp := el.(TriplePattern)
		if tp.S.Var != "s" {
			t.Errorf("subject = %v", tp.S)
		}
	}
}

func TestParseOptionalUnion(t *testing.T) {
	q := mustParse(t, `SELECT ?s WHERE {
  ?s <p> ?o .
  OPTIONAL { ?s <q> ?x }
  { ?s <r> ?y } UNION { ?s <t> ?y }
}`)
	var haveOpt, haveUnion bool
	for _, el := range q.Where.Elems {
		switch el.(type) {
		case OptionalElem:
			haveOpt = true
		case UnionElem:
			haveUnion = true
		}
	}
	if !haveOpt || !haveUnion {
		t.Errorf("haveOpt=%v haveUnion=%v", haveOpt, haveUnion)
	}
}

func TestParseBind(t *testing.T) {
	q := mustParse(t, `SELECT ?t WHERE { ?s <cost> ?c . BIND(?c * 2 AS ?t) }`)
	found := false
	for _, el := range q.Where.Elems {
		if b, ok := el.(BindElem); ok {
			found = true
			if b.Var != "t" {
				t.Errorf("bind var = %q", b.Var)
			}
		}
	}
	if !found {
		t.Error("BIND not parsed")
	}
}

func TestParseLiterals(t *testing.T) {
	q := mustParse(t, `SELECT ?s WHERE {
  ?s <p> "NLJOIN" .
  ?s <q> 100 .
  ?s <r> 0.001 .
  ?s <t> 1.0E7 .
  ?s <u> true .
  ?s <v> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
  ?s <w> -5 .
}`)
	terms := make([]rdf.Term, 0, 7)
	for _, el := range q.Where.Elems {
		terms = append(terms, el.(TriplePattern).O.Term)
	}
	if terms[0] != rdf.String("NLJOIN") {
		t.Errorf("string literal = %v", terms[0])
	}
	if terms[1].Datatype != rdf.XSDInteger {
		t.Errorf("int literal = %v", terms[1])
	}
	if terms[2].Datatype != rdf.XSDDouble || terms[3].Datatype != rdf.XSDDouble {
		t.Errorf("double literals = %v %v", terms[2], terms[3])
	}
	if v, _ := terms[4].Bool(); !v {
		t.Errorf("bool literal = %v", terms[4])
	}
	if terms[5].Value != "42" || terms[5].Datatype != rdf.XSDInteger {
		t.Errorf("typed literal = %v", terms[5])
	}
	if f, _ := terms[6].Float(); f != -5 {
		t.Errorf("negative literal = %v", terms[6])
	}
}

func TestParseBlankNodes(t *testing.T) {
	q := mustParse(t, `SELECT ?s WHERE { ?s <p> _:b1 . _:b1 <q> ?o . ?s <r> [] }`)
	tp0 := q.Where.Elems[0].(TriplePattern)
	tp1 := q.Where.Elems[1].(TriplePattern)
	if tp0.O.Var == "" || tp0.O.Var != tp1.S.Var {
		t.Errorf("blank node label not shared: %q vs %q", tp0.O.Var, tp1.S.Var)
	}
	tp2 := q.Where.Elems[2].(TriplePattern)
	if tp2.O.Var == "" || !strings.HasPrefix(tp2.O.Var, "!") {
		t.Errorf("anon node = %v", tp2.O)
	}
}

func TestParseAKeyword(t *testing.T) {
	q := mustParse(t, `SELECT ?s WHERE { ?s a <Class> }`)
	tp := q.Where.Elems[0].(TriplePattern)
	if pp, ok := tp.P.(PredPath); !ok || pp.IRI != RDFType {
		t.Errorf("a-predicate = %#v", tp.P)
	}
}

func TestParseKeywordCaseInsensitive(t *testing.T) {
	mustParse(t, `select ?s where { ?s <p> ?o } order by ?s limit 1`)
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT WHERE { ?s <p> ?o }`,
		`SELECT ?s`,
		`SELECT ?s WHERE { ?s <p> }`,
		`SELECT ?s WHERE { ?s <p> ?o `,
		`SELECT ?s WHERE { ?s unknown:p ?o }`,
		`SELECT ?s WHERE { ?s <p> ?o } LIMIT x`,
		`SELECT ?s WHERE { ?s <p> ?o } ORDER BY`,
		`SELECT ?s WHERE { FILTER }`,
		`SELECT ?s WHERE { ?s <p> ?o } trailing`,
		`PREFIX p <urn:> SELECT ?s WHERE { ?s <p> ?o }`,
		`SELECT ?s WHERE { ?s <p> "unterminated }`,
		`SELECT ?s WHERE { ?s <p> ?o . FILTER(NOSUCHFN(?o)) }`,
		`SELECT ?s WHERE { ?s <p> ?o . FILTER(REGEX(?o)) }`, // arity
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestPathString(t *testing.T) {
	q := mustParse(t, `PREFIX p: <urn:> SELECT ?a WHERE { ?a (p:x/p:y)+|^p:z ?b }`)
	tp := q.Where.Elems[0].(TriplePattern)
	s := PathString(tp.P)
	for _, want := range []string{"urn:x", "urn:y", "urn:z", "+", "^", "|"} {
		if !strings.Contains(s, want) {
			t.Errorf("PathString %q missing %q", s, want)
		}
	}
}

func TestGroupVars(t *testing.T) {
	q := mustParse(t, `SELECT * WHERE { ?a <p> ?b . OPTIONAL { ?a <q> ?c } { ?a <r> ?d } UNION { ?a <r> ?e } FILTER(?f > 1) BIND(1 AS ?g) }`)
	got := q.Where.Vars()
	want := []string{"a", "b", "c", "d", "e", "f", "g"}
	sortedCopy := func(in []string) []string {
		out := append([]string(nil), in...)
		for i := range out {
			for j := i + 1; j < len(out); j++ {
				if out[j] < out[i] {
					out[i], out[j] = out[j], out[i]
				}
			}
		}
		return out
	}
	if !reflect.DeepEqual(sortedCopy(got), sortedCopy(want)) {
		t.Errorf("Vars = %v, want %v", got, want)
	}
}
