package sparql

import "optimatch/internal/rdf"

// Property-path evaluation. Arbitrary-length paths (`+`, `*`) are the hot
// spot: OptImatch's expert patterns use them to find problem shapes anywhere
// in a QEP tree, so a 1000-plan knowledge-base scan runs thousands of
// closure walks. Two evaluation strategies coexist:
//
//   - The indexed path (default): BFS over per-predicate CSR adjacency
//     snapshots cached on the graph (rdf.Graph.PredCSR), with bitset visited
//     sets and pooled frontier buffers, full closure results memoized per
//     (path, direction, start) for the lifetime of one query evaluation, and
//     walk direction for doubly-bound closures chosen from index
//     cardinalities.
//   - The legacy path (ExecOptions.DisablePathIndex): the seed-era
//     per-start-node BFS over map visited sets, stepping through generic
//     Graph.Match callbacks. Kept verbatim as the ablation baseline.
//
// Both strategies emit identical pair sequences: CSR neighbor lists preserve
// Match's iteration order, the BFS discovers nodes in the same order, and
// the memo replays discovery order — so reports stay byte-identical with
// the index on or off.

// pathEnv carries the graph a property path evaluates against plus the
// per-evaluation acceleration state: an optional memoized predicate-IRI
// resolver, the closure memo, and reusable bitset/frontier buffers. One
// pathEnv lives per query evaluation and is not safe for concurrent use.
type pathEnv struct {
	g    *rdf.Graph
	pred func(iri string) rdf.ID

	// noIndex pins evaluation to the legacy closure path (ablation).
	noIndex bool

	// cancel is the evaluation's cooperative cancellation checkpoint
	// (shared with the evalCtx/specCtx that owns this env; nil means the
	// evaluation cannot be cancelled). Closure BFS walks poll it per
	// frontier expansion so an unanchored walk over a large ID space stops
	// within one stride of the deadline.
	cancel *canceller

	// stats accumulates path-acceleration counters for this evaluation;
	// flushed into ExecOptions.Stats when the evaluation finishes.
	stats PathStats

	// memo caches full closure results per (inner path, direction, start)
	// so a pattern that probes the same closure from many bindings pays for
	// the BFS once.
	memo map[closureKey]*closureSet

	// visitedPool and idPool recycle bitset and frontier buffers across the
	// closures of one evaluation (nested closures pop their own buffers).
	visitedPool [][]uint64
	idPool      [][]rdf.ID
}

// PathStats counts path-acceleration events during one evaluation. Plain
// ints: a pathEnv is single-goroutine; the totals are flushed into the
// atomic EvalStats once per execution.
type PathStats struct {
	CSRBuilds   int64 // CSR adjacency snapshots built on the graph
	CSRHits     int64 // closures served by an already-built snapshot
	MemoHits    int64 // closures replayed from the per-evaluation memo
	MemoMisses  int64 // closures that ran a BFS
	BFSSteps    int64 // edges traversed by closure BFS walks
	BitsetBytes int64 // bytes allocated for visited bitsets (pool misses)
}

// closureKey identifies one memoized closure: the inner path (rendered to
// its canonical SPARQL syntax), the walk direction, and the start node.
type closureKey struct {
	path     string
	backward bool
	start    rdf.ID
}

// closureSet is a memoized closure result: every node reachable from start
// in >= 1 applications of the inner path, in BFS discovery order. The start
// node itself appears in the list iff it is reachable in >= 1 steps (a
// cycle), at the position the cycle was discovered — replaying the list
// therefore reproduces the exact emission sequence of a live BFS.
type closureSet struct {
	reached []rdf.ID
}

func (e *pathEnv) predID(iri string) rdf.ID {
	if e.pred != nil {
		return e.pred(iri)
	}
	return e.g.Dict().Lookup(rdf.IRI(iri))
}

// evalPath emits every (subject, object) pair connected by the property path
// p in graph env.g. A rdf.NoID endpoint is a wildcard; a non-NoID endpoint
// constrains that side. emit returns false to stop the enumeration; evalPath
// returns false when it was stopped early.
//
// Closure paths (`+`, `*`) are evaluated with breadth-first search and set
// semantics (each reachable pair is emitted once per start node), matching
// SPARQL 1.1 arbitrary-length path semantics.
func evalPath(env *pathEnv, p Path, s, o rdf.ID, emit func(s, o rdf.ID) bool) bool {
	g := env.g
	switch p := p.(type) {
	case PredPath:
		pid := env.predID(p.IRI)
		if pid == rdf.NoID {
			return true // predicate absent from graph: zero matches
		}
		cont := true
		g.Match(s, pid, o, func(ms, _, mo rdf.ID) bool {
			if !emit(ms, mo) {
				cont = false
				return false
			}
			return true
		})
		return cont
	case InvPath:
		return evalPath(env, p.Inner, o, s, func(a, b rdf.ID) bool { return emit(b, a) })
	case SeqPath:
		return evalSeq(env, p.Parts, s, o, emit)
	case AltPath:
		for _, alt := range p.Alts {
			if !evalPath(env, alt, s, o, emit) {
				return false
			}
		}
		return true
	case ModPath:
		return evalMod(env, p, s, o, emit)
	default:
		// predVarPath is handled by the evaluator before reaching here.
		panic("sparql: evalPath on unsupported path type")
	}
}

func evalSeq(env *pathEnv, parts []Path, s, o rdf.ID, emit func(s, o rdf.ID) bool) bool {
	if len(parts) == 1 {
		return evalPath(env, parts[0], s, o, emit)
	}
	if s != rdf.NoID || o == rdf.NoID {
		// Evaluate left to right; dedupe (start, mid) pairs so diamond
		// shapes do not explode. With a bound start every pair shares it, so
		// the indexed path dedupes mids on a pooled bitset instead of a map.
		if s != rdf.NoID && !env.noIndex {
			seen := env.getVisited()
			marked := env.getIDs()
			cont := evalPath(env, parts[0], s, rdf.NoID, func(start, mid rdf.ID) bool {
				if bitGet(seen, mid) {
					return true
				}
				bitSet(seen, mid)
				marked = append(marked, mid)
				return evalSeq(env, parts[1:], mid, o, func(_, end rdf.ID) bool {
					return emit(start, end)
				})
			})
			env.putVisited(seen, marked)
			env.putIDs(marked)
			return cont
		}
		seen := make(map[[2]rdf.ID]bool)
		return evalPath(env, parts[0], s, rdf.NoID, func(start, mid rdf.ID) bool {
			key := [2]rdf.ID{start, mid}
			if seen[key] {
				return true
			}
			seen[key] = true
			return evalSeq(env, parts[1:], mid, o, func(_, end rdf.ID) bool {
				return emit(start, end)
			})
		})
	}
	// Only the object side is bound: evaluate right to left. Every pair
	// shares the bound end, so dedupe mids the same way.
	last := parts[len(parts)-1]
	if !env.noIndex {
		seen := env.getVisited()
		marked := env.getIDs()
		cont := evalPath(env, last, rdf.NoID, o, func(mid, end rdf.ID) bool {
			if bitGet(seen, mid) {
				return true
			}
			bitSet(seen, mid)
			marked = append(marked, mid)
			return evalSeq(env, parts[:len(parts)-1], rdf.NoID, mid, func(start, _ rdf.ID) bool {
				return emit(start, end)
			})
		})
		env.putVisited(seen, marked)
		env.putIDs(marked)
		return cont
	}
	seen := make(map[[2]rdf.ID]bool)
	return evalPath(env, last, rdf.NoID, o, func(mid, end rdf.ID) bool {
		key := [2]rdf.ID{mid, end}
		if seen[key] {
			return true
		}
		seen[key] = true
		return evalSeq(env, parts[:len(parts)-1], rdf.NoID, mid, func(start, _ rdf.ID) bool {
			return emit(start, end)
		})
	})
}

func evalMod(env *pathEnv, p ModPath, s, o rdf.ID, emit func(s, o rdf.ID) bool) bool {
	switch p.Mod {
	case ModZeroOrOne:
		// Zero-length component.
		if !emitZeroLength(env, s, o, emit) {
			return false
		}
		// One-step component, skipping pairs the zero-length part already
		// produced (x -> x).
		return evalPath(env, p.Inner, s, o, func(a, b rdf.ID) bool {
			if a == b {
				return true
			}
			return emit(a, b)
		})
	case ModOneOrMore, ModZeroOrMore:
		includeZero := p.Mod == ModZeroOrMore
		switch {
		case s != rdf.NoID && o != rdf.NoID:
			// Both ends bound: at most one pair can come out, so either walk
			// direction is equivalent — pick the one whose first frontier is
			// smaller (index cardinalities). The legacy path keeps the fixed
			// forward rule.
			if closureBackwardCheaper(env, p.Inner, s, o) {
				return closure(env, p.Inner, o, s, includeZero, true, func(a, b rdf.ID) bool {
					return emit(b, a)
				})
			}
			return closure(env, p.Inner, s, o, includeZero, false, emit)
		case s != rdf.NoID:
			return closure(env, p.Inner, s, o, includeZero, false, emit)
		case o != rdf.NoID:
			// Walk backwards from the object.
			return closure(env, p.Inner, o, s, includeZero, true, func(a, b rdf.ID) bool {
				return emit(b, a)
			})
		default:
			// Both ends unbound: run a closure from every node. This is the
			// worst case a deadline must be able to interrupt, so poll the
			// checkpoint between per-start walks as well as inside them.
			for _, start := range env.g.NodeIDs() {
				if env.cancel.check() != nil {
					return false
				}
				if !closure(env, p.Inner, start, rdf.NoID, includeZero, false, emit) {
					return false
				}
			}
			return true
		}
	default:
		panic("sparql: unknown path modifier")
	}
}

// emitZeroLength emits the zero-length pairs for a `?` or `*` path given the
// endpoint bindings.
func emitZeroLength(env *pathEnv, s, o rdf.ID, emit func(s, o rdf.ID) bool) bool {
	switch {
	case s != rdf.NoID && o != rdf.NoID:
		if s == o {
			return emit(s, s)
		}
		return true
	case s != rdf.NoID:
		return emit(s, s)
	case o != rdf.NoID:
		return emit(o, o)
	default:
		for _, n := range env.g.NodeIDs() {
			if env.cancel.check() != nil {
				return false
			}
			if !emit(n, n) {
				return false
			}
		}
		return true
	}
}

// basePred unwraps chains of InvPath around a PredPath. ok is false for any
// other path shape; inverted reports whether the net orientation is
// reversed.
func basePred(p Path) (iri string, inverted bool, ok bool) {
	switch p := p.(type) {
	case PredPath:
		return p.IRI, false, true
	case InvPath:
		iri, inv, ok := basePred(p.Inner)
		return iri, !inv, ok
	}
	return "", false, false
}

// closureBackwardCheaper decides the walk direction for a doubly-bound
// closure: walk backward from o when o's first frontier is smaller than s's.
// Only simple (possibly inverted) predicate paths have usable cardinalities;
// anything else keeps the forward default, as does the ablated configuration.
func closureBackwardCheaper(env *pathEnv, inner Path, s, o rdf.ID) bool {
	if env.noIndex {
		return false
	}
	iri, inverted, ok := basePred(inner)
	if !ok {
		return false
	}
	pid := env.predID(iri)
	if pid == rdf.NoID {
		return false
	}
	fromS, fromO := env.g.Count(s, pid, rdf.NoID), env.g.Count(rdf.NoID, pid, o)
	if inverted {
		fromS, fromO = env.g.Count(rdf.NoID, pid, s), env.g.Count(o, pid, rdf.NoID)
	}
	return fromO < fromS
}

// closure emits the transitive closure of the inner path from start. When
// backward is true the inner path edges are followed in reverse. Pairs
// (start, reached) are emitted once each; when other is non-NoID only the
// matching pair is emitted. includeZero adds the zero-length (start, start)
// pair up front (`*` semantics).
func closure(env *pathEnv, inner Path, start, other rdf.ID, includeZero, backward bool, emit func(s, o rdf.ID) bool) bool {
	if env.cancel.tripped() != nil {
		return false
	}
	if env.noIndex {
		return closureLegacy(env, inner, start, other, includeZero, backward, emit)
	}
	set := env.closureSet(inner, start, backward)
	emittedStart := false
	if includeZero && (other == rdf.NoID || other == start) {
		emittedStart = true
		if !emit(start, start) {
			return false
		}
	}
	for _, to := range set.reached {
		if to == start {
			// The cycle back to the start, at its discovery position.
			if !emittedStart && (other == rdf.NoID || other == start) {
				emittedStart = true
				if !emit(start, start) {
					return false
				}
			}
			continue
		}
		if other == rdf.NoID || other == to {
			if !emit(start, to) {
				return false
			}
		}
	}
	return true
}

// closureSet returns the memoized closure of inner from start, running the
// BFS on a miss. A BFS interrupted by cancellation yields a partial set that
// is NOT memoized: the evaluation is about to fail with the context error,
// and a later evaluation must never replay truncated reachability as truth.
func (env *pathEnv) closureSet(inner Path, start rdf.ID, backward bool) *closureSet {
	key := closureKey{path: PathString(inner), backward: backward, start: start}
	if set, ok := env.memo[key]; ok {
		env.stats.MemoHits++
		return set
	}
	env.stats.MemoMisses++
	set, complete := env.runBFS(inner, start, backward)
	if complete {
		if env.memo == nil {
			env.memo = make(map[closureKey]*closureSet)
		}
		env.memo[key] = set
	}
	return set
}

// runBFS computes the full reachable set of inner from start in the given
// direction: over CSR adjacency slices when the inner path is a (possibly
// inverted) plain predicate, through the generic path evaluator otherwise —
// either way with a pooled bitset visited set and reusable frontiers.
// complete is false when the walk was interrupted by cancellation; the
// returned set is then partial and must not be memoized.
func (env *pathEnv) runBFS(inner Path, start rdf.ID, backward bool) (set *closureSet, complete bool) {
	var csr *rdf.CSR
	useIn := backward
	if iri, inverted, ok := basePred(inner); ok {
		pid := env.predID(iri)
		if pid == rdf.NoID {
			return &closureSet{}, true
		}
		c, built := env.g.PredCSR(pid)
		if built {
			env.stats.CSRBuilds++
		} else {
			env.stats.CSRHits++
		}
		csr = c
		if inverted {
			useIn = !useIn
		}
	}

	visited := env.getVisited()
	frontier := append(env.getIDs(), start)
	next := env.getIDs()
	bitSet(visited, start)

	set = &closureSet{}
	complete = true
	cycled := false
	steps := int64(0)
	visit := func(to rdf.ID) {
		steps++
		if to == start {
			if !cycled {
				cycled = true
				set.reached = append(set.reached, start)
			}
			return
		}
		if bitGet(visited, to) {
			return
		}
		bitSet(visited, to)
		set.reached = append(set.reached, to)
		next = append(next, to)
	}
bfs:
	for len(frontier) > 0 {
		next = next[:0]
		for _, from := range frontier {
			if env.cancel.check() != nil {
				complete = false
				break bfs
			}
			switch {
			case csr != nil && useIn:
				for _, to := range csr.In(from) {
					visit(to)
				}
			case csr != nil:
				for _, to := range csr.Out(from) {
					visit(to)
				}
			case backward:
				evalPath(env, inner, rdf.NoID, from, func(to, _ rdf.ID) bool {
					visit(to)
					return true
				})
			default:
				evalPath(env, inner, from, rdf.NoID, func(_, to rdf.ID) bool {
					visit(to)
					return true
				})
			}
		}
		frontier, next = next, frontier
	}
	env.stats.BFSSteps += steps

	bitClear(visited, start)
	env.putVisited(visited, set.reached)
	env.putIDs(frontier)
	env.putIDs(next)
	return set, complete
}

// closureLegacy is the seed-era closure: per-start map visited set, stepping
// through the generic path evaluator. Kept as the ablation baseline
// (ExecOptions.DisablePathIndex); the only post-seed addition is the
// cooperative cancellation poll, which the ablated configuration needs just
// as much as the indexed one.
func closureLegacy(env *pathEnv, inner Path, start, other rdf.ID, includeZero, backward bool, emit func(s, o rdf.ID) bool) bool {
	// emittedStart tracks whether the (start, start) pair has been produced:
	// by the zero-length component for `*`, or — for `+` — by a cycle back
	// to the start node found during the walk.
	emittedStart := false
	if includeZero {
		if other == rdf.NoID || other == start {
			emittedStart = true
			if !emit(start, start) {
				return false
			}
		}
	}
	visited := map[rdf.ID]bool{start: true}
	frontier := []rdf.ID{start}
	step := func(from rdf.ID, fn func(to rdf.ID) bool) bool {
		if backward {
			return evalPath(env, inner, rdf.NoID, from, func(a, _ rdf.ID) bool { return fn(a) })
		}
		return evalPath(env, inner, from, rdf.NoID, func(_, b rdf.ID) bool { return fn(b) })
	}
	for len(frontier) > 0 {
		var next []rdf.ID
		for _, n := range frontier {
			if env.cancel.check() != nil {
				return false
			}
			stopped := !step(n, func(to rdf.ID) bool {
				if to == start {
					// A cycle back to the start: (start, start) is reachable
					// in >= 1 steps, which the pre-marked visited set would
					// otherwise hide.
					if !emittedStart && (other == rdf.NoID || other == start) {
						emittedStart = true
						if !emit(start, start) {
							return false
						}
					}
					return true
				}
				if visited[to] {
					return true
				}
				visited[to] = true
				next = append(next, to)
				if other == rdf.NoID || other == to {
					if !emit(start, to) {
						return false
					}
				}
				return true
			})
			if stopped {
				return false
			}
		}
		frontier = next
	}
	return true
}

// Bitset helpers. Bit i represents dense term ID i; word 0 bit 0 (NoID) is
// never set.

func bitSet(b []uint64, id rdf.ID)      { b[id>>6] |= 1 << (id & 63) }
func bitClear(b []uint64, id rdf.ID)    { b[id>>6] &^= 1 << (id & 63) }
func bitGet(b []uint64, id rdf.ID) bool { return b[id>>6]&(1<<(id&63)) != 0 }

// getVisited pops (or allocates) a zeroed bitset sized for the graph's ID
// space. Buffers pop from a stack so nested closures never share one.
func (env *pathEnv) getVisited() []uint64 {
	words := int(env.g.MaxID())>>6 + 1
	if k := len(env.visitedPool); k > 0 {
		v := env.visitedPool[k-1]
		env.visitedPool = env.visitedPool[:k-1]
		if len(v) >= words {
			return v
		}
	}
	env.stats.BitsetBytes += int64(words * 8)
	return make([]uint64, words)
}

// putVisited clears the bits recorded in marked and returns the bitset to
// the pool. Clearing by marked list is O(visited nodes), not O(ID space).
func (env *pathEnv) putVisited(v []uint64, marked []rdf.ID) {
	for _, id := range marked {
		bitClear(v, id)
	}
	env.visitedPool = append(env.visitedPool, v)
}

// getIDs pops (or allocates) an empty ID buffer for frontiers and mark
// lists.
func (env *pathEnv) getIDs() []rdf.ID {
	if k := len(env.idPool); k > 0 {
		v := env.idPool[k-1]
		env.idPool = env.idPool[:k-1]
		return v[:0]
	}
	return make([]rdf.ID, 0, 64)
}

func (env *pathEnv) putIDs(v []rdf.ID) {
	env.idPool = append(env.idPool, v)
}
