package sparql

import "optimatch/internal/rdf"

// pathEnv carries the graph a property path evaluates against plus an
// optional predicate-IRI resolver. The specialized evaluator installs a
// memoized resolver so closure walks (which re-resolve the inner predicate
// on every BFS step) hit a per-evaluation cache instead of hashing the IRI
// against the dictionary each time; with a nil resolver the dictionary is
// consulted directly.
type pathEnv struct {
	g    *rdf.Graph
	pred func(iri string) rdf.ID
}

func (e *pathEnv) predID(iri string) rdf.ID {
	if e.pred != nil {
		return e.pred(iri)
	}
	return e.g.Dict().Lookup(rdf.IRI(iri))
}

// evalPath emits every (subject, object) pair connected by the property path
// p in graph env.g. A rdf.NoID endpoint is a wildcard; a non-NoID endpoint
// constrains that side. emit returns false to stop the enumeration; evalPath
// returns false when it was stopped early.
//
// Closure paths (`+`, `*`) are evaluated with breadth-first search and set
// semantics (each reachable pair is emitted once per start node), matching
// SPARQL 1.1 arbitrary-length path semantics.
func evalPath(env *pathEnv, p Path, s, o rdf.ID, emit func(s, o rdf.ID) bool) bool {
	g := env.g
	switch p := p.(type) {
	case PredPath:
		pid := env.predID(p.IRI)
		if pid == rdf.NoID {
			return true // predicate absent from graph: zero matches
		}
		cont := true
		g.Match(s, pid, o, func(ms, _, mo rdf.ID) bool {
			if !emit(ms, mo) {
				cont = false
				return false
			}
			return true
		})
		return cont
	case InvPath:
		return evalPath(env, p.Inner, o, s, func(a, b rdf.ID) bool { return emit(b, a) })
	case SeqPath:
		return evalSeq(env, p.Parts, s, o, emit)
	case AltPath:
		for _, alt := range p.Alts {
			if !evalPath(env, alt, s, o, emit) {
				return false
			}
		}
		return true
	case ModPath:
		return evalMod(env, p, s, o, emit)
	default:
		// predVarPath is handled by the evaluator before reaching here.
		panic("sparql: evalPath on unsupported path type")
	}
}

func evalSeq(env *pathEnv, parts []Path, s, o rdf.ID, emit func(s, o rdf.ID) bool) bool {
	if len(parts) == 1 {
		return evalPath(env, parts[0], s, o, emit)
	}
	if s != rdf.NoID || o == rdf.NoID {
		// Evaluate left to right; dedupe (start, mid) pairs so diamond
		// shapes do not explode.
		seen := make(map[[2]rdf.ID]bool)
		return evalPath(env, parts[0], s, rdf.NoID, func(start, mid rdf.ID) bool {
			key := [2]rdf.ID{start, mid}
			if seen[key] {
				return true
			}
			seen[key] = true
			return evalSeq(env, parts[1:], mid, o, func(_, end rdf.ID) bool {
				return emit(start, end)
			})
		})
	}
	// Only the object side is bound: evaluate right to left.
	last := parts[len(parts)-1]
	seen := make(map[[2]rdf.ID]bool)
	return evalPath(env, last, rdf.NoID, o, func(mid, end rdf.ID) bool {
		key := [2]rdf.ID{mid, end}
		if seen[key] {
			return true
		}
		seen[key] = true
		return evalSeq(env, parts[:len(parts)-1], rdf.NoID, mid, func(start, _ rdf.ID) bool {
			return emit(start, end)
		})
	})
}

func evalMod(env *pathEnv, p ModPath, s, o rdf.ID, emit func(s, o rdf.ID) bool) bool {
	switch p.Mod {
	case ModZeroOrOne:
		// Zero-length component.
		if !emitZeroLength(env.g, s, o, emit) {
			return false
		}
		// One-step component, skipping pairs the zero-length part already
		// produced (x -> x).
		return evalPath(env, p.Inner, s, o, func(a, b rdf.ID) bool {
			if a == b {
				return true
			}
			return emit(a, b)
		})
	case ModOneOrMore, ModZeroOrMore:
		includeZero := p.Mod == ModZeroOrMore
		switch {
		case s != rdf.NoID:
			return closure(env, p.Inner, s, o, includeZero, false, emit)
		case o != rdf.NoID:
			// Walk backwards from the object.
			return closure(env, p.Inner, o, s, includeZero, true, func(a, b rdf.ID) bool {
				return emit(b, a)
			})
		default:
			// Both ends unbound: run a closure from every node.
			for _, start := range allNodes(env.g) {
				if !closure(env, p.Inner, start, rdf.NoID, includeZero, false, emit) {
					return false
				}
			}
			return true
		}
	default:
		panic("sparql: unknown path modifier")
	}
}

// emitZeroLength emits the zero-length pairs for a `?` or `*` path given the
// endpoint bindings.
func emitZeroLength(g *rdf.Graph, s, o rdf.ID, emit func(s, o rdf.ID) bool) bool {
	switch {
	case s != rdf.NoID && o != rdf.NoID:
		if s == o {
			return emit(s, s)
		}
		return true
	case s != rdf.NoID:
		return emit(s, s)
	case o != rdf.NoID:
		return emit(o, o)
	default:
		for _, n := range allNodes(g) {
			if !emit(n, n) {
				return false
			}
		}
		return true
	}
}

// closure runs a BFS over the inner path from start. When backward is true
// the inner path edges are followed in reverse. Pairs (start, reached) are
// emitted once each; when other is non-NoID only the matching pair is
// emitted (but the whole reachable set is still explored until found).
func closure(env *pathEnv, inner Path, start, other rdf.ID, includeZero, backward bool, emit func(s, o rdf.ID) bool) bool {
	// emittedStart tracks whether the (start, start) pair has been produced:
	// by the zero-length component for `*`, or — for `+` — by a cycle back
	// to the start node found during the walk.
	emittedStart := false
	if includeZero {
		if other == rdf.NoID || other == start {
			emittedStart = true
			if !emit(start, start) {
				return false
			}
		}
	}
	visited := map[rdf.ID]bool{start: true}
	frontier := []rdf.ID{start}
	step := func(from rdf.ID, fn func(to rdf.ID) bool) bool {
		if backward {
			return evalPath(env, inner, rdf.NoID, from, func(a, _ rdf.ID) bool { return fn(a) })
		}
		return evalPath(env, inner, from, rdf.NoID, func(_, b rdf.ID) bool { return fn(b) })
	}
	for len(frontier) > 0 {
		var next []rdf.ID
		for _, n := range frontier {
			stopped := !step(n, func(to rdf.ID) bool {
				if to == start {
					// A cycle back to the start: (start, start) is reachable
					// in >= 1 steps, which the pre-marked visited set would
					// otherwise hide.
					if !emittedStart && (other == rdf.NoID || other == start) {
						emittedStart = true
						if !emit(start, start) {
							return false
						}
					}
					return true
				}
				if visited[to] {
					return true
				}
				visited[to] = true
				next = append(next, to)
				if other == rdf.NoID || other == to {
					if !emit(start, to) {
						return false
					}
				}
				return true
			})
			if stopped {
				return false
			}
		}
		frontier = next
	}
	return true
}

// allNodes returns every distinct term ID used as a subject or object.
func allNodes(g *rdf.Graph) []rdf.ID {
	seen := make(map[rdf.ID]bool)
	var out []rdf.ID
	g.Match(rdf.NoID, rdf.NoID, rdf.NoID, func(s, _, o rdf.ID) bool {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
		return true
	})
	return out
}
