// Package sparql implements the subset of the SPARQL query language that
// OptImatch autogenerates from problem patterns, plus generous margins for
// hand-written queries: basic graph patterns, FILTER expressions with the
// standard operator and builtin set, property paths, OPTIONAL, UNION,
// SELECT with aliases and expressions, DISTINCT, ORDER BY, LIMIT and OFFSET.
//
// Queries are parsed into an AST (Query), compiled lightly (BGP join-order
// heuristics run at evaluation time against the target graph's statistics),
// and evaluated against an rdf.Graph.
package sparql

import (
	"strings"

	"optimatch/internal/rdf"
)

// Query is a parsed SELECT query.
type Query struct {
	Prefixes map[string]string
	Distinct bool
	Star     bool // SELECT *
	Select   []SelectItem
	Where    *GroupPattern
	GroupBy  []string   // GROUP BY variables
	Having   Expression // HAVING constraint (nil when absent)
	OrderBy  []OrderKey
	Limit    int // -1 when absent
	Offset   int // 0 when absent

	// analysis memoizes the static query analysis (see Analysis). Parse
	// fills it in so parsed queries can be shared across goroutines.
	analysis *Analysis
}

// SelectItem is one projection: an expression (usually a plain variable)
// with an optional alias.
type SelectItem struct {
	Expr  Expression
	Alias string // result column name; defaults to the variable name
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expression
	Desc bool
}

// GroupPattern is a `{ ... }` group: an ordered list of pattern elements.
type GroupPattern struct {
	Elems []PatternElem
}

// PatternElem is one element inside a group pattern.
type PatternElem interface{ patternElem() }

// TriplePattern matches one triple; the predicate position is a property
// path (a single IRI in the common case).
type TriplePattern struct {
	S NodeRef
	P Path
	O NodeRef
}

// FilterElem is a FILTER constraint.
type FilterElem struct {
	Expr Expression
}

// OptionalElem is an OPTIONAL { ... } group.
type OptionalElem struct {
	Group *GroupPattern
}

// UnionElem is `{A} UNION {B} [UNION {C} ...]`.
type UnionElem struct {
	Branches []*GroupPattern
}

// GroupElem is a nested plain group `{ ... }`.
type GroupElem struct {
	Group *GroupPattern
}

// BindElem is `BIND(expr AS ?var)`.
type BindElem struct {
	Expr Expression
	Var  string
}

// FilterExistsElem is `FILTER EXISTS { ... }` / `FILTER NOT EXISTS { ... }`:
// a solution survives when the inner group has (respectively has no)
// matches under the solution's bindings.
type FilterExistsElem struct {
	Not   bool
	Group *GroupPattern
}

func (TriplePattern) patternElem()    {}
func (FilterElem) patternElem()       {}
func (OptionalElem) patternElem()     {}
func (UnionElem) patternElem()        {}
func (GroupElem) patternElem()        {}
func (BindElem) patternElem()         {}
func (FilterExistsElem) patternElem() {}

// NodeRef is a subject or object position: either a variable or a concrete
// RDF term.
type NodeRef struct {
	Var  string   // non-empty when a variable
	Term rdf.Term // valid when Var == ""
}

// IsVar reports whether the node is a variable reference.
func (n NodeRef) IsVar() bool { return n.Var != "" }

// VarRef returns a variable node.
func VarRef(name string) NodeRef { return NodeRef{Var: name} }

// TermRef returns a concrete-term node.
func TermRef(t rdf.Term) NodeRef { return NodeRef{Term: t} }

// Path is a property path expression in the predicate position.
type Path interface{ pathNode() }

// PredPath is a single predicate IRI, the common case.
type PredPath struct {
	IRI string
}

// InvPath is `^path` (inverse).
type InvPath struct {
	Inner Path
}

// SeqPath is `a/b/...`.
type SeqPath struct {
	Parts []Path
}

// AltPath is `a|b|...`.
type AltPath struct {
	Alts []Path
}

// Path modifiers.
const (
	ModOneOrMore  = '+'
	ModZeroOrMore = '*'
	ModZeroOrOne  = '?'
)

// ModPath is `path+`, `path*` or `path?`.
type ModPath struct {
	Inner Path
	Mod   byte
}

func (PredPath) pathNode() {}
func (InvPath) pathNode()  {}
func (SeqPath) pathNode()  {}
func (AltPath) pathNode()  {}
func (ModPath) pathNode()  {}

// PathString renders a path in SPARQL syntax; used for error messages and
// query round-tripping in tests.
func PathString(p Path) string {
	switch p := p.(type) {
	case PredPath:
		return "<" + p.IRI + ">"
	case InvPath:
		switch p.Inner.(type) {
		case InvPath, ModPath:
			// `^^p` would lex as the literal datatype marker and `^p*`
			// binds the modifier inside the inverse; group to keep the
			// rendered text faithful to the AST.
			return "^(" + PathString(p.Inner) + ")"
		}
		return "^" + PathString(p.Inner)
	case SeqPath:
		parts := make([]string, len(p.Parts))
		for i, sub := range p.Parts {
			parts[i] = PathString(sub)
		}
		return "(" + strings.Join(parts, "/") + ")"
	case AltPath:
		parts := make([]string, len(p.Alts))
		for i, sub := range p.Alts {
			parts[i] = PathString(sub)
		}
		return "(" + strings.Join(parts, "|") + ")"
	case ModPath:
		inner := PathString(p.Inner)
		switch p.Inner.(type) {
		case ModPath, InvPath:
			// `<p>**` does not parse and `^<p>*` would re-associate the
			// modifier under the inverse; a nested prefix/suffix operator
			// needs grouping.
			inner = "(" + inner + ")"
		}
		return inner + string(p.Mod)
	default:
		return "<?>"
	}
}

// Vars returns the distinct variable names mentioned anywhere in the group,
// in first-appearance order. Used for SELECT * expansion.
func (g *GroupPattern) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	add := func(v string) {
		if v != "" && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	var walkGroup func(gr *GroupPattern)
	walkGroup = func(gr *GroupPattern) {
		for _, el := range gr.Elems {
			switch el := el.(type) {
			case TriplePattern:
				add(el.S.Var)
				add(el.O.Var)
			case FilterElem:
				for _, v := range exprVars(el.Expr) {
					add(v)
				}
			case OptionalElem:
				walkGroup(el.Group)
			case UnionElem:
				for _, b := range el.Branches {
					walkGroup(b)
				}
			case GroupElem:
				walkGroup(el.Group)
			case BindElem:
				add(el.Var)
			case FilterExistsElem:
				walkGroup(el.Group)
			}
		}
	}
	walkGroup(g)
	return out
}
