package sparql

import (
	"reflect"
	"testing"

	"optimatch/internal/rdf"
)

// aggTestGraph: operators with types and costs for aggregation queries.
func aggTestGraph() *rdf.Graph {
	g := rdf.NewGraph()
	add := func(id int, typ string, cost float64) {
		node := rdf.IRI(tfmt("pop", id))
		g.Add(node, rdf.IRI("urn:type"), rdf.String(typ))
		g.Add(node, rdf.IRI("urn:cost"), rdf.Float(cost))
	}
	add(1, "TBSCAN", 100)
	add(2, "TBSCAN", 200)
	add(3, "IXSCAN", 50)
	add(4, "NLJOIN", 500)
	add(5, "NLJOIN", 300)
	add(6, "SORT", 80)
	return g
}

func tfmt(prefix string, id int) string {
	return "urn:" + prefix + string(rune('0'+id))
}

func TestAggregateCountStar(t *testing.T) {
	g := aggTestGraph()
	res := execQuery(t, g, `SELECT (COUNT(*) AS ?n) WHERE { ?x <urn:type> ?t }`)
	if res.Len() != 1 {
		t.Fatalf("rows = %d", res.Len())
	}
	if f, _ := res.Get(0, "n").Float(); f != 6 {
		t.Errorf("count = %v", res.Get(0, "n"))
	}
}

func TestAggregateCountEmptyIsZero(t *testing.T) {
	g := aggTestGraph()
	res := execQuery(t, g, `SELECT (COUNT(*) AS ?n) WHERE { ?x <urn:type> "GHOST" }`)
	if res.Len() != 1 {
		t.Fatalf("rows = %d", res.Len())
	}
	if f, _ := res.Get(0, "n").Float(); f != 0 {
		t.Errorf("count over empty = %v", res.Get(0, "n"))
	}
}

func TestAggregateGroupBy(t *testing.T) {
	g := aggTestGraph()
	res := execQuery(t, g, `
SELECT ?t (COUNT(?x) AS ?n) (SUM(?c) AS ?total)
WHERE { ?x <urn:type> ?t . ?x <urn:cost> ?c }
GROUP BY ?t
ORDER BY ?t`)
	if res.Len() != 4 {
		t.Fatalf("groups = %d, want 4\n%v", res.Len(), res.Rows)
	}
	type row struct {
		t     string
		n     float64
		total float64
	}
	var got []row
	for i := 0; i < res.Len(); i++ {
		n, _ := res.Get(i, "n").Float()
		total, _ := res.Get(i, "total").Float()
		got = append(got, row{res.Get(i, "t").Value, n, total})
	}
	want := []row{
		{"IXSCAN", 1, 50},
		{"NLJOIN", 2, 800},
		{"SORT", 1, 80},
		{"TBSCAN", 2, 300},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("groups = %+v, want %+v", got, want)
	}
}

func TestAggregateMinMaxAvg(t *testing.T) {
	g := aggTestGraph()
	res := execQuery(t, g, `
SELECT (MIN(?c) AS ?lo) (MAX(?c) AS ?hi) (AVG(?c) AS ?mean)
WHERE { ?x <urn:cost> ?c }`)
	lo, _ := res.Get(0, "lo").Float()
	hi, _ := res.Get(0, "hi").Float()
	mean, _ := res.Get(0, "mean").Float()
	if lo != 50 || hi != 500 {
		t.Errorf("min/max = %v/%v", lo, hi)
	}
	if mean < 205 || mean > 206 { // 1230/6 = 205
		t.Errorf("avg = %v", mean)
	}
}

func TestAggregateCountDistinct(t *testing.T) {
	g := aggTestGraph()
	res := execQuery(t, g, `SELECT (COUNT(DISTINCT ?t) AS ?n) WHERE { ?x <urn:type> ?t }`)
	if f, _ := res.Get(0, "n").Float(); f != 4 {
		t.Errorf("distinct types = %v", res.Get(0, "n"))
	}
}

func TestAggregateHaving(t *testing.T) {
	g := aggTestGraph()
	res := execQuery(t, g, `
SELECT ?t (COUNT(?x) AS ?n)
WHERE { ?x <urn:type> ?t }
GROUP BY ?t
HAVING (COUNT(?x) > 1)
ORDER BY ?t`)
	if res.Len() != 2 {
		t.Fatalf("groups = %d, want 2: %v", res.Len(), res.Rows)
	}
	if res.Get(0, "t").Value != "NLJOIN" || res.Get(1, "t").Value != "TBSCAN" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestAggregateOrderByAggregate(t *testing.T) {
	g := aggTestGraph()
	res := execQuery(t, g, `
SELECT ?t (SUM(?c) AS ?total)
WHERE { ?x <urn:type> ?t . ?x <urn:cost> ?c }
GROUP BY ?t
ORDER BY DESC(SUM(?c))
LIMIT 2`)
	if res.Len() != 2 {
		t.Fatalf("rows = %d", res.Len())
	}
	if res.Get(0, "t").Value != "NLJOIN" || res.Get(1, "t").Value != "TBSCAN" {
		t.Errorf("top groups = %v", res.Rows)
	}
}

func TestAggregateExpressionsOverAggregates(t *testing.T) {
	g := aggTestGraph()
	res := execQuery(t, g, `
SELECT ?t (SUM(?c) / COUNT(?x) AS ?avgCost)
WHERE { ?x <urn:type> ?t . ?x <urn:cost> ?c }
GROUP BY ?t
ORDER BY ?t`)
	// IXSCAN avg = 50.
	if f, _ := res.Get(0, "avgCost").Float(); f != 50 {
		t.Errorf("avg cost = %v", res.Get(0, "avgCost"))
	}
	// NLJOIN avg = 400.
	if f, _ := res.Get(1, "avgCost").Float(); f != 400 {
		t.Errorf("avg cost = %v", res.Get(1, "avgCost"))
	}
}

func TestAggregateErrors(t *testing.T) {
	g := aggTestGraph()
	bad := []string{
		// Non-grouped variable in SELECT.
		`SELECT ?x (COUNT(?x) AS ?n) WHERE { ?x <urn:type> ?t } GROUP BY ?t`,
		// SELECT * with GROUP BY.
		`SELECT * WHERE { ?x <urn:type> ?t } GROUP BY ?t`,
		// SUM(*) is not a thing.
		`SELECT (SUM(*) AS ?n) WHERE { ?x <urn:type> ?t }`,
		// GROUP BY with no vars.
		`SELECT (COUNT(*) AS ?n) WHERE { ?x <urn:type> ?t } GROUP BY`,
	}
	for _, query := range bad {
		q, err := Parse(query)
		if err != nil {
			continue // parse-time rejection is fine
		}
		if _, err := q.Exec(g); err == nil {
			t.Errorf("accepted: %s", query)
		}
	}
}

func TestAggregateSumNonNumericErrors(t *testing.T) {
	g := aggTestGraph()
	// SUM over the type strings: the aggregate errors, the projection
	// leaves ?n unbound rather than failing the query.
	res := execQuery(t, g, `SELECT (SUM(?t) AS ?n) WHERE { ?x <urn:type> ?t }`)
	if res.Len() != 1 {
		t.Fatalf("rows = %d", res.Len())
	}
	if !res.Get(0, "n").Zero() {
		t.Errorf("sum over strings = %v, want unbound", res.Get(0, "n"))
	}
}

func TestAggregateGroupByWithFilter(t *testing.T) {
	g := aggTestGraph()
	res := execQuery(t, g, `
SELECT ?t (COUNT(?x) AS ?n)
WHERE { ?x <urn:type> ?t . ?x <urn:cost> ?c . FILTER(?c >= 100) }
GROUP BY ?t
ORDER BY ?t`)
	// cost >= 100: TBSCAN x2, NLJOIN x2.
	if res.Len() != 2 {
		t.Fatalf("groups = %d: %v", res.Len(), res.Rows)
	}
}

func TestAggregateDistinctProjection(t *testing.T) {
	g := aggTestGraph()
	// DISTINCT over grouped rows is a no-op but must not break.
	res := execQuery(t, g, `
SELECT DISTINCT ?t (COUNT(?x) AS ?n)
WHERE { ?x <urn:type> ?t }
GROUP BY ?t`)
	if res.Len() != 4 {
		t.Errorf("rows = %d", res.Len())
	}
}
