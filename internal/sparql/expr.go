package sparql

import (
	"errors"
	"fmt"
	"math"
	"regexp"
	"strings"

	"optimatch/internal/rdf"
)

// Expression is a SPARQL expression evaluated against one solution binding.
type Expression interface {
	// Eval returns the expression value. The error errUnbound (or any other
	// error) makes an enclosing FILTER evaluate to false, per the SPARQL
	// error-as-false semantics.
	Eval(b bindingView) (rdf.Term, error)
}

// bindingView resolves variable names to terms during expression evaluation.
type bindingView interface {
	lookupVar(name string) (rdf.Term, bool)
}

// errUnbound is returned when an expression references an unbound variable.
var errUnbound = errors.New("unbound variable")

// errType is returned on datatype mismatches (e.g. numeric op on an IRI).
var errType = errors.New("type error")

// VarExpr references a variable.
type VarExpr struct{ Name string }

// LitExpr wraps a constant term.
type LitExpr struct{ Term rdf.Term }

// NotExpr is logical negation.
type NotExpr struct{ Inner Expression }

// AndExpr is logical conjunction with SPARQL three-valued error handling.
type AndExpr struct{ L, R Expression }

// OrExpr is logical disjunction with SPARQL three-valued error handling.
type OrExpr struct{ L, R Expression }

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNeq
	OpLt
	OpGt
	OpLe
	OpGe
)

// CmpExpr compares two values; numbers compare numerically even across
// lexical renderings (decimal vs exponent form).
type CmpExpr struct {
	Op   CmpOp
	L, R Expression
}

// ArithExpr is +, -, * or / over numeric values.
type ArithExpr struct {
	Op   byte
	L, R Expression
}

// NegExpr is unary minus.
type NegExpr struct{ Inner Expression }

// CallExpr is a builtin function call: BOUND, REGEX, STR, ...
type CallExpr struct {
	Name string // uppercase
	Args []Expression
}

// Eval implements Expression.
func (e VarExpr) Eval(b bindingView) (rdf.Term, error) {
	t, ok := b.lookupVar(e.Name)
	if !ok {
		return rdf.Term{}, fmt.Errorf("%w: ?%s", errUnbound, e.Name)
	}
	return t, nil
}

// Eval implements Expression.
func (e LitExpr) Eval(bindingView) (rdf.Term, error) { return e.Term, nil }

// Eval implements Expression.
func (e NotExpr) Eval(b bindingView) (rdf.Term, error) {
	v, err := ebv(e.Inner, b)
	if err != nil {
		return rdf.Term{}, err
	}
	return rdf.Bool(!v), nil
}

// Eval implements Expression. SPARQL logical-and: an error on one side still
// yields false if the other side is false.
func (e AndExpr) Eval(b bindingView) (rdf.Term, error) {
	lv, lerr := ebv(e.L, b)
	rv, rerr := ebv(e.R, b)
	switch {
	case lerr == nil && rerr == nil:
		return rdf.Bool(lv && rv), nil
	case lerr == nil && !lv:
		return rdf.Bool(false), nil
	case rerr == nil && !rv:
		return rdf.Bool(false), nil
	case lerr != nil:
		return rdf.Term{}, lerr
	default:
		return rdf.Term{}, rerr
	}
}

// Eval implements Expression. SPARQL logical-or: an error on one side still
// yields true if the other side is true.
func (e OrExpr) Eval(b bindingView) (rdf.Term, error) {
	lv, lerr := ebv(e.L, b)
	rv, rerr := ebv(e.R, b)
	switch {
	case lerr == nil && rerr == nil:
		return rdf.Bool(lv || rv), nil
	case lerr == nil && lv:
		return rdf.Bool(true), nil
	case rerr == nil && rv:
		return rdf.Bool(true), nil
	case lerr != nil:
		return rdf.Term{}, lerr
	default:
		return rdf.Term{}, rerr
	}
}

// Eval implements Expression.
func (e CmpExpr) Eval(b bindingView) (rdf.Term, error) {
	l, err := e.L.Eval(b)
	if err != nil {
		return rdf.Term{}, err
	}
	r, err := e.R.Eval(b)
	if err != nil {
		return rdf.Term{}, err
	}
	// Numeric comparison when both sides parse as numbers.
	if lf, ok := l.Float(); ok {
		if rf, ok2 := r.Float(); ok2 {
			return rdf.Bool(cmpFloat(e.Op, lf, rf)), nil
		}
	}
	switch e.Op {
	case OpEq:
		return rdf.Bool(termValueEqual(l, r)), nil
	case OpNeq:
		return rdf.Bool(!termValueEqual(l, r)), nil
	default:
		if l.Kind == rdf.LiteralKind && r.Kind == rdf.LiteralKind {
			c := strings.Compare(l.Value, r.Value)
			switch e.Op {
			case OpLt:
				return rdf.Bool(c < 0), nil
			case OpGt:
				return rdf.Bool(c > 0), nil
			case OpLe:
				return rdf.Bool(c <= 0), nil
			case OpGe:
				return rdf.Bool(c >= 0), nil
			}
		}
		return rdf.Term{}, fmt.Errorf("%w: ordering comparison of %s and %s", errType, l, r)
	}
}

func cmpFloat(op CmpOp, l, r float64) bool {
	switch op {
	case OpEq:
		return l == r
	case OpNeq:
		return l != r
	case OpLt:
		return l < r
	case OpGt:
		return l > r
	case OpLe:
		return l <= r
	case OpGe:
		return l >= r
	}
	return false
}

// termValueEqual compares two terms by value: identical terms are equal, and
// numeric literals additionally compare by numeric value.
func termValueEqual(l, r rdf.Term) bool {
	if l == r {
		return true
	}
	if l.Kind == rdf.LiteralKind && r.Kind == rdf.LiteralKind {
		if lf, ok := l.Float(); ok {
			if rf, ok2 := r.Float(); ok2 {
				return lf == rf
			}
		}
		// Plain vs xsd:string are the same value space.
		if normDT(l.Datatype) == normDT(r.Datatype) {
			return l.Value == r.Value
		}
	}
	return false
}

func normDT(dt string) string {
	if dt == rdf.XSDString {
		return ""
	}
	return dt
}

// Eval implements Expression.
func (e ArithExpr) Eval(b bindingView) (rdf.Term, error) {
	l, err := evalNumeric(e.L, b)
	if err != nil {
		return rdf.Term{}, err
	}
	r, err := evalNumeric(e.R, b)
	if err != nil {
		return rdf.Term{}, err
	}
	switch e.Op {
	case '+':
		return rdf.Float(l + r), nil
	case '-':
		return rdf.Float(l - r), nil
	case '*':
		return rdf.Float(l * r), nil
	case '/':
		if r == 0 {
			return rdf.Term{}, fmt.Errorf("%w: division by zero", errType)
		}
		return rdf.Float(l / r), nil
	}
	return rdf.Term{}, fmt.Errorf("%w: unknown arithmetic op %q", errType, e.Op)
}

// Eval implements Expression.
func (e NegExpr) Eval(b bindingView) (rdf.Term, error) {
	v, err := evalNumeric(e.Inner, b)
	if err != nil {
		return rdf.Term{}, err
	}
	return rdf.Float(-v), nil
}

func evalNumeric(e Expression, b bindingView) (float64, error) {
	t, err := e.Eval(b)
	if err != nil {
		return 0, err
	}
	f, ok := t.Float()
	if !ok {
		return 0, fmt.Errorf("%w: %s is not numeric", errType, t)
	}
	return f, nil
}

// ebv computes the SPARQL effective boolean value of an expression.
func ebv(e Expression, b bindingView) (bool, error) {
	t, err := e.Eval(b)
	if err != nil {
		return false, err
	}
	return ebvTerm(t)
}

func ebvTerm(t rdf.Term) (bool, error) {
	if t.Kind != rdf.LiteralKind {
		return false, fmt.Errorf("%w: no boolean value for %s", errType, t)
	}
	if v, ok := t.Bool(); ok && (t.Datatype == rdf.XSDBoolean || t.Value == "true" || t.Value == "false") {
		return v, nil
	}
	if f, ok := t.Float(); ok {
		return f != 0 && !math.IsNaN(f), nil
	}
	return len(t.Value) > 0, nil
}

// Eval implements Expression for builtin calls.
func (e CallExpr) Eval(b bindingView) (rdf.Term, error) {
	switch e.Name {
	case "BOUND":
		v, ok := e.Args[0].(VarExpr)
		if !ok {
			return rdf.Term{}, fmt.Errorf("%w: BOUND requires a variable", errType)
		}
		_, bound := b.lookupVar(v.Name)
		return rdf.Bool(bound), nil
	case "COALESCE":
		for _, a := range e.Args {
			if t, err := a.Eval(b); err == nil {
				return t, nil
			}
		}
		return rdf.Term{}, fmt.Errorf("%w: COALESCE had no valid argument", errType)
	case "IF":
		cond, err := ebv(e.Args[0], b)
		if err != nil {
			return rdf.Term{}, err
		}
		if cond {
			return e.Args[1].Eval(b)
		}
		return e.Args[2].Eval(b)
	}

	// The remaining builtins evaluate all arguments eagerly.
	args := make([]rdf.Term, len(e.Args))
	for i, a := range e.Args {
		t, err := a.Eval(b)
		if err != nil {
			return rdf.Term{}, err
		}
		args[i] = t
	}
	switch e.Name {
	case "STR":
		return rdf.String(args[0].Value), nil
	case "STRLEN":
		return rdf.Int(int64(len([]rune(args[0].Value)))), nil
	case "UCASE":
		return rdf.String(strings.ToUpper(args[0].Value)), nil
	case "LCASE":
		return rdf.String(strings.ToLower(args[0].Value)), nil
	case "CONTAINS":
		return rdf.Bool(strings.Contains(args[0].Value, args[1].Value)), nil
	case "STRSTARTS":
		return rdf.Bool(strings.HasPrefix(args[0].Value, args[1].Value)), nil
	case "STRENDS":
		return rdf.Bool(strings.HasSuffix(args[0].Value, args[1].Value)), nil
	case "REGEX":
		pattern := args[1].Value
		if len(args) == 3 && strings.Contains(args[2].Value, "i") {
			pattern = "(?i)" + pattern
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			return rdf.Term{}, fmt.Errorf("%w: bad REGEX pattern: %v", errType, err)
		}
		return rdf.Bool(re.MatchString(args[0].Value)), nil
	case "DATATYPE":
		if args[0].Kind != rdf.LiteralKind {
			return rdf.Term{}, fmt.Errorf("%w: DATATYPE of non-literal", errType)
		}
		dt := args[0].Datatype
		if dt == "" {
			dt = rdf.XSDString
		}
		return rdf.IRI(dt), nil
	case "ISIRI", "ISURI":
		return rdf.Bool(args[0].IsIRI()), nil
	case "ISBLANK":
		return rdf.Bool(args[0].IsBlank()), nil
	case "ISLITERAL":
		return rdf.Bool(args[0].IsLiteral()), nil
	case "ISNUMERIC":
		return rdf.Bool(args[0].IsNumeric()), nil
	case "ABS":
		f, ok := args[0].Float()
		if !ok {
			return rdf.Term{}, fmt.Errorf("%w: ABS of non-numeric", errType)
		}
		return rdf.Float(math.Abs(f)), nil
	case "CEIL":
		f, ok := args[0].Float()
		if !ok {
			return rdf.Term{}, fmt.Errorf("%w: CEIL of non-numeric", errType)
		}
		return rdf.Float(math.Ceil(f)), nil
	case "FLOOR":
		f, ok := args[0].Float()
		if !ok {
			return rdf.Term{}, fmt.Errorf("%w: FLOOR of non-numeric", errType)
		}
		return rdf.Float(math.Floor(f)), nil
	case "ROUND":
		f, ok := args[0].Float()
		if !ok {
			return rdf.Term{}, fmt.Errorf("%w: ROUND of non-numeric", errType)
		}
		return rdf.Float(math.Round(f)), nil
	default:
		return rdf.Term{}, fmt.Errorf("%w: unknown function %s", errType, e.Name)
	}
}

// builtinArity maps builtin names to (min, max) argument counts; max of -1
// means variadic.
var builtinArity = map[string][2]int{
	"BOUND": {1, 1}, "STR": {1, 1}, "STRLEN": {1, 1}, "UCASE": {1, 1},
	"LCASE": {1, 1}, "CONTAINS": {2, 2}, "STRSTARTS": {2, 2},
	"STRENDS": {2, 2}, "REGEX": {2, 3}, "DATATYPE": {1, 1},
	"ISIRI": {1, 1}, "ISURI": {1, 1}, "ISBLANK": {1, 1},
	"ISLITERAL": {1, 1}, "ISNUMERIC": {1, 1}, "ABS": {1, 1},
	"CEIL": {1, 1}, "FLOOR": {1, 1}, "ROUND": {1, 1},
	"COALESCE": {1, -1}, "IF": {3, 3},
}

// exprVars returns every variable mentioned in e.
func exprVars(e Expression) []string {
	var out []string
	var walk func(Expression)
	walk = func(e Expression) {
		switch e := e.(type) {
		case VarExpr:
			out = append(out, e.Name)
		case NotExpr:
			walk(e.Inner)
		case NegExpr:
			walk(e.Inner)
		case AndExpr:
			walk(e.L)
			walk(e.R)
		case OrExpr:
			walk(e.L)
			walk(e.R)
		case CmpExpr:
			walk(e.L)
			walk(e.R)
		case ArithExpr:
			walk(e.L)
			walk(e.R)
		case CallExpr:
			for _, a := range e.Args {
				walk(a)
			}
		case AggExpr:
			if e.Arg != nil {
				walk(e.Arg)
			}
		}
	}
	walk(e)
	return out
}
