package sparql

import (
	"testing"

	"optimatch/internal/rdf"
)

const benchQuery = predPrefix + `
SELECT ?pop1 AS ?TOP ?pop3 AS ?SCAN3
WHERE {
  ?pop1 pred:hasPopType "NLJOIN" .
  ?pop1 pred:hasInnerInputStream ?b1 .
  ?b1 pred:hasInnerInputStream ?pop3 .
  ?pop3 pred:hasOutputStream ?b1 .
  ?b1 pred:hasOutputStream ?pop1 .
  ?pop3 pred:hasPopType "TBSCAN" .
  ?pop3 pred:hasEstimateCardinality ?h1 .
  FILTER(?h1 > 100) .
}
ORDER BY ?pop1`

// BenchmarkParseQuery measures parsing the Figure-6-shaped query.
func BenchmarkParseQuery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecReifiedPattern measures evaluating the reified-stream BGP
// against the Figure 1 graph.
func BenchmarkExecReifiedPattern(b *testing.B) {
	g := evalTestGraph()
	q, err := Parse(benchQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := q.Exec(g)
		if err != nil || res.Len() != 1 {
			b.Fatalf("res=%v err=%v", res, err)
		}
	}
}

// BenchmarkPathClosure measures the BFS closure over a deep chain.
func BenchmarkPathClosure(b *testing.B) {
	g := rdf.NewGraph()
	pred := rdf.IRI("urn:child")
	const depth = 300
	for i := 0; i < depth; i++ {
		g.Add(rdf.IRI(node(i)), pred, rdf.IRI(node(i+1)))
	}
	path := ModPath{Inner: PredPath{IRI: "urn:child"}, Mod: ModOneOrMore}
	start := g.Dict().Lookup(rdf.IRI(node(0)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		evalPath(&pathEnv{g: g}, path, start, rdf.NoID, func(_, _ rdf.ID) bool { count++; return true })
		if count != depth {
			b.Fatalf("count = %d", count)
		}
	}
}

func node(i int) string {
	return "urn:n" + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10)) + string(rune('0'+i/260))
}
