package sparql

import (
	"fmt"
	"testing"

	"optimatch/internal/rdf"
)

const benchQuery = predPrefix + `
SELECT ?pop1 AS ?TOP ?pop3 AS ?SCAN3
WHERE {
  ?pop1 pred:hasPopType "NLJOIN" .
  ?pop1 pred:hasInnerInputStream ?b1 .
  ?b1 pred:hasInnerInputStream ?pop3 .
  ?pop3 pred:hasOutputStream ?b1 .
  ?b1 pred:hasOutputStream ?pop1 .
  ?pop3 pred:hasPopType "TBSCAN" .
  ?pop3 pred:hasEstimateCardinality ?h1 .
  FILTER(?h1 > 100) .
}
ORDER BY ?pop1`

// BenchmarkParseQuery measures parsing the Figure-6-shaped query.
func BenchmarkParseQuery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecReifiedPattern measures evaluating the reified-stream BGP
// against the Figure 1 graph.
func BenchmarkExecReifiedPattern(b *testing.B) {
	g := evalTestGraph()
	q, err := Parse(benchQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := q.Exec(g)
		if err != nil || res.Len() != 1 {
			b.Fatalf("res=%v err=%v", res, err)
		}
	}
}

// BenchmarkPathClosure measures the BFS closure over a deep chain.
func BenchmarkPathClosure(b *testing.B) {
	g := rdf.NewGraph()
	pred := rdf.IRI("urn:child")
	const depth = 300
	for i := 0; i < depth; i++ {
		g.Add(rdf.IRI(node(i)), pred, rdf.IRI(node(i+1)))
	}
	path := ModPath{Inner: PredPath{IRI: "urn:child"}, Mod: ModOneOrMore}
	start := g.Dict().Lookup(rdf.IRI(node(0)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		evalPath(&pathEnv{g: g}, path, start, rdf.NoID, func(_, _ rdf.ID) bool { count++; return true })
		if count != depth {
			b.Fatalf("count = %d", count)
		}
	}
}

func node(i int) string {
	return fmt.Sprintf("urn:n%d", i)
}

// runPathClosureBench measures `child+` from a bound start at the evalPath
// layer — the component the CSR/bitset acceleration replaces — under the
// indexed engine and the path-index ablation. A fresh pathEnv per iteration
// reproduces real per-query state (the per-graph CSR cache persists, the
// per-evaluation memo does not).
func runPathClosureBench(b *testing.B, g *rdf.Graph, want int) {
	path := ModPath{Inner: PredPath{IRI: "urn:child"}, Mod: ModOneOrMore}
	start := g.Dict().Lookup(rdf.IRI(node(0)))
	for _, cfg := range []struct {
		name    string
		noIndex bool
	}{{"indexed", false}, {"ablated", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				count := 0
				evalPath(&pathEnv{g: g, noIndex: cfg.noIndex}, path, start, rdf.NoID,
					func(_, _ rdf.ID) bool { count++; return true })
				if count != want {
					b.Fatalf("count = %d, want %d", count, want)
				}
			}
		})
	}
}

// BenchmarkPathClosureDeepChain walks `child+` from the head of an n-edge
// chain: the worst case for per-step overhead (one node per BFS level).
func BenchmarkPathClosureDeepChain(b *testing.B) {
	for _, n := range []int{100, 550, 5000} {
		g := rdf.NewGraph()
		pred := rdf.IRI("urn:child")
		for i := 0; i < n; i++ {
			g.Add(rdf.IRI(node(i)), pred, rdf.IRI(node(i+1)))
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runPathClosureBench(b, g, n)
		})
	}
}

// BenchmarkPathClosureDiamond chains diamond gadgets a->{b,c}->a': every
// interior node is reached twice, exercising the visited-set dedup.
func BenchmarkPathClosureDiamond(b *testing.B) {
	for _, k := range []int{33, 183, 1666} { // 3k+1 nodes: ~100/550/5000
		g := rdf.NewGraph()
		pred := rdf.IRI("urn:child")
		for i := 0; i < k; i++ {
			a, l, r, next := node(3*i), node(3*i+1), node(3*i+2), node(3*i+3)
			g.Add(rdf.IRI(a), pred, rdf.IRI(l))
			g.Add(rdf.IRI(a), pred, rdf.IRI(r))
			g.Add(rdf.IRI(l), pred, rdf.IRI(next))
			g.Add(rdf.IRI(r), pred, rdf.IRI(next))
		}
		b.Run(fmt.Sprintf("nodes=%d", 3*k+1), func(b *testing.B) {
			runPathClosureBench(b, g, 3*k)
		})
	}
}

// BenchmarkPathClosureFanOut walks `child+` from the root of a complete
// 5-ary tree: wide frontiers, shallow depth.
func BenchmarkPathClosureFanOut(b *testing.B) {
	for _, n := range []int{100, 550, 5000} {
		g := rdf.NewGraph()
		pred := rdf.IRI("urn:child")
		for i := 1; i <= n; i++ {
			g.Add(rdf.IRI(node((i-1)/5)), pred, rdf.IRI(node(i)))
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runPathClosureBench(b, g, n)
		})
	}
}

// BenchmarkPathClosureQuery runs a full `?a child+ ?b` query (closure from
// every node, row materialization included) over a chain — the end-to-end
// number, where projection overhead is shared by both configurations.
func BenchmarkPathClosureQuery(b *testing.B) {
	const n = 550
	g := rdf.NewGraph()
	pred := rdf.IRI("urn:child")
	for i := 0; i < n; i++ {
		g.Add(rdf.IRI(node(i)), pred, rdf.IRI(node(i+1)))
	}
	q, err := Parse("SELECT ?a ?b WHERE { ?a <urn:child>+ ?b }")
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		opts ExecOptions
	}{{"indexed", ExecOptions{}}, {"ablated", ExecOptions{DisablePathIndex: true}}} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := q.ExecOpts(g, cfg.opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() != n*(n+1)/2 {
					b.Fatalf("rows = %d", res.Len())
				}
			}
		})
	}
}
