package sparql

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"optimatch/internal/rdf"
)

// chainGraph builds a linear hasChildPop chain p0 -> p1 -> ... -> p(n-1):
// small triples, but its transitive closure is quadratic, so an unanchored
// `+` query does far more than cancelStride iterations of work.
func chainGraph(n int) *rdf.Graph {
	g := rdf.NewGraph()
	pred := rdf.IRI("http://optimatch/pred/hasChildPop")
	node := func(i int) rdf.Term { return rdf.IRI(fmt.Sprintf("http://optimatch/qep/pop/%d", i)) }
	for i := 0; i < n-1; i++ {
		g.Add(node(i), pred, node(i+1))
	}
	return g
}

func TestExecPreCancelledContext(t *testing.T) {
	g := chainGraph(10)
	q := mustParse(t, predPrefix+"SELECT ?x ?y WHERE { ?x pred:hasChildPop+ ?y }")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := q.ExecOpts(g, ExecOptions{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("got partial results %v alongside cancellation", res)
	}
}

// lateCancelCtx reports no error on its first Err() call (so evaluation gets
// past the entry check) and context.Canceled from then on, with an
// already-closed Done channel. It makes "cancelled mid-evaluation"
// deterministic: the canceller trips at its first stride poll, always at
// the same iteration, with no timing involved.
type lateCancelCtx struct {
	context.Context
	done  chan struct{}
	calls int
}

func newLateCancelCtx() *lateCancelCtx {
	done := make(chan struct{})
	close(done)
	return &lateCancelCtx{Context: context.Background(), done: done}
}

func (c *lateCancelCtx) Done() <-chan struct{} { return c.done }

func (c *lateCancelCtx) Err() error {
	c.calls++
	if c.calls == 1 {
		return nil
	}
	return context.Canceled
}

func TestExecCancelledMidEvaluation(t *testing.T) {
	// Plenty of closure work: an unanchored a+ over a 2000-node chain runs
	// ~2000 BFS walks, each hundreds of steps, so the first stride poll
	// lands long before the evaluation could finish.
	g := chainGraph(2000)
	q := mustParse(t, predPrefix+"SELECT ?x ?y WHERE { ?x pred:hasChildPop+ ?y }")
	res, err := q.ExecOpts(g, ExecOptions{Ctx: newLateCancelCtx()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled evaluation must not return partial rows")
	}
}

func TestExecCancelledMidEvaluationFallbackPath(t *testing.T) {
	// DisablePathIndex forces the legacy per-node BFS, which has its own
	// cancellation poll; it must stop just like the CSR walk.
	g := chainGraph(2000)
	q := mustParse(t, predPrefix+"SELECT ?x ?y WHERE { ?x pred:hasChildPop+ ?y }")
	res, err := q.ExecOpts(g, ExecOptions{Ctx: newLateCancelCtx(), DisablePathIndex: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled evaluation must not return partial rows")
	}
}

func TestInterruptedBFSNotMemoized(t *testing.T) {
	g := chainGraph(1500)
	inner := PredPath{IRI: "http://optimatch/pred/hasChildPop"}
	start := g.Dict().Lookup(rdf.IRI("http://optimatch/qep/pop/0"))
	if start == rdf.NoID {
		t.Fatal("start node missing from dictionary")
	}

	ctx, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	env := &pathEnv{g: g, cancel: newCanceller(ctx)}
	set, complete := env.runBFS(inner, start, false)
	if complete {
		t.Fatal("BFS under a cancelled context reported a complete closure")
	}
	// closureSet must refuse to memoize the partial result.
	_ = env.closureSet(inner, start, false)
	if len(env.memo) != 0 {
		t.Fatalf("partial closure was memoized: %d entries", len(env.memo))
	}
	_ = set

	// A fresh, uncancelled environment over the same graph sees the full
	// closure and memoizes it.
	env2 := &pathEnv{g: g}
	set2, complete2 := env2.runBFS(inner, start, false)
	if !complete2 {
		t.Fatal("unhindered BFS reported incomplete")
	}
	if want := 1499; len(set2.reached) != want {
		t.Fatalf("full closure has %d nodes, want %d", len(set2.reached), want)
	}
}

func TestExecNilAndBackgroundContexts(t *testing.T) {
	// Background and nil contexts cost nothing and change nothing: the
	// canceller is elided entirely.
	if c := newCanceller(nil); c != nil {
		t.Fatal("nil context minted a canceller")
	}
	if c := newCanceller(context.Background()); c != nil {
		t.Fatal("Background context minted a canceller")
	}
	g := chainGraph(50)
	q := mustParse(t, predPrefix+"SELECT ?x ?y WHERE { ?x pred:hasChildPop+ ?y }")
	plain, err := q.Exec(g)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := q.ExecOpts(g, ExecOptions{Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Rows) != len(withCtx.Rows) {
		t.Fatalf("row counts differ: %d without ctx, %d with", len(plain.Rows), len(withCtx.Rows))
	}
}
