package sparql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF     tokenKind = iota
	tokIRI               // <http://...>
	tokPName             // prefix:local or prefix: or :local
	tokVar               // ?name or $name
	tokBlank             // _:label
	tokString            // "..." or '...'
	tokNumber            // 123, 1.5, 1e7
	tokKeyword           // SELECT, WHERE, FILTER, ... (uppercased)
	tokA                 // the keyword 'a' (rdf:type)
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokDot
	tokSemicolon
	tokComma
	tokSlash
	tokPipe
	tokCaret
	tokStar
	tokPlus
	tokQuestion
	tokMinus
	tokBang
	tokEq
	tokNeq
	tokLt
	tokGt
	tokLe
	tokGe
	tokAndAnd
	tokOrOr
	tokHatHat // ^^ datatype marker
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
}

var sparqlKeywords = map[string]bool{
	"PREFIX": true, "BASE": true, "SELECT": true, "DISTINCT": true,
	"REDUCED": true, "WHERE": true, "FILTER": true, "OPTIONAL": true,
	"UNION": true, "ORDER": true, "BY": true, "ASC": true, "DESC": true,
	"LIMIT": true, "OFFSET": true, "AS": true, "BIND": true,
	"GROUP": true, "HAVING": true, "EXISTS": true, "NOT": true,
	"TRUE": true, "FALSE": true,
}

type lexer struct {
	input string
	pos   int
	toks  []token
}

// lex tokenizes the whole input up front; SPARQL queries here are small.
func lex(input string) ([]token, error) {
	l := &lexer{input: input}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.input) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		if err := l.next(); err != nil {
			return nil, err
		}
	}
}

func (l *lexer) emit(kind tokenKind, text string) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: l.pos})
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.input) && l.input[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func (l *lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sparql: position %d: %s", l.pos, fmt.Sprintf(format, args...))
}

func (l *lexer) next() error {
	c := l.input[l.pos]
	switch c {
	case '<':
		// Could be IRI <...> or comparison < / <=.
		if end := strings.IndexAny(l.input[l.pos:], "> \t\n"); end >= 0 && l.input[l.pos+end] == '>' && !strings.ContainsAny(l.input[l.pos+1:l.pos+end], "=<") {
			l.emit(tokIRI, l.input[l.pos+1:l.pos+end])
			l.pos += end + 1
			return nil
		}
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '=' {
			l.emit(tokLe, "<=")
			l.pos += 2
		} else {
			l.emit(tokLt, "<")
			l.pos++
		}
		return nil
	case '>':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '=' {
			l.emit(tokGe, ">=")
			l.pos += 2
		} else {
			l.emit(tokGt, ">")
			l.pos++
		}
		return nil
	case '?', '$':
		start := l.pos + 1
		end := start
		for end < len(l.input) && isNameChar(rune(l.input[end])) {
			end++
		}
		if end == start {
			// bare '?': property path zero-or-one modifier
			l.emit(tokQuestion, "?")
			l.pos++
			return nil
		}
		l.emit(tokVar, l.input[start:end])
		l.pos = end
		return nil
	case '_':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == ':' {
			start := l.pos + 2
			end := start
			for end < len(l.input) && isNameChar(rune(l.input[end])) {
				end++
			}
			if end == start {
				return l.errf("empty blank node label")
			}
			l.emit(tokBlank, l.input[start:end])
			l.pos = end
			return nil
		}
		return l.errf("unexpected '_'")
	case '"', '\'':
		return l.lexString(c)
	case '{':
		l.emit(tokLBrace, "{")
		l.pos++
		return nil
	case '}':
		l.emit(tokRBrace, "}")
		l.pos++
		return nil
	case '(':
		l.emit(tokLParen, "(")
		l.pos++
		return nil
	case ')':
		l.emit(tokRParen, ")")
		l.pos++
		return nil
	case '[':
		l.emit(tokLBracket, "[")
		l.pos++
		return nil
	case ']':
		l.emit(tokRBracket, "]")
		l.pos++
		return nil
	case '.':
		// Distinguish statement dot from decimal number like ".5"? SPARQL
		// numbers always have a leading digit here, so '.' is punctuation.
		l.emit(tokDot, ".")
		l.pos++
		return nil
	case ';':
		l.emit(tokSemicolon, ";")
		l.pos++
		return nil
	case ',':
		l.emit(tokComma, ",")
		l.pos++
		return nil
	case '/':
		l.emit(tokSlash, "/")
		l.pos++
		return nil
	case '*':
		l.emit(tokStar, "*")
		l.pos++
		return nil
	case '+':
		l.emit(tokPlus, "+")
		l.pos++
		return nil
	case '-':
		l.emit(tokMinus, "-")
		l.pos++
		return nil
	case '^':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '^' {
			l.emit(tokHatHat, "^^")
			l.pos += 2
		} else {
			l.emit(tokCaret, "^")
			l.pos++
		}
		return nil
	case '|':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '|' {
			l.emit(tokOrOr, "||")
			l.pos += 2
		} else {
			l.emit(tokPipe, "|")
			l.pos++
		}
		return nil
	case '&':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '&' {
			l.emit(tokAndAnd, "&&")
			l.pos += 2
			return nil
		}
		return l.errf("unexpected '&'")
	case '!':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '=' {
			l.emit(tokNeq, "!=")
			l.pos += 2
		} else {
			l.emit(tokBang, "!")
			l.pos++
		}
		return nil
	case '=':
		l.emit(tokEq, "=")
		l.pos++
		return nil
	}

	if c >= '0' && c <= '9' {
		return l.lexNumber()
	}
	if isNameStart(rune(c)) || c == ':' {
		return l.lexWord()
	}
	return l.errf("unexpected character %q", c)
}

func (l *lexer) lexString(quote byte) error {
	var b strings.Builder
	i := l.pos + 1
	for i < len(l.input) {
		c := l.input[i]
		switch c {
		case quote:
			l.emit(tokString, b.String())
			l.pos = i + 1
			return nil
		case '\\':
			if i+1 >= len(l.input) {
				return l.errf("dangling escape in string")
			}
			i++
			switch l.input[i] {
			case '"':
				b.WriteByte('"')
			case '\'':
				b.WriteByte('\'')
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			default:
				return l.errf("unknown string escape \\%c", l.input[i])
			}
			i++
		case '\n':
			return l.errf("newline in string literal")
		default:
			b.WriteByte(c)
			i++
		}
	}
	return l.errf("unterminated string literal")
}

func (l *lexer) lexNumber() error {
	start := l.pos
	i := l.pos
	for i < len(l.input) && l.input[i] >= '0' && l.input[i] <= '9' {
		i++
	}
	if i < len(l.input) && l.input[i] == '.' {
		// Only a decimal point when followed by a digit; otherwise it is the
		// statement terminator ("FILTER(?x > 100).").
		if i+1 < len(l.input) && l.input[i+1] >= '0' && l.input[i+1] <= '9' {
			i++
			for i < len(l.input) && l.input[i] >= '0' && l.input[i] <= '9' {
				i++
			}
		}
	}
	if i < len(l.input) && (l.input[i] == 'e' || l.input[i] == 'E') {
		j := i + 1
		if j < len(l.input) && (l.input[j] == '+' || l.input[j] == '-') {
			j++
		}
		if j < len(l.input) && l.input[j] >= '0' && l.input[j] <= '9' {
			for j < len(l.input) && l.input[j] >= '0' && l.input[j] <= '9' {
				j++
			}
			i = j
		}
	}
	l.emit(tokNumber, l.input[start:i])
	l.pos = i
	return nil
}

func (l *lexer) lexWord() error {
	start := l.pos
	i := l.pos
	for i < len(l.input) && (isNameChar(rune(l.input[i])) || l.input[i] == '.') {
		// A trailing dot belongs to the statement, not the name.
		if l.input[i] == '.' && (i+1 >= len(l.input) || !isNameChar(rune(l.input[i+1]))) {
			break
		}
		i++
	}
	word := l.input[start:i]
	// Prefixed name: word contains ':' or is followed by ':'.
	if i < len(l.input) && l.input[i] == ':' {
		j := i + 1
		for j < len(l.input) && (isNameChar(rune(l.input[j])) || l.input[j] == '.') {
			if l.input[j] == '.' && (j+1 >= len(l.input) || !isNameChar(rune(l.input[j+1]))) {
				break
			}
			j++
		}
		l.emit(tokPName, l.input[start:j])
		l.pos = j
		return nil
	}
	if word == "a" {
		l.emit(tokA, "a")
		l.pos = i
		return nil
	}
	upper := strings.ToUpper(word)
	if sparqlKeywords[upper] {
		l.emit(tokKeyword, upper)
		l.pos = i
		return nil
	}
	// Bare word: builtin function name (REGEX, BOUND, ...) — treated as a
	// keyword-like identifier; the parser decides.
	l.emit(tokKeyword, upper)
	l.pos = i
	return nil
}

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	return r == '_' || r == '-' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
