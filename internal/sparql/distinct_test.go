package sparql

import (
	"testing"

	"optimatch/internal/rdf"
)

// distinctKeyer must map rows to equal keys iff the rows are term-wise
// equal, including terms absent from the graph dictionary (computed BIND
// or aggregate values) and unbound slots.
func TestDistinctKeyerCorrectness(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b"))
	g.Add(rdf.IRI("c"), rdf.IRI("p"), rdf.String("lit"))

	rows := [][]rdf.Term{
		{rdf.IRI("a"), rdf.IRI("b")},
		{rdf.IRI("a"), rdf.String("lit")},
		{rdf.IRI("b"), rdf.IRI("a")}, // order matters
		{rdf.IRI("a"), {}},           // unbound slot
		{{}, rdf.IRI("a")},
		{rdf.Float(42), rdf.IRI("a")},    // not in dict: extra table
		{rdf.Float(43), rdf.IRI("a")},    // distinct extra term
		{rdf.String("42"), rdf.IRI("a")}, // same lexical form, other kind
	}
	keyer := distinctKeyer{dict: g.Dict()}
	keys := make(map[string]int)
	for i, row := range rows {
		k := keyer.key(row)
		if prev, dup := keys[k]; dup {
			t.Errorf("rows %d and %d collide on key %q", prev, i, k)
		}
		keys[k] = i
	}
	// Re-keying the same rows must reproduce the same keys (extra-table
	// stability across calls).
	for i, row := range rows {
		if keys[keyer.key(row)] != i {
			t.Errorf("row %d key changed on second call", i)
		}
	}
}

// Keying a row of dictionary-resident terms must cost at most one
// allocation (the key string itself) — the old implementation built the key
// with fmt.Fprintf over a bytes.Buffer, allocating per term.
func TestDistinctKeyerAllocs(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b"))
	g.Add(rdf.IRI("c"), rdf.IRI("p"), rdf.IRI("d"))
	keyer := distinctKeyer{dict: g.Dict()}
	row := []rdf.Term{rdf.IRI("a"), rdf.IRI("b"), rdf.IRI("c"), rdf.IRI("d")}
	keyer.key(row) // warm the scratch buffer

	allocs := testing.AllocsPerRun(200, func() {
		_ = keyer.key(row)
	})
	if allocs > 1 {
		t.Errorf("distinctKeyer.key allocates %.1f times per row, want <= 1", allocs)
	}
}
