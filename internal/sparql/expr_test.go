package sparql

import (
	"testing"

	"optimatch/internal/rdf"
)

// mapView is a simple bindingView over a map, for unit-testing expressions
// without an evaluator context.
type mapView map[string]rdf.Term

func (m mapView) lookupVar(name string) (rdf.Term, bool) {
	t, ok := m[name]
	return t, ok
}

func evalExpr(t *testing.T, e Expression, b mapView) (rdf.Term, error) {
	t.Helper()
	return e.Eval(b)
}

func TestThreeValuedAnd(t *testing.T) {
	b := mapView{"t": rdf.Bool(true), "f": rdf.Bool(false)}
	unbound := VarExpr{Name: "missing"}
	tru := VarExpr{Name: "t"}
	fls := VarExpr{Name: "f"}

	// false && error -> false (not error), per SPARQL.
	v, err := evalExpr(t, AndExpr{L: fls, R: unbound}, b)
	if err != nil {
		t.Fatalf("false && error should not error: %v", err)
	}
	if got, _ := v.Bool(); got {
		t.Error("false && error = true")
	}
	// error && false -> false.
	if v, err = evalExpr(t, AndExpr{L: unbound, R: fls}, b); err != nil {
		t.Fatalf("error && false: %v", err)
	}
	// true && error -> error.
	if _, err = evalExpr(t, AndExpr{L: tru, R: unbound}, b); err == nil {
		t.Error("true && error should error")
	}
	// true && true -> true.
	v, err = evalExpr(t, AndExpr{L: tru, R: tru}, b)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := v.Bool(); !got {
		t.Error("true && true = false")
	}
}

func TestThreeValuedOr(t *testing.T) {
	b := mapView{"t": rdf.Bool(true), "f": rdf.Bool(false)}
	unbound := VarExpr{Name: "missing"}
	tru := VarExpr{Name: "t"}
	fls := VarExpr{Name: "f"}

	// true || error -> true.
	v, err := evalExpr(t, OrExpr{L: tru, R: unbound}, b)
	if err != nil {
		t.Fatalf("true || error: %v", err)
	}
	if got, _ := v.Bool(); !got {
		t.Error("true || error = false")
	}
	// error || true -> true.
	if _, err = evalExpr(t, OrExpr{L: unbound, R: tru}, b); err != nil {
		t.Fatalf("error || true: %v", err)
	}
	// false || error -> error.
	if _, err = evalExpr(t, OrExpr{L: fls, R: unbound}, b); err == nil {
		t.Error("false || error should error")
	}
}

func TestEffectiveBooleanValue(t *testing.T) {
	cases := []struct {
		term rdf.Term
		want bool
		err  bool
	}{
		{rdf.Bool(true), true, false},
		{rdf.Bool(false), false, false},
		{rdf.Int(0), false, false},
		{rdf.Int(7), true, false},
		{rdf.Float(0.0), false, false},
		{rdf.Float(-2.5), true, false},
		{rdf.String(""), false, false},
		{rdf.String("x"), true, false},
		{rdf.IRI("urn:x"), false, true},
		{rdf.Blank("b"), false, true},
	}
	for _, c := range cases {
		got, err := ebvTerm(c.term)
		if c.err {
			if err == nil {
				t.Errorf("ebv(%v): expected error", c.term)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ebv(%v) = %v, %v; want %v", c.term, got, err, c.want)
		}
	}
}

func TestCmpMixedTypes(t *testing.T) {
	b := mapView{}
	// Numeric vs numeric-string compare numerically.
	v, err := evalExpr(t, CmpExpr{Op: OpEq,
		L: LitExpr{Term: rdf.Float(10)},
		R: LitExpr{Term: rdf.String("1.0E+01")}}, b)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := v.Bool(); !got {
		t.Error("10 = 1.0E+01 should hold numerically")
	}
	// Ordering on non-literals errors.
	if _, err := evalExpr(t, CmpExpr{Op: OpLt,
		L: LitExpr{Term: rdf.IRI("a")},
		R: LitExpr{Term: rdf.IRI("b")}}, b); err == nil {
		t.Error("IRI ordering should error")
	}
	// String ordering works lexicographically.
	v, err = evalExpr(t, CmpExpr{Op: OpLt,
		L: LitExpr{Term: rdf.String("abc")},
		R: LitExpr{Term: rdf.String("abd")}}, b)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := v.Bool(); !got {
		t.Error(`"abc" < "abd" should hold`)
	}
	// Inequality across kinds is true.
	v, err = evalExpr(t, CmpExpr{Op: OpNeq,
		L: LitExpr{Term: rdf.IRI("a")},
		R: LitExpr{Term: rdf.String("a")}}, b)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := v.Bool(); !got {
		t.Error("IRI != literal should hold")
	}
}

func TestArithmeticErrors(t *testing.T) {
	b := mapView{}
	if _, err := evalExpr(t, ArithExpr{Op: '/',
		L: LitExpr{Term: rdf.Int(1)},
		R: LitExpr{Term: rdf.Int(0)}}, b); err == nil {
		t.Error("division by zero should error")
	}
	if _, err := evalExpr(t, ArithExpr{Op: '+',
		L: LitExpr{Term: rdf.String("x")},
		R: LitExpr{Term: rdf.Int(1)}}, b); err == nil {
		t.Error("string arithmetic should error")
	}
	if _, err := evalExpr(t, NegExpr{Inner: LitExpr{Term: rdf.String("x")}}, b); err == nil {
		t.Error("negating a string should error")
	}
}

func TestCoalesceAndIf(t *testing.T) {
	b := mapView{"x": rdf.Int(5)}
	v, err := evalExpr(t, CallExpr{Name: "COALESCE", Args: []Expression{
		VarExpr{Name: "missing"}, VarExpr{Name: "x"},
	}}, b)
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := v.Float(); f != 5 {
		t.Errorf("COALESCE = %v", v)
	}
	if _, err := evalExpr(t, CallExpr{Name: "COALESCE", Args: []Expression{
		VarExpr{Name: "missing"},
	}}, b); err == nil {
		t.Error("COALESCE with no valid arg should error")
	}
	v, err = evalExpr(t, CallExpr{Name: "IF", Args: []Expression{
		CmpExpr{Op: OpGt, L: VarExpr{Name: "x"}, R: LitExpr{Term: rdf.Int(1)}},
		LitExpr{Term: rdf.String("big")},
		LitExpr{Term: rdf.String("small")},
	}}, b)
	if err != nil || v.Value != "big" {
		t.Errorf("IF = %v, %v", v, err)
	}
}

func TestBoundRequiresVariable(t *testing.T) {
	b := mapView{}
	if _, err := evalExpr(t, CallExpr{Name: "BOUND", Args: []Expression{
		LitExpr{Term: rdf.Int(1)},
	}}, b); err == nil {
		t.Error("BOUND(literal) should error")
	}
}

func TestAggExprOutsideGroupingErrors(t *testing.T) {
	b := mapView{}
	if _, err := evalExpr(t, AggExpr{Fn: "COUNT", Star: true}, b); err == nil {
		t.Error("bare aggregate evaluation should error")
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := lex(`?v $w <urn:x> pre:local _:b "s" 'q' 1 2.5 3e7 { } ( ) [ ] . ; , / | ^ ^^ * + - ! != = < > <= >= && || a # comment`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{
		tokVar, tokVar, tokIRI, tokPName, tokBlank, tokString, tokString,
		tokNumber, tokNumber, tokNumber,
		tokLBrace, tokRBrace, tokLParen, tokRParen, tokLBracket, tokRBracket,
		tokDot, tokSemicolon, tokComma, tokSlash, tokPipe, tokCaret, tokHatHat,
		tokStar, tokPlus, tokMinus, tokBang, tokNeq, tokEq, tokLt, tokGt,
		tokLe, tokGe, tokAndAnd, tokOrOr, tokA, tokEOF,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("tokens = %d, want %d: %+v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d = kind %d (%q), want %d", i, toks[i].kind, toks[i].text, k)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	bad := []string{
		`"unterminated`,
		`"bad\escape"`,
		"'newline\n'",
		`_:`,
		`_x`,
		"&",
		"@",
	}
	for _, in := range bad {
		if _, err := lex(in); err == nil {
			t.Errorf("lex(%q): expected error", in)
		}
	}
}

func TestLexerIRIVsComparison(t *testing.T) {
	toks, err := lex(`?a < 5 <urn:x> ?b <= 7`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokenKind{tokVar, tokLt, tokNumber, tokIRI, tokVar, tokLe, tokNumber, tokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d kind = %d, want %d", i, kinds[i], want[i])
		}
	}
}
