package sparql

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"optimatch/internal/rdf"
)

// fuzzPreds are the predicate IRIs random fuzz paths draw from.
var fuzzPreds = []string{"urn:p", "urn:q", "urn:r"}

// fuzzDecodeGraph reads 2-byte edges (s, o packed in byte 0, predicate in
// byte 1) into a graph over nodes urn:n0..urn:n7.
func fuzzDecodeGraph(edges []byte) *rdf.Graph {
	g := rdf.NewGraph()
	for i := 0; i+1 < len(edges) && i < 64; i += 2 {
		s := rdf.IRI(fmt.Sprintf("urn:n%d", edges[i]%8))
		o := rdf.IRI(fmt.Sprintf("urn:n%d", (edges[i]>>3)%8))
		p := rdf.IRI(fuzzPreds[int(edges[i+1])%len(fuzzPreds)])
		g.Add(s, p, o)
	}
	return g
}

// fuzzDecodePath reads a path AST from buf, one operator byte per node,
// bounded by a depth budget so the fuzzer cannot build towers of closures.
func fuzzDecodePath(buf []byte, pos *int, depth int) Path {
	if *pos >= len(buf) || depth <= 0 {
		return PredPath{IRI: fuzzPreds[0]}
	}
	b := buf[*pos]
	*pos++
	switch b % 6 {
	case 0, 1:
		return PredPath{IRI: fuzzPreds[int(b/6)%len(fuzzPreds)]}
	case 2:
		return InvPath{Inner: fuzzDecodePath(buf, pos, depth-1)}
	case 3:
		return SeqPath{Parts: []Path{fuzzDecodePath(buf, pos, depth-1), fuzzDecodePath(buf, pos, depth-1)}}
	case 4:
		return AltPath{Alts: []Path{fuzzDecodePath(buf, pos, depth-1), fuzzDecodePath(buf, pos, depth-1)}}
	default:
		mods := []byte{ModOneOrMore, ModZeroOrMore, ModZeroOrOne}
		return ModPath{Inner: fuzzDecodePath(buf, pos, depth-1), Mod: mods[int(b/6)%len(mods)]}
	}
}

// sortedRows renders result rows as sorted strings for set comparison
// across evaluator modes.
func sortedRows(r *Results) []string {
	out := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		s := ""
		for _, t := range row {
			s += t.String() + "\x1f"
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// FuzzPathEquivalence is a differential fuzz test for the path evaluator:
// for a random small graph and a random path, the CSR-indexed engine, the
// path-index-ablated engine, and the naive reference semantics must agree
// on the (s, o) relation under every endpoint binding, and full query
// execution must agree across the specialized / fallback x indexed /
// ablated configuration grid. Indexed vs ablated must match in exact
// emission order — that is the byte-identical-results bar the acceleration
// layer promises.
func FuzzPathEquivalence(f *testing.F) {
	// Seed corpus: edges first (2 bytes each), final bytes decode the path.
	// Node packing: s = b%8, o = (b>>3)%8.
	edge := func(s, o byte) byte { return s%8 | (o%8)<<3 }
	// Plain chain n0-p->n1-p->n2 under p+ (deep closure).
	f.Add([]byte{edge(0, 1), 0, edge(1, 2), 0, 0, 5})
	// Cycle n0->n1->n2->n0 under p+ — exercises the (start,start) emission.
	f.Add([]byte{edge(0, 1), 0, edge(1, 2), 0, edge(2, 0), 0, 0, 5})
	// Diamond n0->{n1,n2}->n3 under p* — zero-length self pairs plus joins.
	f.Add([]byte{edge(0, 1), 0, edge(0, 2), 0, edge(1, 3), 0, edge(2, 3), 0, 0, 11})
	// Inverse under closure: (^p)+ over the same cycle.
	f.Add([]byte{edge(0, 1), 0, edge(1, 2), 0, edge(2, 0), 0, 5, 2, 0})
	// Sequence with a bound midpoint dedup: p/q over a fan.
	f.Add([]byte{edge(0, 1), 0, edge(0, 2), 0, edge(1, 3), 1, edge(2, 3), 1, 3, 0, 1})
	// Alternation of closures: p+|^q*.
	f.Add([]byte{edge(0, 1), 0, edge(2, 1), 1, 4, 5, 0, 11, 2, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		if len(data) > 72 {
			data = data[:72]
		}
		// Last quarter of the input decodes the path, the rest the graph.
		split := len(data) - len(data)/4
		g := fuzzDecodeGraph(data[:split])
		pos := split
		p := fuzzDecodePath(data, &pos, 3)

		ref := refEval(g, p)
		nodes := refNodes(g)
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		var sb, ob rdf.ID
		if len(nodes) > 0 {
			sb = nodes[int(data[0])%len(nodes)]
			ob = nodes[int(data[len(data)-1])%len(nodes)]
		}

		// evalPath level: indexed and ablated vs reference, all bindings.
		for _, bind := range [][2]rdf.ID{
			{rdf.NoID, rdf.NoID}, {sb, rdf.NoID}, {rdf.NoID, ob}, {sb, ob},
		} {
			want := filterRef(ref, bind[0], bind[1])
			indexed := collectPathEnv(&pathEnv{g: g}, p, bind[0], bind[1])
			if !reflect.DeepEqual(indexed, want) {
				t.Fatalf("path %s bind %v: indexed %v, reference %v", PathString(p), bind, indexed, want)
			}
			ablated := collectPathEnv(&pathEnv{g: g, noIndex: true}, p, bind[0], bind[1])
			if !reflect.DeepEqual(ablated, want) {
				t.Fatalf("path %s bind %v: ablated %v, reference %v", PathString(p), bind, ablated, want)
			}
			// Exact emission order must match between indexed and ablated.
			// With both endpoints unbound, plain predicate enumeration goes
			// through map iteration (nondeterministic run to run in both
			// modes), so the order guarantee only holds for bound endpoints —
			// and for top-level closures, which walk the deterministic
			// NodeIDs list.
			if bind[0] == rdf.NoID && bind[1] == rdf.NoID {
				if m, ok := p.(ModPath); !ok || m.Mod == ModZeroOrOne {
					continue
				}
			}
			var seqA, seqB [][2]rdf.ID
			evalPath(&pathEnv{g: g}, p, bind[0], bind[1], func(s, o rdf.ID) bool {
				seqA = append(seqA, [2]rdf.ID{s, o})
				return true
			})
			evalPath(&pathEnv{g: g, noIndex: true}, p, bind[0], bind[1], func(s, o rdf.ID) bool {
				seqB = append(seqB, [2]rdf.ID{s, o})
				return true
			})
			if !reflect.DeepEqual(seqA, seqB) {
				t.Fatalf("path %s bind %v: emission order diverged\nindexed: %v\nablated: %v",
					PathString(p), bind, seqA, seqB)
			}
		}

		// Full query execution across the evaluator configuration grid.
		q, err := Parse("SELECT ?s ?o WHERE { ?s " + PathString(p) + " ?o }")
		if err != nil {
			t.Fatalf("Parse(%s): %v", PathString(p), err)
		}
		base, err := q.ExecOpts(g, ExecOptions{})
		if err != nil {
			t.Fatalf("Exec(%s): %v", PathString(p), err)
		}
		want := sortedRows(base)
		for _, opts := range []ExecOptions{
			{DisablePathIndex: true},
			{DisableSpecialization: true},
			{DisableSpecialization: true, DisablePathIndex: true},
		} {
			res, err := q.ExecOpts(g, opts)
			if err != nil {
				t.Fatalf("Exec(%s) with %+v: %v", PathString(p), opts, err)
			}
			if got := sortedRows(res); !reflect.DeepEqual(got, want) {
				t.Fatalf("query over %s: opts %+v rows %v, base rows %v", PathString(p), opts, got, want)
			}
		}
	})
}
