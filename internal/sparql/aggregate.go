package sparql

import (
	"fmt"
	"strings"

	"optimatch/internal/rdf"
)

// AggExpr is an aggregate function call: COUNT(?x), COUNT(*), COUNT(DISTINCT
// ?x), SUM/AVG/MIN/MAX(expr). Aggregates may appear in SELECT expressions,
// HAVING constraints and ORDER BY keys; the evaluator computes them per
// group and substitutes their values before ordinary expression evaluation.
type AggExpr struct {
	Fn       string // COUNT, SUM, AVG, MIN, MAX (uppercase)
	Distinct bool
	Star     bool       // COUNT(*)
	Arg      Expression // nil when Star
}

// Eval implements Expression. A bare AggExpr is never evaluated row-wise;
// reaching this method means an aggregate appeared where none is allowed.
func (e AggExpr) Eval(bindingView) (rdf.Term, error) {
	return rdf.Term{}, fmt.Errorf("%w: aggregate %s outside grouped evaluation", errType, e.Fn)
}

// aggregateFns lists the supported aggregate function names.
var aggregateFns = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// hasAggregate reports whether e contains any AggExpr.
func hasAggregate(e Expression) bool {
	found := false
	walkExpr(e, func(sub Expression) {
		if _, ok := sub.(AggExpr); ok {
			found = true
		}
	})
	return found
}

// walkExpr visits e and every subexpression.
func walkExpr(e Expression, fn func(Expression)) {
	fn(e)
	switch e := e.(type) {
	case NotExpr:
		walkExpr(e.Inner, fn)
	case NegExpr:
		walkExpr(e.Inner, fn)
	case AndExpr:
		walkExpr(e.L, fn)
		walkExpr(e.R, fn)
	case OrExpr:
		walkExpr(e.L, fn)
		walkExpr(e.R, fn)
	case CmpExpr:
		walkExpr(e.L, fn)
		walkExpr(e.R, fn)
	case ArithExpr:
		walkExpr(e.L, fn)
		walkExpr(e.R, fn)
	case CallExpr:
		for _, a := range e.Args {
			walkExpr(a, fn)
		}
	case AggExpr:
		if e.Arg != nil {
			walkExpr(e.Arg, fn)
		}
	}
}

// substituteAggregates returns a copy of e with every AggExpr replaced by
// the literal its computed value, looked up by the aggregate's key.
func substituteAggregates(e Expression, values map[string]rdf.Term) Expression {
	switch e := e.(type) {
	case AggExpr:
		if v, ok := values[aggKey(e)]; ok {
			return LitExpr{Term: v}
		}
		return e
	case NotExpr:
		return NotExpr{Inner: substituteAggregates(e.Inner, values)}
	case NegExpr:
		return NegExpr{Inner: substituteAggregates(e.Inner, values)}
	case AndExpr:
		return AndExpr{L: substituteAggregates(e.L, values), R: substituteAggregates(e.R, values)}
	case OrExpr:
		return OrExpr{L: substituteAggregates(e.L, values), R: substituteAggregates(e.R, values)}
	case CmpExpr:
		return CmpExpr{Op: e.Op, L: substituteAggregates(e.L, values), R: substituteAggregates(e.R, values)}
	case ArithExpr:
		return ArithExpr{Op: e.Op, L: substituteAggregates(e.L, values), R: substituteAggregates(e.R, values)}
	case CallExpr:
		args := make([]Expression, len(e.Args))
		for i, a := range e.Args {
			args[i] = substituteAggregates(a, values)
		}
		return CallExpr{Name: e.Name, Args: args}
	default:
		return e
	}
}

// aggKey identifies one aggregate instance for memoization within a group.
func aggKey(e AggExpr) string {
	var b strings.Builder
	b.WriteString(e.Fn)
	if e.Distinct {
		b.WriteString("/D")
	}
	if e.Star {
		b.WriteString("/*")
	} else {
		fmt.Fprintf(&b, "/%#v", e.Arg)
	}
	return b.String()
}

// collectAggregates gathers the distinct aggregate instances of e into out.
func collectAggregates(e Expression, out map[string]AggExpr) {
	walkExpr(e, func(sub Expression) {
		if agg, ok := sub.(AggExpr); ok {
			out[aggKey(agg)] = agg
		}
	})
}

// computeAggregate evaluates one aggregate over a group of solutions.
func computeAggregate(ctx *evalCtx, agg AggExpr, group []solution) (rdf.Term, error) {
	if agg.Fn == "COUNT" && agg.Star {
		return rdf.Int(int64(len(group))), nil
	}
	var values []rdf.Term
	var seen map[string]bool
	if agg.Distinct {
		seen = make(map[string]bool)
	}
	for _, s := range group {
		v, err := agg.Arg.Eval(solView{ctx, s})
		if err != nil {
			continue // per SPARQL, error rows are skipped by aggregates
		}
		if agg.Distinct {
			k := v.String()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		values = append(values, v)
	}
	switch agg.Fn {
	case "COUNT":
		return rdf.Int(int64(len(values))), nil
	case "SUM", "AVG":
		sum := 0.0
		n := 0
		for _, v := range values {
			f, ok := v.Float()
			if !ok {
				return rdf.Term{}, fmt.Errorf("%w: %s over non-numeric value %s", errType, agg.Fn, v)
			}
			sum += f
			n++
		}
		if agg.Fn == "SUM" {
			return rdf.Float(sum), nil
		}
		if n == 0 {
			return rdf.Term{}, fmt.Errorf("%w: AVG over empty group", errType)
		}
		return rdf.Float(sum / float64(n)), nil
	case "MIN", "MAX":
		if len(values) == 0 {
			return rdf.Term{}, fmt.Errorf("%w: %s over empty group", errType, agg.Fn)
		}
		best := values[0]
		for _, v := range values[1:] {
			c := v.Compare(best)
			if (agg.Fn == "MIN" && c < 0) || (agg.Fn == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return rdf.Term{}, fmt.Errorf("%w: unknown aggregate %s", errType, agg.Fn)
	}
}

// groupSolutions partitions the solutions by the GROUP BY variables. With
// no GROUP BY, all solutions form one group (even an empty one, so that
// COUNT(*) over no matches yields 0).
func groupSolutions(ctx *evalCtx, groupBy []string, sols []solution) [][]solution {
	if len(groupBy) == 0 {
		return [][]solution{sols}
	}
	slots := make([]int, len(groupBy))
	for i, v := range groupBy {
		slots[i] = ctx.slot(v)
	}
	index := make(map[string]int)
	var groups [][]solution
	for _, s := range sols {
		var key strings.Builder
		for _, slot := range slots {
			key.WriteString(s[slot].String())
			key.WriteByte('\x1f')
		}
		k := key.String()
		gi, ok := index[k]
		if !ok {
			gi = len(groups)
			index[k] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], s)
	}
	return groups
}

// evalGrouped performs grouping, aggregation, HAVING and projection for
// queries that use GROUP BY or aggregates.
func (ctx *evalCtx) evalGrouped(q *Query, sols []solution) (*Results, error) {
	// Validate projection: non-aggregate select expressions may reference
	// only grouped variables.
	grouped := make(map[string]bool, len(q.GroupBy))
	for _, v := range q.GroupBy {
		grouped[v] = true
	}
	for _, item := range q.Select {
		if hasAggregate(item.Expr) {
			continue
		}
		for _, v := range exprVars(item.Expr) {
			if !grouped[v] {
				return nil, fmt.Errorf("sparql: variable ?%s in SELECT is neither aggregated nor in GROUP BY", v)
			}
		}
	}

	// Collect every aggregate instance used anywhere.
	aggs := make(map[string]AggExpr)
	for _, item := range q.Select {
		collectAggregates(item.Expr, aggs)
	}
	if q.Having != nil {
		collectAggregates(q.Having, aggs)
	}
	for _, key := range q.OrderBy {
		collectAggregates(key.Expr, aggs)
	}

	groups := groupSolutions(ctx, q.GroupBy, sols)

	type groupRow struct {
		rep    solution // representative solution for grouped vars
		values map[string]rdf.Term
	}
	var rows []groupRow
	for _, g := range groups {
		if err := ctx.cancel.check(); err != nil {
			return nil, err
		}
		values := make(map[string]rdf.Term, len(aggs))
		for key, agg := range aggs {
			v, err := computeAggregate(ctx, agg, g)
			if err != nil {
				continue // unbound aggregate: projection yields unbound
			}
			values[key] = v
		}
		var rep solution
		if len(g) > 0 {
			rep = g[0]
		} else {
			rep = ctx.emptySolution()
		}
		if q.Having != nil {
			ok, err := ebv(substituteAggregates(q.Having, values), solView{ctx, rep})
			if err != nil || !ok {
				continue
			}
		}
		rows = append(rows, groupRow{rep: rep, values: values})
	}

	// ORDER BY over groups.
	if len(q.OrderBy) > 0 {
		type keyed struct {
			row  groupRow
			keys []rdf.Term
		}
		ks := make([]keyed, len(rows))
		for i, row := range rows {
			keys := make([]rdf.Term, len(q.OrderBy))
			for j, ok := range q.OrderBy {
				expr := substituteAggregates(ok.Expr, row.values)
				if v, err := expr.Eval(solView{ctx, row.rep}); err == nil {
					keys[j] = v
				}
			}
			ks[i] = keyed{row: row, keys: keys}
		}
		sortKeyed := func(a, b keyed) bool {
			for j := range q.OrderBy {
				c := a.keys[j].Compare(b.keys[j])
				if q.OrderBy[j].Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		}
		for i := 1; i < len(ks); i++ {
			for j := i; j > 0 && sortKeyed(ks[j], ks[j-1]); j-- {
				ks[j], ks[j-1] = ks[j-1], ks[j]
			}
		}
		for i := range ks {
			rows[i] = ks[i].row
		}
	}

	// Projection.
	res := &Results{}
	for _, item := range q.Select {
		res.Vars = append(res.Vars, item.Alias)
	}
	var seen map[string]bool
	var keyer distinctKeyer
	if q.Distinct {
		seen = make(map[string]bool)
		keyer.dict = ctx.g.Dict()
	}
	for _, row := range rows {
		if err := ctx.cancel.check(); err != nil {
			return nil, err
		}
		out := make([]rdf.Term, len(q.Select))
		for i, item := range q.Select {
			expr := substituteAggregates(item.Expr, row.values)
			if v, err := expr.Eval(solView{ctx, row.rep}); err == nil {
				out[i] = v
			}
		}
		if q.Distinct {
			key := keyer.key(out)
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		res.Rows = append(res.Rows, out)
	}
	if q.Offset > 0 {
		if q.Offset >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(res.Rows) {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

// usesAggregation reports whether the query needs grouped evaluation.
func (q *Query) usesAggregation() bool {
	if len(q.GroupBy) > 0 || q.Having != nil {
		return true
	}
	for _, item := range q.Select {
		if hasAggregate(item.Expr) {
			return true
		}
	}
	for _, key := range q.OrderBy {
		if hasAggregate(key.Expr) {
			return true
		}
	}
	return false
}
