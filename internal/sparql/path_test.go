package sparql

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"optimatch/internal/rdf"
)

// refEval is a naive reference implementation of property-path semantics
// used to cross-check evalPath: it materializes the relation of each path
// as a set of (s, o) pairs over the whole graph.
func refEval(g *rdf.Graph, p Path) map[[2]rdf.ID]bool {
	switch p := p.(type) {
	case PredPath:
		out := map[[2]rdf.ID]bool{}
		pid := g.Dict().Lookup(rdf.IRI(p.IRI))
		if pid == rdf.NoID {
			return out
		}
		g.Match(rdf.NoID, pid, rdf.NoID, func(s, _, o rdf.ID) bool {
			out[[2]rdf.ID{s, o}] = true
			return true
		})
		return out
	case InvPath:
		inner := refEval(g, p.Inner)
		out := make(map[[2]rdf.ID]bool, len(inner))
		for k := range inner {
			out[[2]rdf.ID{k[1], k[0]}] = true
		}
		return out
	case SeqPath:
		cur := refEval(g, p.Parts[0])
		for _, part := range p.Parts[1:] {
			next := refEval(g, part)
			joined := map[[2]rdf.ID]bool{}
			for a := range cur {
				for b := range next {
					if a[1] == b[0] {
						joined[[2]rdf.ID{a[0], b[1]}] = true
					}
				}
			}
			cur = joined
		}
		return cur
	case AltPath:
		out := map[[2]rdf.ID]bool{}
		for _, alt := range p.Alts {
			for k := range refEval(g, alt) {
				out[k] = true
			}
		}
		return out
	case ModPath:
		base := refEval(g, p.Inner)
		out := map[[2]rdf.ID]bool{}
		switch p.Mod {
		case ModZeroOrOne:
			for _, n := range refNodes(g) {
				out[[2]rdf.ID{n, n}] = true
			}
			for k := range base {
				out[k] = true
			}
		case ModOneOrMore, ModZeroOrMore:
			// Transitive closure by repeated squaring-ish iteration.
			for k := range base {
				out[k] = true
			}
			for {
				added := false
				for a := range out {
					for b := range base {
						if a[1] == b[0] {
							k := [2]rdf.ID{a[0], b[1]}
							if !out[k] {
								out[k] = true
								added = true
							}
						}
					}
				}
				if !added {
					break
				}
			}
			if p.Mod == ModZeroOrMore {
				for _, n := range refNodes(g) {
					out[[2]rdf.ID{n, n}] = true
				}
			}
		}
		return out
	default:
		panic("refEval: unsupported path")
	}
}

func refNodes(g *rdf.Graph) []rdf.ID {
	seen := map[rdf.ID]bool{}
	var out []rdf.ID
	g.Match(rdf.NoID, rdf.NoID, rdf.NoID, func(s, _, o rdf.ID) bool {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
		return true
	})
	return out
}

// collectPath gathers evalPath's output as a sorted pair list, with
// duplicates removed (closure paths have set semantics; plain alternatives
// may emit duplicates which the engine dedupes at extendTriple level).
func collectPath(g *rdf.Graph, p Path, s, o rdf.ID) [][2]rdf.ID {
	return collectPathEnv(&pathEnv{g: g}, p, s, o)
}

// collectPathEnv is collectPath over an explicit environment, so tests can
// compare the indexed and noIndex evaluators.
func collectPathEnv(env *pathEnv, p Path, s, o rdf.ID) [][2]rdf.ID {
	set := map[[2]rdf.ID]bool{}
	evalPath(env, p, s, o, func(ms, mo rdf.ID) bool {
		set[[2]rdf.ID{ms, mo}] = true
		return true
	})
	out := make([][2]rdf.ID, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func filterRef(ref map[[2]rdf.ID]bool, s, o rdf.ID) [][2]rdf.ID {
	out := make([][2]rdf.ID, 0, len(ref))
	for k := range ref {
		if s != rdf.NoID && k[0] != s {
			continue
		}
		if o != rdf.NoID && k[1] != o {
			continue
		}
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// randomPathGraph builds a small random graph over a few predicates.
func randomPathGraph(seed int64) *rdf.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := rdf.NewGraph()
	nodes := make([]rdf.Term, 6)
	for i := range nodes {
		nodes[i] = rdf.IRI(fmt.Sprintf("urn:n%d", i))
	}
	preds := []rdf.Term{rdf.IRI("urn:p"), rdf.IRI("urn:q"), rdf.IRI("urn:r")}
	n := 4 + rng.Intn(14)
	for i := 0; i < n; i++ {
		g.Add(nodes[rng.Intn(len(nodes))], preds[rng.Intn(len(preds))], nodes[rng.Intn(len(nodes))])
	}
	return g
}

// randomPath builds a random path AST of bounded depth.
func randomPath(rng *rand.Rand, depth int) Path {
	preds := []string{"urn:p", "urn:q", "urn:r"}
	if depth <= 0 || rng.Float64() < 0.4 {
		return PredPath{IRI: preds[rng.Intn(len(preds))]}
	}
	switch rng.Intn(4) {
	case 0:
		return InvPath{Inner: randomPath(rng, depth-1)}
	case 1:
		return SeqPath{Parts: []Path{randomPath(rng, depth-1), randomPath(rng, depth-1)}}
	case 2:
		return AltPath{Alts: []Path{randomPath(rng, depth-1), randomPath(rng, depth-1)}}
	default:
		mods := []byte{ModOneOrMore, ModZeroOrMore, ModZeroOrOne}
		return ModPath{Inner: randomPath(rng, depth-1), Mod: mods[rng.Intn(len(mods))]}
	}
}

// TestPathAgainstReferenceProperty cross-checks evalPath with the naive
// reference for random graphs, random paths and every endpoint binding
// combination.
func TestPathAgainstReferenceProperty(t *testing.T) {
	check := func(seed int64) bool {
		g := randomPathGraph(seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		p := randomPath(rng, 3)
		ref := refEval(g, p)

		// Bound endpoints over the graph's nodes (sorted so the pick is
		// reproducible; refNodes follows map iteration order).
		nodes := refNodes(g)
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		var s, o rdf.ID
		if len(nodes) > 0 {
			s = nodes[rng.Intn(len(nodes))]
			o = nodes[rng.Intn(len(nodes))]
		}

		for _, noIndex := range []bool{false, true} {
			env := &pathEnv{g: g, noIndex: noIndex}
			// Unbound-unbound.
			if !reflect.DeepEqual(collectPathEnv(env, p, rdf.NoID, rdf.NoID), filterRef(ref, rdf.NoID, rdf.NoID)) {
				t.Logf("seed %d path %s noIndex=%v: unbound mismatch", seed, PathString(p), noIndex)
				return false
			}
			if len(nodes) == 0 {
				continue
			}
			if !reflect.DeepEqual(collectPathEnv(env, p, s, rdf.NoID), filterRef(ref, s, rdf.NoID)) {
				t.Logf("seed %d path %s noIndex=%v: s-bound mismatch", seed, PathString(p), noIndex)
				return false
			}
			if !reflect.DeepEqual(collectPathEnv(env, p, rdf.NoID, o), filterRef(ref, rdf.NoID, o)) {
				t.Logf("seed %d path %s noIndex=%v: o-bound mismatch", seed, PathString(p), noIndex)
				return false
			}
			if !reflect.DeepEqual(collectPathEnv(env, p, s, o), filterRef(ref, s, o)) {
				t.Logf("seed %d path %s noIndex=%v: both-bound mismatch", seed, PathString(p), noIndex)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPathEarlyStop verifies that emit returning false stops enumeration
// through every path operator.
func TestPathEarlyStop(t *testing.T) {
	g := randomPathGraph(42)
	paths := []Path{
		PredPath{IRI: "urn:p"},
		InvPath{Inner: PredPath{IRI: "urn:p"}},
		SeqPath{Parts: []Path{PredPath{IRI: "urn:p"}, PredPath{IRI: "urn:q"}}},
		AltPath{Alts: []Path{PredPath{IRI: "urn:p"}, PredPath{IRI: "urn:q"}}},
		ModPath{Inner: PredPath{IRI: "urn:p"}, Mod: ModZeroOrMore},
		ModPath{Inner: PredPath{IRI: "urn:p"}, Mod: ModOneOrMore},
		ModPath{Inner: PredPath{IRI: "urn:p"}, Mod: ModZeroOrOne},
	}
	for _, p := range paths {
		total := 0
		evalPath(&pathEnv{g: g}, p, rdf.NoID, rdf.NoID, func(_, _ rdf.ID) bool {
			total++
			return true
		})
		if total < 2 {
			continue // nothing to stop early on
		}
		calls := 0
		stopped := evalPath(&pathEnv{g: g}, p, rdf.NoID, rdf.NoID, func(_, _ rdf.ID) bool {
			calls++
			return calls < 2
		})
		if stopped {
			t.Errorf("path %s: early stop not propagated", PathString(p))
		}
		if calls != 2 {
			t.Errorf("path %s: %d calls after stop, want 2", PathString(p), calls)
		}
	}
}
