package sparql

import (
	"fmt"
	"sort"
	"strings"

	"optimatch/internal/rdf"
)

// This file implements per-graph query specialization, the default
// evaluation path. Before matching starts, every constant term the query
// mentions (Analysis.Consts) is resolved to the target graph's dense
// dictionary ID exactly once, and evaluation bails out immediately when a
// required constant is absent from the graph's vocabulary. Pattern matching
// then runs entirely in ID space: a solution is a []rdf.ID instead of a
// []rdf.Term, so extending a solution copies machine words instead of term
// structs, comparing bindings never hashes strings, and the GC sees no
// pointers inside solution rows. Terms synthesized by BIND (which may not
// exist in the graph) live in a per-evaluation side table addressed by IDs
// with the top bit set. Projection, ORDER BY, DISTINCT and aggregation are
// shared with the term-space path in eval.go: solutions are converted back
// to terms once, after the WHERE clause has finished.
//
// ExecOptions.DisableSpecialization selects the legacy term-space path in
// eval.go instead; both paths produce identical results (the ablation
// benchmarks and the prefilter property test in internal/core rely on
// this).

// extraIDBit marks IDs addressing the per-evaluation side table of terms
// that are not in the graph's dictionary. Graph dictionaries are per-plan
// and orders of magnitude smaller than 2^31 entries, so the bit is free.
const extraIDBit rdf.ID = 1 << 31

// isol is a solution in ID space: one graph dictionary ID (or side-table
// ID) per variable slot, rdf.NoID meaning unbound.
type isol []rdf.ID

// specCtx extends the shared evaluation context with the per-(query, graph)
// specialization state.
type specCtx struct {
	*evalCtx

	// constIDs maps every constant term of the query to its dense ID in the
	// target graph (NoID when absent), resolved once before evaluation.
	constIDs map[rdf.Term]rdf.ID

	// predCard memoizes Count(NoID, p, NoID) per predicate, the only Count
	// combination that is not O(1) on the index maps; the join-order
	// heuristic asks for it once per pattern per BGP step.
	predCard map[rdf.ID]int

	// env is the property-path environment with the memoized predicate
	// resolver.
	env pathEnv

	// extra and extraIDs hold terms synthesized during evaluation (BIND
	// results) that the graph's dictionary does not contain.
	extra    []rdf.Term
	extraIDs map[rdf.Term]rdf.ID

	// floats memoizes numeric parsing per term ID: FILTER comparisons over
	// cardinalities and costs re-visit the same few literals for every row.
	floats map[rdf.ID]cachedFloat
}

type cachedFloat struct {
	f  float64
	ok bool
}

// floatOf is Term.Float for the term behind id, memoized per evaluation.
func (sc *specCtx) floatOf(id rdf.ID) (float64, bool) {
	if v, hit := sc.floats[id]; hit {
		return v.f, v.ok
	}
	f, ok := sc.term(id).Float()
	if sc.floats == nil {
		sc.floats = make(map[rdf.ID]cachedFloat)
	}
	sc.floats[id] = cachedFloat{f, ok}
	return f, ok
}

func newSpecCtx(g *rdf.Graph, q *Query, opts ExecOptions) *specCtx {
	an := q.Analysis()
	sc := &specCtx{
		evalCtx:  newEvalCtx(g, q, opts),
		constIDs: make(map[rdf.Term]rdf.ID, len(an.Consts)),
	}
	dict := g.Dict()
	for _, t := range an.Consts {
		sc.constIDs[t] = dict.Lookup(t)
	}
	sc.env = pathEnv{g: g, noIndex: opts.DisablePathIndex, cancel: sc.cancel, pred: func(iri string) rdf.ID {
		return sc.constID(rdf.IRI(iri))
	}}
	return sc
}

// constID resolves a constant term through the pre-resolved table, falling
// back to the dictionary for terms the static analysis did not see (hand-
// assembled queries only).
func (sc *specCtx) constID(t rdf.Term) rdf.ID {
	if id, ok := sc.constIDs[t]; ok {
		return id
	}
	return sc.g.Dict().Lookup(t)
}

// term converts an ID-space binding back to a term.
func (sc *specCtx) term(id rdf.ID) rdf.Term {
	switch {
	case id == rdf.NoID:
		return rdf.Term{}
	case id&extraIDBit != 0:
		return sc.extra[id&^extraIDBit]
	default:
		return sc.g.Dict().Term(id)
	}
}

// intern maps a term produced during evaluation to an ID: the graph's own
// ID when the dictionary knows the term, a side-table ID otherwise. Side-
// table IDs never collide with graph IDs, so an ID equality test is exactly
// a term equality test.
func (sc *specCtx) intern(t rdf.Term) rdf.ID {
	if t.Zero() {
		return rdf.NoID
	}
	if id := sc.g.Dict().Lookup(t); id != rdf.NoID {
		return id
	}
	if id, ok := sc.extraIDs[t]; ok {
		return id
	}
	if sc.extraIDs == nil {
		sc.extraIDs = make(map[rdf.Term]rdf.ID)
	}
	id := extraIDBit | rdf.ID(len(sc.extra))
	sc.extra = append(sc.extra, t)
	sc.extraIDs[t] = id
	return id
}

// specView adapts an ID-space solution to the expression evaluator.
type specView struct {
	sc  *specCtx
	sol isol
}

func (v specView) lookupVar(name string) (rdf.Term, bool) {
	i, ok := v.sc.varIndex[name]
	if !ok || i >= len(v.sol) {
		return rdf.Term{}, false
	}
	id := v.sol[i]
	if id == rdf.NoID {
		return rdf.Term{}, false
	}
	return v.sc.term(id), true
}

// execSpecialized is the specialized counterpart of the term-space body of
// ExecOpts: same structure, ID-space WHERE evaluation, shared projection
// and aggregation tail.
func (q *Query) execSpecialized(g *rdf.Graph, opts ExecOptions) (*Results, error) {
	sc := newSpecCtx(g, q, opts)
	if opts.Stats != nil {
		defer func() { opts.Stats.addPath(sc.env.stats) }()
	}
	var sols []solution
	// Required-constant bail-out: when the graph's vocabulary misses a term
	// every match must contain, the WHERE clause is known to produce zero
	// solutions without being evaluated. The projection tail still runs so
	// aggregates over the empty solution set behave exactly as in the
	// term-space path.
	var isols []isol
	var err error
	if q.Analysis().RequiredIn(g) {
		seed := []isol{make(isol, len(sc.varNames))}
		isols, err = sc.evalGroupIDs(q.Where, seed)
		if err != nil {
			return nil, err
		}
	} else if opts.Stats != nil {
		opts.Stats.constantBailout.Add(1)
	}
	var res *Results
	var ok bool
	switch {
	case q.usesAggregation():
		if q.Star {
			return nil, fmt.Errorf("sparql: SELECT * cannot be combined with aggregation")
		}
		res, err = sc.evalCtx.evalGrouped(q, sc.toTermSolutions(isols))
	default:
		if res, ok, err = sc.projectIDs(q, isols); err == nil && !ok {
			sols = sc.toTermSolutions(isols)
			res, err = sc.evalCtx.project(q, sols)
		}
	}
	if err != nil {
		return nil, err
	}
	// Mirror ExecOpts: a cancellation observed mid-path must not let a
	// truncated result escape as a complete one.
	if cerr := sc.cancel.tripped(); cerr != nil {
		return nil, cerr
	}
	return res, nil
}

// projectIDs applies SELECT, DISTINCT, ORDER BY, LIMIT and OFFSET directly
// on ID-space solutions, mirroring evalCtx.project step for step (sort
// before dedup, same comparator, same stable order). It handles only
// projections and order keys that are plain variables — the shape of every
// pattern- and knowledge-base-compiled query — and reports false otherwise
// so the caller falls back to the term-space tail. The payoff is that terms
// materialize only for sort keys and for rows that survive DISTINCT and
// LIMIT/OFFSET; dictionary interning makes an ID tuple an exact stand-in
// for a term tuple in the DISTINCT probe.
func (sc *specCtx) projectIDs(q *Query, sols []isol) (*Results, bool, error) {
	var vars []string
	var slots []int
	slotOf := func(name string) int {
		if i, ok := sc.varIndex[name]; ok {
			return i
		}
		return -1
	}
	if q.Star {
		for i, v := range sc.varNames {
			if !strings.HasPrefix(v, "!") {
				vars = append(vars, v)
				slots = append(slots, i)
			}
		}
	} else {
		for _, item := range q.Select {
			ve, ok := item.Expr.(VarExpr)
			if !ok {
				return nil, false, nil
			}
			vars = append(vars, item.Alias)
			slots = append(slots, slotOf(ve.Name))
		}
	}
	orderSlots := make([]int, len(q.OrderBy))
	for j, key := range q.OrderBy {
		ve, ok := key.Expr.(VarExpr)
		if !ok {
			return nil, false, nil
		}
		orderSlots[j] = slotOf(ve.Name)
	}

	at := func(s isol, slot int) rdf.ID {
		if slot >= 0 && slot < len(s) {
			return s[slot]
		}
		return rdf.NoID
	}

	if len(orderSlots) > 0 {
		type keyed struct {
			sol  isol
			keys []rdf.Term
		}
		ks := make([]keyed, len(sols))
		for i, s := range sols {
			keys := make([]rdf.Term, len(orderSlots))
			for j, slot := range orderSlots {
				if id := at(s, slot); id != rdf.NoID {
					keys[j] = sc.term(id)
				}
			}
			ks[i] = keyed{sol: s, keys: keys}
		}
		sort.SliceStable(ks, func(a, b int) bool {
			for j := range orderSlots {
				c := ks[a].keys[j].Compare(ks[b].keys[j])
				if q.OrderBy[j].Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		for i := range ks {
			sols[i] = ks[i].sol
		}
	}

	idRows := make([]isol, 0, len(sols))
	var seen map[string]bool
	var keyBuf []byte
	if q.Distinct {
		seen = make(map[string]bool, len(sols))
	}
	for _, s := range sols {
		if err := sc.cancel.check(); err != nil {
			return nil, true, err
		}
		if q.Distinct {
			keyBuf = keyBuf[:0]
			for _, slot := range slots {
				id := at(s, slot)
				keyBuf = append(keyBuf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
			}
			if seen[string(keyBuf)] {
				continue
			}
			seen[string(keyBuf)] = true
		}
		row := make(isol, len(slots))
		for i, slot := range slots {
			row[i] = at(s, slot)
		}
		idRows = append(idRows, row)
	}

	if q.Offset > 0 {
		if q.Offset >= len(idRows) {
			idRows = nil
		} else {
			idRows = idRows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(idRows) {
		idRows = idRows[:q.Limit]
	}

	res := &Results{Vars: vars}
	if len(idRows) > 0 {
		res.Rows = make([][]rdf.Term, len(idRows))
		for i, r := range idRows {
			row := make([]rdf.Term, len(r))
			for j, id := range r {
				if id != rdf.NoID {
					row[j] = sc.term(id)
				}
			}
			res.Rows[i] = row
		}
	}
	return res, true, nil
}

// toTermSolutions converts ID-space solutions to term space for the shared
// projection/aggregation tail, padding rows to the final slot count.
func (sc *specCtx) toTermSolutions(in []isol) []solution {
	out := make([]solution, len(in))
	for i, s := range in {
		ts := make(solution, len(sc.varNames))
		for j, id := range s {
			if id != rdf.NoID {
				ts[j] = sc.term(id)
			}
		}
		out[i] = ts
	}
	return out
}

// evalGroupIDs mirrors evalCtx.evalGroup in ID space.
func (sc *specCtx) evalGroupIDs(g *GroupPattern, seed []isol) ([]isol, error) {
	if len(seed) == 0 {
		return nil, nil
	}
	bound := make(boundSet)
	for name, idx := range sc.varIndex {
		all := true
		for _, s := range seed {
			if idx >= len(s) || s[idx] == rdf.NoID {
				all = false
				break
			}
		}
		if all {
			bound[name] = true
		}
	}

	var filters []*pendingFilter
	for _, el := range g.Elems {
		if f, ok := el.(FilterElem); ok {
			filters = append(filters, &pendingFilter{
				expr:  f.Expr,
				vars:  exprVars(f.Expr),
				eager: filterIsEager(f.Expr),
			})
		}
	}

	sols := seed
	var err error
	i := 0
	for i < len(g.Elems) {
		switch el := g.Elems[i].(type) {
		case FilterElem:
			i++ // collected above
		case TriplePattern:
			var block []TriplePattern
			for i < len(g.Elems) {
				if tp, ok := g.Elems[i].(TriplePattern); ok {
					block = append(block, tp)
					i++
					continue
				}
				if _, ok := g.Elems[i].(FilterElem); ok {
					i++
					continue
				}
				break
			}
			sols, err = sc.evalBGPIDs(block, sols, bound, filters)
			if err != nil {
				return nil, err
			}
		case OptionalElem:
			i++
			sols, err = sc.evalOptionalIDs(el, sols)
			if err != nil {
				return nil, err
			}
		case UnionElem:
			i++
			sols, err = sc.evalUnionIDs(el, sols)
			if err != nil {
				return nil, err
			}
			branchBound := sc.groupBoundVars(el.Branches[0])
			for _, b := range el.Branches[1:] {
				next := sc.groupBoundVars(b)
				for v := range branchBound {
					if !next[v] {
						delete(branchBound, v)
					}
				}
			}
			for v := range branchBound {
				bound[v] = true
			}
			sols, err = sc.applyReadyFiltersIDs(filters, bound, sols)
			if err != nil {
				return nil, err
			}
		case GroupElem:
			i++
			sols, err = sc.evalGroupIDs(el.Group, sols)
			if err != nil {
				return nil, err
			}
			for v := range sc.groupBoundVars(el.Group) {
				bound[v] = true
			}
			sols, err = sc.applyReadyFiltersIDs(filters, bound, sols)
			if err != nil {
				return nil, err
			}
		case FilterExistsElem:
			i++
			out := sols[:0]
			for _, s := range sols {
				res, eerr := sc.evalGroupIDs(el.Group, []isol{append(isol(nil), s...)})
				if eerr != nil {
					return nil, eerr
				}
				if (len(res) > 0) != el.Not {
					out = append(out, s)
				}
			}
			sols = out
		case BindElem:
			i++
			slot := sc.slot(el.Var)
			out := sols[:0]
			for _, s := range sols {
				v, verr := el.Expr.Eval(specView{sc, s})
				ns := append(isol(nil), s...)
				if verr == nil {
					if len(ns) <= slot {
						grown := make(isol, len(sc.varNames))
						copy(grown, ns)
						ns = grown
					}
					ns[slot] = sc.intern(v)
				}
				out = append(out, ns)
			}
			sols = out
			bound[el.Var] = true
			sols, err = sc.applyReadyFiltersIDs(filters, bound, sols)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("sparql: unknown pattern element %T", el)
		}
	}

	for _, f := range filters {
		if f.applied {
			continue
		}
		sols = sc.filterSolutionsIDs(f.expr, sols)
		f.applied = true
	}
	return sols, nil
}

func (sc *specCtx) applyReadyFiltersIDs(filters []*pendingFilter, bound boundSet, sols []isol) ([]isol, error) {
	for _, f := range filters {
		if f.applied || !f.eager || !bound.hasAll(f.vars) {
			continue
		}
		sols = sc.filterSolutionsIDs(f.expr, sols)
		f.applied = true
	}
	return sols, nil
}

func (sc *specCtx) filterSolutionsIDs(expr Expression, sols []isol) []isol {
	keep, fast := sc.fastFilter(expr)
	if !fast {
		keep = sc.genericFilter(expr)
	}
	out := sols[:0]
	for _, s := range sols {
		if keep(s) {
			out = append(out, s)
		}
	}
	return out
}

// genericFilter evaluates the expression through the shared evaluator; an
// evaluation error drops the row, as in the term-space path.
func (sc *specCtx) genericFilter(expr Expression) func(isol) bool {
	return func(s isol) bool {
		ok, err := ebv(expr, specView{sc, s})
		return err == nil && ok
	}
}

// fastFilter compiles the two filter shapes that dominate pattern and
// knowledge-base queries — a variable compared against a numeric constant
// (FILTER(?card > 1000)) and variable (in)equality (FILTER(?a != ?b)) —
// into closures over ID-space solutions with memoized numeric parsing.
// Rows the closure cannot decide exactly fall back to the generic evaluator
// per row, so the semantics of eval.go's CmpExpr are preserved bit for bit.
func (sc *specCtx) fastFilter(expr Expression) (func(isol) bool, bool) {
	cmp, ok := expr.(CmpExpr)
	if !ok {
		return nil, false
	}

	// ?a op ?b, equality only (ordering mixes numeric and lexical compares;
	// leave it to the generic path).
	if lv, lok := cmp.L.(VarExpr); lok {
		if rv, rok := cmp.R.(VarExpr); rok && (cmp.Op == OpEq || cmp.Op == OpNeq) {
			li, liok := sc.varIndex[lv.Name]
			ri, riok := sc.varIndex[rv.Name]
			if !liok || !riok {
				return nil, false
			}
			return func(s isol) bool {
				lid, rid := s[li], s[ri]
				if lid == rdf.NoID || rid == rdf.NoID {
					return false // comparing an unbound var errors: row dropped
				}
				// Mirror CmpExpr.Eval: numeric comparison when both sides
				// parse as numbers, term value equality otherwise. Distinct
				// IDs are distinct terms (intern checks the dictionary
				// before the side table), so termValueEqual sees the same
				// terms the legacy path would.
				lf, lnum := sc.floatOf(lid)
				rf, rnum := sc.floatOf(rid)
				var eq bool
				if lnum && rnum {
					eq = lf == rf
				} else {
					eq = lid == rid || termValueEqual(sc.term(lid), sc.term(rid))
				}
				return eq == (cmp.Op == OpEq)
			}, true
		}
	}

	// Numeric comparison: both sides compile to float evaluators
	// (variables, numeric literals, arithmetic over them). Rows where a
	// side is unbound or non-numeric re-evaluate generically, so error and
	// lexical-fallback semantics stay identical.
	lf, lok := sc.compileNumeric(cmp.L)
	rf, rok := sc.compileNumeric(cmp.R)
	if !lok || !rok {
		return nil, false
	}
	generic := sc.genericFilter(expr)
	return func(s isol) bool {
		l, ok := lf(s)
		if !ok {
			return generic(s)
		}
		r, ok := rf(s)
		if !ok {
			return generic(s)
		}
		return cmpFloat(cmp.Op, l, r)
	}, true
}

// numFn evaluates a numeric sub-expression against an ID-space solution.
// The bool result is false when the row needs the generic evaluator (an
// unbound variable, a non-numeric binding, division by zero).
type numFn func(s isol) (float64, bool)

// compileNumeric compiles the numeric expression fragment the FILTER
// grammar of patterns produces: variables, numeric literals, unary minus
// and the four arithmetic operators. ArithExpr evaluates in float64 and
// renders through rdf.Float, whose round-trip formatting makes computing
// directly on float64 exact.
func (sc *specCtx) compileNumeric(e Expression) (numFn, bool) {
	switch e := e.(type) {
	case LitExpr:
		f, ok := e.Term.Float()
		if !ok {
			return nil, false
		}
		return func(isol) (float64, bool) { return f, true }, true
	case VarExpr:
		slot, ok := sc.varIndex[e.Name]
		if !ok {
			return nil, false
		}
		return func(s isol) (float64, bool) {
			id := s[slot]
			if id == rdf.NoID {
				return 0, false
			}
			return sc.floatOf(id)
		}, true
	case NegExpr:
		inner, ok := sc.compileNumeric(e.Inner)
		if !ok {
			return nil, false
		}
		return func(s isol) (float64, bool) {
			v, ok := inner(s)
			return -v, ok
		}, true
	case ArithExpr:
		l, lok := sc.compileNumeric(e.L)
		r, rok := sc.compileNumeric(e.R)
		if !lok || !rok {
			return nil, false
		}
		op := e.Op
		if op != '+' && op != '-' && op != '*' && op != '/' {
			return nil, false
		}
		return func(s isol) (float64, bool) {
			lv, ok := l(s)
			if !ok {
				return 0, false
			}
			rv, ok := r(s)
			if !ok {
				return 0, false
			}
			switch op {
			case '+':
				return lv + rv, true
			case '-':
				return lv - rv, true
			case '*':
				return lv * rv, true
			default:
				if rv == 0 {
					return 0, false // division by zero errors in ArithExpr
				}
				return lv / rv, true
			}
		}, true
	}
	return nil, false
}

func (sc *specCtx) evalOptionalIDs(el OptionalElem, sols []isol) ([]isol, error) {
	var out []isol
	for _, s := range sols {
		res, err := sc.evalGroupIDs(el.Group, []isol{append(isol(nil), s...)})
		if err != nil {
			return nil, err
		}
		if len(res) > 0 {
			out = append(out, res...)
		} else {
			out = append(out, s)
		}
	}
	return out, nil
}

func (sc *specCtx) evalUnionIDs(el UnionElem, sols []isol) ([]isol, error) {
	var out []isol
	for _, s := range sols {
		for _, branch := range el.Branches {
			res, err := sc.evalGroupIDs(branch, []isol{append(isol(nil), s...)})
			if err != nil {
				return nil, err
			}
			out = append(out, res...)
		}
	}
	return out, nil
}

// evalBGPIDs mirrors evalCtx.evalBGP in ID space.
func (sc *specCtx) evalBGPIDs(block []TriplePattern, sols []isol, bound boundSet, filters []*pendingFilter) ([]isol, error) {
	remaining := make([]TriplePattern, len(block))
	copy(remaining, block)

	for len(remaining) > 0 {
		idx := 0
		if !sc.opts.DisableReorder {
			best := sc.patternCostIDs(remaining[0], bound)
			for i := 1; i < len(remaining); i++ {
				if c := sc.patternCostIDs(remaining[i], bound); c < best {
					best = c
					idx = i
				}
			}
		}
		tp := remaining[idx]
		remaining = append(remaining[:idx], remaining[idx+1:]...)

		var err error
		sols, err = sc.extendTripleIDs(tp, sols)
		if err != nil {
			return nil, err
		}
		if tp.S.IsVar() {
			bound[tp.S.Var] = true
		}
		if tp.O.IsVar() {
			bound[tp.O.Var] = true
		}
		if pv, ok := tp.P.(predVarPath); ok {
			bound[pv.name] = true
		}
		sols, err = sc.applyReadyFiltersIDs(filters, bound, sols)
		if err != nil {
			return nil, err
		}
		if len(sols) == 0 {
			return nil, nil
		}
	}
	return sols, nil
}

// predCount memoizes the unbounded per-predicate triple count, the one
// Count combination that iterates an index bucket.
func (sc *specCtx) predCount(pid rdf.ID) int {
	if n, ok := sc.predCard[pid]; ok {
		return n
	}
	if sc.predCard == nil {
		sc.predCard = make(map[rdf.ID]int)
	}
	n := sc.g.Count(rdf.NoID, pid, rdf.NoID)
	sc.predCard[pid] = n
	return n
}

// patternCostIDs mirrors evalCtx.patternCost using the pre-resolved
// constant table and the memoized per-predicate counts; the estimates (and
// therefore the join order) are identical.
func (sc *specCtx) patternCostIDs(tp TriplePattern, bound boundSet) float64 {
	var sid, oid rdf.ID
	sBound := !tp.S.IsVar() || bound[tp.S.Var]
	oBound := !tp.O.IsVar() || bound[tp.O.Var]
	if !tp.S.IsVar() {
		sid = sc.constID(tp.S.Term)
		if sid == rdf.NoID {
			return 0 // constant absent: zero results, run it first
		}
	}
	if !tp.O.IsVar() {
		oid = sc.constID(tp.O.Term)
		if oid == rdf.NoID {
			return 0
		}
	}
	var base float64
	switch p := tp.P.(type) {
	case PredPath:
		pid := sc.constID(rdf.IRI(p.IRI))
		if pid == rdf.NoID {
			return 0
		}
		if sid == rdf.NoID && oid == rdf.NoID {
			base = float64(sc.predCount(pid))
		} else {
			base = float64(sc.g.Count(sid, pid, oid))
		}
	case predVarPath:
		base = float64(sc.g.Count(sid, rdf.NoID, oid))
		if !bound[p.name] {
			base *= 1.5
		}
	default:
		base = float64(sc.g.Len())
		if sBound || oBound {
			base /= 4
		} else {
			base *= 4
		}
	}
	if sBound && tp.S.IsVar() {
		base /= 8
	}
	if oBound && tp.O.IsVar() {
		base /= 8
	}
	return base
}

// extendTripleIDs mirrors evalCtx.extendTriple in ID space: bound variables
// are already graph IDs, so no dictionary lookups happen per solution, and
// emitted bindings are stored without materializing terms.
func (sc *specCtx) extendTripleIDs(tp TriplePattern, sols []isol) ([]isol, error) {
	g := sc.g

	sSlot, oSlot := -1, -1
	if tp.S.IsVar() {
		sSlot = sc.slot(tp.S.Var)
	}
	if tp.O.IsVar() {
		oSlot = sc.slot(tp.O.Var)
	}
	pSlot := -1
	var predPath Path = tp.P
	if pv, ok := tp.P.(predVarPath); ok {
		pSlot = sc.slot(pv.name)
		predPath = nil
		_ = pv
	}

	var constS, constO rdf.ID
	if !tp.S.IsVar() {
		constS = sc.constID(tp.S.Term)
		if constS == rdf.NoID {
			return nil, nil
		}
	}
	if !tp.O.IsVar() {
		constO = sc.constID(tp.O.Term)
		if constO == rdf.NoID {
			return nil, nil
		}
	}
	var constP rdf.ID
	if pp, ok := tp.P.(PredPath); ok {
		constP = sc.constID(rdf.IRI(pp.IRI))
		if constP == rdf.NoID {
			return nil, nil
		}
	}

	var out []isol
	for _, s := range sols {
		if err := sc.cancel.check(); err != nil {
			return nil, err
		}
		sid, oid := constS, constO
		if sSlot >= 0 && s[sSlot] != rdf.NoID {
			sid = s[sSlot]
			if sid&extraIDBit != 0 {
				continue // synthesized term, not in this graph
			}
		}
		if oSlot >= 0 && s[oSlot] != rdf.NoID {
			oid = s[oSlot]
			if oid&extraIDBit != 0 {
				continue
			}
		}
		sameVar := tp.S.IsVar() && tp.O.IsVar() && tp.S.Var == tp.O.Var

		emit := func(ms, mo, mp rdf.ID) {
			if sameVar && ms != mo {
				return
			}
			ns := append(isol(nil), s...)
			if sSlot >= 0 {
				ns[sSlot] = ms
			}
			if oSlot >= 0 {
				ns[oSlot] = mo
			}
			if pSlot >= 0 {
				ns[pSlot] = mp
			}
			out = append(out, ns)
		}

		switch {
		case pSlot >= 0:
			pid := rdf.NoID
			if s[pSlot] != rdf.NoID {
				pid = s[pSlot]
				if pid&extraIDBit != 0 {
					continue
				}
			}
			g.Match(sid, pid, oid, func(ms, mp, mo rdf.ID) bool {
				emit(ms, mo, mp)
				return true
			})
		case predPath != nil:
			if _, simple := predPath.(PredPath); simple {
				g.Match(sid, constP, oid, func(ms, _, mo rdf.ID) bool {
					emit(ms, mo, rdf.NoID)
					return true
				})
			} else {
				seen := make(map[[2]rdf.ID]bool)
				evalPath(&sc.env, predPath, sid, oid, func(ms, mo rdf.ID) bool {
					key := [2]rdf.ID{ms, mo}
					if seen[key] {
						return true
					}
					seen[key] = true
					emit(ms, mo, rdf.NoID)
					return true
				})
			}
		}
	}
	return out, nil
}
