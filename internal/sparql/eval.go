package sparql

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"optimatch/internal/rdf"
)

// ExecOptions tunes query evaluation. The zero value is the default
// configuration.
type ExecOptions struct {
	// Ctx, when non-nil, bounds the evaluation: the evaluator polls it
	// cooperatively inside every binding loop, closure BFS and projection
	// pass (every cancelStride iterations, so the overhead without
	// cancellation is one pointer check per iteration) and returns
	// ctx.Err() as soon as cancellation is observed. A nil Ctx (or one
	// that can never be cancelled) costs nothing.
	Ctx context.Context
	// DisableReorder turns off the selectivity-based join-order heuristic
	// for basic graph patterns; patterns evaluate in textual order. Used by
	// the ablation benchmarks.
	DisableReorder bool

	// DisableSpecialization turns off per-graph query specialization: the
	// required-constant bail-out, the one-shot resolution of the query's
	// constant terms to the graph's dense IDs, and the ID-space solution
	// representation. Evaluation falls back to the term-space path, which
	// re-resolves terms against the dictionary as it goes. Used by the
	// ablation benchmarks; results are identical either way.
	DisableSpecialization bool

	// DisablePathIndex turns off the path-closure acceleration layer: CSR
	// adjacency snapshots, bitset BFS with pooled buffers, cardinality-based
	// walk direction and the per-evaluation closure memo. Closures fall back
	// to the seed-era per-start map BFS over Match callbacks. Used by the
	// ablation benchmarks; results are identical either way.
	DisablePathIndex bool

	// DisableResultCache turns off the engine-level result cache
	// (core.WithResultCache): every FindSPARQL/RunKB call re-executes the
	// full prefilter + specialize + match pipeline even when a cache is
	// configured. The switch lives here so one ExecOptions struct carries
	// every ablation the benchmarks flip; the SPARQL evaluator itself
	// ignores it. Results are identical either way.
	DisableResultCache bool

	// Stats, when non-nil, tallies which evaluator ran for each execution.
	// The same EvalStats may be shared by concurrent evaluations (the
	// counters are atomic); nil costs nothing on the hot path.
	Stats *EvalStats
}

// cancelStride is how many loop iterations pass between two polls of the
// context's done channel. The channel poll is a few nanoseconds, but the
// binding loops run tens of millions of iterations on pathological queries,
// so amortizing it keeps the measured overhead of cancellation support under
// the noise floor of BenchmarkFigure8KBScan while still bounding the
// reaction latency to a few hundred cheap iterations.
const cancelStride = 256

// canceller is the cooperative cancellation checkpoint shared by every loop
// of one evaluation (binding extension, closure BFS, aggregation and
// projection). A nil *canceller is valid and means "never cancelled", so the
// common ExecOptions-without-Ctx path pays a single nil check per iteration.
// Not safe for concurrent use — one canceller lives per evaluation, like the
// pathEnv it travels with.
type canceller struct {
	done <-chan struct{}
	ctx  context.Context
	err  error // sticky: first observed cancellation error
	n    int   // iterations until the next channel poll
}

// newCanceller returns a checkpoint for ctx, or nil when ctx can never be
// cancelled (nil context or no done channel).
func newCanceller(ctx context.Context) *canceller {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return &canceller{done: ctx.Done(), ctx: ctx, n: cancelStride}
}

// check polls the context every cancelStride calls and returns its error
// once cancellation has been observed (sticky thereafter).
func (c *canceller) check() error {
	if c == nil {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	c.n--
	if c.n > 0 {
		return nil
	}
	c.n = cancelStride
	select {
	case <-c.done:
		c.err = c.ctx.Err()
		return c.err
	default:
		return nil
	}
}

// tripped reports a cancellation some earlier check observed, without
// consuming a stride tick. Loops that may produce partial output (closure
// BFS, path emission) use it so a cancellation seen deep in a callback
// surfaces as an error instead of a truncated result.
func (c *canceller) tripped() error {
	if c == nil {
		return nil
	}
	return c.err
}

// EvalStats counts evaluator dispatch decisions across executions. The zero
// value is ready to use; all fields are atomic so one instance can be shared
// by every worker of an engine.
type EvalStats struct {
	specialized     atomic.Int64
	fallback        atomic.Int64
	constantBailout atomic.Int64

	pathCSRBuilds   atomic.Int64
	pathCSRHits     atomic.Int64
	pathMemoHits    atomic.Int64
	pathMemoMisses  atomic.Int64
	pathBFSSteps    atomic.Int64
	pathBitsetBytes atomic.Int64
}

// EvalSnapshot is a point-in-time copy of EvalStats, in wire form.
type EvalSnapshot struct {
	// Specialized counts executions on the ID-space specialized path.
	Specialized int64 `json:"specialized"`
	// Fallback counts executions on the legacy term-space path.
	Fallback int64 `json:"fallback"`
	// ConstantBailouts counts specialized executions that skipped WHERE
	// evaluation entirely because a required constant was missing from the
	// graph's vocabulary (a subset of Specialized).
	ConstantBailouts int64 `json:"constantBailouts"`
	// Path aggregates the path-closure acceleration counters.
	Path PathSnapshot `json:"path"`
}

// PathSnapshot is the wire form of the path-acceleration counters.
type PathSnapshot struct {
	// CSRBuilds counts CSR adjacency snapshots built (once per
	// (graph, predicate) until the graph mutates).
	CSRBuilds int64 `json:"csrBuilds"`
	// CSRHits counts closure walks served by an already-built snapshot.
	CSRHits int64 `json:"csrHits"`
	// MemoHits counts closures replayed from a per-evaluation memo.
	MemoHits int64 `json:"memoHits"`
	// MemoMisses counts closures that ran a fresh BFS.
	MemoMisses int64 `json:"memoMisses"`
	// BFSSteps counts edges traversed by closure BFS walks.
	BFSSteps int64 `json:"bfsSteps"`
	// BitsetBytes counts bytes allocated for visited bitsets (pool misses).
	BitsetBytes int64 `json:"bitsetBytes"`
}

// Snapshot returns the current counter values.
func (s *EvalStats) Snapshot() EvalSnapshot {
	return EvalSnapshot{
		Specialized:      s.specialized.Load(),
		Fallback:         s.fallback.Load(),
		ConstantBailouts: s.constantBailout.Load(),
		Path: PathSnapshot{
			CSRBuilds:   s.pathCSRBuilds.Load(),
			CSRHits:     s.pathCSRHits.Load(),
			MemoHits:    s.pathMemoHits.Load(),
			MemoMisses:  s.pathMemoMisses.Load(),
			BFSSteps:    s.pathBFSSteps.Load(),
			BitsetBytes: s.pathBitsetBytes.Load(),
		},
	}
}

// addPath folds one evaluation's path counters into the shared stats.
func (s *EvalStats) addPath(p PathStats) {
	if p == (PathStats{}) {
		return
	}
	s.pathCSRBuilds.Add(p.CSRBuilds)
	s.pathCSRHits.Add(p.CSRHits)
	s.pathMemoHits.Add(p.MemoHits)
	s.pathMemoMisses.Add(p.MemoMisses)
	s.pathBFSSteps.Add(p.BFSSteps)
	s.pathBitsetBytes.Add(p.BitsetBytes)
}

// Results is a solution table: one row per solution, one column per
// projected variable. A zero rdf.Term in a cell means the variable is
// unbound in that solution (possible under OPTIONAL).
type Results struct {
	Vars []string
	Rows [][]rdf.Term
}

// Len reports the number of solutions.
func (r *Results) Len() int { return len(r.Rows) }

// Column returns the index of the named result column, or -1.
func (r *Results) Column(name string) int {
	for i, v := range r.Vars {
		if v == name {
			return i
		}
	}
	return -1
}

// Get returns the binding of column name in row i (zero Term when unbound or
// the column does not exist).
func (r *Results) Get(i int, name string) rdf.Term {
	return r.At(i, r.Column(name))
}

// At returns the binding at row i, column c (zero Term when out of range).
// Callers iterating whole result sets should resolve each column index once
// with Column and use At per cell, instead of paying Get's per-cell scan of
// the variable list.
func (r *Results) At(i, c int) rdf.Term {
	if c < 0 || c >= len(r.Vars) || i < 0 || i >= len(r.Rows) {
		return rdf.Term{}
	}
	return r.Rows[i][c]
}

// Exec evaluates the query against g with default options.
func (q *Query) Exec(g *rdf.Graph) (*Results, error) {
	return q.ExecOpts(g, ExecOptions{})
}

// ExecOpts evaluates the query against g.
func (q *Query) ExecOpts(g *rdf.Graph, opts ExecOptions) (*Results, error) {
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	if !opts.DisableSpecialization {
		if opts.Stats != nil {
			opts.Stats.specialized.Add(1)
		}
		return q.execSpecialized(g, opts)
	}
	if opts.Stats != nil {
		opts.Stats.fallback.Add(1)
	}
	ctx := newEvalCtx(g, q, opts)
	if opts.Stats != nil {
		defer func() { opts.Stats.addPath(ctx.env.stats) }()
	}
	seed := []solution{ctx.emptySolution()}
	sols, err := ctx.evalGroup(q.Where, seed)
	if err != nil {
		return nil, err
	}
	var res *Results
	if q.usesAggregation() {
		if q.Star {
			return nil, fmt.Errorf("sparql: SELECT * cannot be combined with aggregation")
		}
		res, err = ctx.evalGrouped(q, sols)
	} else {
		res, err = ctx.project(q, sols)
	}
	if err != nil {
		return nil, err
	}
	// A cancellation observed inside a path callback stops emission without
	// an error return path of its own; surface it here so truncated results
	// never masquerade as complete ones.
	if cerr := ctx.cancel.tripped(); cerr != nil {
		return nil, cerr
	}
	return res, nil
}

// solution is a variable assignment, indexed by the context's variable
// slots. A zero Term means unbound.
type solution []rdf.Term

type evalCtx struct {
	g        *rdf.Graph
	opts     ExecOptions
	varIndex map[string]int
	varNames []string

	// cancel is the cooperative cancellation checkpoint for this
	// evaluation (nil when ExecOptions.Ctx cannot be cancelled). The same
	// pointer is shared with the pathEnv so closure BFS walks poll it too.
	cancel *canceller

	// env is the property-path environment shared by every path evaluation
	// of this execution: it owns the closure memo and the pooled BFS
	// buffers. The specialized context re-points its own env instead.
	env pathEnv
}

func newEvalCtx(g *rdf.Graph, q *Query, opts ExecOptions) *evalCtx {
	ctx := &evalCtx{g: g, opts: opts, varIndex: make(map[string]int)}
	ctx.cancel = newCanceller(opts.Ctx)
	ctx.env = pathEnv{g: g, noIndex: opts.DisablePathIndex, cancel: ctx.cancel}
	for _, v := range q.Where.Vars() {
		ctx.slot(v)
	}
	for _, item := range q.Select {
		for _, v := range exprVars(item.Expr) {
			ctx.slot(v)
		}
	}
	for _, key := range q.OrderBy {
		for _, v := range exprVars(key.Expr) {
			ctx.slot(v)
		}
	}
	for _, v := range q.GroupBy {
		ctx.slot(v)
	}
	if q.Having != nil {
		for _, v := range exprVars(q.Having) {
			ctx.slot(v)
		}
	}
	return ctx
}

func (ctx *evalCtx) slot(v string) int {
	if i, ok := ctx.varIndex[v]; ok {
		return i
	}
	i := len(ctx.varNames)
	ctx.varIndex[v] = i
	ctx.varNames = append(ctx.varNames, v)
	return i
}

func (ctx *evalCtx) emptySolution() solution {
	return make(solution, len(ctx.varNames))
}

// solView adapts a solution to the expression evaluator's bindingView.
type solView struct {
	ctx *evalCtx
	sol solution
}

func (v solView) lookupVar(name string) (rdf.Term, bool) {
	i, ok := v.ctx.varIndex[name]
	if !ok {
		return rdf.Term{}, false
	}
	t := v.sol[i]
	if t.Zero() {
		return rdf.Term{}, false
	}
	return t, true
}

// boundSet tracks statically-bound variables during group evaluation.
type boundSet map[string]bool

func (b boundSet) clone() boundSet {
	c := make(boundSet, len(b))
	for k := range b {
		c[k] = true
	}
	return c
}

func (b boundSet) hasAll(vars []string) bool {
	for _, v := range vars {
		if !b[v] {
			return false
		}
	}
	return true
}

// pendingFilter is a group-level filter awaiting application.
type pendingFilter struct {
	expr    Expression
	vars    []string
	eager   bool // safe to apply as soon as vars are statically bound
	applied bool
}

// evalGroup evaluates a group pattern seeded with the given solutions.
func (ctx *evalCtx) evalGroup(g *GroupPattern, seed []solution) ([]solution, error) {
	if len(seed) == 0 {
		return nil, nil
	}
	// Variables bound in every seed solution are statically available.
	bound := make(boundSet)
	for name, idx := range ctx.varIndex {
		all := true
		for _, s := range seed {
			if s[idx].Zero() {
				all = false
				break
			}
		}
		if all {
			bound[name] = true
		}
	}

	// Collect top-level filters; everything else evaluates in order with
	// consecutive triple patterns grouped into reorderable BGP blocks.
	var filters []*pendingFilter
	for _, el := range g.Elems {
		if f, ok := el.(FilterElem); ok {
			filters = append(filters, &pendingFilter{
				expr:  f.Expr,
				vars:  exprVars(f.Expr),
				eager: filterIsEager(f.Expr),
			})
		}
	}

	sols := seed
	var err error
	i := 0
	for i < len(g.Elems) {
		switch el := g.Elems[i].(type) {
		case FilterElem:
			i++ // collected above
		case TriplePattern:
			// Gather the maximal run of triple patterns (skipping filters,
			// which are group-scoped anyway).
			var block []TriplePattern
			for i < len(g.Elems) {
				if tp, ok := g.Elems[i].(TriplePattern); ok {
					block = append(block, tp)
					i++
					continue
				}
				if _, ok := g.Elems[i].(FilterElem); ok {
					i++
					continue
				}
				break
			}
			sols, err = ctx.evalBGP(block, sols, bound, filters)
			if err != nil {
				return nil, err
			}
		case OptionalElem:
			i++
			sols, err = ctx.evalOptional(el, sols)
			if err != nil {
				return nil, err
			}
		case UnionElem:
			i++
			sols, err = ctx.evalUnion(el, sols)
			if err != nil {
				return nil, err
			}
			// Vars bound in every branch become statically bound.
			branchBound := ctx.groupBoundVars(el.Branches[0])
			for _, b := range el.Branches[1:] {
				next := ctx.groupBoundVars(b)
				for v := range branchBound {
					if !next[v] {
						delete(branchBound, v)
					}
				}
			}
			for v := range branchBound {
				bound[v] = true
			}
			sols, err = ctx.applyReadyFilters(filters, bound, sols)
			if err != nil {
				return nil, err
			}
		case GroupElem:
			i++
			sols, err = ctx.evalGroup(el.Group, sols)
			if err != nil {
				return nil, err
			}
			for v := range ctx.groupBoundVars(el.Group) {
				bound[v] = true
			}
			sols, err = ctx.applyReadyFilters(filters, bound, sols)
			if err != nil {
				return nil, err
			}
		case FilterExistsElem:
			i++
			out := sols[:0]
			for _, s := range sols {
				res, eerr := ctx.evalGroup(el.Group, []solution{append(solution(nil), s...)})
				if eerr != nil {
					return nil, eerr
				}
				if (len(res) > 0) != el.Not {
					out = append(out, s)
				}
			}
			sols = out
		case BindElem:
			i++
			slot := ctx.slot(el.Var)
			out := sols[:0]
			for _, s := range sols {
				v, verr := el.Expr.Eval(solView{ctx, s})
				ns := append(solution(nil), s...)
				if verr == nil {
					if len(ns) <= slot {
						grown := make(solution, len(ctx.varNames))
						copy(grown, ns)
						ns = grown
					}
					ns[slot] = v
				}
				out = append(out, ns)
			}
			sols = out
			bound[el.Var] = true
			sols, err = ctx.applyReadyFilters(filters, bound, sols)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("sparql: unknown pattern element %T", el)
		}
	}

	// Apply any filters not yet applied; unbound variables make the filter
	// false (SPARQL error-as-false), dropping the solution.
	for _, f := range filters {
		if f.applied {
			continue
		}
		sols = ctx.filterSolutions(f.expr, sols)
		f.applied = true
	}
	return sols, nil
}

// filterIsEager reports whether the filter may be applied as soon as its
// variables are statically bound. Filters that inspect boundness must wait
// for the end of the group.
func filterIsEager(e Expression) bool {
	eager := true
	var walk func(Expression)
	walk = func(e Expression) {
		switch e := e.(type) {
		case CallExpr:
			if e.Name == "BOUND" || e.Name == "COALESCE" {
				eager = false
			}
			for _, a := range e.Args {
				walk(a)
			}
		case NotExpr:
			walk(e.Inner)
		case NegExpr:
			walk(e.Inner)
		case AndExpr:
			walk(e.L)
			walk(e.R)
		case OrExpr:
			walk(e.L)
			walk(e.R)
		case CmpExpr:
			walk(e.L)
			walk(e.R)
		case ArithExpr:
			walk(e.L)
			walk(e.R)
		}
	}
	walk(e)
	return eager
}

func (ctx *evalCtx) applyReadyFilters(filters []*pendingFilter, bound boundSet, sols []solution) ([]solution, error) {
	for _, f := range filters {
		if f.applied || !f.eager || !bound.hasAll(f.vars) {
			continue
		}
		sols = ctx.filterSolutions(f.expr, sols)
		f.applied = true
	}
	return sols, nil
}

func (ctx *evalCtx) filterSolutions(expr Expression, sols []solution) []solution {
	out := sols[:0]
	for _, s := range sols {
		ok, err := ebv(expr, solView{ctx, s})
		if err == nil && ok {
			out = append(out, s)
		}
	}
	return out
}

// groupBoundVars computes the variables a group binds in every solution it
// produces (conservatively: triple patterns and BINDs; OPTIONAL binds
// nothing; UNION binds the intersection of its branches).
func (ctx *evalCtx) groupBoundVars(g *GroupPattern) boundSet {
	out := make(boundSet)
	for _, el := range g.Elems {
		switch el := el.(type) {
		case TriplePattern:
			if el.S.IsVar() {
				out[el.S.Var] = true
			}
			if el.O.IsVar() {
				out[el.O.Var] = true
			}
			if pv, ok := el.P.(predVarPath); ok {
				out[pv.name] = true
			}
		case BindElem:
			out[el.Var] = true
		case GroupElem:
			for v := range ctx.groupBoundVars(el.Group) {
				out[v] = true
			}
		case UnionElem:
			common := ctx.groupBoundVars(el.Branches[0])
			for _, b := range el.Branches[1:] {
				next := ctx.groupBoundVars(b)
				for v := range common {
					if !next[v] {
						delete(common, v)
					}
				}
			}
			for v := range common {
				out[v] = true
			}
		}
	}
	return out
}

func (ctx *evalCtx) evalOptional(el OptionalElem, sols []solution) ([]solution, error) {
	var out []solution
	for _, s := range sols {
		res, err := ctx.evalGroup(el.Group, []solution{append(solution(nil), s...)})
		if err != nil {
			return nil, err
		}
		if len(res) > 0 {
			out = append(out, res...)
		} else {
			out = append(out, s)
		}
	}
	return out, nil
}

func (ctx *evalCtx) evalUnion(el UnionElem, sols []solution) ([]solution, error) {
	var out []solution
	for _, s := range sols {
		for _, branch := range el.Branches {
			res, err := ctx.evalGroup(branch, []solution{append(solution(nil), s...)})
			if err != nil {
				return nil, err
			}
			out = append(out, res...)
		}
	}
	return out, nil
}

// evalBGP evaluates a block of triple patterns, reordering them greedily by
// estimated selectivity (unless disabled) and applying eager filters as soon
// as their variables become bound.
func (ctx *evalCtx) evalBGP(block []TriplePattern, sols []solution, bound boundSet, filters []*pendingFilter) ([]solution, error) {
	remaining := make([]TriplePattern, len(block))
	copy(remaining, block)

	for len(remaining) > 0 {
		idx := 0
		if !ctx.opts.DisableReorder {
			best := ctx.patternCost(remaining[0], bound)
			for i := 1; i < len(remaining); i++ {
				if c := ctx.patternCost(remaining[i], bound); c < best {
					best = c
					idx = i
				}
			}
		}
		tp := remaining[idx]
		remaining = append(remaining[:idx], remaining[idx+1:]...)

		var err error
		sols, err = ctx.extendTriple(tp, sols)
		if err != nil {
			return nil, err
		}
		if tp.S.IsVar() {
			bound[tp.S.Var] = true
		}
		if tp.O.IsVar() {
			bound[tp.O.Var] = true
		}
		if pv, ok := tp.P.(predVarPath); ok {
			bound[pv.name] = true
		}
		sols, err = ctx.applyReadyFilters(filters, bound, sols)
		if err != nil {
			return nil, err
		}
		if len(sols) == 0 {
			return nil, nil
		}
	}
	return sols, nil
}

// patternCost estimates the result size of a triple pattern given which
// variables are statically bound. Lower is better.
func (ctx *evalCtx) patternCost(tp TriplePattern, bound boundSet) float64 {
	var sid, oid rdf.ID
	sBound := !tp.S.IsVar() || bound[tp.S.Var]
	oBound := !tp.O.IsVar() || bound[tp.O.Var]
	if !tp.S.IsVar() {
		sid = ctx.g.Dict().Lookup(tp.S.Term)
		if sid == rdf.NoID {
			return 0 // constant absent: zero results, run it first
		}
	}
	if !tp.O.IsVar() {
		oid = ctx.g.Dict().Lookup(tp.O.Term)
		if oid == rdf.NoID {
			return 0
		}
	}
	var base float64
	switch p := tp.P.(type) {
	case PredPath:
		pid := ctx.g.Dict().Lookup(rdf.IRI(p.IRI))
		if pid == rdf.NoID {
			return 0
		}
		base = float64(ctx.g.Count(sid, pid, oid))
	case predVarPath:
		base = float64(ctx.g.Count(sid, rdf.NoID, oid))
		if !bound[p.name] {
			base *= 1.5
		}
	default:
		// Complex property path: expensive unless an endpoint is anchored.
		base = float64(ctx.g.Len())
		if sBound || oBound {
			base /= 4
		} else {
			base *= 4
		}
	}
	// Bound variables narrow the match at execution time even though the
	// static estimate cannot see the concrete value.
	if sBound && tp.S.IsVar() {
		base /= 8
	}
	if oBound && tp.O.IsVar() {
		base /= 8
	}
	return base
}

// extendTriple extends each solution with every match of tp.
func (ctx *evalCtx) extendTriple(tp TriplePattern, sols []solution) ([]solution, error) {
	g := ctx.g
	dict := g.Dict()

	sSlot, oSlot := -1, -1
	if tp.S.IsVar() {
		sSlot = ctx.slot(tp.S.Var)
	}
	if tp.O.IsVar() {
		oSlot = ctx.slot(tp.O.Var)
	}
	pSlot := -1
	var predPath Path = tp.P
	if pv, ok := tp.P.(predVarPath); ok {
		pSlot = ctx.slot(pv.name)
		predPath = nil
		_ = pv
	}

	var constS, constO rdf.ID
	if !tp.S.IsVar() {
		constS = dict.Lookup(tp.S.Term)
		if constS == rdf.NoID {
			return nil, nil
		}
	}
	if !tp.O.IsVar() {
		constO = dict.Lookup(tp.O.Term)
		if constO == rdf.NoID {
			return nil, nil
		}
	}
	var constP rdf.ID
	if pp, ok := tp.P.(PredPath); ok {
		constP = dict.Lookup(rdf.IRI(pp.IRI))
		if constP == rdf.NoID {
			return nil, nil
		}
	}

	var out []solution
	for _, s := range sols {
		if err := ctx.cancel.check(); err != nil {
			return nil, err
		}
		sid, oid := constS, constO
		if sSlot >= 0 && !s[sSlot].Zero() {
			sid = dict.Lookup(s[sSlot])
			if sid == rdf.NoID {
				continue // bound to a term not in this graph
			}
		}
		if oSlot >= 0 && !s[oSlot].Zero() {
			oid = dict.Lookup(s[oSlot])
			if oid == rdf.NoID {
				continue
			}
		}
		sameVar := tp.S.IsVar() && tp.O.IsVar() && tp.S.Var == tp.O.Var

		emit := func(ms, mo rdf.ID, mp rdf.ID) {
			if sameVar && ms != mo {
				return
			}
			ns := append(solution(nil), s...)
			if sSlot >= 0 {
				ns[sSlot] = dict.Term(ms)
			}
			if oSlot >= 0 {
				ns[oSlot] = dict.Term(mo)
			}
			if pSlot >= 0 {
				ns[pSlot] = dict.Term(mp)
			}
			out = append(out, ns)
		}

		switch {
		case pSlot >= 0:
			pid := rdf.NoID
			if !s[pSlot].Zero() {
				pid = dict.Lookup(s[pSlot])
				if pid == rdf.NoID {
					continue
				}
			}
			g.Match(sid, pid, oid, func(ms, mp, mo rdf.ID) bool {
				emit(ms, mo, mp)
				return true
			})
		case predPath != nil:
			if _, simple := predPath.(PredPath); simple {
				g.Match(sid, constP, oid, func(ms, _, mo rdf.ID) bool {
					emit(ms, mo, rdf.NoID)
					return true
				})
			} else {
				seen := make(map[[2]rdf.ID]bool)
				evalPath(&ctx.env, predPath, sid, oid, func(ms, mo rdf.ID) bool {
					key := [2]rdf.ID{ms, mo}
					if seen[key] {
						return true
					}
					seen[key] = true
					emit(ms, mo, rdf.NoID)
					return true
				})
			}
		}
	}
	return out, nil
}

// project applies SELECT, DISTINCT, ORDER BY, LIMIT and OFFSET.
func (ctx *evalCtx) project(q *Query, sols []solution) (*Results, error) {
	// ORDER BY before projection (keys may reference non-projected vars).
	if len(q.OrderBy) > 0 {
		type keyed struct {
			sol  solution
			keys []rdf.Term
		}
		ks := make([]keyed, len(sols))
		for i, s := range sols {
			keys := make([]rdf.Term, len(q.OrderBy))
			for j, ok := range q.OrderBy {
				if v, err := ok.Expr.Eval(solView{ctx, s}); err == nil {
					keys[j] = v
				}
			}
			ks[i] = keyed{sol: s, keys: keys}
		}
		sort.SliceStable(ks, func(a, b int) bool {
			for j := range q.OrderBy {
				c := ks[a].keys[j].Compare(ks[b].keys[j])
				if q.OrderBy[j].Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		for i := range ks {
			sols[i] = ks[i].sol
		}
	}

	var vars []string
	var exprs []Expression
	if q.Star {
		for _, v := range ctx.varNames {
			if !strings.HasPrefix(v, "!") {
				vars = append(vars, v)
				exprs = append(exprs, VarExpr{Name: v})
			}
		}
	} else {
		for _, item := range q.Select {
			vars = append(vars, item.Alias)
			exprs = append(exprs, item.Expr)
		}
	}

	res := &Results{Vars: vars}
	var seen map[string]bool
	var keyer distinctKeyer
	if q.Distinct {
		seen = make(map[string]bool)
		keyer.dict = ctx.g.Dict()
	}
	for _, s := range sols {
		if err := ctx.cancel.check(); err != nil {
			return nil, err
		}
		row := make([]rdf.Term, len(exprs))
		for i, e := range exprs {
			if v, err := e.Eval(solView{ctx, s}); err == nil {
				row[i] = v
			}
		}
		if q.Distinct {
			key := keyer.key(row)
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		res.Rows = append(res.Rows, row)
	}

	// OFFSET / LIMIT.
	if q.Offset > 0 {
		if q.Offset >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(res.Rows) {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

// distinctKeyer builds DISTINCT dedup keys from dense term IDs instead of
// rendering every cell to N-Triples text: 4 bytes per column and no string
// building per cell. Terms the graph's dictionary does not know (BIND
// results) are interned into a local side table whose IDs carry the top bit,
// so they never collide with graph IDs — byte-equal keys are exactly
// term-equal rows.
type distinctKeyer struct {
	dict  *rdf.Dict
	extra map[rdf.Term]rdf.ID
	buf   []byte
}

// key encodes the row as a little-endian ID tuple. The returned string is
// only valid as a map key (it is re-materialized by the string conversion).
func (k *distinctKeyer) key(row []rdf.Term) string {
	k.buf = k.buf[:0]
	for _, t := range row {
		var id rdf.ID
		if !t.Zero() {
			id = k.dict.Lookup(t)
			if id == rdf.NoID {
				var ok bool
				id, ok = k.extra[t]
				if !ok {
					if k.extra == nil {
						k.extra = make(map[rdf.Term]rdf.ID)
					}
					id = extraIDBit | rdf.ID(len(k.extra)+1)
					k.extra[t] = id
				}
			}
		}
		k.buf = append(k.buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(k.buf)
}
