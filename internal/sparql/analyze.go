package sparql

import "optimatch/internal/rdf"

// Analysis is the static, graph-independent analysis of a query, computed
// once per parsed query and shared by every evaluation. It drives the
// workload-scale acceleration in internal/core: Required is the set of
// constant terms every matching graph must contain, so a caller holding a
// graph whose vocabulary misses any of them can skip evaluation outright
// (the engine's prefilter), and the specialized evaluator can resolve all
// of Consts to the target graph's dense IDs in one pass before matching.
type Analysis struct {
	// Required holds constant terms (IRIs and literals from triple patterns,
	// plus predicate IRIs from property paths) that any graph with at least
	// one solution must contain. Constants appearing only under OPTIONAL,
	// NOT EXISTS, or in some-but-not-all UNION branches are excluded; so are
	// predicates reachable only through a zero-length path (`*`, `?`).
	Required []rdf.Term

	// Consts holds every constant term appearing in any triple pattern or
	// property path of the query, Required or not, in first-appearance
	// order. The specialized evaluator resolves these against the target
	// graph's dictionary once per (query, graph) pair.
	Consts []rdf.Term
}

// RequiredIn reports whether every required term is present in the graph's
// vocabulary (its term dictionary). When it returns false the query has no
// solutions over g and evaluation can be skipped; when it returns true the
// graph is a candidate and must still be evaluated.
func (a *Analysis) RequiredIn(g *rdf.Graph) bool {
	d := g.Dict()
	for _, t := range a.Required {
		if d.Lookup(t) == rdf.NoID {
			return false
		}
	}
	return true
}

// Analysis returns the query's static analysis, computing it on first use.
// Parse pre-computes it, so queries obtained from Parse may share the
// result across goroutines; hand-assembled Query values must call Analysis
// (or Exec) once before any concurrent use.
func (q *Query) Analysis() *Analysis {
	if q.analysis == nil {
		q.analysis = analyzeQuery(q)
	}
	return q.analysis
}

// termSet is an insertion-ordered set of terms.
type termSet struct {
	seen  map[rdf.Term]bool
	order []rdf.Term
}

func newTermSet() *termSet {
	return &termSet{seen: make(map[rdf.Term]bool)}
}

func (s *termSet) add(t rdf.Term) {
	if t.Zero() || s.seen[t] {
		return
	}
	s.seen[t] = true
	s.order = append(s.order, t)
}

func (s *termSet) addAll(o *termSet) {
	for _, t := range o.order {
		s.add(t)
	}
}

func analyzeQuery(q *Query) *Analysis {
	consts := newTermSet()
	req := groupRequired(q.Where, consts)
	return &Analysis{Required: req.order, Consts: consts.order}
}

// groupRequired computes the required-term set of a group pattern while
// registering every constant it encounters (required or not) in consts.
//
// Soundness argument, per element kind: a triple pattern in the group must
// match for the group to produce solutions, and the evaluator yields zero
// rows for a pattern whose subject or object constant is absent from the
// dictionary, so those constants are required; a predicate is required only
// when every traversal of the path must cross it (see pathRequired).
// OPTIONAL groups never eliminate solutions, UNION eliminates only terms
// missing from every branch (so the intersection of branch requirements is
// required), FILTER EXISTS keeps a solution only when its group matches (so
// its group's requirements propagate), and FILTER NOT EXISTS, plain FILTER
// and BIND compare values without probing the graph and require nothing.
func groupRequired(g *GroupPattern, consts *termSet) *termSet {
	req := newTermSet()
	for _, el := range g.Elems {
		switch el := el.(type) {
		case TriplePattern:
			if !el.S.IsVar() {
				consts.add(el.S.Term)
				req.add(el.S.Term)
			}
			if !el.O.IsVar() {
				consts.add(el.O.Term)
				req.add(el.O.Term)
			}
			pathConsts(el.P, consts)
			pathRequired(el.P, req)
		case GroupElem:
			req.addAll(groupRequired(el.Group, consts))
		case OptionalElem:
			groupRequired(el.Group, consts)
		case UnionElem:
			var common *termSet
			for _, b := range el.Branches {
				br := groupRequired(b, consts)
				if common == nil {
					common = br
					continue
				}
				kept := newTermSet()
				for _, t := range common.order {
					if br.seen[t] {
						kept.add(t)
					}
				}
				common = kept
			}
			if common != nil {
				req.addAll(common)
			}
		case FilterExistsElem:
			if el.Not {
				groupRequired(el.Group, consts)
			} else {
				req.addAll(groupRequired(el.Group, consts))
			}
		case FilterElem, BindElem:
			// Value-space only; nothing must exist in the graph.
		}
	}
	return req
}

// pathRequired adds the predicate IRIs every traversal of the path must
// cross. A `*` or `?` modifier admits a zero-length traversal, so nothing
// under it is required; an alternation requires only predicates common to
// all alternatives; a sequence requires each of its parts' requirements.
func pathRequired(p Path, req *termSet) {
	switch p := p.(type) {
	case PredPath:
		req.add(rdf.IRI(p.IRI))
	case InvPath:
		pathRequired(p.Inner, req)
	case SeqPath:
		for _, part := range p.Parts {
			pathRequired(part, req)
		}
	case AltPath:
		var common *termSet
		for _, alt := range p.Alts {
			br := newTermSet()
			pathRequired(alt, br)
			if common == nil {
				common = br
				continue
			}
			kept := newTermSet()
			for _, t := range common.order {
				if br.seen[t] {
					kept.add(t)
				}
			}
			common = kept
		}
		if common != nil {
			req.addAll(common)
		}
	case ModPath:
		if p.Mod == ModOneOrMore {
			pathRequired(p.Inner, req)
		}
		// `*` and `?` match zero-length traversals: nothing required.
	}
}

// pathConsts registers every predicate IRI mentioned anywhere in the path.
func pathConsts(p Path, consts *termSet) {
	switch p := p.(type) {
	case PredPath:
		consts.add(rdf.IRI(p.IRI))
	case InvPath:
		pathConsts(p.Inner, consts)
	case SeqPath:
		for _, part := range p.Parts {
			pathConsts(part, consts)
		}
	case AltPath:
		for _, alt := range p.Alts {
			pathConsts(alt, consts)
		}
	case ModPath:
		pathConsts(p.Inner, consts)
	}
}
