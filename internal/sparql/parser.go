package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"optimatch/internal/rdf"
)

// RDFType is the IRI the keyword 'a' abbreviates in the predicate position.
const RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

// Parse parses a SELECT query.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	q.Analysis() // pre-compute so the query is safe to share across goroutines
	return q, nil
}

type parser struct {
	toks      []token
	pos       int
	prefixes  map[string]string
	blankSeq  int
	blankVars map[string]string // blank label -> internal var name
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k tokenKind) bool {
	return p.toks[p.pos].kind == k
}
func (p *parser) atKeyword(kw string) bool {
	t := p.toks[p.pos]
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	t := p.peek()
	if t.kind != k {
		return token{}, p.errf("expected %s, found %q", what, t.text)
	}
	return p.next(), nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errf("expected %s, found %q", kw, p.peek().text)
	}
	p.next()
	return nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sparql: parse error near offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{
		Prefixes: make(map[string]string),
		Limit:    -1,
	}
	p.prefixes = q.Prefixes
	p.blankVars = make(map[string]string)

	// Prologue.
	for p.atKeyword("PREFIX") {
		p.next()
		pn, err := p.expect(tokPName, "prefix name")
		if err != nil {
			return nil, err
		}
		if !strings.HasSuffix(pn.text, ":") {
			return nil, p.errf("PREFIX name must end with ':', found %q", pn.text)
		}
		iri, err := p.expect(tokIRI, "prefix IRI")
		if err != nil {
			return nil, err
		}
		q.Prefixes[strings.TrimSuffix(pn.text, ":")] = iri.text
	}

	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if p.atKeyword("DISTINCT") {
		p.next()
		q.Distinct = true
	} else if p.atKeyword("REDUCED") {
		p.next()
	}

	// Projection.
	if p.at(tokStar) {
		p.next()
		q.Star = true
	} else {
		for {
			item, ok, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			q.Select = append(q.Select, item)
		}
		if len(q.Select) == 0 {
			return nil, p.errf("SELECT requires at least one projection or *")
		}
	}

	if p.atKeyword("WHERE") {
		p.next()
	}
	group, err := p.parseGroup()
	if err != nil {
		return nil, err
	}
	q.Where = group

	// Solution modifiers: GROUP BY, HAVING, ORDER BY, LIMIT/OFFSET.
	if p.atKeyword("GROUP") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for p.at(tokVar) {
			q.GroupBy = append(q.GroupBy, p.next().text)
		}
		if len(q.GroupBy) == 0 {
			return nil, p.errf("GROUP BY requires at least one variable")
		}
	}
	if p.atKeyword("HAVING") {
		p.next()
		having, err := p.parseConstraint()
		if err != nil {
			return nil, err
		}
		q.Having = having
	}
	if p.atKeyword("ORDER") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			key, ok, err := p.parseOrderKey()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			q.OrderBy = append(q.OrderBy, key)
		}
		if len(q.OrderBy) == 0 {
			return nil, p.errf("ORDER BY requires at least one key")
		}
	}
	for p.atKeyword("LIMIT") || p.atKeyword("OFFSET") {
		kw := p.next().text
		n, err := p.expect(tokNumber, "integer")
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(n.text)
		if err != nil {
			return nil, p.errf("bad %s value %q", kw, n.text)
		}
		if kw == "LIMIT" {
			q.Limit = v
		} else {
			q.Offset = v
		}
	}

	if !p.at(tokEOF) {
		return nil, p.errf("unexpected trailing input %q", p.peek().text)
	}
	return q, nil
}

// parseSelectItem parses `?v`, `?v AS ?alias` or `(expr AS ?alias)`.
// ok=false signals the end of the projection list.
func (p *parser) parseSelectItem() (SelectItem, bool, error) {
	switch {
	case p.at(tokVar):
		v := p.next().text
		item := SelectItem{Expr: VarExpr{Name: v}, Alias: v}
		if p.atKeyword("AS") {
			p.next()
			alias, err := p.expect(tokVar, "alias variable")
			if err != nil {
				return SelectItem{}, false, err
			}
			item.Alias = alias.text
		}
		return item, true, nil
	case p.at(tokLParen):
		p.next()
		expr, err := p.parseExpr()
		if err != nil {
			return SelectItem{}, false, err
		}
		if err := p.expectKeyword("AS"); err != nil {
			return SelectItem{}, false, err
		}
		alias, err := p.expect(tokVar, "alias variable")
		if err != nil {
			return SelectItem{}, false, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return SelectItem{}, false, err
		}
		return SelectItem{Expr: expr, Alias: alias.text}, true, nil
	default:
		return SelectItem{}, false, nil
	}
}

func (p *parser) parseOrderKey() (OrderKey, bool, error) {
	switch {
	case p.atKeyword("ASC"), p.atKeyword("DESC"):
		desc := p.next().text == "DESC"
		if _, err := p.expect(tokLParen, "("); err != nil {
			return OrderKey{}, false, err
		}
		expr, err := p.parseExpr()
		if err != nil {
			return OrderKey{}, false, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return OrderKey{}, false, err
		}
		return OrderKey{Expr: expr, Desc: desc}, true, nil
	case p.at(tokVar):
		return OrderKey{Expr: VarExpr{Name: p.next().text}}, true, nil
	default:
		return OrderKey{}, false, nil
	}
}

func (p *parser) parseGroup() (*GroupPattern, error) {
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return nil, err
	}
	g := &GroupPattern{}
	for {
		switch {
		case p.at(tokRBrace):
			p.next()
			return g, nil
		case p.at(tokEOF):
			return nil, p.errf("unterminated group pattern")
		case p.atKeyword("FILTER"):
			p.next()
			if p.atKeyword("EXISTS") || p.atKeyword("NOT") {
				not := false
				if p.atKeyword("NOT") {
					p.next()
					not = true
				}
				if err := p.expectKeyword("EXISTS"); err != nil {
					return nil, err
				}
				sub, err := p.parseGroup()
				if err != nil {
					return nil, err
				}
				g.Elems = append(g.Elems, FilterExistsElem{Not: not, Group: sub})
				p.eatDot()
				continue
			}
			expr, err := p.parseConstraint()
			if err != nil {
				return nil, err
			}
			g.Elems = append(g.Elems, FilterElem{Expr: expr})
			p.eatDot()
		case p.atKeyword("OPTIONAL"):
			p.next()
			sub, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			g.Elems = append(g.Elems, OptionalElem{Group: sub})
			p.eatDot()
		case p.atKeyword("BIND"):
			p.next()
			if _, err := p.expect(tokLParen, "("); err != nil {
				return nil, err
			}
			expr, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AS"); err != nil {
				return nil, err
			}
			v, err := p.expect(tokVar, "variable")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return nil, err
			}
			g.Elems = append(g.Elems, BindElem{Expr: expr, Var: v.text})
			p.eatDot()
		case p.at(tokLBrace):
			first, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			branches := []*GroupPattern{first}
			for p.atKeyword("UNION") {
				p.next()
				b, err := p.parseGroup()
				if err != nil {
					return nil, err
				}
				branches = append(branches, b)
			}
			if len(branches) > 1 {
				g.Elems = append(g.Elems, UnionElem{Branches: branches})
			} else {
				g.Elems = append(g.Elems, GroupElem{Group: first})
			}
			p.eatDot()
		default:
			if err := p.parseTriplesSameSubject(g); err != nil {
				return nil, err
			}
			p.eatDot()
		}
	}
}

func (p *parser) eatDot() {
	for p.at(tokDot) {
		p.next()
	}
}

// parseTriplesSameSubject parses `subject predicateObjectList` with the `;`
// and `,` abbreviations, appending TriplePatterns to g.
func (p *parser) parseTriplesSameSubject(g *GroupPattern) error {
	subj, err := p.parseNodeRef("subject")
	if err != nil {
		return err
	}
	for {
		path, err := p.parsePath()
		if err != nil {
			return err
		}
		for {
			obj, err := p.parseNodeRef("object")
			if err != nil {
				return err
			}
			g.Elems = append(g.Elems, TriplePattern{S: subj, P: path, O: obj})
			if p.at(tokComma) {
				p.next()
				continue
			}
			break
		}
		if p.at(tokSemicolon) {
			p.next()
			// A dangling semicolon before '.' or '}' is permitted.
			if p.at(tokDot) || p.at(tokRBrace) {
				return nil
			}
			continue
		}
		return nil
	}
}

// parseNodeRef parses a variable, IRI, prefixed name, literal, blank node or
// `[]` in a subject/object position.
func (p *parser) parseNodeRef(what string) (NodeRef, error) {
	t := p.peek()
	switch t.kind {
	case tokVar:
		p.next()
		return VarRef(t.text), nil
	case tokIRI:
		p.next()
		return TermRef(rdf.IRI(t.text)), nil
	case tokPName:
		p.next()
		iri, err := p.expandPName(t.text)
		if err != nil {
			return NodeRef{}, err
		}
		return TermRef(rdf.IRI(iri)), nil
	case tokBlank:
		p.next()
		return VarRef(p.blankVar(t.text)), nil
	case tokLBracket:
		p.next()
		if _, err := p.expect(tokRBracket, "]"); err != nil {
			return NodeRef{}, err
		}
		p.blankSeq++
		return VarRef(fmt.Sprintf("!anon%d", p.blankSeq)), nil
	case tokString:
		p.next()
		lit := rdf.String(t.text)
		if p.at(tokHatHat) {
			p.next()
			dt := p.peek()
			switch dt.kind {
			case tokIRI:
				p.next()
				lit = rdf.TypedLiteral(t.text, dt.text)
			case tokPName:
				p.next()
				iri, err := p.expandPName(dt.text)
				if err != nil {
					return NodeRef{}, err
				}
				lit = rdf.TypedLiteral(t.text, iri)
			default:
				return NodeRef{}, p.errf("expected datatype IRI after ^^")
			}
		}
		return TermRef(lit), nil
	case tokNumber:
		p.next()
		return TermRef(numberTerm(t.text)), nil
	case tokMinus:
		p.next()
		n, err := p.expect(tokNumber, "number")
		if err != nil {
			return NodeRef{}, err
		}
		return TermRef(numberTerm("-" + n.text)), nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.next()
			return TermRef(rdf.Bool(true)), nil
		case "FALSE":
			p.next()
			return TermRef(rdf.Bool(false)), nil
		}
	}
	return NodeRef{}, p.errf("expected %s, found %q", what, t.text)
}

// blankVar maps a blank node label used in the query to a stable internal
// variable name (blank nodes in queries behave as non-projectable variables).
func (p *parser) blankVar(label string) string {
	if v, ok := p.blankVars[label]; ok {
		return v
	}
	v := "!blank_" + label
	p.blankVars[label] = v
	return v
}

func numberTerm(text string) rdf.Term {
	if strings.ContainsAny(text, ".eE") {
		return rdf.TypedLiteral(text, rdf.XSDDouble)
	}
	return rdf.TypedLiteral(text, rdf.XSDInteger)
}

func (p *parser) expandPName(pname string) (string, error) {
	i := strings.IndexByte(pname, ':')
	if i < 0 {
		return "", p.errf("malformed prefixed name %q", pname)
	}
	prefix, local := pname[:i], pname[i+1:]
	base, ok := p.prefixes[prefix]
	if !ok {
		return "", p.errf("undeclared prefix %q", prefix)
	}
	return base + local, nil
}

// parsePath parses a property path (used in the predicate position).
func (p *parser) parsePath() (Path, error) {
	return p.parsePathAlt()
}

func (p *parser) parsePathAlt() (Path, error) {
	first, err := p.parsePathSeq()
	if err != nil {
		return nil, err
	}
	if !p.at(tokPipe) {
		return first, nil
	}
	alts := []Path{first}
	for p.at(tokPipe) {
		p.next()
		next, err := p.parsePathSeq()
		if err != nil {
			return nil, err
		}
		alts = append(alts, next)
	}
	return AltPath{Alts: alts}, nil
}

func (p *parser) parsePathSeq() (Path, error) {
	first, err := p.parsePathEltOrInverse()
	if err != nil {
		return nil, err
	}
	if !p.at(tokSlash) {
		return first, nil
	}
	parts := []Path{first}
	for p.at(tokSlash) {
		p.next()
		next, err := p.parsePathEltOrInverse()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	return SeqPath{Parts: parts}, nil
}

func (p *parser) parsePathEltOrInverse() (Path, error) {
	if p.at(tokCaret) {
		p.next()
		inner, err := p.parsePathElt()
		if err != nil {
			return nil, err
		}
		return InvPath{Inner: inner}, nil
	}
	return p.parsePathElt()
}

func (p *parser) parsePathElt() (Path, error) {
	prim, err := p.parsePathPrimary()
	if err != nil {
		return nil, err
	}
	switch {
	case p.at(tokPlus):
		p.next()
		return ModPath{Inner: prim, Mod: ModOneOrMore}, nil
	case p.at(tokStar):
		p.next()
		return ModPath{Inner: prim, Mod: ModZeroOrMore}, nil
	case p.at(tokQuestion):
		p.next()
		return ModPath{Inner: prim, Mod: ModZeroOrOne}, nil
	}
	return prim, nil
}

func (p *parser) parsePathPrimary() (Path, error) {
	t := p.peek()
	switch t.kind {
	case tokIRI:
		p.next()
		return PredPath{IRI: t.text}, nil
	case tokPName:
		p.next()
		iri, err := p.expandPName(t.text)
		if err != nil {
			return nil, err
		}
		return PredPath{IRI: iri}, nil
	case tokA:
		p.next()
		return PredPath{IRI: RDFType}, nil
	case tokVar:
		// A variable in the predicate position is a degenerate "path": we
		// model it as a special marker handled by the evaluator.
		p.next()
		return predVarPath{name: t.text}, nil
	case tokLParen:
		p.next()
		inner, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return nil, p.errf("expected predicate or property path, found %q", t.text)
	}
}

// predVarPath is a variable used in the predicate position (e.g. SELECT all
// properties of an operator). It is unexported: only the evaluator needs it.
type predVarPath struct{ name string }

func (predVarPath) pathNode() {}

// parseAggregate parses COUNT(*), COUNT([DISTINCT] expr), SUM/AVG/MIN/MAX(expr).
func (p *parser) parseAggregate(fn string) (Expression, error) {
	p.next() // consume the function keyword
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	agg := AggExpr{Fn: fn}
	if p.atKeyword("DISTINCT") {
		p.next()
		agg.Distinct = true
	}
	if p.at(tokStar) {
		if fn != "COUNT" {
			return nil, p.errf("%s(*) is not allowed; only COUNT(*)", fn)
		}
		p.next()
		agg.Star = true
	} else {
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		agg.Arg = arg
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return agg, nil
}

// parseConstraint parses a FILTER constraint: a parenthesized expression or
// a builtin call.
func (p *parser) parseConstraint() (Expression, error) {
	if p.at(tokLParen) {
		p.next()
		expr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return expr, nil
	}
	if p.at(tokKeyword) {
		return p.parsePrimaryExpr()
	}
	return nil, p.errf("expected FILTER constraint, found %q", p.peek().text)
}

// Expression grammar (precedence climbing).

func (p *parser) parseExpr() (Expression, error) { return p.parseOr() }

func (p *parser) parseOr() (Expression, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(tokOrOr) {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = OrExpr{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expression, error) {
	left, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for p.at(tokAndAnd) {
		p.next()
		right, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		left = AndExpr{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseRelational() (Expression, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	var op CmpOp
	switch p.peek().kind {
	case tokEq:
		op = OpEq
	case tokNeq:
		op = OpNeq
	case tokLt:
		op = OpLt
	case tokGt:
		op = OpGt
	case tokLe:
		op = OpLe
	case tokGe:
		op = OpGe
	default:
		return left, nil
	}
	p.next()
	right, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return CmpExpr{Op: op, L: left, R: right}, nil
}

func (p *parser) parseAdditive() (Expression, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(tokPlus) || p.at(tokMinus) {
		op := byte('+')
		if p.next().kind == tokMinus {
			op = '-'
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = ArithExpr{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (Expression, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokStar) || p.at(tokSlash) {
		op := byte('*')
		if p.next().kind == tokSlash {
			op = '/'
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = ArithExpr{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expression, error) {
	switch p.peek().kind {
	case tokBang:
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return NotExpr{Inner: inner}, nil
	case tokMinus:
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return NegExpr{Inner: inner}, nil
	case tokPlus:
		p.next()
		return p.parseUnary()
	default:
		return p.parsePrimaryExpr()
	}
}

func (p *parser) parsePrimaryExpr() (Expression, error) {
	t := p.peek()
	switch t.kind {
	case tokLParen:
		p.next()
		expr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return expr, nil
	case tokVar:
		p.next()
		return VarExpr{Name: t.text}, nil
	case tokNumber:
		p.next()
		return LitExpr{Term: numberTerm(t.text)}, nil
	case tokString:
		p.next()
		lit := rdf.String(t.text)
		if p.at(tokHatHat) {
			p.next()
			dt := p.peek()
			switch dt.kind {
			case tokIRI:
				p.next()
				lit = rdf.TypedLiteral(t.text, dt.text)
			case tokPName:
				p.next()
				iri, err := p.expandPName(dt.text)
				if err != nil {
					return nil, err
				}
				lit = rdf.TypedLiteral(t.text, iri)
			default:
				return nil, p.errf("expected datatype IRI after ^^")
			}
		}
		return LitExpr{Term: lit}, nil
	case tokIRI:
		p.next()
		return LitExpr{Term: rdf.IRI(t.text)}, nil
	case tokPName:
		p.next()
		iri, err := p.expandPName(t.text)
		if err != nil {
			return nil, err
		}
		return LitExpr{Term: rdf.IRI(iri)}, nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.next()
			return LitExpr{Term: rdf.Bool(true)}, nil
		case "FALSE":
			p.next()
			return LitExpr{Term: rdf.Bool(false)}, nil
		}
		if aggregateFns[t.text] {
			return p.parseAggregate(t.text)
		}
		arity, ok := builtinArity[t.text]
		if !ok {
			return nil, p.errf("unknown function or keyword %q", t.text)
		}
		p.next()
		if _, err := p.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		var args []Expression
		if !p.at(tokRParen) {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.at(tokComma) {
					p.next()
					continue
				}
				break
			}
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		if len(args) < arity[0] || (arity[1] >= 0 && len(args) > arity[1]) {
			return nil, p.errf("%s: wrong argument count %d", t.text, len(args))
		}
		return CallExpr{Name: t.text, Args: args}, nil
	default:
		return nil, p.errf("expected expression, found %q", t.text)
	}
}
