package sparql

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"optimatch/internal/rdf"
)

// evalTestGraph models the paper's Figure 1 plan fragment as RDF:
//
//	NLJOIN(2) -> outer FETCH(3) -> IXSCAN(4) -> SALES_FACT
//	          -> inner TBSCAN(5) -> CUST_DIM
//
// with reified stream nodes, matching the transformer's encoding.
func evalTestGraph() *rdf.Graph {
	g := rdf.NewGraph()
	pred := func(n string) rdf.Term { return rdf.IRI("http://optimatch/pred/" + n) }
	pop := func(n int) rdf.Term { return rdf.IRI(fmt.Sprintf("http://optimatch/qep/pop/%d", n)) }
	str := func(n int) rdf.Term { return rdf.IRI(fmt.Sprintf("http://optimatch/qep/stream/%d", n)) }
	base := func(n string) rdf.Term { return rdf.IRI("http://optimatch/qep/obj/" + n) }

	g.Add(pop(2), pred("hasPopType"), rdf.String("NLJOIN"))
	g.Add(pop(3), pred("hasPopType"), rdf.String("FETCH"))
	g.Add(pop(4), pred("hasPopType"), rdf.String("IXSCAN"))
	g.Add(pop(5), pred("hasPopType"), rdf.String("TBSCAN"))

	g.Add(pop(2), pred("hasEstimateCardinality"), rdf.TypedLiteral("19.12", rdf.XSDDouble))
	g.Add(pop(5), pred("hasEstimateCardinality"), rdf.TypedLiteral("4043.0", rdf.XSDDouble))
	g.Add(pop(5), pred("hasTotalCost"), rdf.TypedLiteral("15771", rdf.XSDDouble))
	g.Add(pop(4), pred("hasEstimateCardinality"), rdf.TypedLiteral("1.0E+07", rdf.XSDDouble))

	link := func(parent, streamNode, child rdf.Term, kind string) {
		g.Add(parent, pred(kind), streamNode)
		g.Add(streamNode, pred(kind), child)
		g.Add(child, pred("hasOutputStream"), streamNode)
		g.Add(streamNode, pred("hasOutputStream"), parent)
	}
	link(pop(2), str(1), pop(3), "hasOuterInputStream")
	link(pop(2), str(2), pop(5), "hasInnerInputStream")
	link(pop(3), str(3), pop(4), "hasInputStream")
	link(pop(4), str(4), base("SALES_FACT"), "hasInputStream")
	link(pop(5), str(5), base("CUST_DIM"), "hasInputStream")

	// Direct child closure predicates (derived, as the transformer does).
	child := pred("hasChildPop")
	g.Add(pop(2), child, pop(3))
	g.Add(pop(2), child, pop(5))
	g.Add(pop(3), child, pop(4))

	g.Add(base("SALES_FACT"), pred("isABaseObj"), rdf.Bool(true))
	g.Add(base("CUST_DIM"), pred("isABaseObj"), rdf.Bool(true))
	g.Add(base("CUST_DIM"), pred("hasName"), rdf.String("CUST_DIM"))
	return g
}

func execQuery(t *testing.T, g *rdf.Graph, query string) *Results {
	t.Helper()
	q, err := Parse(query)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	res, err := q.Exec(g)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	return res
}

const predPrefix = "PREFIX pred: <http://optimatch/pred/>\n"

func TestExecSimpleBGP(t *testing.T) {
	g := evalTestGraph()
	res := execQuery(t, g, predPrefix+`SELECT ?pop WHERE { ?pop pred:hasPopType "TBSCAN" }`)
	if res.Len() != 1 {
		t.Fatalf("rows = %d, want 1", res.Len())
	}
	if got := res.Get(0, "pop").Value; got != "http://optimatch/qep/pop/5" {
		t.Errorf("pop = %q", got)
	}
}

func TestExecJoinAcrossPatterns(t *testing.T) {
	g := evalTestGraph()
	// Which pop types have a cardinality > 100? IXSCAN (1e7) and TBSCAN (4043).
	res := execQuery(t, g, predPrefix+`
SELECT ?type WHERE {
  ?pop pred:hasPopType ?type .
  ?pop pred:hasEstimateCardinality ?card .
  FILTER(?card > 100)
} ORDER BY ?type`)
	var got []string
	for i := range res.Rows {
		got = append(got, res.Get(i, "type").Value)
	}
	want := []string{"IXSCAN", "TBSCAN"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("types = %v, want %v", got, want)
	}
}

func TestExecFilterExponentVsDecimal(t *testing.T) {
	g := evalTestGraph()
	// 1.0E+07 must compare numerically: > 9999999 and < 10000001.
	res := execQuery(t, g, predPrefix+`
SELECT ?pop WHERE {
  ?pop pred:hasEstimateCardinality ?c .
  FILTER(?c > 9999999 && ?c < 10000001)
}`)
	if res.Len() != 1 || res.Get(0, "pop").Value != "http://optimatch/qep/pop/4" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecReifiedStreamPattern(t *testing.T) {
	// The exact shape Figure 6 generates: NLJOIN with inner TBSCAN through
	// blank-node handlers.
	g := evalTestGraph()
	res := execQuery(t, g, predPrefix+`
SELECT ?pop1 AS ?TOP ?pop3 AS ?SCAN3
WHERE {
  ?pop1 pred:hasPopType "NLJOIN" .
  ?pop1 pred:hasInnerInputStream ?bnodeOfPop3_to_Pop1 .
  ?bnodeOfPop3_to_Pop1 pred:hasInnerInputStream ?pop3 .
  ?pop3 pred:hasOutputStream ?bnodeOfPop3_to_Pop1 .
  ?bnodeOfPop3_to_Pop1 pred:hasOutputStream ?pop1 .
  ?pop3 pred:hasPopType "TBSCAN" .
  ?pop3 pred:hasEstimateCardinality ?internalHandler1 .
  FILTER(?internalHandler1 > 100) .
}
ORDER BY ?pop1`)
	if res.Len() != 1 {
		t.Fatalf("rows = %d, want 1", res.Len())
	}
	if res.Vars[0] != "TOP" || res.Vars[1] != "SCAN3" {
		t.Errorf("vars = %v", res.Vars)
	}
	if res.Get(0, "TOP").Value != "http://optimatch/qep/pop/2" {
		t.Errorf("TOP = %v", res.Get(0, "TOP"))
	}
}

func TestExecPropertyPathPlus(t *testing.T) {
	g := evalTestGraph()
	// All descendants of the NLJOIN via the derived closure predicate.
	res := execQuery(t, g, predPrefix+`
SELECT ?d WHERE {
  ?top pred:hasPopType "NLJOIN" .
  ?top pred:hasChildPop+ ?d .
} ORDER BY ?d`)
	var got []string
	for i := range res.Rows {
		got = append(got, res.Get(i, "d").Value)
	}
	want := []string{
		"http://optimatch/qep/pop/3",
		"http://optimatch/qep/pop/4",
		"http://optimatch/qep/pop/5",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("descendants = %v, want %v", got, want)
	}
}

func TestExecPropertyPathStarIncludesSelf(t *testing.T) {
	g := evalTestGraph()
	res := execQuery(t, g, predPrefix+`
SELECT ?d WHERE {
  ?top pred:hasPopType "NLJOIN" .
  ?top pred:hasChildPop* ?d .
}`)
	if res.Len() != 4 { // self + 3 descendants
		t.Errorf("rows = %d, want 4", res.Len())
	}
}

func TestExecPropertyPathSequenceAndAlt(t *testing.T) {
	g := evalTestGraph()
	// Two-hop reified traversal as a path: outer|inner stream, both hops.
	res := execQuery(t, g, predPrefix+`
SELECT ?child WHERE {
  ?top pred:hasPopType "NLJOIN" .
  ?top (pred:hasOuterInputStream|pred:hasInnerInputStream)/(pred:hasOuterInputStream|pred:hasInnerInputStream) ?child .
} ORDER BY ?child`)
	var got []string
	for i := range res.Rows {
		got = append(got, res.Get(i, "child").Value)
	}
	want := []string{
		"http://optimatch/qep/pop/3",
		"http://optimatch/qep/pop/5",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("children = %v, want %v", got, want)
	}
}

func TestExecInversePath(t *testing.T) {
	g := evalTestGraph()
	res := execQuery(t, g, predPrefix+`
SELECT ?parent WHERE {
  ?c pred:hasPopType "FETCH" .
  ?c ^pred:hasChildPop ?parent .
}`)
	if res.Len() != 1 || res.Get(0, "parent").Value != "http://optimatch/qep/pop/2" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecOptional(t *testing.T) {
	g := evalTestGraph()
	res := execQuery(t, g, predPrefix+`
SELECT ?pop ?card WHERE {
  ?pop pred:hasPopType ?t .
  OPTIONAL { ?pop pred:hasEstimateCardinality ?card }
} ORDER BY ?pop`)
	if res.Len() != 4 {
		t.Fatalf("rows = %d, want 4", res.Len())
	}
	unbound := 0
	for i := range res.Rows {
		if res.Get(i, "card").Zero() {
			unbound++
		}
	}
	if unbound != 1 { // FETCH(3) has no cardinality in the fixture
		t.Errorf("unbound cards = %d, want 1", unbound)
	}
}

func TestExecOptionalWithBoundFilter(t *testing.T) {
	g := evalTestGraph()
	res := execQuery(t, g, predPrefix+`
SELECT ?pop WHERE {
  ?pop pred:hasPopType ?t .
  OPTIONAL { ?pop pred:hasEstimateCardinality ?card }
  FILTER(BOUND(?card))
}`)
	if res.Len() != 3 {
		t.Errorf("rows = %d, want 3", res.Len())
	}
}

func TestExecUnion(t *testing.T) {
	g := evalTestGraph()
	res := execQuery(t, g, predPrefix+`
SELECT ?pop WHERE {
  { ?pop pred:hasPopType "TBSCAN" } UNION { ?pop pred:hasPopType "IXSCAN" }
} ORDER BY ?pop`)
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2", res.Len())
	}
}

func TestExecDistinct(t *testing.T) {
	g := evalTestGraph()
	res := execQuery(t, g, predPrefix+`
SELECT DISTINCT ?t WHERE {
  { ?pop pred:hasPopType ?t } UNION { ?pop pred:hasPopType ?t }
}`)
	if res.Len() != 4 {
		t.Errorf("distinct rows = %d, want 4", res.Len())
	}
}

func TestExecBind(t *testing.T) {
	g := evalTestGraph()
	res := execQuery(t, g, predPrefix+`
SELECT ?double WHERE {
  ?pop pred:hasPopType "TBSCAN" .
  ?pop pred:hasEstimateCardinality ?c .
  BIND(?c * 2 AS ?double)
}`)
	if res.Len() != 1 {
		t.Fatalf("rows = %d", res.Len())
	}
	if f, _ := res.Get(0, "double").Float(); f != 8086 {
		t.Errorf("double = %v", res.Get(0, "double"))
	}
}

func TestExecSelectStarExcludesInternalVars(t *testing.T) {
	g := evalTestGraph()
	res := execQuery(t, g, predPrefix+`SELECT * WHERE { ?pop pred:hasPopType "NLJOIN" . ?pop pred:hasOuterInputStream [] }`)
	for _, v := range res.Vars {
		if v[0] == '!' {
			t.Errorf("internal var %q leaked into projection", v)
		}
	}
	if res.Len() != 1 {
		t.Errorf("rows = %d", res.Len())
	}
}

func TestExecLimitOffset(t *testing.T) {
	g := evalTestGraph()
	all := execQuery(t, g, predPrefix+`SELECT ?pop WHERE { ?pop pred:hasPopType ?t } ORDER BY ?pop`)
	lim := execQuery(t, g, predPrefix+`SELECT ?pop WHERE { ?pop pred:hasPopType ?t } ORDER BY ?pop LIMIT 2 OFFSET 1`)
	if lim.Len() != 2 {
		t.Fatalf("limited rows = %d", lim.Len())
	}
	if lim.Rows[0][0] != all.Rows[1][0] || lim.Rows[1][0] != all.Rows[2][0] {
		t.Errorf("offset slice wrong: %v vs %v", lim.Rows, all.Rows)
	}
	// Offset beyond result size.
	empty := execQuery(t, g, predPrefix+`SELECT ?pop WHERE { ?pop pred:hasPopType ?t } OFFSET 100`)
	if empty.Len() != 0 {
		t.Errorf("rows = %d, want 0", empty.Len())
	}
}

func TestExecOrderByNumericDesc(t *testing.T) {
	g := evalTestGraph()
	res := execQuery(t, g, predPrefix+`
SELECT ?c WHERE { ?pop pred:hasEstimateCardinality ?c } ORDER BY DESC(?c)`)
	var got []float64
	for i := range res.Rows {
		f, _ := res.Get(i, "c").Float()
		got = append(got, f)
	}
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(got))) {
		t.Errorf("not descending: %v", got)
	}
	if got[0] != 1e7 {
		t.Errorf("largest = %v", got[0])
	}
}

func TestExecVariablePredicate(t *testing.T) {
	g := evalTestGraph()
	res := execQuery(t, g, predPrefix+`
SELECT ?p ?o WHERE { <http://optimatch/qep/pop/5> ?p ?o } ORDER BY ?p`)
	if res.Len() < 4 {
		t.Errorf("rows = %d, want >= 4 (type, card, cost, streams)", res.Len())
	}
}

func TestExecSameVarSubjectObject(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("a"))
	g.Add(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b"))
	res := execQuery(t, g, `SELECT ?x WHERE { ?x <p> ?x }`)
	if res.Len() != 1 || res.Get(0, "x").Value != "a" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecConstantNotInGraph(t *testing.T) {
	g := evalTestGraph()
	res := execQuery(t, g, predPrefix+`SELECT ?pop WHERE { ?pop pred:hasPopType "MSJOIN" }`)
	if res.Len() != 0 {
		t.Errorf("rows = %d, want 0", res.Len())
	}
	res = execQuery(t, g, predPrefix+`SELECT ?o WHERE { <urn:ghost> pred:hasPopType ?o }`)
	if res.Len() != 0 {
		t.Errorf("rows = %d, want 0", res.Len())
	}
}

func TestExecReorderMatchesNoReorder(t *testing.T) {
	g := evalTestGraph()
	query := predPrefix + `
SELECT ?pop ?t WHERE {
  ?pop pred:hasEstimateCardinality ?c .
  ?pop pred:hasPopType ?t .
  FILTER(?c > 10)
} ORDER BY ?pop`
	q, err := Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	a, err := q.ExecOpts(g, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Re-parse: evaluation mutates no state, but be safe.
	q2, _ := Parse(query)
	b, err := q2.ExecOpts(g, ExecOptions{DisableReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Errorf("reorder changed results:\n%v\nvs\n%v", a.Rows, b.Rows)
	}
}

func TestExecExpressionsInFilters(t *testing.T) {
	g := evalTestGraph()
	cases := []struct {
		filter string
		want   int
	}{
		{`FILTER(?c >= 4043 && ?c <= 4043)`, 1},
		{`FILTER(?c = 4043 || ?c = 19.12)`, 2},
		{`FILTER(!(?c > 100))`, 1},
		{`FILTER(?c * 2 > 8000 && ?c < 10000)`, 1},
		{`FILTER(?c / 2 < 10)`, 1}, // 19.12/2 = 9.56
		{`FILTER(?c - 43 = 4000)`, 1},
		{`FILTER(?c + 1 > 1.0E7)`, 1},
		{`FILTER(ABS(-1 * ?c) = ?c)`, 3},
		{`FILTER(ISLITERAL(?c))`, 3},
		{`FILTER(ISNUMERIC(?c))`, 3},
		{`FILTER(ISIRI(?pop))`, 3},
	}
	for _, c := range cases {
		res := execQuery(t, g, predPrefix+`SELECT ?pop WHERE { ?pop pred:hasEstimateCardinality ?c . `+c.filter+` }`)
		if res.Len() != c.want {
			t.Errorf("%s: rows = %d, want %d", c.filter, res.Len(), c.want)
		}
	}
}

func TestExecStringBuiltins(t *testing.T) {
	g := evalTestGraph()
	cases := []struct {
		filter string
		want   int
	}{
		{`FILTER(CONTAINS(?t, "JOIN"))`, 1},
		{`FILTER(STRSTARTS(?t, "TB"))`, 1},
		{`FILTER(STRENDS(?t, "SCAN"))`, 2},
		{`FILTER(REGEX(?t, "^(IX|TB)SCAN$"))`, 2},
		{`FILTER(REGEX(?t, "nljoin", "i"))`, 1},
		{`FILTER(STRLEN(?t) = 5)`, 1},
		{`FILTER(UCASE(LCASE(?t)) = ?t)`, 4},
		{`FILTER(STR(?t) = "FETCH")`, 1},
	}
	for _, c := range cases {
		res := execQuery(t, g, predPrefix+`SELECT ?pop WHERE { ?pop pred:hasPopType ?t . `+c.filter+` }`)
		if res.Len() != c.want {
			t.Errorf("%s: rows = %d, want %d", c.filter, res.Len(), c.want)
		}
	}
}

func TestExecZeroOrOnePath(t *testing.T) {
	g := evalTestGraph()
	res := execQuery(t, g, predPrefix+`
SELECT ?x WHERE {
  ?top pred:hasPopType "FETCH" .
  ?top pred:hasChildPop? ?x .
} ORDER BY ?x`)
	// FETCH itself (zero) plus IXSCAN (one step).
	if res.Len() != 2 {
		t.Errorf("rows = %d, want 2", res.Len())
	}
}

func TestResultsAccessors(t *testing.T) {
	g := evalTestGraph()
	res := execQuery(t, g, predPrefix+`SELECT ?pop WHERE { ?pop pred:hasPopType "NLJOIN" }`)
	if res.Column("pop") != 0 || res.Column("nope") != -1 {
		t.Error("Column lookup wrong")
	}
	if !res.Get(0, "nope").Zero() {
		t.Error("Get on missing column should be zero")
	}
	if !res.Get(5, "pop").Zero() {
		t.Error("Get out of range should be zero")
	}
}

func TestExecFilterNotExists(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.IRI("j1"), rdf.IRI("type"), rdf.String("NLJOIN"))
	g.Add(rdf.IRI("j1"), rdf.IRI("pred"), rdf.String("(A.K = B.K)"))
	g.Add(rdf.IRI("j2"), rdf.IRI("type"), rdf.String("NLJOIN"))
	// j2 has no predicate: a cartesian join.
	res := execQuery(t, g, `
SELECT ?j WHERE {
  ?j <type> "NLJOIN" .
  FILTER NOT EXISTS { ?j <pred> ?p }
}`)
	if res.Len() != 1 || res.Get(0, "j").Value != "j2" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecFilterExists(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.IRI("j1"), rdf.IRI("type"), rdf.String("NLJOIN"))
	g.Add(rdf.IRI("j1"), rdf.IRI("pred"), rdf.String("(A.K = B.K)"))
	g.Add(rdf.IRI("j2"), rdf.IRI("type"), rdf.String("NLJOIN"))
	res := execQuery(t, g, `
SELECT ?j WHERE {
  ?j <type> "NLJOIN" .
  FILTER EXISTS { ?j <pred> ?p } .
}`)
	if res.Len() != 1 || res.Get(0, "j").Value != "j1" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecExistsCorrelation(t *testing.T) {
	// EXISTS must be evaluated under the outer bindings (correlated), not
	// independently.
	g := rdf.NewGraph()
	g.Add(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("x"))
	g.Add(rdf.IRI("b"), rdf.IRI("p"), rdf.IRI("y"))
	g.Add(rdf.IRI("x"), rdf.IRI("q"), rdf.Int(1))
	// Only 'a' reaches a q-bearing node.
	res := execQuery(t, g, `
SELECT ?s WHERE {
  ?s <p> ?o .
  FILTER EXISTS { ?o <q> ?v }
}`)
	if res.Len() != 1 || res.Get(0, "s").Value != "a" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestParseExistsErrors(t *testing.T) {
	for _, q := range []string{
		`SELECT ?s WHERE { ?s <p> ?o . FILTER NOT { ?s <q> ?v } }`,
		`SELECT ?s WHERE { ?s <p> ?o . FILTER EXISTS ?s }`,
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
}
