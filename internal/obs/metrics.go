// Package obs is the daemon's observability kit: a dependency-free metrics
// registry (atomic counters, gauges and fixed-bucket latency histograms that
// render in the Prometheus text exposition format) plus log/slog helpers and
// per-request IDs. Instrumented packages (core, store, sparql) never import
// obs — they expose hook structs and atomic counter snapshots, and the
// server layer bridges those into a Registry — so the engine stays
// dependency-light and the whole kit can be swapped without touching a hot
// path.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency histogram bounds, in seconds. They span
// fast in-process scans (sub-millisecond) through slow HTTP requests.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// MicroBuckets resolve sub-microsecond operations — vocabulary prefilter
// probes, WAL buffer writes — that DefBuckets would lump into one bucket.
var MicroBuckets = []float64{1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 1e-2}

var metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Registry is a get-or-create collection of metric families. All methods are
// safe for concurrent use; fetching an already-registered series is two map
// lookups under a read lock, so callers may resolve metrics per-event
// (e.g. per HTTP request) instead of caching them.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge" or "histogram"
	buckets []float64

	mu     sync.Mutex
	series map[string]interface{} // label signature -> *Counter/*Gauge/*Histogram/func() float64
}

// labelSig renders alternating key/value pairs as the Prometheus label block
// ("" for none). Pairs keep their given order; metric identity is the
// rendered signature.
func labelSig(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be alternating key/value pairs")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// getFamily returns the family with the given name, creating it on first
// use. Re-registering under a different type is a programming error.
func (r *Registry) getFamily(name, help, typ string, buckets []float64) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		if !metricName.MatchString(name) {
			panic("obs: invalid metric name " + name)
		}
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{name: name, help: help, typ: typ, buckets: buckets, series: make(map[string]interface{})}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

// Counter returns the counter series for name+labels, creating it on first
// use. Labels are alternating key/value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	f := r.getFamily(name, help, "counter", nil)
	sig := labelSig(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[sig]; ok {
		return s.(*Counter)
	}
	c := &Counter{}
	f.series[sig] = c
	return c
}

// Gauge returns the gauge series for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	f := r.getFamily(name, help, "gauge", nil)
	sig := labelSig(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[sig]; ok {
		return s.(*Gauge)
	}
	g := &Gauge{}
	f.series[sig] = g
	return g
}

// Histogram returns the histogram series for name+labels, creating it on
// first use with the given upper bounds (nil: DefBuckets). Bounds are fixed
// per family; later calls reuse the first registration's bounds.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.getFamily(name, help, "histogram", buckets)
	sig := labelSig(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[sig]; ok {
		return s.(*Histogram)
	}
	h := newHistogram(f.buckets)
	f.series[sig] = h
	return h
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// the bridge for counters that already live elsewhere as atomics (engine
// plan count, WAL byte size). Re-registering the same name+labels replaces
// the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	f := r.getFamily(name, help, "gauge", nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.series[labelSig(labels)] = fn
}

// CounterFunc registers a counter whose value is read at scrape time. The
// function must be monotonic (snapshots of an atomic counter are).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	f := r.getFamily(name, help, "counter", nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.series[labelSig(labels)] = fn
}

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket latency histogram: one atomic counter per
// bucket plus a CAS-maintained float sum, so Observe never takes a lock.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; the extra slot is +Inf
	sum    atomic.Uint64  // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format, families and series in sorted order so scrapes are
// deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, sig := range sigs {
			switch s := f.series[sig].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, sig, s.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, sig, s.Value())
			case func() float64:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, sig, formatFloat(s()))
			case *Histogram:
				writeHistogram(&b, f.name, sig, s)
			}
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders the cumulative _bucket/_sum/_count triplet. The
// "le" label is appended to the series' own labels.
func writeHistogram(b *strings.Builder, name, sig string, h *Histogram) {
	withLE := func(le string) string {
		if sig == "" {
			return `{le="` + le + `"}`
		}
		return sig[:len(sig)-1] + `,le="` + le + `"}`
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(formatFloat(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE("+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, sig, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, sig, cum)
}

// Handler serves the registry at GET time in the Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
