package obs

import (
	"bytes"
	"context"
	"log/slog"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "requests", "route", "GET /x", "class", "2xx").Add(3)
	r.Counter("test_requests_total", "requests", "route", "GET /x", "class", "5xx").Inc()
	r.Gauge("test_in_flight", "in flight").Set(2)
	r.GaugeFunc("test_live", "live value", func() float64 { return 7.5 })
	r.CounterFunc("test_snap_total", "snapshotted atomic", func() float64 { return 41 })

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE test_requests_total counter",
		`test_requests_total{route="GET /x",class="2xx"} 3`,
		`test_requests_total{route="GET /x",class="5xx"} 1`,
		"# TYPE test_in_flight gauge",
		"test_in_flight 2",
		"test_live 7.5",
		"test_snap_total 41",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCounterIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "", "k", "v")
	b := r.Counter("test_total", "", "k", "v")
	if a != b {
		t.Error("same name+labels returned distinct series")
	}
	if c := r.Counter("test_total", "", "k", "other"); c == a {
		t.Error("different labels shared a series")
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("test_total", "")
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	h.ObserveDuration(20 * time.Millisecond)
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 5.625; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.01"} 1`,
		`test_seconds_bucket{le="0.1"} 4`,
		`test_seconds_bucket{le="1"} 5`,
		`test_seconds_bucket{le="+Inf"} 6`,
		"test_seconds_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestExpositionFormat checks that every rendered line is either a comment
// or "name[{labels}] value" — the shape Prometheus scrapers require.
func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "with \"quotes\"", "path", `C:\x "y"`).Inc()
	r.Histogram("b_seconds", "", nil).Observe(0.2)
	r.Gauge("c", "multi\nline help").Set(-4)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	line := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9+.eInf-]+$`)
	for _, l := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if strings.HasPrefix(l, "#") {
			continue
		}
		if !line.MatchString(l) {
			t.Errorf("malformed exposition line: %q", l)
		}
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("conc_total", "").Inc()
				r.Histogram("conc_seconds", "", nil).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("conc_total", "").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("conc_seconds", "", nil).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestRequestIDs(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Errorf("consecutive request IDs collide: %s", a)
	}
	ctx := WithRequestID(context.Background(), a)
	if got := RequestIDFrom(ctx); got != a {
		t.Errorf("RequestIDFrom = %q, want %q", got, a)
	}
	if got := RequestIDFrom(context.Background()); got != "" {
		t.Errorf("RequestIDFrom(empty) = %q", got)
	}
}

func TestLoggerAndLevels(t *testing.T) {
	if _, err := ParseLevel("nonsense"); err == nil {
		t.Error("ParseLevel accepted nonsense")
	}
	lvl, err := ParseLevel("WARN")
	if err != nil || lvl != slog.LevelWarn {
		t.Errorf("ParseLevel(WARN) = %v, %v", lvl, err)
	}
	var b bytes.Buffer
	log := NewLogger(&b, slog.LevelWarn, "json")
	log.Info("hidden")
	log.Warn("shown", "k", "v")
	out := b.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, `"shown"`) {
		t.Errorf("level filtering wrong: %s", out)
	}
	if !strings.Contains(out, `"k":"v"`) {
		t.Errorf("json attrs missing: %s", out)
	}
}
