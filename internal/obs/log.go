package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
)

// NewLogger builds a slog.Logger writing to w at the given level. Format is
// "json" or "text" (the optimatchd -log-format flag).
func NewLogger(w io.Writer, level slog.Level, format string) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if format == "json" {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// ParseLevel maps a -log-level flag value ("debug", "info", "warn",
// "error", case-insensitive) to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("obs: unknown log level %q", s)
	}
	return l, nil
}

// Request IDs are a per-process random prefix plus a sequence number:
// unique across restarts, cheap to mint, and greppable as a pair.
var (
	ridPrefix = func() string {
		var b [4]byte
		if _, err := crand.Read(b[:]); err != nil {
			return "00000000"
		}
		return hex.EncodeToString(b[:])
	}()
	ridSeq atomic.Uint64
)

// NewRequestID mints a request ID like "3fa9c12b-000017".
func NewRequestID() string {
	return fmt.Sprintf("%s-%06d", ridPrefix, ridSeq.Add(1))
}

type ctxKey struct{}

// WithRequestID stamps the ID into the context so handlers deeper in the
// stack can tag their own log lines.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// RequestIDFrom returns the stamped request ID, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}
