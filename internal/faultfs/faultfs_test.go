package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"optimatch/internal/storefs"
)

// openRW creates (or opens) a file for read/write through the injector.
func openRW(t *testing.T, ffs *FS, path string) storefs.File {
	t.Helper()
	f, err := ffs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFailNthCountsFromArmTime(t *testing.T) {
	dir := t.TempDir()
	ffs := Wrap(storefs.OS{})
	f := openRW(t, ffs, filepath.Join(dir, "a"))
	defer f.Close()

	// Two clean writes move the counter; arming n=1 afterwards must fail
	// the very next write, not the first-ever write.
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("x")); err != nil {
			t.Fatalf("clean write %d: %v", i, err)
		}
	}
	ffs.FailNth(OpWrite, 1, KindErr)
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed write err = %v, want ErrInjected", err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("arm did not clear after firing: %v", err)
	}
	if got := ffs.Seen(OpWrite); got != 4 {
		t.Fatalf("Seen(write) = %d, want 4", got)
	}
	total, byOp := ffs.Injected()
	if total != 1 || byOp[OpWrite] != 1 {
		t.Fatalf("Injected() = %d, %v", total, byOp)
	}
}

func TestShortWriteTearsBuffer(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	ffs := Wrap(storefs.OS{})
	f := openRW(t, ffs, path)
	defer f.Close()

	ffs.FailNth(OpWrite, 1, KindShortWrite)
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n != 5 {
		t.Fatalf("short write wrote %d bytes, want 5", n)
	}
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(data) != "01234" {
		t.Fatalf("on-disk bytes = %q, want the torn half %q", data, "01234")
	}
}

func TestENOSPCSatisfiesBothSentinels(t *testing.T) {
	ffs := Wrap(storefs.OS{})
	ffs.FailNth(OpSync, 1, KindENOSPC)
	f := openRW(t, ffs, filepath.Join(t.TempDir(), "a"))
	defer f.Close()

	err := f.Sync()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want to unwrap to ENOSPC", err)
	}
}

func TestClearHealsPendingFaults(t *testing.T) {
	ffs := Wrap(storefs.OS{})
	ffs.FailNth(OpRename, 1, KindErr)
	ffs.FailNth(OpRemove, 2, KindErr)
	if got := ffs.Armed(); got != 2 {
		t.Fatalf("Armed() = %d, want 2", got)
	}
	ffs.Clear()
	if got := ffs.Armed(); got != 0 {
		t.Fatalf("Armed() after Clear = %d, want 0", got)
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "src")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ffs.Rename(src, filepath.Join(dir, "dst")); err != nil {
		t.Fatalf("Rename after Clear: %v", err)
	}
}

// TestEveryOpClassInjectable arms each schedulable class once and drives a
// matching operation, so no class silently stops being intercepted.
func TestEveryOpClassInjectable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	if err := os.WriteFile(path, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	drive := map[Op]func(ffs *FS) error{
		OpWrite: func(ffs *FS) error {
			f := openRW(t, ffs, path)
			defer f.Close()
			_, err := f.Write([]byte("x"))
			return err
		},
		OpSync: func(ffs *FS) error {
			f := openRW(t, ffs, path)
			defer f.Close()
			return f.Sync()
		},
		OpRead: func(ffs *FS) error {
			_, err := ffs.ReadFile(path)
			return err
		},
		OpOpen: func(ffs *FS) error {
			_, err := ffs.Open(path)
			return err
		},
		OpCreate: func(ffs *FS) error {
			_, err := ffs.CreateTemp(dir, "tmp-*")
			return err
		},
		OpRename: func(ffs *FS) error { return ffs.Rename(path, path) },
		OpRemove: func(ffs *FS) error { return ffs.Remove(path) },
		OpTruncate: func(ffs *FS) error {
			return ffs.Truncate(path, 0)
		},
	}
	for _, op := range Ops {
		fn, ok := drive[op]
		if !ok {
			t.Fatalf("no driver for op %q — extend the test with the new class", op)
		}
		ffs := Wrap(storefs.OS{})
		ffs.FailNth(op, 1, KindErr)
		if err := fn(ffs); !errors.Is(err, ErrInjected) {
			t.Errorf("%s: err = %v, want ErrInjected", op, err)
		}
	}
}

// TestDeterministicReplay runs the same operation script against the same
// schedule twice and demands identical outcomes — the property the chaos
// harness's seed-reproducibility rests on.
func TestDeterministicReplay(t *testing.T) {
	script := func(dir string) []string {
		ffs := Wrap(storefs.OS{})
		ffs.FailNth(OpWrite, 3, KindShortWrite)
		ffs.FailNth(OpSync, 2, KindENOSPC)
		f := openRW(t, ffs, filepath.Join(dir, "a"))
		defer f.Close()
		var trace []string
		for i := 0; i < 5; i++ {
			if _, err := f.Write([]byte("abcdef")); err != nil {
				trace = append(trace, "write:"+err.Error())
			} else {
				trace = append(trace, "write:ok")
			}
			if err := f.Sync(); err != nil {
				trace = append(trace, "sync:"+err.Error())
			} else {
				trace = append(trace, "sync:ok")
			}
		}
		return trace
	}
	a, b := script(t.TempDir()), script(t.TempDir())
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
