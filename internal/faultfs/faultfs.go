// Package faultfs is a deterministic fault injector behind the storefs
// seam: it wraps any storefs.FS and fails scheduled filesystem operations
// — the Nth write, a write torn short mid-buffer, a failed fsync, ENOSPC,
// a failed rename during snapshot publication, read errors during
// recovery — while counting every operation it forwards. Schedules are
// explicit (FailNth arms one fault at a future operation count), so a
// test that derives its arm calls from a seeded RNG replays bit-identically
// from the seed alone: the store's operation sequence is deterministic for
// a deterministic workload, and the injector adds no randomness of its own.
//
// The injector is intentionally a *scripting* primitive, not a policy: the
// chaos harness in internal/store owns the seed, picks (operation, N, kind)
// triples from it, and asserts the store's invariants; faultfs only makes
// the disk misbehave on cue.
package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"
	"syscall"

	"optimatch/internal/storefs"
)

// ErrInjected marks every fault this package raises. Injected ENOSPC
// faults additionally satisfy errors.Is(err, syscall.ENOSPC).
var ErrInjected = errors.New("faultfs: injected fault")

// Op classifies filesystem operations for scheduling. Open covers both
// Open and OpenFile (recovery scans, directory handles for fsync, the
// append-mode WAL handle); Create covers CreateTemp (snapshot temp files).
type Op string

const (
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpRead     Op = "read"
	OpOpen     Op = "open"
	OpCreate   Op = "create"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpTruncate Op = "truncate"
)

// Ops lists every schedulable operation class, in a fixed order tests can
// index with a seeded RNG.
var Ops = []Op{OpWrite, OpSync, OpRead, OpOpen, OpCreate, OpRename, OpRemove, OpTruncate}

// Kind selects how an armed operation fails.
type Kind int

const (
	// KindErr fails the operation outright with ErrInjected.
	KindErr Kind = iota
	// KindENOSPC fails with an error that also unwraps to syscall.ENOSPC —
	// the full-disk case every durable layer eventually meets.
	KindENOSPC
	// KindShortWrite applies to writes only: half the buffer reaches the
	// underlying file before the error, leaving a torn record on disk.
	// For any other operation it behaves like KindErr.
	KindShortWrite
)

func (k Kind) String() string {
	switch k {
	case KindENOSPC:
		return "enospc"
	case KindShortWrite:
		return "short-write"
	default:
		return "err"
	}
}

// Kinds lists every fault kind, in a fixed order tests can index with a
// seeded RNG.
var Kinds = []Kind{KindErr, KindENOSPC, KindShortWrite}

// arm is one scheduled fault: fire when the operation's lifetime count
// reaches at.
type arm struct {
	at   int64
	kind Kind
}

// FS wraps a base filesystem with the fault schedule. All methods are safe
// for concurrent use; the operation counters are global across files, so a
// schedule is a property of the whole store directory, not one handle.
type FS struct {
	base storefs.FS

	mu       sync.Mutex
	seen     map[Op]int64 // operations forwarded (or failed) so far
	armed    map[Op][]arm // pending faults, sparse
	injected map[Op]int64 // faults fired so far
}

// Wrap returns a fault-injecting view of base with an empty schedule.
func Wrap(base storefs.FS) *FS {
	return &FS{
		base:     base,
		seen:     make(map[Op]int64),
		armed:    make(map[Op][]arm),
		injected: make(map[Op]int64),
	}
}

// FailNth arms one fault: the nth occurrence of op counted from this call
// (n=1 fails the very next one) fails with the given kind. Multiple arms
// may be pending per operation; each fires once.
func (f *FS) FailNth(op Op, n int64, kind Kind) {
	if n < 1 {
		n = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed[op] = append(f.armed[op], arm{at: f.seen[op] + n, kind: kind})
}

// Clear drops every pending fault — the disk is healed. Counters survive.
func (f *FS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed = make(map[Op][]arm)
}

// Seen reports how many operations of class op have been attempted.
func (f *FS) Seen(op Op) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seen[op]
}

// Injected reports how many faults have fired, in total and per class.
func (f *FS) Injected() (total int64, byOp map[Op]int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	byOp = make(map[Op]int64, len(f.injected))
	for op, n := range f.injected {
		byOp[op] = n
		total += n
	}
	return total, byOp
}

// Armed reports how many faults are still pending.
func (f *FS) Armed() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, arms := range f.armed {
		n += len(arms)
	}
	return n
}

// check advances op's counter and reports whether this occurrence should
// fail, consuming the matching arm.
func (f *FS) check(op Op) (Kind, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seen[op]++
	arms := f.armed[op]
	for i, a := range arms {
		if a.at == f.seen[op] {
			f.armed[op] = append(arms[:i:i], arms[i+1:]...)
			f.injected[op]++
			return a.kind, true
		}
	}
	return 0, false
}

// injectErr builds the error for one fired fault.
func injectErr(op Op, kind Kind) error {
	if kind == KindENOSPC {
		return fmt.Errorf("%w: %s: %w", ErrInjected, op, syscall.ENOSPC)
	}
	return fmt.Errorf("%w: %s (%s)", ErrInjected, op, kind)
}

func (f *FS) MkdirAll(path string, perm fs.FileMode) error {
	// Directory creation happens once at Open and is not a fault target.
	return f.base.MkdirAll(path, perm)
}

func (f *FS) Open(name string) (storefs.File, error) {
	if kind, hit := f.check(OpOpen); hit {
		return nil, injectErr(OpOpen, kind)
	}
	file, err := f.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, base: file}, nil
}

func (f *FS) OpenFile(name string, flag int, perm fs.FileMode) (storefs.File, error) {
	if kind, hit := f.check(OpOpen); hit {
		return nil, injectErr(OpOpen, kind)
	}
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, base: file}, nil
}

func (f *FS) CreateTemp(dir, pattern string) (storefs.File, error) {
	if kind, hit := f.check(OpCreate); hit {
		return nil, injectErr(OpCreate, kind)
	}
	file, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, base: file}, nil
}

func (f *FS) ReadFile(name string) ([]byte, error) {
	if kind, hit := f.check(OpRead); hit {
		return nil, injectErr(OpRead, kind)
	}
	return f.base.ReadFile(name)
}

func (f *FS) ReadDir(name string) ([]fs.DirEntry, error) {
	if kind, hit := f.check(OpRead); hit {
		return nil, injectErr(OpRead, kind)
	}
	return f.base.ReadDir(name)
}

func (f *FS) Rename(oldpath, newpath string) error {
	if kind, hit := f.check(OpRename); hit {
		return injectErr(OpRename, kind)
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error {
	if kind, hit := f.check(OpRemove); hit {
		return injectErr(OpRemove, kind)
	}
	return f.base.Remove(name)
}

func (f *FS) Truncate(name string, size int64) error {
	if kind, hit := f.check(OpTruncate); hit {
		return injectErr(OpTruncate, kind)
	}
	return f.base.Truncate(name, size)
}

// faultFile forwards per-handle operations through the shared schedule.
type faultFile struct {
	fs   *FS
	base storefs.File
}

func (f *faultFile) Name() string { return f.base.Name() }

func (f *faultFile) Read(p []byte) (int, error) {
	if kind, hit := f.fs.check(OpRead); hit {
		return 0, injectErr(OpRead, kind)
	}
	return f.base.Read(p)
}

func (f *faultFile) Write(p []byte) (int, error) {
	kind, hit := f.fs.check(OpWrite)
	if !hit {
		return f.base.Write(p)
	}
	if kind == KindShortWrite && len(p) > 0 {
		// Tear the buffer: half of it reaches the disk, then the error.
		n, err := f.base.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, injectErr(OpWrite, kind)
	}
	return 0, injectErr(OpWrite, kind)
}

func (f *faultFile) Sync() error {
	if kind, hit := f.fs.check(OpSync); hit {
		return injectErr(OpSync, kind)
	}
	return f.base.Sync()
}

func (f *faultFile) Close() error {
	// Close is not a fault target: the store treats close errors on
	// already-synced files as benign, and failing them would only retest
	// error plumbing the write/sync faults already cover.
	return f.base.Close()
}
