package transform

import (
	"strings"
	"testing"

	"optimatch/internal/qep"
	"optimatch/internal/rdf"
	"optimatch/internal/sparql"
)

// figure1Plan mirrors the fixture in the qep package tests.
func figure1Plan(t *testing.T) *qep.Plan {
	t.Helper()
	p := qep.NewPlan("Q2")
	p.Statement = "SELECT * FROM SALES_FACT F JOIN CUST_DIM C ON F.CUST_ID = C.CUST_ID"
	p.TotalCost = 15782.2

	salesFact := p.AddObject(&qep.BaseObject{Name: "SALES_FACT", Type: "TABLE", Cardinality: 1e7, Columns: []string{"CUST_ID", "SALE_AMT"}})
	custDim := p.AddObject(&qep.BaseObject{Name: "CUST_DIM", Type: "TABLE", Cardinality: 4043, Columns: []string{"CUST_ID", "CUST_NAME"}})

	ret := &qep.Operator{ID: 1, Type: "RETURN", TotalCost: 15782.2, IOCost: 1320, Cardinality: 19.12}
	nl := &qep.Operator{ID: 2, Type: "NLJOIN", TotalCost: 15771, IOCost: 1318, Cardinality: 19.12,
		Args: map[string]string{"FETCHMAX": "IGNORE"}, Predicates: []string{"(Q1.CUST_ID = Q2.CUST_ID)"}}
	fetch := &qep.Operator{ID: 3, Type: "FETCH", TotalCost: 19.12, IOCost: 2, Cardinality: 19.12}
	ix := &qep.Operator{ID: 4, Type: "IXSCAN", TotalCost: 12.3, IOCost: 1, Cardinality: 19.12}
	tb := &qep.Operator{ID: 5, Type: "TBSCAN", TotalCost: 15771, IOCost: 1316, Cardinality: 4043}
	for _, op := range []*qep.Operator{ret, nl, fetch, ix, tb} {
		if err := p.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	p.Link(ret, qep.GeneralStream, nl, nil, 19.12, nil)
	p.Link(nl, qep.OuterStream, fetch, nil, 19.12, []string{"Q2.SALE_AMT", "Q2.CUST_ID"})
	p.Link(nl, qep.InnerStream, tb, nil, 4043, []string{"Q1.CUST_NAME", "Q1.CUST_ID"})
	p.Link(fetch, qep.GeneralStream, ix, nil, 19.12, nil)
	p.Link(ix, qep.GeneralStream, nil, salesFact, 1e7, nil)
	p.Link(tb, qep.GeneralStream, nil, custDim, 4043, nil)
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTransformBasicProperties(t *testing.T) {
	p := figure1Plan(t)
	r := Transform(p)
	g := r.Graph

	nl := r.PopIRI(p.Operators[2])
	if got := g.FirstObject(nl, rdf.IRI(PredPopType)); got.Value != "NLJOIN" {
		t.Errorf("hasPopType = %v", got)
	}
	if got := g.FirstObject(nl, rdf.IRI(PredPopClass)); got.Value != "JOIN" {
		t.Errorf("hasPopClass = %v", got)
	}
	if f, _ := g.FirstObject(nl, rdf.IRI(PredTotalCost)).Float(); f != 15771 {
		t.Errorf("hasTotalCost = %v", f)
	}
	if f, _ := g.FirstObject(nl, rdf.IRI(PredCardinality)).Float(); f != 19.12 {
		t.Errorf("cardinality = %v", f)
	}
	if got := g.FirstObject(nl, rdf.IRI(ArgNS+"FETCHMAX")); got.Value != "IGNORE" {
		t.Errorf("arg = %v", got)
	}
	if got := g.FirstObject(nl, rdf.IRI(PredPredicateText)); !strings.Contains(got.Value, "CUST_ID") {
		t.Errorf("predicate text = %v", got)
	}
	if got := g.FirstObject(nl, rdf.IRI(PredJoinType)); got.Value != "INNER" {
		t.Errorf("join type = %v", got)
	}
}

func TestTransformDerivedCostIncrease(t *testing.T) {
	p := figure1Plan(t)
	r := Transform(p)
	fetch := r.PopIRI(p.Operators[3])
	f, ok := r.Graph.FirstObject(fetch, rdf.IRI(PredTotalCostIncrease)).Float()
	if !ok {
		t.Fatal("hasTotalCostIncrease missing")
	}
	if want := p.Operators[3].SelfCost(); f != want {
		t.Errorf("cost increase = %v, want %v", f, want)
	}
}

func TestTransformReifiedStreams(t *testing.T) {
	p := figure1Plan(t)
	r := Transform(p)
	g := r.Graph
	nl := r.PopIRI(p.Operators[2])
	tb := r.PopIRI(p.Operators[5])

	// NLJOIN --hasInnerInputStream--> stream --hasInnerInputStream--> TBSCAN
	streams := g.Objects(nl, rdf.IRI(PredInnerInputStream))
	if len(streams) != 1 {
		t.Fatalf("inner streams = %v", streams)
	}
	stream := streams[0]
	if got := g.FirstObject(stream, rdf.IRI(PredInnerInputStream)); got != tb {
		t.Errorf("stream child = %v, want %v", got, tb)
	}
	// Reverse hasOutputStream edges.
	if !g.Has(tb, rdf.IRI(PredOutputStream), stream) {
		t.Error("child hasOutputStream stream edge missing")
	}
	if !g.Has(stream, rdf.IRI(PredOutputStream), nl) {
		t.Error("stream hasOutputStream parent edge missing")
	}
	// Stream carries rows and columns.
	if f, _ := g.FirstObject(stream, rdf.IRI(PredStreamRows)).Float(); f != 4043 {
		t.Errorf("stream rows = %v", f)
	}
	if cols := g.Objects(stream, rdf.IRI(PredStreamColumn)); len(cols) != 2 {
		t.Errorf("stream columns = %v", cols)
	}
}

func TestTransformDerivedChildEdges(t *testing.T) {
	p := figure1Plan(t)
	r := Transform(p)
	g := r.Graph
	nl := r.PopIRI(p.Operators[2])
	fetch := r.PopIRI(p.Operators[3])
	tb := r.PopIRI(p.Operators[5])

	if !g.Has(nl, rdf.IRI(PredChildPop), fetch) || !g.Has(nl, rdf.IRI(PredChildPop), tb) {
		t.Error("hasChildPop edges missing")
	}
	if !g.Has(nl, rdf.IRI(PredOuterChildPop), fetch) {
		t.Error("hasOuterChildPop missing")
	}
	if !g.Has(nl, rdf.IRI(PredInnerChildPop), tb) {
		t.Error("hasInnerChildPop missing")
	}
	if g.Has(nl, rdf.IRI(PredOuterChildPop), tb) {
		t.Error("inner child has outer edge")
	}
}

func TestTransformBaseObjects(t *testing.T) {
	p := figure1Plan(t)
	r := Transform(p)
	g := r.Graph
	cd := r.ObjIRI(p.Objects["CUST_DIM"])
	if v, _ := g.FirstObject(cd, rdf.IRI(PredIsBaseObj)).Bool(); !v {
		t.Error("isABaseObj missing")
	}
	if got := g.FirstObject(cd, rdf.IRI(PredPopType)); got.Value != BaseObjType {
		t.Errorf("object pop type = %v", got)
	}
	if got := g.FirstObject(cd, rdf.IRI(PredName)); got.Value != "CUST_DIM" {
		t.Errorf("hasName = %v", got)
	}
	if cols := g.Objects(cd, rdf.IRI(PredColumn)); len(cols) != 2 {
		t.Errorf("object columns = %v", cols)
	}
	// TBSCAN is linked to CUST_DIM through a reified general stream.
	tb := r.PopIRI(p.Operators[5])
	if !g.Has(tb, rdf.IRI(PredChildPop), cd) {
		t.Error("scan -> object child edge missing")
	}
}

func TestTransformPlanResource(t *testing.T) {
	p := figure1Plan(t)
	r := Transform(p)
	g := r.Graph
	plan := r.PlanIRI()
	if got := g.FirstObject(plan, rdf.IRI(PredStatementID)); got.Value != "Q2" {
		t.Errorf("statement id = %v", got)
	}
	if f, _ := g.FirstObject(plan, rdf.IRI(PredNumOperators)).Float(); f != 5 {
		t.Errorf("num operators = %v", f)
	}
	if got := g.FirstObject(plan, rdf.IRI(PredRootPop)); got != r.PopIRI(p.Root) {
		t.Errorf("root pop = %v", got)
	}
}

func TestDetransformation(t *testing.T) {
	p := figure1Plan(t)
	r := Transform(p)
	nlIRI := r.PopIRI(p.Operators[2])
	if op := r.Operator(nlIRI); op == nil || op.ID != 2 {
		t.Errorf("Operator() = %v", op)
	}
	if obj := r.Object(r.ObjIRI(p.Objects["CUST_DIM"])); obj == nil || obj.Name != "CUST_DIM" {
		t.Errorf("Object() = %v", obj)
	}
	if r.Operator(rdf.String("x")) != nil || r.Object(rdf.IRI("urn:none")) != nil {
		t.Error("de-transform of non-resources should be nil")
	}
	if got := r.Describe(nlIRI); got != "NLJOIN(2)" {
		t.Errorf("Describe = %q", got)
	}
	if got := r.Describe(r.ObjIRI(p.Objects["CUST_DIM"])); got != "CUST_DIM" {
		t.Errorf("Describe obj = %q", got)
	}
	if got := r.Describe(rdf.IRI("urn:other")); got != "urn:other" {
		t.Errorf("Describe other = %q", got)
	}
}

// TestFigure6QueryAgainstTransformedPlan runs (a faithful rendition of) the
// paper's Figure 6 autogenerated SPARQL against the transformed Figure 1
// plan and checks the expected match.
func TestFigure6QueryAgainstTransformedPlan(t *testing.T) {
	p := figure1Plan(t)
	r := Transform(p)

	query := Prologue + `
SELECT ?pop1 AS ?TOP ?pop2 AS ?ANY2 ?pop4 AS ?BASE4
WHERE {
  ?pop1 preduri:hasPopType "NLJOIN" .
  ?pop1 preduri:hasOuterInputStream ?BNodeOfPop2_to_Pop1 .
  ?BNodeOfPop2_to_Pop1 preduri:hasOuterInputStream ?pop2 .
  ?pop2 preduri:hasOutputStream ?BNodeOfPop2_to_Pop1 .
  ?BNodeOfPop2_to_Pop1 preduri:hasOutputStream ?pop1 .
  ?pop1 preduri:hasInnerInputStream ?BNodeOfPop3_to_Pop1 .
  ?BNodeOfPop3_to_Pop1 preduri:hasInnerInputStream ?pop3 .
  ?pop3 preduri:hasOutputStream ?BNodeOfPop3_to_Pop1 .
  ?BNodeOfPop3_to_Pop1 preduri:hasOutputStream ?pop1 .
  ?pop3 preduri:hasPopType "TBSCAN" .
  ?pop3 preduri:hasEstimateCardinality ?internalHandler1 .
  FILTER(?internalHandler1 > 100) .
  ?pop3 preduri:hasInputStream ?BNodeOfPop4_to_Pop3 .
  ?BNodeOfPop4_to_Pop3 preduri:hasInputStream ?pop4 .
  ?pop4 preduri:hasOutputStream ?BNodeOfPop4_to_Pop3 .
  ?BNodeOfPop4_to_Pop3 preduri:hasOutputStream ?pop3 .
  ?pop4 preduri:isABaseObj ?internalHandler2 .
}
ORDER BY ?pop1`
	q, err := sparql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Exec(r.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("matches = %d, want 1", res.Len())
	}
	if op := r.Operator(res.Get(0, "TOP")); op == nil || op.Type != "NLJOIN" {
		t.Errorf("TOP = %v", res.Get(0, "TOP"))
	}
	if obj := r.Object(res.Get(0, "BASE4")); obj == nil || obj.Name != "CUST_DIM" {
		t.Errorf("BASE4 = %v", res.Get(0, "BASE4"))
	}
	if op := r.Operator(res.Get(0, "ANY2")); op == nil || op.Type != "FETCH" {
		t.Errorf("ANY2 = %v", res.Get(0, "ANY2"))
	}
}

func TestTransformAll(t *testing.T) {
	p1 := figure1Plan(t)
	p2 := figure1Plan(t)
	p2.ID = "Q3"
	rs := TransformAll([]*qep.Plan{p1, p2})
	if len(rs) != 2 {
		t.Fatalf("results = %d", len(rs))
	}
	if rs[0].Graph.Len() == 0 || rs[1].Graph.Len() == 0 {
		t.Error("empty graphs")
	}
	// Resources are namespaced by plan ID, so the two graphs don't collide.
	if rs[0].PopIRI(p1.Operators[2]) == rs[1].PopIRI(p2.Operators[2]) {
		t.Error("plan namespaces collide")
	}
}
