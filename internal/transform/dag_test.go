package transform

import (
	"testing"

	"optimatch/internal/fixtures"
	"optimatch/internal/rdf"
)

// TestSharedTempReification checks the Section 2.2 disambiguation: when a
// TEMP has two consumers, each consumer edge goes through its own stream
// node, so the two connections remain distinguishable.
func TestSharedTempReification(t *testing.T) {
	p := fixtures.SharedTemp()
	r := Transform(p)
	g := r.Graph

	temp := r.PopIRI(p.Operators[6])
	nl := r.PopIRI(p.Operators[3])
	hs := r.PopIRI(p.Operators[4])

	// The TEMP has two outgoing hasOutputStream edges to two distinct
	// stream nodes.
	streams := g.Objects(temp, rdf.IRI(PredOutputStream))
	if len(streams) != 2 {
		t.Fatalf("output streams = %d, want 2 (%v)", len(streams), streams)
	}
	if streams[0] == streams[1] {
		t.Fatal("consumer stream nodes collide")
	}
	// Each stream node leads to exactly one of the consumers.
	consumers := map[string]bool{}
	for _, s := range streams {
		parent := g.FirstObject(s, rdf.IRI(PredOutputStream))
		consumers[parent.Value] = true
	}
	if !consumers[nl.Value] || !consumers[hs.Value] {
		t.Errorf("consumers = %v, want NLJOIN and HSJOIN", consumers)
	}

	// Both consumers have direct derived child edges to the TEMP.
	if !g.Has(nl, rdf.IRI(PredChildPop), temp) || !g.Has(hs, rdf.IRI(PredChildPop), temp) {
		t.Error("hasChildPop edges to shared TEMP missing")
	}
	// The typed inner-child edges exist for both joins (TEMP is the inner
	// input of each).
	if !g.Has(nl, rdf.IRI(PredInnerChildPop), temp) || !g.Has(hs, rdf.IRI(PredInnerChildPop), temp) {
		t.Error("typed inner child edges missing")
	}
}

// TestTypedStreamsCarryGenericEdge checks that inner/outer streams also
// expose the generic hasInputStream predicate, so a pattern's generic-input
// clause matches any stream kind.
func TestTypedStreamsCarryGenericEdge(t *testing.T) {
	p := fixtures.Figure1()
	r := Transform(p)
	g := r.Graph
	nl := r.PopIRI(p.Operators[2])

	inner := g.Objects(nl, rdf.IRI(PredInnerInputStream))
	if len(inner) != 1 {
		t.Fatalf("inner streams = %d", len(inner))
	}
	// The same stream node is reachable via the generic predicate.
	generic := g.Objects(nl, rdf.IRI(PredInputStream))
	found := false
	for _, s := range generic {
		if s == inner[0] {
			found = true
		}
	}
	if !found {
		t.Errorf("generic hasInputStream missing for typed stream: %v", generic)
	}
}
