// Package transform converts query execution plans into RDF graphs
// (the paper's Algorithm 1) and maps matched RDF resources back to plan
// operators and base objects (the de-transformation step of Algorithm 3).
//
// Every LOLEPOP becomes an RDF resource carrying its properties as
// predicates; every input stream is reified through a dedicated stream node
// so that a common subexpression consumed in several places (a TEMP with
// multiple consumers) keeps one distinct edge per consumer — resolving the
// ambiguity problem described in Section 2.2 of the paper. During
// transformation derived predicates are added: hasTotalCostIncrease (the
// operator's own cost), hasPopClass (JOIN/SCAN/... buckets) and the direct
// hasChildPop/hasOuterChildPop/hasInnerChildPop closure helpers that make
// descendant property paths cheap.
package transform

import (
	"fmt"

	"optimatch/internal/qep"
	"optimatch/internal/rdf"
)

// Namespace IRIs.
const (
	// PredNS is the predicate namespace ("preduri" prefix in the paper's
	// Figure 6).
	PredNS = "http://optimatch/pred/"
	// ArgNS holds operator-argument predicates (one per argument key).
	ArgNS = "http://optimatch/pred/arg/"
	// PopNS is the LOLEPOP resource namespace ("popuri" in Figure 6).
	PopNS = "http://optimatch/qep/"
)

// Predicate IRIs. Exported so the pattern compiler and knowledge base can
// generate queries against the same vocabulary.
const (
	PredPopType           = PredNS + "hasPopType"
	PredPopClass          = PredNS + "hasPopClass"
	PredOperatorNumber    = PredNS + "hasOperatorNumber"
	PredTotalCost         = PredNS + "hasTotalCost"
	PredIOCost            = PredNS + "hasIOCost"
	PredCPUCost           = PredNS + "hasCPUCost"
	PredFirstRowCost      = PredNS + "hasFirstRowCost"
	PredBufferpool        = PredNS + "hasBufferpoolBuffers"
	PredCardinality       = PredNS + "hasEstimateCardinality"
	PredTotalCostIncrease = PredNS + "hasTotalCostIncrease"
	PredJoinType          = PredNS + "hasJoinType"
	PredPredicateText     = PredNS + "hasPredicateText"
	PredOuterInputStream  = PredNS + "hasOuterInputStream"
	PredInnerInputStream  = PredNS + "hasInnerInputStream"
	PredInputStream       = PredNS + "hasInputStream"
	PredOutputStream      = PredNS + "hasOutputStream"
	PredStreamRows        = PredNS + "hasStreamRows"
	PredStreamColumn      = PredNS + "hasStreamColumn"
	PredChildPop          = PredNS + "hasChildPop"
	PredOuterChildPop     = PredNS + "hasOuterChildPop"
	PredInnerChildPop     = PredNS + "hasInnerChildPop"
	PredIsBaseObj         = PredNS + "isABaseObj"
	PredName              = PredNS + "hasName"
	PredObjectType        = PredNS + "hasObjectType"
	PredColumn            = PredNS + "hasColumn"
	PredStatementID       = PredNS + "hasStatementID"
	PredStatementText     = PredNS + "hasStatementText"
	PredNumOperators      = PredNS + "hasNumOperators"
	PredRootPop           = PredNS + "hasRootPop"
)

// Prologue is the PREFIX block shared by all generated SPARQL queries.
const Prologue = "PREFIX preduri: <" + PredNS + ">\n" +
	"PREFIX popuri: <" + PopNS + ">\n" +
	"PREFIX arguri: <" + ArgNS + ">\n"

// BaseObjType is the pseudo pop-type assigned to base object resources, as
// used by the pattern builder's "BASE OB" operator type (paper Figure 5).
const BaseObjType = "BASE OB"

// Result is the outcome of transforming one plan: the RDF graph plus the
// de-transformation maps from resource IRIs back to plan entities.
type Result struct {
	Plan  *qep.Plan
	Graph *rdf.Graph

	ops  map[string]*qep.Operator
	objs map[string]*qep.BaseObject
}

// PopIRI returns the resource IRI of an operator in this plan.
func (r *Result) PopIRI(op *qep.Operator) rdf.Term {
	return rdf.IRI(fmt.Sprintf("%s%s/pop/%d", PopNS, r.Plan.ID, op.ID))
}

// ObjIRI returns the resource IRI of a base object in this plan.
func (r *Result) ObjIRI(obj *qep.BaseObject) rdf.Term {
	return rdf.IRI(PopNS + r.Plan.ID + "/obj/" + obj.Name)
}

// PlanIRI returns the resource IRI of the plan itself.
func (r *Result) PlanIRI() rdf.Term {
	return rdf.IRI(PopNS + r.Plan.ID + "/plan")
}

// Operator de-transforms a matched resource back to its plan operator, or
// nil when the term is not an operator resource of this plan.
func (r *Result) Operator(t rdf.Term) *qep.Operator {
	if !t.IsIRI() {
		return nil
	}
	return r.ops[t.Value]
}

// Object de-transforms a matched resource back to its base object, or nil.
func (r *Result) Object(t rdf.Term) *qep.BaseObject {
	if !t.IsIRI() {
		return nil
	}
	return r.objs[t.Value]
}

// Describe renders a matched resource the way a user sees it in the plan:
// "NLJOIN(2)" for operators, the object name for base objects, and the raw
// term otherwise.
func (r *Result) Describe(t rdf.Term) string {
	if op := r.Operator(t); op != nil {
		return fmt.Sprintf("%s(%d)", op.DisplayName(), op.ID)
	}
	if obj := r.Object(t); obj != nil {
		return obj.Name
	}
	return t.Value
}

// Transform converts a plan into its RDF graph representation.
func Transform(p *qep.Plan) *Result {
	r := &Result{
		Plan:  p,
		Graph: rdf.NewGraph(),
		ops:   make(map[string]*qep.Operator, len(p.Operators)),
		objs:  make(map[string]*qep.BaseObject, len(p.Objects)),
	}
	g := r.Graph

	// Plan-level resource.
	plan := r.PlanIRI()
	g.Add(plan, rdf.IRI(PredStatementID), rdf.String(p.ID))
	g.Add(plan, rdf.IRI(PredStatementText), rdf.String(p.Statement))
	g.Add(plan, rdf.IRI(PredTotalCost), rdf.Float(p.TotalCost))
	g.Add(plan, rdf.IRI(PredNumOperators), rdf.Int(int64(p.NumOps())))
	if p.Root != nil {
		g.Add(plan, rdf.IRI(PredRootPop), r.PopIRI(p.Root))
	}

	// Base objects.
	for _, obj := range p.Objects {
		node := r.ObjIRI(obj)
		r.objs[node.Value] = obj
		g.Add(node, rdf.IRI(PredIsBaseObj), rdf.Bool(true))
		g.Add(node, rdf.IRI(PredPopType), rdf.String(BaseObjType))
		g.Add(node, rdf.IRI(PredName), rdf.String(obj.Name))
		g.Add(node, rdf.IRI(PredObjectType), rdf.String(obj.Type))
		g.Add(node, rdf.IRI(PredCardinality), rdf.Float(obj.Cardinality))
		for _, col := range obj.Columns {
			g.Add(node, rdf.IRI(PredColumn), rdf.String(col))
		}
	}

	// Operators with their properties.
	for _, op := range p.Ops() {
		node := r.PopIRI(op)
		r.ops[node.Value] = op
		g.Add(node, rdf.IRI(PredPopType), rdf.String(op.Type))
		g.Add(node, rdf.IRI(PredPopClass), rdf.String(op.Class()))
		g.Add(node, rdf.IRI(PredOperatorNumber), rdf.Int(int64(op.ID)))
		g.Add(node, rdf.IRI(PredTotalCost), rdf.Float(op.TotalCost))
		g.Add(node, rdf.IRI(PredIOCost), rdf.Float(op.IOCost))
		g.Add(node, rdf.IRI(PredCPUCost), rdf.Float(op.CPUCost))
		g.Add(node, rdf.IRI(PredFirstRowCost), rdf.Float(op.FirstRow))
		g.Add(node, rdf.IRI(PredBufferpool), rdf.Float(op.Buffers))
		g.Add(node, rdf.IRI(PredCardinality), rdf.Float(op.Cardinality))
		g.Add(node, rdf.IRI(PredTotalCostIncrease), rdf.Float(op.SelfCost()))
		g.Add(node, rdf.IRI(PredJoinType), rdf.String(joinTypeName(op)))
		for _, pr := range op.Predicates {
			g.Add(node, rdf.IRI(PredPredicateText), rdf.String(pr))
		}
		for k, v := range op.Args {
			g.Add(node, rdf.IRI(ArgNS+k), rdf.String(v))
		}
	}

	// Streams: one reified node per (parent, input) edge, so each consumer
	// of a shared subexpression has a distinct connection.
	for _, op := range p.Ops() {
		parent := r.PopIRI(op)
		for i, in := range op.Inputs {
			streamPred := PredInputStream
			childPred := PredChildPop
			switch in.Kind {
			case qep.OuterStream:
				streamPred = PredOuterInputStream
				childPred = PredOuterChildPop
			case qep.InnerStream:
				streamPred = PredInnerInputStream
				childPred = PredInnerChildPop
			}
			var child rdf.Term
			if in.Op != nil {
				child = r.PopIRI(in.Op)
			} else {
				child = r.ObjIRI(in.Obj)
			}
			stream := rdf.IRI(fmt.Sprintf("%s%s/stream/%d_%d", PopNS, p.ID, op.ID, i))
			g.Add(parent, rdf.IRI(streamPred), stream)
			g.Add(stream, rdf.IRI(streamPred), child)
			g.Add(child, rdf.IRI(PredOutputStream), stream)
			g.Add(stream, rdf.IRI(PredOutputStream), parent)
			if streamPred != PredInputStream {
				// Typed streams also carry the generic hasInputStream edge,
				// so a pattern's generic-input clause matches any stream
				// kind (the paper's "generic input used for any kind of
				// operator").
				g.Add(parent, rdf.IRI(PredInputStream), stream)
				g.Add(stream, rdf.IRI(PredInputStream), child)
			}
			g.Add(stream, rdf.IRI(PredStreamRows), rdf.Float(in.Rows))
			for _, col := range in.Columns {
				g.Add(stream, rdf.IRI(PredStreamColumn), rdf.String(col))
			}

			// Derived direct edges (general hasChildPop plus the typed
			// variant) to keep descendant property paths single-predicate.
			g.Add(parent, rdf.IRI(PredChildPop), child)
			if childPred != PredChildPop {
				g.Add(parent, rdf.IRI(childPred), child)
			}
		}
	}
	return r
}

func joinTypeName(op *qep.Operator) string {
	if !op.IsJoin() {
		return "NONE"
	}
	switch op.JoinMod {
	case qep.LeftOuterJoin:
		return "LEFT_OUTER"
	case qep.RightOuterJoin:
		return "RIGHT_OUTER"
	case qep.EarlyOutJoin:
		return "EARLY_OUT"
	default:
		return "INNER"
	}
}

// TransformAll converts a batch of plans, one RDF graph each (the paper's
// Algorithm 1 over a workload).
func TransformAll(plans []*qep.Plan) []*Result {
	out := make([]*Result, len(plans))
	for i, p := range plans {
		out[i] = Transform(p)
	}
	return out
}
