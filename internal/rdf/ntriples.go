package rdf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteNTriples serializes the graph in N-Triples form, one statement per
// line, sorted lexicographically so output is deterministic. This is the
// "generated RDF in textual representation" of the paper's Figure 2.
func WriteNTriples(w io.Writer, g *Graph) error {
	lines := make([]string, 0, g.Len())
	for _, t := range g.Triples() {
		lines = append(lines, t.String())
	}
	sort.Strings(lines)
	bw := bufio.NewWriter(w)
	for _, line := range lines {
		if _, err := bw.WriteString(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseNTriples reads N-Triples statements from r into a fresh graph.
// Comments (# ...) and blank lines are skipped. The subset accepted is
// exactly what WriteNTriples emits plus language-free literals.
func ParseNTriples(r io.Reader) (*Graph, error) {
	g := NewGraph()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseNTripleLine(line)
		if err != nil {
			return nil, fmt.Errorf("ntriples: line %d: %w", lineNo, err)
		}
		g.AddTriple(t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ntriples: %w", err)
	}
	return g, nil
}

func parseNTripleLine(line string) (Triple, error) {
	p := ntParser{input: line}
	s, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("subject: %w", err)
	}
	pred, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("predicate: %w", err)
	}
	o, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("object: %w", err)
	}
	p.skipSpace()
	if p.pos >= len(p.input) || p.input[p.pos] != '.' {
		return Triple{}, fmt.Errorf("missing terminating '.'")
	}
	return Triple{S: s, P: pred, O: o}, nil
}

type ntParser struct {
	input string
	pos   int
}

func (p *ntParser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func (p *ntParser) term() (Term, error) {
	p.skipSpace()
	if p.pos >= len(p.input) {
		return Term{}, fmt.Errorf("unexpected end of line")
	}
	switch p.input[p.pos] {
	case '<':
		end := strings.IndexByte(p.input[p.pos:], '>')
		if end < 0 {
			return Term{}, fmt.Errorf("unterminated IRI")
		}
		iri := p.input[p.pos+1 : p.pos+end]
		p.pos += end + 1
		return IRI(iri), nil
	case '_':
		if p.pos+1 >= len(p.input) || p.input[p.pos+1] != ':' {
			return Term{}, fmt.Errorf("malformed blank node")
		}
		start := p.pos + 2
		end := start
		for end < len(p.input) && !isNTSpace(p.input[end]) {
			end++
		}
		label := p.input[start:end]
		if label == "" {
			return Term{}, fmt.Errorf("empty blank node label")
		}
		p.pos = end
		return Blank(label), nil
	case '"':
		lex, next, err := unquoteLiteral(p.input, p.pos)
		if err != nil {
			return Term{}, err
		}
		p.pos = next
		datatype := ""
		if strings.HasPrefix(p.input[p.pos:], "^^<") {
			p.pos += 3
			end := strings.IndexByte(p.input[p.pos:], '>')
			if end < 0 {
				return Term{}, fmt.Errorf("unterminated datatype IRI")
			}
			datatype = p.input[p.pos : p.pos+end]
			p.pos += end + 1
		}
		return TypedLiteral(lex, datatype), nil
	default:
		return Term{}, fmt.Errorf("unexpected character %q", p.input[p.pos])
	}
}

func isNTSpace(b byte) bool { return b == ' ' || b == '\t' }

func unquoteLiteral(s string, start int) (lex string, next int, err error) {
	var b strings.Builder
	i := start + 1 // skip opening quote
	for i < len(s) {
		c := s[i]
		switch c {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", s[i])
			}
			i++
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated literal")
}
