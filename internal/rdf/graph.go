package rdf

import "sync/atomic"

// Graph is an in-memory RDF graph (triple store). Triples are dictionary
// encoded: every term is interned to a dense ID and three permutation
// indexes (SPO, POS, OSP) answer every bound/unbound combination of a triple
// pattern without scanning.
//
// A Graph is safe for concurrent readers once loading has finished; loading
// (Add) must not run concurrently with anything else. OptImatch builds one
// graph per query execution plan, then matches many patterns against it.
type Graph struct {
	dict *Dict

	spo map[ID]map[ID][]ID // subject -> predicate -> objects
	pos map[ID]map[ID][]ID // predicate -> object -> subjects
	osp map[ID]map[ID][]ID // object -> subject -> predicates

	// spoSets shadows large SPO buckets with a membership set so that bulk
	// loading stays linear per bucket; small buckets keep the plain slice
	// scan. The slices above remain the iteration source for Match, so
	// insertion order is preserved either way.
	spoSets map[[2]ID]map[ID]struct{}

	// acc holds the lazily built path-acceleration snapshots (per-predicate
	// CSR adjacency, distinct-node list); see csr.go. Add invalidates it.
	acc atomic.Pointer[accel]

	// gen is the graph's data generation: a monotonic counter bumped by
	// every successful insertion. Caches keyed by (query, generation) use
	// it to guarantee a stale entry is never served — a mutation changes
	// the key instead of racing an invalidation walk.
	gen atomic.Uint64

	size int
}

// dupSetThreshold is the SPO bucket size above which duplicate detection
// switches from a linear slice scan to a set probe.
const dupSetThreshold = 16

// NewGraph returns an empty graph with a fresh dictionary.
func NewGraph() *Graph {
	return &Graph{
		dict: NewDict(),
		spo:  make(map[ID]map[ID][]ID),
		pos:  make(map[ID]map[ID][]ID),
		osp:  make(map[ID]map[ID][]ID),
	}
}

// Dict exposes the graph's term dictionary. Callers must treat it as
// read-only; interning new terms is done through Add.
func (g *Graph) Dict() *Dict { return g.dict }

// Len reports the number of distinct triples in the graph.
func (g *Graph) Len() int { return g.size }

// Generation returns the graph's monotonic data generation: 0 for an empty
// graph, bumped once per successful insertion (duplicates don't count — the
// triple set is unchanged). Safe for concurrent readers; a stable value
// across a read means the read saw one consistent triple set.
func (g *Graph) Generation() uint64 { return g.gen.Load() }

// Add inserts the triple (s, p, o). Duplicate triples are ignored.
// It reports whether the triple was newly inserted.
func (g *Graph) Add(s, p, o Term) bool {
	return g.AddIDs(g.dict.Intern(s), g.dict.Intern(p), g.dict.Intern(o))
}

// AddTriple inserts t. Duplicate triples are ignored.
func (g *Graph) AddTriple(t Triple) bool { return g.Add(t.S, t.P, t.O) }

// AddIDs inserts a triple given already-interned IDs. It reports whether the
// triple was newly inserted.
func (g *Graph) AddIDs(s, p, o ID) bool {
	g.invalidateAccel()
	ps := g.spo[s]
	if ps == nil {
		ps = make(map[ID][]ID)
		g.spo[s] = ps
	}
	objs := ps[p]
	if set, ok := g.spoSets[[2]ID{s, p}]; ok {
		if _, dup := set[o]; dup {
			return false
		}
		set[o] = struct{}{}
	} else {
		for _, existing := range objs {
			if existing == o {
				return false
			}
		}
		if len(objs)+1 > dupSetThreshold {
			set := make(map[ID]struct{}, 2*len(objs))
			for _, existing := range objs {
				set[existing] = struct{}{}
			}
			set[o] = struct{}{}
			if g.spoSets == nil {
				g.spoSets = make(map[[2]ID]map[ID]struct{})
			}
			g.spoSets[[2]ID{s, p}] = set
		}
	}
	ps[p] = append(objs, o)

	op := g.pos[p]
	if op == nil {
		op = make(map[ID][]ID)
		g.pos[p] = op
	}
	op[o] = append(op[o], s)

	so := g.osp[o]
	if so == nil {
		so = make(map[ID][]ID)
		g.osp[o] = so
	}
	so[s] = append(so[s], p)

	g.size++
	g.gen.Add(1)
	return true
}

// Has reports whether the triple (s, p, o) is in the graph.
func (g *Graph) Has(s, p, o Term) bool {
	sid, pid, oid := g.dict.Lookup(s), g.dict.Lookup(p), g.dict.Lookup(o)
	if sid == NoID || pid == NoID || oid == NoID {
		return false
	}
	return g.HasIDs(sid, pid, oid)
}

// HasIDs reports whether the fully bound triple is in the graph.
func (g *Graph) HasIDs(s, p, o ID) bool {
	if set, ok := g.spoSets[[2]ID{s, p}]; ok {
		_, present := set[o]
		return present
	}
	for _, existing := range g.spo[s][p] {
		if existing == o {
			return true
		}
	}
	return false
}

// Match calls fn for every triple matching the pattern, where NoID in any
// position acts as a wildcard. Iteration stops early when fn returns false.
// The iteration order is unspecified.
func (g *Graph) Match(s, p, o ID, fn func(s, p, o ID) bool) {
	switch {
	case s != NoID && p != NoID && o != NoID:
		if g.HasIDs(s, p, o) {
			fn(s, p, o)
		}
	case s != NoID && p != NoID:
		for _, obj := range g.spo[s][p] {
			if !fn(s, p, obj) {
				return
			}
		}
	case s != NoID && o != NoID:
		for _, pred := range g.osp[o][s] {
			if !fn(s, pred, o) {
				return
			}
		}
	case p != NoID && o != NoID:
		for _, subj := range g.pos[p][o] {
			if !fn(subj, p, o) {
				return
			}
		}
	case s != NoID:
		for pred, objs := range g.spo[s] {
			for _, obj := range objs {
				if !fn(s, pred, obj) {
					return
				}
			}
		}
	case p != NoID:
		for obj, subjs := range g.pos[p] {
			for _, subj := range subjs {
				if !fn(subj, p, obj) {
					return
				}
			}
		}
	case o != NoID:
		for subj, preds := range g.osp[o] {
			for _, pred := range preds {
				if !fn(subj, pred, o) {
					return
				}
			}
		}
	default:
		for subj, ps := range g.spo {
			for pred, objs := range ps {
				for _, obj := range objs {
					if !fn(subj, pred, obj) {
						return
					}
				}
			}
		}
	}
}

// Count estimates the number of triples matching the pattern (NoID =
// wildcard). For the (s,-,o) combination it returns an upper bound without
// enumerating; all other combinations are exact and O(1) or O(index bucket).
func (g *Graph) Count(s, p, o ID) int {
	switch {
	case s != NoID && p != NoID && o != NoID:
		if g.HasIDs(s, p, o) {
			return 1
		}
		return 0
	case s != NoID && p != NoID:
		return len(g.spo[s][p])
	case p != NoID && o != NoID:
		return len(g.pos[p][o])
	case s != NoID && o != NoID:
		return len(g.osp[o][s])
	case s != NoID:
		n := 0
		for _, objs := range g.spo[s] {
			n += len(objs)
		}
		return n
	case p != NoID:
		n := 0
		for _, subjs := range g.pos[p] {
			n += len(subjs)
		}
		return n
	case o != NoID:
		n := 0
		for _, preds := range g.osp[o] {
			n += len(preds)
		}
		return n
	default:
		return g.size
	}
}

// MatchScan is a deliberately unindexed full-scan matcher with the same
// contract as Match. It exists only for the index ablation benchmark.
func (g *Graph) MatchScan(s, p, o ID, fn func(s, p, o ID) bool) {
	for subj, ps := range g.spo {
		if s != NoID && subj != s {
			continue
		}
		for pred, objs := range ps {
			if p != NoID && pred != p {
				continue
			}
			for _, obj := range objs {
				if o != NoID && obj != o {
					continue
				}
				if !fn(subj, pred, obj) {
					return
				}
			}
		}
	}
}

// Triples materializes every triple in the graph. Intended for tests and
// serialization, not for matching.
func (g *Graph) Triples() []Triple {
	out := make([]Triple, 0, g.size)
	g.Match(NoID, NoID, NoID, func(s, p, o ID) bool {
		out = append(out, Triple{g.dict.Term(s), g.dict.Term(p), g.dict.Term(o)})
		return true
	})
	return out
}

// Subjects returns the distinct subjects carrying predicate p with object o
// (either may be NoID as wildcard), as terms. Convenience for tests.
func (g *Graph) Subjects(p, o Term) []Term {
	pid := g.dict.Lookup(p)
	var oid ID
	if !o.Zero() {
		oid = g.dict.Lookup(o)
		if oid == NoID {
			return nil
		}
	}
	if pid == NoID {
		return nil
	}
	seen := make(map[ID]bool)
	var out []Term
	g.Match(NoID, pid, oid, func(s, _, _ ID) bool {
		if !seen[s] {
			seen[s] = true
			out = append(out, g.dict.Term(s))
		}
		return true
	})
	return out
}

// Objects returns the objects of (s, p) as terms. Convenience accessor used
// by the de-transformer and tests.
func (g *Graph) Objects(s, p Term) []Term {
	sid, pid := g.dict.Lookup(s), g.dict.Lookup(p)
	if sid == NoID || pid == NoID {
		return nil
	}
	objs := g.spo[sid][pid]
	out := make([]Term, len(objs))
	for i, o := range objs {
		out[i] = g.dict.Term(o)
	}
	return out
}

// FirstObject returns the single object of (s, p), or a zero Term when the
// edge is absent.
func (g *Graph) FirstObject(s, p Term) Term {
	objs := g.Objects(s, p)
	if len(objs) == 0 {
		return Term{}
	}
	return objs[0]
}
