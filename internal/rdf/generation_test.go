package rdf

import "testing"

// The data generation must advance exactly once per real insertion —
// duplicates leave the triple set, and therefore the generation, unchanged.
func TestGraphGeneration(t *testing.T) {
	g := NewGraph()
	if g.Generation() != 0 {
		t.Fatalf("fresh graph generation = %d", g.Generation())
	}
	s, p, o := IRI("s"), IRI("p"), IRI("o")
	if !g.Add(s, p, o) {
		t.Fatal("Add reported duplicate on empty graph")
	}
	if g.Generation() != 1 {
		t.Fatalf("generation after insert = %d, want 1", g.Generation())
	}
	if g.Add(s, p, o) {
		t.Fatal("duplicate insert reported as new")
	}
	if g.Generation() != 1 {
		t.Fatalf("duplicate insert moved the generation to %d", g.Generation())
	}
	g.Add(s, p, IRI("o2"))
	if g.Generation() != 2 {
		t.Fatalf("generation after second insert = %d, want 2", g.Generation())
	}
}
