package rdf

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func testGraph() *Graph {
	g := NewGraph()
	g.Add(IRI("pop2"), IRI("hasPopType"), String("NLJOIN"))
	g.Add(IRI("pop3"), IRI("hasPopType"), String("FETCH"))
	g.Add(IRI("pop5"), IRI("hasPopType"), String("TBSCAN"))
	g.Add(IRI("pop5"), IRI("hasEstimateCardinality"), TypedLiteral("4043.0", XSDDouble))
	g.Add(IRI("pop2"), IRI("hasOuterInputStream"), IRI("stream1"))
	g.Add(IRI("stream1"), IRI("hasOuterInputStream"), IRI("pop3"))
	g.Add(IRI("pop2"), IRI("hasInnerInputStream"), IRI("stream2"))
	g.Add(IRI("stream2"), IRI("hasInnerInputStream"), IRI("pop5"))
	return g
}

func TestGraphAddAndLen(t *testing.T) {
	g := testGraph()
	if g.Len() != 8 {
		t.Fatalf("Len = %d, want 8", g.Len())
	}
	// Duplicate insert is a no-op.
	if g.Add(IRI("pop2"), IRI("hasPopType"), String("NLJOIN")) {
		t.Error("duplicate Add reported inserted")
	}
	if g.Len() != 8 {
		t.Errorf("Len after duplicate = %d, want 8", g.Len())
	}
	if !g.Add(IRI("pop2"), IRI("hasPopType"), String("HSJOIN")) {
		t.Error("fresh Add reported not-inserted")
	}
}

func TestGraphHas(t *testing.T) {
	g := testGraph()
	if !g.Has(IRI("pop5"), IRI("hasPopType"), String("TBSCAN")) {
		t.Error("expected triple missing")
	}
	if g.Has(IRI("pop5"), IRI("hasPopType"), String("IXSCAN")) {
		t.Error("unexpected triple present")
	}
	if g.Has(IRI("nope"), IRI("hasPopType"), String("TBSCAN")) {
		t.Error("unknown subject matched")
	}
}

func collectMatches(g *Graph, s, p, o ID) []Triple {
	var out []Triple
	g.Match(s, p, o, func(s, p, o ID) bool {
		out = append(out, Triple{g.dict.Term(s), g.dict.Term(p), g.dict.Term(o)})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

func TestGraphMatchAllCombinations(t *testing.T) {
	g := testGraph()
	d := g.Dict()
	pop2 := d.Lookup(IRI("pop2"))
	hasType := d.Lookup(IRI("hasPopType"))
	nljoin := d.Lookup(String("NLJOIN"))

	// (s p o) fully bound
	if got := collectMatches(g, pop2, hasType, nljoin); len(got) != 1 {
		t.Errorf("(s,p,o): got %d matches, want 1", len(got))
	}
	// (s p -)
	if got := collectMatches(g, pop2, hasType, NoID); len(got) != 1 {
		t.Errorf("(s,p,-): got %d matches, want 1", len(got))
	}
	// (- p o)
	if got := collectMatches(g, NoID, hasType, nljoin); len(got) != 1 {
		t.Errorf("(-,p,o): got %d matches, want 1", len(got))
	}
	// (- p -) : 3 pops have a type
	if got := collectMatches(g, NoID, hasType, NoID); len(got) != 3 {
		t.Errorf("(-,p,-): got %d matches, want 3", len(got))
	}
	// (s - -) : pop2 has 3 triples
	if got := collectMatches(g, pop2, NoID, NoID); len(got) != 3 {
		t.Errorf("(s,-,-): got %d matches, want 3", len(got))
	}
	// (- - o)
	if got := collectMatches(g, NoID, NoID, nljoin); len(got) != 1 {
		t.Errorf("(-,-,o): got %d matches, want 1", len(got))
	}
	// (s - o)
	if got := collectMatches(g, pop2, NoID, nljoin); len(got) != 1 {
		t.Errorf("(s,-,o): got %d matches, want 1", len(got))
	}
	// (- - -)
	if got := collectMatches(g, NoID, NoID, NoID); len(got) != g.Len() {
		t.Errorf("(-,-,-): got %d matches, want %d", len(got), g.Len())
	}
}

func TestGraphMatchEarlyStop(t *testing.T) {
	g := testGraph()
	calls := 0
	g.Match(NoID, NoID, NoID, func(_, _, _ ID) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("early stop: %d calls, want 3", calls)
	}
}

func TestGraphCountMatchesEnumeration(t *testing.T) {
	g := testGraph()
	d := g.Dict()
	patterns := [][3]ID{
		{NoID, NoID, NoID},
		{d.Lookup(IRI("pop2")), NoID, NoID},
		{NoID, d.Lookup(IRI("hasPopType")), NoID},
		{NoID, NoID, d.Lookup(String("NLJOIN"))},
		{d.Lookup(IRI("pop2")), d.Lookup(IRI("hasPopType")), NoID},
		{NoID, d.Lookup(IRI("hasPopType")), d.Lookup(String("NLJOIN"))},
		{d.Lookup(IRI("pop2")), d.Lookup(IRI("hasPopType")), d.Lookup(String("NLJOIN"))},
	}
	for _, p := range patterns {
		want := len(collectMatches(g, p[0], p[1], p[2]))
		if got := g.Count(p[0], p[1], p[2]); got != want {
			t.Errorf("Count(%v) = %d, enumeration = %d", p, got, want)
		}
	}
}

func TestGraphMatchScanAgreesWithMatch(t *testing.T) {
	g := testGraph()
	d := g.Dict()
	pop2 := d.Lookup(IRI("pop2"))
	want := collectMatches(g, pop2, NoID, NoID)
	var got []Triple
	g.MatchScan(pop2, NoID, NoID, func(s, p, o ID) bool {
		got = append(got, Triple{g.dict.Term(s), g.dict.Term(p), g.dict.Term(o)})
		return true
	})
	sort.Slice(got, func(i, j int) bool { return got[i].String() < got[j].String() })
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MatchScan = %v, Match = %v", got, want)
	}
}

func TestGraphObjectsAndSubjects(t *testing.T) {
	g := testGraph()
	objs := g.Objects(IRI("pop2"), IRI("hasPopType"))
	if len(objs) != 1 || objs[0].Value != "NLJOIN" {
		t.Errorf("Objects = %v", objs)
	}
	subs := g.Subjects(IRI("hasPopType"), String("TBSCAN"))
	if len(subs) != 1 || subs[0].Value != "pop5" {
		t.Errorf("Subjects = %v", subs)
	}
	if got := g.FirstObject(IRI("pop5"), IRI("hasEstimateCardinality")); got.Value != "4043.0" {
		t.Errorf("FirstObject = %v", got)
	}
	if got := g.FirstObject(IRI("pop5"), IRI("noSuchPred")); !got.Zero() {
		t.Errorf("FirstObject on absent edge = %v, want zero", got)
	}
	if g.Objects(IRI("ghost"), IRI("hasPopType")) != nil {
		t.Error("Objects on unknown subject should be nil")
	}
	if g.Subjects(IRI("ghost"), Term{}) != nil {
		t.Error("Subjects on unknown predicate should be nil")
	}
}

// randomTriples builds a reproducible random triple set for property tests.
func randomTriples(seed int64, n int) []Triple {
	rng := rand.New(rand.NewSource(seed))
	subjects := []Term{IRI("a"), IRI("b"), IRI("c"), Blank("x")}
	preds := []Term{IRI("p"), IRI("q"), IRI("r")}
	objects := []Term{IRI("a"), String("lit1"), Float(1), Float(2), Blank("y")}
	ts := make([]Triple, n)
	for i := range ts {
		ts[i] = Triple{
			S: subjects[rng.Intn(len(subjects))],
			P: preds[rng.Intn(len(preds))],
			O: objects[rng.Intn(len(objects))],
		}
	}
	return ts
}

// Property: for any insertion set and any pattern, Match and MatchScan agree,
// and Count equals the number of Match callbacks.
func TestGraphMatchScanCountAgreementProperty(t *testing.T) {
	check := func(seed int64, nRaw uint8, sBound, pBound, oBound bool) bool {
		n := int(nRaw%50) + 1
		g := NewGraph()
		ts := randomTriples(seed, n)
		for _, tr := range ts {
			g.AddTriple(tr)
		}
		// Pick a pattern from the first triple's IDs.
		d := g.Dict()
		var s, p, o ID
		if sBound {
			s = d.Lookup(ts[0].S)
		}
		if pBound {
			p = d.Lookup(ts[0].P)
		}
		if oBound {
			o = d.Lookup(ts[0].O)
		}
		a := collectMatches(g, s, p, o)
		var b []Triple
		g.MatchScan(s, p, o, func(s, p, o ID) bool {
			b = append(b, Triple{d.Term(s), d.Term(p), d.Term(o)})
			return true
		})
		sort.Slice(b, func(i, j int) bool { return b[i].String() < b[j].String() })
		if !reflect.DeepEqual(a, b) {
			return false
		}
		return g.Count(s, p, o) == len(a)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: inserting the same triples in any order yields identical graphs
// (same triple set, same Len).
func TestGraphInsertionOrderIndependenceProperty(t *testing.T) {
	check := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		ts := randomTriples(seed, n)
		g1 := NewGraph()
		for _, tr := range ts {
			g1.AddTriple(tr)
		}
		g2 := NewGraph()
		for i := len(ts) - 1; i >= 0; i-- {
			g2.AddTriple(ts[i])
		}
		if g1.Len() != g2.Len() {
			return false
		}
		a, b := g1.Triples(), g2.Triples()
		sort.Slice(a, func(i, j int) bool { return a[i].String() < a[j].String() })
		sort.Slice(b, func(i, j int) bool { return b[i].String() < b[j].String() })
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.Intern(IRI("a"))
	b := d.Intern(IRI("b"))
	if a == NoID || b == NoID || a == b {
		t.Fatalf("bad ids: %d %d", a, b)
	}
	if d.Intern(IRI("a")) != a {
		t.Error("re-intern returned different id")
	}
	if d.Lookup(IRI("a")) != a {
		t.Error("Lookup mismatch")
	}
	if d.Lookup(IRI("zzz")) != NoID {
		t.Error("Lookup of unknown term should be NoID")
	}
	if d.Term(a) != IRI("a") {
		t.Error("Term() mismatch")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}
