package rdf

import (
	"sync"
	"sync/atomic"
)

// This file implements the graph's path-acceleration snapshots: per-predicate
// CSR (compressed sparse row) adjacency arrays and a cached distinct-node
// list. Both exploit the engine's central invariant — plan graphs are
// immutable after load — so each snapshot is built at most once per graph and
// then shared, lock-free, by every concurrent reader. A mutation through Add
// after a snapshot was built invalidates all snapshots; the next reader
// rebuilds them against the new state.

// CSR is an immutable compressed-sparse-row adjacency snapshot for a single
// predicate: forward (subject -> objects) and reverse (object -> subjects)
// edge arrays indexed by dense term ID. A closure BFS walks these flat
// slices instead of stepping through Match callbacks over the index maps.
//
// Neighbor lists preserve the insertion order Match iterates for the same
// (s, p, ·) / (·, p, o) probes, so a BFS over the snapshot discovers nodes
// in exactly the order a Match-driven walk would — result rows stay
// byte-identical with and without the snapshot.
type CSR struct {
	fwdOff []uint32
	fwd    []ID
	revOff []uint32
	rev    []ID
	edges  int
}

// Out returns the objects reachable from subject s over the snapshot's
// predicate, in insertion order. The slice is shared and must not be
// mutated.
func (c *CSR) Out(s ID) []ID {
	if int(s) >= len(c.fwdOff)-1 {
		return nil
	}
	return c.fwd[c.fwdOff[s]:c.fwdOff[s+1]]
}

// In returns the subjects pointing at object o over the snapshot's
// predicate, in insertion order. The slice is shared and must not be
// mutated.
func (c *CSR) In(o ID) []ID {
	if int(o) >= len(c.revOff)-1 {
		return nil
	}
	return c.rev[c.revOff[o]:c.revOff[o+1]]
}

// Edges reports the number of triples the snapshot covers.
func (c *CSR) Edges() int { return c.edges }

// Bytes reports the snapshot's memory footprint (offset and edge arrays).
func (c *CSR) Bytes() int {
	return 4 * (len(c.fwdOff) + len(c.fwd) + len(c.revOff) + len(c.rev))
}

// accel holds a graph's lazily built acceleration snapshots. The maps and
// slices behind the atomic pointers are immutable once published; builders
// serialize on mu and publish copy-on-write.
type accel struct {
	mu    sync.Mutex
	csr   atomic.Pointer[map[ID]*CSR]
	nodes atomic.Pointer[[]ID]
}

// accel returns the graph's snapshot container, creating it on first use.
func (g *Graph) accel() *accel {
	if a := g.acc.Load(); a != nil {
		return a
	}
	a := &accel{}
	empty := map[ID]*CSR{}
	a.csr.Store(&empty)
	if g.acc.CompareAndSwap(nil, a) {
		return a
	}
	return g.acc.Load()
}

// invalidateAccel drops every cached snapshot. Called by Add, which by the
// graph's contract never runs concurrently with readers.
func (g *Graph) invalidateAccel() {
	if g.acc.Load() != nil {
		g.acc.Store(nil)
	}
}

// MaxID returns the largest dense term ID the graph's dictionary has issued.
// Valid IDs are 1..MaxID; bitsets and CSR offset arrays are sized off it.
func (g *Graph) MaxID() ID { return ID(g.dict.Len()) }

// NodeIDs returns every distinct term ID used as a subject or an object, in
// ascending ID (= first-interned) order. The list is built once per graph
// and cached; callers must treat it as read-only. Zero-length property paths
// and unanchored closures enumerate it instead of rescanning every triple.
func (g *Graph) NodeIDs() []ID {
	a := g.accel()
	if ns := a.nodes.Load(); ns != nil {
		return *ns
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if ns := a.nodes.Load(); ns != nil {
		return *ns
	}
	max := g.MaxID()
	out := make([]ID, 0, max)
	for id := ID(1); id <= max; id++ {
		if _, ok := g.spo[id]; ok {
			out = append(out, id)
			continue
		}
		if _, ok := g.osp[id]; ok {
			out = append(out, id)
		}
	}
	a.nodes.Store(&out)
	return out
}

// PredCSR returns the CSR adjacency snapshot for predicate p, building and
// caching it on first use. The bool reports whether this call built the
// snapshot (false: served from cache). Safe for concurrent use.
func (g *Graph) PredCSR(p ID) (*CSR, bool) {
	a := g.accel()
	if m := a.csr.Load(); m != nil {
		if c, ok := (*m)[p]; ok {
			return c, false
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	old := a.csr.Load()
	if c, ok := (*old)[p]; ok {
		return c, false
	}
	c := g.buildCSR(p)
	next := make(map[ID]*CSR, len(*old)+1)
	for k, v := range *old {
		next[k] = v
	}
	next[p] = c
	a.csr.Store(&next)
	return c, true
}

// buildCSR assembles the forward and reverse adjacency arrays for predicate
// p. Two passes per direction: count degrees, prefix-sum into offsets, fill.
// Iterating subjects and objects in ascending dense-ID order keeps the build
// deterministic and each neighbor list in the index's insertion order.
func (g *Graph) buildCSR(p ID) *CSR {
	n := int(g.MaxID())
	c := &CSR{
		fwdOff: make([]uint32, n+2),
		revOff: make([]uint32, n+2),
	}
	for sid := ID(1); sid <= ID(n); sid++ {
		c.fwdOff[sid+1] = uint32(len(g.spo[sid][p]))
	}
	po := g.pos[p]
	for oid := ID(1); oid <= ID(n); oid++ {
		c.revOff[oid+1] = uint32(len(po[oid]))
	}
	for i := 1; i < len(c.fwdOff); i++ {
		c.fwdOff[i] += c.fwdOff[i-1]
		c.revOff[i] += c.revOff[i-1]
	}
	c.edges = int(c.fwdOff[n+1])
	c.fwd = make([]ID, c.edges)
	c.rev = make([]ID, c.revOff[n+1])
	for sid := ID(1); sid <= ID(n); sid++ {
		copy(c.fwd[c.fwdOff[sid]:], g.spo[sid][p])
	}
	for oid := ID(1); oid <= ID(n); oid++ {
		copy(c.rev[c.revOff[oid]:], po[oid])
	}
	return c
}
