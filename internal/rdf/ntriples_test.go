package rdf

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestNTriplesRoundTrip(t *testing.T) {
	g := testGraph()
	g.Add(IRI("pop5"), IRI("hasComment"), String("has \"quotes\" and\nnewline"))

	var buf bytes.Buffer
	if err := WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != g.Len() {
		t.Fatalf("round trip Len = %d, want %d", g2.Len(), g.Len())
	}
	a, b := g.Triples(), g2.Triples()
	sort.Slice(a, func(i, j int) bool { return a[i].String() < a[j].String() })
	sort.Slice(b, func(i, j int) bool { return b[i].String() < b[j].String() })
	if !reflect.DeepEqual(a, b) {
		t.Errorf("round trip mismatch:\n%v\nvs\n%v", a, b)
	}
}

func TestWriteNTriplesDeterministic(t *testing.T) {
	g := testGraph()
	var b1, b2 bytes.Buffer
	if err := WriteNTriples(&b1, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteNTriples(&b2, g); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("output not deterministic")
	}
	lines := strings.Split(strings.TrimSpace(b1.String()), "\n")
	if !sort.StringsAreSorted(lines) {
		t.Error("output not sorted")
	}
}

func TestParseNTriplesSkipsCommentsAndBlanks(t *testing.T) {
	in := `
# a comment
<s> <p> "o" .

<s> <p> <o2> .
`
	g, err := ParseNTriples(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Errorf("Len = %d, want 2", g.Len())
	}
}

func TestParseNTriplesBlankNodesAndDatatypes(t *testing.T) {
	in := `_:b1 <p> "4043.0"^^<` + XSDDouble + `> .`
	g, err := ParseNTriples(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	ts := g.Triples()
	if len(ts) != 1 {
		t.Fatalf("got %d triples", len(ts))
	}
	if !ts[0].S.IsBlank() || ts[0].S.Value != "b1" {
		t.Errorf("subject = %v", ts[0].S)
	}
	if ts[0].O.Datatype != XSDDouble || ts[0].O.Value != "4043.0" {
		t.Errorf("object = %v", ts[0].O)
	}
}

func TestParseNTriplesErrors(t *testing.T) {
	bad := []string{
		`<s> <p> "o"`,            // missing dot
		`<s> <p .`,               // unterminated IRI
		`<s> <p> "unterminated`,  // unterminated literal
		`<s> <p> "bad\escape" .`, // unknown escape
		`<s> <p> ? .`,            // junk term
		`_:b <p>`,                // missing object
		`<s> _x <o> .`,           // malformed blank predicate
		`<s> <p> "x"^^<dt .`,     // unterminated datatype
	}
	for _, in := range bad {
		if _, err := ParseNTriples(strings.NewReader(in)); err == nil {
			t.Errorf("ParseNTriples(%q): expected error", in)
		}
	}
}

func TestParseNTriplesEscapes(t *testing.T) {
	in := `<s> <p> "a\"b\\c\nd\te\rf" .`
	g, err := ParseNTriples(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	got := g.Triples()[0].O.Value
	want := "a\"b\\c\nd\te\rf"
	if got != want {
		t.Errorf("unescaped = %q, want %q", got, want)
	}
}
