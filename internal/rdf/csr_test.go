package rdf

import (
	"math/rand"
	"reflect"
	"testing"
)

// csrOutViaMatch collects Match's (s, p, ?) objects in emission order.
func csrOutViaMatch(g *Graph, s, p ID) []ID {
	var out []ID
	g.Match(s, p, NoID, func(_, _, o ID) bool {
		out = append(out, o)
		return true
	})
	return out
}

// csrInViaMatch collects Match's (?, p, o) subjects in emission order.
func csrInViaMatch(g *Graph, p, o ID) []ID {
	var out []ID
	g.Match(NoID, p, o, func(s, _, _ ID) bool {
		out = append(out, s)
		return true
	})
	return out
}

// Property: for every node and predicate, the CSR snapshot returns exactly
// the neighbor lists Match emits, in the same order. Order equality is the
// load-bearing part — the path evaluator relies on it for byte-identical
// results with and without the snapshot.
func TestPredCSRAgreesWithMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewGraph()
	preds := []Term{IRI("p"), IRI("q"), IRI("r")}
	for i := 0; i < 400; i++ {
		s := IRI(string(rune('a' + rng.Intn(26))))
		o := IRI(string(rune('a' + rng.Intn(26))))
		g.Add(s, preds[rng.Intn(len(preds))], o)
	}
	d := g.Dict()
	for _, pt := range preds {
		p := d.Lookup(pt)
		c, built := g.PredCSR(p)
		if !built {
			t.Errorf("PredCSR(%v) first call should report built", pt)
		}
		if _, again := g.PredCSR(p); again {
			t.Errorf("PredCSR(%v) second call should hit the cache", pt)
		}
		if c.Edges() != g.Count(NoID, p, NoID) {
			t.Errorf("Edges() = %d, Count = %d", c.Edges(), g.Count(NoID, p, NoID))
		}
		if c.Bytes() <= 0 {
			t.Errorf("Bytes() = %d, want > 0", c.Bytes())
		}
		for id := ID(1); id <= g.MaxID()+2; id++ {
			if got, want := c.Out(id), csrOutViaMatch(g, id, p); !sameIDs(got, want) {
				t.Fatalf("Out(%d) over %v = %v, Match = %v", id, pt, got, want)
			}
			if got, want := c.In(id), csrInViaMatch(g, p, id); !sameIDs(got, want) {
				t.Fatalf("In(%d) over %v = %v, Match = %v", id, pt, got, want)
			}
		}
	}
}

func sameIDs(a, b []ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PredCSR for a predicate with no triples must return an empty snapshot,
// including for a predicate ID the graph has never seen.
func TestPredCSREmptyPredicate(t *testing.T) {
	g := testGraph()
	unused := g.Dict().Intern(IRI("neverUsedAsPredicate"))
	for _, p := range []ID{unused, ID(9999)} {
		c, _ := g.PredCSR(p)
		if c.Edges() != 0 {
			t.Errorf("Edges for unused predicate %d = %d, want 0", p, c.Edges())
		}
		for id := ID(1); id <= g.MaxID(); id++ {
			if len(c.Out(id)) != 0 || len(c.In(id)) != 0 {
				t.Fatalf("unused predicate %d has neighbors at node %d", p, id)
			}
		}
	}
}

// NodeIDs must list every subject and object exactly once, in ascending ID
// order, and repeated calls must return the same cached slice.
func TestNodeIDs(t *testing.T) {
	g := testGraph()
	ids := g.NodeIDs()

	want := map[ID]bool{}
	g.Match(NoID, NoID, NoID, func(s, _, o ID) bool {
		want[s] = true
		want[o] = true
		return true
	})
	got := map[ID]bool{}
	for i, id := range ids {
		if got[id] {
			t.Errorf("NodeIDs has duplicate %d", id)
		}
		got[id] = true
		if i > 0 && ids[i-1] >= id {
			t.Errorf("NodeIDs not ascending at %d: %d >= %d", i, ids[i-1], id)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NodeIDs = %v, want keys %v", got, want)
	}

	again := g.NodeIDs()
	if len(again) != len(ids) || (len(ids) > 0 && &again[0] != &ids[0]) {
		t.Error("second NodeIDs call did not return the cached slice")
	}
}

// Mutating the graph after snapshots were built must invalidate them: the
// next NodeIDs/PredCSR call reflects the post-Add state.
func TestAddInvalidatesAccel(t *testing.T) {
	g := testGraph()
	d := g.Dict()
	p := d.Lookup(IRI("hasOuterInputStream"))

	before := g.NodeIDs()
	c, _ := g.PredCSR(p)
	pop2 := d.Lookup(IRI("pop2"))
	outBefore := len(c.Out(pop2))

	g.Add(IRI("pop2"), IRI("hasOuterInputStream"), IRI("brandNewNode"))

	c2, built := g.PredCSR(p)
	if !built {
		t.Error("PredCSR after Add should rebuild, not serve the stale snapshot")
	}
	if got := len(c2.Out(pop2)); got != outBefore+1 {
		t.Errorf("rebuilt Out(pop2) has %d edges, want %d", got, outBefore+1)
	}

	after := g.NodeIDs()
	if len(after) != len(before)+1 {
		t.Errorf("NodeIDs after Add has %d entries, want %d", len(after), len(before)+1)
	}
	fresh := d.Lookup(IRI("brandNewNode"))
	found := false
	for _, id := range after {
		if id == fresh {
			found = true
		}
	}
	if !found {
		t.Error("NodeIDs after Add is missing the new node")
	}

	// The old snapshot must stay internally consistent (immutable), just stale.
	if got := len(c.Out(pop2)); got != outBefore {
		t.Errorf("stale snapshot mutated: Out(pop2) = %d, want %d", got, outBefore)
	}
}

// Concurrent first-use builds must agree and race-free (run with -race).
func TestPredCSRConcurrentBuild(t *testing.T) {
	g := testGraph()
	p := g.Dict().Lookup(IRI("hasPopType"))
	results := make(chan *CSR, 8)
	for i := 0; i < 8; i++ {
		go func() {
			c, _ := g.PredCSR(p)
			g.NodeIDs()
			results <- c
		}()
	}
	first := <-results
	for i := 1; i < 8; i++ {
		if c := <-results; c != first {
			t.Fatal("concurrent PredCSR calls returned distinct snapshots")
		}
	}
}
