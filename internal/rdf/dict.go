package rdf

// ID is a dense dictionary identifier for an interned term. IDs start at 1;
// 0 is reserved as "no term".
type ID uint32

// NoID is the zero ID, never assigned to a term.
const NoID ID = 0

// Dict interns Terms to dense IDs and back. It is not safe for concurrent
// mutation; the Graph serializes access to it.
type Dict struct {
	byTerm map[Term]ID
	byID   []Term // byID[0] is the invalid zero term
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{
		byTerm: make(map[Term]ID),
		byID:   make([]Term, 1),
	}
}

// Intern returns the ID for t, assigning a fresh one if t was never seen.
func (d *Dict) Intern(t Term) ID {
	if id, ok := d.byTerm[t]; ok {
		return id
	}
	id := ID(len(d.byID))
	d.byTerm[t] = id
	d.byID = append(d.byID, t)
	return id
}

// Lookup returns the ID previously assigned to t, or NoID if t was never
// interned.
func (d *Dict) Lookup(t Term) ID {
	return d.byTerm[t]
}

// Term returns the term for id. It panics on an ID the dictionary never
// issued, which always indicates a programming error in the caller.
func (d *Dict) Term(id ID) Term {
	return d.byID[id]
}

// Len reports the number of interned terms.
func (d *Dict) Len() int { return len(d.byID) - 1 }
