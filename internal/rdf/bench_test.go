package rdf

import (
	"fmt"
	"testing"
)

func buildBenchGraph(n int) *Graph {
	g := NewGraph()
	typePred := IRI("urn:hasPopType")
	costPred := IRI("urn:hasTotalCost")
	childPred := IRI("urn:hasChildPop")
	types := []Term{String("TBSCAN"), String("NLJOIN"), String("SORT"), String("FETCH")}
	for i := 0; i < n; i++ {
		node := IRI(fmt.Sprintf("urn:pop/%d", i))
		g.Add(node, typePred, types[i%len(types)])
		g.Add(node, costPred, Float(float64(i)*1.7))
		if i > 0 {
			g.Add(IRI(fmt.Sprintf("urn:pop/%d", i/2)), childPred, node)
		}
	}
	return g
}

// BenchmarkGraphAdd measures dictionary-encoded triple insertion.
func BenchmarkGraphAdd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buildBenchGraph(500)
	}
}

// BenchmarkGraphMatchBoundPO measures the hot index lookup the matcher
// issues constantly: predicate and object bound, subject free.
func BenchmarkGraphMatchBoundPO(b *testing.B) {
	g := buildBenchGraph(2000)
	d := g.Dict()
	pid := d.Lookup(IRI("urn:hasPopType"))
	oid := d.Lookup(String("NLJOIN"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		g.Match(NoID, pid, oid, func(_, _, _ ID) bool { count++; return true })
		if count == 0 {
			b.Fatal("no matches")
		}
	}
}
