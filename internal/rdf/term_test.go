package rdf

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	tests := []struct {
		name string
		term Term
		kind Kind
		str  string
	}{
		{"iri", IRI("http://optimatch/pop/5"), IRIKind, "<http://optimatch/pop/5>"},
		{"blank", Blank("b1"), BlankKind, "_:b1"},
		{"string", String("NLJOIN"), LiteralKind, `"NLJOIN"`},
		{"float", Float(15771), LiteralKind, `"15771"^^<` + XSDDouble + ">"},
		{"int", Int(42), LiteralKind, `"42"^^<` + XSDInteger + ">"},
		{"boolTrue", Bool(true), LiteralKind, `"true"^^<` + XSDBoolean + ">"},
		{"typed", TypedLiteral("4043.0", XSDDouble), LiteralKind, `"4043.0"^^<` + XSDDouble + ">"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.term.Kind != tt.kind {
				t.Errorf("kind = %v, want %v", tt.term.Kind, tt.kind)
			}
			if got := tt.term.String(); got != tt.str {
				t.Errorf("String() = %q, want %q", got, tt.str)
			}
		})
	}
}

func TestTermKindPredicates(t *testing.T) {
	if !IRI("x").IsIRI() || IRI("x").IsBlank() || IRI("x").IsLiteral() {
		t.Error("IRI kind predicates wrong")
	}
	if !Blank("b").IsBlank() || Blank("b").IsIRI() {
		t.Error("blank kind predicates wrong")
	}
	if !String("s").IsLiteral() || String("s").IsBlank() {
		t.Error("literal kind predicates wrong")
	}
	var zero Term
	if !zero.Zero() || IRI("x").Zero() {
		t.Error("Zero() wrong")
	}
}

func TestTermFloatParsesExplainFormats(t *testing.T) {
	// QEP files render numbers both in plain decimal and exponent form; both
	// must be comparable (this is exactly what defeats grep in the paper's
	// user study).
	tests := []struct {
		lex  string
		want float64
	}{
		{"4043.0", 4043},
		{"15771", 15771},
		{"1.0E+07", 1e7},
		{"1.311e-08", 1.311e-8},
		{"2.87997e+08", 2.87997e8},
		{"0.001", 0.001},
	}
	for _, tt := range tests {
		got, ok := String(tt.lex).Float()
		if !ok {
			t.Errorf("Float(%q) not numeric", tt.lex)
			continue
		}
		if math.Abs(got-tt.want) > math.Abs(tt.want)*1e-12 {
			t.Errorf("Float(%q) = %v, want %v", tt.lex, got, tt.want)
		}
	}
	if _, ok := String("NLJOIN").Float(); ok {
		t.Error("non-numeric literal reported numeric")
	}
	if _, ok := IRI("4043").Float(); ok {
		t.Error("IRI reported numeric")
	}
}

func TestTermBool(t *testing.T) {
	for _, lex := range []string{"true", "1"} {
		v, ok := String(lex).Bool()
		if !ok || !v {
			t.Errorf("Bool(%q) = %v, %v", lex, v, ok)
		}
	}
	for _, lex := range []string{"false", "0"} {
		v, ok := String(lex).Bool()
		if !ok || v {
			t.Errorf("Bool(%q) = %v, %v", lex, v, ok)
		}
	}
	if _, ok := String("maybe").Bool(); ok {
		t.Error("Bool accepted junk")
	}
}

func TestTermCompare(t *testing.T) {
	if IRI("a").Compare(Blank("a")) >= 0 {
		t.Error("IRI should sort before blank")
	}
	if Blank("a").Compare(String("a")) >= 0 {
		t.Error("blank should sort before literal")
	}
	if String("2").Compare(String("10")) >= 0 {
		t.Error("numeric literals should compare by value: 2 < 10")
	}
	if Float(10).Compare(TypedLiteral("1.0E+01", XSDDouble)) != 0 {
		t.Error("10 and 1.0E+01 should compare equal by value")
	}
	if String("abc").Compare(String("abd")) >= 0 {
		t.Error("string literal compare wrong")
	}
	if got := IRI("x").Compare(IRI("x")); got != 0 {
		t.Errorf("equal IRIs compare %d", got)
	}
}

func TestTermStringEscaping(t *testing.T) {
	term := String("line1\nline2\t\"quoted\"\\back")
	s := term.String()
	for _, want := range []string{`\n`, `\t`, `\"`, `\\`} {
		if !strings.Contains(s, want) {
			t.Errorf("escaped form %q missing %q", s, want)
		}
	}
}

func TestFloatRoundTripProperty(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		got, ok := Float(v).Float()
		return ok && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntRoundTripProperty(t *testing.T) {
	f := func(v int64) bool {
		got, ok := Int(v).Float()
		// float64 can't represent all int64 exactly; compare via the same
		// conversion.
		return ok && got == float64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTripleString(t *testing.T) {
	tr := Triple{IRI("s"), IRI("p"), String("o")}
	if got, want := tr.String(), `<s> <p> "o" .`; got != want {
		t.Errorf("Triple.String() = %q, want %q", got, want)
	}
}
