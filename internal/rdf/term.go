// Package rdf implements the RDF data model and an in-memory,
// dictionary-encoded triple store used by OptImatch to represent query
// execution plans as labeled directed graphs.
//
// A triple is (subject, predicate, object); subjects and predicates are IRIs
// or blank nodes, objects may additionally be literals. The store keeps three
// permutation indexes (SPO, POS, OSP) so that every bound/unbound combination
// of a triple pattern can be answered with at most one map traversal per
// bound position.
package rdf

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the three RDF term kinds.
type Kind uint8

// Term kinds.
const (
	IRIKind Kind = iota + 1
	BlankKind
	LiteralKind
)

// Common XSD datatype IRIs used by the transformer and the SPARQL evaluator.
const (
	XSDString  = "http://www.w3.org/2001/XMLSchema#string"
	XSDDouble  = "http://www.w3.org/2001/XMLSchema#double"
	XSDInteger = "http://www.w3.org/2001/XMLSchema#integer"
	XSDBoolean = "http://www.w3.org/2001/XMLSchema#boolean"
)

// Term is an RDF term: an IRI, a blank node, or a literal. The zero Term is
// invalid and reports Kind 0; use the constructors below.
//
// Terms are small value types and are compared with ==. For literals the
// comparison is syntactic (same lexical form and datatype); the SPARQL
// evaluator performs value-based comparison where the spec requires it.
type Term struct {
	Kind     Kind
	Value    string // IRI text, blank node label, or literal lexical form
	Datatype string // literal datatype IRI; empty means xsd:string
}

// IRI returns an IRI term.
func IRI(iri string) Term { return Term{Kind: IRIKind, Value: iri} }

// Blank returns a blank node term with the given label (without the "_:"
// prefix).
func Blank(label string) Term { return Term{Kind: BlankKind, Value: label} }

// String returns a plain string literal.
func String(s string) Term { return Term{Kind: LiteralKind, Value: s} }

// Float returns an xsd:double literal. The lexical form uses the shortest
// representation that round-trips.
func Float(f float64) Term {
	return Term{Kind: LiteralKind, Value: strconv.FormatFloat(f, 'g', -1, 64), Datatype: XSDDouble}
}

// Int returns an xsd:integer literal.
func Int(i int64) Term {
	return Term{Kind: LiteralKind, Value: strconv.FormatInt(i, 10), Datatype: XSDInteger}
}

// Bool returns an xsd:boolean literal.
func Bool(b bool) Term {
	return Term{Kind: LiteralKind, Value: strconv.FormatBool(b), Datatype: XSDBoolean}
}

// TypedLiteral returns a literal with an explicit datatype IRI.
func TypedLiteral(lex, datatype string) Term {
	return Term{Kind: LiteralKind, Value: lex, Datatype: datatype}
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRIKind }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == BlankKind }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == LiteralKind }

// Zero reports whether the term is the invalid zero value.
func (t Term) Zero() bool { return t.Kind == 0 }

// Float reports the numeric value of a literal term. It accepts any lexical
// form Go's strconv understands, which covers both the decimal ("15771.0")
// and exponent ("1.0E+07") renderings found in explain files. The second
// return value is false when the term is not a literal or not numeric.
func (t Term) Float() (float64, bool) {
	if t.Kind != LiteralKind {
		return 0, false
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(t.Value), 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// Bool reports the boolean value of an xsd:boolean literal.
func (t Term) Bool() (bool, bool) {
	if t.Kind != LiteralKind {
		return false, false
	}
	switch t.Value {
	case "true", "1":
		return true, true
	case "false", "0":
		return false, true
	}
	return false, false
}

// IsNumeric reports whether the literal parses as a number.
func (t Term) IsNumeric() bool {
	_, ok := t.Float()
	return ok
}

// String renders the term in N-Triples syntax: <iri>, _:label, or
// "lexical"^^<datatype>.
func (t Term) String() string {
	switch t.Kind {
	case IRIKind:
		return "<" + t.Value + ">"
	case BlankKind:
		return "_:" + t.Value
	case LiteralKind:
		q := quoteLiteral(t.Value)
		if t.Datatype == "" || t.Datatype == XSDString {
			return q
		}
		return q + "^^<" + t.Datatype + ">"
	default:
		return "<invalid term>"
	}
}

// Compare orders terms: IRIs before blanks before literals; within a kind,
// lexicographically by value (numeric literals compare by value when both
// sides are numeric). It returns -1, 0 or +1.
func (t Term) Compare(o Term) int {
	if t.Kind != o.Kind {
		if t.Kind < o.Kind {
			return -1
		}
		return 1
	}
	if t.Kind == LiteralKind {
		if a, ok := t.Float(); ok {
			if b, ok2 := o.Float(); ok2 {
				switch {
				case a < b:
					return -1
				case a > b:
					return 1
				default:
					return 0
				}
			}
		}
	}
	return strings.Compare(t.Value, o.Value)
}

func quoteLiteral(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Triple is a single RDF statement.
type Triple struct {
	S, P, O Term
}

// String renders the triple as one N-Triples line (without the newline).
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.S, t.P, t.O)
}
