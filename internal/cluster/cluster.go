// Package cluster implements the cost-based workload clustering the paper's
// introduction calls for ("Perform cost based clustering and correlate
// results of applying expert patterns to each cluster", Section 1.1): plans
// are embedded into a small feature space (log total cost, size, operator
// mix), grouped with k-means, and pattern-match rates are correlated per
// cluster so a DBA can see which kind of queries a problem concentrates in.
//
// The implementation is deterministic: k-means++ style seeding driven by an
// explicit seed, fixed iteration budget, stable tie-breaking.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"optimatch/internal/qep"
	"optimatch/internal/stats"
)

// NumFeatures is the dimensionality of the plan embedding.
const NumFeatures = 5

// Features embeds a plan for clustering:
//
//	0: log10(1 + total cost)           — overall expense
//	1: log10(1 + number of LOLEPOPs)   — plan size
//	2: join fraction of operators
//	3: scan fraction of operators
//	4: log10(1 + max base cardinality) — data scale touched
func Features(p *qep.Plan) []float64 {
	var joins, scans int
	for _, op := range p.Operators {
		if op.IsJoin() {
			joins++
		}
		if op.Class() == "SCAN" {
			scans++
		}
	}
	maxCard := 0.0
	for _, obj := range p.Objects {
		if obj.Cardinality > maxCard {
			maxCard = obj.Cardinality
		}
	}
	n := float64(p.NumOps())
	if n == 0 {
		n = 1
	}
	return []float64{
		math.Log10(1 + math.Max(p.TotalCost, 0)),
		math.Log10(1 + n),
		float64(joins) / n,
		float64(scans) / n,
		math.Log10(1 + maxCard),
	}
}

// Cluster is one k-means cluster over a workload.
type Cluster struct {
	Centroid []float64
	PlanIDs  []string // member plan IDs, sorted
}

// Result is a complete clustering.
type Result struct {
	Clusters []Cluster
	// assign maps plan ID to cluster index.
	assign map[string]int
}

// ClusterOf returns the cluster index of a plan, or -1.
func (r *Result) ClusterOf(planID string) int {
	if i, ok := r.assign[planID]; ok {
		return i
	}
	return -1
}

// K returns the number of clusters.
func (r *Result) K() int { return len(r.Clusters) }

// restarts is the number of deterministic k-means++ restarts; the run with
// the lowest within-cluster sum of squares wins, avoiding local optima.
const restarts = 8

// KMeans clusters the plans into k groups. Features are standardized
// (z-score per dimension) before distance computation so the cost dimension
// does not dominate. The best of several deterministic restarts is kept.
// It returns an error for k < 1 or k > len(plans).
func KMeans(plans []*qep.Plan, k int, seed int64) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("cluster: k must be >= 1")
	}
	if len(plans) < k {
		return nil, fmt.Errorf("cluster: %d plans cannot form %d clusters", len(plans), k)
	}
	points := make([][]float64, len(plans))
	for i, p := range plans {
		points[i] = Features(p)
	}
	standardize(points)
	// The paper asks for *cost based* clustering: after standardization,
	// weight the cost and size dimensions above the noisier operator-mix
	// fractions.
	weights := [NumFeatures]float64{2.0, 1.5, 0.5, 0.5, 1.0}
	for i := range points {
		for d := range points[i] {
			points[i][d] *= weights[d]
		}
	}

	var bestAssign []int
	var bestCentroids [][]float64
	bestInertia := math.Inf(1)
	for r := 0; r < restarts; r++ {
		assign, centroids := kmeansOnce(points, k, seed+int64(r))
		inertia := 0.0
		for i, pt := range points {
			inertia += sqDist(pt, centroids[assign[i]])
		}
		if inertia < bestInertia {
			bestInertia = inertia
			bestAssign, bestCentroids = assign, centroids
		}
	}

	res := &Result{assign: make(map[string]int, len(plans))}
	res.Clusters = make([]Cluster, k)
	for c := range res.Clusters {
		res.Clusters[c].Centroid = bestCentroids[c]
	}
	for i, p := range plans {
		c := bestAssign[i]
		res.Clusters[c].PlanIDs = append(res.Clusters[c].PlanIDs, p.ID)
		res.assign[p.ID] = c
	}
	for c := range res.Clusters {
		sort.Strings(res.Clusters[c].PlanIDs)
	}
	return res, nil
}

// kmeansOnce runs one Lloyd iteration loop from a k-means++ seeding.
func kmeansOnce(points [][]float64, k int, seed int64) ([]int, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	centroids := seedCentroids(points, k, rng)

	assign := make([]int, len(points))
	const maxIter = 100
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, pt := range points {
			best := nearest(centroids, pt)
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, NumFeatures)
		}
		for i, pt := range points {
			c := assign[i]
			counts[c]++
			for d, v := range pt {
				sums[c][d] += v
			}
		}
		for c := range sums {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid to keep k clusters populated.
				far, dist := 0, -1.0
				for i, pt := range points {
					d := sqDist(pt, centroids[assign[i]])
					if d > dist {
						dist, far = d, i
					}
				}
				copy(sums[c], points[far])
				counts[c] = 1
				assign[far] = c
			}
			for d := range sums[c] {
				sums[c][d] /= float64(counts[c])
			}
		}
		centroids = sums
		if !changed && iter > 0 {
			break
		}
	}
	return assign, centroids
}

func standardize(points [][]float64) {
	for d := 0; d < NumFeatures; d++ {
		col := make([]float64, len(points))
		for i := range points {
			col[i] = points[i][d]
		}
		mean, sd := stats.Mean(col), stats.StdDev(col)
		if sd == 0 {
			sd = 1
		}
		for i := range points {
			points[i][d] = (points[i][d] - mean) / sd
		}
	}
}

// seedCentroids picks k initial centroids k-means++ style.
func seedCentroids(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := rng.Intn(len(points))
	centroids = append(centroids, append([]float64(nil), points[first]...))
	for len(centroids) < k {
		weights := make([]float64, len(points))
		total := 0.0
		for i, pt := range points {
			d := math.Inf(1)
			for _, c := range centroids {
				if sd := sqDist(pt, c); sd < d {
					d = sd
				}
			}
			weights[i] = d
			total += d
		}
		if total == 0 {
			// All points coincide with centroids; pick uniformly.
			centroids = append(centroids, append([]float64(nil), points[rng.Intn(len(points))]...))
			continue
		}
		r := rng.Float64() * total
		acc := 0.0
		pick := len(points) - 1
		for i, w := range weights {
			acc += w
			if acc >= r {
				pick = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), points[pick]...))
	}
	return centroids
}

func nearest(centroids [][]float64, pt []float64) int {
	best, bestDist := 0, math.Inf(1)
	for c, cent := range centroids {
		if d := sqDist(pt, cent); d < bestDist {
			bestDist, best = d, c
		}
	}
	return best
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// PatternCorrelation summarizes how one pattern's matches distribute over
// the clusters.
type PatternCorrelation struct {
	Pattern string
	// Rate[c] is the fraction of cluster c's plans that match the pattern.
	Rate []float64
	// Lift[c] is Rate[c] divided by the overall match rate (1 = no
	// concentration; >1 = the problem concentrates in this cluster).
	Lift []float64
	// Overall is the workload-wide match rate.
	Overall float64
}

// Correlate computes per-cluster match rates and lifts for a pattern given
// the set of plan IDs the pattern matched.
func Correlate(res *Result, patternName string, matched map[string]bool, totalPlans int) PatternCorrelation {
	pc := PatternCorrelation{
		Pattern: patternName,
		Rate:    make([]float64, res.K()),
		Lift:    make([]float64, res.K()),
	}
	if totalPlans > 0 {
		pc.Overall = float64(len(matched)) / float64(totalPlans)
	}
	for c, cl := range res.Clusters {
		if len(cl.PlanIDs) == 0 {
			continue
		}
		hits := 0
		for _, id := range cl.PlanIDs {
			if matched[id] {
				hits++
			}
		}
		pc.Rate[c] = float64(hits) / float64(len(cl.PlanIDs))
		if pc.Overall > 0 {
			pc.Lift[c] = pc.Rate[c] / pc.Overall
		}
	}
	return pc
}
