package cluster

import (
	"math"
	"reflect"
	"testing"

	"optimatch/internal/fixtures"
	"optimatch/internal/qep"
	"optimatch/internal/workload"
)

func TestFeatures(t *testing.T) {
	p := fixtures.Figure1()
	f := Features(p)
	if len(f) != NumFeatures {
		t.Fatalf("features = %v", f)
	}
	// log10(1+15782.2) ~ 4.2
	if f[0] < 4 || f[0] > 4.5 {
		t.Errorf("cost feature = %v", f[0])
	}
	// 1 join out of 5 ops; 2 scans out of 5.
	if math.Abs(f[2]-0.2) > 1e-9 || math.Abs(f[3]-0.4) > 1e-9 {
		t.Errorf("mix features = %v, %v", f[2], f[3])
	}
	// SALES_FACT has 1e7 rows -> log10 ~ 7.
	if f[4] < 6.9 || f[4] > 7.1 {
		t.Errorf("data-scale feature = %v", f[4])
	}
}

func TestFeaturesEmptyPlan(t *testing.T) {
	p := qep.NewPlan("E")
	f := Features(p)
	for i, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("feature %d = %v", i, v)
		}
	}
}

func genPlans(t *testing.T, n int) []*qep.Plan {
	t.Helper()
	w, err := workload.Generate(workload.Config{Seed: 17, NumPlans: n, MinOps: 15, MaxOps: 200,
		InjectA: n / 5, InjectC: n / 4})
	if err != nil {
		t.Fatal(err)
	}
	return w.Plans
}

func TestKMeansBasics(t *testing.T) {
	plans := genPlans(t, 40)
	res, err := KMeans(plans, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 4 {
		t.Fatalf("K = %d", res.K())
	}
	total := 0
	for c, cl := range res.Clusters {
		if len(cl.PlanIDs) == 0 {
			t.Errorf("cluster %d empty", c)
		}
		total += len(cl.PlanIDs)
		if len(cl.Centroid) != NumFeatures {
			t.Errorf("cluster %d centroid = %v", c, cl.Centroid)
		}
		for _, id := range cl.PlanIDs {
			if res.ClusterOf(id) != c {
				t.Errorf("assignment inconsistent for %s", id)
			}
		}
	}
	if total != len(plans) {
		t.Errorf("clustered %d of %d plans", total, len(plans))
	}
	if res.ClusterOf("GHOST") != -1 {
		t.Error("unknown plan should map to -1")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	plans := genPlans(t, 30)
	r1, err := KMeans(plans, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := KMeans(plans, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for c := range r1.Clusters {
		if !reflect.DeepEqual(r1.Clusters[c].PlanIDs, r2.Clusters[c].PlanIDs) {
			t.Fatal("clustering not deterministic")
		}
	}
}

func TestKMeansErrors(t *testing.T) {
	plans := genPlans(t, 5)
	if _, err := KMeans(plans, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans(plans, 6, 1); err == nil {
		t.Error("k > n accepted")
	}
}

func TestKMeansK1(t *testing.T) {
	plans := genPlans(t, 10)
	res, err := KMeans(plans, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters[0].PlanIDs) != 10 {
		t.Errorf("k=1 cluster size = %d", len(res.Clusters[0].PlanIDs))
	}
}

func TestKMeansSeparatesCostScales(t *testing.T) {
	// Two clearly-separated populations: tiny cheap plans and huge costly
	// plans; k=2 must separate them perfectly.
	cheap, err := workload.Generate(workload.Config{Seed: 5, NumPlans: 10, MinOps: 10, MaxOps: 14})
	if err != nil {
		t.Fatal(err)
	}
	costly, err := workload.Generate(workload.Config{Seed: 6, NumPlans: 10, MinOps: 180, MaxOps: 220})
	if err != nil {
		t.Fatal(err)
	}
	var plans []*qep.Plan
	for i, p := range cheap.Plans {
		p.ID = "CHEAP" + p.ID
		plans = append(plans, p)
		_ = i
	}
	for _, p := range costly.Plans {
		p.ID = "COSTLY" + p.ID
		plans = append(plans, p)
	}
	res, err := KMeans(plans, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	c0 := res.ClusterOf("CHEAPQ1")
	for _, p := range cheap.Plans {
		if res.ClusterOf(p.ID) != c0 {
			t.Fatalf("cheap plans split across clusters")
		}
	}
	for _, p := range costly.Plans {
		if res.ClusterOf(p.ID) == c0 {
			t.Fatalf("costly plan clustered with cheap ones")
		}
	}
}

func TestCorrelate(t *testing.T) {
	plans := genPlans(t, 20)
	res, err := KMeans(plans, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Pattern matching exactly the plans of cluster 0 -> lift of cluster 0
	// is 1/overall, cluster 1 rate is 0.
	matched := make(map[string]bool)
	for _, id := range res.Clusters[0].PlanIDs {
		matched[id] = true
	}
	pc := Correlate(res, "test", matched, len(plans))
	if pc.Rate[0] != 1 || pc.Rate[1] != 0 {
		t.Errorf("rates = %v", pc.Rate)
	}
	wantOverall := float64(len(res.Clusters[0].PlanIDs)) / float64(len(plans))
	if math.Abs(pc.Overall-wantOverall) > 1e-9 {
		t.Errorf("overall = %v, want %v", pc.Overall, wantOverall)
	}
	if math.Abs(pc.Lift[0]-1/wantOverall) > 1e-9 {
		t.Errorf("lift = %v", pc.Lift[0])
	}
	// Empty match set: zero rates, zero overall.
	pc = Correlate(res, "none", nil, len(plans))
	if pc.Overall != 0 || pc.Rate[0] != 0 || pc.Lift[0] != 0 {
		t.Errorf("empty correlation = %+v", pc)
	}
}
