package qep

import (
	"fmt"
	"strings"
)

// Render draws the plan as the classic DB2 ASCII plan graph (the paper's
// Figure 1): each operator is a five-line cell (cardinality, name, number,
// cumulative cost, I/O cost) and children hang below their parent connected
// by /, | and \ characters. Base objects render as two-line leaf cells.
//
// Rendering is for human consumption; the machine-readable form is the OEF
// Plan Details section written by Write.
func Render(p *Plan) string {
	if p.Root == nil {
		return "(empty plan)\n"
	}
	b := layoutOp(p.Root)
	var sb strings.Builder
	for _, line := range b.lines {
		sb.WriteString(strings.TrimRight(line, " "))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// block is a rectangle of text plus the column of its root cell's center.
type block struct {
	lines  []string
	width  int
	center int
}

func cellBlock(lines []string) block {
	w := 0
	for _, l := range lines {
		if len(l) > w {
			w = len(l)
		}
	}
	out := make([]string, len(lines))
	for i, l := range lines {
		pad := (w - len(l)) / 2
		out[i] = strings.Repeat(" ", pad) + l + strings.Repeat(" ", w-len(l)-pad)
	}
	return block{lines: out, width: w, center: w / 2}
}

func opCell(op *Operator) block {
	return cellBlock([]string{
		FormatNum(op.Cardinality),
		op.DisplayName(),
		fmt.Sprintf("( %d)", op.ID),
		FormatNum(op.TotalCost),
		FormatNum(op.IOCost),
	})
}

func objCell(obj *BaseObject) block {
	return cellBlock([]string{
		FormatNum(obj.Cardinality),
		obj.Name,
	})
}

const hgap = 3 // columns between sibling subtrees

func layoutOp(op *Operator) block {
	cell := opCell(op)
	if len(op.Inputs) == 0 {
		return cell
	}
	children := make([]block, 0, len(op.Inputs))
	for _, in := range op.Inputs {
		if in.Op != nil {
			children = append(children, layoutOp(in.Op))
		} else {
			children = append(children, objCell(in.Obj))
		}
	}
	return stack(cell, children)
}

// stack places the children side by side, centers the parent cell above
// them, and draws one connector row.
func stack(parent block, children []block) block {
	// Row of children, top-aligned.
	height := 0
	for _, c := range children {
		if len(c.lines) > height {
			height = len(c.lines)
		}
	}
	rowLines := make([]string, height)
	var centers []int
	width := 0
	for i, c := range children {
		if i > 0 {
			for j := range rowLines {
				rowLines[j] += strings.Repeat(" ", hgap)
			}
			width += hgap
		}
		for j := 0; j < height; j++ {
			if j < len(c.lines) {
				rowLines[j] += c.lines[j]
			} else {
				rowLines[j] += strings.Repeat(" ", c.width)
			}
		}
		centers = append(centers, width+c.center)
		width += c.width
	}

	// Parent position: centered over the span of child centers.
	mid := (centers[0] + centers[len(centers)-1]) / 2
	parentStart := mid - parent.center
	shift := 0
	if parentStart < 0 {
		shift = -parentStart
		parentStart = 0
	}
	totalWidth := width + shift
	if parentStart+parent.width > totalWidth {
		totalWidth = parentStart + parent.width
	}

	pad := func(s string, offset int) string {
		out := strings.Repeat(" ", offset) + s
		if len(out) < totalWidth {
			out += strings.Repeat(" ", totalWidth-len(out))
		}
		return out
	}

	var lines []string
	for _, l := range parent.lines {
		lines = append(lines, pad(l, parentStart))
	}

	// Connector row: one mark above each child center.
	conn := []byte(strings.Repeat(" ", totalWidth))
	parentMid := parentStart + parent.center
	for _, c := range centers {
		col := c + shift
		var mark byte
		switch {
		case col < parentMid:
			mark = '/'
		case col > parentMid:
			mark = '\\'
		default:
			mark = '|'
		}
		if col >= 0 && col < len(conn) {
			conn[col] = mark
		}
	}
	lines = append(lines, string(conn))

	for _, l := range rowLines {
		lines = append(lines, pad(l, shift))
	}
	return block{lines: lines, width: totalWidth, center: parentMid}
}
