package qep

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// figure1Plan builds the paper's Figure 1 snippet rooted under a RETURN:
//
//	RETURN(1) <- NLJOIN(2) <- outer FETCH(3) <- IXSCAN(4) <- SALES_FACT(IDX1)
//	                       <- inner TBSCAN(5) <- CUST_DIM
func figure1Plan(t *testing.T) *Plan {
	t.Helper()
	p := NewPlan("Q2")
	p.Statement = "SELECT * FROM SALES_FACT F JOIN CUST_DIM C ON F.CUST_ID = C.CUST_ID"
	p.TotalCost = 15782.2

	salesFact := p.AddObject(&BaseObject{Name: "SALES_FACT", Type: "TABLE", Cardinality: 1e7, Columns: []string{"CUST_ID", "SALE_AMT"}})
	custDim := p.AddObject(&BaseObject{Name: "CUST_DIM", Type: "TABLE", Cardinality: 4043, Columns: []string{"CUST_ID", "CUST_NAME"}})

	ret := &Operator{ID: 1, Type: "RETURN", TotalCost: 15782.2, IOCost: 1320, CPUCost: 2.9e8, Cardinality: 19.12, Args: map[string]string{}}
	nl := &Operator{ID: 2, Type: "NLJOIN", TotalCost: 15771, IOCost: 1318, CPUCost: 2.87997e8, Cardinality: 19.12,
		Args:       map[string]string{"FETCHMAX": "IGNORE"},
		Predicates: []string{"(Q1.CUST_ID = Q2.CUST_ID)"}}
	fetch := &Operator{ID: 3, Type: "FETCH", TotalCost: 19.12, IOCost: 2, CPUCost: 1.2e5, Cardinality: 19.12, Args: map[string]string{}}
	ix := &Operator{ID: 4, Type: "IXSCAN", TotalCost: 12.3, IOCost: 1, CPUCost: 9.1e4, Cardinality: 19.12, Args: map[string]string{"INDEX": "IDX1"}}
	tb := &Operator{ID: 5, Type: "TBSCAN", TotalCost: 15771, IOCost: 1316, CPUCost: 2.8e8, Cardinality: 4043, Args: map[string]string{}}

	for _, op := range []*Operator{ret, nl, fetch, ix, tb} {
		if err := p.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	p.Link(ret, GeneralStream, nl, nil, 19.12, nil)
	p.Link(nl, OuterStream, fetch, nil, 19.12, []string{"Q2.SALE_AMT", "Q2.CUST_ID"})
	p.Link(nl, InnerStream, tb, nil, 4043, []string{"Q1.CUST_NAME", "Q1.CUST_ID"})
	p.Link(fetch, GeneralStream, ix, nil, 19.12, nil)
	p.Link(ix, GeneralStream, nil, salesFact, 1e7, nil)
	p.Link(tb, GeneralStream, nil, custDim, 4043, nil)

	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlanAccessors(t *testing.T) {
	p := figure1Plan(t)
	if p.NumOps() != 5 {
		t.Errorf("NumOps = %d", p.NumOps())
	}
	if p.Root.ID != 1 {
		t.Errorf("root = %d", p.Root.ID)
	}
	nl := p.Operators[2]
	if nl.Outer() == nil || nl.Outer().ID != 3 {
		t.Errorf("Outer = %v", nl.Outer())
	}
	if nl.Inner() == nil || nl.Inner().ID != 5 {
		t.Errorf("Inner = %v", nl.Inner())
	}
	if got := p.Operators[5].Object(); got == nil || got.Name != "CUST_DIM" {
		t.Errorf("Object = %v", got)
	}
	if !nl.IsJoin() || p.Operators[3].IsJoin() {
		t.Error("IsJoin wrong")
	}
	if nl.Class() != "JOIN" {
		t.Errorf("Class = %q", nl.Class())
	}
	if p.Operators[5].Class() != "SCAN" {
		t.Errorf("TBSCAN class = %q", p.Operators[5].Class())
	}
	// SelfCost of NLJOIN: 15771 - 19.12 (fetch) - 15771 (tbscan) < 0 -> clamped 0.
	if c := nl.SelfCost(); c != 0 {
		t.Errorf("SelfCost = %v", c)
	}
	// SelfCost of FETCH: 19.12 - 12.3.
	if c := p.Operators[3].SelfCost(); math.Abs(c-6.82) > 1e-9 {
		t.Errorf("FETCH SelfCost = %v", c)
	}
	ops := p.Operators[2].InputOps()
	if len(ops) != 2 || ops[0].ID != 3 || ops[1].ID != 5 {
		t.Errorf("InputOps = %v", ops)
	}
}

func TestDescendantsAndWalk(t *testing.T) {
	p := figure1Plan(t)
	desc := Descendants(p.Operators[2])
	var ids []int
	for _, d := range desc {
		ids = append(ids, d.ID)
	}
	if len(ids) != 3 {
		t.Fatalf("descendants = %v", ids)
	}
	var walked []int
	p.Walk(func(op *Operator) { walked = append(walked, op.ID) })
	if len(walked) != 5 || walked[0] != 1 {
		t.Errorf("walk = %v", walked)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	p := figure1Plan(t)
	text := Text(p)

	p2, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, text)
	}
	if p2.ID != p.ID {
		t.Errorf("ID = %q, want %q", p2.ID, p.ID)
	}
	if p2.Statement != p.Statement {
		t.Errorf("Statement = %q", p2.Statement)
	}
	if p2.TotalCost != p.TotalCost {
		t.Errorf("TotalCost = %v", p2.TotalCost)
	}
	if p2.NumOps() != p.NumOps() {
		t.Fatalf("NumOps = %d, want %d", p2.NumOps(), p.NumOps())
	}
	for id, want := range p.Operators {
		got := p2.Operators[id]
		if got == nil {
			t.Fatalf("operator %d missing", id)
		}
		if got.Type != want.Type || got.TotalCost != want.TotalCost ||
			got.IOCost != want.IOCost || got.CPUCost != want.CPUCost ||
			got.Cardinality != want.Cardinality || got.JoinMod != want.JoinMod {
			t.Errorf("operator %d mismatch:\n got %+v\nwant %+v", id, got, want)
		}
		if len(got.Predicates) != len(want.Predicates) {
			t.Errorf("operator %d predicates = %v", id, got.Predicates)
		}
		for k, v := range want.Args {
			if got.Args[k] != v {
				t.Errorf("operator %d arg %s = %q, want %q", id, k, got.Args[k], v)
			}
		}
	}
	if p2.Root.ID != 1 {
		t.Errorf("root = %d", p2.Root.ID)
	}
	nl := p2.Operators[2]
	if nl.Outer() == nil || nl.Outer().ID != 3 || nl.Inner() == nil || nl.Inner().ID != 5 {
		t.Errorf("stream kinds lost: outer=%v inner=%v", nl.Outer(), nl.Inner())
	}
	if cols := nl.Inputs[0].Columns; len(cols) != 2 || cols[0] != "Q2.SALE_AMT" {
		t.Errorf("stream columns = %v", cols)
	}
	obj := p2.Objects["SALES_FACT"]
	if obj == nil || obj.Cardinality != 1e7 || len(obj.Columns) != 2 {
		t.Errorf("object = %+v", obj)
	}
	if err := p2.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestJoinModifierRoundTrip(t *testing.T) {
	p := NewPlan("LOJ")
	p.Statement = "SELECT 1"
	loj := &Operator{ID: 1, Type: "HSJOIN", JoinMod: LeftOuterJoin, TotalCost: 10, Cardinality: 5}
	a := &Operator{ID: 2, Type: "TBSCAN", TotalCost: 4, Cardinality: 5}
	b := &Operator{ID: 3, Type: "TBSCAN", TotalCost: 4, Cardinality: 9}
	for _, op := range []*Operator{loj, a, b} {
		if err := p.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	t1 := p.AddObject(&BaseObject{Name: "T1", Cardinality: 5})
	t2 := p.AddObject(&BaseObject{Name: "T2", Cardinality: 9})
	p.Link(loj, OuterStream, a, nil, 5, nil)
	p.Link(loj, InnerStream, b, nil, 9, nil)
	p.Link(a, GeneralStream, nil, t1, 5, nil)
	p.Link(b, GeneralStream, nil, t2, 9, nil)
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}

	text := Text(p)
	if !strings.Contains(text, ">HSJOIN") {
		t.Errorf("serialized form missing '>' prefix:\n%s", text)
	}
	p2, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Operators[1].JoinMod != LeftOuterJoin {
		t.Errorf("JoinMod = %v", p2.Operators[1].JoinMod)
	}
	if p2.Operators[1].DisplayName() != ">HSJOIN" {
		t.Errorf("DisplayName = %q", p2.Operators[1].DisplayName())
	}
}

func TestParseNumberFormats(t *testing.T) {
	// Numbers in both decimal and exponent form must parse identically.
	text := `OPTIMATCH EXPLAIN FILE

Statement ID:	QX
Statement:
	SELECT 1

Access Plan:
-----------
	Total Cost:		1.0E+07

Plan Details:
-------------

	1) TBSCAN: (Table Scan)
		Cumulative Total Cost:		1.0E+07
		Cumulative I/O Cost:		1316.5
		Estimated Cardinality:		4.043e+03

		Input Streams:
		-------------
			1) From Object CUST_DIM
				Stream Type:	GENERAL
				Estimated Rows:	1.0E+07

End of Explain
`
	p, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	op := p.Operators[1]
	if op.TotalCost != 1e7 || op.Cardinality != 4043 || op.IOCost != 1316.5 {
		t.Errorf("parsed values: %+v", op)
	}
	if p.Objects["CUST_DIM"].Cardinality != 1e7 {
		t.Errorf("object cardinality = %v", p.Objects["CUST_DIM"].Cardinality)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"empty", ""},
		{"noOperators", "Plan Details:\n"},
		{"badCost", "Plan Details:\n1) TBSCAN: (x)\nCumulative Total Cost: abc\n"},
		{"unknownInput", "Plan Details:\n1) RETURN: (x)\nInput Streams:\n-------------\n1) From Operator #9\n"},
		{"twoRoots", "Plan Details:\n1) TBSCAN: (x)\n2) TBSCAN: (x)\n"},
		{"doubleConsume", `Plan Details:
1) RETURN: (x)
Input Streams:
-------------
1) From Operator #3
2) NLJOIN: (x)
Input Streams:
-------------
1) From Operator #3
3) TBSCAN: (x)
`},
		{"badStreamType", "Plan Details:\n1) TBSCAN: (x)\nInput Streams:\n-------------\n1) From Object T\nStream Type:\tSIDEWAYS\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.text); err == nil {
				t.Errorf("expected error for %s", c.name)
			}
		})
	}
}

func TestValidateCatchesBadJoins(t *testing.T) {
	p := NewPlan("BAD")
	j := &Operator{ID: 1, Type: "NLJOIN"}
	s := &Operator{ID: 2, Type: "TBSCAN"}
	if err := p.AddOperator(j); err != nil {
		t.Fatal(err)
	}
	if err := p.AddOperator(s); err != nil {
		t.Fatal(err)
	}
	p.Link(j, GeneralStream, s, nil, 1, nil) // join with a GENERAL input only
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted join without outer/inner streams")
	}
}

func TestAddOperatorDuplicate(t *testing.T) {
	p := NewPlan("D")
	if err := p.AddOperator(&Operator{ID: 1, Type: "RETURN"}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddOperator(&Operator{ID: 1, Type: "SORT"}); err == nil {
		t.Error("duplicate operator id accepted")
	}
}

func TestRenderFigure1Shape(t *testing.T) {
	p := figure1Plan(t)
	out := Render(p)
	for _, want := range []string{"NLJOIN", "( 2)", "TBSCAN", "IXSCAN", "FETCH", "CUST_DIM", "SALES_FACT", "1e+07"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered graph missing %q:\n%s", want, out)
		}
	}
	// NLJOIN must appear above its children; find line indexes.
	lines := strings.Split(out, "\n")
	idx := func(s string) int {
		for i, l := range lines {
			if strings.Contains(l, s) {
				return i
			}
		}
		return -1
	}
	if !(idx("NLJOIN") < idx("FETCH") && idx("FETCH") < idx("IXSCAN")) {
		t.Errorf("vertical ordering wrong:\n%s", out)
	}
	// A connector row exists between NLJOIN block and the children row.
	if !strings.ContainsAny(out, "/\\|") {
		t.Errorf("no connectors drawn:\n%s", out)
	}
}

func TestRenderEmptyPlan(t *testing.T) {
	p := NewPlan("E")
	if got := Render(p); !strings.Contains(got, "empty") {
		t.Errorf("Render(empty) = %q", got)
	}
}

func TestFormatNum(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{19.12, "19.12"},
		{15771, "15771"},
		{0, "0"},
		{1e7, "1e+07"},
		{2.87997e8, "2.87997e+08"},
		{0.0001, "0.0001"},
		{0.00001, "1e-05"},
		{-4043, "-4043"},
	}
	for _, c := range cases {
		if got := FormatNum(c.in); got != c.want {
			t.Errorf("FormatNum(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Property: FormatNum always round-trips through parseNum exactly.
func TestFormatNumRoundTripProperty(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		got, err := parseNum(FormatNum(v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamKindParse(t *testing.T) {
	for _, c := range []struct {
		in   string
		want StreamKind
	}{{"OUTER", OuterStream}, {"inner", InnerStream}, {"GENERAL", GeneralStream}, {"", GeneralStream}} {
		got, err := ParseStreamKind(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseStreamKind(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseStreamKind("DIAGONAL"); err == nil {
		t.Error("bad stream kind accepted")
	}
}

func TestCutKey(t *testing.T) {
	if v, ok := cutKey("Total Cost:\t\t42", "Total Cost"); !ok || v != "42" {
		t.Errorf("cutKey = %q, %v", v, ok)
	}
	if v, ok := cutKey("Total Cost :  42", "Total Cost"); !ok || v != "42" {
		t.Errorf("cutKey spaced = %q, %v", v, ok)
	}
	if _, ok := cutKey("Total Costume: 42", "Total Cost"); ok {
		t.Error("cutKey matched wrong key")
	}
}

func TestParseColumns(t *testing.T) {
	if got := parseColumns("+A+B+C"); len(got) != 3 || got[1] != "B" {
		t.Errorf("plus form = %v", got)
	}
	if got := parseColumns("A, B ,C"); len(got) != 3 || got[1] != "B" {
		t.Errorf("comma form = %v", got)
	}
	if got := parseColumns(""); got != nil {
		t.Errorf("empty = %v", got)
	}
}
