package qep

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// FormatNum renders a plan number the way DB2 explain output does: plain
// decimal for mid-range magnitudes and exponent notation for very large or
// very small values ("1.0E+07", "2.87997e+08"). This mixed rendering is what
// makes naive text search over explain files error-prone (paper, Section
// 3.3); the formatter reproduces it deliberately.
func FormatNum(f float64) string {
	af := math.Abs(f)
	if f != 0 && (af >= 1e6 || af < 1e-3) {
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
	return strconv.FormatFloat(f, 'f', -1, 64)
}

// FormatNumShort renders a plan number for human-facing report text with at
// most six significant digits ("15771", "1.31318e+07"). Unlike FormatNum it
// does not guarantee an exact round trip and must not be used in explain
// files.
func FormatNumShort(f float64) string {
	af := math.Abs(f)
	if f != 0 && (af >= 1e6 || af < 1e-3) {
		return strconv.FormatFloat(f, 'g', 6, 64)
	}
	s := strconv.FormatFloat(f, 'f', 2, 64)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Write serializes the plan in the OptImatch explain format (OEF). The
// output parses back with Parse into a semantically identical plan.
func Write(w io.Writer, p *Plan) error {
	var b strings.Builder
	b.WriteString("OPTIMATCH EXPLAIN FILE\n\n")
	fmt.Fprintf(&b, "Statement ID:\t%s\n", p.ID)
	b.WriteString("Statement:\n")
	for _, line := range strings.Split(strings.TrimRight(p.Statement, "\n"), "\n") {
		b.WriteString("\t")
		b.WriteString(line)
		b.WriteString("\n")
	}
	b.WriteString("\nAccess Plan:\n-----------\n")
	fmt.Fprintf(&b, "\tTotal Cost:\t\t%s\n", FormatNum(p.TotalCost))
	b.WriteString("\tQuery Degree:\t\t1\n\n")

	b.WriteString("Plan Details:\n-------------\n\n")
	for _, op := range p.Ops() {
		fmt.Fprintf(&b, "\t%d) %s: (%s)\n", op.ID, op.DisplayName(), typeDescription(op.Type))
		if desc := op.JoinMod.Description(); desc != "" {
			fmt.Fprintf(&b, "\t\t%s\n", desc)
		}
		fmt.Fprintf(&b, "\t\tCumulative Total Cost:\t\t%s\n", FormatNum(op.TotalCost))
		fmt.Fprintf(&b, "\t\tCumulative CPU Cost:\t\t%s\n", FormatNum(op.CPUCost))
		fmt.Fprintf(&b, "\t\tCumulative I/O Cost:\t\t%s\n", FormatNum(op.IOCost))
		fmt.Fprintf(&b, "\t\tCumulative First Row Cost:\t%s\n", FormatNum(op.FirstRow))
		fmt.Fprintf(&b, "\t\tEstimated Bufferpool Buffers:\t%s\n", FormatNum(op.Buffers))
		fmt.Fprintf(&b, "\t\tEstimated Cardinality:\t\t%s\n", FormatNum(op.Cardinality))

		if len(op.Args) > 0 {
			b.WriteString("\n\t\tArguments:\n\t\t---------\n")
			keys := make([]string, 0, len(op.Args))
			for k := range op.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "\t\t%s: %s\n", k, op.Args[k])
			}
		}
		if len(op.Predicates) > 0 {
			b.WriteString("\n\t\tPredicates:\n\t\t----------\n")
			for _, pr := range op.Predicates {
				fmt.Fprintf(&b, "\t\t%s\n", pr)
			}
		}
		if len(op.Inputs) > 0 {
			b.WriteString("\n\t\tInput Streams:\n\t\t-------------\n")
			for i, in := range op.Inputs {
				if in.Op != nil {
					fmt.Fprintf(&b, "\t\t\t%d) From Operator #%d\n", i+1, in.Op.ID)
				} else {
					fmt.Fprintf(&b, "\t\t\t%d) From Object %s\n", i+1, in.Obj.Name)
				}
				fmt.Fprintf(&b, "\t\t\t\tStream Type:\t%s\n", in.Kind)
				fmt.Fprintf(&b, "\t\t\t\tEstimated Rows:\t%s\n", FormatNum(in.Rows))
				if len(in.Columns) > 0 {
					fmt.Fprintf(&b, "\t\t\t\tColumns:\t+%s\n", strings.Join(in.Columns, "+"))
				}
				b.WriteString("\n")
			}
		} else {
			b.WriteString("\n")
		}
	}

	if len(p.Objects) > 0 {
		b.WriteString("Base Objects:\n-------------\n")
		names := make([]string, 0, len(p.Objects))
		for n := range p.Objects {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			obj := p.Objects[n]
			fmt.Fprintf(&b, "\t%s\n", obj.Name)
			fmt.Fprintf(&b, "\t\tType:\t%s\n", obj.Type)
			fmt.Fprintf(&b, "\t\tCardinality:\t%s\n", FormatNum(obj.Cardinality))
			if len(obj.Columns) > 0 {
				fmt.Fprintf(&b, "\t\tColumns:\t%s\n", strings.Join(obj.Columns, ","))
			}
			b.WriteString("\n")
		}
	}
	b.WriteString("End of Explain\n")

	_, err := io.WriteString(w, b.String())
	return err
}

// Text returns the OEF serialization as a string.
func Text(p *Plan) string {
	var b strings.Builder
	// strings.Builder writes never fail.
	_ = Write(&b, p)
	return b.String()
}

// typeDescription maps an operator type to its long explain name.
func typeDescription(t string) string {
	switch t {
	case "NLJOIN":
		return "Nested Loop Join"
	case "HSJOIN":
		return "Hash Join"
	case "MSJOIN":
		return "Merge Scan Join"
	case "ZZJOIN":
		return "Zigzag Join"
	case "TBSCAN":
		return "Table Scan"
	case "IXSCAN":
		return "Index Scan"
	case "FETCH":
		return "Fetch"
	case "SORT":
		return "Sort"
	case "GRPBY":
		return "Group By"
	case "TEMP":
		return "Temporary Table Construction"
	case "FILTER":
		return "Filter Rows"
	case "RETURN":
		return "Return of Data"
	case "UNION":
		return "Union"
	case "UNIQUE":
		return "Duplicate Elimination"
	case "HSPROBE":
		return "Hash Probe"
	case "TQ":
		return "Table Queue"
	default:
		return t
	}
}
