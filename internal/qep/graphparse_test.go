package qep

import (
	"strings"
	"testing"
)

// TestParseGraphRoundTripFigure1 renders the Figure 1 fixture and parses
// the ASCII graph back, checking the structural fields survive.
func TestParseGraphRoundTripFigure1(t *testing.T) {
	orig := figure1Plan(t)
	text := Render(orig)
	p, err := ParseGraph("Q2", text)
	if err != nil {
		t.Fatalf("ParseGraph: %v\n%s", err, text)
	}
	if p.NumOps() != orig.NumOps() {
		t.Fatalf("ops = %d, want %d", p.NumOps(), orig.NumOps())
	}
	for id, want := range orig.Operators {
		got := p.Operators[id]
		if got == nil {
			t.Fatalf("operator %d missing", id)
		}
		if got.Type != want.Type {
			t.Errorf("op %d type = %q, want %q", id, got.Type, want.Type)
		}
		if got.Cardinality != want.Cardinality {
			t.Errorf("op %d card = %v, want %v", id, got.Cardinality, want.Cardinality)
		}
		if got.TotalCost != want.TotalCost {
			t.Errorf("op %d cost = %v, want %v", id, got.TotalCost, want.TotalCost)
		}
		if got.IOCost != want.IOCost {
			t.Errorf("op %d io = %v, want %v", id, got.IOCost, want.IOCost)
		}
	}
	// Tree shape: NLJOIN(2) has FETCH(3) outer and TBSCAN(5) inner.
	nl := p.Operators[2]
	if nl.Outer() == nil || nl.Outer().ID != 3 {
		t.Errorf("outer = %v", nl.Outer())
	}
	if nl.Inner() == nil || nl.Inner().ID != 5 {
		t.Errorf("inner = %v", nl.Inner())
	}
	// Base objects recovered.
	if p.Objects["CUST_DIM"] == nil || p.Objects["SALES_FACT"] == nil {
		t.Errorf("objects = %v", p.Objects)
	}
	if p.Operators[5].Object() == nil || p.Operators[5].Object().Name != "CUST_DIM" {
		t.Errorf("TBSCAN object = %v", p.Operators[5].Object())
	}
	if p.Root.ID != 1 {
		t.Errorf("root = %d", p.Root.ID)
	}
}

// TestParseGraphJoinModifiers checks the '>' prefix round-trips.
func TestParseGraphJoinModifiers(t *testing.T) {
	orig := NewPlan("LOJ")
	loj := &Operator{ID: 1, Type: "HSJOIN", JoinMod: LeftOuterJoin, TotalCost: 10, IOCost: 3, Cardinality: 5}
	a := &Operator{ID: 2, Type: "TBSCAN", TotalCost: 4, IOCost: 1, Cardinality: 5}
	b := &Operator{ID: 3, Type: "IXSCAN", TotalCost: 4, IOCost: 1, Cardinality: 9}
	for _, op := range []*Operator{loj, a, b} {
		if err := orig.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	t1 := orig.AddObject(&BaseObject{Name: "T1", Cardinality: 50})
	t2 := orig.AddObject(&BaseObject{Name: "T2", Cardinality: 90})
	orig.Link(loj, OuterStream, a, nil, 5, nil)
	orig.Link(loj, InnerStream, b, nil, 9, nil)
	orig.Link(a, GeneralStream, nil, t1, 50, nil)
	orig.Link(b, GeneralStream, nil, t2, 90, nil)
	if err := orig.Resolve(); err != nil {
		t.Fatal(err)
	}

	text := Render(orig)
	if !strings.Contains(text, ">HSJOIN") {
		t.Fatalf("render lacks LOJ prefix:\n%s", text)
	}
	p, err := ParseGraph("LOJ", text)
	if err != nil {
		t.Fatal(err)
	}
	if p.Operators[1].JoinMod != LeftOuterJoin || p.Operators[1].Type != "HSJOIN" {
		t.Errorf("parsed join = %+v", p.Operators[1])
	}
}

// TestParseGraphRoundTripAllFixturePlans round-trips every fixture shape
// through Render + ParseGraph.
func TestParseGraphRoundTripFigure7Shape(t *testing.T) {
	// Use the richer Figure 7 shape built inline (avoids an import cycle
	// with the fixtures package, which imports qep).
	orig := NewPlan("Q21")
	mk := func(id int, typ string, mod JoinModifier, cost, io, card float64) *Operator {
		op := &Operator{ID: id, Type: typ, JoinMod: mod, TotalCost: cost, IOCost: io, Cardinality: card}
		if err := orig.AddOperator(op); err != nil {
			t.Fatal(err)
		}
		return op
	}
	ret := mk(1, "RETURN", InnerJoin, 196283, 23130, 6.7)
	top := mk(5, "NLJOIN", InnerJoin, 196280, 23129, 6.7)
	lojL := mk(6, "HSJOIN", LeftOuterJoin, 180100, 21000, 78417)
	tb1 := mk(8, "TBSCAN", InnerJoin, 41000, 5000, 78417)
	tb2 := mk(12, "TBSCAN", InnerJoin, 41000, 5000, 78417)
	lojR := mk(15, "NLJOIN", LeftOuterJoin, 16090, 2099, 3.2e-8)
	fetch := mk(16, "FETCH", InnerJoin, 8000, 1000, 1)
	ix := mk(38, "IXSCAN", InnerJoin, 4000, 500, 1.311e-8)

	tel := orig.AddObject(&BaseObject{Name: "TELEPHONE_DETAIL", Cardinality: 78417})
	tran := orig.AddObject(&BaseObject{Name: "TRAN_BASE", Cardinality: 2.77e8})

	orig.Link(ret, GeneralStream, top, nil, 6.7, nil)
	orig.Link(top, OuterStream, lojL, nil, 78417, nil)
	orig.Link(top, InnerStream, lojR, nil, 3.2e-8, nil)
	orig.Link(lojL, OuterStream, tb1, nil, 78417, nil)
	orig.Link(lojL, InnerStream, tb2, nil, 78417, nil)
	orig.Link(tb1, GeneralStream, nil, tel, 78417, nil)
	orig.Link(tb2, GeneralStream, nil, tel, 78417, nil)
	orig.Link(lojR, OuterStream, fetch, nil, 1, nil)
	orig.Link(lojR, InnerStream, ix, nil, 1.311e-8, nil)
	orig.Link(fetch, GeneralStream, nil, tran, 2.77e8, nil)
	orig.Link(ix, GeneralStream, nil, tran, 2.77e8, nil)
	if err := orig.Resolve(); err != nil {
		t.Fatal(err)
	}

	text := Render(orig)
	p, err := ParseGraph("Q21", text)
	if err != nil {
		t.Fatalf("ParseGraph: %v\n%s", err, text)
	}
	if p.NumOps() != orig.NumOps() {
		t.Fatalf("ops = %d, want %d\n%s", p.NumOps(), orig.NumOps(), text)
	}
	// The two LOJ joins keep their modifiers and positions.
	if p.Operators[6].JoinMod != LeftOuterJoin || p.Operators[15].JoinMod != LeftOuterJoin {
		t.Error("LOJ modifiers lost")
	}
	if p.Operators[5].Outer() == nil || p.Operators[5].Outer().ID != 6 {
		t.Errorf("outer of top = %v", p.Operators[5].Outer())
	}
	if p.Operators[5].Inner() == nil || p.Operators[5].Inner().ID != 15 {
		t.Errorf("inner of top = %v", p.Operators[5].Inner())
	}
	// Exponent cardinalities survive.
	if p.Operators[38].Cardinality != 1.311e-8 {
		t.Errorf("ix card = %v", p.Operators[38].Cardinality)
	}
	// Shared TRAN_BASE is one object with two consumers.
	if len(p.Objects) != 2 {
		t.Errorf("objects = %v", p.Objects)
	}
}

func TestParseGraphErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"empty", ""},
		{"noCells", "just some words\nwithout numbers"},
		{"duplicateIDs", "  5\n TBSCAN\n ( 1)\n 5\n 1\n\n  5\n TBSCAN\n ( 1)\n 5\n 1\n"},
		{"idWithoutName", "( 3)\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseGraph("X", c.text); err == nil {
				t.Errorf("expected error for %s", c.name)
			}
		})
	}
}

// TestParseGraphHandwritten parses a hand-typed snippet in the paper's own
// Figure 1 layout (different spacing than Render produces).
func TestParseGraphHandwritten(t *testing.T) {
	text := `
                         19.12
                        NLJOIN
                        (   2)
                        15771
                        1318
                    /           \
                19.12          4043
                FETCH         TBSCAN
                (   3)        (   5)
                19.12         15771
                2             1316
                  |              |
               19.12          4043
               SALES_FACT     CUST_DIM
`
	p, err := ParseGraph("HAND", text)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumOps() != 3 {
		t.Fatalf("ops = %d, want 3", p.NumOps())
	}
	nl := p.Operators[2]
	if nl == nil || nl.Type != "NLJOIN" {
		t.Fatalf("NLJOIN not parsed: %+v", p.Operators)
	}
	if nl.Outer() == nil || nl.Outer().Type != "FETCH" {
		t.Errorf("outer = %+v", nl.Outer())
	}
	if nl.Inner() == nil || nl.Inner().Type != "TBSCAN" {
		t.Errorf("inner = %+v", nl.Inner())
	}
	if got := nl.Inner().Object(); got == nil || got.Name != "CUST_DIM" {
		t.Errorf("scan object = %v", got)
	}
}
