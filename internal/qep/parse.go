package qep

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// Parse reads a plan in the OptImatch explain format (OEF). The parser is
// tolerant of whitespace variations: all indentation is insignificant and
// key/value pairs split on the first ':'.
func Parse(text string) (*Plan, error) {
	pp := &planParser{plan: NewPlan("")}
	pp.plan.Source = text
	if err := pp.run(text); err != nil {
		return nil, err
	}
	return pp.plan, nil
}

// opHeaderRe matches operator block headers like
//
//  2. NLJOIN: (Nested Loop Join)
//  7. >HSJOIN: (Hash Join)
var opHeaderRe = regexp.MustCompile(`^(\d+)\)\s+([<>^]?)([A-Z][A-Z0-9_]*):`)

// streamHeaderRe matches input stream headers like
//
//  1. From Operator #3
//  2. From Object CUST_DIM
var streamHeaderRe = regexp.MustCompile(`^\d+\)\s+From (Operator #(\d+)|Object (\S+))`)

type inputSpec struct {
	kind    StreamKind
	opID    int    // >0 when the input is an operator
	objName string // non-empty when the input is a base object
	rows    float64
	columns []string
}

type opSpec struct {
	op     *Operator
	inputs []inputSpec
	line   int
}

type section uint8

const (
	secHeader section = iota
	secStatement
	secAccessPlan
	secDetails
	secObjects
	secDone
)

type planParser struct {
	plan    *Plan
	specs   []*opSpec
	cur     *opSpec    // operator block being read
	curIn   *inputSpec // input stream being read
	curObj  *BaseObject
	sect    section
	subSect string // "", "arguments", "predicates", "streams"
	stmt    []string
	lineNo  int
}

func (pp *planParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("qep: line %d: %s", pp.lineNo, fmt.Sprintf(format, args...))
}

func (pp *planParser) run(text string) error {
	lines := strings.Split(text, "\n")
	for i, raw := range lines {
		pp.lineNo = i + 1
		line := strings.TrimSpace(raw)
		if err := pp.line(line); err != nil {
			return err
		}
	}
	pp.plan.Statement = strings.Join(pp.stmt, "\n")
	return pp.link()
}

func (pp *planParser) line(line string) error {
	// Section switches are recognized anywhere.
	switch line {
	case "Access Plan:":
		pp.sect = secAccessPlan
		return nil
	case "Plan Details:":
		pp.sect = secDetails
		return nil
	case "Base Objects:":
		pp.sect = secObjects
		pp.cur, pp.curIn = nil, nil
		return nil
	case "End of Explain":
		pp.sect = secDone
		return nil
	}
	if line == "" || strings.HasPrefix(line, "---") {
		return nil
	}

	switch pp.sect {
	case secHeader:
		if v, ok := cutKey(line, "Statement ID"); ok {
			pp.plan.ID = v
			return nil
		}
		if line == "Statement:" {
			pp.sect = secStatement
			return nil
		}
		return nil // banner and unknown header lines
	case secStatement:
		pp.stmt = append(pp.stmt, line)
		return nil
	case secAccessPlan:
		if v, ok := cutKey(line, "Total Cost"); ok {
			f, err := parseNum(v)
			if err != nil {
				return pp.errf("bad Total Cost %q", v)
			}
			pp.plan.TotalCost = f
		}
		return nil
	case secDetails:
		return pp.detailsLine(line)
	case secObjects:
		return pp.objectLine(line)
	default:
		return nil
	}
}

func (pp *planParser) detailsLine(line string) error {
	if m := opHeaderRe.FindStringSubmatch(line); m != nil {
		id, err := strconv.Atoi(m[1])
		if err != nil || id <= 0 {
			return pp.errf("bad operator id %q", m[1])
		}
		op := &Operator{
			ID:   id,
			Type: m[3],
			Args: make(map[string]string),
		}
		switch m[2] {
		case ">":
			op.JoinMod = LeftOuterJoin
		case "<":
			op.JoinMod = RightOuterJoin
		case "^":
			op.JoinMod = EarlyOutJoin
		}
		pp.cur = &opSpec{op: op, line: pp.lineNo}
		pp.curIn = nil
		pp.subSect = ""
		pp.specs = append(pp.specs, pp.cur)
		return nil
	}
	if pp.cur == nil {
		return pp.errf("content before first operator block: %q", line)
	}

	switch line {
	case "Arguments:":
		pp.subSect = "arguments"
		pp.curIn = nil
		return nil
	case "Predicates:":
		pp.subSect = "predicates"
		pp.curIn = nil
		return nil
	case "Input Streams:":
		pp.subSect = "streams"
		pp.curIn = nil
		return nil
	}

	// Join modifier descriptions appear on their own line.
	switch line {
	case "Left Outer Join":
		pp.cur.op.JoinMod = LeftOuterJoin
		return nil
	case "Right Outer Join":
		pp.cur.op.JoinMod = RightOuterJoin
		return nil
	case "Early Out Join":
		pp.cur.op.JoinMod = EarlyOutJoin
		return nil
	}

	if pp.subSect == "streams" {
		if m := streamHeaderRe.FindStringSubmatch(line); m != nil {
			in := inputSpec{}
			if m[2] != "" {
				id, err := strconv.Atoi(m[2])
				if err != nil {
					return pp.errf("bad input operator id %q", m[2])
				}
				in.opID = id
			} else {
				in.objName = m[3]
			}
			pp.cur.inputs = append(pp.cur.inputs, in)
			pp.curIn = &pp.cur.inputs[len(pp.cur.inputs)-1]
			return nil
		}
		if pp.curIn != nil {
			if v, ok := cutKey(line, "Stream Type"); ok {
				kind, err := ParseStreamKind(v)
				if err != nil {
					return pp.errf("%v", err)
				}
				pp.curIn.kind = kind
				return nil
			}
			if v, ok := cutKey(line, "Estimated Rows"); ok {
				f, err := parseNum(v)
				if err != nil {
					return pp.errf("bad Estimated Rows %q", v)
				}
				pp.curIn.rows = f
				return nil
			}
			if v, ok := cutKey(line, "Columns"); ok {
				pp.curIn.columns = parseColumns(v)
				return nil
			}
		}
		return nil
	}

	if pp.subSect == "predicates" {
		pp.cur.op.Predicates = append(pp.cur.op.Predicates, line)
		return nil
	}
	if pp.subSect == "arguments" {
		if k, v, ok := strings.Cut(line, ":"); ok {
			pp.cur.op.Args[strings.TrimSpace(k)] = strings.TrimSpace(v)
		}
		return nil
	}

	// Operator properties.
	numProps := []struct {
		key string
		dst *float64
	}{
		{"Cumulative Total Cost", &pp.cur.op.TotalCost},
		{"Cumulative CPU Cost", &pp.cur.op.CPUCost},
		{"Cumulative I/O Cost", &pp.cur.op.IOCost},
		{"Cumulative First Row Cost", &pp.cur.op.FirstRow},
		{"Estimated Bufferpool Buffers", &pp.cur.op.Buffers},
		{"Estimated Cardinality", &pp.cur.op.Cardinality},
	}
	for _, prop := range numProps {
		if v, ok := cutKey(line, prop.key); ok {
			f, err := parseNum(v)
			if err != nil {
				return pp.errf("bad %s %q", prop.key, v)
			}
			*prop.dst = f
			return nil
		}
	}
	return nil // tolerate unknown property lines
}

func (pp *planParser) objectLine(line string) error {
	if v, ok := cutKey(line, "Type"); ok && pp.curObj != nil {
		pp.curObj.Type = v
		return nil
	}
	if v, ok := cutKey(line, "Cardinality"); ok && pp.curObj != nil {
		f, err := parseNum(v)
		if err != nil {
			return pp.errf("bad object cardinality %q", v)
		}
		pp.curObj.Cardinality = f
		return nil
	}
	if v, ok := cutKey(line, "Columns"); ok && pp.curObj != nil {
		pp.curObj.Columns = parseColumns(v)
		return nil
	}
	// Otherwise the line names a new object.
	name := strings.TrimSpace(line)
	if name == "" || strings.Contains(name, ":") {
		return nil
	}
	obj := &BaseObject{Name: name, Type: "TABLE"}
	pp.curObj = pp.plan.AddObject(obj)
	return nil
}

// link resolves the collected operator specs into the plan tree.
func (pp *planParser) link() error {
	if len(pp.specs) == 0 {
		return fmt.Errorf("qep: no Plan Details section or no operators found")
	}
	for _, spec := range pp.specs {
		if err := pp.plan.AddOperator(spec.op); err != nil {
			return err
		}
	}
	for _, spec := range pp.specs {
		for _, in := range spec.inputs {
			if in.opID > 0 {
				child, ok := pp.plan.Operators[in.opID]
				if !ok {
					return fmt.Errorf("qep: operator %d references unknown input operator #%d", spec.op.ID, in.opID)
				}
				if in.opID == spec.op.ID {
					return fmt.Errorf("qep: operator %d consumes itself", spec.op.ID)
				}
				// Multiple consumers are legal: a shared common subexpression
				// (TEMP) makes the plan a DAG.
				pp.plan.Link(spec.op, in.kind, child, nil, in.rows, in.columns)
				continue
			}
			obj, ok := pp.plan.Objects[in.objName]
			if !ok {
				// Objects may be referenced before (or without) a Base
				// Objects section; register a stub.
				obj = pp.plan.AddObject(&BaseObject{Name: in.objName, Type: "TABLE", Cardinality: in.rows})
			}
			pp.plan.Link(spec.op, in.kind, nil, obj, in.rows, in.columns)
		}
	}
	return pp.plan.Resolve()
}

// cutKey matches `key: value` (and `key : value`), returning the trimmed
// value.
func cutKey(line, key string) (string, bool) {
	if !strings.HasPrefix(line, key) {
		return "", false
	}
	rest := strings.TrimSpace(line[len(key):])
	if !strings.HasPrefix(rest, ":") {
		return "", false
	}
	return strings.TrimSpace(rest[1:]), true
}

func parseNum(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(s), 64)
}

// parseColumns accepts both the stream form "+A+B+C" and the comma form
// "A,B,C".
func parseColumns(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var parts []string
	if strings.HasPrefix(s, "+") {
		parts = strings.Split(strings.TrimPrefix(s, "+"), "+")
	} else {
		parts = strings.Split(s, ",")
	}
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
