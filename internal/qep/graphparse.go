package qep

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// ParseGraph parses the classic ASCII plan-graph rendering (the paper's
// Figure 1, the output of Render) back into a Plan. The graph form carries
// less information than the Plan Details section — no CPU costs, arguments,
// predicates or column lists — so the resulting plan is structural: operator
// types, numbers, cardinalities, cumulative and I/O costs, base objects and
// the tree shape. Join children are assigned outer/inner streams in
// left-to-right order, as DB2 draws them.
//
// The parser is geometric: it locates operator cells by their "( n)" number
// line, attaches the surrounding cardinality/name/cost lines by column
// proximity, finds base-object cells among the remaining name tokens, and
// recovers edges from the /, | and \ connector characters between a parent
// cell's bottom line and its children's top lines.
func ParseGraph(id, text string) (*Plan, error) {
	gp := &graphParser{}
	if err := gp.tokenize(text); err != nil {
		return nil, err
	}
	if err := gp.findOperatorCells(); err != nil {
		return nil, err
	}
	gp.findObjectCells()
	if len(gp.cells) == 0 {
		return nil, fmt.Errorf("qep: graph contains no operator cells")
	}
	if err := gp.connect(); err != nil {
		return nil, err
	}
	return gp.build(id)
}

// gtoken is one lexical token of the graph with its position.
type gtoken struct {
	row, start, end int
	text            string
	used            bool
}

func (t *gtoken) center() int { return (t.start + t.end) / 2 }

type gcellKind uint8

const (
	opCellKind gcellKind = iota
	objCellKind
)

// gcell is one recognized cell (operator or base object).
type gcell struct {
	kind    gcellKind
	id      int    // operator number (op cells)
	name    string // operator type with modifier prefix, or object name
	card    float64
	cost    float64
	io      float64
	topRow  int
	botRow  int
	col     int // center column
	parent  *gcell
	kids    []*gcell
	opRef   *Operator
	objName string
}

type graphParser struct {
	rows   [][]*gtoken
	byRow  map[int][]*gtoken
	cells  []*gcell
	conns  []*gtoken // connector tokens / | \
	idRe   *regexp.Regexp
	tokRe  *regexp.Regexp
	nameRe *regexp.Regexp
}

func (gp *graphParser) tokenize(text string) error {
	gp.idRe = regexp.MustCompile(`^\(\s*\d+\)$`)
	gp.tokRe = regexp.MustCompile(`\(\s*\d+\)|[/|\\]|[^\s/|\\()]+`)
	gp.nameRe = regexp.MustCompile(`^[<>^]?[A-Za-z_][A-Za-z0-9_.$#]*$`)
	lines := strings.Split(text, "\n")
	gp.byRow = make(map[int][]*gtoken)
	for r, line := range lines {
		for _, loc := range gp.tokRe.FindAllStringIndex(line, -1) {
			tok := &gtoken{row: r, start: loc[0], end: loc[1], text: line[loc[0]:loc[1]]}
			if tok.text == "/" || tok.text == "|" || tok.text == "\\" {
				gp.conns = append(gp.conns, tok)
				continue
			}
			gp.byRow[r] = append(gp.byRow[r], tok)
		}
	}
	return nil
}

// closestToken finds the unused token on row nearest to column col, within
// a tolerance window.
func (gp *graphParser) closestToken(row, col, tolerance int) *gtoken {
	var best *gtoken
	bestDist := tolerance + 1
	for _, t := range gp.byRow[row] {
		if t.used {
			continue
		}
		d := t.center() - col
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			bestDist = d
			best = t
		}
	}
	return best
}

func (gp *graphParser) findOperatorCells() error {
	seen := make(map[int]bool)
	for row, toks := range gp.byRow {
		for _, t := range toks {
			if !gp.idRe.MatchString(t.text) {
				continue
			}
			idText := strings.Trim(t.text, "() \t")
			opID, err := strconv.Atoi(idText)
			if err != nil {
				continue
			}
			if seen[opID] {
				return fmt.Errorf("qep: graph repeats operator number %d", opID)
			}
			seen[opID] = true
			t.used = true
			col := t.center()
			cell := &gcell{kind: opCellKind, id: opID, col: col, topRow: row - 2, botRow: row + 2}

			nameTok := gp.closestToken(row-1, col, 12)
			if nameTok == nil || !gp.nameRe.MatchString(nameTok.text) {
				return fmt.Errorf("qep: operator %d has no name line above its number", opID)
			}
			nameTok.used = true
			cell.name = nameTok.text

			if cardTok := gp.closestToken(row-2, col, 12); cardTok != nil {
				if f, err := strconv.ParseFloat(cardTok.text, 64); err == nil {
					cardTok.used = true
					cell.card = f
				}
			}
			if costTok := gp.closestToken(row+1, col, 12); costTok != nil {
				if f, err := strconv.ParseFloat(costTok.text, 64); err == nil {
					costTok.used = true
					cell.cost = f
				}
			}
			if ioTok := gp.closestToken(row+2, col, 12); ioTok != nil {
				if f, err := strconv.ParseFloat(ioTok.text, 64); err == nil {
					ioTok.used = true
					cell.io = f
				}
			}
			gp.cells = append(gp.cells, cell)
		}
	}
	return nil
}

// findObjectCells interprets the remaining name-like tokens as base-object
// cells (two lines: cardinality above name).
func (gp *graphParser) findObjectCells() {
	for row, toks := range gp.byRow {
		for _, t := range toks {
			if t.used || !gp.nameRe.MatchString(t.text) {
				continue
			}
			// Numeric-looking words were already filtered by nameRe; a name
			// token here is an object label.
			t.used = true
			cell := &gcell{
				kind:   objCellKind,
				name:   t.text,
				col:    t.center(),
				topRow: row - 1,
				botRow: row,
			}
			if cardTok := gp.closestToken(row-1, t.center(), 12); cardTok != nil {
				if f, err := strconv.ParseFloat(cardTok.text, 64); err == nil {
					cardTok.used = true
					cell.card = f
				} else {
					cell.topRow = row
				}
			} else {
				cell.topRow = row
			}
			gp.cells = append(gp.cells, cell)
		}
	}
}

// connect recovers parent/child edges from the connector characters.
func (gp *graphParser) connect() error {
	for _, conn := range gp.conns {
		child := gp.cellWithTopRow(conn.row+1, conn.start)
		if child == nil {
			return fmt.Errorf("qep: dangling connector %q at row %d col %d", conn.text, conn.row, conn.start)
		}
		parent := gp.parentForConnector(conn)
		if parent == nil {
			return fmt.Errorf("qep: connector %q at row %d col %d has no parent cell", conn.text, conn.row, conn.start)
		}
		if parent == child {
			return fmt.Errorf("qep: connector links cell to itself")
		}
		child.parent = parent
		parent.kids = append(parent.kids, child)
	}
	// Order each parent's children left to right.
	for _, c := range gp.cells {
		kids := c.kids
		for i := range kids {
			for j := i + 1; j < len(kids); j++ {
				if kids[j].col < kids[i].col {
					kids[i], kids[j] = kids[j], kids[i]
				}
			}
		}
	}
	return nil
}

func (gp *graphParser) cellWithTopRow(row, col int) *gcell {
	var best *gcell
	bestDist := 1 << 30
	for _, c := range gp.cells {
		if c.topRow != row {
			continue
		}
		d := c.col - col
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			bestDist = d
			best = c
		}
	}
	return best
}

// parentForConnector picks the operator cell whose bottom line sits just
// above the connector row, respecting the connector's direction.
func (gp *graphParser) parentForConnector(conn *gtoken) *gcell {
	var best *gcell
	bestDist := 1 << 30
	for _, c := range gp.cells {
		if c.kind != opCellKind || c.botRow != conn.row-1 {
			continue
		}
		diff := c.col - conn.start
		switch conn.text {
		case "/":
			if diff <= 0 {
				continue // parent must be to the right of a '/'
			}
		case "\\":
			if diff >= 0 {
				continue // parent must be to the left of a '\'
			}
		}
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDist {
			bestDist = diff
			best = c
		}
	}
	return best
}

// build assembles the Plan from the connected cells.
func (gp *graphParser) build(id string) (*Plan, error) {
	p := NewPlan(id)
	for _, c := range gp.cells {
		if c.kind != opCellKind {
			continue
		}
		op := &Operator{
			ID:          c.id,
			TotalCost:   c.cost,
			IOCost:      c.io,
			Cardinality: c.card,
			Args:        map[string]string{},
		}
		name := c.name
		switch {
		case strings.HasPrefix(name, ">"):
			op.JoinMod = LeftOuterJoin
			name = name[1:]
		case strings.HasPrefix(name, "<"):
			op.JoinMod = RightOuterJoin
			name = name[1:]
		case strings.HasPrefix(name, "^"):
			op.JoinMod = EarlyOutJoin
			name = name[1:]
		}
		op.Type = name
		if err := p.AddOperator(op); err != nil {
			return nil, err
		}
		c.opRef = op
	}
	for _, c := range gp.cells {
		if c.kind != objCellKind {
			continue
		}
		obj := p.AddObject(&BaseObject{Name: c.name, Type: "TABLE", Cardinality: c.card})
		c.objName = obj.Name
	}
	// Wire edges.
	for _, parent := range gp.cells {
		if parent.kind != opCellKind {
			continue
		}
		for i, child := range parent.kids {
			kind := GeneralStream
			if parent.opRef.IsJoin() || len(parent.kids) > 1 {
				if i == 0 {
					kind = OuterStream
				} else {
					kind = InnerStream
				}
			}
			if child.kind == opCellKind {
				p.Link(parent.opRef, kind, child.opRef, nil, child.card, nil)
			} else {
				p.Link(parent.opRef, kind, nil, p.Objects[child.objName], child.card, nil)
			}
		}
	}
	if err := p.Resolve(); err != nil {
		return nil, err
	}
	p.TotalCost = p.Root.TotalCost
	p.Source = ""
	return p, nil
}
