// Package qep models DB2-style query execution plans (QEPs): a tree of
// LOLEPOPs (LOw LEvel Plan OPerators) with costs, cardinalities and typed
// input streams, plus the base objects (tables, indexes) the plan touches.
//
// The package parses and writes the OptImatch explain format (OEF), a
// faithful subset of IBM db2exfmt output: a header with statement text and
// total cost, a "Plan Details" section with one block per operator carrying
// its properties, arguments, predicates and input streams, and a "Base
// Objects" section with object statistics. It can also render the
// Figure-1-style ASCII plan graph for human consumption.
package qep

import (
	"fmt"
	"sort"
	"strings"
)

// StreamKind classifies an operator input stream. DB2 distinguishes the
// outer (left) and inner (right) inputs of join operators from the generic
// input of unary operators.
type StreamKind uint8

// Stream kinds.
const (
	GeneralStream StreamKind = iota
	OuterStream
	InnerStream
)

// String returns the OEF spelling of the stream kind.
func (k StreamKind) String() string {
	switch k {
	case OuterStream:
		return "OUTER"
	case InnerStream:
		return "INNER"
	default:
		return "GENERAL"
	}
}

// ParseStreamKind parses the OEF spelling.
func ParseStreamKind(s string) (StreamKind, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "OUTER":
		return OuterStream, nil
	case "INNER":
		return InnerStream, nil
	case "GENERAL", "":
		return GeneralStream, nil
	default:
		return GeneralStream, fmt.Errorf("qep: unknown stream type %q", s)
	}
}

// JoinModifier is the outer-join marker rendered as a prefix symbol on the
// operator name in plan graphs ('>' left outer, '<' right outer, '^' early
// out, per the paper's Figure 7).
type JoinModifier uint8

// Join modifiers.
const (
	InnerJoin JoinModifier = iota
	LeftOuterJoin
	RightOuterJoin
	EarlyOutJoin
)

// Prefix returns the plan-graph prefix symbol ("" for a plain operator).
func (m JoinModifier) Prefix() string {
	switch m {
	case LeftOuterJoin:
		return ">"
	case RightOuterJoin:
		return "<"
	case EarlyOutJoin:
		return "^"
	default:
		return ""
	}
}

// Description returns the OEF modifier line text.
func (m JoinModifier) Description() string {
	switch m {
	case LeftOuterJoin:
		return "Left Outer Join"
	case RightOuterJoin:
		return "Right Outer Join"
	case EarlyOutJoin:
		return "Early Out Join"
	default:
		return ""
	}
}

// Input is one input stream of an operator: either another operator or a
// base object, never both.
type Input struct {
	Kind    StreamKind
	Op      *Operator   // non-nil for an operator input
	Obj     *BaseObject // non-nil for a base object input
	Rows    float64     // estimated rows flowing through the stream
	Columns []string    // column names carried by the stream
}

// Operator is one LOLEPOP.
type Operator struct {
	ID          int
	Type        string // NLJOIN, HSJOIN, MSJOIN, TBSCAN, IXSCAN, FETCH, SORT, GRPBY, TEMP, RETURN, ...
	JoinMod     JoinModifier
	TotalCost   float64 // cumulative total cost (self + all inputs)
	IOCost      float64 // cumulative I/O cost
	CPUCost     float64 // cumulative CPU cost
	FirstRow    float64 // cumulative first-row cost
	Buffers     float64 // estimated bufferpool buffers
	Cardinality float64 // estimated rows flowing out
	Args        map[string]string
	Predicates  []string
	Inputs      []Input
	// Parent is the first consumer; Parents lists all of them. Plans are
	// trees except for shared common subexpressions (a TEMP with multiple
	// consumers, the paper's Section 2.2 ambiguity example), which make the
	// plan a DAG.
	Parent  *Operator
	Parents []*Operator
}

// Outer returns the outer input operator, or nil.
func (o *Operator) Outer() *Operator { return o.inputOp(OuterStream) }

// Inner returns the inner input operator, or nil.
func (o *Operator) Inner() *Operator { return o.inputOp(InnerStream) }

func (o *Operator) inputOp(kind StreamKind) *Operator {
	for _, in := range o.Inputs {
		if in.Kind == kind && in.Op != nil {
			return in.Op
		}
	}
	return nil
}

// InputOps returns all operator inputs in stream order.
func (o *Operator) InputOps() []*Operator {
	var out []*Operator
	for _, in := range o.Inputs {
		if in.Op != nil {
			out = append(out, in.Op)
		}
	}
	return out
}

// Object returns the base object this operator reads (for scans/fetches), or
// nil.
func (o *Operator) Object() *BaseObject {
	for _, in := range o.Inputs {
		if in.Obj != nil {
			return in.Obj
		}
	}
	return nil
}

// SelfCost is the operator's own cost: its cumulative cost minus the
// cumulative costs of its operator inputs. This is the paper's
// hasTotalCostIncrease derived property.
func (o *Operator) SelfCost() float64 {
	c := o.TotalCost
	for _, in := range o.Inputs {
		if in.Op != nil {
			c -= in.Op.TotalCost
		}
	}
	if c < 0 {
		return 0
	}
	return c
}

// IsJoin reports whether the operator is any join method.
func (o *Operator) IsJoin() bool {
	switch o.Type {
	case "NLJOIN", "HSJOIN", "MSJOIN", "ZZJOIN":
		return true
	}
	return false
}

// Class buckets the operator type for coarse pattern matching ("type JOIN"
// in the paper's Pattern B means any join method).
func (o *Operator) Class() string {
	switch {
	case o.IsJoin():
		return "JOIN"
	case o.Type == "TBSCAN" || o.Type == "IXSCAN":
		return "SCAN"
	case o.Type == "SORT":
		return "SORT"
	case o.Type == "GRPBY":
		return "AGGREGATION"
	default:
		return o.Type
	}
}

// DisplayName is the prefixed name shown in plan graphs, e.g. ">HSJOIN".
func (o *Operator) DisplayName() string { return o.JoinMod.Prefix() + o.Type }

// BaseObject is a table, index or other schema object referenced by a plan.
type BaseObject struct {
	Name        string
	Type        string // TABLE, INDEX, MQT, VIEW
	Cardinality float64
	Columns     []string
}

// Plan is a complete query execution plan.
type Plan struct {
	ID        string // statement identifier, e.g. "Q42"
	Statement string // SQL text (may be multi-line)
	TotalCost float64
	Root      *Operator
	Operators map[int]*Operator
	Objects   map[string]*BaseObject
	Source    string // the raw explain text this plan was parsed from, if any
}

// NewPlan returns an empty plan with initialized maps.
func NewPlan(id string) *Plan {
	return &Plan{
		ID:        id,
		Operators: make(map[int]*Operator),
		Objects:   make(map[string]*BaseObject),
	}
}

// AddOperator registers op; it returns an error on a duplicate ID.
func (p *Plan) AddOperator(op *Operator) error {
	if _, dup := p.Operators[op.ID]; dup {
		return fmt.Errorf("qep: duplicate operator id %d", op.ID)
	}
	p.Operators[op.ID] = op
	return nil
}

// AddObject registers obj, returning the existing object when the name was
// already present.
func (p *Plan) AddObject(obj *BaseObject) *BaseObject {
	if existing, ok := p.Objects[obj.Name]; ok {
		return existing
	}
	p.Objects[obj.Name] = obj
	return obj
}

// Ops returns the plan's operators sorted by ID.
func (p *Plan) Ops() []*Operator {
	out := make([]*Operator, 0, len(p.Operators))
	for _, op := range p.Operators {
		out = append(out, op)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumOps reports the number of LOLEPOPs in the plan.
func (p *Plan) NumOps() int { return len(p.Operators) }

// Link wires child (operator or object) as an input of parent and records
// the consumer. Exactly one of childOp/childObj must be non-nil. Linking the
// same child under several parents models a shared common subexpression.
func (p *Plan) Link(parent *Operator, kind StreamKind, childOp *Operator, childObj *BaseObject, rows float64, cols []string) {
	parent.Inputs = append(parent.Inputs, Input{Kind: kind, Op: childOp, Obj: childObj, Rows: rows, Columns: cols})
	if childOp != nil {
		if childOp.Parent == nil {
			childOp.Parent = parent
		}
		childOp.Parents = append(childOp.Parents, parent)
	}
}

// Resolve finalizes the plan after construction: it determines the root
// (the unique operator without a parent) and validates tree shape.
func (p *Plan) Resolve() error {
	if len(p.Operators) == 0 {
		return fmt.Errorf("qep: plan %s has no operators", p.ID)
	}
	var roots []*Operator
	for _, op := range p.Ops() {
		if len(op.Parents) == 0 {
			roots = append(roots, op)
		}
	}
	if len(roots) != 1 {
		ids := make([]int, len(roots))
		for i, r := range roots {
			ids[i] = r.ID
		}
		return fmt.Errorf("qep: plan %s has %d roots %v, want exactly 1", p.ID, len(roots), ids)
	}
	p.Root = roots[0]
	return nil
}

// Walk visits every operator exactly once in pre-order from the root
// (shared subexpressions are visited at their first occurrence).
func (p *Plan) Walk(fn func(*Operator)) {
	seen := make(map[int]bool, len(p.Operators))
	var rec func(op *Operator)
	rec = func(op *Operator) {
		if seen[op.ID] {
			return
		}
		seen[op.ID] = true
		fn(op)
		for _, in := range op.Inputs {
			if in.Op != nil {
				rec(in.Op)
			}
		}
	}
	if p.Root != nil {
		rec(p.Root)
	}
}

// Descendants returns every operator strictly below op (pre-order, each
// operator once even when reachable along several consumer edges).
func Descendants(op *Operator) []*Operator {
	var out []*Operator
	seen := make(map[int]bool)
	var rec func(o *Operator)
	rec = func(o *Operator) {
		for _, in := range o.Inputs {
			if in.Op != nil {
				if seen[in.Op.ID] {
					continue
				}
				seen[in.Op.ID] = true
				out = append(out, in.Op)
				rec(in.Op)
			}
		}
	}
	rec(op)
	return out
}

// Validate performs structural sanity checks beyond Resolve: every non-root
// operator is reachable from the root, stream kinds are consistent for
// joins, and IDs are positive.
func (p *Plan) Validate() error {
	if p.Root == nil {
		if err := p.Resolve(); err != nil {
			return err
		}
	}
	reached := make(map[int]bool)
	p.Walk(func(op *Operator) { reached[op.ID] = true })
	for id := range p.Operators {
		if id <= 0 {
			return fmt.Errorf("qep: plan %s: non-positive operator id %d", p.ID, id)
		}
		if !reached[id] {
			return fmt.Errorf("qep: plan %s: operator %d unreachable from root", p.ID, id)
		}
	}
	for _, op := range p.Operators {
		if op.IsJoin() {
			var outer, inner int
			for _, in := range op.Inputs {
				switch in.Kind {
				case OuterStream:
					outer++
				case InnerStream:
					inner++
				}
			}
			if outer != 1 || inner != 1 {
				return fmt.Errorf("qep: plan %s: join operator %d has %d outer / %d inner inputs", p.ID, op.ID, outer, inner)
			}
		}
	}
	return nil
}
