// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 3) against the synthetic workload substrate:
//
//	Figure 9  — search time vs workload size (100..1000 QEP files)
//	Figure 10 — per-plan search time vs number of LOLEPOPs
//	Figure 11 — scan time vs number of recommendations in the knowledge base
//	Figure 12 — comparative user study: manual search vs OptImatch
//	Table 1   — precision of manual search vs OptImatch
//
// plus three ablation studies for design choices called out in DESIGN.md
// (triple-store indexes, BGP join reordering, derived closure predicates).
//
// Every experiment takes a Scale knob so the same code serves the full
// reproduction (cmd/experiments), the Go benchmarks (bench_test.go) and the
// unit tests.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"optimatch/internal/core"
	"optimatch/internal/kb"
	"optimatch/internal/pattern"
	"optimatch/internal/transform"
)

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
	printRow(t.Columns)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// patternSet returns the paper's three experimental patterns in order
// (#1 = Pattern A, #2 = Pattern B, #3 = Pattern C; Section 3.1).
func patternSet() ([]string, []*pattern.Compiled, error) {
	names := []string{"Pattern #1", "Pattern #2", "Pattern #3"}
	ps := []*pattern.Pattern{pattern.A(), pattern.B(), pattern.C()}
	out := make([]*pattern.Compiled, len(ps))
	for i, p := range ps {
		c, err := pattern.Compile(p)
		if err != nil {
			return nil, nil, err
		}
		out[i] = c
	}
	return names, out, nil
}

// engineOver builds an engine over pre-transformed plans.
func engineOver(results []*transform.Result, workers int) (*core.Engine, error) {
	opts := []core.Option{}
	if workers > 0 {
		opts = append(opts, core.WithWorkers(workers))
	}
	e := core.New(opts...)
	for _, r := range results {
		if err := e.LoadResult(r); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// timeIt runs fn reps times and returns the median duration. A garbage
// collection runs first so allocation debt from setup (plan generation,
// transformation) is not charged to the measurement.
func timeIt(reps int, fn func() error) (time.Duration, error) {
	if reps < 1 {
		reps = 1
	}
	runtime.GC()
	durations := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		durations = append(durations, time.Since(start))
	}
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	return durations[len(durations)/2], nil
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6)
}

func secs(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// variantKB builds a knowledge base with n entries by cycling the four
// canonical patterns with perturbed thresholds, the way an organization's
// experts accumulate near-variants over time (Figure 11's 1..250
// recommendations).
func variantKB(n int) (*kb.KnowledgeBase, error) {
	k := kb.New()
	for i := 0; i < n; i++ {
		var p *pattern.Pattern
		var rec kb.Recommendation
		switch i % 4 {
		case 0:
			b := pattern.NewBuilder(fmt.Sprintf("variant-a-%d", i), "NLJOIN over large inner scan (variant)")
			top := b.Pop("NLJOIN").Alias("TOP")
			outer := b.Pop(pattern.TypeAny)
			inner := b.Pop("TBSCAN").Alias("SCAN3")
			base := b.Pop(pattern.TypeBaseObj).Alias("BASE4")
			top.OuterChild(outer)
			top.InnerChild(inner)
			outer.Where("hasEstimateCardinality", ">", 1+i%5)
			inner.Where("hasEstimateCardinality", ">", 100+10*(i%7))
			inner.Child(base)
			var err error
			p, err = b.Build()
			if err != nil {
				return nil, err
			}
			rec = kb.Recommendation{Title: "Index inner table", Category: "INDEX",
				Template: "Create index on @BASE4.NAME (@BASE4(INPUT)) for @TOP."}
		case 1:
			b := pattern.NewBuilder(fmt.Sprintf("variant-b-%d", i), "LOJ on both sides (variant)")
			top := b.Pop(pattern.TypeJoin).Alias("TOP")
			l := b.Pop(pattern.TypeJoin).Alias("L")
			r := b.Pop(pattern.TypeJoin).Alias("R")
			top.OuterDescendant(l)
			top.InnerDescendant(r)
			l.Where("hasJoinType", "=", "LEFT_OUTER")
			r.Where("hasJoinType", "=", "LEFT_OUTER")
			top.Where("hasTotalCost", ">", float64(i%9)*10)
			var err error
			p, err = b.Build()
			if err != nil {
				return nil, err
			}
			rec = kb.Recommendation{Title: "Rewrite LOJ join", Category: "REWRITE",
				Template: "Rewrite @TOP combining @L and @R as ((T1 LOJ T2) JOIN T3) LOJ T4."}
		case 2:
			b := pattern.NewBuilder(fmt.Sprintf("variant-c-%d", i), "cardinality collapse (variant)")
			scan := b.Pop(pattern.TypeScan).Alias("TOP")
			base := b.Pop(pattern.TypeBaseObj).Alias("BASE2")
			scan.Where("hasEstimateCardinality", "<", 0.001/float64(1+i%4))
			base.Where("hasEstimateCardinality", ">", float64(1000000*(1+i%3)))
			scan.Child(base)
			var err error
			p, err = b.Build()
			if err != nil {
				return nil, err
			}
			rec = kb.Recommendation{Title: "Column group statistics", Category: "STATISTICS",
				Template: "Create CGS on @BASE2.NAME predicate columns (@TOP(PREDICATE))."}
		default:
			b := pattern.NewBuilder(fmt.Sprintf("variant-d-%d", i), "sort spill (variant)")
			srt := b.Pop("SORT").Alias("TOP")
			in := b.Pop(pattern.TypeAny).Alias("IN2")
			srt.Child(in)
			in.WhereRef("hasIOCost", "<", srt, "hasIOCost")
			srt.Where("hasTotalCost", ">", float64(i%11))
			var err error
			p, err = b.Build()
			if err != nil {
				return nil, err
			}
			rec = kb.Recommendation{Title: "Increase sort memory", Category: "CONFIG",
				Template: "Raise SORTHEAP: @TOP spills (@TOP.IOCOST vs @IN2.IOCOST)."}
		}
		if _, err := k.Add(p, rec); err != nil {
			return nil, err
		}
	}
	return k, nil
}
