package experiments

import (
	"fmt"
	"strings"
	"time"

	"optimatch/internal/core"
	"optimatch/internal/pattern"
	"optimatch/internal/rdf"
	"optimatch/internal/sparql"
	"optimatch/internal/transform"
	"optimatch/internal/workload"
)

// AblationConfig parameterizes the ablation studies.
type AblationConfig struct {
	Seed     int64
	NumPlans int // default 100
	MinOps   int
	MaxOps   int
	Reps     int // default 3
	Workers  int
}

func (c AblationConfig) withDefaults() AblationConfig {
	if c.NumPlans == 0 {
		c.NumPlans = 100
	}
	if c.MinOps == 0 {
		c.MinOps = 60
	}
	if c.MaxOps == 0 {
		c.MaxOps = 240
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
	return c
}

func (c AblationConfig) workloadResults() ([]*transform.Result, error) {
	w, err := workload.Generate(workload.Config{
		Seed: c.Seed, NumPlans: c.NumPlans, MinOps: c.MinOps, MaxOps: c.MaxOps,
		InjectA: c.NumPlans * 15 / 100, InjectB: c.NumPlans * 12 / 100, InjectC: c.NumPlans * 18 / 100,
	})
	if err != nil {
		return nil, err
	}
	return transform.TransformAll(w.Plans), nil
}

// AblationResult is one on/off comparison.
type AblationResult struct {
	Name     string
	Baseline time.Duration // optimization ON
	Ablated  time.Duration // optimization OFF
}

// Speedup is ablated/baseline: how much slower the system is without the
// optimization.
func (a AblationResult) Speedup() float64 {
	if a.Baseline <= 0 {
		return 0
	}
	return a.Ablated.Seconds() / a.Baseline.Seconds()
}

// Table renders a set of ablations.
func AblationTable(results []AblationResult) *Table {
	t := &Table{
		Title:   "Ablations: design choices from DESIGN.md",
		Columns: []string{"ablation", "with [ms]", "without [ms]", "slowdown"},
	}
	for _, a := range results {
		t.Rows = append(t.Rows, []string{
			a.Name, ms(a.Baseline), ms(a.Ablated), fmt.Sprintf("%.1fx", a.Speedup()),
		})
	}
	return t
}

// AblationIndexes times indexed vs full-scan triple matching on the
// workload's RDF graphs: the dictionary-encoded SPO/POS/OSP indexes vs a
// naive scan, for the bound-predicate lookups the matcher issues constantly.
func AblationIndexes(cfg AblationConfig) (AblationResult, error) {
	cfg = cfg.withDefaults()
	results, err := cfg.workloadResults()
	if err != nil {
		return AblationResult{}, err
	}
	pred := rdf.IRI(transform.PredPopType)
	val := rdf.String("NLJOIN")

	probe := func(scan bool) func() error {
		return func() error {
			count := 0
			for _, r := range results {
				d := r.Graph.Dict()
				pid, oid := d.Lookup(pred), d.Lookup(val)
				if pid == rdf.NoID {
					continue
				}
				if scan {
					r.Graph.MatchScan(rdf.NoID, pid, oid, func(_, _, _ rdf.ID) bool { count++; return true })
				} else {
					r.Graph.Match(rdf.NoID, pid, oid, func(_, _, _ rdf.ID) bool { count++; return true })
				}
			}
			if count == 0 {
				return fmt.Errorf("ablation probe matched nothing")
			}
			return nil
		}
	}
	base, err := timeIt(cfg.Reps, probe(false))
	if err != nil {
		return AblationResult{}, err
	}
	abl, err := timeIt(cfg.Reps, probe(true))
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{Name: "triple-store indexes", Baseline: base, Ablated: abl}, nil
}

// AblationReorder times pattern matching with and without the
// selectivity-based BGP join-order heuristic.
func AblationReorder(cfg AblationConfig) (AblationResult, error) {
	cfg = cfg.withDefaults()
	results, err := cfg.workloadResults()
	if err != nil {
		return AblationResult{}, err
	}
	_, compiled, err := patternSet()
	if err != nil {
		return AblationResult{}, err
	}
	run := func(opts sparql.ExecOptions) (time.Duration, error) {
		e := core.New(core.WithWorkers(maxInt(cfg.Workers, 1)), core.WithExecOptions(opts))
		for _, r := range results {
			if err := e.LoadResult(r); err != nil {
				return 0, err
			}
		}
		return timeIt(cfg.Reps, func() error {
			for _, c := range compiled {
				if _, err := e.FindCompiled(c); err != nil {
					return err
				}
			}
			return nil
		})
	}
	base, err := run(sparql.ExecOptions{})
	if err != nil {
		return AblationResult{}, err
	}
	abl, err := run(sparql.ExecOptions{DisableReorder: true})
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{Name: "BGP join reordering", Baseline: base, Ablated: abl}, nil
}

// reifiedDescendantQuery is Pattern B expressed WITHOUT the derived
// hasChildPop closure predicates: descendants are reached by repeating the
// two-hop reified stream traversal. Semantically equivalent, structurally
// what a system without derived predicates would have to evaluate.
const reifiedDescendantQuery = transform.Prologue + `
SELECT DISTINCT ?pop1 AS ?TOP ?pop2 AS ?L ?pop3 AS ?R
WHERE {
  ?pop1 preduri:hasPopClass "JOIN" .
  ?pop1 preduri:hasOuterInputStream/preduri:hasOuterInputStream/((preduri:hasOuterInputStream|preduri:hasInnerInputStream|preduri:hasInputStream)/(preduri:hasOuterInputStream|preduri:hasInnerInputStream|preduri:hasInputStream))* ?pop2 .
  ?pop1 preduri:hasInnerInputStream/preduri:hasInnerInputStream/((preduri:hasOuterInputStream|preduri:hasInnerInputStream|preduri:hasInputStream)/(preduri:hasOuterInputStream|preduri:hasInnerInputStream|preduri:hasInputStream))* ?pop3 .
  ?pop2 preduri:hasPopClass "JOIN" .
  ?pop3 preduri:hasPopClass "JOIN" .
  ?pop2 preduri:hasJoinType "LEFT_OUTER" .
  ?pop3 preduri:hasJoinType "LEFT_OUTER" .
}
ORDER BY ?pop1
`

// AblationDerivedPredicates compares Pattern B's descendant search through
// the derived hasChildPop closure predicates against the equivalent query
// over the raw reified stream edges, verifying both find the same plans.
func AblationDerivedPredicates(cfg AblationConfig) (AblationResult, error) {
	cfg = cfg.withDefaults()
	results, err := cfg.workloadResults()
	if err != nil {
		return AblationResult{}, err
	}
	e := core.New(core.WithWorkers(maxInt(cfg.Workers, 1)))
	for _, r := range results {
		if err := e.LoadResult(r); err != nil {
			return AblationResult{}, err
		}
	}
	cB, err := pattern.Compile(pattern.B())
	if err != nil {
		return AblationResult{}, err
	}

	// Sanity: both formulations agree on the matched plan set.
	m1, err := e.FindCompiled(cB)
	if err != nil {
		return AblationResult{}, err
	}
	m2, err := e.FindSPARQL(reifiedDescendantQuery)
	if err != nil {
		return AblationResult{}, err
	}
	if !samePlanSet(m1, m2) {
		return AblationResult{}, fmt.Errorf("derived and reified descendant queries disagree: %d vs %d plans",
			len(planSet(m1)), len(planSet(m2)))
	}

	base, err := timeIt(cfg.Reps, func() error {
		_, err := e.FindCompiled(cB)
		return err
	})
	if err != nil {
		return AblationResult{}, err
	}
	abl, err := timeIt(cfg.Reps, func() error {
		_, err := e.FindSPARQL(reifiedDescendantQuery)
		return err
	})
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{Name: "derived hasChildPop closure predicates", Baseline: base, Ablated: abl}, nil
}

func planSet(ms []core.Match) map[string]bool {
	out := make(map[string]bool)
	for _, m := range ms {
		out[m.Plan.ID] = true
	}
	return out
}

func samePlanSet(a, b []core.Match) bool {
	sa, sb := planSet(a), planSet(b)
	if len(sa) != len(sb) {
		return false
	}
	for id := range sa {
		if !sb[id] {
			return false
		}
	}
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var _ = strings.TrimSpace
