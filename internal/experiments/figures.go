package experiments

import (
	"fmt"
	"time"

	"optimatch/internal/qep"
	"optimatch/internal/stats"
	"optimatch/internal/textsearch"
	"optimatch/internal/transform"
	"optimatch/internal/workload"
)

// Fig9Config parameterizes the workload-size scalability experiment.
type Fig9Config struct {
	Seed    int64
	Sizes   []int // cumulative bucket sizes; default 100..1000 step 100
	Reps    int   // repetitions per measurement; paper used 6
	MinOps  int
	MaxOps  int
	Workers int
}

func (c Fig9Config) withDefaults() Fig9Config {
	if len(c.Sizes) == 0 {
		for s := 100; s <= 1000; s += 100 {
			c.Sizes = append(c.Sizes, s)
		}
	}
	if c.Reps == 0 {
		c.Reps = 6
	}
	if c.MinOps == 0 {
		c.MinOps = 60
	}
	if c.MaxOps == 0 {
		c.MaxOps = 240
	}
	if c.Workers == 0 {
		// Single-threaded search by default: the scaling claim is about
		// work, and serial wall time measures work without scheduler noise.
		c.Workers = 1
	}
	return c
}

// Fig9Result holds the measured series.
type Fig9Result struct {
	Sizes    []int
	Patterns []string
	Times    [][]time.Duration // [pattern][size]
	Fits     []stats.Linear    // per pattern, seconds vs size
	Matches  [][]int           // [pattern][size] match counts (monotone)
}

// Figure9 measures pattern search time against growing workload sizes
// (paper Section 3.2.1). The buckets are cumulative prefixes of one
// generated workload, as in the paper; transformation happens once, outside
// the timed region, since the paper times the search.
func Figure9(cfg Fig9Config) (*Fig9Result, error) {
	cfg = cfg.withDefaults()
	maxSize := cfg.Sizes[len(cfg.Sizes)-1]
	// Pattern densities follow the paper's user-study rates (15/12/18 per
	// 100 plans).
	w, err := workload.Generate(workload.Config{
		Seed: cfg.Seed, NumPlans: maxSize, MinOps: cfg.MinOps, MaxOps: cfg.MaxOps,
		InjectA: maxSize * 15 / 100, InjectB: maxSize * 12 / 100, InjectC: maxSize * 18 / 100,
	})
	if err != nil {
		return nil, err
	}
	results := transform.TransformAll(w.Plans)

	names, compiled, err := patternSet()
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{Sizes: cfg.Sizes, Patterns: names}
	res.Times = make([][]time.Duration, len(names))
	res.Matches = make([][]int, len(names))
	for pi := range names {
		res.Times[pi] = make([]time.Duration, len(cfg.Sizes))
		res.Matches[pi] = make([]int, len(cfg.Sizes))
	}
	for si, size := range cfg.Sizes {
		eng, err := engineOver(results[:size], cfg.Workers)
		if err != nil {
			return nil, err
		}
		for pi, c := range compiled {
			matches, err := eng.FindCompiled(c)
			if err != nil {
				return nil, err
			}
			res.Matches[pi][si] = len(matches)
			d, err := timeIt(cfg.Reps, func() error {
				_, err := eng.FindCompiled(c)
				return err
			})
			if err != nil {
				return nil, err
			}
			res.Times[pi][si] = d
		}
	}
	// Linear fits: seconds vs workload size.
	xs := make([]float64, len(cfg.Sizes))
	for i, s := range cfg.Sizes {
		xs[i] = float64(s)
	}
	for pi := range names {
		ys := make([]float64, len(cfg.Sizes))
		for i, d := range res.Times[pi] {
			ys[i] = d.Seconds()
		}
		res.Fits = append(res.Fits, stats.LinearFit(xs, ys))
	}
	return res, nil
}

// Table renders the Figure 9 series.
func (r *Fig9Result) Table() *Table {
	t := &Table{
		Title:   "Figure 9: search time vs number of QEP files",
		Columns: []string{"QEP files"},
	}
	for _, p := range r.Patterns {
		t.Columns = append(t.Columns, p+" [s]")
	}
	for si, size := range r.Sizes {
		row := []string{fmt.Sprintf("%d", size)}
		for pi := range r.Patterns {
			row = append(row, secs(r.Times[pi][si]))
		}
		t.Rows = append(t.Rows, row)
	}
	for pi, p := range r.Patterns {
		t.Notes = append(t.Notes, fmt.Sprintf("%s: linear fit R^2 = %.3f, slope = %.3g s/QEP",
			p, r.Fits[pi].R2, r.Fits[pi].Slope))
	}
	return t
}

// Fig10Config parameterizes the plan-size experiment.
type Fig10Config struct {
	Seed          int64
	BucketTargets []int // op-count targets; default mirrors the paper's buckets
	PlansPerSize  int   // plans per bucket target; default 12
	Reps          int
	Workers       int
}

func (c Fig10Config) withDefaults() Fig10Config {
	if len(c.BucketTargets) == 0 {
		// Bucket centers for [0-50], [50-100], ..., [200-250] and [500-550];
		// buckets 250-500 are empty, matching the paper's bimodal workload.
		c.BucketTargets = []int{25, 75, 125, 175, 225, 525}
	}
	if c.PlansPerSize == 0 {
		c.PlansPerSize = 12
	}
	if c.Reps == 0 {
		c.Reps = 6
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	return c
}

// Fig10Result holds the per-bucket series.
type Fig10Result struct {
	Buckets  []string
	MeanOps  []float64
	Patterns []string
	PerPlan  [][]time.Duration // [pattern][bucket] mean per-plan time
	Fits     []stats.Linear    // ms vs ops
}

// Figure10 measures per-plan search time as a function of plan size
// (number of LOLEPOPs, paper Section 3.2.2).
func Figure10(cfg Fig10Config) (*Fig10Result, error) {
	cfg = cfg.withDefaults()
	var counts []int
	for _, t := range cfg.BucketTargets {
		for i := 0; i < cfg.PlansPerSize; i++ {
			counts = append(counts, t)
		}
	}
	w, err := workload.Generate(workload.Config{
		Seed: cfg.Seed, NumPlans: len(counts), OpCounts: counts,
		InjectA: len(counts) * 15 / 100, InjectB: len(counts) * 12 / 100, InjectC: len(counts) * 18 / 100,
	})
	if err != nil {
		return nil, err
	}
	results := transform.TransformAll(w.Plans)

	// Group by bucket target (plans were generated cycling the targets).
	groups := make(map[int][]*transform.Result)
	for i, r := range results {
		target := counts[i%len(counts)]
		groups[target] = append(groups[target], r)
	}

	names, compiled, err := patternSet()
	if err != nil {
		return nil, err
	}
	res := &Fig10Result{Patterns: names}
	res.PerPlan = make([][]time.Duration, len(names))
	for _, target := range cfg.BucketTargets {
		rs := groups[target]
		totalOps := 0
		for _, r := range rs {
			totalOps += r.Plan.NumOps()
		}
		meanOps := float64(totalOps) / float64(len(rs))
		res.Buckets = append(res.Buckets, fmt.Sprintf("~%d", target))
		res.MeanOps = append(res.MeanOps, meanOps)

		eng, err := engineOver(rs, cfg.Workers)
		if err != nil {
			return nil, err
		}
		for pi, c := range compiled {
			d, err := timeIt(cfg.Reps, func() error {
				_, err := eng.FindCompiled(c)
				return err
			})
			if err != nil {
				return nil, err
			}
			res.PerPlan[pi] = append(res.PerPlan[pi], d/time.Duration(len(rs)))
		}
	}
	for pi := range names {
		ys := make([]float64, len(res.MeanOps))
		for i, d := range res.PerPlan[pi] {
			ys[i] = float64(d.Microseconds()) / 1000.0
		}
		res.Fits = append(res.Fits, stats.LinearFit(res.MeanOps, ys))
	}
	return res, nil
}

// Table renders the Figure 10 series.
func (r *Fig10Result) Table() *Table {
	t := &Table{
		Title:   "Figure 10: per-plan search time vs number of LOLEPOPs",
		Columns: []string{"bucket", "mean ops"},
	}
	for _, p := range r.Patterns {
		t.Columns = append(t.Columns, p+" [ms/plan]")
	}
	for bi := range r.Buckets {
		row := []string{r.Buckets[bi], fmt.Sprintf("%.0f", r.MeanOps[bi])}
		for pi := range r.Patterns {
			row = append(row, ms(r.PerPlan[pi][bi]))
		}
		t.Rows = append(t.Rows, row)
	}
	for pi, p := range r.Patterns {
		t.Notes = append(t.Notes, fmt.Sprintf("%s: linear fit R^2 = %.3f, slope = %.4f ms/op",
			p, r.Fits[pi].R2, r.Fits[pi].Slope))
	}
	t.Notes = append(t.Notes, "buckets 250-500 are empty: the workload is bimodal, as in the paper")
	return t
}

// Fig11Config parameterizes the knowledge-base-size experiment.
type Fig11Config struct {
	Seed     int64
	NumPlans int   // default 1000 (the paper's workload size)
	KBSizes  []int // default 1, 10, 100, 250
	MinOps   int
	MaxOps   int
	Reps     int // default 1 (a full scan is already minutes at scale)
	Workers  int
}

func (c Fig11Config) withDefaults() Fig11Config {
	if c.NumPlans == 0 {
		c.NumPlans = 1000
	}
	if len(c.KBSizes) == 0 {
		c.KBSizes = []int{1, 10, 100, 250}
	}
	if c.MinOps == 0 {
		c.MinOps = 60
	}
	if c.MaxOps == 0 {
		c.MaxOps = 240
	}
	if c.Reps == 0 {
		c.Reps = 1
	}
	return c
}

// Fig11Result holds the measured series.
type Fig11Result struct {
	KBSizes []int
	Times   []time.Duration
	Fit     stats.Linear
}

// Figure11 measures the time to scan the whole workload against growing
// knowledge bases (paper Section 3.2.3): the routinized "run every expert
// pattern" use case.
func Figure11(cfg Fig11Config) (*Fig11Result, error) {
	cfg = cfg.withDefaults()
	w, err := workload.Generate(workload.Config{
		Seed: cfg.Seed, NumPlans: cfg.NumPlans, MinOps: cfg.MinOps, MaxOps: cfg.MaxOps,
		InjectA: cfg.NumPlans * 15 / 100, InjectB: cfg.NumPlans * 12 / 100, InjectC: cfg.NumPlans * 18 / 100,
		InjectD: cfg.NumPlans * 9 / 100,
	})
	if err != nil {
		return nil, err
	}
	results := transform.TransformAll(w.Plans)
	eng, err := engineOver(results, cfg.Workers)
	if err != nil {
		return nil, err
	}

	res := &Fig11Result{KBSizes: cfg.KBSizes}
	for _, n := range cfg.KBSizes {
		k, err := variantKB(n)
		if err != nil {
			return nil, err
		}
		d, err := timeIt(cfg.Reps, func() error {
			_, err := eng.RunKB(k)
			return err
		})
		if err != nil {
			return nil, err
		}
		res.Times = append(res.Times, d)
	}
	xs := make([]float64, len(cfg.KBSizes))
	ys := make([]float64, len(cfg.KBSizes))
	for i := range cfg.KBSizes {
		xs[i] = float64(cfg.KBSizes[i])
		ys[i] = res.Times[i].Seconds()
	}
	res.Fit = stats.LinearFit(xs, ys)
	return res, nil
}

// Table renders the Figure 11 series.
func (r *Fig11Result) Table() *Table {
	t := &Table{
		Title:   "Figure 11: workload scan time vs knowledge-base size",
		Columns: []string{"recommendations", "time [s]"},
	}
	for i, n := range r.KBSizes {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), secs(r.Times[i])})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("linear fit R^2 = %.3f, slope = %.3g s/recommendation",
		r.Fit.R2, r.Fit.Slope))
	return t
}

// Fig12Config parameterizes the comparative user study.
type Fig12Config struct {
	Seed     int64
	NumPlans int // default 100 (the paper's sample)
	MinOps   int
	MaxOps   int
	Reps     int
	Workers  int
}

func (c Fig12Config) withDefaults() Fig12Config {
	if c.NumPlans == 0 {
		c.NumPlans = 100
	}
	if c.MinOps == 0 {
		c.MinOps = 60
	}
	if c.MaxOps == 0 {
		c.MaxOps = 240
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	return c
}

// StudyRow is one pattern's outcome in the comparative study.
type StudyRow struct {
	Pattern         string
	TrueMatches     int
	ManualSeconds   float64 // modeled expert time (see textsearch docs)
	SearchSeconds   float64 // measured OptImatch search time alone
	ToolSeconds     float64 // measured search + pattern specification model
	Speedup         float64
	BaselineScanSec float64 // measured machine time of the grep baseline
	ManualPrecision float64 // Table 1 measure for the manual baseline
	ToolPrecision   float64 // Table 1 measure for OptImatch
	ManualMetrics   textsearch.Metrics
}

// Fig12Result covers both Figure 12 (time) and Table 1 (precision).
type Fig12Result struct {
	NumPlans int
	Rows     []StudyRow
}

// Figure12 reproduces the comparative user study (Sections 3.3): three
// patterns over a 100-QEP sample with the paper's true-match counts
// (15/12/18). Expert wall-clock time is modeled from the paper's published
// rates (humans are unavailable; see DESIGN.md); the baseline's *precision*
// is measured, not modeled, by running the grep-style searcher.
func Figure12(cfg Fig12Config) (*Fig12Result, error) {
	cfg = cfg.withDefaults()
	// Hard-form fractions calibrated so the deterministic baseline misses
	// approximately the paper's per-pattern rates (88% / 71% / 81%).
	w, err := workload.Generate(workload.Config{
		Seed: cfg.Seed, NumPlans: cfg.NumPlans, MinOps: cfg.MinOps, MaxOps: cfg.MaxOps,
		InjectA: cfg.NumPlans * 15 / 100, InjectB: cfg.NumPlans * 12 / 100, InjectC: cfg.NumPlans * 18 / 100,
		HardFractions: map[string]float64{
			workload.KeyA: 0.12,
			workload.KeyB: 0.28,
			workload.KeyC: 0.18,
		},
	})
	if err != nil {
		return nil, err
	}
	results := transform.TransformAll(w.Plans)
	eng, err := engineOver(results, cfg.Workers)
	if err != nil {
		return nil, err
	}
	texts := w.Texts()
	ids := make([]string, len(w.Plans))
	for i, p := range w.Plans {
		ids[i] = p.ID
	}

	names, compiled, err := patternSet()
	if err != nil {
		return nil, err
	}
	keys := []string{workload.KeyA, workload.KeyB, workload.KeyC}

	res := &Fig12Result{NumPlans: cfg.NumPlans}
	for pi, name := range names {
		key := keys[pi]

		// OptImatch: measured search time + modeled pattern-specification
		// overhead (the paper includes ~60 s of GUI time).
		searchTime, err := timeIt(cfg.Reps, func() error {
			_, err := eng.FindCompiled(compiled[pi])
			return err
		})
		if err != nil {
			return nil, err
		}
		matches, err := eng.FindCompiled(compiled[pi])
		if err != nil {
			return nil, err
		}
		toolPlans := make(map[string]bool)
		for _, m := range matches {
			toolPlans[m.Plan.ID] = true
		}
		toolMetrics := textsearch.Evaluate(ids, toolPlans, w.Truth[key])

		// Manual baseline: measured machine scan (for the record) and the
		// modeled expert wall-clock time.
		var predicted map[string]bool
		scanTime, err := timeIt(cfg.Reps, func() error {
			predicted = make(map[string]bool, len(texts))
			for id, text := range texts {
				predicted[id] = textsearch.Predict(key, text)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		manualMetrics := textsearch.Evaluate(ids, predicted, w.Truth[key])

		manualSec := textsearch.ExpertSecondsPerPlan * float64(cfg.NumPlans)
		toolSec := textsearch.PatternSpecSeconds + searchTime.Seconds()
		res.Rows = append(res.Rows, StudyRow{
			Pattern:         name,
			TrueMatches:     w.Truth.Count(key),
			ManualSeconds:   manualSec,
			SearchSeconds:   searchTime.Seconds(),
			ToolSeconds:     toolSec,
			Speedup:         manualSec / toolSec,
			BaselineScanSec: scanTime.Seconds(),
			ManualPrecision: manualMetrics.PaperPrecision(),
			ToolPrecision:   toolMetrics.PaperPrecision(),
			ManualMetrics:   manualMetrics,
		})
	}
	return res, nil
}

// TimeTable renders Figure 12 (the time comparison).
func (r *Fig12Result) TimeTable() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Figure 12: comparative study over %d QEPs (manual vs OptImatch)", r.NumPlans),
		Columns: []string{"pattern", "true matches", "manual (modeled) [s]", "OptImatch search [s]", "OptImatch total [s]", "speedup"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Pattern,
			fmt.Sprintf("%d", row.TrueMatches),
			fmt.Sprintf("%.0f", row.ManualSeconds),
			fmt.Sprintf("%.3f", row.SearchSeconds),
			fmt.Sprintf("%.1f", row.ToolSeconds),
			fmt.Sprintf("%.0fx", row.Speedup),
		})
	}
	t.Notes = append(t.Notes,
		"manual time modeled at 18 s/plan (paper: ~5 h for 1000 QEPs); OptImatch time = 60 s pattern specification + measured search",
	)
	return t
}

// PrecisionTable renders Table 1 (the precision comparison).
func (r *Fig12Result) PrecisionTable() *Table {
	t := &Table{
		Title:   "Table 1: precision for manual search (measured) vs OptImatch",
		Columns: []string{"pattern", "manual precision", "OptImatch precision", "missed files"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Pattern,
			fmt.Sprintf("%.0f%%", row.ManualPrecision*100),
			fmt.Sprintf("%.0f%%", row.ToolPrecision*100),
			fmt.Sprintf("%d/%d", row.ManualMetrics.FN, row.TrueMatches),
		})
	}
	t.Notes = append(t.Notes,
		"precision follows the paper: fraction of pattern-bearing QEP files not missed",
		"manual misses are measured by running the grep-style baseline, whose error classes mirror the paper's (decimal-vs-exponent rendering, overlooked operator variants)",
	)
	return t
}

var _ = qep.FormatNum // keep qep linked for doc references
