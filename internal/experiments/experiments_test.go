package experiments

import (
	"strings"
	"testing"
)

func TestFigure9SmallScale(t *testing.T) {
	res, err := Figure9(Fig9Config{
		Seed: 1, Sizes: []int{10, 20, 30}, Reps: 1, MinOps: 15, MaxOps: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 3 || len(res.Times) != 3 {
		t.Fatalf("result shape: %+v", res)
	}
	for pi := range res.Patterns {
		if len(res.Times[pi]) != 3 {
			t.Fatalf("pattern %d has %d measurements", pi, len(res.Times[pi]))
		}
		for si, d := range res.Times[pi] {
			if d <= 0 {
				t.Errorf("pattern %d size %d: non-positive duration", pi, si)
			}
		}
		// Match counts grow monotonically with cumulative buckets.
		for si := 1; si < len(res.Matches[pi]); si++ {
			if res.Matches[pi][si] < res.Matches[pi][si-1] {
				t.Errorf("pattern %d: matches not monotone: %v", pi, res.Matches[pi])
			}
		}
	}
	tbl := res.Table()
	if !strings.Contains(tbl.String(), "Figure 9") {
		t.Error("table title missing")
	}
}

func TestFigure10SmallScale(t *testing.T) {
	res, err := Figure10(Fig10Config{
		Seed: 2, BucketTargets: []int{15, 40, 80}, PlansPerSize: 4, Reps: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Buckets) != 3 || len(res.MeanOps) != 3 {
		t.Fatalf("buckets: %+v", res.Buckets)
	}
	// Mean ops must grow across buckets.
	for i := 1; i < len(res.MeanOps); i++ {
		if res.MeanOps[i] <= res.MeanOps[i-1] {
			t.Errorf("mean ops not increasing: %v", res.MeanOps)
		}
	}
	if !strings.Contains(res.Table().String(), "LOLEPOP") {
		t.Error("table malformed")
	}
}

func TestFigure11SmallScale(t *testing.T) {
	res, err := Figure11(Fig11Config{
		Seed: 3, NumPlans: 12, KBSizes: []int{1, 4, 8}, MinOps: 15, MaxOps: 30, Reps: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) != 3 {
		t.Fatalf("times: %+v", res.Times)
	}
	// More KB entries must not be faster than one entry by a large margin;
	// expect the largest KB to take the longest.
	if res.Times[2] <= res.Times[0] {
		t.Errorf("KB scaling suspicious: %v", res.Times)
	}
	if !strings.Contains(res.Table().String(), "knowledge-base") {
		t.Error("table malformed")
	}
}

func TestFigure12AndTable1SmallScale(t *testing.T) {
	res, err := Figure12(Fig12Config{Seed: 4, NumPlans: 100, MinOps: 15, MaxOps: 40, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	wantTrue := []int{15, 12, 18}
	for i, row := range res.Rows {
		if row.TrueMatches != wantTrue[i] {
			t.Errorf("%s: true matches = %d, want %d", row.Pattern, row.TrueMatches, wantTrue[i])
		}
		// OptImatch is immune to rendering traps: 100% per the paper.
		if row.ToolPrecision != 1.0 {
			t.Errorf("%s: tool precision = %v, want 1.0", row.Pattern, row.ToolPrecision)
		}
		// The manual baseline misses some but not all pattern files.
		if row.ManualPrecision <= 0.5 || row.ManualPrecision >= 1.0 {
			t.Errorf("%s: manual precision = %.2f, want in (0.5, 1)", row.Pattern, row.ManualPrecision)
		}
		// The tool is much faster than the modeled expert.
		if row.Speedup < 5 {
			t.Errorf("%s: speedup = %.1f, want >= 5", row.Pattern, row.Speedup)
		}
	}
	// Shape check against the paper: Pattern #2 (recursion) is the hardest
	// for manual search.
	if !(res.Rows[1].ManualPrecision <= res.Rows[0].ManualPrecision &&
		res.Rows[1].ManualPrecision <= res.Rows[2].ManualPrecision) {
		t.Errorf("pattern #2 should have the lowest manual precision: %+v", res.Rows)
	}
	if !strings.Contains(res.TimeTable().String(), "Figure 12") {
		t.Error("time table malformed")
	}
	if !strings.Contains(res.PrecisionTable().String(), "Table 1") {
		t.Error("precision table malformed")
	}
}

func TestAblationsSmallScale(t *testing.T) {
	cfg := AblationConfig{Seed: 5, NumPlans: 12, MinOps: 15, MaxOps: 40, Reps: 1}
	idx, err := AblationIndexes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Baseline <= 0 || idx.Ablated <= 0 {
		t.Errorf("index ablation durations: %+v", idx)
	}
	// Index lookups must beat full scans.
	if idx.Speedup() < 1 {
		t.Errorf("indexes slower than scans? %+v", idx)
	}
	reorder, err := AblationReorder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reorder.Baseline <= 0 || reorder.Ablated <= 0 {
		t.Errorf("reorder ablation durations: %+v", reorder)
	}
	derived, err := AblationDerivedPredicates(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if derived.Baseline <= 0 || derived.Ablated <= 0 {
		t.Errorf("derived ablation durations: %+v", derived)
	}
	tbl := AblationTable([]AblationResult{idx, reorder, derived})
	if !strings.Contains(tbl.String(), "Ablations") {
		t.Error("ablation table malformed")
	}
}

func TestVariantKB(t *testing.T) {
	k, err := variantKB(10)
	if err != nil {
		t.Fatal(err)
	}
	if k.Len() != 10 {
		t.Fatalf("entries = %d", k.Len())
	}
	// Entry names are unique and compiled.
	seen := make(map[string]bool)
	for _, e := range k.Entries() {
		if seen[e.Name] {
			t.Errorf("duplicate entry %s", e.Name)
		}
		seen[e.Name] = true
		if e.SPARQL == "" {
			t.Errorf("entry %s not compiled", e.Name)
		}
	}
}

func TestTablePrinting(t *testing.T) {
	tbl := &Table{
		Title:   "T",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"wide-cell", "3"}},
		Notes:   []string{"a note"},
	}
	s := tbl.String()
	for _, want := range []string{"T\n=", "long-column", "wide-cell", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
}
