package core

import (
	"errors"
	"strings"
	"testing"

	"optimatch/internal/kb"
	"optimatch/internal/qep"
	"optimatch/internal/workload"
)

// shardGrid is the shard-count grid the determinism property is pinned over
// (the acceptance grid from the sharding design).
var shardGrid = []int{1, 2, 4, 8}

// TestShardGridByteIdentity is the sharding determinism property test: the
// same workload — loaded through a mix of single loads, one batch load and a
// few removals — must produce byte-identical RunKB reports, FindSPARQL
// matches and Plans() order for every shard count in the grid.
func TestShardGridByteIdentity(t *testing.T) {
	w, err := workload.Generate(workload.Config{
		Seed: 2016, NumPlans: 48, MinOps: 25, MaxOps: 80,
		InjectA: 8, InjectB: 6, InjectC: 8, InjectD: 5, InjectG: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	k := kb.MustExtended()

	// Drive the same mutation history on every engine: first third loaded
	// one by one, middle third as one batch, last third one by one, then a
	// few removals spread across the ID space.
	build := func(shards int) *Engine {
		e := New(WithShards(shards), WithWorkers(4))
		third := len(w.Plans) / 3
		for _, p := range w.Plans[:third] {
			if err := e.LoadPlan(p); err != nil {
				t.Fatal(err)
			}
		}
		for _, err := range e.LoadBatch(w.Plans[third : 2*third]) {
			if err != nil {
				t.Fatal(err)
			}
		}
		for _, p := range w.Plans[2*third:] {
			if err := e.LoadPlan(p); err != nil {
				t.Fatal(err)
			}
		}
		for _, i := range []int{3, 17, 29, 41} {
			if !e.RemovePlan(w.Plans[i].ID) {
				t.Fatalf("plan %s not removed", w.Plans[i].ID)
			}
		}
		return e
	}

	type rendered struct {
		plans   string
		reports string
		matches string
	}
	render := func(e *Engine) rendered {
		var ids []string
		for _, p := range e.Plans() {
			ids = append(ids, p.ID)
		}
		reports, err := e.RunKB(k)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := e.FindSPARQL(cancelTestQuery)
		if err != nil {
			t.Fatal(err)
		}
		return rendered{
			plans:   strings.Join(ids, ","),
			reports: renderReports(reports),
			matches: renderMatches(ms),
		}
	}

	base := render(build(1))
	if base.reports == "" || base.plans == "" {
		t.Fatal("baseline render is empty; workload produced nothing")
	}
	for _, shards := range shardGrid[1:] {
		e := build(shards)
		if got := e.NumShards(); got != shards {
			t.Fatalf("NumShards = %d, want %d", got, shards)
		}
		got := render(e)
		if got.plans != base.plans {
			t.Fatalf("%d shards: Plans() order differs:\n got %s\nwant %s", shards, got.plans, base.plans)
		}
		if got.reports != base.reports {
			t.Fatalf("%d shards: RunKB reports differ from single-shard output:\n--- %d shards ---\n%s--- 1 shard ---\n%s",
				shards, shards, got.reports, base.reports)
		}
		if got.matches != base.matches {
			t.Fatalf("%d shards: FindSPARQL matches differ:\n--- %d shards ---\n%s--- 1 shard ---\n%s",
				shards, shards, got.matches, base.matches)
		}
	}
}

// TestShardGridPrefilterParity pins the counter contract of the shard-level
// prefilter: because a shard skip advances Probed/Skipped by the shard's
// plan count, the totals after a full KB scan are identical for every shard
// count.
func TestShardGridPrefilterParity(t *testing.T) {
	w, err := workload.Generate(workload.Config{
		Seed: 99, NumPlans: 30, MinOps: 20, MaxOps: 60, InjectA: 5, InjectC: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	k := kb.MustExtended()
	var base PrefilterStats
	for gi, shards := range shardGrid {
		e := New(WithShards(shards))
		if err := e.LoadPlans(w.Plans); err != nil {
			t.Fatal(err)
		}
		if _, err := e.RunKB(k); err != nil {
			t.Fatal(err)
		}
		stats := e.PrefilterStats()
		if gi == 0 {
			base = stats
			if base.Probed == 0 {
				t.Fatal("prefilter never probed")
			}
			continue
		}
		if stats.Probed != base.Probed || stats.Skipped != base.Skipped {
			t.Fatalf("%d shards: prefilter counters {probed %d, skipped %d} differ from 1 shard {probed %d, skipped %d}",
				shards, stats.Probed, stats.Skipped, base.Probed, base.Skipped)
		}
	}
}

// TestLoadBatchSingleGenerationBump pins the batch cache-invalidation
// contract: one batch, however many plans, bumps the data generation exactly
// once; an all-rejected batch does not bump it at all.
func TestLoadBatchSingleGenerationBump(t *testing.T) {
	w, err := workload.Generate(workload.Config{Seed: 5, NumPlans: 16})
	if err != nil {
		t.Fatal(err)
	}
	e := New(WithShards(4))
	before := e.Generation()
	for _, err := range e.LoadBatch(w.Plans) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Generation(); got != before+1 {
		t.Fatalf("generation after %d-plan batch = %d, want %d", len(w.Plans), got, before+1)
	}
	if got := e.NumPlans(); got != len(w.Plans) {
		t.Fatalf("NumPlans = %d, want %d", got, len(w.Plans))
	}

	// Re-loading the same batch rejects every plan as a duplicate and must
	// leave the generation untouched.
	before = e.Generation()
	for i, err := range e.LoadBatch(w.Plans) {
		if !errors.Is(err, ErrDuplicatePlan) {
			t.Fatalf("plan %d: err = %v, want ErrDuplicatePlan", i, err)
		}
	}
	if got := e.Generation(); got != before {
		t.Fatalf("generation after all-duplicate batch = %d, want unchanged %d", got, before)
	}
}

// TestLoadBatchPerPlanOutcomes exercises the mixed-outcome contract: invalid
// plans, intra-batch duplicates and engine-level duplicates fail per-record
// while the rest of the batch loads.
func TestLoadBatchPerPlanOutcomes(t *testing.T) {
	w, err := workload.Generate(workload.Config{Seed: 11, NumPlans: 4})
	if err != nil {
		t.Fatal(err)
	}
	e := New(WithShards(2))
	if err := e.LoadPlan(w.Plans[0]); err != nil {
		t.Fatal(err)
	}
	batch := []*qep.Plan{
		w.Plans[0], // duplicate of an already-loaded plan
		w.Plans[1], // fresh
		w.Plans[1], // intra-batch duplicate
		{},         // invalid: fails validation
		w.Plans[2], // fresh
	}
	errs := e.LoadBatch(batch)
	if !errors.Is(errs[0], ErrDuplicatePlan) {
		t.Fatalf("errs[0] = %v, want ErrDuplicatePlan", errs[0])
	}
	if errs[1] != nil {
		t.Fatalf("errs[1] = %v, want nil", errs[1])
	}
	if !errors.Is(errs[2], ErrDuplicatePlan) {
		t.Fatalf("errs[2] = %v, want ErrDuplicatePlan (intra-batch)", errs[2])
	}
	if errs[3] == nil {
		t.Fatal("errs[3] = nil, want a validation error")
	}
	if errs[4] != nil {
		t.Fatalf("errs[4] = %v, want nil", errs[4])
	}
	if got := e.NumPlans(); got != 3 {
		t.Fatalf("NumPlans = %d, want 3", got)
	}
}

// TestShardStats sanity-checks the per-shard view: plan counts sum to the
// total, and with enough plans and shards the routing spreads load across
// more than one shard.
func TestShardStats(t *testing.T) {
	w, err := workload.Generate(workload.Config{Seed: 21, NumPlans: 32})
	if err != nil {
		t.Fatal(err)
	}
	e := New(WithShards(4))
	if err := e.LoadPlans(w.Plans); err != nil {
		t.Fatal(err)
	}
	stats := e.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("len(ShardStats) = %d, want 4", len(stats))
	}
	total, populated := 0, 0
	for _, st := range stats {
		total += st.Plans
		if st.Plans > 0 {
			populated++
			if st.VocabTerms == 0 {
				t.Fatal("populated shard has an empty union vocabulary")
			}
			if st.Generation == 0 {
				t.Fatal("populated shard has generation 0")
			}
		}
	}
	if total != len(w.Plans) {
		t.Fatalf("shard plan counts sum to %d, want %d", total, len(w.Plans))
	}
	if populated < 2 {
		t.Fatalf("only %d of 4 shards populated with %d plans; fnv64a routing suspect", populated, len(w.Plans))
	}
}

// TestLoadTextBatch exercises the text-level batch entry point: parse
// failures are per-record and parsed plans are reported even when loading
// then fails as a duplicate.
func TestLoadTextBatch(t *testing.T) {
	w, err := workload.Generate(workload.Config{Seed: 33, NumPlans: 2})
	if err != nil {
		t.Fatal(err)
	}
	byID := w.Texts()
	texts := []string{byID[w.Plans[0].ID], "not a plan", byID[w.Plans[1].ID], byID[w.Plans[0].ID]}
	e := New(WithShards(2))
	plans, errs := e.LoadTextBatch(texts)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("valid texts failed: %v / %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Fatal("garbage text parsed without error")
	}
	if plans[1] != nil {
		t.Fatal("garbage text yielded a plan")
	}
	if !errors.Is(errs[3], ErrDuplicatePlan) {
		t.Fatalf("errs[3] = %v, want ErrDuplicatePlan", errs[3])
	}
	if plans[3] == nil {
		t.Fatal("duplicate text should still report its parsed plan")
	}
	if got := e.NumPlans(); got != 2 {
		t.Fatalf("NumPlans = %d, want 2", got)
	}
}

// TestWithShardsAuto pins the auto-shard contract: n <= 0 yields at least
// one shard and never more than maxAutoShards.
func TestWithShardsAuto(t *testing.T) {
	e := New(WithShards(0))
	if n := e.NumShards(); n < 1 || n > maxAutoShards {
		t.Fatalf("auto shard count = %d, want 1..%d", n, maxAutoShards)
	}
	if n := New().NumShards(); n != 1 {
		t.Fatalf("default shard count = %d, want 1", n)
	}
}
