package core

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"optimatch/internal/fixtures"
	"optimatch/internal/kb"
	"optimatch/internal/pattern"
	"optimatch/internal/qep"
	"optimatch/internal/sparql"
	"optimatch/internal/workload"
)

func engineWithFixtures(t *testing.T) *Engine {
	t.Helper()
	e := New()
	if err := e.LoadPlans(fixtures.All()); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestLoadAndAccessors(t *testing.T) {
	e := engineWithFixtures(t)
	if e.NumPlans() != 5 {
		t.Fatalf("NumPlans = %d", e.NumPlans())
	}
	if e.Plan("Q2") == nil || e.Plan("GHOST") != nil {
		t.Error("Plan lookup wrong")
	}
	if got := len(e.Plans()); got != 5 {
		t.Errorf("Plans() = %d", got)
	}
	// Duplicate plan IDs rejected.
	if err := e.LoadPlan(fixtures.Figure1()); err == nil {
		t.Error("duplicate plan accepted")
	}
	// Invalid plan rejected.
	if err := e.LoadPlan(qep.NewPlan("EMPTY")); err == nil {
		t.Error("empty plan accepted")
	}
}

func TestLoadText(t *testing.T) {
	e := New()
	p, err := e.LoadText(qep.Text(fixtures.Figure1()))
	if err != nil {
		t.Fatal(err)
	}
	if p.ID != "Q2" || e.NumPlans() != 1 {
		t.Errorf("loaded plan = %+v", p.ID)
	}
	if _, err := e.LoadText("garbage"); err == nil {
		t.Error("garbage text accepted")
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	for i, p := range fixtures.All() {
		name := filepath.Join(dir, p.ID+".exfmt")
		if i == 0 {
			name = filepath.Join(dir, p.ID+".txt")
		}
		if err := os.WriteFile(name, []byte(qep.Text(p)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Non-explain files are skipped.
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	e := New()
	n, err := e.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || e.NumPlans() != 5 {
		t.Errorf("loaded %d plans", n)
	}
	if _, err := e.LoadDir(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing dir accepted")
	}
	// A broken explain file surfaces an error.
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "bad.txt"), []byte("Plan Details:\nnot a plan"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New().LoadDir(bad); err == nil {
		t.Error("broken explain file accepted")
	}
}

func TestFindPatternAcrossWorkload(t *testing.T) {
	e := engineWithFixtures(t)
	matches, err := e.FindPattern(pattern.A())
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("matches = %d, want 1", len(matches))
	}
	m := matches[0]
	if m.Plan.ID != "Q2" {
		t.Errorf("matched plan = %s", m.Plan.ID)
	}
	top := m.Binding("TOP")
	if top == nil || top.Operator == nil || top.Operator.Type != "NLJOIN" {
		t.Errorf("TOP binding = %+v", top)
	}
	base := m.Binding("BASE4")
	if base == nil || base.Object == nil || base.Object.Name != "CUST_DIM" {
		t.Errorf("BASE4 binding = %+v", base)
	}
	if m.Binding("nosuch") != nil {
		t.Error("unknown alias returned a binding")
	}
	s := m.String()
	for _, want := range []string{"Q2:", "TOP=NLJOIN(2)", "BASE4=CUST_DIM"} {
		if !strings.Contains(s, want) {
			t.Errorf("Match.String() = %q missing %q", s, want)
		}
	}
}

func TestFindSPARQLDirect(t *testing.T) {
	e := engineWithFixtures(t)
	// All SORT operators across the workload.
	matches, err := e.FindSPARQL(`PREFIX preduri: <http://optimatch/pred/>
SELECT ?s WHERE { ?s preduri:hasPopType "SORT" }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].Plan.ID != "Q9" {
		t.Errorf("matches = %+v", matches)
	}
	if _, err := e.FindSPARQL("SELECT nonsense"); err == nil {
		t.Error("bad query accepted")
	}
}

func TestFindPatternParallelMatchesSerial(t *testing.T) {
	w, err := workload.Generate(workload.Config{Seed: 31, NumPlans: 30, MinOps: 20, MaxOps: 60,
		InjectA: 6, InjectB: 5, InjectC: 7, InjectD: 4})
	if err != nil {
		t.Fatal(err)
	}
	serial := New(WithWorkers(1))
	parallel := New(WithWorkers(8))
	if err := serial.LoadPlans(w.Plans); err != nil {
		t.Fatal(err)
	}
	if err := parallel.LoadPlans(w.Plans); err != nil {
		t.Fatal(err)
	}
	for _, p := range pattern.Canonical() {
		m1, err := serial.FindPattern(p)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := parallel.FindPattern(p)
		if err != nil {
			t.Fatal(err)
		}
		s1 := matchStrings(m1)
		s2 := matchStrings(m2)
		if !reflect.DeepEqual(s1, s2) {
			t.Errorf("%s: parallel != serial:\n%v\nvs\n%v", p.Name, s1, s2)
		}
	}
}

func matchStrings(ms []Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.String()
	}
	return out
}

func TestFindPatternAgainstGroundTruth(t *testing.T) {
	w, err := workload.Generate(workload.Config{Seed: 77, NumPlans: 50, MinOps: 20, MaxOps: 80,
		InjectA: 10, InjectB: 9, InjectC: 11, InjectD: 8})
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	if err := e.LoadPlans(w.Plans); err != nil {
		t.Fatal(err)
	}
	keys := map[string]*pattern.Pattern{
		workload.KeyA: pattern.A(),
		workload.KeyB: pattern.B(),
		workload.KeyC: pattern.C(),
		workload.KeyD: pattern.D(),
	}
	for key, p := range keys {
		matches, err := e.FindPattern(p)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[string]bool)
		for _, m := range matches {
			got[m.Plan.ID] = true
		}
		if len(got) != w.Truth.Count(key) {
			t.Errorf("pattern %s: matched %d plans, injected %d", key, len(got), w.Truth.Count(key))
		}
		for id := range w.Truth[key] {
			if !got[id] {
				t.Errorf("pattern %s: injected plan %s not matched", key, id)
			}
		}
	}
}

func TestRunKB(t *testing.T) {
	e := engineWithFixtures(t)
	reports, err := e.RunKB(kb.MustCanonical())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 5 {
		t.Fatalf("reports = %d", len(reports))
	}
	byID := make(map[string]*PlanReport)
	for i := range reports {
		byID[reports[i].Plan.ID] = &reports[i]
	}
	// Figure 1 plan: Pattern A's two recommendations.
	q2 := byID["Q2"]
	if !q2.HasRecommendations() || len(q2.Recommendations) != 2 {
		t.Fatalf("Q2 recommendations = %d", len(q2.Recommendations))
	}
	if !strings.Contains(q2.Recommendations[0].Text, "CUST_DIM") {
		t.Errorf("Q2 top recommendation lacks context: %s", q2.Recommendations[0].Text)
	}
	if !strings.Contains(q2.Message(), "recommendation") {
		t.Errorf("message = %q", q2.Message())
	}
	// Figure 7: Pattern B (2 recs) + Pattern C (IXSCAN collapse, 1 rec).
	q21 := byID["Q21"]
	if len(q21.Recommendations) != 3 {
		t.Errorf("Q21 recommendations = %d, want 3", len(q21.Recommendations))
	}
	// Clean plan: nothing.
	q0 := byID["Q0"]
	if q0.HasRecommendations() {
		t.Errorf("Q0 should have no recommendations: %+v", q0.Recommendations)
	}
	if q0.Message() != NoRecommendation {
		t.Errorf("Q0 message = %q", q0.Message())
	}
	// Ranking is descending within each report.
	for _, r := range reports {
		for i := 1; i < len(r.Recommendations); i++ {
			if r.Recommendations[i-1].Confidence < r.Recommendations[i].Confidence {
				t.Errorf("plan %s: recommendations not ranked", r.Plan.ID)
			}
		}
	}
}

func TestSummarize(t *testing.T) {
	e := engineWithFixtures(t)
	reports, err := e.RunKB(kb.MustCanonical())
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(reports)
	if s.TotalPlans != 5 {
		t.Errorf("TotalPlans = %d", s.TotalPlans)
	}
	if s.PlansMatched != 4 { // all fixtures except Clean
		t.Errorf("PlansMatched = %d", s.PlansMatched)
	}
	counts := make(map[string]EntryCount)
	for _, ec := range s.ByEntry {
		counts[ec.Name] = ec
	}
	if counts["nljoin-inner-tbscan"].Plans != 1 || counts["nljoin-inner-tbscan"].Recs != 2 {
		t.Errorf("pattern A counts = %+v", counts["nljoin-inner-tbscan"])
	}
	if counts["scan-cardinality-collapse"].Plans != 2 { // fig7 + fig8
		t.Errorf("pattern C counts = %+v", counts["scan-cardinality-collapse"])
	}
	// Summary is sorted by name.
	for i := 1; i < len(s.ByEntry); i++ {
		if s.ByEntry[i-1].Name > s.ByEntry[i].Name {
			t.Error("summary not sorted")
		}
	}
}

func TestWithExecOptionsAblation(t *testing.T) {
	e1 := New()
	e2 := New(WithExecOptions(sparql.ExecOptions{DisableReorder: true}))
	for _, e := range []*Engine{e1, e2} {
		if err := e.LoadPlans(fixtures.All()); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range pattern.Canonical() {
		m1, err := e1.FindPattern(p)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := e2.FindPattern(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(matchStrings(m1), matchStrings(m2)) {
			t.Errorf("%s: reorder ablation changed results", p.Name)
		}
	}
}

// TestConcurrentEngineUse hammers one engine from many goroutines mixing
// pattern search and knowledge-base scans; the race detector (when enabled)
// and result comparison guard the engine's concurrency contract.
func TestConcurrentEngineUse(t *testing.T) {
	w, err := workload.Generate(workload.Config{Seed: 41, NumPlans: 20, MinOps: 15, MaxOps: 50,
		InjectA: 4, InjectB: 3, InjectC: 5, InjectD: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := New(WithWorkers(4))
	if err := e.LoadPlans(w.Plans); err != nil {
		t.Fatal(err)
	}
	base := kb.MustCanonical()
	wantA, err := e.FindPattern(pattern.A())
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				got, err := e.FindPattern(pattern.A())
				if err != nil {
					errs <- err
					return
				}
				if len(got) != len(wantA) {
					errs <- fmt.Errorf("concurrent FindPattern: %d matches, want %d", len(got), len(wantA))
				}
			case 1:
				if _, err := e.RunKB(base); err != nil {
					errs <- err
				}
			default:
				if _, err := e.FindPattern(pattern.D()); err != nil {
					errs <- err
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestGroundTruthIncludesPatternG extends the exactness check to the
// negative (NOT EXISTS) pattern.
func TestGroundTruthIncludesPatternG(t *testing.T) {
	w, err := workload.Generate(workload.Config{Seed: 43, NumPlans: 30, MinOps: 20, MaxOps: 60, InjectG: 6})
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	if err := e.LoadPlans(w.Plans); err != nil {
		t.Fatal(err)
	}
	matches, err := e.FindPattern(pattern.G())
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, m := range matches {
		got[m.Plan.ID] = true
	}
	if len(got) != 6 {
		t.Errorf("pattern G plans = %d, want 6", len(got))
	}
	for id := range w.Truth[workload.KeyG] {
		if !got[id] {
			t.Errorf("injected plan %s not matched", id)
		}
	}
}

func TestRemovePlan(t *testing.T) {
	e := engineWithFixtures(t)
	if e.RemovePlan("GHOST") {
		t.Error("RemovePlan(GHOST) = true")
	}
	if !e.RemovePlan("Q2") {
		t.Fatal("RemovePlan(Q2) = false")
	}
	if e.Plan("Q2") != nil || e.NumPlans() != 4 {
		t.Errorf("Q2 still visible after removal: NumPlans = %d", e.NumPlans())
	}
	// Removal frees the ID for re-ingest.
	for _, p := range fixtures.All() {
		if p.ID == "Q2" {
			if err := e.LoadPlan(p); err != nil {
				t.Fatalf("reload after remove: %v", err)
			}
		}
	}
	if e.NumPlans() != 5 {
		t.Errorf("NumPlans after reload = %d", e.NumPlans())
	}
	// Load order is preserved for the survivors plus the re-ingest at the end.
	plans := e.Plans()
	if plans[len(plans)-1].ID != "Q2" {
		t.Errorf("re-ingested plan not last: %v", plans[len(plans)-1].ID)
	}
}
