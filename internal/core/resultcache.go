// Result-cache support for the engine: cache-key identity and size
// accounting for the structured scan results FindSPARQL and RunKB store
// through internal/cache. The cache itself is generation-keyed (see
// WithResultCache); this file only knows how to name and weigh results.
package core

import (
	"strconv"

	"optimatch/internal/cache"
)

// cacheID renders the engine's identity component of a cache key: the
// process-unique engine ID plus the data generation the key pins. Two
// engines sharing one cache, or one engine across a mutation, never
// collide.
func (e *Engine) cacheID(gen uint64) string {
	return strconv.FormatUint(e.id, 10) + "." + strconv.FormatUint(gen, 10)
}

// ResultCacheStats returns the result cache's counters (all zero when no
// cache is configured — Stats is nil-safe).
func (e *Engine) ResultCacheStats() cache.Stats {
	return e.resCache.Stats()
}

// Per-element accounting overheads for the structured results below: the
// struct headers, slice headers and pointer fields that string lengths
// alone would miss. Estimates err on the generous side so a byte budget
// bounds real memory.
const (
	matchOverhead   = 48
	bindingOverhead = 96
	reportOverhead  = 64
	rankedOverhead  = 192
)

// sizeOfMatches estimates the resident size of a match list. Plan and
// transform.Result pointers are shared with the engine's own plan table
// and are not charged; strings are charged at their byte length.
func sizeOfMatches(ms []Match) int64 {
	n := int64(matchOverhead) * int64(len(ms))
	for i := range ms {
		for j := range ms[i].Bindings {
			b := &ms[i].Bindings[j]
			n += bindingOverhead + int64(len(b.Alias)+len(b.Display)+len(b.Term.Value)+len(b.Term.Datatype))
		}
	}
	return n
}

// sizeOfReports estimates the resident size of a KB report list. Entry,
// plan and result pointers are shared and not charged; the expanded
// recommendation text and the occurrence binding maps are.
func sizeOfReports(reports []PlanReport) int64 {
	n := int64(reportOverhead) * int64(len(reports))
	for i := range reports {
		for j := range reports[i].Recommendations {
			rec := &reports[i].Recommendations[j]
			n += rankedOverhead + int64(len(rec.Text))
			for alias, t := range rec.Occurrence.Bindings {
				n += bindingOverhead + int64(len(alias)+len(t.Value)+len(t.Datatype))
			}
		}
	}
	return n
}
