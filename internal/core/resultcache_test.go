package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"optimatch/internal/cache"
	"optimatch/internal/fixtures"
	"optimatch/internal/kb"
	"optimatch/internal/sparql"
)

func cachedEngine(t *testing.T, opts ...Option) (*Engine, *cache.Cache) {
	t.Helper()
	c := cache.New(cache.Config{MaxBytes: 32 << 20})
	eng := New(append([]Option{WithResultCache(c)}, opts...)...)
	if err := eng.LoadPlans(fixtures.All()); err != nil {
		t.Fatal(err)
	}
	return eng, c
}

// renderMatches flattens a match list to a canonical string so cached and
// uncached results can be compared byte for byte.
func renderMatches(ms []Match) string {
	var b strings.Builder
	for i := range ms {
		b.WriteString(ms[i].String())
		b.WriteString("\n")
	}
	return b.String()
}

func TestResultCacheSearchHit(t *testing.T) {
	eng, c := cachedEngine(t)
	query := kb.MustCanonical().Entries()[0].SPARQL

	first, err := eng.FindSPARQL(query)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.FindSPARQL(query)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss then 1 hit", st)
	}
	if renderMatches(first) != renderMatches(second) {
		t.Fatalf("cached result differs:\n%s\nvs\n%s", renderMatches(first), renderMatches(second))
	}
}

func TestResultCacheKBScanHit(t *testing.T) {
	eng, c := cachedEngine(t)
	base := kb.MustExtended()

	first, err := eng.RunKB(base)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.RunKB(base)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 hit", st)
	}
	if renderReports(first) != renderReports(second) {
		t.Fatal("cached KB report differs from original")
	}
}

// A plan mutation must orphan cached results: the next identical request
// re-executes against the new plan set instead of serving the stale entry.
func TestResultCacheGenerationKeying(t *testing.T) {
	eng, c := cachedEngine(t)
	// Matches every plan with a SORT operator; the renamed SortSpill plan
	// loaded below adds one, so a fresh scan must see it.
	query := `PREFIX preduri: <http://optimatch/pred/>
SELECT ?s WHERE { ?s preduri:hasPopType "SORT" }`

	if _, err := eng.FindSPARQL(query); err != nil {
		t.Fatal(err)
	}
	gen := eng.Generation()
	if err := eng.LoadPlan(fixtures.Renamed(fixtures.SortSpill(), "GEN-EXTRA")); err != nil {
		t.Fatal(err)
	}
	if eng.Generation() == gen {
		t.Fatal("LoadPlan did not bump the generation")
	}
	ms, err := eng.FindSPARQL(query)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("stats after mutation = %+v, want 2 misses, 0 hits", st)
	}
	found := false
	for i := range ms {
		if ms[i].Plan.ID == "GEN-EXTRA" {
			found = true
		}
	}
	if !found {
		t.Fatal("post-mutation scan missed the newly loaded plan")
	}

	if !eng.RemovePlan("GEN-EXTRA") {
		t.Fatal("RemovePlan failed")
	}
	ms, err = eng.FindSPARQL(query)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ms {
		if ms[i].Plan.ID == "GEN-EXTRA" {
			t.Fatal("scan after removal still reports the removed plan")
		}
	}
}

// A KB mutation changes the snapshot's cache key even at a fixed plan set.
func TestResultCacheKBKeying(t *testing.T) {
	eng, c := cachedEngine(t)
	base := kb.MustCanonical()
	if _, err := eng.RunKB(base.Snapshot()); err != nil {
		t.Fatal(err)
	}

	extra := kb.MustExtended().Entries()[len(kb.MustExtended().Entries())-1]
	if base.Entry(extra.Name) != nil {
		t.Fatalf("test entry %q already in canonical KB", extra.Name)
	}
	if _, err := base.Add(extra.Pattern, extra.Recommendations...); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunKB(base.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 misses (mutated KB must not hit)", st)
	}
}

func TestResultCacheDisableOption(t *testing.T) {
	c := cache.New(cache.Config{MaxBytes: 1 << 20})
	eng := New(WithResultCache(c), WithExecOptions(sparql.ExecOptions{DisableResultCache: true}))
	if err := eng.LoadPlans(fixtures.All()); err != nil {
		t.Fatal(err)
	}
	query := kb.MustCanonical().Entries()[0].SPARQL
	for i := 0; i < 3; i++ {
		if _, err := eng.FindSPARQL(query); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Hits != 0 && st.Misses != 0 {
		t.Fatalf("stats = %+v, want untouched cache under DisableResultCache", st)
	}
}

// TestResultCacheBypassContext checks the per-call ablation switch: a
// bypassing context runs uncached and returns a byte-identical report.
func TestResultCacheBypassContext(t *testing.T) {
	eng, c := cachedEngine(t)
	base := kb.MustExtended().Snapshot()

	cached, err := eng.RunKBContext(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := eng.RunKBContext(cache.WithBypass(context.Background()), base)
	if err != nil {
		t.Fatal(err)
	}
	if renderReports(cached) != renderReports(uncached) {
		t.Fatal("bypassed execution differs from cached result at the same generation")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want bypass to leave counters at 1 miss", st)
	}
}

// TestResultCacheHammer interleaves plan and KB mutations with cached and
// uncached reads under the race detector, asserting every cached response
// is byte-identical to an uncached re-execution at the same generation.
func TestResultCacheHammer(t *testing.T) {
	eng, _ := cachedEngine(t)
	query := kb.MustCanonical().Entries()[0].SPARQL

	// kbMu guards the shared KnowledgeBase (like the server's s.mu): the
	// KB type itself is mutably unsynchronized by design.
	var kbMu sync.Mutex
	base := kb.MustCanonical()
	extra := kb.MustExtended().Entries()[len(kb.MustExtended().Entries())-1]

	// seen maps a stable (generation, kb key, kind) observation to its
	// rendered result; every later observation at the same key — cached or
	// not — must render identically.
	var seen sync.Map
	record := func(t *testing.T, key, rendered string) {
		t.Helper()
		if prev, loaded := seen.LoadOrStore(key, rendered); loaded && prev.(string) != rendered {
			t.Errorf("divergent results at %s:\n--- first\n%s\n--- now\n%s", key, prev, rendered)
		}
	}

	const (
		readers  = 4
		mutators = 2
		iters    = 60
	)
	deadline := time.Now().Add(10 * time.Second)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters && time.Now().Before(deadline); i++ {
				ctx := context.Background()
				tag := "cached"
				if i%2 == 1 {
					ctx = cache.WithBypass(ctx)
					tag = "bypass"
				}
				_ = tag

				genBefore := eng.Generation()
				ms, err := eng.FindSPARQLContext(ctx, query)
				if err != nil {
					t.Error(err)
					return
				}
				if eng.Generation() == genBefore {
					record(t, fmt.Sprintf("q/%d", genBefore), renderMatches(ms))
				}

				kbMu.Lock()
				snap := base.Snapshot()
				kbMu.Unlock()
				genBefore = eng.Generation()
				reports, err := eng.RunKBContext(ctx, snap)
				if err != nil {
					t.Error(err)
					return
				}
				if eng.Generation() == genBefore {
					record(t, fmt.Sprintf("kb/%d/%s", genBefore, snap.CacheKey()), renderReports(reports))
				}
			}
		}(r)
	}
	for m := 0; m < mutators; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for i := 0; i < iters && time.Now().Before(deadline); i++ {
				if m == 0 {
					id := fmt.Sprintf("HAMMER-%d", i)
					if err := eng.LoadPlan(fixtures.Renamed(fixtures.Figure8(), id)); err != nil {
						t.Error(err)
						return
					}
					if !eng.RemovePlan(id) {
						t.Errorf("RemovePlan(%s) failed", id)
						return
					}
				} else {
					kbMu.Lock()
					if _, err := base.Add(extra.Pattern, extra.Recommendations...); err != nil {
						kbMu.Unlock()
						t.Error(err)
						return
					}
					base.Remove(extra.Name)
					kbMu.Unlock()
				}
			}
		}(m)
	}
	wg.Wait()
}
