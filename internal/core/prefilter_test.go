package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"optimatch/internal/kb"
	"optimatch/internal/sparql"
	"optimatch/internal/transform"
	"optimatch/internal/workload"
)

// twinEngines loads the same transformed workload into an accelerated engine
// (prefilter + specialization, the default) and an ablation engine
// (WithPrefilter(false): no prefilter, legacy evaluator).
func twinEngines(t *testing.T, rs []*transform.Result) (fast, slow *Engine) {
	t.Helper()
	fast = New()
	slow = New(WithPrefilter(false))
	for _, r := range rs {
		if err := fast.LoadResult(r); err != nil {
			t.Fatal(err)
		}
		if err := slow.LoadResult(r); err != nil {
			t.Fatal(err)
		}
	}
	return fast, slow
}

func generated(t *testing.T, cfg workload.Config) []*transform.Result {
	t.Helper()
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return transform.TransformAll(w.Plans)
}

// renderReports serializes KB reports canonically so the accelerated and
// baseline paths can be compared byte for byte.
func renderReports(reports []PlanReport) string {
	var b strings.Builder
	for i := range reports {
		fmt.Fprintf(&b, "plan %s: %s\n", reports[i].Plan.ID, reports[i].Message())
		for _, rec := range reports[i].Recommendations {
			fmt.Fprintf(&b, "  [%s %.6f] %s: %s\n",
				rec.Entry.Name, rec.Confidence, rec.Recommendation.Title, rec.Text)
		}
	}
	return b.String()
}

// sortedMatches renders FindSPARQL matches order-independently (for queries
// without a total ORDER BY, within-plan row order is not specified).
func sortedMatches(ms []Match) []string {
	out := make([]string, len(ms))
	for i := range ms {
		out[i] = ms[i].String()
	}
	sort.Strings(out)
	return out
}

// TestPrefilterSoundnessKB is the property test for the acceleration path:
// over generated workloads at several seeds, scanning the full knowledge
// base with the prefilter + specialized evaluator must produce byte-identical
// reports to the unfiltered legacy evaluator, and the prefilter must never
// skip a (plan, entry) pair that has a match.
func TestPrefilterSoundnessKB(t *testing.T) {
	k := kb.MustExtended()
	for _, seed := range []int64{1, 7, 2016} {
		cfg := workload.Config{
			Seed: seed, NumPlans: 40, MinOps: 30, MaxOps: 90,
			InjectA: 6, InjectB: 5, InjectC: 7, InjectD: 4, InjectG: 3,
		}
		rs := generated(t, cfg)
		fast, slow := twinEngines(t, rs)

		fastReports, err := fast.RunKB(k)
		if err != nil {
			t.Fatalf("seed %d: accelerated RunKB: %v", seed, err)
		}
		slowReports, err := slow.RunKB(k)
		if err != nil {
			t.Fatalf("seed %d: baseline RunKB: %v", seed, err)
		}
		if got, want := renderReports(fastReports), renderReports(slowReports); got != want {
			t.Fatalf("seed %d: reports differ between prefilter on and off:\n--- accelerated ---\n%s--- baseline ---\n%s",
				seed, got, want)
		}

		stats := fast.PrefilterStats()
		if stats.Probed == 0 {
			t.Fatalf("seed %d: prefilter never probed", seed)
		}
		if off := slow.PrefilterStats(); off.Probed != 0 || off.Skipped != 0 {
			t.Fatalf("seed %d: disabled prefilter recorded stats %+v", seed, off)
		}

		// Direct soundness check: every pair the prefilter would skip must
		// evaluate to zero rows.
		for _, entry := range k.Entries() {
			q, err := sparql.Parse(entry.SPARQL)
			if err != nil {
				t.Fatal(err)
			}
			a := q.Analysis()
			for _, r := range rs {
				if a.RequiredIn(r.Graph) {
					continue
				}
				res, err := q.ExecOpts(r.Graph, sparql.ExecOptions{DisableSpecialization: true})
				if err != nil {
					t.Fatal(err)
				}
				if res.Len() != 0 {
					t.Fatalf("seed %d: prefilter would skip entry %s on plan %s which has %d matches",
						seed, entry.Name, r.Plan.ID, res.Len())
				}
			}
		}
	}
}

// TestPrefilterSoundnessQueries exercises FindSPARQL equivalence on queries
// chosen to probe the analyzer's blind spots: constants that exist nowhere
// in the workload but appear only under OPTIONAL or in one UNION branch must
// not be treated as required (the prefilter must not skip plans for them).
func TestPrefilterSoundnessQueries(t *testing.T) {
	rs := generated(t, workload.Config{
		Seed: 11, NumPlans: 25, MinOps: 30, MaxOps: 80,
		InjectA: 4, InjectB: 3, InjectC: 5,
	})
	fast, slow := twinEngines(t, rs)

	queries := []string{
		// Constant only under OPTIONAL; "NO_SUCH_TYPE" is in no graph.
		transform.Prologue + `
SELECT ?pop ?x WHERE {
  ?pop preduri:hasPopType "NLJOIN" .
  OPTIONAL { ?pop preduri:hasPopType "NO_SUCH_TYPE" . ?pop preduri:hasPopType ?x }
}`,
		// Constant in one UNION branch only.
		transform.Prologue + `
SELECT ?pop WHERE {
  { ?pop preduri:hasPopType "NO_SUCH_TYPE" } UNION { ?pop preduri:hasPopType "TBSCAN" }
}`,
		// Absent constant under NOT EXISTS: filters nothing out.
		transform.Prologue + `
SELECT ?pop WHERE {
  ?pop preduri:hasPopType "HSJOIN" .
  FILTER NOT EXISTS { ?pop preduri:hasPopType "NO_SUCH_TYPE" }
}`,
		// Zero-or-more path over a predicate absent from some graphs.
		transform.Prologue + `
SELECT ?pop WHERE {
  ?pop preduri:hasPopType "TBSCAN" .
  ?pop preduri:hasChildPop* ?desc .
  ?desc preduri:isABaseObj true .
}`,
		// Required constant genuinely absent everywhere: zero matches, and
		// the prefilter should skip every plan.
		transform.Prologue + `
SELECT ?pop WHERE { ?pop preduri:hasPopType "NO_SUCH_TYPE" }`,
	}
	for qi, text := range queries {
		fastMs, err := fast.FindSPARQL(text)
		if err != nil {
			t.Fatalf("query %d: accelerated: %v", qi, err)
		}
		slowMs, err := slow.FindSPARQL(text)
		if err != nil {
			t.Fatalf("query %d: baseline: %v", qi, err)
		}
		got, want := sortedMatches(fastMs), sortedMatches(slowMs)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d matches (accelerated) vs %d (baseline)", qi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: match %d differs:\n  accelerated: %s\n  baseline:    %s",
					qi, i, got[i], want[i])
			}
		}
	}

	if stats := fast.PrefilterStats(); stats.Skipped == 0 {
		t.Error("prefilter skipped nothing across queries with absent required constants")
	}
}

// TestWorkerPoolParallel runs the bounded worker pool with more workers
// than this machine has cores and checks results against a serial engine —
// the pool must not change outcomes or order (also the race-detector
// coverage for the concurrent scan paths).
func TestWorkerPoolParallel(t *testing.T) {
	rs := generated(t, workload.Config{
		Seed: 3, NumPlans: 30, MinOps: 30, MaxOps: 80,
		InjectA: 5, InjectB: 4, InjectC: 6,
	})
	serial := New(WithWorkers(1))
	pooled := New(WithWorkers(4))
	for _, r := range rs {
		if err := serial.LoadResult(r); err != nil {
			t.Fatal(err)
		}
		if err := pooled.LoadResult(r); err != nil {
			t.Fatal(err)
		}
	}
	k := kb.MustExtended()
	sr, err := serial.RunKB(k)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := pooled.RunKB(k)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderReports(pr), renderReports(sr); got != want {
		t.Fatalf("worker pool changed KB reports:\n--- pooled ---\n%s--- serial ---\n%s", got, want)
	}
	q := transform.Prologue + `SELECT ?pop WHERE { ?pop preduri:hasJoinType "LEFT_OUTER" }`
	sm, err := serial.FindSPARQL(q)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := pooled.FindSPARQL(q)
	if err != nil {
		t.Fatal(err)
	}
	gs, ws := sortedMatches(pm), sortedMatches(sm)
	if len(gs) != len(ws) {
		t.Fatalf("worker pool: %d matches vs %d serial", len(gs), len(ws))
	}
	for i := range gs {
		if gs[i] != ws[i] {
			t.Fatalf("worker pool match %d differs: %s vs %s", i, gs[i], ws[i])
		}
	}
}

// TestQueryCacheReuse pins the parse-once behavior: the same query text
// yields the same parsed object across FindSPARQL calls.
func TestQueryCacheReuse(t *testing.T) {
	e := New()
	text := transform.Prologue + `SELECT ?pop WHERE { ?pop preduri:hasPopType "TBSCAN" }`
	q1, hit, err := e.queries.get(text)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first lookup reported a cache hit")
	}
	q2, hit, err := e.queries.get(text)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second lookup reported a cache miss")
	}
	if q1 != q2 {
		t.Error("query cache re-parsed identical text")
	}
	if _, _, err := e.queries.get("SELECT nonsense"); err == nil {
		t.Error("cache swallowed a parse error")
	}
	stats := e.CacheStats()
	if stats.Size != 1 {
		t.Errorf("cache size = %d, want 1", stats.Size)
	}
}
