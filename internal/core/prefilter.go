// Workload-scale match prefiltering. Every loaded plan's RDF graph interns
// its full term vocabulary in its dictionary, and the static analysis of a
// query (sparql.Analysis) names the constant terms any matching graph must
// contain. Probing the vocabulary for those required terms is a handful of
// O(1) set lookups, so the engine can discard a (plan, query) pair without
// paying for SPARQL evaluation whenever a required term is missing — the
// common case when scanning a large workload against a knowledge base whose
// entries each match a small fraction of plans.
package core

import (
	"context"
	"sync"
	"time"

	"optimatch/internal/cache"
	"optimatch/internal/sparql"
	"optimatch/internal/transform"
)

// PrefilterStats reports the cumulative effect of the vocabulary prefilter
// on an engine since construction.
type PrefilterStats struct {
	// Probed counts (plan, query) pairs the prefilter inspected.
	Probed int64
	// Skipped counts pairs discarded without evaluation because the plan's
	// vocabulary misses a required constant of the query.
	Skipped int64
	// ShardSkips counts (shard, query) pairs discarded wholesale by the
	// shard-level union-vocabulary probe. Every such skip also advances
	// Probed and Skipped by the shard's plan count, so those two counters
	// stay identical to probing each member plan individually.
	ShardSkips int64
}

// PrefilterStats returns a snapshot of the prefilter counters. With the
// prefilter disabled all counters stay zero.
func (e *Engine) PrefilterStats() PrefilterStats {
	return PrefilterStats{
		Probed:     e.pfProbed.Load(),
		Skipped:    e.pfSkipped.Load(),
		ShardSkips: e.shardSkips.Load(),
	}
}

// mayMatch reports whether the plan's graph can possibly match the analyzed
// query. It never returns false for a plan with at least one match (the
// prefilter property test asserts this over generated workloads).
func (e *Engine) mayMatch(a *sparql.Analysis, r *transform.Result) bool {
	if !e.prefilter {
		return true
	}
	e.pfProbed.Add(1)
	if hook := e.instr.PrefilterProbe; hook != nil {
		start := time.Now()
		ok := a.RequiredIn(r.Graph)
		d := time.Since(start)
		if !ok {
			e.pfSkipped.Add(1)
		}
		hook(d, !ok)
		return ok
	}
	if a.RequiredIn(r.Graph) {
		return true
	}
	e.pfSkipped.Add(1)
	return false
}

// forEachPlan runs fn over the plans on the engine's bounded worker pool.
// Unlike a goroutine-per-plan fan-out, a workload of thousands of plans
// costs a fixed number of goroutines pulling indexes from a channel.
//
// Cancellation semantics: once ctx is cancelled no further plan is
// dispatched; tasks already dequeued finish on their own (each one's SPARQL
// evaluation observes the same ctx and returns within a bounded number of
// iterations), the pool drains completely — no goroutine outlives this call
// — and ctx.Err() is returned.
func (e *Engine) forEachPlan(ctx context.Context, plans []*transform.Result, fn func(i int, r *transform.Result)) error {
	workers := e.workers
	if workers > len(plans) {
		workers = len(plans)
	}
	if e.instr.Pool != nil {
		e.instr.Pool(max(workers, 1), len(plans))
	}
	done := ctx.Done()
	if workers <= 1 {
		for i, r := range plans {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i, r)
		}
		return nil
	}
	idx := make(chan int, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i, plans[i])
			}
		}()
	}
	var err error
dispatch:
	for i := range plans {
		select {
		case idx <- i:
		case <-done:
			err = ctx.Err()
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	if err != nil {
		return err
	}
	return ctx.Err()
}

// maxCachedQueries bounds the engine's parse-once query cache; the least
// recently used entry is evicted beyond it. Workloads re-run a small set of
// pattern and knowledge-base queries, so the bound exists to cap an
// adversarial stream of distinct queries, not to tune a working set.
const maxCachedQueries = 256

// queryCache memoizes parsed queries by their text so repeated requests —
// an optimatchd client re-running a search, or every RunKB call re-scanning
// the same knowledge base — skip the parser. Parsed queries are immutable
// (their static analysis is pre-computed) and safe to share across
// concurrent evaluations. Entries are charged at their query-text length,
// so bytes() approximates the cache's resident key weight.
type queryCache struct {
	mu  sync.Mutex
	lru *cache.LRU
}

// get reports whether the query was served from the cache (a parse failure
// counts as a miss: the parser ran).
func (c *queryCache) get(text string) (q *sparql.Query, hit bool, err error) {
	c.mu.Lock()
	if c.lru != nil {
		if v, ok := c.lru.Get(text); ok {
			c.mu.Unlock()
			return v.(*sparql.Query), true, nil
		}
	}
	c.mu.Unlock()
	q, err = sparql.Parse(text)
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lru == nil {
		c.lru = cache.NewLRU(maxCachedQueries, 0)
	}
	c.lru.Add(text, q, int64(len(text)))
	return q, false, nil
}

// len reports how many parsed queries are cached.
func (c *queryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lru == nil {
		return 0
	}
	return c.lru.Len()
}

// bytes reports the total query-text bytes held by cached entries.
func (c *queryCache) bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lru == nil {
		return 0
	}
	return c.lru.Bytes()
}
