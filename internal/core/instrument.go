// Instrumentation hooks for the engine. The observability layer lives in
// internal/obs, but core must stay dependency-light (it is imported by every
// tool and example), so the engine publishes timings through optional
// function hooks and cheap atomic counters instead of importing a metrics
// registry. A nil hook costs one branch on the hot path; the server layer
// bridges the hooks into Prometheus-rendered histograms.
package core

import (
	"time"

	"optimatch/internal/sparql"
)

// Instrumentation receives per-stage timings from the engine's scan paths.
// Any field may be nil; hooks must be safe for concurrent use (scans run on
// the worker pool).
type Instrumentation struct {
	// PrefilterProbe observes one vocabulary-prefilter probe: how long the
	// required-constant lookup took and whether it discarded the
	// (plan, query) pair without evaluation.
	PrefilterProbe func(d time.Duration, skipped bool)

	// PlanMatch observes one SPARQL evaluation of a query against one
	// plan's graph (a pair that passed the prefilter).
	PlanMatch func(d time.Duration)

	// KBScan observes one whole RunKB pass: wall time, plans scanned,
	// knowledge-base entries applied.
	KBScan func(d time.Duration, plans, entries int)

	// Search observes one whole FindSPARQL pass (pattern searches and raw
	// queries): wall time and plans scanned.
	Search func(d time.Duration, plans int)

	// Pool observes one worker-pool fan-out: how many workers served how
	// many per-plan tasks. tasks/workers approximates per-worker load;
	// workers < configured size means the plan list was the limit.
	Pool func(workers, tasks int)
}

// WithInstrumentation installs scan-stage hooks on the engine.
func WithInstrumentation(in Instrumentation) Option {
	return func(e *Engine) { e.instr = in }
}

// CacheStats is a snapshot of the parse-once query cache's counters.
type CacheStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Size     int   `json:"size"`     // parsed queries currently cached
	Bytes    int64 `json:"bytes"`    // query-text bytes held by cached entries
	Capacity int   `json:"capacity"` // LRU entry bound (maxCachedQueries)
}

// CacheStats returns the query cache's hit/miss counters.
func (e *Engine) CacheStats() CacheStats {
	return CacheStats{
		Hits:     e.cacheHits.Load(),
		Misses:   e.cacheMisses.Load(),
		Size:     e.queries.len(),
		Bytes:    e.queries.bytes(),
		Capacity: maxCachedQueries,
	}
}

// EvalStats returns a snapshot of the evaluator-dispatch counters: how many
// executions ran specialized vs on the term-space fallback, and how many
// bailed out on a missing required constant.
func (e *Engine) EvalStats() sparql.EvalSnapshot {
	return e.evalStats.Snapshot()
}

// getQuery resolves query text through the parse-once cache, counting hits
// and misses (a parse failure counts as a miss: the parser ran).
func (e *Engine) getQuery(text string) (*sparql.Query, error) {
	q, hit, err := e.queries.get(text)
	if hit {
		e.cacheHits.Add(1)
	} else {
		e.cacheMisses.Add(1)
	}
	return q, err
}
