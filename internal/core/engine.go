// Package core implements the OptImatch engine (the paper's Figure 4
// architecture): it loads query execution plans, transforms each into an
// RDF graph exactly once (Algorithm 1), matches user-defined problem
// patterns compiled to SPARQL against every plan (Algorithm 3:
// FindingMatches), and scans the knowledge base to produce ranked,
// context-adapted recommendations per plan (Algorithm 5:
// FindingRecommendationsKB). Plan matching is parallelized across a worker
// pool; each plan's graph is immutable after load and safe for concurrent
// readers.
package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"optimatch/internal/cache"
	"optimatch/internal/kb"
	"optimatch/internal/pattern"
	"optimatch/internal/qep"
	"optimatch/internal/rdf"
	"optimatch/internal/sparql"
	"optimatch/internal/transform"
)

// NoRecommendation is the message reported for a plan no knowledge-base
// entry matches (paper Algorithm 5, line 6).
const NoRecommendation = "There is currently no recommendation in knowledge base"

// ErrDuplicatePlan marks a load rejected because the plan ID is taken.
var ErrDuplicatePlan = errors.New("already loaded")

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers sets the matcher's parallelism (default: GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.workers = n
		}
	}
}

// WithExecOptions overrides SPARQL evaluation options (used by the ablation
// benchmarks).
func WithExecOptions(opts sparql.ExecOptions) Option {
	return func(e *Engine) { e.execOpts = opts }
}

// WithPrefilter toggles the workload-scale acceleration path (default on).
// When disabled, the engine evaluates every (plan, query) pair with the
// baseline evaluator: no vocabulary prefilter and no per-graph query
// specialization. This is the single ablation switch the benchmarks use to
// measure the acceleration end to end; results are identical either way.
func WithPrefilter(enabled bool) Option {
	return func(e *Engine) { e.prefilter = enabled }
}

// WithPathIndex toggles the path-closure acceleration layer (default on):
// per-predicate CSR adjacency snapshots cached on each plan graph, bitset
// BFS with pooled buffers, cardinality-chosen walk direction and
// per-evaluation closure memoization. When disabled, arbitrary-length
// property paths (`input+` descendant searches) fall back to the seed-era
// per-start map BFS. This is the path-acceleration ablation switch,
// mirroring WithPrefilter; results are identical either way.
func WithPathIndex(enabled bool) Option {
	return func(e *Engine) { e.pathIndex = enabled }
}

// WithShards sets how many independent shards the plan repository is split
// into (fnv64a of the plan ID routes each plan to one). Each shard carries
// its own lock, union prefilter vocabulary and generation counter, so
// ingest on distinct shards never contends and scans can discard whole
// shards with one vocabulary probe. Results are byte-identical for every
// shard count: scans merge shard snapshots back into global load order.
// n <= 0 asks for the automatic count (GOMAXPROCS capped at 16); the
// default without this option is 1 (the seed's single-table layout).
func WithShards(n int) Option {
	return func(e *Engine) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
			if n > maxAutoShards {
				n = maxAutoShards
			}
		}
		e.numShards = n
	}
}

// maxAutoShards caps WithShards' automatic shard count: past this, per-shard
// bookkeeping outweighs the contention a shard split saves.
const maxAutoShards = 16

// WithResultCache installs a result cache on the engine: FindSPARQL,
// FindPattern and RunKB results are cached keyed by (query or KB identity,
// engine data generation) and concurrent identical scans collapse onto one
// execution. Every Load/Remove bumps the generation, so a stale result is
// never served — old entries are orphaned and age out of the byte budget.
// Cached result slices are shared between callers and must be treated as
// read-only (every in-tree caller already does). The same cache instance
// may also back the server's rendered-response caching; keys are
// namespaced. Per-execution ablation:
// sparql.ExecOptions.DisableResultCache (engine-wide, via WithExecOptions)
// or cache.WithBypass on the call's context (per call).
func WithResultCache(c *cache.Cache) Option {
	return func(e *Engine) { e.resCache = c }
}

// engineIDs hands every engine a process-unique ID so two engines sharing
// one cache.Cache never collide on (generation, query) keys.
var engineIDs atomic.Uint64

// Engine holds a workload of transformed plans and matches patterns against
// it.
type Engine struct {
	shards    []*planShard
	numShards int           // set by WithShards before the shards are built
	nextSeq   atomic.Uint64 // global load sequence: the cross-shard merge key
	workers   int
	execOpts  sparql.ExecOptions

	// id and generation identify the engine's exact plan set for the
	// result cache: generation is bumped — while the mutated shard's lock
	// (or, for batches, every shard lock) is still held — by every load
	// and removal, mirroring rdf.Graph's per-graph counter at workload
	// scope. A batch load bumps it once, not per plan.
	id         uint64
	generation atomic.Uint64
	resCache   *cache.Cache

	prefilter  bool
	pathIndex  bool
	pfProbed   atomic.Int64
	pfSkipped  atomic.Int64
	shardSkips atomic.Int64 // (shard, query) pairs discarded by the union-vocabulary probe

	queries     queryCache
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	evalStats   sparql.EvalStats
	instr       Instrumentation
}

// New returns an empty engine.
func New(opts ...Option) *Engine {
	e := &Engine{
		numShards: 1,
		workers:   runtime.GOMAXPROCS(0),
		prefilter: true,
		pathIndex: true,
		id:        engineIDs.Add(1),
	}
	for _, o := range opts {
		o(e)
	}
	e.shards = make([]*planShard, e.numShards)
	for i := range e.shards {
		e.shards[i] = newShard()
	}
	return e
}

// evalOpts returns the SPARQL evaluation options in effect for one scan:
// disabling the prefilter also pins evaluation to the unspecialized baseline
// so WithPrefilter(false) ablates the whole acceleration path at once. The
// engine's own evaluator-dispatch counters are attached unless the caller
// supplied their own through WithExecOptions, and the scan's context is
// threaded through so every evaluation observes cancellation cooperatively.
func (e *Engine) evalOpts(ctx context.Context) sparql.ExecOptions {
	opts := e.execOpts
	opts.Ctx = ctx
	if !e.prefilter {
		opts.DisableSpecialization = true
	}
	if !e.pathIndex {
		opts.DisablePathIndex = true
	}
	if opts.Stats == nil {
		opts.Stats = &e.evalStats
	}
	return opts
}

// LoadPlan transforms and registers a parsed plan.
func (e *Engine) LoadPlan(p *qep.Plan) error {
	if err := p.Validate(); err != nil {
		return err
	}
	return e.loadOne(transform.Transform(p))
}

// LoadResult registers an already-transformed plan, sharing its RDF graph
// instead of re-transforming. Used when several engines slice one workload
// (the scalability experiments build ten cumulative buckets over the same
// thousand plans).
func (e *Engine) LoadResult(r *transform.Result) error {
	return e.loadOne(r)
}

// loadOne registers one transformed plan in its home shard, bumping the
// shard and engine generations inside the shard's critical section.
func (e *Engine) loadOne(r *transform.Result) error {
	sh := e.shardFor(r.Plan.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.byID[r.Plan.ID]; dup {
		return fmt.Errorf("core: plan %q %w", r.Plan.ID, ErrDuplicatePlan)
	}
	e.insertLocked(sh, r)
	e.generation.Add(1)
	return nil
}

// LoadPlans registers a batch of plans, stopping at the first error. Each
// plan bumps the data generation individually; use LoadBatch for the
// single-bump ingest path.
func (e *Engine) LoadPlans(plans []*qep.Plan) error {
	for _, p := range plans {
		if err := e.LoadPlan(p); err != nil {
			return err
		}
	}
	return nil
}

// LoadBatch validates, transforms and registers a batch of plans as one
// repository mutation: transformation runs on the worker pool outside any
// lock, the inserts happen under every shard lock at once, and the data
// generation is bumped exactly once (if anything loaded), so a result
// cache keyed on it invalidates once per batch instead of once per plan.
// The i-th returned error is the i-th plan's outcome — validation failures
// and duplicate IDs (within the engine or earlier in the same batch) are
// per-plan, never batch-fatal.
func (e *Engine) LoadBatch(plans []*qep.Plan) []error {
	errs := make([]error, len(plans))
	results := make([]*transform.Result, len(plans))
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(e.workers, 1))
	for i, p := range plans {
		if err := p.Validate(); err != nil {
			errs[i] = err
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, p *qep.Plan) {
			defer wg.Done()
			results[i] = transform.Transform(p)
			<-sem
		}(i, p)
	}
	wg.Wait()

	e.lockAll()
	loaded := 0
	for i, r := range results {
		if r == nil {
			continue
		}
		sh := e.shardFor(r.Plan.ID)
		if _, dup := sh.byID[r.Plan.ID]; dup {
			errs[i] = fmt.Errorf("core: plan %q %w", r.Plan.ID, ErrDuplicatePlan)
			continue
		}
		e.insertLocked(sh, r)
		loaded++
	}
	if loaded > 0 {
		e.generation.Add(1)
	}
	e.unlockAll()
	return errs
}

// LoadTextBatch parses and registers a batch of explain texts through
// LoadBatch. plans[i] is the parsed plan when text i parsed (set even when
// loading then failed as a duplicate); errs[i] is the per-text outcome.
func (e *Engine) LoadTextBatch(texts []string) (plans []*qep.Plan, errs []error) {
	plans = make([]*qep.Plan, len(texts))
	errs = make([]error, len(texts))
	var parsed []*qep.Plan
	var idx []int
	for i, text := range texts {
		p, err := qep.Parse(text)
		if err != nil {
			errs[i] = err
			continue
		}
		plans[i] = p
		parsed = append(parsed, p)
		idx = append(idx, i)
	}
	for j, err := range e.LoadBatch(parsed) {
		if err != nil {
			errs[idx[j]] = err
		}
	}
	return plans, errs
}

// LoadText parses explain text and registers the plan.
func (e *Engine) LoadText(text string) (*qep.Plan, error) {
	p, err := qep.Parse(text)
	if err != nil {
		return nil, err
	}
	if err := e.LoadPlan(p); err != nil {
		return nil, err
	}
	return p, nil
}

// LoadDir parses every explain file (*.txt, *.exfmt, *.exp) in dir and
// registers the plans. It returns the number of plans loaded.
func (e *Engine) LoadDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	n := 0
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		switch filepath.Ext(ent.Name()) {
		case ".txt", ".exfmt", ".exp":
		default:
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			return n, fmt.Errorf("core: %s: %w", ent.Name(), err)
		}
		if _, err := e.LoadText(string(data)); err != nil {
			return n, fmt.Errorf("core: %s: %w", ent.Name(), err)
		}
		n++
	}
	return n, nil
}

// RemovePlan unloads the plan with the given ID, releasing its transformed
// graph. It reports whether the plan was loaded. Matches in flight keep
// their own snapshot of the plan list, so removal never disturbs a running
// scan.
func (e *Engine) RemovePlan(id string) bool {
	sh := e.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.byID[id]; !ok {
		return false
	}
	sh.removeLocked(id)
	e.generation.Add(1)
	return true
}

// Generation returns the engine's data generation: a monotonic counter
// bumped by every plan load and removal. Result-cache keys embed it, so a
// mutation orphans every cached result instead of racing an invalidation.
// A value that is stable across a scan proves the scan saw exactly that
// plan set.
func (e *Engine) Generation() uint64 { return e.generation.Load() }

// NumPlans reports how many plans are loaded.
func (e *Engine) NumPlans() int {
	n := 0
	for _, sh := range e.shards {
		sh.mu.RLock()
		n += len(sh.plans)
		sh.mu.RUnlock()
	}
	return n
}

// Plans returns the loaded plans in load order (merged across shards by
// global load sequence).
func (e *Engine) Plans() []*qep.Plan {
	ss := e.snapshot(nil)
	out := make([]*qep.Plan, len(ss.plans))
	for i, r := range ss.plans {
		out[i] = r.Plan
	}
	return out
}

// Plan returns the loaded plan with the given ID, or nil.
func (e *Engine) Plan(id string) *qep.Plan {
	sh := e.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if r, ok := sh.byID[id]; ok {
		return r.Plan
	}
	return nil
}

// Result returns the transformed plan with the given ID, or nil. The result
// is the engine's own — the exact graph matches run against — so callers
// (the /api/plans/{id}/rdf endpoint) serve what the engine sees instead of
// paying for a fresh transformation whose blank-node labels might differ.
// Results are immutable after load and safe for concurrent readers.
func (e *Engine) Result(id string) *transform.Result {
	sh := e.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.byID[id]
}

// Binding is one de-transformed result-handler binding of a match.
type Binding struct {
	Alias    string
	Term     rdf.Term
	Operator *qep.Operator   // non-nil when the resource is a LOLEPOP
	Object   *qep.BaseObject // non-nil when the resource is a base object
	Display  string          // "NLJOIN(2)", "CUST_DIM", or the raw term
}

// Match is one occurrence of a pattern in one plan, with all result
// handlers de-transformed back to plan entities (Algorithm 3, line 6).
type Match struct {
	Plan     *qep.Plan
	Bindings []Binding
}

// Binding returns the named binding (case-insensitive), or nil.
func (m *Match) Binding(alias string) *Binding {
	for i := range m.Bindings {
		if strings.EqualFold(m.Bindings[i].Alias, alias) {
			return &m.Bindings[i]
		}
	}
	return nil
}

// String renders the match compactly: "Q2: TOP=NLJOIN(2) ANY2=FETCH(3) ...".
func (m *Match) String() string {
	var b strings.Builder
	b.WriteString(m.Plan.ID)
	b.WriteString(":")
	for _, bind := range m.Bindings {
		b.WriteString(" ")
		b.WriteString(bind.Alias)
		b.WriteString("=")
		b.WriteString(bind.Display)
	}
	return b.String()
}

// FindPattern compiles the problem pattern and matches it against every
// loaded plan (Algorithm 3). Matches are returned in plan load order.
func (e *Engine) FindPattern(p *pattern.Pattern) ([]Match, error) {
	return e.FindPatternContext(context.Background(), p)
}

// FindPatternContext is FindPattern bounded by ctx: the scan stops
// enqueueing plans and every in-flight evaluation returns as soon as the
// context is cancelled or its deadline passes.
func (e *Engine) FindPatternContext(ctx context.Context, p *pattern.Pattern) ([]Match, error) {
	c, err := pattern.Compile(p)
	if err != nil {
		return nil, err
	}
	return e.FindCompiledContext(ctx, c)
}

// FindCompiled matches an already-compiled pattern.
func (e *Engine) FindCompiled(c *pattern.Compiled) ([]Match, error) {
	return e.FindCompiledContext(context.Background(), c)
}

// FindCompiledContext is FindCompiled bounded by ctx.
func (e *Engine) FindCompiledContext(ctx context.Context, c *pattern.Compiled) ([]Match, error) {
	return e.FindSPARQLContext(ctx, c.Query)
}

// FindSPARQL matches a raw SPARQL query against every loaded plan. Every
// projected column becomes a binding; resources are de-transformed.
func (e *Engine) FindSPARQL(query string) ([]Match, error) {
	return e.FindSPARQLContext(context.Background(), query)
}

// FindSPARQLContext is FindSPARQL bounded by ctx. Cancellation is
// cooperative at every layer: the worker-pool fan-out stops dispatching
// plans, each running SPARQL evaluation returns from its binding loops and
// closure walks within a bounded number of iterations, and the pool drains
// without leaking goroutines. The returned error then wraps ctx.Err().
//
// With a result cache configured (WithResultCache), the match list is
// cached keyed by (query text, data generation) and concurrent identical
// searches collapse onto one execution; the returned slice is then shared
// and must be treated as read-only. Cancelled executions are never cached.
func (e *Engine) FindSPARQLContext(ctx context.Context, query string) ([]Match, error) {
	q, err := e.getQuery(query)
	if err != nil {
		return nil, err
	}
	if e.resCache == nil || e.execOpts.DisableResultCache {
		ms, _, err := e.findSPARQL(ctx, q)
		return ms, err
	}
	// The key pins the generation observed now; if the scan inside the
	// flight sees a different plan-set generation (a load or removal won
	// the race), the result is still returned but marked NoStore, so a
	// newer result is never filed under an older key.
	keyGen := e.generation.Load()
	key := cache.Key("core.q", e.cacheID(keyGen), query)
	v, _, err := e.resCache.Do(ctx, key, func(fctx context.Context) (cache.Result, error) {
		ms, gen, err := e.findSPARQL(fctx, q)
		if err != nil {
			return cache.Result{}, err
		}
		return cache.Result{Val: ms, Size: sizeOfMatches(ms), NoStore: gen != keyGen}, nil
	})
	if err != nil {
		return nil, err
	}
	ms, _ := v.([]Match)
	return ms, nil
}

// findSPARQL runs one uncached search, returning the data generation the
// plan snapshot was taken at (for cache-store validation).
func (e *Engine) findSPARQL(ctx context.Context, q *sparql.Query) ([]Match, uint64, error) {
	analysis := q.Analysis()
	ss := e.snapshot([]*sparql.Analysis{analysis})
	if e.instr.Search != nil {
		defer func(start time.Time) { e.instr.Search(time.Since(start), len(ss.plans)) }(time.Now())
	}

	type chunk struct {
		matches []Match
		err     error
	}
	results := make([]chunk, len(ss.plans))
	ferr := e.forEachPlan(ctx, ss.plans, func(i int, r *transform.Result) {
		if !e.mayMatchAt(ss, i, 0, analysis) {
			return
		}
		ms, err := e.matchPlan(ctx, q, r)
		results[i] = chunk{matches: ms, err: err}
	})

	var out []Match
	for _, c := range results {
		if c.err != nil {
			return nil, ss.gen, c.err
		}
		out = append(out, c.matches...)
	}
	if ferr != nil {
		return nil, ss.gen, ferr
	}
	return out, ss.gen, nil
}

func (e *Engine) matchPlan(ctx context.Context, q *sparql.Query, r *transform.Result) ([]Match, error) {
	res, err := e.execTimed(ctx, q, r)
	if err != nil {
		return nil, fmt.Errorf("core: plan %s: %w", r.Plan.ID, err)
	}
	var out []Match
	for i := 0; i < res.Len(); i++ {
		m := Match{Plan: r.Plan}
		m.Bindings = make([]Binding, 0, len(res.Vars))
		for c, v := range res.Vars {
			t := res.At(i, c)
			m.Bindings = append(m.Bindings, Binding{
				Alias:    v,
				Term:     t,
				Operator: r.Operator(t),
				Object:   r.Object(t),
				Display:  r.Describe(t),
			})
		}
		out = append(out, m)
	}
	return out, nil
}

// execTimed evaluates one (query, plan) pair, reporting the evaluation
// latency to the PlanMatch hook. With no hook installed the only overhead
// is one nil check.
func (e *Engine) execTimed(ctx context.Context, q *sparql.Query, r *transform.Result) (*sparql.Results, error) {
	if e.instr.PlanMatch == nil {
		return q.ExecOpts(r.Graph, e.evalOpts(ctx))
	}
	start := time.Now()
	res, err := q.ExecOpts(r.Graph, e.evalOpts(ctx))
	e.instr.PlanMatch(time.Since(start))
	return res, err
}

// PlanReport is the knowledge-base outcome for one plan: ranked
// recommendations, or none (Algorithm 5's "no recommendation" case).
type PlanReport struct {
	Plan            *qep.Plan
	Recommendations []kb.Ranked
}

// HasRecommendations reports whether any KB entry matched.
func (pr *PlanReport) HasRecommendations() bool { return len(pr.Recommendations) > 0 }

// Message returns the top-line outcome for the plan.
func (pr *PlanReport) Message() string {
	if !pr.HasRecommendations() {
		return NoRecommendation
	}
	return fmt.Sprintf("%d recommendation(s), top confidence %.2f",
		len(pr.Recommendations), pr.Recommendations[0].Confidence)
}

// RunKB scans every loaded plan against every knowledge-base entry
// (Algorithm 5): each entry's stored SPARQL query is matched, occurrences
// are de-transformed, recommendation templates are adapted to the plan's
// context through the handler tags, and the results are ranked by
// statistical confidence. Reports come back in plan load order.
func (e *Engine) RunKB(k *kb.KnowledgeBase) ([]PlanReport, error) {
	return e.RunKBContext(context.Background(), k)
}

// RunKBContext is RunKB bounded by ctx: cancellation stops the worker-pool
// fan-out from dispatching further plans, interrupts the SPARQL evaluation
// of the plan each worker is on, and drains the pool without leaking
// goroutines before returning an error that wraps ctx.Err().
//
// With a result cache configured (WithResultCache), the report list is
// cached keyed by (knowledge-base identity, data generation) and
// concurrent identical scans collapse onto one execution; the returned
// slice is then shared and must be treated as read-only. Cancelled scans
// are never cached.
func (e *Engine) RunKBContext(ctx context.Context, k *kb.KnowledgeBase) ([]PlanReport, error) {
	if e.resCache == nil || e.execOpts.DisableResultCache {
		reports, _, err := e.runKB(ctx, k)
		return reports, err
	}
	keyGen := e.generation.Load()
	key := cache.Key("core.kb", e.cacheID(keyGen), k.CacheKey())
	v, _, err := e.resCache.Do(ctx, key, func(fctx context.Context) (cache.Result, error) {
		reports, gen, err := e.runKB(fctx, k)
		if err != nil {
			return cache.Result{}, err
		}
		return cache.Result{Val: reports, Size: sizeOfReports(reports), NoStore: gen != keyGen}, nil
	})
	if err != nil {
		return nil, err
	}
	reports, _ := v.([]PlanReport)
	return reports, nil
}

// runKB runs one uncached knowledge-base scan, returning the data
// generation the plan snapshot was taken at (for cache-store validation).
func (e *Engine) runKB(ctx context.Context, k *kb.KnowledgeBase) ([]PlanReport, uint64, error) {
	// Parse every entry query once (cached across RunKB calls).
	entries := make([]compiledEntry, 0, k.Len())
	for _, entry := range k.Entries() {
		q, err := e.getQuery(entry.SPARQL)
		if err != nil {
			return nil, 0, fmt.Errorf("core: kb entry %q: %w", entry.Name, err)
		}
		entries = append(entries, compiledEntry{entry: entry, query: q, analysis: q.Analysis()})
	}

	analyses := make([]*sparql.Analysis, len(entries))
	for i := range entries {
		analyses[i] = entries[i].analysis
	}
	ss := e.snapshot(analyses)
	if e.instr.KBScan != nil {
		defer func(start time.Time) { e.instr.KBScan(time.Since(start), len(ss.plans), len(entries)) }(time.Now())
	}

	reports := make([]PlanReport, len(ss.plans))
	errs := make([]error, len(ss.plans))
	ferr := e.forEachPlan(ctx, ss.plans, func(i int, r *transform.Result) {
		reports[i], errs[i] = e.planReport(ctx, ss, i, entries, r)
	})
	for _, err := range errs {
		if err != nil {
			return nil, ss.gen, err
		}
	}
	if ferr != nil {
		return nil, ss.gen, ferr
	}
	return reports, ss.gen, nil
}

// compiledEntry pairs a knowledge-base entry with its parsed query and the
// query's static analysis (for the prefilter probe).
type compiledEntry struct {
	entry    *kb.Entry
	query    *sparql.Query
	analysis *sparql.Analysis
}

// planReport matches every knowledge-base entry against one plan and
// assembles the ranked recommendation list. i indexes the plan within the
// scan set, so the shard-level prefilter verdicts apply per entry.
func (e *Engine) planReport(ctx context.Context, ss *scanSet, i int, entries []compiledEntry, r *transform.Result) (PlanReport, error) {
	report := PlanReport{Plan: r.Plan}
	for ei, ce := range entries {
		if !e.mayMatchAt(ss, i, ei, ce.analysis) {
			continue
		}
		res, err := e.execTimed(ctx, ce.query, r)
		if err != nil {
			return report, fmt.Errorf("core: plan %s, entry %s: %w", r.Plan.ID, ce.entry.Name, err)
		}
		if res.Len() == 0 {
			continue
		}
		occs := make([]kb.Occurrence, 0, res.Len())
		for i := 0; i < res.Len(); i++ {
			bind := make(map[string]rdf.Term, len(res.Vars))
			for c, v := range res.Vars {
				bind[v] = res.At(i, c)
			}
			occs = append(occs, kb.Occurrence{Plan: r.Plan, Result: r, Bindings: bind})
		}
		ranked, err := ce.entry.Apply(occs)
		if err != nil {
			return report, fmt.Errorf("core: plan %s, entry %s: %w", r.Plan.ID, ce.entry.Name, err)
		}
		report.Recommendations = append(report.Recommendations, ranked...)
	}
	kb.SortRanked(report.Recommendations)
	return report, nil
}

// WorkloadSummary aggregates a KB run for reporting: how many plans matched
// each entry, ordered by entry name.
type WorkloadSummary struct {
	TotalPlans   int
	PlansMatched int
	ByEntry      []EntryCount
}

// EntryCount is the per-entry tally of a workload scan.
type EntryCount struct {
	Name  string
	Plans int // plans with >= 1 occurrence
	Recs  int // total recommendation lines emitted
}

// Summarize aggregates KB reports.
func Summarize(reports []PlanReport) WorkloadSummary {
	s := WorkloadSummary{TotalPlans: len(reports)}
	perEntry := make(map[string]*EntryCount)
	for i := range reports {
		if !reports[i].HasRecommendations() {
			continue
		}
		s.PlansMatched++
		seen := make(map[string]bool)
		for _, rec := range reports[i].Recommendations {
			ec := perEntry[rec.Entry.Name]
			if ec == nil {
				ec = &EntryCount{Name: rec.Entry.Name}
				perEntry[rec.Entry.Name] = ec
			}
			ec.Recs++
			if !seen[rec.Entry.Name] {
				seen[rec.Entry.Name] = true
				ec.Plans++
			}
		}
	}
	for _, ec := range perEntry {
		s.ByEntry = append(s.ByEntry, *ec)
	}
	sort.Slice(s.ByEntry, func(i, j int) bool { return s.ByEntry[i].Name < s.ByEntry[j].Name })
	return s
}
