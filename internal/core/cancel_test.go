package core

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"optimatch/internal/kb"
	"optimatch/internal/transform"
	"optimatch/internal/workload"
)

// workloadEngine loads a generated workload big enough that a scan visits
// many plans, exercising the worker-pool fan-out.
func workloadEngine(t *testing.T, workers int) *Engine {
	t.Helper()
	w, err := workload.Generate(workload.Config{Seed: 7, NumPlans: 60, InjectA: 15, InjectC: 15})
	if err != nil {
		t.Fatal(err)
	}
	e := New(WithWorkers(workers))
	if err := e.LoadPlans(w.Plans); err != nil {
		t.Fatal(err)
	}
	return e
}

const cancelTestQuery = `PREFIX preduri: <http://optimatch/pred/>
SELECT ?op WHERE { ?op preduri:hasPopType "TBSCAN" }`

// checkNoGoroutineLeak fails the test when the goroutine count stays above
// its starting point after the cancelled call returned: the worker pool
// must drain, not strand workers on an abandoned channel.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after cancelled scan",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestFindSPARQLContextCancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := workloadEngine(t, workers)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		before := runtime.NumGoroutine()
		matches, err := e.FindSPARQLContext(ctx, cancelTestQuery)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if matches != nil {
			t.Fatalf("workers=%d: cancelled scan returned matches", workers)
		}
		checkNoGoroutineLeak(t, before)
	}
}

func TestRunKBContextCancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := workloadEngine(t, workers)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		before := runtime.NumGoroutine()
		reports, err := e.RunKBContext(ctx, kb.MustCanonical())
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if reports != nil {
			t.Fatalf("workers=%d: cancelled scan returned reports", workers)
		}
		checkNoGoroutineLeak(t, before)
	}
}

func TestRunKBContextDeadline(t *testing.T) {
	e := workloadEngine(t, 4)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := e.RunKBContext(ctx, kb.MustCanonical())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestContextVariantsMatchPlain pins the back-compat contract: the ctx-less
// wrappers and a Background context produce identical results.
func TestContextVariantsMatchPlain(t *testing.T) {
	e := workloadEngine(t, 4)
	plain, err := e.FindSPARQL(cancelTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := e.FindSPARQLContext(context.Background(), cancelTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(withCtx) {
		t.Fatalf("match counts differ: %d plain, %d with ctx", len(plain), len(withCtx))
	}

	base := kb.MustCanonical()
	r1, err := e.RunKB(base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.RunKBContext(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatalf("report counts differ: %d plain, %d with ctx", len(r1), len(r2))
	}
}

// TestForEachPlanCancelStopsDispatch cancels from inside the first task and
// asserts the fan-out stops dispatching instead of visiting every plan.
func TestForEachPlanCancelStopsDispatch(t *testing.T) {
	e := workloadEngine(t, 2)
	plans := e.snapshot(nil).plans
	if len(plans) < 20 {
		t.Fatalf("want a workload of plans, got %d", len(plans))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var visited atomic.Int64
	err := e.forEachPlan(ctx, plans, func(int, *transform.Result) {
		visited.Add(1)
		cancel()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := visited.Load(); n == 0 || n >= int64(len(plans)) {
		t.Fatalf("visited %d of %d plans; want an early stop after >= 1", n, len(plans))
	}
}
