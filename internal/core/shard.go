// Sharded plan storage for the engine. The single-mutex plan table becomes
// N independent shards (fnv64a of the plan ID picks one), each with its own
// lock, its own union prefilter vocabulary and its own generation counter,
// so concurrent ingest on different shards never contends and a scan can
// discard a whole shard with one vocabulary probe. Scans snapshot every
// shard (locking one at a time) and merge the copies by global load
// sequence, so the report order — and therefore every rendered byte — is
// identical to the seed's single-table order regardless of the shard count.
//
// Generation protocol: every mutation bumps the engine's global generation
// counter while still holding the lock of the shard (or, for a batch, of
// all shards) it mutated. A scan reads the counter, copies the shards, and
// reads the counter again: equal readings prove no mutation's critical
// section overlapped the copy, so the snapshot equals the exact plan set of
// that generation and may be filed in the result cache under it. Unequal
// readings make the two generations differ from any key pinned before the
// copy (the counter is monotonic), so the result is still served but never
// cached under a stale key.
package core

import (
	"sort"
	"sync"

	"optimatch/internal/rdf"
	"optimatch/internal/sparql"
	"optimatch/internal/transform"
)

// planShard is one independent slice of the engine's plan repository.
type planShard struct {
	mu    sync.RWMutex
	plans []shardPlan                  // ascending global load sequence
	byID  map[string]*transform.Result //
	vocab map[rdf.Term]int             // union refcount over member graph vocabularies
	gen   uint64                       // shard-local mutation counter (under mu)
}

// shardPlan pairs a transformed plan with its global load sequence number,
// the merge key that reconstructs single-table load order across shards.
type shardPlan struct {
	seq uint64
	res *transform.Result
}

func newShard() *planShard {
	return &planShard{
		byID:  make(map[string]*transform.Result),
		vocab: make(map[rdf.Term]int),
	}
}

// fnv64a hashes a plan ID for shard routing (FNV-1a, inlined so ingest pays
// no hasher allocation).
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

func (e *Engine) shardFor(id string) *planShard {
	return e.shards[fnv64a(id)%uint64(len(e.shards))]
}

// addVocabLocked folds the graph's full term dictionary into the shard's
// union vocabulary. Caller holds sh.mu.
func (sh *planShard) addVocabLocked(g *rdf.Graph) {
	d := g.Dict()
	for id := rdf.ID(1); int(id) <= d.Len(); id++ {
		sh.vocab[d.Term(id)]++
	}
}

// delVocabLocked removes one graph's contribution. Caller holds sh.mu.
func (sh *planShard) delVocabLocked(g *rdf.Graph) {
	d := g.Dict()
	for id := rdf.ID(1); int(id) <= d.Len(); id++ {
		t := d.Term(id)
		if n := sh.vocab[t]; n <= 1 {
			delete(sh.vocab, t)
		} else {
			sh.vocab[t] = n - 1
		}
	}
}

// hasRequiredLocked reports whether every required constant of the analyzed
// query appears somewhere in the shard (the union vocabulary). When false,
// no member plan can match: the union misses a term exactly when every
// member's dictionary misses it, so the per-plan prefilter would have
// discarded each member anyway. Caller holds sh.mu (read side suffices).
func (sh *planShard) hasRequiredLocked(a *sparql.Analysis) bool {
	for _, t := range a.Required {
		if sh.vocab[t] == 0 {
			return false
		}
	}
	return true
}

// insertLocked registers a transformed plan under the next load sequence.
// Caller holds sh.mu and has already checked for duplicates.
func (e *Engine) insertLocked(sh *planShard, r *transform.Result) {
	sh.plans = append(sh.plans, shardPlan{seq: e.nextSeq.Add(1), res: r})
	sh.byID[r.Plan.ID] = r
	sh.addVocabLocked(r.Graph)
	sh.gen++
}

// removeLocked unregisters a plan. Caller holds sh.mu; the plan must be
// present.
func (sh *planShard) removeLocked(id string) {
	r := sh.byID[id]
	delete(sh.byID, id)
	for i := range sh.plans {
		if sh.plans[i].res == r {
			sh.plans = append(sh.plans[:i:i], sh.plans[i+1:]...)
			break
		}
	}
	sh.delVocabLocked(r.Graph)
	sh.gen++
}

// lockAll / unlockAll take every shard's write lock in index order — the one
// fixed order every multi-shard mutation uses, so batches cannot deadlock
// against each other (scans only ever hold one shard lock at a time).
func (e *Engine) lockAll() {
	for _, sh := range e.shards {
		sh.mu.Lock()
	}
}

func (e *Engine) unlockAll() {
	for _, sh := range e.shards {
		sh.mu.Unlock()
	}
}

// scanSet is one scan's point-in-time view of the sharded repository: the
// merged plan list in global load order, each plan's home shard, and the
// per-(shard, query) verdicts of the shard-level vocabulary prefilter.
type scanSet struct {
	plans []*transform.Result
	shard []int    // aligned with plans: index into pass
	pass  [][]bool // pass[shardIdx][queryIdx]: shard may match query
	gen   uint64   // engine generation observed after the copy
}

// mayMatchAt runs the two-level prefilter for one (plan, query) pair: the
// shard-level verdict first (already counted at snapshot time), then the
// ordinary per-plan vocabulary probe.
func (e *Engine) mayMatchAt(ss *scanSet, i, qi int, a *sparql.Analysis) bool {
	if !ss.pass[ss.shard[i]][qi] {
		return false
	}
	return e.mayMatch(a, ss.plans[i])
}

// snapshot copies every shard's plan list, locking one shard at a time, and
// merges the copies into global load order. For each analyzed query it also
// probes the shard's union vocabulary under the same lock: a failed probe
// skips the whole shard wholesale, and the prefilter counters advance by
// the shard's plan count so PrefilterStats stays identical to probing every
// member individually (each member must miss the same term).
func (e *Engine) snapshot(queries []*sparql.Analysis) *scanSet {
	type entry struct {
		seq   uint64
		shard int
		res   *transform.Result
	}
	var entries []entry
	ss := &scanSet{pass: make([][]bool, len(e.shards))}
	for si, sh := range e.shards {
		verdicts := make([]bool, len(queries))
		sh.mu.RLock()
		for qi, a := range queries {
			if !e.prefilter || sh.hasRequiredLocked(a) {
				verdicts[qi] = true
			} else if n := len(sh.plans); n > 0 {
				e.pfProbed.Add(int64(n))
				e.pfSkipped.Add(int64(n))
				e.shardSkips.Add(1)
			}
		}
		for _, sp := range sh.plans {
			entries = append(entries, entry{seq: sp.seq, shard: si, res: sp.res})
		}
		sh.mu.RUnlock()
		ss.pass[si] = verdicts
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	ss.plans = make([]*transform.Result, len(entries))
	ss.shard = make([]int, len(entries))
	for i, en := range entries {
		ss.plans[i] = en.res
		ss.shard[i] = en.shard
	}
	ss.gen = e.generation.Load()
	return ss
}

// ShardStat is the point-in-time state of one shard.
type ShardStat struct {
	Plans      int    `json:"plans"`
	Generation uint64 `json:"generation"` // shard-local mutation count
	VocabTerms int    `json:"vocabTerms"` // distinct terms in the union vocabulary
}

// NumShards reports the engine's shard count (fixed at construction).
func (e *Engine) NumShards() int { return len(e.shards) }

// ShardStats returns each shard's plan count, mutation counter and union
// vocabulary size, in shard order.
func (e *Engine) ShardStats() []ShardStat {
	out := make([]ShardStat, len(e.shards))
	for i, sh := range e.shards {
		sh.mu.RLock()
		out[i] = ShardStat{Plans: len(sh.plans), Generation: sh.gen, VocabTerms: len(sh.vocab)}
		sh.mu.RUnlock()
	}
	return out
}
