package fixtures

import (
	"testing"

	"optimatch/internal/qep"
)

func TestAllFixturesValidAndRoundTrip(t *testing.T) {
	plans := All()
	if len(plans) != 5 {
		t.Fatalf("All() = %d plans", len(plans))
	}
	plans = append(plans, SharedTemp())
	seen := map[string]bool{}
	for _, p := range plans {
		if seen[p.ID] {
			t.Errorf("duplicate fixture id %s", p.ID)
		}
		seen[p.ID] = true
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.ID, err)
		}
		text := qep.Text(p)
		p2, err := qep.Parse(text)
		if err != nil {
			t.Errorf("%s does not re-parse: %v", p.ID, err)
			continue
		}
		if p2.NumOps() != p.NumOps() {
			t.Errorf("%s: ops after round trip = %d, want %d", p.ID, p2.NumOps(), p.NumOps())
		}
	}
}

func TestNumbered(t *testing.T) {
	plans := Numbered(12)
	if len(plans) != 12 {
		t.Fatalf("Numbered(12) = %d", len(plans))
	}
	seen := map[string]bool{}
	for _, p := range plans {
		if seen[p.ID] {
			t.Errorf("duplicate id %s", p.ID)
		}
		seen[p.ID] = true
	}
}

func TestRenamed(t *testing.T) {
	p := Renamed(Clean(), "XX")
	if p.ID != "XX" {
		t.Errorf("id = %s", p.ID)
	}
}

func TestSharedTempIsDAG(t *testing.T) {
	p := SharedTemp()
	temp := p.Operators[6]
	if len(temp.Parents) != 2 {
		t.Fatalf("TEMP parents = %d, want 2", len(temp.Parents))
	}
	// Walk still visits each operator once.
	visits := map[int]int{}
	p.Walk(func(op *qep.Operator) { visits[op.ID]++ })
	for id, n := range visits {
		if n != 1 {
			t.Errorf("operator %d visited %d times", id, n)
		}
	}
	if len(visits) != p.NumOps() {
		t.Errorf("walked %d of %d operators", len(visits), p.NumOps())
	}
}
