// Package fixtures builds the example plans from the paper's figures for use
// in tests and examples: Figure 1 (NLJOIN with inner TBSCAN — matches
// Pattern A), Figure 7 (join of two left-outer-join subtrees — matches
// Pattern B), Figure 8 (scan with collapsed cardinality — matches Pattern C)
// and a SORT-spill plan for Pattern D.
package fixtures

import (
	"fmt"

	"optimatch/internal/qep"
)

func mustAdd(p *qep.Plan, op *qep.Operator) *qep.Operator {
	if err := p.AddOperator(op); err != nil {
		panic(err)
	}
	return op
}

func mustResolve(p *qep.Plan) *qep.Plan {
	if err := p.Resolve(); err != nil {
		panic(err)
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

// Figure1 returns the paper's Figure 1 plan under a RETURN root:
//
//	RETURN(1) <- NLJOIN(2) <- outer FETCH(3) <- IXSCAN(4) <- SALES_FACT
//	                       <- inner TBSCAN(5) <- CUST_DIM
//
// It contains Pattern A (NLJOIN, outer cardinality > 1, inner TBSCAN with
// cardinality > 100 over base object CUST_DIM).
func Figure1() *qep.Plan {
	p := qep.NewPlan("Q2")
	p.Statement = "SELECT F.SALE_AMT, C.CUST_NAME FROM SALES_FACT F, CUST_DIM C WHERE F.CUST_ID = C.CUST_ID AND F.SALE_DATE > '2015-01-01'"
	p.TotalCost = 15782.2

	salesFact := p.AddObject(&qep.BaseObject{Name: "SALES_FACT", Type: "TABLE", Cardinality: 1e7, Columns: []string{"CUST_ID", "SALE_AMT", "SALE_DATE"}})
	custDim := p.AddObject(&qep.BaseObject{Name: "CUST_DIM", Type: "TABLE", Cardinality: 4043, Columns: []string{"CUST_ID", "CUST_NAME", "REGION"}})
	p.AddObject(&qep.BaseObject{Name: "IDX1", Type: "INDEX", Cardinality: 1e7, Columns: []string{"SALE_DATE"}})

	ret := mustAdd(p, &qep.Operator{ID: 1, Type: "RETURN", TotalCost: 15782.2, IOCost: 1320, CPUCost: 2.9e8, FirstRow: 26, Cardinality: 19.12})
	nl := mustAdd(p, &qep.Operator{ID: 2, Type: "NLJOIN", TotalCost: 15771, IOCost: 1318, CPUCost: 2.87997e8, FirstRow: 25.1, Cardinality: 19.12,
		Args:       map[string]string{"FETCHMAX": "IGNORE"},
		Predicates: []string{"(Q1.CUST_ID = Q2.CUST_ID)"}})
	fetch := mustAdd(p, &qep.Operator{ID: 3, Type: "FETCH", TotalCost: 19.12, IOCost: 2, CPUCost: 1.2e5, FirstRow: 12.9, Cardinality: 19.12,
		Predicates: []string{"(Q2.SALE_DATE > '2015-01-01')"}})
	ix := mustAdd(p, &qep.Operator{ID: 4, Type: "IXSCAN", TotalCost: 12.3, IOCost: 1, CPUCost: 9.1e4, FirstRow: 9.8, Cardinality: 19.12,
		Args: map[string]string{"INDEX": "IDX1"}})
	tb := mustAdd(p, &qep.Operator{ID: 5, Type: "TBSCAN", TotalCost: 15771, IOCost: 1316, CPUCost: 2.8e8, FirstRow: 11.6, Cardinality: 4043})

	p.Link(ret, qep.GeneralStream, nl, nil, 19.12, []string{"Q3.SALE_AMT", "Q3.CUST_NAME"})
	p.Link(nl, qep.OuterStream, fetch, nil, 19.12, []string{"Q2.SALE_AMT", "Q2.CUST_ID"})
	p.Link(nl, qep.InnerStream, tb, nil, 4043, []string{"Q1.CUST_NAME", "Q1.CUST_ID"})
	p.Link(fetch, qep.GeneralStream, ix, nil, 19.12, []string{"Q2.CUST_ID"})
	p.Link(ix, qep.GeneralStream, nil, salesFact, 1e7, []string{"Q2.SALE_DATE"})
	p.Link(tb, qep.GeneralStream, nil, custDim, 4043, []string{"Q1.CUST_NAME", "Q1.CUST_ID"})
	return mustResolve(p)
}

// Figure7 returns the paper's Figure 7 shape: an NLJOIN whose outer subtree
// contains a left-outer HSJOIN and whose inner subtree contains a left-outer
// NLJOIN — the poor-join-order Pattern B, with the LOJ operators several
// hops below the top join (exercising descendant property paths).
func Figure7() *qep.Plan {
	p := qep.NewPlan("Q21")
	p.Statement = "SELECT * FROM (T1 LEFT JOIN T2 ON ...) X JOIN (T3 LEFT JOIN T4 ON ...) Y ON X.K = Y.K"
	p.TotalCost = 196283

	tel := p.AddObject(&qep.BaseObject{Name: "TELEPHONE_DETAIL", Type: "TABLE", Cardinality: 78417, Columns: []string{"K", "V"}})
	tran := p.AddObject(&qep.BaseObject{Name: "TRAN_BASE", Type: "TABLE", Cardinality: 2.77e8, Columns: []string{"K", "AMT"}})
	other := p.AddObject(&qep.BaseObject{Name: "ACCT_DIM", Type: "TABLE", Cardinality: 52000, Columns: []string{"K", "NAME"}})
	p.AddObject(&qep.BaseObject{Name: "IDX9", Type: "INDEX", Cardinality: 2.77e8, Columns: []string{"K"}})

	ret := mustAdd(p, &qep.Operator{ID: 1, Type: "RETURN", TotalCost: 196283, IOCost: 23130, Cardinality: 6.7})
	top := mustAdd(p, &qep.Operator{ID: 5, Type: "NLJOIN", TotalCost: 196280, IOCost: 23129, Cardinality: 6.7,
		Predicates: []string{"(Q1.K = Q21.K)"}})
	lojL := mustAdd(p, &qep.Operator{ID: 6, Type: "HSJOIN", JoinMod: qep.LeftOuterJoin, TotalCost: 180100, IOCost: 21000, Cardinality: 78417,
		Predicates: []string{"(Q4.K = Q5.K)"}})
	hsEarly := mustAdd(p, &qep.Operator{ID: 7, Type: "HSJOIN", JoinMod: qep.EarlyOutJoin, TotalCost: 90000, IOCost: 9000, Cardinality: 78417,
		Predicates: []string{"(Q6.K = Q7.K)"}})
	tbTel := mustAdd(p, &qep.Operator{ID: 8, Type: "TBSCAN", TotalCost: 41000, IOCost: 5000, Cardinality: 78417})
	tbAcct := mustAdd(p, &qep.Operator{ID: 9, Type: "TBSCAN", TotalCost: 30000, IOCost: 2500, Cardinality: 52000})
	tbTel2 := mustAdd(p, &qep.Operator{ID: 12, Type: "TBSCAN", TotalCost: 41000, IOCost: 5000, Cardinality: 78417})
	temp := mustAdd(p, &qep.Operator{ID: 14, Type: "TEMP", TotalCost: 16100, IOCost: 2100, Cardinality: 3.2e-8})
	lojR := mustAdd(p, &qep.Operator{ID: 15, Type: "NLJOIN", JoinMod: qep.LeftOuterJoin, TotalCost: 16090, IOCost: 2099, Cardinality: 3.2e-8,
		Predicates: []string{"(Q8.K = Q9.K)"}})
	fetch := mustAdd(p, &qep.Operator{ID: 16, Type: "FETCH", TotalCost: 8000, IOCost: 1000, Cardinality: 1})
	ix := mustAdd(p, &qep.Operator{ID: 38, Type: "IXSCAN", TotalCost: 4000, IOCost: 500, Cardinality: 1.311e-8,
		Args: map[string]string{"INDEX": "IDX9"}})

	p.Link(ret, qep.GeneralStream, top, nil, 6.7, nil)
	p.Link(top, qep.OuterStream, lojL, nil, 78417, []string{"Q1.K", "Q1.V"})
	p.Link(top, qep.InnerStream, temp, nil, 3.2e-8, []string{"Q21.K"})
	p.Link(lojL, qep.OuterStream, hsEarly, nil, 78417, nil)
	p.Link(lojL, qep.InnerStream, tbTel2, nil, 78417, nil)
	p.Link(hsEarly, qep.OuterStream, tbTel, nil, 78417, nil)
	p.Link(hsEarly, qep.InnerStream, tbAcct, nil, 52000, nil)
	p.Link(tbTel, qep.GeneralStream, nil, tel, 78417, nil)
	p.Link(tbAcct, qep.GeneralStream, nil, other, 52000, nil)
	p.Link(tbTel2, qep.GeneralStream, nil, tel, 78417, nil)
	p.Link(temp, qep.GeneralStream, lojR, nil, 3.2e-8, nil)
	p.Link(lojR, qep.OuterStream, fetch, nil, 1, nil)
	p.Link(lojR, qep.InnerStream, ix, nil, 1.311e-8, nil)
	p.Link(fetch, qep.GeneralStream, nil, tran, 2.77e8, nil)
	p.Link(ix, qep.GeneralStream, nil, tran, 2.77e8, nil)
	return mustResolve(p)
}

// Figure8 returns the paper's Figure 8 shape: an IXSCAN estimating
// 1.311e-08 rows out of a 2.77e+08-row base object — Pattern C.
func Figure8() *qep.Plan {
	p := qep.NewPlan("Q8")
	p.Statement = "SELECT * FROM TRAN_BASE WHERE ACCT = ? AND BRANCH = ?"
	p.TotalCost = 4100

	tran := p.AddObject(&qep.BaseObject{Name: "TRAN_BASE", Type: "TABLE", Cardinality: 2.77e8, Columns: []string{"ACCT", "BRANCH", "AMT"}})
	p.AddObject(&qep.BaseObject{Name: "IDX9", Type: "INDEX", Cardinality: 2.77e8, Columns: []string{"ACCT", "BRANCH"}})

	ret := mustAdd(p, &qep.Operator{ID: 1, Type: "RETURN", TotalCost: 4100, IOCost: 501, Cardinality: 1.311e-8})
	ix := mustAdd(p, &qep.Operator{ID: 38, Type: "IXSCAN", TotalCost: 4000, IOCost: 500, Cardinality: 1.311e-8,
		Args:       map[string]string{"INDEX": "IDX9"},
		Predicates: []string{"(Q21.ACCT = ?)", "(Q21.BRANCH = ?)"}})
	p.Link(ret, qep.GeneralStream, ix, nil, 1.311e-8, nil)
	p.Link(ix, qep.GeneralStream, nil, tran, 2.77e8, nil)
	return mustResolve(p)
}

// SortSpill returns a plan containing Pattern D: a SORT whose input stream
// has a lower I/O cost than the SORT itself (spill indicator).
func SortSpill() *qep.Plan {
	p := qep.NewPlan("Q9")
	p.Statement = "SELECT C1 FROM BIG_T ORDER BY C1"
	p.TotalCost = 9200

	big := p.AddObject(&qep.BaseObject{Name: "BIG_T", Type: "TABLE", Cardinality: 5e6, Columns: []string{"C1", "C2"}})

	ret := mustAdd(p, &qep.Operator{ID: 1, Type: "RETURN", TotalCost: 9200, IOCost: 2210, Cardinality: 5e6})
	srt := mustAdd(p, &qep.Operator{ID: 2, Type: "SORT", TotalCost: 9100, IOCost: 2200, Cardinality: 5e6})
	tb := mustAdd(p, &qep.Operator{ID: 3, Type: "TBSCAN", TotalCost: 4100, IOCost: 900, Cardinality: 5e6})
	p.Link(ret, qep.GeneralStream, srt, nil, 5e6, nil)
	p.Link(srt, qep.GeneralStream, tb, nil, 5e6, []string{"Q1.C1"})
	p.Link(tb, qep.GeneralStream, nil, big, 5e6, []string{"Q1.C1", "Q1.C2"})
	return mustResolve(p)
}

// SharedTemp returns the paper's Section 2.2 ambiguity example: a common
// subexpression — TEMP(6) — consumed by both an NLJOIN and an HSJOIN in
// different parts of the plan (applying different predicates). The plan is
// a DAG, and the reified stream encoding must keep the two consumer edges
// distinct. Matches Pattern F; the TEMP costs more than half the plan, so
// it also matches Pattern E.
func SharedTemp() *qep.Plan {
	p := qep.NewPlan("QCSE")
	p.Statement = "WITH CSE AS (SELECT ...) SELECT * FROM (CSE JOIN A) UNION ALL (CSE JOIN B)"
	p.TotalCost = 900

	a := p.AddObject(&qep.BaseObject{Name: "A", Type: "TABLE", Cardinality: 5000, Columns: []string{"K", "V"}})
	bb := p.AddObject(&qep.BaseObject{Name: "B", Type: "TABLE", Cardinality: 7000, Columns: []string{"K", "W"}})
	src := p.AddObject(&qep.BaseObject{Name: "SRC", Type: "TABLE", Cardinality: 20000, Columns: []string{"K", "X"}})

	ret := mustAdd(p, &qep.Operator{ID: 1, Type: "RETURN", TotalCost: 900, IOCost: 95, Cardinality: 300})
	union := mustAdd(p, &qep.Operator{ID: 2, Type: "UNION", TotalCost: 890, IOCost: 94, Cardinality: 300})
	nl := mustAdd(p, &qep.Operator{ID: 3, Type: "NLJOIN", TotalCost: 700, IOCost: 60, Cardinality: 100,
		Predicates: []string{"(Q1.K = Q3.K)"}})
	hs := mustAdd(p, &qep.Operator{ID: 4, Type: "HSJOIN", TotalCost: 750, IOCost: 70, Cardinality: 200,
		Predicates: []string{"(Q2.K = Q3.K)", "(Q2.W > 10)"}})
	ixA := mustAdd(p, &qep.Operator{ID: 5, Type: "IXSCAN", TotalCost: 40, IOCost: 6, Cardinality: 50})
	temp := mustAdd(p, &qep.Operator{ID: 6, Type: "TEMP", TotalCost: 600, IOCost: 50, Cardinality: 2500})
	ixB := mustAdd(p, &qep.Operator{ID: 7, Type: "IXSCAN", TotalCost: 60, IOCost: 9, Cardinality: 70})
	tbSrc := mustAdd(p, &qep.Operator{ID: 8, Type: "TBSCAN", TotalCost: 560, IOCost: 45, Cardinality: 2500})

	p.Link(ret, qep.GeneralStream, union, nil, 300, nil)
	p.Link(union, qep.OuterStream, nl, nil, 100, nil)
	p.Link(union, qep.InnerStream, hs, nil, 200, nil)
	p.Link(nl, qep.OuterStream, ixA, nil, 50, []string{"Q1.K", "Q1.V"})
	p.Link(nl, qep.InnerStream, temp, nil, 2500, []string{"Q3.K", "Q3.X"})
	p.Link(hs, qep.OuterStream, ixB, nil, 70, []string{"Q2.K", "Q2.W"})
	p.Link(hs, qep.InnerStream, temp, nil, 2500, []string{"Q3.K", "Q3.X"})
	p.Link(ixA, qep.GeneralStream, nil, a, 5000, nil)
	p.Link(ixB, qep.GeneralStream, nil, bb, 7000, nil)
	p.Link(temp, qep.GeneralStream, tbSrc, nil, 2500, nil)
	p.Link(tbSrc, qep.GeneralStream, nil, src, 20000, nil)
	return mustResolve(p)
}

// Clean returns a small plan that matches none of the canonical patterns:
// a hash join fed by two index scans.
func Clean() *qep.Plan {
	p := qep.NewPlan("Q0")
	p.Statement = "SELECT * FROM A JOIN B ON A.K = B.K"
	p.TotalCost = 310

	a := p.AddObject(&qep.BaseObject{Name: "A", Type: "TABLE", Cardinality: 1200, Columns: []string{"K", "V"}})
	b := p.AddObject(&qep.BaseObject{Name: "B", Type: "TABLE", Cardinality: 900, Columns: []string{"K", "W"}})

	ret := mustAdd(p, &qep.Operator{ID: 1, Type: "RETURN", TotalCost: 310, IOCost: 40, Cardinality: 800})
	hs := mustAdd(p, &qep.Operator{ID: 2, Type: "HSJOIN", TotalCost: 300, IOCost: 39, Cardinality: 800,
		Predicates: []string{"(Q1.K = Q2.K)"}})
	ixA := mustAdd(p, &qep.Operator{ID: 3, Type: "IXSCAN", TotalCost: 120, IOCost: 15, Cardinality: 1200})
	ixB := mustAdd(p, &qep.Operator{ID: 4, Type: "IXSCAN", TotalCost: 100, IOCost: 12, Cardinality: 900})
	p.Link(ret, qep.GeneralStream, hs, nil, 800, nil)
	p.Link(hs, qep.OuterStream, ixA, nil, 1200, nil)
	p.Link(hs, qep.InnerStream, ixB, nil, 900, nil)
	p.Link(ixA, qep.GeneralStream, nil, a, 1200, nil)
	p.Link(ixB, qep.GeneralStream, nil, b, 900, nil)
	return mustResolve(p)
}

// All returns one of each fixture plan with distinct IDs.
func All() []*qep.Plan {
	return []*qep.Plan{Figure1(), Figure7(), Figure8(), SortSpill(), Clean()}
}

// Renamed returns the plan with its ID replaced, for building multi-plan
// workloads out of fixtures.
func Renamed(p *qep.Plan, id string) *qep.Plan {
	p.ID = id
	return p
}

// Numbered returns n copies of the fixture set with unique sequential IDs.
func Numbered(n int) []*qep.Plan {
	var out []*qep.Plan
	for i := 0; len(out) < n; i++ {
		for _, p := range All() {
			if len(out) >= n {
				break
			}
			out = append(out, Renamed(p, fmt.Sprintf("W%d", len(out)+1)))
		}
	}
	return out
}
