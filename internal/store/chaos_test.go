package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"optimatch/internal/core"
	"optimatch/internal/faultfs"
	"optimatch/internal/fixtures"
	"optimatch/internal/kb"
	"optimatch/internal/pattern"
	"optimatch/internal/qep"
	"optimatch/internal/storefs"
)

// chaosSweepEnv, when set to a positive integer N, runs the chaos property
// over N randomly drawn seeds on top of the fixed ones — the nightly sweep.
// Each seed is a subtest named seed<n>, so a failure names the exact seed
// to replay locally: go test -run 'TestChaosProperty/seed<n>' ./internal/store
const chaosSweepEnv = "OPTIMATCH_CHAOS_SEEDS"

// TestChaosProperty drives randomized mutation workloads against a store
// whose filesystem fails on a schedule derived from the seed, asserting the
// three degraded-mode invariants:
//
//  1. No injected fault yields a recovered state differing from the last
//     acknowledged durable state (modulo the one documented fsync ambiguity:
//     a failed fsync whose tail scrub also failed may leave exactly the
//     failed record, which Reopen then drops).
//  2. Degraded mode never serves a partially-applied mutation or batch: the
//     served report always equals the acknowledged reference.
//  3. Once faults clear, Reopen succeeds and replays to a byte-identical
//     RunKB report, live and across a restart.
func TestChaosProperty(t *testing.T) {
	seeds := []int64{3, 17, 4099}
	if testing.Short() {
		seeds = seeds[:2]
	}
	if env := os.Getenv(chaosSweepEnv); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n < 0 {
			t.Fatalf("%s=%q: want a non-negative integer", chaosSweepEnv, env)
		}
		src := rand.New(rand.NewSource(time.Now().UnixNano()))
		for i := 0; i < n; i++ {
			seeds = append(seeds, src.Int63())
		}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runChaosProperty(t, seed)
		})
	}
}

// chaosArmable are the operation classes the schedule may fail during live
// mutation and reopen traffic. OpRead is armed separately (it only fires
// during reopen verification or recovery, never during appends).
var chaosArmable = []faultfs.Op{
	faultfs.OpWrite, faultfs.OpSync, faultfs.OpCreate,
	faultfs.OpRename, faultfs.OpOpen, faultfs.OpTruncate,
}

func runChaosProperty(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fatalf := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("[seed %d] "+format, append([]any{seed}, args...)...)
	}

	dir := t.TempDir()
	ffs := faultfs.Wrap(storefs.OS{})
	s, err := Open(dir, WithFS(ffs))
	if err != nil {
		fatalf("Open: %v", err)
	}
	defer s.Close()

	texts := planTexts()
	planIDs := make([]string, 0, len(texts))
	for id := range texts {
		planIDs = append(planIDs, id)
	}
	entryPool := map[string]func() *pattern.Pattern{
		pattern.E().Name: pattern.E,
		pattern.F().Name: pattern.F,
		pattern.G().Name: pattern.G,
	}

	// acked is the reference model: every mutation the store acknowledged,
	// in order. lastFailed tracks the single mutation whose append failed
	// while the store degraded — the only record a crash image may legally
	// contain beyond the acknowledged sequence (failed fsync, failed scrub).
	var acked []mutation
	var lastFailed *mutation
	loaded := map[string]bool{}
	batchSeq := 0 // distinct IDs for generated batch plans

	// ackedReport renders the reference at an acknowledged depth. Batch
	// mutations count as one sequence number, like the store's WAL.
	ackedReport := func(upto uint64, extra *mutation) string {
		eng := core.New()
		base := kb.MustCanonical()
		muts := acked
		if upto <= uint64(len(acked)) {
			muts = acked[:upto]
		}
		if extra != nil {
			muts = append(append([]mutation(nil), muts...), *extra)
		}
		for _, m := range muts {
			switch m.op {
			case opAddPlan:
				if _, err := eng.LoadText(m.text); err != nil {
					fatalf("reference %s %s: %v", m.op, m.id, err)
				}
			case opAddPlanBatch:
				for _, text := range m.batch {
					if _, err := eng.LoadText(text); err != nil {
						fatalf("reference batch: %v", err)
					}
				}
			case opRemovePlan:
				eng.RemovePlan(m.id)
			case opAddEntry:
				if _, err := base.Add(m.pat(), m.recs...); err != nil {
					fatalf("reference addEntry %s: %v", m.id, err)
				}
			case opRemoveEntry:
				base.Remove(m.id)
			}
		}
		return reportString(t, eng, base)
	}

	// checkServed asserts invariant 2: the live store serves exactly the
	// acknowledged state, whatever just failed.
	checkServed := func(step int, when string) {
		want := ackedReport(uint64(len(acked)), nil)
		if got := reportString(t, s.Engine(), s.KB()); got != want {
			fatalf("step %d (%s): served state differs from acknowledged reference:\n--- want\n%s--- got\n%s",
				step, when, want, got)
		}
	}

	// checkImage asserts invariant 1 on a moment-of-crash copy of the
	// directory, recovered by a clean process.
	checkImage := func(step int) {
		img := copyStoreDir(t, dir)
		r, err := Open(img)
		if err != nil {
			fatalf("step %d: recovering crash image: %v", step, err)
		}
		defer r.Close()
		seq := r.Stats().LastSeq
		ackSeq := uint64(len(acked))
		var want string
		switch {
		case seq == ackSeq:
			want = ackedReport(ackSeq, nil)
		case seq == ackSeq+1 && lastFailed != nil:
			// The documented fsync ambiguity: the failed record landed whole
			// and the scrub could not remove it.
			want = ackedReport(ackSeq, lastFailed)
		default:
			fatalf("step %d: crash image recovered seq %d, want %d (acknowledged) — acknowledged durable state lost",
				step, seq, ackSeq)
		}
		if got := reportString(t, r.Engine(), r.KB()); got != want {
			fatalf("step %d: crash image (seq %d) differs from reference:\n--- want\n%s--- got\n%s",
				step, seq, want, got)
		}
	}

	// heal clears the schedule and drives Reopen until the store is healthy
	// again, asserting invariant 3.
	heal := func(step int) {
		// Sometimes exercise a reopen attempt on the still-broken disk first:
		// it must fail without losing anything.
		if rng.Intn(2) == 0 {
			ffs.FailNth(faultfs.OpRead, 1, faultfs.KindErr)
			if err := s.Reopen(); err == nil {
				fatalf("step %d: Reopen succeeded with a read fault armed", step)
			}
			if h := s.Health(); h.State != HealthDegraded {
				fatalf("step %d: health %q after failed reopen", step, h.State)
			}
		}
		ffs.Clear()
		if err := s.Reopen(); err != nil {
			fatalf("step %d: Reopen on healed disk: %v", step, err)
		}
		if h := s.Health(); h.State != HealthOK {
			fatalf("step %d: health %+v after reopen", step, h)
		}
		lastFailed = nil
		checkServed(step, "after reopen")
	}

	steps := 40
	if testing.Short() {
		steps = 25
	}
	for step := 0; step < steps; step++ {
		// Arm a fault ahead of roughly a third of the operations.
		if ffs.Armed() == 0 && rng.Intn(3) == 0 {
			op := chaosArmable[rng.Intn(len(chaosArmable))]
			kind := faultfs.Kinds[rng.Intn(len(faultfs.Kinds))]
			ffs.FailNth(op, int64(1+rng.Intn(3)), kind)
		}

		// Pick a legal mutation for the current acknowledged state.
		var candidates []mutation
		for _, id := range planIDs {
			if !loaded[id] {
				candidates = append(candidates, mutation{op: opAddPlan, id: id, text: texts[id]})
			} else {
				candidates = append(candidates, mutation{op: opRemovePlan, id: id})
			}
		}
		for name, pat := range entryPool {
			if s.KB().Entry(name) == nil {
				candidates = append(candidates, mutation{op: opAddEntry, id: name, pat: pat, recs: []kb.Recommendation{{
					Title:    "advice for " + name,
					Template: "inspect @TOP",
					Weight:   0.5,
				}}})
			} else {
				candidates = append(candidates, mutation{op: opRemoveEntry, id: name})
			}
		}
		candidates = append(candidates, mutation{op: opAddPlanBatch})
		m := candidates[rng.Intn(len(candidates))]

		var opErr error
		switch m.op {
		case opAddPlan:
			_, opErr = s.AddPlan(m.text)
			if opErr == nil {
				loaded[m.id] = true
			}
		case opRemovePlan:
			var ok bool
			ok, opErr = s.RemovePlan(m.id)
			if opErr == nil && !ok {
				fatalf("step %d: RemovePlan(%s) found nothing", step, m.id)
			}
			if opErr == nil {
				delete(loaded, m.id)
			}
		case opAddEntry:
			_, opErr = s.AddEntry(m.pat(), m.recs...)
		case opRemoveEntry:
			var ok bool
			ok, opErr = s.RemoveEntry(m.id)
			if opErr == nil && !ok {
				fatalf("step %d: RemoveEntry(%s) found nothing", step, m.id)
			}
		case opAddPlanBatch:
			n := 2 + rng.Intn(3)
			m.batch = make([]string, n)
			for i := range m.batch {
				batchSeq++
				m.batch[i] = synthBatchText(batchSeq)
			}
			var out []BatchOutcome
			out, opErr = s.AddPlanBatch(m.batch)
			if opErr == nil {
				for i, o := range out {
					if o.Err != nil {
						fatalf("step %d: batch record %d rejected: %v", step, i, o.Err)
					}
				}
			}
		}

		if opErr == nil {
			acked = append(acked, m)
			continue
		}

		// The mutation failed: it must be a persistence or degraded refusal,
		// never a silent partial application.
		if !errors.Is(opErr, ErrPersist) && !errors.Is(opErr, ErrDegraded) {
			fatalf("step %d: %s failed with %v, want ErrPersist or ErrDegraded", step, m.op, opErr)
		}
		if h := s.Health(); h.State != HealthDegraded {
			fatalf("step %d: %s failed (%v) but health is %q", step, m.op, opErr, h.State)
		}
		if errors.Is(opErr, ErrPersist) {
			// The failed record (single mutation or whole batch — one WAL
			// frame either way) may have reached the disk whole before the
			// fsync failed; a crash image is allowed to contain exactly it.
			failed := m
			lastFailed = &failed
		}
		checkServed(step, "after failed "+m.op)
		if rng.Intn(2) == 0 {
			checkImage(step)
		}
		heal(step)
	}

	// Sometimes a compaction failure (rather than an append) is the last
	// event before shutdown; make sure the run covers it at least once.
	ffs.FailNth(faultfs.OpRename, 1, faultfs.KindErr)
	if err := s.Compact(); !errors.Is(err, ErrPersist) {
		fatalf("final Compact = %v, want ErrPersist", err)
	}
	checkServed(steps, "after failed compaction")
	checkImage(steps)
	heal(steps)

	// Invariant 3 across a restart: close and recover the real directory.
	want := ackedReport(uint64(len(acked)), nil)
	if err := s.Close(); err != nil {
		fatalf("Close: %v", err)
	}
	r, err := Open(dir)
	if err != nil {
		fatalf("final recovery: %v", err)
	}
	defer r.Close()
	if got := r.Stats().LastSeq; got != uint64(len(acked)) {
		fatalf("final recovery seq %d, want %d", got, len(acked))
	}
	if got := reportString(t, r.Engine(), r.KB()); got != want {
		fatalf("final recovered report differs from reference:\n--- want\n%s--- got\n%s", want, got)
	}
}

// synthBatchText renders a uniquely-named plan for batch ingest. Chaos runs
// mint fresh B-prefixed IDs so batches never collide with fixture plans or
// each other.
func synthBatchText(n int) string {
	all := fixtures.All()
	p := fixtures.Renamed(all[n%len(all)], fmt.Sprintf("B%d", n))
	return qep.Text(p)
}
