package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"optimatch/internal/core"
	"optimatch/internal/fixtures"
	"optimatch/internal/kb"
	"optimatch/internal/pattern"
	"optimatch/internal/qep"
)

// planTexts returns the fixture plans as explain text, keyed by ID.
func planTexts() map[string]string {
	out := make(map[string]string)
	for _, p := range fixtures.All() {
		out[p.ID] = qep.Text(p)
	}
	return out
}

// reportString renders a full KB run deterministically, so tests can
// compare recovered state to a reference byte for byte. Per-plan blocks are
// sorted by plan ID: engine iteration order depends on insertion history
// (a rolled-back removal re-inserts at the end), and state equality must
// not depend on it.
func reportString(t *testing.T, eng *core.Engine, base *kb.KnowledgeBase) string {
	t.Helper()
	reports, err := eng.RunKB(base)
	if err != nil {
		t.Fatalf("RunKB: %v", err)
	}
	blocks := make([]string, 0, len(reports))
	for i := range reports {
		var b strings.Builder
		fmt.Fprintf(&b, "%s: %s\n", reports[i].Plan.ID, reports[i].Message())
		for _, r := range reports[i].Recommendations {
			fmt.Fprintf(&b, "  [%s] %s %.6f %s\n", r.Entry.Name, r.Recommendation.Title, r.Confidence, r.Text)
		}
		blocks = append(blocks, b.String())
	}
	sort.Strings(blocks)
	return strings.Join(blocks, "")
}

func testEntryPattern() *pattern.Pattern { return pattern.F() }

func testEntryRec() kb.Recommendation {
	return kb.Recommendation{
		Title:    "review CSE",
		Template: "check @TOP shared by @CONSUMER2 and @CONSUMER3",
		Weight:   0.5,
	}
}

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	texts := planTexts()

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"Q2", "Q9", "Q21"} {
		if _, err := s.AddPlan(texts[id]); err != nil {
			t.Fatalf("AddPlan(%s): %v", id, err)
		}
	}
	if _, err := s.AddEntry(testEntryPattern(), testEntryRec()); err != nil {
		t.Fatalf("AddEntry: %v", err)
	}
	if ok, err := s.RemovePlan("Q9"); err != nil || !ok {
		t.Fatalf("RemovePlan(Q9) = %v, %v", ok, err)
	}
	if ok, err := s.RemovePlan("GHOST"); err != nil || ok {
		t.Fatalf("RemovePlan(GHOST) = %v, %v", ok, err)
	}
	want := reportString(t, s.Engine(), s.KB())
	wantStats := s.Stats()
	if wantStats.AppendedRecords != 5 || wantStats.LastSeq != 5 {
		t.Errorf("stats = %+v", wantStats)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if n := r.Engine().NumPlans(); n != 2 {
		t.Fatalf("recovered plans = %d", n)
	}
	if r.Engine().Plan("Q9") != nil || r.Engine().Plan("Q2") == nil {
		t.Error("plan removal not recovered")
	}
	if r.KB().Entry(testEntryPattern().Name) == nil {
		t.Error("kb entry not recovered")
	}
	if got := reportString(t, r.Engine(), r.KB()); got != want {
		t.Errorf("recovered report differs:\n--- want\n%s--- got\n%s", want, got)
	}
	st := r.Stats()
	if st.RecoveredRecords != 5 || st.RecoveryTruncations != 0 || st.LastSeq != 5 {
		t.Errorf("recovered stats = %+v", st)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	texts := planTexts()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"Q2", "Q9", "Q21"} {
		if _, err := s.AddPlan(texts[id]); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	walPath := filepath.Join(dir, walName)
	intact, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name      string
		mutate    func(t *testing.T)
		wantPlans int
	}{
		{"garbage appended", func(t *testing.T) {
			writeFile(t, walPath, append(append([]byte(nil), intact...), "torn!"...))
		}, 3},
		{"mid-record cut", func(t *testing.T) {
			writeFile(t, walPath, intact[:len(intact)-7])
		}, 2},
		{"flipped byte in last record", func(t *testing.T) {
			bad := append([]byte(nil), intact...)
			bad[len(bad)-3] ^= 0xff
			writeFile(t, walPath, bad)
		}, 2},
		{"header-only tail", func(t *testing.T) {
			writeFile(t, walPath, append(append([]byte(nil), intact...), 0xff, 0xff, 0xff))
		}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.mutate(t)
			r, err := Open(dir)
			if err != nil {
				t.Fatalf("open after corruption: %v", err)
			}
			defer r.Close()
			if n := r.Engine().NumPlans(); n != tc.wantPlans {
				t.Errorf("plans = %d, want %d", n, tc.wantPlans)
			}
			if st := r.Stats(); st.RecoveryTruncations != 1 {
				t.Errorf("truncations = %d", st.RecoveryTruncations)
			}
			// The truncated log must reopen cleanly a second time.
			r.Close()
			r2, err := Open(dir)
			if err != nil {
				t.Fatalf("second open: %v", err)
			}
			defer r2.Close()
			if st := r2.Stats(); st.RecoveryTruncations != 0 {
				t.Errorf("second open truncations = %d", st.RecoveryTruncations)
			}
			writeFile(t, walPath, intact) // restore for the next case
		})
	}
}

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCompactionShrinksWALAndPreservesState(t *testing.T) {
	dir := t.TempDir()
	texts := planTexts()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for id, text := range texts {
		if _, err := s.AddPlan(text); err != nil {
			t.Fatalf("AddPlan(%s): %v", id, err)
		}
	}
	if _, err := s.AddEntry(testEntryPattern(), testEntryRec()); err != nil {
		t.Fatal(err)
	}
	want := reportString(t, s.Engine(), s.KB())
	before := s.Stats()
	if before.WALBytes == 0 {
		t.Fatal("WAL empty before compaction")
	}

	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.Stats()
	if after.WALBytes != 0 || after.WALRecords != 0 {
		t.Errorf("WAL not reset: %+v", after)
	}
	if after.Generation != 1 || after.Compactions != 1 || after.LastCompaction.IsZero() {
		t.Errorf("compaction stats = %+v", after)
	}
	if got := reportString(t, s.Engine(), s.KB()); got != want {
		t.Error("compaction changed served state")
	}

	// Appends keep working after the log swap, and recovery sees both the
	// snapshot and the tail.
	if ok, err := s.RemovePlan("Q2"); err != nil || !ok {
		t.Fatalf("RemovePlan after compact = %v, %v", ok, err)
	}
	s.Close()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Engine().Plan("Q2") != nil || r.Engine().NumPlans() != len(texts)-1 {
		t.Errorf("post-compaction tail not replayed: %d plans", r.Engine().NumPlans())
	}
	if st := r.Stats(); st.Generation != 1 || st.RecoveredRecords != 1 {
		t.Errorf("recovered stats = %+v", st)
	}
}

// A crash between publishing the snapshot and resetting the WAL leaves the
// full old log next to the new snapshot; sequence numbers keep replay
// idempotent.
func TestSnapshotPlusStaleWAL(t *testing.T) {
	dir := t.TempDir()
	texts := planTexts()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddPlan(texts["Q2"]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddPlan(texts["Q9"]); err != nil {
		t.Fatal(err)
	}
	s.Close()
	walPath := filepath.Join(dir, walName)
	stale, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	writeFile(t, walPath, stale) // resurrect the pre-compaction log

	r, err := Open(dir)
	if err != nil {
		t.Fatalf("open with stale WAL: %v", err)
	}
	defer r.Close()
	if n := r.Engine().NumPlans(); n != 2 {
		t.Errorf("plans = %d (stale records must be skipped, not re-applied)", n)
	}
	if st := r.Stats(); st.RecoveredRecords != 0 {
		t.Errorf("recovered = %d, want 0 (all records at or below snapshot seq)", st.RecoveredRecords)
	}
}

func TestAutoCompact(t *testing.T) {
	dir := t.TempDir()
	texts := planTexts()
	s, err := Open(dir, WithAutoCompact(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.AddPlan(texts["Q2"]); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Compactions != 0 {
		t.Errorf("compacted too early: %+v", st)
	}
	if _, err := s.AddPlan(texts["Q9"]); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Compactions != 1 || st.WALRecords != 0 {
		t.Errorf("auto-compact missing: %+v", st)
	}
}

func TestDefaultKBAndSnapshotPrecedence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithDefaultKB(kb.MustExtended()))
	if err != nil {
		t.Fatal(err)
	}
	wantLen := s.KB().Len()
	if wantLen != kb.MustExtended().Len() {
		t.Fatalf("default kb = %d entries", wantLen)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// After a snapshot exists, the default is ignored: the snapshot's KB
	// (extended) wins over a canonical default.
	r, err := Open(dir, WithDefaultKB(kb.MustCanonical()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.KB().Len() != wantLen {
		t.Errorf("kb after reopen = %d entries, want %d", r.KB().Len(), wantLen)
	}
}

func TestClosedStoreRefusesMutations(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Errorf("second Close: %v", err)
	}
	if _, err := s.AddPlan("x"); !errors.Is(err, ErrClosed) {
		t.Errorf("AddPlan after close: %v", err)
	}
	if _, err := s.RemovePlan("x"); !errors.Is(err, ErrClosed) {
		t.Errorf("RemovePlan after close: %v", err)
	}
	if _, err := s.AddEntry(testEntryPattern(), testEntryRec()); !errors.Is(err, ErrClosed) {
		t.Errorf("AddEntry after close: %v", err)
	}
	if _, err := s.RemoveEntry("x"); !errors.Is(err, ErrClosed) {
		t.Errorf("RemoveEntry after close: %v", err)
	}
	if err := s.Compact(); !errors.Is(err, ErrClosed) {
		t.Errorf("Compact after close: %v", err)
	}
}

func TestValidationErrorsAreNotPersistErrors(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.AddPlan("not a plan"); err == nil || errors.Is(err, ErrPersist) {
		t.Errorf("garbage plan: %v", err)
	}
	texts := planTexts()
	if _, err := s.AddPlan(texts["Q2"]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddPlan(texts["Q2"]); err == nil || errors.Is(err, ErrPersist) {
		t.Errorf("duplicate plan: %v", err)
	}
	// Failed mutations must not leave records behind.
	if st := s.Stats(); st.AppendedRecords != 1 {
		t.Errorf("appended = %d, want 1", st.AppendedRecords)
	}
}
