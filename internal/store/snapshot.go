package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"

	"optimatch/internal/kb"
	"optimatch/internal/qep"
	"optimatch/internal/storefs"
)

const (
	snapshotName = "snapshot.json"
	walName      = "wal.log"
)

// snapshot is the compacted state of the repository: every plan's raw
// explain text plus the knowledge base in its kb.Save envelope. LastSeq
// records the newest WAL sequence number the snapshot absorbed; replay
// skips records at or below it. Generation counts compactions.
type snapshot struct {
	Version    int             `json:"version"`
	Generation uint64          `json:"generation"`
	LastSeq    uint64          `json:"lastSeq"`
	Plans      []snapshotPlan  `json:"plans"`
	KB         json.RawMessage `json:"kb"`
}

// snapshotPlan preserves one plan as the explain text it round-trips
// through qep.Parse. Plans loaded from files keep their original source;
// programmatically built plans are rendered with qep.Text.
type snapshotPlan struct {
	ID   string `json:"id"`
	Text string `json:"text"`
}

// planText returns the explain text that re-parses into p.
func planText(p *qep.Plan) string {
	if p.Source != "" {
		return p.Source
	}
	return qep.Text(p)
}

// buildSnapshot captures the given state. The caller must hold whatever
// lock guards the knowledge base.
func buildSnapshot(gen, lastSeq uint64, plans []*qep.Plan, base *kb.KnowledgeBase) (*snapshot, error) {
	snap := &snapshot{Version: 1, Generation: gen, LastSeq: lastSeq}
	for _, p := range plans {
		snap.Plans = append(snap.Plans, snapshotPlan{ID: p.ID, Text: planText(p)})
	}
	var buf bytes.Buffer
	if err := base.Save(&buf); err != nil {
		return nil, fmt.Errorf("store: serializing knowledge base: %w", err)
	}
	snap.KB = json.RawMessage(buf.Bytes())
	return snap, nil
}

// writeSnapshot persists the snapshot atomically: write to a temp file in
// the same directory, fsync it, rename over the live name, fsync the
// directory. A crash at any point leaves either the old snapshot or the
// new one, never a partial file.
func writeSnapshot(fsys storefs.FS, dir string, snap *snapshot) error {
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	return atomicWrite(fsys, dir, snapshotName, data)
}

// readSnapshot loads the current snapshot, or returns nil if none exists.
func readSnapshot(fsys storefs.FS, dir string) (*snapshot, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, snapshotName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading snapshot: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("store: decoding snapshot: %w", err)
	}
	if snap.Version != 1 {
		return nil, fmt.Errorf("store: snapshot version %d not supported", snap.Version)
	}
	return &snap, nil
}

// atomicWrite replaces dir/name with data via temp file + rename.
func atomicWrite(fsys storefs.FS, dir, name string, data []byte) error {
	tmp, err := fsys.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	defer fsys.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: writing %s: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: syncing %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing %s: %w", name, err)
	}
	if err := fsys.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("store: publishing %s: %w", name, err)
	}
	return syncDir(fsys, dir)
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(fsys storefs.FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: syncing %s: %w", dir, err)
	}
	return nil
}
