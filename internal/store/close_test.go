package store

import (
	"errors"
	"sync"
	"testing"

	"optimatch/internal/core"
)

// TestCloseIdempotent pins Close's contract: the first call flushes and
// closes, every later call is a cheap nil, and reads keep working.
func TestCloseIdempotent(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddPlan(batchTexts(1)[0]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
	if h := s.Health(); h.State != HealthClosed {
		t.Fatalf("Health after close = %+v", h)
	}
	if s.Engine().Plan("W1") == nil {
		t.Fatal("reads stopped working after Close")
	}
	if _, err := s.AddPlan(batchTexts(2)[1]); !errors.Is(err, ErrClosed) {
		t.Fatalf("AddPlan after close = %v, want ErrClosed", err)
	}
	if err := s.Reopen(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Reopen after close = %v, want ErrClosed", err)
	}
}

// TestCloseConcurrentWithMutations hammers Close against in-flight appends,
// batch ingest and compactions (run it with -race). Every mutation must
// either complete durably or refuse with ErrClosed — no torn writes, no
// panics, no writes acknowledged after Close returns.
func TestCloseConcurrentWithMutations(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithEngineOptions(core.WithShards(4)))
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	texts := batchTexts(200)
	var wg sync.WaitGroup
	var mu sync.Mutex
	acked := map[string]bool{} // plans acknowledged durable before Close won

	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		t.Errorf(format, args...)
	}

	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := w; i < len(texts); i += writers {
				if i%7 == 3 {
					// Batches ride along so the batch append path races too.
					out, err := s.AddPlanBatch(texts[i : i+1])
					switch {
					case errors.Is(err, ErrClosed):
						return
					case err != nil:
						fail("AddPlanBatch(%d): %v", i, err)
						return
					default:
						mu.Lock()
						acked[out[0].Plan.ID] = true
						mu.Unlock()
					}
					continue
				}
				p, err := s.AddPlan(texts[i])
				switch {
				case errors.Is(err, ErrClosed):
					return
				case err != nil:
					fail("AddPlan(%d): %v", i, err)
					return
				default:
					mu.Lock()
					acked[p.ID] = true
					mu.Unlock()
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for {
			if err := s.Compact(); errors.Is(err, ErrClosed) {
				return
			} else if err != nil {
				fail("Compact: %v", err)
				return
			}
		}
	}()
	// Several goroutines race Close itself; all must return nil.
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := s.Close(); err != nil {
				fail("concurrent Close: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()

	if t.Failed() {
		return
	}
	// Every acknowledged plan must be recoverable: durability won the race
	// or the write was refused, never half of each.
	r, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery after close race: %v", err)
	}
	defer r.Close()
	for id := range acked {
		if r.Engine().Plan(id) == nil {
			t.Errorf("plan %s acknowledged before Close but not recovered", id)
		}
	}
	if got, want := r.Engine().NumPlans(), len(acked); got != want {
		t.Errorf("recovered %d plans, want exactly the %d acknowledged", got, want)
	}
}
