package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"optimatch/internal/core"
	"optimatch/internal/fixtures"
	"optimatch/internal/qep"
)

// batchTexts renders n distinctly-named fixture plans to explain text.
func batchTexts(n int) []string {
	plans := fixtures.Numbered(n)
	out := make([]string, n)
	for i, p := range plans {
		out[i] = qep.Text(p)
	}
	return out
}

// TestAddPlanBatchRoundTrip pins the batch-ingest contract: mixed outcomes
// are per-record, the accepted plans land in the engine under one fsync and
// one WAL record, and a reopen replays the batch record exactly.
func TestAddPlanBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithEngineOptions(core.WithShards(4)))
	if err != nil {
		t.Fatal(err)
	}
	texts := batchTexts(6)
	if _, err := s.AddPlan(texts[0]); err != nil { // pre-load one: batch sees it as a duplicate
		t.Fatal(err)
	}
	statsBefore := s.Stats()

	batch := append([]string{"not a plan"}, texts...) // texts[0] will be a duplicate
	out, err := s.AddPlanBatch(batch)
	if err != nil {
		t.Fatalf("AddPlanBatch: %v", err)
	}
	if len(out) != len(batch) {
		t.Fatalf("outcomes = %d, want %d", len(out), len(batch))
	}
	if out[0].Err == nil || out[0].Plan != nil {
		t.Fatalf("garbage text outcome = %+v, want parse error", out[0])
	}
	if !errors.Is(out[1].Err, core.ErrDuplicatePlan) || out[1].Plan == nil {
		t.Fatalf("duplicate outcome = %+v, want ErrDuplicatePlan with plan", out[1])
	}
	for i := 2; i < len(out); i++ {
		if out[i].Err != nil {
			t.Fatalf("outcome %d: %v", i, out[i].Err)
		}
	}
	st := s.Stats()
	if got := st.Fsyncs - statsBefore.Fsyncs; got != 1 {
		t.Fatalf("batch cost %d fsyncs, want 1", got)
	}
	if got := st.AppendedRecords - statsBefore.AppendedRecords; got != 1 {
		t.Fatalf("batch appended %d records, want 1", got)
	}
	if st.BatchAppends != 1 || st.BatchPlans != int64(len(texts)-1) {
		t.Fatalf("batch counters = %d appends / %d plans, want 1 / %d", st.BatchAppends, st.BatchPlans, len(texts)-1)
	}
	if got, want := s.Engine().NumPlans(), len(texts); got != want {
		t.Fatalf("NumPlans = %d, want %d", got, want)
	}
	want := reportString(t, s.Engine(), s.KB())
	s.Close()

	r, err := Open(dir, WithEngineOptions(core.WithShards(4)))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Engine().NumPlans(); got != len(texts) {
		t.Fatalf("recovered NumPlans = %d, want %d", got, len(texts))
	}
	if got := reportString(t, r.Engine(), r.KB()); got != want {
		t.Fatalf("recovered report differs:\n--- want\n%s--- got\n%s", want, got)
	}
}

// TestAddPlanBatchAllRejected: a batch where nothing is accepted journals
// nothing — no record, no fsync, no sequence consumed.
func TestAddPlanBatchAllRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	before := s.Stats()
	out, err := s.AddPlanBatch([]string{"garbage", "more garbage"})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if o.Err == nil {
			t.Fatalf("outcome %d unexpectedly accepted", i)
		}
	}
	after := s.Stats()
	if after.Fsyncs != before.Fsyncs || after.AppendedRecords != before.AppendedRecords || after.LastSeq != before.LastSeq {
		t.Fatalf("all-rejected batch touched the log: before %+v after %+v", before, after)
	}
}

// TestTornBatchTruncatedWholesale pins the atomicity of the batch record: a
// crash that tears the batch frame drops the whole batch on recovery — no
// partial subset of its plans is ever visible.
func TestTornBatchTruncatedWholesale(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	texts := batchTexts(9)
	if _, err := s.AddPlan(texts[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddPlanBatch(texts[1:]); err != nil {
		t.Fatal(err)
	}
	if got := s.Engine().NumPlans(); got != len(texts) {
		t.Fatalf("NumPlans = %d, want %d", got, len(texts))
	}
	s.Close()

	// Tear the tail mid-way through the batch frame (the last record).
	walPath := filepath.Join(dir, walName)
	intact, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{7, len(intact) / 4, len(intact) / 2} {
		writeFile(t, walPath, intact[:len(intact)-cut])
		r, err := Open(dir)
		if err != nil {
			t.Fatalf("open after %d-byte tear: %v", cut, err)
		}
		if got := r.Engine().NumPlans(); got != 1 {
			t.Fatalf("after %d-byte tear: %d plans visible, want only the pre-batch plan", cut, got)
		}
		if st := r.Stats(); st.RecoveryTruncations != 1 {
			t.Fatalf("after %d-byte tear: truncations = %d, want 1", cut, st.RecoveryTruncations)
		}
		r.Close()
	}
}

// TestBatchSurvivesCompaction: compaction folds batch-ingested plans into
// the snapshot like any others, and a stale WAL containing the batch record
// is skipped by sequence on replay.
func TestBatchSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	texts := batchTexts(5)
	if _, err := s.AddPlanBatch(texts); err != nil {
		t.Fatal(err)
	}
	want := reportString(t, s.Engine(), s.KB())

	// Preserve the pre-compaction WAL (holding the batch record), compact,
	// then restore it next to the fresh snapshot: replay must skip the
	// already-absorbed batch by sequence, not double-load it.
	walPath := filepath.Join(dir, walName)
	stale, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	writeFile(t, walPath, stale)

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Engine().NumPlans(); got != len(texts) {
		t.Fatalf("NumPlans = %d, want %d", got, len(texts))
	}
	if got := reportString(t, r.Engine(), r.KB()); got != want {
		t.Fatalf("state after compaction + stale WAL differs:\n--- want\n%s--- got\n%s", want, got)
	}
	if st := r.Stats(); st.RecoveredRecords != 0 {
		t.Fatalf("recovered %d records, want 0 (all absorbed by snapshot)", st.RecoveredRecords)
	}
}
