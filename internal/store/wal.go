package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"

	"optimatch/internal/storefs"
)

// WAL record framing: every record is
//
//	uint32 payload length (little-endian)
//	uint32 CRC32 (IEEE) of the payload
//	payload (JSON-encoded record)
//
// Appends are a single Write followed by fsync, so a crash leaves at most
// one torn record at the tail. Recovery scans from the start and truncates
// the file at the first frame whose header or checksum does not verify;
// everything before that point is intact by CRC.
const (
	headerSize = 8
	// maxRecordBytes bounds a single record so a corrupted length field
	// cannot make recovery allocate gigabytes. It matches the server's
	// upload cap with JSON overhead to spare.
	maxRecordBytes = 32 << 20
)

// Operation tags for WAL records and the op log.
const (
	opAddPlan      = "addPlan"
	opRemovePlan   = "removePlan"
	opAddEntry     = "addEntry"
	opRemoveEntry  = "removeEntry"
	opAddPlanBatch = "addPlanBatch"
)

// record is one durable mutation. Seq is a monotonically increasing log
// sequence number; a snapshot remembers the last sequence it absorbed, so
// replay skips any record at or below it (records are idempotent by
// sequence, which also makes the compaction swap crash-safe in both
// orders).
type record struct {
	Seq   uint64          `json:"seq"`
	Op    string          `json:"op"`
	ID    string          `json:"id,omitempty"`    // plan ID or KB entry name
	Text  string          `json:"text,omitempty"`  // raw explain text (addPlan)
	Item  json.RawMessage `json:"entry,omitempty"` // kb.Entry JSON (addEntry)
	Batch []batchItem     `json:"batch,omitempty"` // accepted plans (addPlanBatch)
}

// batchItem is one accepted plan inside an addPlanBatch record. The whole
// batch shares one frame, one sequence number and one fsync, so a torn tail
// drops the batch atomically — recovery never sees part of it.
type batchItem struct {
	ID   string `json:"id"`
	Text string `json:"text"`
}

// encodeRecord frames the record for appending.
func encodeRecord(rec *record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encoding record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("store: record of %d bytes exceeds limit", len(payload))
	}
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[headerSize:], payload)
	return buf, nil
}

// scanWAL reads every intact record from the log at path. It returns the
// decoded records, the byte offset just past each good frame (so callers
// can truncate back to any record boundary; the last entry is the good
// length of the log), and whether a torn or corrupt tail was found after
// that offset. A missing file scans as empty.
func scanWAL(fsys storefs.FS, path string) (recs []record, ends []int64, torn bool, err error) {
	f, err := fsys.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil, false, nil
		}
		return nil, nil, false, fmt.Errorf("store: opening WAL: %w", err)
	}
	defer f.Close()

	var offset int64
	var header [headerSize]byte
	for {
		_, err := io.ReadFull(f, header[:])
		if err == io.EOF {
			return recs, ends, false, nil // clean end of log
		}
		if err == io.ErrUnexpectedEOF {
			return recs, ends, true, nil // torn header
		}
		if err != nil {
			// A real read failure (bad sector, injected fault) is not a torn
			// tail: truncating here would destroy data that may be intact, so
			// recovery fails loudly instead.
			return nil, nil, false, fmt.Errorf("store: reading WAL: %w", err)
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length < 2 || length > maxRecordBytes {
			return recs, ends, true, nil // implausible length: corrupt
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.ErrUnexpectedEOF || err == io.EOF {
				return recs, ends, true, nil // torn payload
			}
			return nil, nil, false, fmt.Errorf("store: reading WAL: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, ends, true, nil // bit rot or torn rewrite
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			// The frame verified but the payload is not a record we can
			// read: stop here rather than guess (version skew).
			return recs, ends, true, nil
		}
		recs = append(recs, rec)
		offset += headerSize + int64(length)
		ends = append(ends, offset)
	}
}

// goodLength is the byte length of the intact prefix scanWAL found.
func goodLength(ends []int64) int64 {
	if len(ends) == 0 {
		return 0
	}
	return ends[len(ends)-1]
}
