package store

import (
	"errors"
	"fmt"
	"syscall"
	"testing"

	"optimatch/internal/faultfs"
	"optimatch/internal/storefs"
)

// faultStore opens a store whose every filesystem operation goes through a
// fault injector, seeded with two plans and one KB entry as the
// acknowledged baseline. It returns the injector, the store, the directory
// and the baseline's deterministic KB-run report.
func faultStore(t *testing.T) (string, *faultfs.FS, *Store, string) {
	t.Helper()
	dir := t.TempDir()
	ffs := faultfs.Wrap(storefs.OS{})
	s, err := Open(dir, WithFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	texts := batchTexts(2)
	for _, text := range texts {
		if _, err := s.AddPlan(text); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.AddEntry(testEntryPattern(), testEntryRec()); err != nil {
		t.Fatal(err)
	}
	return dir, ffs, s, reportString(t, s.Engine(), s.KB())
}

// wantDegraded asserts the store is read-only: every mutator must refuse
// with ErrDegraded without touching served state.
func wantDegraded(t *testing.T, s *Store, want string) {
	t.Helper()
	if h := s.Health(); h.State != HealthDegraded || h.Reason == "" || h.Since.IsZero() {
		t.Fatalf("Health() = %+v, want degraded with reason and timestamp", h)
	}
	if !s.Stats().Degraded {
		t.Fatal("Stats().Degraded = false while degraded")
	}
	if _, err := s.AddPlan(batchTexts(3)[2]); !errors.Is(err, ErrDegraded) {
		t.Fatalf("AddPlan while degraded: %v, want ErrDegraded", err)
	}
	if _, err := s.AddPlanBatch(batchTexts(1)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("AddPlanBatch while degraded: %v, want ErrDegraded", err)
	}
	if _, err := s.RemovePlan("W1"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("RemovePlan while degraded: %v, want ErrDegraded", err)
	}
	if _, err := s.AddEntry(testEntryPattern(), testEntryRec()); !errors.Is(err, ErrDegraded) {
		t.Fatalf("AddEntry while degraded: %v, want ErrDegraded", err)
	}
	if _, err := s.RemoveEntry(testEntryPattern().Name); !errors.Is(err, ErrDegraded) {
		t.Fatalf("RemoveEntry while degraded: %v, want ErrDegraded", err)
	}
	if err := s.Compact(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Compact while degraded: %v, want ErrDegraded", err)
	}
	if got := reportString(t, s.Engine(), s.KB()); got != want {
		t.Fatalf("served state drifted while degraded:\n--- want\n%s--- got\n%s", want, got)
	}
}

// recoverImage opens a moment-of-crash copy of dir with a clean filesystem
// (the next process on a healed disk) and returns its recovered sequence
// and report.
func recoverImage(t *testing.T, dir string) (uint64, string) {
	t.Helper()
	img := copyStoreDir(t, dir)
	r, err := Open(img)
	if err != nil {
		t.Fatalf("recovering crash image: %v", err)
	}
	defer r.Close()
	return r.Stats().LastSeq, reportString(t, r.Engine(), r.KB())
}

func TestAppendWriteFaultDegradesAndRollsBack(t *testing.T) {
	for _, kind := range []faultfs.Kind{faultfs.KindErr, faultfs.KindENOSPC, faultfs.KindShortWrite} {
		t.Run(kind.String(), func(t *testing.T) {
			dir, ffs, s, want := faultStore(t)
			ackSeq := s.Stats().LastSeq

			ffs.FailNth(faultfs.OpWrite, 1, kind)
			text := batchTexts(3)[2]
			_, err := s.AddPlan(text)
			if !errors.Is(err, ErrPersist) || !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("AddPlan = %v, want ErrPersist wrapping the injected fault", err)
			}
			if kind == faultfs.KindENOSPC && !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("AddPlan = %v, want the ENOSPC cause preserved", err)
			}
			if s.Engine().Plan("W3") != nil {
				t.Fatal("failed AddPlan left the plan in the engine")
			}
			if got := s.Stats().FaultWrites; got != 1 {
				t.Fatalf("FaultWrites = %d, want 1", got)
			}
			wantDegraded(t, s, want)

			// Invariant 1: a crash image taken now recovers to exactly the
			// acknowledged state — the failed append (torn or whole) is gone.
			seq, got := recoverImage(t, dir)
			if seq != ackSeq || got != want {
				t.Fatalf("recovered seq %d (want %d):\n--- want\n%s--- got\n%s", seq, ackSeq, want, got)
			}

			// Invariant 3: heal the disk, reopen, and the store takes writes
			// again; a restart replays to the same bytes.
			ffs.Clear()
			if err := s.Reopen(); err != nil {
				t.Fatalf("Reopen after healing: %v", err)
			}
			if h := s.Health(); h.State != HealthOK {
				t.Fatalf("Health after reopen = %+v", h)
			}
			if _, err := s.AddPlan(text); err != nil {
				t.Fatalf("AddPlan after reopen: %v", err)
			}
			want = reportString(t, s.Engine(), s.KB())
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			seq, got = recoverImage(t, dir)
			if seq != ackSeq+1 || got != want {
				t.Fatalf("post-reopen restart: seq %d (want %d), report mismatch %v",
					seq, ackSeq+1, got != want)
			}
		})
	}
}

func TestFsyncFaultScrubsUnacknowledgedTail(t *testing.T) {
	dir, ffs, s, want := faultStore(t)
	ackSeq := s.Stats().LastSeq

	// The record is fully written before the fsync fails: without the tail
	// scrub it would sit complete-and-valid on disk, and recovery would
	// resurrect a mutation the caller saw fail.
	ffs.FailNth(faultfs.OpSync, 1, faultfs.KindErr)
	if _, err := s.AddPlan(batchTexts(3)[2]); !errors.Is(err, ErrPersist) {
		t.Fatalf("AddPlan = %v, want ErrPersist", err)
	}
	if got := s.Stats().FaultSyncs; got != 1 {
		t.Fatalf("FaultSyncs = %d, want 1", got)
	}
	seq, got := recoverImage(t, dir)
	if seq != ackSeq || got != want {
		t.Fatalf("recovered seq %d, want %d (unacknowledged record survived the scrub)", seq, ackSeq)
	}
}

func TestFsyncFaultWithFailedScrubRepairsOnReopen(t *testing.T) {
	dir, ffs, s, want := faultStore(t)
	ackSeq := s.Stats().LastSeq

	// Worst case: the fsync fails AND the best-effort scrub truncate fails
	// too, so a complete record with an unacknowledged sequence number is
	// left on disk. A crash image recovers it — the inherent ambiguity of a
	// failed fsync — but Reopen must drop it before writes resume.
	ffs.FailNth(faultfs.OpSync, 1, faultfs.KindErr)
	ffs.FailNth(faultfs.OpTruncate, 1, faultfs.KindErr)
	if _, err := s.AddPlan(batchTexts(3)[2]); !errors.Is(err, ErrPersist) {
		t.Fatalf("AddPlan = %v, want ErrPersist", err)
	}
	if seq, _ := recoverImage(t, dir); seq != ackSeq+1 {
		t.Fatalf("crash image seq = %d, want %d (the unscrubbed record)", seq, ackSeq+1)
	}

	ffs.Clear()
	if err := s.Reopen(); err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen re-verified the tail: the unacknowledged record is gone and a
	// fresh process sees exactly the acknowledged state.
	seq, got := recoverImage(t, dir)
	if seq != ackSeq || got != want {
		t.Fatalf("post-reopen seq %d, want %d (reopen kept an unacknowledged record)", seq, ackSeq)
	}
}

func TestReopenFailureStaysDegradedAndIsRetryable(t *testing.T) {
	_, ffs, s, want := faultStore(t)

	ffs.FailNth(faultfs.OpWrite, 1, faultfs.KindErr)
	if _, err := s.AddPlan(batchTexts(3)[2]); !errors.Is(err, ErrPersist) {
		t.Fatalf("AddPlan = %v, want ErrPersist", err)
	}
	// The disk is still broken during re-verification: Reopen's WAL scan
	// hits a read fault, must NOT truncate anything, and stays degraded.
	ffs.FailNth(faultfs.OpRead, 1, faultfs.KindErr)
	if err := s.Reopen(); !errors.Is(err, ErrPersist) {
		t.Fatalf("Reopen on broken disk = %v, want ErrPersist", err)
	}
	st := s.Stats()
	if !st.Degraded || st.ReopenFailures != 1 || st.Reopens != 0 {
		t.Fatalf("after failed reopen: %+v", st)
	}

	ffs.Clear()
	if err := s.Reopen(); err != nil {
		t.Fatalf("retried Reopen: %v", err)
	}
	st = s.Stats()
	if st.Degraded || st.Reopens != 1 || st.ReopenFailures != 1 {
		t.Fatalf("after successful reopen: %+v", st)
	}
	if got := reportString(t, s.Engine(), s.KB()); got != want {
		t.Fatal("reopen changed served state")
	}
	if _, err := s.AddPlan(batchTexts(3)[2]); err != nil {
		t.Fatalf("AddPlan after reopen: %v", err)
	}
}

func TestReopenOnHealthyStoreIsNoOp(t *testing.T) {
	_, _, s, want := faultStore(t)
	if err := s.Reopen(); err != nil {
		t.Fatalf("Reopen on healthy store: %v", err)
	}
	st := s.Stats()
	if st.Reopens != 0 || st.ReopenFailures != 0 {
		t.Fatalf("no-op reopen moved counters: %+v", st)
	}
	if got := reportString(t, s.Engine(), s.KB()); got != want {
		t.Fatal("no-op reopen changed served state")
	}
}

func TestDegradedBatchIsAllOrNothing(t *testing.T) {
	dir, ffs, s, want := faultStore(t)
	ackSeq := s.Stats().LastSeq

	// Invariant 2: a batch whose single WAL append fails must not leave any
	// of its plans behind, in memory or on disk.
	ffs.FailNth(faultfs.OpWrite, 1, faultfs.KindErr)
	if _, err := s.AddPlanBatch(batchTexts(6)[2:]); !errors.Is(err, ErrPersist) {
		t.Fatalf("AddPlanBatch = %v, want ErrPersist", err)
	}
	for _, id := range []string{"W3", "W4", "W5", "W6"} {
		if s.Engine().Plan(id) != nil {
			t.Fatalf("failed batch left %s in the engine", id)
		}
	}
	if got := reportString(t, s.Engine(), s.KB()); got != want {
		t.Fatal("failed batch changed served state")
	}
	seq, got := recoverImage(t, dir)
	if seq != ackSeq || got != want {
		t.Fatalf("recovered seq %d, want %d (part of a failed batch survived)", seq, ackSeq)
	}
}

// TestCompactionCrashWindows walks every persistence step of a compaction —
// temp-file creation, the data write, the temp fsync, the publishing
// rename, the directory fsync, the WAL-reset rename and the WAL handle
// reopen — failing each in turn. Every window must degrade the store
// without changing served state, and a crash image taken inside the window
// must recover to exactly the pre-compaction acknowledged state.
func TestCompactionCrashWindows(t *testing.T) {
	windows := []struct {
		name string
		op   faultfs.Op
		n    int64
	}{
		{"tmp-create", faultfs.OpCreate, 1},
		{"tmp-write", faultfs.OpWrite, 1},
		{"tmp-sync", faultfs.OpSync, 1},
		{"snapshot-rename", faultfs.OpRename, 1},
		{"dir-sync", faultfs.OpSync, 2},
		{"wal-reset-rename", faultfs.OpRename, 2},
		{"wal-reopen", faultfs.OpOpen, 3},
	}
	for _, win := range windows {
		t.Run(win.name, func(t *testing.T) {
			dir, ffs, s, want := faultStore(t)
			ackSeq := s.Stats().LastSeq

			ffs.FailNth(win.op, win.n, faultfs.KindErr)
			err := s.Compact()
			if !errors.Is(err, ErrPersist) || !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("Compact = %v, want ErrPersist wrapping the injected fault", err)
			}
			if got := s.Stats().FaultCompactions; got != 1 {
				t.Fatalf("FaultCompactions = %d, want 1", got)
			}
			wantDegraded(t, s, want)

			seq, got := recoverImage(t, dir)
			if seq != ackSeq || got != want {
				t.Fatalf("crash in %s window: recovered seq %d (want %d), report match %v",
					win.name, seq, ackSeq, got == want)
			}

			// Heal, reopen, and prove both writes and a full compaction work
			// again — whatever half-published state the window left behind.
			ffs.Clear()
			if err := s.Reopen(); err != nil {
				t.Fatalf("Reopen: %v", err)
			}
			if _, err := s.AddPlan(batchTexts(3)[2]); err != nil {
				t.Fatalf("AddPlan after reopen: %v", err)
			}
			if err := s.Compact(); err != nil {
				t.Fatalf("Compact after reopen: %v", err)
			}
			want = reportString(t, s.Engine(), s.KB())
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			seq, got = recoverImage(t, dir)
			if seq != ackSeq+1 || got != want {
				t.Fatalf("restart after repaired %s: seq %d (want %d), report match %v",
					win.name, seq, ackSeq+1, got == want)
			}
		})
	}
}

// TestDegradedStatsAndHealthShape pins the observable surface tests and the
// server rely on: reason strings name the failing operation, and the stats
// counters line up with what actually fired.
func TestDegradedStatsAndHealthShape(t *testing.T) {
	_, ffs, s, _ := faultStore(t)
	ffs.FailNth(faultfs.OpSync, 1, faultfs.KindENOSPC)
	_, err := s.AddPlan(batchTexts(3)[2])
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("AddPlan = %v, want ENOSPC preserved", err)
	}
	h := s.Health()
	if h.State != HealthDegraded {
		t.Fatalf("Health = %+v", h)
	}
	wantPrefix := "fsync: "
	if len(h.Reason) < len(wantPrefix) || h.Reason[:len(wantPrefix)] != wantPrefix {
		t.Fatalf("Reason = %q, want %q prefix naming the failed op", h.Reason, wantPrefix)
	}
	// A second failure while degraded must not overwrite the first cause.
	if _, err := s.AddPlan(batchTexts(3)[2]); !errors.Is(err, ErrDegraded) {
		t.Fatalf("second AddPlan = %v", err)
	}
	if got := s.Health().Reason; got != h.Reason {
		t.Fatalf("degraded reason changed: %q -> %q", h.Reason, got)
	}
	if got := fmt.Sprint(s.Health().State); got != HealthDegraded {
		t.Fatalf("state = %q", got)
	}
}
