package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"optimatch/internal/faultfs"
)

// smallWAL builds a store directory whose WAL holds a handful of mutations
// and no snapshot, and returns the directory, the raw WAL bytes, the byte
// offset past each frame, and the reference report for every replay depth
// (wantReports[k] is the report after replaying the first k records).
func smallWAL(t *testing.T) (dir string, wal []byte, frameEnds []int64, wantReports []string) {
	t.Helper()
	dir = t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	texts := batchTexts(2)
	if _, err := s.AddPlan(texts[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddEntry(testEntryPattern(), testEntryRec()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddPlan(texts[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RemoveEntry(testEntryPattern().Name); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wal, err = os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}

	// Walk the framing independently of scanWAL so the test does not trust
	// the code under test for its ground truth.
	for off := int64(0); off+headerSize <= int64(len(wal)); {
		length := int64(binary.LittleEndian.Uint32(wal[off : off+4]))
		end := off + headerSize + length
		if end > int64(len(wal)) {
			t.Fatalf("frame at %d overruns the file", off)
		}
		frameEnds = append(frameEnds, end)
		off = end
	}
	if len(frameEnds) != 4 {
		t.Fatalf("smallWAL framed %d records, want 4", len(frameEnds))
	}

	for k := uint64(0); k <= 4; k++ {
		img := t.TempDir()
		writeFile(t, filepath.Join(img, walName), wal[:goodLength(frameEnds[:k])])
		r, err := Open(img)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Stats().LastSeq; got != k {
			t.Fatalf("reference prefix %d recovered seq %d", k, got)
		}
		wantReports = append(wantReports, reportString(t, r.Engine(), r.KB()))
		r.Close()
	}
	return dir, wal, frameEnds, wantReports
}

// recordsBefore counts the frames wholly contained in the first n bytes.
func recordsBefore(frameEnds []int64, n int64) uint64 {
	var k uint64
	for _, end := range frameEnds {
		if end <= n {
			k++
		}
	}
	return k
}

// TestTornTailEveryTruncationOffset shears the WAL at every byte offset and
// demands recovery land on exactly the longest intact record prefix — no
// lost acknowledged records before the cut, no invented state after it.
func TestTornTailEveryTruncationOffset(t *testing.T) {
	_, wal, frameEnds, wantReports := smallWAL(t)

	stride := int64(1)
	if testing.Short() {
		stride = 13
	}
	for cut := int64(0); cut <= int64(len(wal)); cut += stride {
		img := t.TempDir()
		writeFile(t, filepath.Join(img, walName), wal[:cut])
		r, err := Open(img)
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		wantSeq := recordsBefore(frameEnds, cut)
		if got := r.Stats().LastSeq; got != wantSeq {
			t.Fatalf("cut %d: recovered seq %d, want %d", cut, got, wantSeq)
		}
		if got := reportString(t, r.Engine(), r.KB()); got != wantReports[wantSeq] {
			t.Fatalf("cut %d: recovered report differs from the %d-record reference", cut, wantSeq)
		}
		// Recovery truncated the torn bytes: the file now ends on the intact
		// prefix, so a second recovery sees a clean log.
		info, err := os.Stat(filepath.Join(img, walName))
		if err != nil {
			t.Fatal(err)
		}
		if want := goodLength(frameEnds[:wantSeq]); info.Size() != want {
			t.Fatalf("cut %d: WAL is %d bytes after recovery, want %d", cut, info.Size(), want)
		}
		r.Close()
	}
}

// TestTornTailEveryBitFlip corrupts each byte of the WAL in turn (one bit
// per offset, cycling through all eight positions) and demands recovery
// stop at the record containing the flip: the CRC catches payload and
// checksum damage, the plausibility check catches length damage, and
// everything before the damaged frame survives.
func TestTornTailEveryBitFlip(t *testing.T) {
	_, wal, frameEnds, wantReports := smallWAL(t)

	stride := 1
	if testing.Short() {
		stride = 13
	}
	for i := 0; i < len(wal); i += stride {
		corrupt := append([]byte(nil), wal...)
		corrupt[i] ^= 1 << (i % 8)
		img := t.TempDir()
		writeFile(t, filepath.Join(img, walName), corrupt)
		r, err := Open(img)
		if err != nil {
			t.Fatalf("flip %d: Open: %v", i, err)
		}
		// The damaged frame is the first whose end lies past the flipped
		// byte; every frame before it must replay.
		wantSeq := recordsBefore(frameEnds, int64(i))
		if got := r.Stats().LastSeq; got != wantSeq {
			t.Fatalf("flip %d: recovered seq %d, want %d", i, got, wantSeq)
		}
		if got := reportString(t, r.Engine(), r.KB()); got != wantReports[wantSeq] {
			t.Fatalf("flip %d: recovered report differs from the %d-record reference", i, wantSeq)
		}
		if truncs := r.Stats().RecoveryTruncations; truncs != 1 {
			t.Fatalf("flip %d: RecoveryTruncations = %d, want 1", i, truncs)
		}
		r.Close()
	}
}

// TestTornTailShortWriteFault ties the offline corruption sweep to the live
// injector: a write torn mid-record by the filesystem leaves the same
// on-disk shape the sweep proves recoverable.
func TestTornTailShortWriteFault(t *testing.T) {
	dir, ffs, s, want := faultStore(t)
	ackSeq := s.Stats().LastSeq

	ffs.FailNth(faultfs.OpWrite, 1, faultfs.KindShortWrite)
	if _, err := s.AddPlan(batchTexts(3)[2]); err == nil {
		t.Fatal("torn append reported success")
	}
	seq, got := recoverImage(t, dir)
	if seq != ackSeq || got != want {
		t.Fatalf("recovered seq %d, want %d after torn append", seq, ackSeq)
	}
}
