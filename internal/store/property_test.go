package store

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"optimatch/internal/core"
	"optimatch/internal/kb"
	"optimatch/internal/pattern"
)

// mutation is one step of the reference model. Mutation i carries log
// sequence number i+1; compaction is not a mutation and consumes no
// sequence number.
type mutation struct {
	op    string
	id    string                  // plan ID or entry name
	text  string                  // addPlan
	pat   func() *pattern.Pattern // addEntry
	recs  []kb.Recommendation
	batch []string // addPlanBatch: accepted texts, one WAL record
}

// applyReference replays mutations with sequence number <= upto into a
// fresh engine + canonical knowledge base — the uncrashed reference.
func applyReference(t *testing.T, muts []mutation, upto uint64) (*core.Engine, *kb.KnowledgeBase) {
	t.Helper()
	eng := core.New()
	base := kb.MustCanonical()
	for i, m := range muts {
		if uint64(i+1) > upto {
			break
		}
		switch m.op {
		case opAddPlan:
			if _, err := eng.LoadText(m.text); err != nil {
				t.Fatalf("reference addPlan %s: %v", m.id, err)
			}
		case opRemovePlan:
			if !eng.RemovePlan(m.id) {
				t.Fatalf("reference removePlan %s: not loaded", m.id)
			}
		case opAddEntry:
			if _, err := base.Add(m.pat(), m.recs...); err != nil {
				t.Fatalf("reference addEntry %s: %v", m.id, err)
			}
		case opRemoveEntry:
			if !base.Remove(m.id) {
				t.Fatalf("reference removeEntry %s: not found", m.id)
			}
		}
	}
	return eng, base
}

// copyStoreDir snapshots the on-disk state of a store directory — the
// moment-of-crash image a recovering process would see.
func copyStoreDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	for _, name := range []string{snapshotName, walName} {
		in, err := os.Open(filepath.Join(src, name))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, name))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		out.Close()
	}
	return dst
}

// TestCrashRecoveryProperty drives randomized interleavings of plan
// ingest, plan removal, KB mutation and compaction against a live store,
// taking crash images along the way — sometimes with the WAL tail sheared
// off at a random byte. Every image must recover to a state whose full KB
// run is byte-identical to the uncrashed reference built from the mutation
// prefix the image's sequence number identifies.
func TestCrashRecoveryProperty(t *testing.T) {
	seeds := []int64{1, 7, 42, 1337}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runCrashRecoveryProperty(t, rand.New(rand.NewSource(seed)))
		})
	}
}

func runCrashRecoveryProperty(t *testing.T, rng *rand.Rand) {
	texts := planTexts()
	planIDs := make([]string, 0, len(texts))
	for id := range texts {
		planIDs = append(planIDs, id)
	}
	entryPool := map[string]func() *pattern.Pattern{
		pattern.E().Name: pattern.E,
		pattern.F().Name: pattern.F,
		pattern.G().Name: pattern.G,
	}

	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var muts []mutation
	loaded := map[string]bool{}
	var lastCompactSeq uint64 // mutations folded into the snapshot so far
	const steps = 40
	for step := 0; step < steps; step++ {
		// Pick a legal operation for the current state.
		var candidates []mutation
		for _, id := range planIDs {
			if !loaded[id] {
				candidates = append(candidates, mutation{op: opAddPlan, id: id, text: texts[id]})
			} else {
				candidates = append(candidates, mutation{op: opRemovePlan, id: id})
			}
		}
		for name, pat := range entryPool {
			if s.KB().Entry(name) == nil {
				candidates = append(candidates, mutation{op: opAddEntry, id: name, pat: pat, recs: []kb.Recommendation{{
					Title:    "advice for " + name,
					Template: "inspect @TOP",
					Weight:   0.5,
				}}})
			} else {
				candidates = append(candidates, mutation{op: opRemoveEntry, id: name})
			}
		}
		m := candidates[rng.Intn(len(candidates))]

		switch m.op {
		case opAddPlan:
			if _, err := s.AddPlan(m.text); err != nil {
				t.Fatalf("step %d AddPlan(%s): %v", step, m.id, err)
			}
			loaded[m.id] = true
		case opRemovePlan:
			if ok, err := s.RemovePlan(m.id); err != nil || !ok {
				t.Fatalf("step %d RemovePlan(%s) = %v, %v", step, m.id, ok, err)
			}
			delete(loaded, m.id)
		case opAddEntry:
			if _, err := s.AddEntry(m.pat(), m.recs...); err != nil {
				t.Fatalf("step %d AddEntry(%s): %v", step, m.id, err)
			}
		case opRemoveEntry:
			if ok, err := s.RemoveEntry(m.id); err != nil || !ok {
				t.Fatalf("step %d RemoveEntry(%s) = %v, %v", step, m.id, ok, err)
			}
		}
		muts = append(muts, m)

		if rng.Intn(4) == 0 {
			if err := s.Compact(); err != nil {
				t.Fatalf("step %d Compact: %v", step, err)
			}
			lastCompactSeq = uint64(len(muts))
		}

		if rng.Intn(3) != 0 {
			continue
		}
		// Crash now: recover from a byte-level image of the directory.
		img := copyStoreDir(t, dir)
		wantSeq := uint64(len(muts))
		if rng.Intn(2) == 0 {
			// Shear the WAL tail at a random byte. Recovery must land on
			// some intact mutation prefix, identified by its LastSeq.
			walPath := filepath.Join(img, walName)
			if info, err := os.Stat(walPath); err == nil && info.Size() > 0 {
				cut := rng.Int63n(info.Size() + 1)
				if err := os.Truncate(walPath, cut); err != nil {
					t.Fatal(err)
				}
				wantSeq = 0 // determined by recovery below
			}
		}
		r, err := Open(img)
		if err != nil {
			t.Fatalf("step %d recovery: %v", step, err)
		}
		gotSeq := r.Stats().LastSeq
		if wantSeq != 0 && gotSeq != wantSeq {
			t.Fatalf("step %d: recovered seq %d, want %d (acknowledged mutations lost)", step, gotSeq, wantSeq)
		}
		if gotSeq > uint64(len(muts)) {
			t.Fatalf("step %d: recovered seq %d beyond %d mutations", step, gotSeq, len(muts))
		}
		if gotSeq < lastCompactSeq {
			t.Fatalf("step %d: recovered seq %d below snapshot seq %d (compacted state lost)",
				step, gotSeq, lastCompactSeq)
		}
		refEng, refKB := applyReference(t, muts, gotSeq)
		want := reportString(t, refEng, refKB)
		got := reportString(t, r.Engine(), r.KB())
		if got != want {
			t.Fatalf("step %d (seq %d): recovered KB run differs from reference:\n--- want\n%s--- got\n%s",
				step, gotSeq, want, got)
		}
		r.Close()
	}
}
