// Package store is the durable repository behind optimatchd: it makes the
// engine's plan workload and the expert knowledge base survive restarts,
// the way GALO's problem-plan repository accumulates across sessions. Two
// record streams — plan ingests (raw explain text) and knowledge-base
// mutations (entries as their kb JSON form) — flow through an append-only
// write-ahead log whose records are length-prefixed and CRC32-checksummed;
// every append is fsync'd before the mutation is acknowledged. Periodic
// compaction folds the log into a snapshot (atomic temp-file + rename)
// carrying a generation counter and the last absorbed log sequence number,
// so recovery loads the snapshot and replays only the WAL tail. Opening a
// store truncates a torn tail at the first bad checksum instead of failing
// the boot.
//
// The store degrades rather than corrupts: every filesystem touch goes
// through the storefs seam (swap in internal/faultfs to test), and when the
// durability machinery itself fails — a WAL write or fsync, a snapshot
// publication — the store scrubs the unacknowledged tail, rolls the failed
// mutation out of memory, and enters an explicit degraded read-only mode:
// reads and scans keep serving the acknowledged state, every further
// mutation returns ErrDegraded, and Reopen re-verifies (and if needed
// repairs) the on-disk tail before writes are accepted again.
package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"optimatch/internal/core"
	"optimatch/internal/kb"
	"optimatch/internal/pattern"
	"optimatch/internal/qep"
	"optimatch/internal/storefs"
)

// ErrPersist marks failures of the durability machinery itself (WAL append,
// fsync, snapshot write) as opposed to validation errors from the engine or
// knowledge base. Callers can map it to a 5xx while validation stays 4xx.
var ErrPersist = errors.New("store: persistence failure")

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// ErrDegraded is returned by mutations while the store is in degraded
// read-only mode: a durability failure (failed WAL append or fsync, failed
// snapshot publication) was observed, so accepting further writes could
// silently diverge disk from memory. Reads and scans keep working on the
// acknowledged in-memory state; Reopen clears the mode once the disk
// verifies again. Callers can map it to 503 + Retry-After.
var ErrDegraded = errors.New("store: degraded (read-only)")

// Option configures Open.
type Option func(*config)

type config struct {
	engineOpts  []core.Option
	defaultKB   *kb.KnowledgeBase
	autoCompact int64
	instr       Instrumentation
	fs          storefs.FS
}

// Instrumentation receives durability-path timings from the store. Any
// field may be nil; hooks are invoked under the store mutex and must not
// call back into the store.
type Instrumentation struct {
	// WALAppend observes one journaled mutation: how long the buffered
	// write and the fsync took, and the record size. The fsync is the
	// dominant, highly variable term — every acknowledged mutation pays it.
	WALAppend func(write, sync time.Duration, bytes int)

	// Compaction observes one snapshot compaction (manual or automatic)
	// and whether it succeeded.
	Compaction func(d time.Duration, ok bool)

	// Recovery observes the one recovery pass Open performs: wall time,
	// WAL records replayed, torn tails truncated.
	Recovery func(d time.Duration, records, truncations int64)

	// Degrade observes the transition into degraded read-only mode: which
	// durability operation failed (append, fsync, compact) and why. It
	// fires once per degradation, not per rejected write.
	Degrade func(op string, cause error)

	// Reopen observes one Reopen attempt and whether the store returned to
	// accepting writes.
	Reopen func(ok bool)
}

// WithFS substitutes the filesystem the store runs on (default: the real
// one, storefs.OS). Tests wrap it with internal/faultfs to script disk
// failures.
func WithFS(fsys storefs.FS) Option {
	return func(c *config) { c.fs = fsys }
}

// WithInstrumentation installs durability-path hooks.
func WithInstrumentation(in Instrumentation) Option {
	return func(c *config) { c.instr = in }
}

// WithEngineOptions forwards options to the recovered engine.
func WithEngineOptions(opts ...core.Option) Option {
	return func(c *config) { c.engineOpts = append(c.engineOpts, opts...) }
}

// WithDefaultKB sets the knowledge base used when the directory has no
// snapshot yet (fresh store). Once a snapshot exists it fully captures the
// knowledge base and the default is ignored. The store takes ownership of
// the given base. Nil means the canonical expert patterns.
func WithDefaultKB(base *kb.KnowledgeBase) Option {
	return func(c *config) { c.defaultKB = base }
}

// WithAutoCompact compacts automatically once the WAL holds n records
// (0 disables; compaction is then manual via Compact).
func WithAutoCompact(n int64) Option {
	return func(c *config) { c.autoCompact = n }
}

// Store is a durable plan & knowledge-base repository. All methods are safe
// for concurrent use. The engine and knowledge base returned by Engine and
// KB are owned by the store: route every mutation through the store so it
// is journaled, and snapshot the knowledge base before scanning it
// concurrently with mutations.
type Store struct {
	dir string
	fs  storefs.FS

	mu     sync.Mutex
	wal    storefs.File // nil after Close
	closed bool
	eng    *core.Engine
	base   *kb.KnowledgeBase

	seq         uint64 // last applied log sequence number
	generation  uint64 // compaction generation
	autoCompact int64
	instr       Instrumentation

	degraded       bool
	degradedReason string
	degradedSince  time.Time

	walRecords     int64
	walBytes       int64
	appended       int64
	appendedBytes  int64
	fsyncs         int64
	batchAppends   int64
	batchPlans     int64
	recovered      int64
	truncations    int64
	compactions    int64
	lastCompact    time.Time
	compactErr     string
	faultWrites    int64
	faultSyncs     int64
	faultCompacts  int64
	reopens        int64
	reopenFailures int64
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Dir                 string    `json:"dir"`
	Generation          uint64    `json:"generation"`          // compactions survived by the snapshot
	LastSeq             uint64    `json:"lastSeq"`             // newest applied log sequence number
	WALRecords          int64     `json:"walRecords"`          // records currently in the log
	WALBytes            int64     `json:"walBytes"`            // bytes currently in the log
	AppendedRecords     int64     `json:"appendedRecords"`     // records appended since open
	AppendedBytes       int64     `json:"appendedBytes"`       // bytes appended since open
	Fsyncs              int64     `json:"fsyncs"`              // WAL fsyncs since open (one per append)
	BatchAppends        int64     `json:"batchAppends"`        // batch records appended since open
	BatchPlans          int64     `json:"batchPlans"`          // plans persisted through batch records since open
	RecoveredRecords    int64     `json:"recoveredRecords"`    // WAL records replayed at open
	RecoveryTruncations int64     `json:"recoveryTruncations"` // torn tails truncated at open
	Compactions         int64     `json:"compactions"`         // compactions since open
	LastCompaction      time.Time `json:"lastCompaction"`      // zero if none since open
	LastCompactionError string    `json:"lastCompactionError,omitempty"`
	Degraded            bool      `json:"degraded"`                 // true while in degraded read-only mode
	DegradedReason      string    `json:"degradedReason,omitempty"` // what failed, when degraded
	FaultWrites         int64     `json:"faultWrites"`              // failed WAL record writes since open
	FaultSyncs          int64     `json:"faultSyncs"`               // failed WAL fsyncs since open
	FaultCompactions    int64     `json:"faultCompactions"`         // failed snapshot compactions since open
	Reopens             int64     `json:"reopens"`                  // successful degraded-mode recoveries since open
	ReopenFailures      int64     `json:"reopenFailures"`           // failed Reopen attempts since open
}

// Open recovers the repository at dir (created if missing): it loads the
// snapshot if one exists, replays the WAL tail into a fresh engine and
// knowledge base, truncates any torn tail, and leaves the log open for
// appending.
func Open(dir string, opts ...Option) (*Store, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.fs == nil {
		cfg.fs = storefs.OS{}
	}
	if err := cfg.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, fs: cfg.fs, eng: core.New(cfg.engineOpts...), autoCompact: cfg.autoCompact, instr: cfg.instr}
	recoverStart := time.Now()

	snap, err := readSnapshot(s.fs, dir)
	if err != nil {
		return nil, err
	}
	base := cfg.defaultKB
	if snap != nil {
		for _, sp := range snap.Plans {
			if _, err := s.eng.LoadText(sp.Text); err != nil {
				return nil, fmt.Errorf("store: recovering plan %s: %w", sp.ID, err)
			}
		}
		base, err = kb.Load(bytes.NewReader(snap.KB))
		if err != nil {
			return nil, fmt.Errorf("store: recovering knowledge base: %w", err)
		}
		s.seq, s.generation = snap.LastSeq, snap.Generation
	} else if base == nil {
		base = kb.MustCanonical()
	}
	s.base = base

	walPath := filepath.Join(dir, walName)
	recs, ends, torn, err := scanWAL(s.fs, walPath)
	if err != nil {
		return nil, err
	}
	goodOffset := goodLength(ends)
	if torn {
		if err := s.fs.Truncate(walPath, goodOffset); err != nil {
			return nil, fmt.Errorf("store: truncating torn WAL tail: %w", err)
		}
		s.truncations++
	}
	for i := range recs {
		if recs[i].Seq <= s.seq {
			continue // already absorbed by the snapshot
		}
		if err := s.applyRecord(&recs[i]); err != nil {
			return nil, fmt.Errorf("store: replaying record %d (seq %d): %w", i, recs[i].Seq, err)
		}
		s.seq = recs[i].Seq
		s.recovered++
	}
	s.walRecords = int64(len(recs))
	s.walBytes = goodOffset

	f, err := s.fs.OpenFile(walPath, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening WAL for append: %w", err)
	}
	s.wal = f
	if s.instr.Recovery != nil {
		s.instr.Recovery(time.Since(recoverStart), s.recovered, s.truncations)
	}
	return s, nil
}

// Engine returns the recovered engine. The store owns it; use the store's
// AddPlan/RemovePlan for durable mutations.
func (s *Store) Engine() *core.Engine { return s.eng }

// KB returns the recovered knowledge base. The store owns it; use
// AddEntry/RemoveEntry for durable mutations.
func (s *Store) KB() *kb.KnowledgeBase {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.base
}

// applyRecord replays one journaled mutation into the engine/KB.
func (s *Store) applyRecord(rec *record) error {
	switch rec.Op {
	case opAddPlan:
		_, err := s.eng.LoadText(rec.Text)
		return err
	case opAddPlanBatch:
		texts := make([]string, len(rec.Batch))
		for i := range rec.Batch {
			texts[i] = rec.Batch[i].Text
		}
		_, errs := s.eng.LoadTextBatch(texts)
		for i, err := range errs {
			// The record journals only accepted plans, so replay must
			// accept every one of them again.
			if err != nil {
				return fmt.Errorf("batch plan %q: %w", rec.Batch[i].ID, err)
			}
		}
		return nil
	case opRemovePlan:
		if !s.eng.RemovePlan(rec.ID) {
			return fmt.Errorf("plan %q not loaded", rec.ID)
		}
		return nil
	case opAddEntry:
		return addEntryJSON(s.base, rec.Item)
	case opRemoveEntry:
		if !s.base.Remove(rec.ID) {
			return fmt.Errorf("kb entry %q not found", rec.ID)
		}
		return nil
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
}

// addEntryJSON reconstructs a knowledge-base entry from its JSON form the
// same way kb.Load does: recompile the pattern, revalidate the templates,
// keep the stored ranking profile.
func addEntryJSON(base *kb.KnowledgeBase, data []byte) error {
	var e kb.Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return fmt.Errorf("decoding kb entry: %w", err)
	}
	if e.Pattern == nil {
		return fmt.Errorf("kb entry %q has no pattern", e.Name)
	}
	e.Pattern.Name = e.Name
	e.Pattern.Description = e.Description
	added, err := base.Add(e.Pattern, e.Recommendations...)
	if err != nil {
		return err
	}
	if len(e.Profile) == kb.NumFeatures {
		added.Profile = e.Profile
	}
	return nil
}

// writableLocked reports whether the store currently accepts mutations.
// Callers hold s.mu.
func (s *Store) writableLocked() error {
	if s.closed {
		return ErrClosed
	}
	if s.degraded {
		return fmt.Errorf("%w: %s", ErrDegraded, s.degradedReason)
	}
	return nil
}

// degradeLocked transitions the store into degraded read-only mode. The
// first durability failure wins; later ones only add to the fault counters
// at their call sites. Callers hold s.mu.
func (s *Store) degradeLocked(op string, cause error) {
	if s.degraded {
		return
	}
	s.degraded = true
	s.degradedReason = fmt.Sprintf("%s: %v", op, cause)
	s.degradedSince = time.Now()
	if s.instr.Degrade != nil {
		s.instr.Degrade(op, cause)
	}
}

// scrubTailLocked cuts the WAL back to the last acknowledged byte after a
// failed append, so a torn or complete-but-unacknowledged record cannot
// resurrect a mutation the caller saw fail if we crash while degraded.
// Best-effort: on a disk this broken the truncate may fail too, and Reopen
// re-verifies the tail before writes resume either way.
func (s *Store) scrubTailLocked() {
	_ = s.fs.Truncate(filepath.Join(s.dir, walName), s.walBytes)
}

// appendLocked journals one record and fsyncs. Callers hold s.mu. A write
// or fsync failure scrubs the unacknowledged tail and degrades the store.
func (s *Store) appendLocked(rec *record) error {
	if err := s.writableLocked(); err != nil {
		return err
	}
	buf, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	writeStart := time.Now()
	if _, err := s.wal.Write(buf); err != nil {
		s.faultWrites++
		s.scrubTailLocked()
		s.degradeLocked("append", err)
		return fmt.Errorf("%w: appending record: %w", ErrPersist, err)
	}
	syncStart := time.Now()
	if err := s.wal.Sync(); err != nil {
		s.faultSyncs++
		s.scrubTailLocked()
		s.degradeLocked("fsync", err)
		return fmt.Errorf("%w: syncing WAL: %w", ErrPersist, err)
	}
	if s.instr.WALAppend != nil {
		s.instr.WALAppend(syncStart.Sub(writeStart), time.Since(syncStart), len(buf))
	}
	s.walRecords++
	s.walBytes += int64(len(buf))
	s.appended++
	s.appendedBytes += int64(len(buf))
	s.fsyncs++
	return nil
}

// maybeAutoCompact runs a compaction when the WAL has grown past the
// configured threshold. Compaction failure never fails the mutation that
// triggered it (the mutation is already durable in the log); it is surfaced
// through Stats instead.
func (s *Store) maybeAutoCompact() {
	if s.autoCompact <= 0 || s.walRecords < s.autoCompact {
		return
	}
	if err := s.compactLocked(); err != nil {
		s.compactErr = err.Error()
	}
}

// AddPlan parses and ingests an explain file, journaling the raw text. The
// returned plan is registered in the engine. Validation errors (bad text,
// duplicate ID) are returned as-is; durability failures wrap ErrPersist.
func (s *Store) AddPlan(text string) (*qep.Plan, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return nil, err
	}
	p, err := s.eng.LoadText(text)
	if err != nil {
		return nil, err
	}
	if err := s.appendLocked(&record{Seq: s.seq + 1, Op: opAddPlan, ID: p.ID, Text: text}); err != nil {
		s.eng.RemovePlan(p.ID) // keep memory and log in agreement
		return nil, err
	}
	s.seq++
	s.maybeAutoCompact()
	return p, nil
}

// BatchOutcome is the per-record result of AddPlanBatch. Plan is non-nil
// whenever the text parsed (even if loading then failed as a duplicate);
// Err is nil exactly when the plan was loaded and persisted.
type BatchOutcome struct {
	Plan *qep.Plan
	Err  error
}

// AddPlanBatch ingests a batch of explain texts as one durable mutation:
// each text is validated individually (parse failures, validation errors
// and duplicate IDs — against the engine or earlier records in the same
// batch — fail only their own record), the accepted plans are registered in
// the engine under a single data-generation bump, and the whole batch is
// journaled as one WAL record with a single fsync. The returned error is
// nil unless the store is closed or persistence itself failed; per-record
// outcomes carry all validation results. On a persistence failure every
// accepted plan is rolled back — the batch is all-or-nothing on disk.
func (s *Store) AddPlanBatch(texts []string) ([]BatchOutcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return nil, err
	}
	plans, errs := s.eng.LoadTextBatch(texts)
	out := make([]BatchOutcome, len(texts))
	var items []batchItem
	for i := range texts {
		out[i] = BatchOutcome{Plan: plans[i], Err: errs[i]}
		if errs[i] == nil {
			items = append(items, batchItem{ID: plans[i].ID, Text: texts[i]})
		}
	}
	if len(items) == 0 {
		return out, nil // nothing accepted: nothing to journal
	}
	if err := s.appendLocked(&record{Seq: s.seq + 1, Op: opAddPlanBatch, Batch: items}); err != nil {
		for _, it := range items {
			s.eng.RemovePlan(it.ID) // keep memory and log in agreement
		}
		return nil, err
	}
	s.seq++
	s.batchAppends++
	s.batchPlans += int64(len(items))
	s.maybeAutoCompact()
	return out, nil
}

// RemovePlan unloads a plan durably. It reports whether the plan existed.
func (s *Store) RemovePlan(id string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return false, err
	}
	p := s.eng.Plan(id)
	if p == nil {
		return false, nil
	}
	s.eng.RemovePlan(id)
	if err := s.appendLocked(&record{Seq: s.seq + 1, Op: opRemovePlan, ID: id}); err != nil {
		_ = s.eng.LoadPlan(p) // roll back
		return false, err
	}
	s.seq++
	s.maybeAutoCompact()
	return true, nil
}

// AddEntry saves a problem pattern with its recommendations to the
// knowledge base, journaling the entry's JSON form.
func (s *Store) AddEntry(p *pattern.Pattern, recs ...kb.Recommendation) (*kb.Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return nil, err
	}
	entry, err := s.base.Add(p, recs...)
	if err != nil {
		return nil, err
	}
	data, err := json.Marshal(entry)
	if err != nil {
		s.base.Remove(entry.Name)
		return nil, fmt.Errorf("store: encoding kb entry: %w", err)
	}
	if err := s.appendLocked(&record{Seq: s.seq + 1, Op: opAddEntry, ID: entry.Name, Item: data}); err != nil {
		s.base.Remove(entry.Name)
		return nil, err
	}
	s.seq++
	s.maybeAutoCompact()
	return entry, nil
}

// RemoveEntry deletes a knowledge-base entry durably. It reports whether
// the entry existed.
func (s *Store) RemoveEntry(name string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return false, err
	}
	entry := s.base.Entry(name)
	if entry == nil {
		return false, nil
	}
	s.base.Remove(name)
	if err := s.appendLocked(&record{Seq: s.seq + 1, Op: opRemoveEntry, ID: name}); err != nil {
		if readded, aerr := s.base.Add(entry.Pattern, entry.Recommendations...); aerr == nil {
			readded.Profile = entry.Profile // roll back
		}
		return false, err
	}
	s.seq++
	s.maybeAutoCompact()
	return true, nil
}

// Compact folds the current state into a fresh snapshot and resets the WAL.
// Served state is unchanged; only the on-disk representation shrinks.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return err
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() (err error) {
	if s.instr.Compaction != nil {
		defer func(start time.Time) { s.instr.Compaction(time.Since(start), err == nil) }(time.Now())
	}
	snap, err := buildSnapshot(s.generation+1, s.seq, s.eng.Plans(), s.base)
	if err != nil {
		return err
	}
	if err := writeSnapshot(s.fs, s.dir, snap); err != nil {
		s.faultCompacts++
		s.degradeLocked("compact", err)
		return fmt.Errorf("%w: %w", ErrPersist, err)
	}
	// Swap in an empty log only after the snapshot is durable. If we crash
	// between the renames the old log survives alongside the new snapshot,
	// and replay skips its records by sequence number.
	if err := atomicWrite(s.fs, s.dir, walName, nil); err != nil {
		s.faultCompacts++
		s.degradeLocked("compact", err)
		return fmt.Errorf("%w: resetting WAL: %w", ErrPersist, err)
	}
	f, err := s.fs.OpenFile(filepath.Join(s.dir, walName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The reset log is already live on disk but we hold no handle to
		// it: appends have nowhere consistent to go, so degrade.
		s.faultCompacts++
		s.degradeLocked("compact", err)
		return fmt.Errorf("%w: reopening WAL: %w", ErrPersist, err)
	}
	old := s.wal
	s.wal = f
	old.Close() // the unlinked previous log
	s.generation = snap.Generation
	s.compactions++
	s.walRecords, s.walBytes = 0, 0
	s.lastCompact = time.Now()
	s.compactErr = ""
	return nil
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Dir:                 s.dir,
		Generation:          s.generation,
		LastSeq:             s.seq,
		WALRecords:          s.walRecords,
		WALBytes:            s.walBytes,
		AppendedRecords:     s.appended,
		AppendedBytes:       s.appendedBytes,
		Fsyncs:              s.fsyncs,
		BatchAppends:        s.batchAppends,
		BatchPlans:          s.batchPlans,
		RecoveredRecords:    s.recovered,
		RecoveryTruncations: s.truncations,
		Compactions:         s.compactions,
		LastCompaction:      s.lastCompact,
		LastCompactionError: s.compactErr,
		Degraded:            s.degraded,
		DegradedReason:      s.degradedReason,
		FaultWrites:         s.faultWrites,
		FaultSyncs:          s.faultSyncs,
		FaultCompactions:    s.faultCompacts,
		Reopens:             s.reopens,
		ReopenFailures:      s.reopenFailures,
	}
}

// Health states, as reported by Health and the server's /readyz.
const (
	HealthOK       = "ok"       // accepting reads and writes
	HealthDegraded = "degraded" // read-only after a durability failure
	HealthClosed   = "closed"   // Close was called; reads still work
)

// Health describes whether the store accepts writes right now.
type Health struct {
	State  string    `json:"state"` // ok | degraded | closed
	Reason string    `json:"reason,omitempty"`
	Since  time.Time `json:"since,omitempty"` // when the degradation began
}

// Health reports the store's current write-path state. Reads (Engine, KB,
// Stats) work in every state.
func (s *Store) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return Health{State: HealthClosed}
	case s.degraded:
		return Health{State: HealthDegraded, Reason: s.degradedReason, Since: s.degradedSince}
	default:
		return Health{State: HealthOK}
	}
}

// Reopen attempts to leave degraded mode: it re-scans the on-disk WAL,
// drops any torn or unacknowledged tail, and verifies that snapshot + log
// still reconstruct exactly the acknowledged sequence. If the disk lost
// acknowledged records (a scrub failed, or bytes never became durable), it
// repairs by folding the in-memory state — which is the acknowledged truth,
// every mutation in it was fsync-acknowledged — into a fresh snapshot.
// On success the store accepts writes again; on failure it stays degraded
// and Reopen can be retried. Reopening a healthy store is a no-op.
func (s *Store) Reopen() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if !s.degraded {
		return nil
	}
	err := s.reopenLocked()
	if s.instr.Reopen != nil {
		s.instr.Reopen(err == nil)
	}
	if err != nil {
		s.reopenFailures++
		return err
	}
	s.reopens++
	s.degraded = false
	s.degradedReason = ""
	s.degradedSince = time.Time{}
	return nil
}

// reopenLocked re-verifies (and if necessary repairs) the on-disk state
// against the acknowledged in-memory sequence. Callers hold s.mu.
func (s *Store) reopenLocked() error {
	walPath := filepath.Join(s.dir, walName)
	recs, ends, torn, err := scanWAL(s.fs, walPath)
	if err != nil {
		return fmt.Errorf("%w: re-verifying WAL: %w", ErrPersist, err)
	}
	// Keep only records at or below the acknowledged sequence. A record
	// above it is a mutation whose append failed after the bytes landed
	// (e.g. the fsync failed): the caller saw an error and the engine
	// rolled it back, so it must not survive to a future recovery.
	keep := len(recs)
	for keep > 0 && recs[keep-1].Seq > s.seq {
		keep--
	}
	keepOffset := goodLength(ends[:keep])
	if torn || keep < len(recs) {
		if err := s.fs.Truncate(walPath, keepOffset); err != nil {
			return fmt.Errorf("%w: truncating unacknowledged tail: %w", ErrPersist, err)
		}
	}

	// Verify snapshot + kept log reconstruct the acknowledged sequence.
	snap, err := readSnapshot(s.fs, s.dir)
	if err != nil {
		return fmt.Errorf("%w: re-verifying snapshot: %w", ErrPersist, err)
	}
	var snapSeq, snapGen uint64
	if snap != nil {
		snapSeq, snapGen = snap.LastSeq, snap.Generation
	}
	diskSeq := snapSeq
	for _, rec := range recs[:keep] {
		if rec.Seq == diskSeq+1 {
			diskSeq = rec.Seq
		} else if rec.Seq > diskSeq {
			break // gap: records between diskSeq and rec.Seq are lost
		}
	}
	if diskSeq < s.seq {
		// The disk cannot reconstruct everything we acknowledged. Repair by
		// snapshotting the in-memory state; compactLocked publishes it
		// atomically and resets the log, or fails and we stay degraded.
		return s.compactLocked()
	}

	// Disk verified: resume appending where the acknowledged log ends.
	f, err := s.fs.OpenFile(walPath, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("%w: reopening WAL for append: %w", ErrPersist, err)
	}
	old := s.wal
	s.wal = f
	if old != nil {
		old.Close()
	}
	if snapGen > s.generation {
		// A half-finished compaction published its snapshot before failing;
		// adopt its generation so the next compaction moves forward.
		s.generation = snapGen
	}
	s.walRecords = int64(keep)
	s.walBytes = keepOffset
	return nil
}

// Close flushes and closes the log. Further mutations return ErrClosed; the
// engine and knowledge base stay readable. Close is idempotent and safe to
// call concurrently with in-flight mutations, which finish first (they hold
// the store mutex) and are fully durable before Close returns.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	if err != nil {
		return fmt.Errorf("store: closing WAL: %w", err)
	}
	return nil
}
