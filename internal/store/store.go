// Package store is the durable repository behind optimatchd: it makes the
// engine's plan workload and the expert knowledge base survive restarts,
// the way GALO's problem-plan repository accumulates across sessions. Two
// record streams — plan ingests (raw explain text) and knowledge-base
// mutations (entries as their kb JSON form) — flow through an append-only
// write-ahead log whose records are length-prefixed and CRC32-checksummed;
// every append is fsync'd before the mutation is acknowledged. Periodic
// compaction folds the log into a snapshot (atomic temp-file + rename)
// carrying a generation counter and the last absorbed log sequence number,
// so recovery loads the snapshot and replays only the WAL tail. Opening a
// store truncates a torn tail at the first bad checksum instead of failing
// the boot.
package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"optimatch/internal/core"
	"optimatch/internal/kb"
	"optimatch/internal/pattern"
	"optimatch/internal/qep"
)

// ErrPersist marks failures of the durability machinery itself (WAL append,
// fsync, snapshot write) as opposed to validation errors from the engine or
// knowledge base. Callers can map it to a 5xx while validation stays 4xx.
var ErrPersist = errors.New("store: persistence failure")

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// Option configures Open.
type Option func(*config)

type config struct {
	engineOpts  []core.Option
	defaultKB   *kb.KnowledgeBase
	autoCompact int64
	instr       Instrumentation
}

// Instrumentation receives durability-path timings from the store. Any
// field may be nil; hooks are invoked under the store mutex and must not
// call back into the store.
type Instrumentation struct {
	// WALAppend observes one journaled mutation: how long the buffered
	// write and the fsync took, and the record size. The fsync is the
	// dominant, highly variable term — every acknowledged mutation pays it.
	WALAppend func(write, sync time.Duration, bytes int)

	// Compaction observes one snapshot compaction (manual or automatic)
	// and whether it succeeded.
	Compaction func(d time.Duration, ok bool)

	// Recovery observes the one recovery pass Open performs: wall time,
	// WAL records replayed, torn tails truncated.
	Recovery func(d time.Duration, records, truncations int64)
}

// WithInstrumentation installs durability-path hooks.
func WithInstrumentation(in Instrumentation) Option {
	return func(c *config) { c.instr = in }
}

// WithEngineOptions forwards options to the recovered engine.
func WithEngineOptions(opts ...core.Option) Option {
	return func(c *config) { c.engineOpts = append(c.engineOpts, opts...) }
}

// WithDefaultKB sets the knowledge base used when the directory has no
// snapshot yet (fresh store). Once a snapshot exists it fully captures the
// knowledge base and the default is ignored. The store takes ownership of
// the given base. Nil means the canonical expert patterns.
func WithDefaultKB(base *kb.KnowledgeBase) Option {
	return func(c *config) { c.defaultKB = base }
}

// WithAutoCompact compacts automatically once the WAL holds n records
// (0 disables; compaction is then manual via Compact).
func WithAutoCompact(n int64) Option {
	return func(c *config) { c.autoCompact = n }
}

// Store is a durable plan & knowledge-base repository. All methods are safe
// for concurrent use. The engine and knowledge base returned by Engine and
// KB are owned by the store: route every mutation through the store so it
// is journaled, and snapshot the knowledge base before scanning it
// concurrently with mutations.
type Store struct {
	dir string

	mu   sync.Mutex
	wal  *os.File // nil after Close
	eng  *core.Engine
	base *kb.KnowledgeBase

	seq         uint64 // last applied log sequence number
	generation  uint64 // compaction generation
	autoCompact int64
	instr       Instrumentation

	walRecords    int64
	walBytes      int64
	appended      int64
	appendedBytes int64
	fsyncs        int64
	batchAppends  int64
	batchPlans    int64
	recovered     int64
	truncations   int64
	compactions   int64
	lastCompact   time.Time
	compactErr    string
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Dir                 string    `json:"dir"`
	Generation          uint64    `json:"generation"`          // compactions survived by the snapshot
	LastSeq             uint64    `json:"lastSeq"`             // newest applied log sequence number
	WALRecords          int64     `json:"walRecords"`          // records currently in the log
	WALBytes            int64     `json:"walBytes"`            // bytes currently in the log
	AppendedRecords     int64     `json:"appendedRecords"`     // records appended since open
	AppendedBytes       int64     `json:"appendedBytes"`       // bytes appended since open
	Fsyncs              int64     `json:"fsyncs"`              // WAL fsyncs since open (one per append)
	BatchAppends        int64     `json:"batchAppends"`        // batch records appended since open
	BatchPlans          int64     `json:"batchPlans"`          // plans persisted through batch records since open
	RecoveredRecords    int64     `json:"recoveredRecords"`    // WAL records replayed at open
	RecoveryTruncations int64     `json:"recoveryTruncations"` // torn tails truncated at open
	Compactions         int64     `json:"compactions"`         // compactions since open
	LastCompaction      time.Time `json:"lastCompaction"`      // zero if none since open
	LastCompactionError string    `json:"lastCompactionError,omitempty"`
}

// Open recovers the repository at dir (created if missing): it loads the
// snapshot if one exists, replays the WAL tail into a fresh engine and
// knowledge base, truncates any torn tail, and leaves the log open for
// appending.
func Open(dir string, opts ...Option) (*Store, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, eng: core.New(cfg.engineOpts...), autoCompact: cfg.autoCompact, instr: cfg.instr}
	recoverStart := time.Now()

	snap, err := readSnapshot(dir)
	if err != nil {
		return nil, err
	}
	base := cfg.defaultKB
	if snap != nil {
		for _, sp := range snap.Plans {
			if _, err := s.eng.LoadText(sp.Text); err != nil {
				return nil, fmt.Errorf("store: recovering plan %s: %w", sp.ID, err)
			}
		}
		base, err = kb.Load(bytes.NewReader(snap.KB))
		if err != nil {
			return nil, fmt.Errorf("store: recovering knowledge base: %w", err)
		}
		s.seq, s.generation = snap.LastSeq, snap.Generation
	} else if base == nil {
		base = kb.MustCanonical()
	}
	s.base = base

	walPath := filepath.Join(dir, walName)
	recs, goodOffset, torn, err := scanWAL(walPath)
	if err != nil {
		return nil, err
	}
	if torn {
		if err := os.Truncate(walPath, goodOffset); err != nil {
			return nil, fmt.Errorf("store: truncating torn WAL tail: %w", err)
		}
		s.truncations++
	}
	for i := range recs {
		if recs[i].Seq <= s.seq {
			continue // already absorbed by the snapshot
		}
		if err := s.applyRecord(&recs[i]); err != nil {
			return nil, fmt.Errorf("store: replaying record %d (seq %d): %w", i, recs[i].Seq, err)
		}
		s.seq = recs[i].Seq
		s.recovered++
	}
	s.walRecords = int64(len(recs))
	s.walBytes = goodOffset

	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening WAL for append: %w", err)
	}
	s.wal = f
	if s.instr.Recovery != nil {
		s.instr.Recovery(time.Since(recoverStart), s.recovered, s.truncations)
	}
	return s, nil
}

// Engine returns the recovered engine. The store owns it; use the store's
// AddPlan/RemovePlan for durable mutations.
func (s *Store) Engine() *core.Engine { return s.eng }

// KB returns the recovered knowledge base. The store owns it; use
// AddEntry/RemoveEntry for durable mutations.
func (s *Store) KB() *kb.KnowledgeBase {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.base
}

// applyRecord replays one journaled mutation into the engine/KB.
func (s *Store) applyRecord(rec *record) error {
	switch rec.Op {
	case opAddPlan:
		_, err := s.eng.LoadText(rec.Text)
		return err
	case opAddPlanBatch:
		texts := make([]string, len(rec.Batch))
		for i := range rec.Batch {
			texts[i] = rec.Batch[i].Text
		}
		_, errs := s.eng.LoadTextBatch(texts)
		for i, err := range errs {
			// The record journals only accepted plans, so replay must
			// accept every one of them again.
			if err != nil {
				return fmt.Errorf("batch plan %q: %w", rec.Batch[i].ID, err)
			}
		}
		return nil
	case opRemovePlan:
		if !s.eng.RemovePlan(rec.ID) {
			return fmt.Errorf("plan %q not loaded", rec.ID)
		}
		return nil
	case opAddEntry:
		return addEntryJSON(s.base, rec.Item)
	case opRemoveEntry:
		if !s.base.Remove(rec.ID) {
			return fmt.Errorf("kb entry %q not found", rec.ID)
		}
		return nil
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
}

// addEntryJSON reconstructs a knowledge-base entry from its JSON form the
// same way kb.Load does: recompile the pattern, revalidate the templates,
// keep the stored ranking profile.
func addEntryJSON(base *kb.KnowledgeBase, data []byte) error {
	var e kb.Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return fmt.Errorf("decoding kb entry: %w", err)
	}
	if e.Pattern == nil {
		return fmt.Errorf("kb entry %q has no pattern", e.Name)
	}
	e.Pattern.Name = e.Name
	e.Pattern.Description = e.Description
	added, err := base.Add(e.Pattern, e.Recommendations...)
	if err != nil {
		return err
	}
	if len(e.Profile) == kb.NumFeatures {
		added.Profile = e.Profile
	}
	return nil
}

// appendLocked journals one record and fsyncs. Callers hold s.mu.
func (s *Store) appendLocked(rec *record) error {
	if s.wal == nil {
		return ErrClosed
	}
	buf, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	writeStart := time.Now()
	if _, err := s.wal.Write(buf); err != nil {
		return fmt.Errorf("%w: appending record: %v", ErrPersist, err)
	}
	syncStart := time.Now()
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("%w: syncing WAL: %v", ErrPersist, err)
	}
	if s.instr.WALAppend != nil {
		s.instr.WALAppend(syncStart.Sub(writeStart), time.Since(syncStart), len(buf))
	}
	s.walRecords++
	s.walBytes += int64(len(buf))
	s.appended++
	s.appendedBytes += int64(len(buf))
	s.fsyncs++
	return nil
}

// maybeAutoCompact runs a compaction when the WAL has grown past the
// configured threshold. Compaction failure never fails the mutation that
// triggered it (the mutation is already durable in the log); it is surfaced
// through Stats instead.
func (s *Store) maybeAutoCompact() {
	if s.autoCompact <= 0 || s.walRecords < s.autoCompact {
		return
	}
	if err := s.compactLocked(); err != nil {
		s.compactErr = err.Error()
	}
}

// AddPlan parses and ingests an explain file, journaling the raw text. The
// returned plan is registered in the engine. Validation errors (bad text,
// duplicate ID) are returned as-is; durability failures wrap ErrPersist.
func (s *Store) AddPlan(text string) (*qep.Plan, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil, ErrClosed
	}
	p, err := s.eng.LoadText(text)
	if err != nil {
		return nil, err
	}
	if err := s.appendLocked(&record{Seq: s.seq + 1, Op: opAddPlan, ID: p.ID, Text: text}); err != nil {
		s.eng.RemovePlan(p.ID) // keep memory and log in agreement
		return nil, err
	}
	s.seq++
	s.maybeAutoCompact()
	return p, nil
}

// BatchOutcome is the per-record result of AddPlanBatch. Plan is non-nil
// whenever the text parsed (even if loading then failed as a duplicate);
// Err is nil exactly when the plan was loaded and persisted.
type BatchOutcome struct {
	Plan *qep.Plan
	Err  error
}

// AddPlanBatch ingests a batch of explain texts as one durable mutation:
// each text is validated individually (parse failures, validation errors
// and duplicate IDs — against the engine or earlier records in the same
// batch — fail only their own record), the accepted plans are registered in
// the engine under a single data-generation bump, and the whole batch is
// journaled as one WAL record with a single fsync. The returned error is
// nil unless the store is closed or persistence itself failed; per-record
// outcomes carry all validation results. On a persistence failure every
// accepted plan is rolled back — the batch is all-or-nothing on disk.
func (s *Store) AddPlanBatch(texts []string) ([]BatchOutcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil, ErrClosed
	}
	plans, errs := s.eng.LoadTextBatch(texts)
	out := make([]BatchOutcome, len(texts))
	var items []batchItem
	for i := range texts {
		out[i] = BatchOutcome{Plan: plans[i], Err: errs[i]}
		if errs[i] == nil {
			items = append(items, batchItem{ID: plans[i].ID, Text: texts[i]})
		}
	}
	if len(items) == 0 {
		return out, nil // nothing accepted: nothing to journal
	}
	if err := s.appendLocked(&record{Seq: s.seq + 1, Op: opAddPlanBatch, Batch: items}); err != nil {
		for _, it := range items {
			s.eng.RemovePlan(it.ID) // keep memory and log in agreement
		}
		return nil, err
	}
	s.seq++
	s.batchAppends++
	s.batchPlans += int64(len(items))
	s.maybeAutoCompact()
	return out, nil
}

// RemovePlan unloads a plan durably. It reports whether the plan existed.
func (s *Store) RemovePlan(id string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return false, ErrClosed
	}
	p := s.eng.Plan(id)
	if p == nil {
		return false, nil
	}
	s.eng.RemovePlan(id)
	if err := s.appendLocked(&record{Seq: s.seq + 1, Op: opRemovePlan, ID: id}); err != nil {
		_ = s.eng.LoadPlan(p) // roll back
		return false, err
	}
	s.seq++
	s.maybeAutoCompact()
	return true, nil
}

// AddEntry saves a problem pattern with its recommendations to the
// knowledge base, journaling the entry's JSON form.
func (s *Store) AddEntry(p *pattern.Pattern, recs ...kb.Recommendation) (*kb.Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil, ErrClosed
	}
	entry, err := s.base.Add(p, recs...)
	if err != nil {
		return nil, err
	}
	data, err := json.Marshal(entry)
	if err != nil {
		s.base.Remove(entry.Name)
		return nil, fmt.Errorf("store: encoding kb entry: %w", err)
	}
	if err := s.appendLocked(&record{Seq: s.seq + 1, Op: opAddEntry, ID: entry.Name, Item: data}); err != nil {
		s.base.Remove(entry.Name)
		return nil, err
	}
	s.seq++
	s.maybeAutoCompact()
	return entry, nil
}

// RemoveEntry deletes a knowledge-base entry durably. It reports whether
// the entry existed.
func (s *Store) RemoveEntry(name string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return false, ErrClosed
	}
	entry := s.base.Entry(name)
	if entry == nil {
		return false, nil
	}
	s.base.Remove(name)
	if err := s.appendLocked(&record{Seq: s.seq + 1, Op: opRemoveEntry, ID: name}); err != nil {
		if readded, aerr := s.base.Add(entry.Pattern, entry.Recommendations...); aerr == nil {
			readded.Profile = entry.Profile // roll back
		}
		return false, err
	}
	s.seq++
	s.maybeAutoCompact()
	return true, nil
}

// Compact folds the current state into a fresh snapshot and resets the WAL.
// Served state is unchanged; only the on-disk representation shrinks.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return ErrClosed
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() (err error) {
	if s.instr.Compaction != nil {
		defer func(start time.Time) { s.instr.Compaction(time.Since(start), err == nil) }(time.Now())
	}
	snap, err := buildSnapshot(s.generation+1, s.seq, s.eng.Plans(), s.base)
	if err != nil {
		return err
	}
	if err := writeSnapshot(s.dir, snap); err != nil {
		return fmt.Errorf("%w: %v", ErrPersist, err)
	}
	// Swap in an empty log only after the snapshot is durable. If we crash
	// between the renames the old log survives alongside the new snapshot,
	// and replay skips its records by sequence number.
	if err := atomicWrite(s.dir, walName, nil); err != nil {
		return fmt.Errorf("%w: resetting WAL: %v", ErrPersist, err)
	}
	f, err := os.OpenFile(filepath.Join(s.dir, walName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("%w: reopening WAL: %v", ErrPersist, err)
	}
	old := s.wal
	s.wal = f
	old.Close() // the unlinked previous log
	s.generation = snap.Generation
	s.compactions++
	s.walRecords, s.walBytes = 0, 0
	s.lastCompact = time.Now()
	s.compactErr = ""
	return nil
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Dir:                 s.dir,
		Generation:          s.generation,
		LastSeq:             s.seq,
		WALRecords:          s.walRecords,
		WALBytes:            s.walBytes,
		AppendedRecords:     s.appended,
		AppendedBytes:       s.appendedBytes,
		Fsyncs:              s.fsyncs,
		BatchAppends:        s.batchAppends,
		BatchPlans:          s.batchPlans,
		RecoveredRecords:    s.recovered,
		RecoveryTruncations: s.truncations,
		Compactions:         s.compactions,
		LastCompaction:      s.lastCompact,
		LastCompactionError: s.compactErr,
	}
}

// Close flushes and closes the log. Further mutations return ErrClosed; the
// engine and knowledge base stay readable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	if err != nil {
		return fmt.Errorf("store: closing WAL: %w", err)
	}
	return nil
}
