package cache

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// entryOverhead is the accounting charge, per entry, for the LRU list
// element, map slot and entry header — so a budget of N bytes bounds real
// memory near N even for many small entries.
const entryOverhead = 128

// Config tunes a Cache.
type Config struct {
	// MaxBytes is the budget for resident entries (key + value + fixed
	// per-entry overhead). Required; New panics on MaxBytes <= 0.
	MaxBytes int64
	// TTL, when positive, expires entries that have been resident longer
	// than this, independent of generation keying. Generation keys already
	// guarantee freshness; a TTL additionally bounds how long orphaned
	// generations may occupy budget before eviction would get to them.
	TTL time.Duration
	// MinCost is the cost-aware admission floor: only results whose
	// computation took at least this long are stored. Cheap results are
	// cheaper to recompute than to hold under a contended byte budget.
	// 0 admits everything.
	MinCost time.Duration
}

// Outcome classifies how one Do call was served.
type Outcome int

const (
	// Bypass: no cache configured, or the context opted out (WithBypass).
	Bypass Outcome = iota
	// Hit: served from a resident entry.
	Hit
	// Miss: this call executed the function and (if admitted) stored it.
	Miss
	// Collapsed: this call waited on another call's in-flight execution.
	Collapsed
)

// String returns the X-Cache header form of the outcome.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Collapsed:
		return "collapsed"
	default:
		return "bypass"
	}
}

// Result is what a Do function returns: the value, its precise size in
// bytes (rendered length for []byte values, an estimate for structured
// ones), and a NoStore escape hatch for results that are valid to return
// but not to cache — e.g. a scan that observed a different data generation
// than the one baked into the key.
type Result struct {
	Val     any
	Size    int64
	NoStore bool
}

// flight is one in-progress execution that concurrent identical requests
// collapse onto. waiters is guarded by the cache mutex; val/err are written
// before done is closed and read only after it.
type flight struct {
	done    chan struct{}
	val     any
	err     error
	waiters int
	cancel  context.CancelFunc
}

// entry is one resident cache value.
type entry struct {
	val    any
	stored time.Time
}

// Cache is a byte-bounded, generation-keyed result cache with singleflight
// collapsing. All methods are safe for concurrent use, and every method is
// nil-receiver safe (a nil *Cache behaves as "no cache": Do executes the
// function directly with Outcome Bypass), so call sites need no nil checks.
type Cache struct {
	cfg Config

	mu      sync.Mutex
	lru     *LRU
	flights map[string]*flight

	hits      atomic.Int64
	misses    atomic.Int64
	collapsed atomic.Int64
	evictions atomic.Int64
	rejected  atomic.Int64
	expired   atomic.Int64
}

// New returns an empty cache. It panics if cfg.MaxBytes <= 0 — an
// unbounded result cache is a memory leak, and "disabled" is spelled with
// a nil *Cache.
func New(cfg Config) *Cache {
	if cfg.MaxBytes <= 0 {
		panic("cache: Config.MaxBytes must be positive (use a nil *Cache to disable caching)")
	}
	c := &Cache{cfg: cfg, lru: NewLRU(0, cfg.MaxBytes), flights: make(map[string]*flight)}
	c.lru.SetOnEvict(func(string, any, int64) { c.evictions.Add(1) })
	return c
}

// Key joins the parts of a cache key with NUL separators, which cannot
// occur inside query text, plan IDs or generation tokens, so distinct part
// lists never collide.
func Key(parts ...string) string { return strings.Join(parts, "\x00") }

// bypassKey marks a context that opts out of caching.
type bypassKey struct{}

// WithBypass returns a context under which Do executes directly: no
// lookup, no store, no collapsing. The per-request ablation switch — the
// server maps Cache-Control: no-cache onto it, and the equivalence tests
// use it to re-execute uncached.
func WithBypass(ctx context.Context) context.Context {
	return context.WithValue(ctx, bypassKey{}, true)
}

// Bypassed reports whether ctx was marked by WithBypass.
func Bypassed(ctx context.Context) bool {
	on, _ := ctx.Value(bypassKey{}).(bool)
	return on
}

// Do returns the cached value for key, or executes fn exactly once across
// all concurrent callers with the same key and caches the result.
//
// Execution runs on its own goroutine under a context that is cancelled
// only when every caller waiting on it has gone away, so one caller's
// deadline or disconnect never poisons the result for the others; each
// waiter is individually released by its own ctx. Results are stored only
// when fn succeeded (a cancelled or deadline-exceeded execution returns a
// context error and is never cached), did not set NoStore, took at least
// MinCost to compute, and fits the byte budget on its own.
func (c *Cache) Do(ctx context.Context, key string, fn func(context.Context) (Result, error)) (any, Outcome, error) {
	if c == nil || Bypassed(ctx) {
		res, err := fn(ctx)
		return res.Val, Bypass, err
	}
	c.mu.Lock()
	if e, ok := c.lookupLocked(key); ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return e.val, Hit, nil
	}
	if f, ok := c.flights[key]; ok {
		f.waiters++
		c.mu.Unlock()
		c.collapsed.Add(1)
		return c.wait(ctx, f, Collapsed)
	}
	c.misses.Add(1)
	fctx, cancel := context.WithCancel(context.Background())
	f := &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
	c.flights[key] = f
	c.mu.Unlock()
	go c.run(key, f, fctx, fn)
	return c.wait(ctx, f, Miss)
}

// run executes one flight and publishes its result.
func (c *Cache) run(key string, f *flight, fctx context.Context, fn func(context.Context) (Result, error)) {
	defer f.cancel()
	start := time.Now()
	res, err := fn(fctx)
	cost := time.Since(start)

	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.flights, key)
	f.val, f.err = res.Val, err
	if err == nil {
		if !res.NoStore && cost >= c.cfg.MinCost && c.admitLocked(key, res.Size) {
			c.lru.Add(key, &entry{val: res.Val, stored: time.Now()}, res.Size+int64(len(key))+entryOverhead)
		} else {
			c.rejected.Add(1)
		}
	}
	close(f.done)
}

// admitLocked reports whether a successful result of the given size may be
// stored: an entry that alone exceeds the budget is rejected outright
// instead of flushing the whole cache on its way through the LRU.
func (c *Cache) admitLocked(key string, size int64) bool {
	return size+int64(len(key))+entryOverhead <= c.cfg.MaxBytes
}

// wait blocks until the flight completes or ctx is done. A waiter that
// gives up decrements the flight's refcount and, as the last one out,
// cancels the execution context — cooperative evaluators then stop within
// a bounded number of iterations and the (failed) result is not cached.
func (c *Cache) wait(ctx context.Context, f *flight, oc Outcome) (any, Outcome, error) {
	select {
	case <-f.done:
		return f.val, oc, f.err
	case <-ctx.Done():
		c.mu.Lock()
		select {
		case <-f.done:
			// Completed between ctx firing and taking the lock: the result
			// is real, deliver it.
			c.mu.Unlock()
			return f.val, oc, f.err
		default:
		}
		f.waiters--
		if f.waiters == 0 {
			f.cancel()
		}
		c.mu.Unlock()
		return nil, oc, ctx.Err()
	}
}

// lookupLocked resolves key against the resident entries, expiring it if
// the TTL has lapsed.
func (c *Cache) lookupLocked(key string) (*entry, bool) {
	v, ok := c.lru.Peek(key)
	if !ok {
		return nil, false
	}
	e := v.(*entry)
	if c.cfg.TTL > 0 && time.Since(e.stored) > c.cfg.TTL {
		// Remove fires the eviction hook; reclassify as expiry.
		c.lru.Remove(key)
		c.evictions.Add(-1)
		c.expired.Add(1)
		return nil, false
	}
	c.lru.Get(key) // touch recency only for live hits
	return e, true
}

// Clear drops every resident entry (counters are preserved). Used by the
// cold-cache benchmarks and tests.
func (c *Cache) Clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Clear()
}

// Stats is a point-in-time snapshot of the cache counters, served under
// /api/stats as the "cache" group and re-exported as optimatch_cache_* in
// /metrics.
type Stats struct {
	// Hits counts Do calls served from a resident entry.
	Hits int64 `json:"hits"`
	// Misses counts Do calls that executed (and tried to store) the result.
	Misses int64 `json:"misses"`
	// Collapsed counts Do calls that piggybacked on a concurrent miss.
	Collapsed int64 `json:"collapsed"`
	// Evictions counts entries displaced by byte-budget pressure.
	Evictions int64 `json:"evictions"`
	// Expired counts entries dropped by the TTL at lookup time.
	Expired int64 `json:"expired"`
	// Rejected counts successful executions not stored: cost below the
	// admission floor, NoStore results, or a size over the whole budget.
	Rejected int64 `json:"rejected"`
	// Bytes is the charged size of resident entries; Entries their count.
	Bytes   int64 `json:"bytes"`
	Entries int   `json:"entries"`
	// HitRatio is hits over all non-bypass lookups (hits+misses+collapsed);
	// 0 until the first lookup.
	HitRatio float64 `json:"hitRatio"`
}

// Stats returns a snapshot of the counters. Safe on a nil cache (all
// zeros).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	s := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Collapsed: c.collapsed.Load(),
		Evictions: c.evictions.Load(),
		Expired:   c.expired.Load(),
		Rejected:  c.rejected.Load(),
	}
	c.mu.Lock()
	s.Bytes = c.lru.Bytes()
	s.Entries = c.lru.Len()
	c.mu.Unlock()
	if total := s.Hits + s.Misses + s.Collapsed; total > 0 {
		s.HitRatio = float64(s.Hits) / float64(total)
	}
	return s
}
