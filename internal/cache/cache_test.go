package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLRUEvictionOrder(t *testing.T) {
	l := NewLRU(3, 0)
	var evicted []string
	l.SetOnEvict(func(key string, _ any, _ int64) { evicted = append(evicted, key) })
	l.Add("a", 1, 1)
	l.Add("b", 2, 1)
	l.Add("c", 3, 1)
	if _, ok := l.Get("a"); !ok { // touch a: b becomes coldest
		t.Fatal("a missing")
	}
	l.Add("d", 4, 1)
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted = %v, want [b]", evicted)
	}
	if _, ok := l.Get("a"); !ok {
		t.Error("recently used entry evicted")
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestLRUByteBudget(t *testing.T) {
	l := NewLRU(0, 100)
	l.Add("a", nil, 40)
	l.Add("b", nil, 40)
	if l.Bytes() != 80 {
		t.Fatalf("Bytes = %d", l.Bytes())
	}
	l.Add("c", nil, 40) // over budget: a (coldest) must go
	if _, ok := l.Peek("a"); ok {
		t.Error("a survived byte-budget eviction")
	}
	if l.Bytes() != 80 || l.Len() != 2 {
		t.Errorf("after eviction: bytes=%d len=%d", l.Bytes(), l.Len())
	}
	// Replacing an entry re-charges its size difference.
	l.Add("b", nil, 10)
	if l.Bytes() != 50 {
		t.Errorf("after replace: bytes=%d", l.Bytes())
	}
}

func TestLRURemoveAndClear(t *testing.T) {
	l := NewLRU(0, 0)
	l.Add("a", 1, 8)
	if !l.Remove("a") || l.Remove("a") {
		t.Error("Remove reporting wrong")
	}
	l.Add("b", 2, 8)
	l.Clear()
	if l.Len() != 0 || l.Bytes() != 0 {
		t.Errorf("after Clear: len=%d bytes=%d", l.Len(), l.Bytes())
	}
}

func doVal(c *Cache, ctx context.Context, key, val string) (any, Outcome, error) {
	return c.Do(ctx, key, func(context.Context) (Result, error) {
		return Result{Val: val, Size: int64(len(val))}, nil
	})
}

func TestDoHitMiss(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	ctx := context.Background()
	v, oc, err := doVal(c, ctx, "k", "first")
	if err != nil || v != "first" || oc != Miss {
		t.Fatalf("first Do = (%v, %v, %v)", v, oc, err)
	}
	v, oc, err = c.Do(ctx, "k", func(context.Context) (Result, error) {
		t.Error("fn ran on a resident key")
		return Result{}, nil
	})
	if err != nil || v != "first" || oc != Hit {
		t.Fatalf("second Do = (%v, %v, %v)", v, oc, err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes == 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRatio != 0.5 {
		t.Errorf("hit ratio = %v", st.HitRatio)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		_, _, err := c.Do(context.Background(), "k", func(context.Context) (Result, error) {
			calls++
			return Result{}, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2 (errors must not be cached)", calls)
	}
}

func TestDoBypass(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	ctx := context.Background()
	if _, _, err := doVal(c, ctx, "k", "v"); err != nil {
		t.Fatal(err)
	}
	calls := 0
	v, oc, err := c.Do(WithBypass(ctx), "k", func(context.Context) (Result, error) {
		calls++
		return Result{Val: "fresh", Size: 5}, nil
	})
	if err != nil || v != "fresh" || oc != Bypass || calls != 1 {
		t.Fatalf("bypass Do = (%v, %v, %v), calls=%d", v, oc, err, calls)
	}
	// A nil cache bypasses too, with no nil checks at the call site.
	var nilc *Cache
	v, oc, err = doVal(nilc, ctx, "k", "direct")
	if err != nil || v != "direct" || oc != Bypass {
		t.Fatalf("nil-cache Do = (%v, %v, %v)", v, oc, err)
	}
	if st := nilc.Stats(); st != (Stats{}) {
		t.Errorf("nil stats = %+v", st)
	}
}

func TestDoNoStore(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	calls := 0
	for i := 0; i < 2; i++ {
		v, _, err := c.Do(context.Background(), "k", func(context.Context) (Result, error) {
			calls++
			return Result{Val: "v", Size: 1, NoStore: true}, nil
		})
		if err != nil || v != "v" {
			t.Fatal(v, err)
		}
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2 (NoStore results must not be cached)", calls)
	}
	if st := c.Stats(); st.Rejected != 2 || st.Entries != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCostAwareAdmission(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, MinCost: 5 * time.Millisecond})
	cheap := 0
	for i := 0; i < 2; i++ {
		if _, _, err := c.Do(context.Background(), "cheap", func(context.Context) (Result, error) {
			cheap++
			return Result{Val: "v", Size: 1}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if cheap != 2 {
		t.Errorf("cheap result cached despite cost floor (calls=%d)", cheap)
	}
	costly := 0
	for i := 0; i < 2; i++ {
		if _, _, err := c.Do(context.Background(), "costly", func(context.Context) (Result, error) {
			costly++
			time.Sleep(10 * time.Millisecond)
			return Result{Val: "v", Size: 1}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if costly != 1 {
		t.Errorf("costly result not cached (calls=%d)", costly)
	}
}

func TestOversizedRejected(t *testing.T) {
	c := New(Config{MaxBytes: 256})
	if _, _, err := c.Do(context.Background(), "big", func(context.Context) (Result, error) {
		return Result{Val: "v", Size: 10_000}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Entries != 0 || st.Rejected != 1 {
		t.Errorf("stats = %+v (oversized entry must be rejected, not flush the cache)", st)
	}
}

func TestTTLExpiry(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, TTL: 10 * time.Millisecond})
	if _, _, err := doVal(c, context.Background(), "k", "v"); err != nil {
		t.Fatal(err)
	}
	if _, oc, _ := doVal(c, context.Background(), "k", "v2"); oc != Hit {
		t.Fatalf("immediate lookup = %v, want Hit", oc)
	}
	time.Sleep(20 * time.Millisecond)
	v, oc, err := doVal(c, context.Background(), "k", "fresh")
	if err != nil || oc != Miss || v != "fresh" {
		t.Fatalf("post-TTL Do = (%v, %v, %v)", v, oc, err)
	}
	if st := c.Stats(); st.Expired != 1 || st.Evictions != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestSingleflightCollapse launches many concurrent identical misses and
// asserts exactly one execution served them all.
func TestSingleflightCollapse(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	var calls atomic.Int64
	release := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	vals := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, oc, err := c.Do(context.Background(), "k", func(context.Context) (Result, error) {
				calls.Add(1)
				<-release
				return Result{Val: "shared", Size: 6}, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i], outcomes[i] = v, oc
		}(i)
	}
	// Wait for the flight to exist, then for all waiters to pile on.
	for {
		c.mu.Lock()
		f := c.flights["k"]
		ready := f != nil && f.waiters == n
		c.mu.Unlock()
		if ready {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
	misses, collapsed := 0, 0
	for i := range outcomes {
		if vals[i] != "shared" {
			t.Fatalf("waiter %d got %v", i, vals[i])
		}
		switch outcomes[i] {
		case Miss:
			misses++
		case Collapsed:
			collapsed++
		}
	}
	if misses != 1 || collapsed != n-1 {
		t.Errorf("misses=%d collapsed=%d", misses, collapsed)
	}
	if st := c.Stats(); st.Collapsed != n-1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestWaiterCancelDoesNotPoisonFlight: a waiter that gives up gets its own
// context error, while the remaining waiter still receives the real result.
func TestWaiterCancelDoesNotPoisonFlight(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	release := make(chan struct{})
	started := make(chan struct{})
	fn := func(fctx context.Context) (Result, error) {
		close(started)
		select {
		case <-release:
			return Result{Val: "ok", Size: 2}, nil
		case <-fctx.Done():
			return Result{}, fctx.Err()
		}
	}
	type out struct {
		v   any
		err error
	}
	leader := make(chan out, 1)
	cctx, cancel := context.WithCancel(context.Background())
	go func() {
		v, _, err := c.Do(cctx, "k", fn)
		leader <- out{v, err}
	}()
	<-started
	follower := make(chan out, 1)
	go func() {
		v, _, err := c.Do(context.Background(), "k", func(context.Context) (Result, error) {
			t.Error("follower must join the flight, not execute")
			return Result{}, nil
		})
		follower <- out{v, err}
	}()
	// Wait until the follower is registered, then cancel the first caller.
	for {
		c.mu.Lock()
		f := c.flights["k"]
		ready := f != nil && f.waiters == 2
		c.mu.Unlock()
		if ready {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	got := <-leader
	if !errors.Is(got.err, context.Canceled) {
		t.Fatalf("cancelled caller got err=%v", got.err)
	}
	close(release)
	got = <-follower
	if got.err != nil || got.v != "ok" {
		t.Fatalf("surviving waiter got (%v, %v)", got.v, got.err)
	}
}

// TestAllWaitersGoneCancelsExecution: when the last waiter abandons a
// flight, its context fires; the failed execution is not cached and the
// next request re-executes.
func TestAllWaitersGoneCancelsExecution(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	executionDone := make(chan error, 1)
	cctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	_, _, err := func() (any, Outcome, error) {
		go func() { <-started; cancel() }()
		return c.Do(cctx, "k", func(fctx context.Context) (Result, error) {
			close(started)
			<-fctx.Done() // cooperative evaluator observing cancellation
			executionDone <- fctx.Err()
			return Result{}, fctx.Err()
		})
	}()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ferr := <-executionDone; !errors.Is(ferr, context.Canceled) {
		t.Fatalf("flight ctx err = %v (must be cancelled when all waiters leave)", ferr)
	}
	// The cancelled result must not have been cached.
	v, oc, err := doVal(c, context.Background(), "k", "fresh")
	if err != nil || oc != Miss || v != "fresh" {
		t.Fatalf("re-Do = (%v, %v, %v)", v, oc, err)
	}
}

func TestDeadlineWaiter(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, _, err := c.Do(ctx, "k", func(fctx context.Context) (Result, error) {
		<-fctx.Done()
		return Result{}, fctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("deadline-exceeded result cached: %+v", st)
	}
}

func TestGenerationKeyedEntriesAgeOut(t *testing.T) {
	// Old-generation entries are not invalidated, they are orphaned: new
	// keys stop referencing them and the byte budget evicts them.
	c := New(Config{MaxBytes: 3 * 512})
	for gen := 0; gen < 20; gen++ {
		key := Key("scan", fmt.Sprint(gen))
		if _, _, err := c.Do(context.Background(), key, func(context.Context) (Result, error) {
			return Result{Val: gen, Size: 256}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries == 0 || st.Bytes > 3*512 {
		t.Errorf("stats = %+v", st)
	}
	if st.Evictions == 0 {
		t.Error("orphaned generations never evicted")
	}
}

func TestKey(t *testing.T) {
	if Key("a", "b") == Key("ab", "") || Key("a") == Key("a", "") {
		t.Error("key parts collide")
	}
}
