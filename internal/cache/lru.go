// Package cache is the serving stack's result cache subsystem: a
// byte-bounded LRU keyed by (canonical request identity, data generation)
// with singleflight collapsing of concurrent identical misses. The paper's
// workload is read-heavy and repetitive — the same expert-pattern scans and
// problem-pattern searches are re-issued continuously against plan corpora
// that change rarely — so a correct cache in front of the
// prefilter/specialize/match pipeline is the single biggest latency lever.
//
// Correctness comes from generation keying, not invalidation walks: every
// mutable data source (the engine's plan set, a knowledge base's entry
// list) carries a monotonic generation counter, the counter is part of the
// cache key, and a mutation therefore orphans every prior entry instead of
// racing an explicit purge. Orphans age out under the byte budget.
//
// The package is dependency-free (stdlib only) and imported by core, so it
// must stay that way.
package cache

import "container/list"

// lruItem is one resident entry: the key is duplicated here so eviction can
// delete the map slot without a reverse lookup.
type lruItem struct {
	key  string
	val  any
	size int64
}

// LRU is a least-recently-used map bounded by entry count, by total bytes,
// or both (0 disables a bound). It is not safe for concurrent use — Cache
// and the engine's parse-once query cache wrap it with their own locks.
type LRU struct {
	maxEntries int
	maxBytes   int64

	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	bytes   int64
	onEvict func(key string, val any, size int64)
}

// NewLRU returns an empty LRU with the given bounds (0 = unbounded).
func NewLRU(maxEntries int, maxBytes int64) *LRU {
	return &LRU{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// SetOnEvict installs a hook observing every eviction (bound pressure or
// Remove). Used for eviction counters.
func (l *LRU) SetOnEvict(fn func(key string, val any, size int64)) { l.onEvict = fn }

// Get returns the value for key and marks it most recently used.
func (l *LRU) Get(key string) (any, bool) {
	el, ok := l.items[key]
	if !ok {
		return nil, false
	}
	l.ll.MoveToFront(el)
	return el.Value.(*lruItem).val, true
}

// Peek returns the value for key without touching recency.
func (l *LRU) Peek(key string) (any, bool) {
	el, ok := l.items[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*lruItem).val, true
}

// Add inserts or replaces the value for key, charging size bytes against
// the budget, then evicts from the cold end until both bounds hold again.
// A single entry larger than the whole byte budget is evicted immediately;
// callers that want rejection instead (Cache does) must pre-check.
func (l *LRU) Add(key string, val any, size int64) {
	if el, ok := l.items[key]; ok {
		item := el.Value.(*lruItem)
		l.bytes += size - item.size
		item.val, item.size = val, size
		l.ll.MoveToFront(el)
	} else {
		l.items[key] = l.ll.PushFront(&lruItem{key: key, val: val, size: size})
		l.bytes += size
	}
	for l.overBudget() {
		l.evictOldest()
	}
}

func (l *LRU) overBudget() bool {
	if l.ll.Len() == 0 {
		return false
	}
	return (l.maxEntries > 0 && l.ll.Len() > l.maxEntries) ||
		(l.maxBytes > 0 && l.bytes > l.maxBytes)
}

func (l *LRU) evictOldest() {
	el := l.ll.Back()
	if el == nil {
		return
	}
	l.removeElement(el)
}

// Remove deletes key, reporting whether it was resident. Removal counts as
// an eviction for the OnEvict hook (Cache uses Remove for TTL expiry).
func (l *LRU) Remove(key string) bool {
	el, ok := l.items[key]
	if !ok {
		return false
	}
	l.removeElement(el)
	return true
}

func (l *LRU) removeElement(el *list.Element) {
	item := el.Value.(*lruItem)
	l.ll.Remove(el)
	delete(l.items, item.key)
	l.bytes -= item.size
	if l.onEvict != nil {
		l.onEvict(item.key, item.val, item.size)
	}
}

// Len reports the number of resident entries.
func (l *LRU) Len() int { return l.ll.Len() }

// Bytes reports the total charged size of resident entries.
func (l *LRU) Bytes() int64 { return l.bytes }

// Clear drops every entry without calling the eviction hook.
func (l *LRU) Clear() {
	l.ll.Init()
	l.items = make(map[string]*list.Element)
	l.bytes = 0
}
