// Package kb implements the OptImatch knowledge base (paper Section 2.3):
// a library of expert problem patterns with recommendation templates written
// in the handler tagging language, automatic context adaptation of those
// templates to the user's query execution plans, and statistical-correlation
// ranking of the resulting recommendations with confidence scores
// (Algorithms 4 and 5).
package kb

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"optimatch/internal/qep"
	"optimatch/internal/rdf"
	"optimatch/internal/transform"
)

// Occurrence is one match of a knowledge-base pattern in one plan: the
// bindings of the pattern's result handlers (by tagging alias) plus the
// de-transformation context.
type Occurrence struct {
	Plan     *qep.Plan
	Result   *transform.Result
	Bindings map[string]rdf.Term // alias -> matched resource
}

// Binding returns the resource bound to alias (case-insensitive).
func (o *Occurrence) Binding(alias string) (rdf.Term, bool) {
	if t, ok := o.Bindings[alias]; ok {
		return t, true
	}
	for k, t := range o.Bindings {
		if strings.EqualFold(k, alias) {
			return t, true
		}
	}
	return rdf.Term{}, false
}

// Display renders the alias binding the way a user sees it in the plan
// ("NLJOIN(2)", "CUST_DIM").
func (o *Occurrence) Display(alias string) (string, error) {
	t, ok := o.Binding(alias)
	if !ok {
		return "", fmt.Errorf("kb: handler @%s is not bound in this occurrence", alias)
	}
	return o.Result.Describe(t), nil
}

// Field accessors usable as @ALIAS.FIELD in recommendation templates.
const (
	FieldName     = "NAME"
	FieldType     = "TYPE"
	FieldID       = "ID"
	FieldCard     = "CARD"
	FieldCost     = "COST"
	FieldIOCost   = "IOCOST"
	FieldSelfCost = "SELFCOST"
)

// Field evaluates @ALIAS.FIELD.
func (o *Occurrence) Field(alias, field string) (string, error) {
	t, ok := o.Binding(alias)
	if !ok {
		return "", fmt.Errorf("kb: handler @%s is not bound in this occurrence", alias)
	}
	op := o.Result.Operator(t)
	obj := o.Result.Object(t)
	switch strings.ToUpper(field) {
	case FieldName:
		if obj != nil {
			return obj.Name, nil
		}
		if op != nil {
			return op.DisplayName(), nil
		}
	case FieldType:
		if obj != nil {
			return obj.Type, nil
		}
		if op != nil {
			return op.Type, nil
		}
	case FieldID:
		if op != nil {
			return fmt.Sprintf("%d", op.ID), nil
		}
		if obj != nil {
			return obj.Name, nil
		}
	case FieldCard:
		if op != nil {
			return qep.FormatNumShort(op.Cardinality), nil
		}
		if obj != nil {
			return qep.FormatNumShort(obj.Cardinality), nil
		}
	case FieldCost:
		if op != nil {
			return qep.FormatNumShort(op.TotalCost), nil
		}
	case FieldIOCost:
		if op != nil {
			return qep.FormatNumShort(op.IOCost), nil
		}
	case FieldSelfCost:
		if op != nil {
			return qep.FormatNumShort(op.SelfCost()), nil
		}
	default:
		return "", fmt.Errorf("kb: unknown field %q in @%s.%s", field, alias, field)
	}
	return "", fmt.Errorf("kb: field %s not applicable to @%s", field, alias)
}

// Helper functions usable as @ALIAS(FN) in recommendation templates.
const (
	FnInput     = "INPUT"     // columns flowing from the handler into its consumer
	FnPredicate = "PREDICATE" // columns referenced by the handler's predicates
	FnColumns   = "COLUMNS"   // the handler's own column list
)

// Fn evaluates @ALIAS(FN).
func (o *Occurrence) Fn(alias, fn string) (string, error) {
	t, ok := o.Binding(alias)
	if !ok {
		return "", fmt.Errorf("kb: handler @%s is not bound in this occurrence", alias)
	}
	op := o.Result.Operator(t)
	obj := o.Result.Object(t)
	var cols []string
	switch strings.ToUpper(fn) {
	case FnInput:
		switch {
		case obj != nil:
			cols = o.objectStreamColumns(obj)
			if len(cols) == 0 {
				cols = obj.Columns
			}
		case op != nil:
			for _, in := range op.Inputs {
				cols = append(cols, in.Columns...)
			}
		}
	case FnPredicate:
		switch {
		case op != nil:
			cols = predicateColumns(op.Predicates)
		case obj != nil:
			if consumer := o.objectConsumer(obj); consumer != nil {
				cols = predicateColumns(consumer.Predicates)
			}
		}
	case FnColumns:
		switch {
		case obj != nil:
			cols = obj.Columns
		case op != nil:
			cols = o.operatorOutputColumns(op)
		}
	default:
		return "", fmt.Errorf("kb: unknown helper function %q in @%s(%s)", fn, alias, fn)
	}
	cols = dedupeColumns(cols)
	if len(cols) == 0 {
		return "(none)", nil
	}
	return strings.Join(cols, ", "), nil
}

// objectConsumer finds the operator reading the base object.
func (o *Occurrence) objectConsumer(obj *qep.BaseObject) *qep.Operator {
	for _, op := range o.Plan.Ops() {
		for _, in := range op.Inputs {
			if in.Obj == obj {
				return op
			}
		}
	}
	return nil
}

// objectStreamColumns returns the columns carried by the stream from obj to
// its consumer.
func (o *Occurrence) objectStreamColumns(obj *qep.BaseObject) []string {
	for _, op := range o.Plan.Ops() {
		for _, in := range op.Inputs {
			if in.Obj == obj {
				return in.Columns
			}
		}
	}
	return nil
}

// operatorOutputColumns returns the columns the operator sends to its parent.
func (o *Occurrence) operatorOutputColumns(op *qep.Operator) []string {
	if op.Parent == nil {
		return nil
	}
	for _, in := range op.Parent.Inputs {
		if in.Op == op {
			return in.Columns
		}
	}
	return nil
}

// qualifiedColRe extracts "Q1.CUST_ID"-style qualified column references
// from predicate text.
var qualifiedColRe = regexp.MustCompile(`[A-Za-z_][A-Za-z0-9_]*\.([A-Za-z_][A-Za-z0-9_]*)`)

// predicateColumns extracts the distinct column names referenced in
// predicate strings, preserving first-appearance order.
func predicateColumns(preds []string) []string {
	var out []string
	for _, p := range preds {
		for _, m := range qualifiedColRe.FindAllStringSubmatch(p, -1) {
			out = append(out, m[1])
		}
	}
	return dedupeColumns(out)
}

func dedupeColumns(cols []string) []string {
	seen := make(map[string]bool, len(cols))
	var out []string
	for _, c := range cols {
		c = strings.TrimSpace(c)
		// Strip correlation qualifiers like "Q1." if present.
		if i := strings.LastIndexByte(c, '.'); i >= 0 {
			c = c[i+1:]
		}
		if c == "" || seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	return out
}

// SortOccurrences orders occurrences deterministically by their binding
// fingerprint, so reports are stable across runs.
func SortOccurrences(occs []Occurrence) {
	sort.SliceStable(occs, func(i, j int) bool {
		return occurrenceKey(occs[i]) < occurrenceKey(occs[j])
	})
}

func occurrenceKey(o Occurrence) string {
	keys := make([]string, 0, len(o.Bindings))
	for k := range o.Bindings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(o.Bindings[k].Value)
		b.WriteByte(';')
	}
	return b.String()
}
