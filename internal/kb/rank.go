package kb

import (
	"math"

	"optimatch/internal/pattern"
	"optimatch/internal/stats"
)

// NumFeatures is the length of the characteristic vectors used for ranking.
const NumFeatures = 5

// Features computes the characteristic vector of one match occurrence, each
// component normalized to [0, 1]:
//
//	0: cost share     — highest cumulative cost among bound operators,
//	                    relative to the plan's total cost
//	1: cardinality    — log-scaled highest cardinality among bound entities
//	2: self-cost share— highest own (non-cumulative) cost share
//	3: join fraction  — fraction of bound operators that are joins
//	4: scan fraction  — fraction of bound operators that are scans
//
// These are the "cardinality and cost estimates" context the paper's
// statistical correlation analysis compares against the expert profile.
func Features(o *Occurrence) []float64 {
	var maxCost, maxCard, maxSelf float64
	var ops, joins, scans int
	for _, t := range o.Bindings {
		if op := o.Result.Operator(t); op != nil {
			ops++
			if op.TotalCost > maxCost {
				maxCost = op.TotalCost
			}
			if op.Cardinality > maxCard {
				maxCard = op.Cardinality
			}
			if sc := op.SelfCost(); sc > maxSelf {
				maxSelf = sc
			}
			if op.IsJoin() {
				joins++
			}
			if op.Class() == "SCAN" {
				scans++
			}
			continue
		}
		if obj := o.Result.Object(t); obj != nil {
			if obj.Cardinality > maxCard {
				maxCard = obj.Cardinality
			}
		}
	}
	total := o.Plan.TotalCost
	if total <= 0 {
		total = 1
	}
	f := make([]float64, NumFeatures)
	f[0] = stats.Clamp(maxCost/total, 0, 1)
	f[1] = stats.Clamp(math.Log10(1+maxCard)/10, 0, 1)
	f[2] = stats.Clamp(maxSelf/total, 0, 1)
	if ops > 0 {
		f[3] = float64(joins) / float64(ops)
		f[4] = float64(scans) / float64(ops)
	}
	return f
}

// DefaultProfile derives an expert profile from the pattern structure when
// the author did not supply one: expensive (high cost share), mid
// cardinality, and the join/scan fractions the pattern itself prescribes.
func DefaultProfile(p *pattern.Pattern) []float64 {
	var joins, scans, ops int
	for _, pop := range p.Pops {
		if pop.Type == pattern.TypeBaseObj {
			continue
		}
		ops++
		switch pop.Type {
		case pattern.TypeJoin, "NLJOIN", "HSJOIN", "MSJOIN", "ZZJOIN":
			joins++
		case pattern.TypeScan, "TBSCAN", "IXSCAN":
			scans++
		}
	}
	f := []float64{0.8, 0.5, 0.3, 0, 0}
	if ops > 0 {
		f[3] = float64(joins) / float64(ops)
		f[4] = float64(scans) / float64(ops)
	}
	return f
}

// Confidence scores one occurrence against an entry profile: the Pearson
// correlation of the two characteristic vectors, mapped into [0, 1] and
// scaled by the recommendation's expert weight. A zero-information
// correlation (0) yields the midpoint weight*0.55.
func Confidence(profile, features []float64, weight float64) float64 {
	if weight == 0 {
		weight = 1
	}
	r := stats.Pearson(profile, features)
	return stats.Clamp(weight*(0.55+0.45*r), 0, 1)
}
