package kb

import (
	"bytes"
	"strings"
	"testing"

	"optimatch/internal/fixtures"
	"optimatch/internal/pattern"
	"optimatch/internal/qep"
	"optimatch/internal/rdf"
	"optimatch/internal/sparql"
	"optimatch/internal/transform"
)

// matchEntry runs an entry's query against one plan and builds occurrences,
// the way the core engine does (Algorithm 5 inline for tests).
func matchEntry(t *testing.T, e *Entry, plan *qep.Plan) []Occurrence {
	t.Helper()
	r := transform.Transform(plan)
	q, err := sparql.Parse(e.SPARQL)
	if err != nil {
		t.Fatalf("entry %s query: %v", e.Name, err)
	}
	res, err := q.Exec(r.Graph)
	if err != nil {
		t.Fatalf("entry %s exec: %v", e.Name, err)
	}
	var occs []Occurrence
	for i := 0; i < res.Len(); i++ {
		bind := make(map[string]rdf.Term)
		for _, v := range res.Vars {
			bind[v] = res.Get(i, v)
		}
		occs = append(occs, Occurrence{Plan: plan, Result: r, Bindings: bind})
	}
	return occs
}

func TestCanonicalKB(t *testing.T) {
	k := MustCanonical()
	if k.Len() != 4 {
		t.Fatalf("entries = %d, want 4", k.Len())
	}
	for _, e := range k.Entries() {
		if e.SPARQL == "" || e.Compiled() == nil {
			t.Errorf("entry %s not compiled", e.Name)
		}
		if len(e.Profile) != NumFeatures {
			t.Errorf("entry %s profile = %v", e.Name, e.Profile)
		}
	}
	if k.Entry("nljoin-inner-tbscan") == nil || k.Entry("ghost") != nil {
		t.Error("Entry lookup wrong")
	}
}

func TestPatternARecommendationContextAdaptation(t *testing.T) {
	k := MustCanonical()
	e := k.Entry("nljoin-inner-tbscan")
	occs := matchEntry(t, e, fixtures.Figure1())
	if len(occs) != 1 {
		t.Fatalf("occurrences = %d, want 1", len(occs))
	}
	ranked, err := e.Apply(occs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 {
		t.Fatalf("ranked = %d, want 2", len(ranked))
	}
	// The index recommendation must name the concrete table and columns of
	// THIS plan even though the template was written without them.
	var indexRec *Ranked
	for i := range ranked {
		if ranked[i].Recommendation.Category == "INDEX" {
			indexRec = &ranked[i]
		}
	}
	if indexRec == nil {
		t.Fatal("index recommendation missing")
	}
	for _, want := range []string{"CUST_DIM", "CUST_NAME", "CUST_ID", "NLJOIN(2)", "19.12"} {
		if !strings.Contains(indexRec.Text, want) {
			t.Errorf("adapted text missing %q:\n%s", want, indexRec.Text)
		}
	}
	if strings.Contains(indexRec.Text, "@") {
		t.Errorf("unexpanded tag in: %s", indexRec.Text)
	}
	for _, r := range ranked {
		if r.Confidence <= 0 || r.Confidence > 1 {
			t.Errorf("confidence out of range: %v", r.Confidence)
		}
	}
	// Ranked order is by confidence descending.
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Confidence < ranked[i].Confidence {
			t.Error("ranking not descending")
		}
	}
}

func TestPatternBRecommendation(t *testing.T) {
	k := MustCanonical()
	e := k.Entry("loj-both-sides")
	occs := matchEntry(t, e, fixtures.Figure7())
	if len(occs) == 0 {
		t.Fatal("no occurrences in Figure 7")
	}
	ranked, err := e.Apply(occs)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range ranked {
		if strings.Contains(r.Text, ">HSJOIN(6)") && strings.Contains(r.Text, ">NLJOIN(15)") {
			found = true
		}
	}
	if !found {
		t.Errorf("no recommendation names both LOJ operators: %+v", ranked)
	}
}

func TestPatternDOccurrenceLimit(t *testing.T) {
	k := MustCanonical()
	e := k.Entry("sort-spill")
	// Build a plan with two spilling sorts.
	p := qep.NewPlan("Q2SORT")
	p.Statement = "SELECT 1"
	p.TotalCost = 100
	obj := p.AddObject(&qep.BaseObject{Name: "T", Cardinality: 1000})
	ret := &qep.Operator{ID: 1, Type: "RETURN", TotalCost: 100, IOCost: 50, Cardinality: 10}
	s1 := &qep.Operator{ID: 2, Type: "SORT", TotalCost: 90, IOCost: 45, Cardinality: 10}
	s2 := &qep.Operator{ID: 3, Type: "SORT", TotalCost: 70, IOCost: 30, Cardinality: 10}
	tb := &qep.Operator{ID: 4, Type: "TBSCAN", TotalCost: 40, IOCost: 10, Cardinality: 1000}
	for _, op := range []*qep.Operator{ret, s1, s2, tb} {
		if err := p.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	p.Link(ret, qep.GeneralStream, s1, nil, 10, nil)
	p.Link(s1, qep.GeneralStream, s2, nil, 10, nil)
	p.Link(s2, qep.GeneralStream, tb, nil, 1000, nil)
	p.Link(tb, qep.GeneralStream, nil, obj, 1000, nil)
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}

	occs := matchEntry(t, e, p)
	if len(occs) != 2 {
		t.Fatalf("occurrences = %d, want 2", len(occs))
	}
	ranked, err := e.Apply(occs)
	if err != nil {
		t.Fatal(err)
	}
	// MaxOccurrences: 1 limits the CONFIG recommendation to one line.
	if len(ranked) != 1 {
		t.Errorf("ranked = %d, want 1 (occurrence limit)", len(ranked))
	}
}

func TestApplyDeterministic(t *testing.T) {
	k := MustCanonical()
	e := k.Entry("nljoin-inner-tbscan")
	occs1 := matchEntry(t, e, fixtures.Figure1())
	occs2 := matchEntry(t, e, fixtures.Figure1())
	r1, err := e.Apply(occs1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Apply(occs2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatal("length mismatch")
	}
	for i := range r1 {
		if r1[i].Text != r2[i].Text || r1[i].Confidence != r2[i].Confidence {
			t.Error("nondeterministic Apply")
		}
	}
}

func TestKBSaveLoadRoundTrip(t *testing.T) {
	k := MustCanonical()
	var buf bytes.Buffer
	if err := k.Save(&buf); err != nil {
		t.Fatal(err)
	}
	k2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if k2.Len() != k.Len() {
		t.Fatalf("loaded entries = %d, want %d", k2.Len(), k.Len())
	}
	for _, e := range k.Entries() {
		e2 := k2.Entry(e.Name)
		if e2 == nil {
			t.Fatalf("entry %s missing after load", e.Name)
		}
		if e2.SPARQL != e.SPARQL {
			t.Errorf("entry %s: SPARQL differs after reload", e.Name)
		}
		if len(e2.Recommendations) != len(e.Recommendations) {
			t.Errorf("entry %s: recommendations differ", e.Name)
		}
	}
	// A loaded KB behaves identically.
	e := k2.Entry("nljoin-inner-tbscan")
	occs := matchEntry(t, e, fixtures.Figure1())
	if len(occs) != 1 {
		t.Errorf("occurrences after reload = %d", len(occs))
	}
}

func TestKBAddValidation(t *testing.T) {
	k := New()
	// Unnamed pattern.
	b := pattern.NewBuilder("", "x")
	b.Pop("SORT")
	unnamed, _ := b.Build()
	if _, err := k.Add(unnamed, Recommendation{Title: "t", Template: "x"}); err == nil {
		t.Error("unnamed pattern accepted")
	}
	// No recommendations.
	if _, err := k.Add(pattern.A()); err == nil {
		t.Error("entry without recommendations accepted")
	}
	// Bad alias in template.
	if _, err := k.Add(pattern.A(), Recommendation{Title: "t", Template: "do @NOSUCH"}); err == nil {
		t.Error("unknown alias accepted")
	}
	// Bad field.
	if _, err := k.Add(pattern.A(), Recommendation{Title: "t", Template: "@TOP.WEIGHT"}); err == nil {
		t.Error("unknown field accepted")
	}
	// Bad helper.
	if _, err := k.Add(pattern.A(), Recommendation{Title: "t", Template: "@TOP(EXPLODE)"}); err == nil {
		t.Error("unknown helper accepted")
	}
	// Empty template.
	if _, err := k.Add(pattern.A(), Recommendation{Title: "t", Template: "  "}); err == nil {
		t.Error("empty template accepted")
	}
	// Duplicate name.
	if _, err := k.Add(pattern.A(), Recommendation{Title: "t", Template: "@TOP"}); err != nil {
		t.Fatalf("valid add failed: %v", err)
	}
	if _, err := k.Add(pattern.A(), Recommendation{Title: "t", Template: "@TOP"}); err == nil {
		t.Error("duplicate entry name accepted")
	}
}

func TestTemplateParsing(t *testing.T) {
	good := map[string]int{ // template -> number of tag nodes
		"plain text only":               0,
		"@TOP":                          1,
		"x @TOP y":                      1,
		"@TOP.NAME and @BASE4(INPUT)":   2,
		"@[A,B]":                        1,
		"@[A, B].NAME":                  1,
		"escaped @@ at":                 0,
		"create idx on @T(COLUMNS) now": 1,
	}
	for tmpl, wantTags := range good {
		nodes, err := parseTemplate(tmpl)
		if err != nil {
			t.Errorf("parseTemplate(%q): %v", tmpl, err)
			continue
		}
		tags := 0
		for _, n := range nodes {
			if n.literal == "" {
				tags++
			}
		}
		if tags != wantTags {
			t.Errorf("parseTemplate(%q): tags = %d, want %d", tmpl, tags, wantTags)
		}
	}
	bad := []string{
		"@",
		"text @ text",
		"@[A,B",
		"@[]",
		"@[ ]",
		"@TOP(",
		"@TOP()",
	}
	for _, tmpl := range bad {
		if _, err := parseTemplate(tmpl); err == nil {
			t.Errorf("parseTemplate(%q): expected error", tmpl)
		}
	}
}

func TestTemplateEscapedAt(t *testing.T) {
	k := MustCanonical()
	e := k.Entry("nljoin-inner-tbscan")
	occs := matchEntry(t, e, fixtures.Figure1())
	got, err := expandTemplate("email admin@@example.com about @TOP", &occs[0])
	if err != nil {
		t.Fatal(err)
	}
	if got != "email admin@example.com about NLJOIN(2)" {
		t.Errorf("expanded = %q", got)
	}
}

func TestFieldAccessors(t *testing.T) {
	k := MustCanonical()
	e := k.Entry("nljoin-inner-tbscan")
	occs := matchEntry(t, e, fixtures.Figure1())
	o := &occs[0]
	cases := map[string]string{
		"@TOP.NAME":     "NLJOIN",
		"@TOP.TYPE":     "NLJOIN",
		"@TOP.ID":       "2",
		"@TOP.COST":     "15771",
		"@TOP.IOCOST":   "1318",
		"@TOP.CARD":     "19.12",
		"@BASE4.NAME":   "CUST_DIM",
		"@BASE4.TYPE":   "TABLE",
		"@BASE4.CARD":   "4043",
		"@[TOP, BASE4]": "NLJOIN(2), CUST_DIM",
	}
	for tmpl, want := range cases {
		got, err := expandTemplate(tmpl, o)
		if err != nil {
			t.Errorf("%s: %v", tmpl, err)
			continue
		}
		if got != want {
			t.Errorf("%s = %q, want %q", tmpl, got, want)
		}
	}
	// SELFCOST is numeric and present.
	if got, err := expandTemplate("@SCAN3.SELFCOST", o); err != nil || got == "" {
		t.Errorf("SELFCOST = %q, %v", got, err)
	}
	// COST on a base object is not applicable.
	if _, err := expandTemplate("@BASE4.COST", o); err == nil {
		t.Error("COST on object should error")
	}
}

func TestHelperFunctions(t *testing.T) {
	k := MustCanonical()
	e := k.Entry("nljoin-inner-tbscan")
	occs := matchEntry(t, e, fixtures.Figure1())
	o := &occs[0]

	// INPUT on the base object: columns flowing from CUST_DIM into TBSCAN.
	got, err := o.Fn("BASE4", FnInput)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CUST_NAME", "CUST_ID"} {
		if !strings.Contains(got, want) {
			t.Errorf("INPUT = %q missing %q", got, want)
		}
	}
	// Correlation qualifiers (Q1.) are stripped.
	if strings.Contains(got, "Q1") {
		t.Errorf("INPUT = %q should strip qualifiers", got)
	}

	// PREDICATE on the join: columns in its join predicate.
	got, err = o.Fn("TOP", FnPredicate)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "CUST_ID") {
		t.Errorf("PREDICATE = %q", got)
	}

	// COLUMNS on the base object.
	got, err = o.Fn("BASE4", FnColumns)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "REGION") {
		t.Errorf("COLUMNS = %q", got)
	}

	// Unknown alias errors.
	if _, err := o.Fn("GHOST", FnInput); err == nil {
		t.Error("unknown alias accepted")
	}
}

func TestFeaturesAndConfidence(t *testing.T) {
	k := MustCanonical()
	e := k.Entry("nljoin-inner-tbscan")
	occs := matchEntry(t, e, fixtures.Figure1())
	f := Features(&occs[0])
	if len(f) != NumFeatures {
		t.Fatalf("features = %v", f)
	}
	for i, v := range f {
		if v < 0 || v > 1 {
			t.Errorf("feature %d = %v out of [0,1]", i, v)
		}
	}
	// NLJOIN dominates the plan cost -> high cost share.
	if f[0] < 0.9 {
		t.Errorf("cost share = %v, want ~1", f[0])
	}
	c := Confidence(e.Profile, f, 1)
	if c <= 0 || c > 1 {
		t.Errorf("confidence = %v", c)
	}
	// Weight scales confidence.
	if Confidence(e.Profile, f, 0.5) >= c {
		t.Error("weight did not reduce confidence")
	}
	// Zero weight defaults to 1.
	if Confidence(e.Profile, f, 0) != c {
		t.Error("zero weight should default to 1")
	}
}

func TestDefaultProfile(t *testing.T) {
	p := pattern.B() // two join pops + top join
	f := DefaultProfile(p)
	if f[3] != 1 { // all non-object pops are joins
		t.Errorf("join fraction = %v", f[3])
	}
	pc := pattern.C() // one scan pop + base object
	fc := DefaultProfile(pc)
	if fc[4] != 1 {
		t.Errorf("scan fraction = %v", fc[4])
	}
}

func TestLoadRejectsBrokenKB(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := Load(strings.NewReader(`{"version":1,"entries":[{"name":"x","recommendations":[{"title":"t","template":"@TOP"}]}]}`)); err == nil {
		t.Error("entry without pattern accepted")
	}
}

func TestExtendedKB(t *testing.T) {
	k := MustExtended()
	if k.Len() != 7 {
		t.Fatalf("entries = %d, want 7", k.Len())
	}
	e := k.Entry("shared-temp")
	if e == nil {
		t.Fatal("shared-temp entry missing")
	}
	occs := matchEntry(t, e, fixtures.SharedTemp())
	if len(occs) != 2 {
		t.Fatalf("occurrences = %d, want 2", len(occs))
	}
	ranked, err := e.Apply(occs)
	if err != nil {
		t.Fatal(err)
	}
	// MaxOccurrences 1 keeps one line despite two symmetric matches.
	if len(ranked) != 1 {
		t.Fatalf("ranked = %d, want 1", len(ranked))
	}
	text := ranked[0].Text
	if !strings.Contains(text, "TEMP(6)") {
		t.Errorf("text lacks TEMP context: %s", text)
	}
	if !strings.Contains(text, "NLJOIN(3)") && !strings.Contains(text, "HSJOIN(4)") {
		t.Errorf("text lacks consumer context: %s", text)
	}

	// Expensive subquery entry adapts too.
	e = k.Entry("expensive-subquery")
	occs = matchEntry(t, e, fixtures.SharedTemp())
	if len(occs) != 1 {
		t.Fatalf("expensive-subquery occurrences = %d", len(occs))
	}
	ranked, err = e.Apply(occs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ranked[0].Text, "600") {
		t.Errorf("cost context missing: %s", ranked[0].Text)
	}
}

func TestRemoveAndSnapshot(t *testing.T) {
	base := MustCanonical()
	snap := base.Snapshot()
	n := base.Len()
	if !base.Remove("loj-both-sides") {
		t.Fatal("Remove(loj-both-sides) = false")
	}
	if base.Remove("loj-both-sides") {
		t.Error("second Remove(loj-both-sides) = true")
	}
	if base.Len() != n-1 || base.Entry("loj-both-sides") != nil {
		t.Errorf("entry still present after removal: len = %d", base.Len())
	}
	// The earlier snapshot is unaffected by the mutation.
	if snap.Len() != n || snap.Entry("loj-both-sides") == nil {
		t.Errorf("snapshot changed by Remove: len = %d", snap.Len())
	}
	// Removal frees the name for re-adding.
	e := snap.Entry("loj-both-sides")
	if _, err := base.Add(e.Pattern, e.Recommendations...); err != nil {
		t.Fatalf("re-add after remove: %v", err)
	}
}
