package kb

import (
	"fmt"

	"optimatch/internal/pattern"
)

// Canonical populates a knowledge base with the paper's four expert
// patterns and their recommendations (Sections 2.2–2.3): indexing advice for
// Pattern A (with the statistics alternative the paper describes), the
// query rewrite for Pattern B, column group statistics for Pattern C and
// the sort-memory configuration change for Pattern D.
func Canonical() (*KnowledgeBase, error) {
	k := New()

	if _, err := k.Add(pattern.A(),
		Recommendation{
			Title:    "Create index on inner table",
			Category: "INDEX",
			Weight:   1.0,
			Template: "Create index on @BASE4.NAME on columns (@BASE4(INPUT)) so the nested loop join @TOP " +
				"does not rescan the whole table for each of the @ANY2.CARD outer rows.",
		},
		Recommendation{
			Title:    "Collect column group statistics for a better join method",
			Category: "STATISTICS",
			Weight:   0.8,
			Template: "Collect column group statistics on the join predicate columns of @BASE4.NAME " +
				"(@TOP(PREDICATE)); better cardinality estimates may let the optimizer choose a hash join " +
				"instead of the nested loop join @TOP.",
		},
	); err != nil {
		return nil, err
	}

	if _, err := k.Add(pattern.B(),
		Recommendation{
			Title:    "Rewrite join of two left-outer-join subtrees",
			Category: "REWRITE",
			Weight:   1.0,
			Template: "Rewrite the query from (T1 LOJ T2) JOIN (T3 LOJ T4) to ((T1 LOJ T2) JOIN T3) LOJ T4: " +
				"join @TOP combines the left outer joins @LOJLEFT and @LOJRIGHT; pulling the second outer join " +
				"above the inner join is more efficient.",
		},
		Recommendation{
			Title:    "Materialize when both sides share the outer table",
			Category: "MQT",
			Weight:   0.6,
			Template: "If both outer-join subtrees under @TOP read the same table, materialize the payload " +
				"column(s) into the shared table and eliminate one instance (unique-key self join).",
		},
	); err != nil {
		return nil, err
	}

	if _, err := k.Add(pattern.C(),
		Recommendation{
			Title:    "Create column group statistics",
			Category: "STATISTICS",
			Weight:   1.0,
			Template: "Create column group statistics (CGS) on the equality local predicate columns and the " +
				"equality join predicate columns of @BASE2.NAME (@TOP(PREDICATE)): @TOP estimates @TOP.CARD " +
				"rows out of @BASE2.CARD, indicating statistical correlation between predicate columns.",
		},
	); err != nil {
		return nil, err
	}

	if _, err := k.Add(pattern.D(),
		Recommendation{
			Title:          "Increase sort memory",
			Category:       "CONFIG",
			Weight:         0.9,
			MaxOccurrences: 1,
			Template: "Sort operator @TOP has I/O cost @TOP.IOCOST, higher than its input @INPUT2 " +
				"(@INPUT2.IOCOST) — a spill indicator. Increase the sort memory configuration (SORTHEAP) if " +
				"many queries in the workload show this pattern.",
		},
	); err != nil {
		return nil, err
	}

	return k, nil
}

// Extended returns the canonical knowledge base plus entries for the
// motivating-scenario extensions: Pattern E (expensive materialized
// subquery) and Pattern F (shared common subexpression, the Section 2.2
// ambiguity example).
func Extended() (*KnowledgeBase, error) {
	k, err := Canonical()
	if err != nil {
		return nil, err
	}
	if _, err := k.Add(pattern.E(),
		Recommendation{
			Title:    "Rewrite or index the expensive subquery",
			Category: "REWRITE",
			Weight:   0.9,
			Template: "The materialized subquery @TOP costs @TOP.COST — more than half of the whole plan. " +
				"Consider rewriting the subquery, pushing predicates into it, or indexing the columns it " +
				"reads from @INPUT2.",
		},
	); err != nil {
		return nil, err
	}
	if _, err := k.Add(pattern.F(),
		Recommendation{
			Title:          "Review the shared common subexpression",
			Category:       "REWRITE",
			Weight:         0.7,
			MaxOccurrences: 1,
			Template: "@TOP is a common subexpression consumed by both @CONSUMER2 and @CONSUMER3 with " +
				"different predicates; check whether pushing the selective predicates inside the " +
				"materialization (or splitting it per consumer) reduces its @TOP.CARD rows.",
		},
	); err != nil {
		return nil, err
	}
	if _, err := k.Add(pattern.G(),
		Recommendation{
			Title:    "Add the missing join predicate",
			Category: "REWRITE",
			Weight:   1.0,
			Template: "@TOP joins @OUTER2 (@OUTER2.CARD rows) with @INNER3 (@INNER3.CARD rows) without any " +
				"join predicate — a cartesian product producing @TOP.CARD rows. Verify the query's join " +
				"condition; a missing or mistyped predicate is the usual cause.",
		},
	); err != nil {
		return nil, err
	}
	return k, nil
}

// MustExtended is Extended for initialization paths that cannot fail.
func MustExtended() *KnowledgeBase {
	k, err := Extended()
	if err != nil {
		panic(fmt.Sprintf("kb: extended knowledge base: %v", err))
	}
	return k
}

// MustCanonical is Canonical for initialization paths that cannot fail.
func MustCanonical() *KnowledgeBase {
	k, err := Canonical()
	if err != nil {
		panic(fmt.Sprintf("kb: canonical knowledge base: %v", err))
	}
	return k
}
