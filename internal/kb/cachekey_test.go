package kb

import "testing"

// CacheKey identifies the exact entry list: it changes on every mutation,
// snapshots share the key of their source state, and two independently
// built KBs never collide even at the same version.
func TestCacheKeyAndGeneration(t *testing.T) {
	a, b := MustCanonical(), MustCanonical()
	if a.CacheKey() == b.CacheKey() {
		t.Fatalf("independent KBs share cache key %q", a.CacheKey())
	}

	key0 := a.CacheKey()
	gen0 := a.Generation()
	snap := a.Snapshot()
	if snap.CacheKey() != key0 {
		t.Fatalf("snapshot key %q != source key %q", snap.CacheKey(), key0)
	}

	extra := MustExtended().Entries()
	e := extra[len(extra)-1]
	if _, err := a.Add(e.Pattern, e.Recommendations...); err != nil {
		t.Fatal(err)
	}
	if a.CacheKey() == key0 || a.Generation() != gen0+1 {
		t.Fatalf("Add left key=%q gen=%d (was %q/%d)", a.CacheKey(), a.Generation(), key0, gen0)
	}
	if snap.CacheKey() != key0 {
		t.Fatal("mutation leaked into the snapshot's cache key")
	}

	keyAdd := a.CacheKey()
	if !a.Remove(e.Name) {
		t.Fatal("Remove failed")
	}
	if a.CacheKey() == keyAdd || a.CacheKey() == key0 {
		t.Fatalf("Remove must produce a fresh key, got %q", a.CacheKey())
	}

	if a.Remove("no-such-entry") {
		t.Fatal("Remove of missing entry succeeded")
	}
	keyAfter := a.CacheKey()
	if a.Remove("no-such-entry"); a.CacheKey() != keyAfter {
		t.Fatal("failed Remove moved the cache key")
	}
}
