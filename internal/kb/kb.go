package kb

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"

	"optimatch/internal/pattern"
)

// Recommendation is one expert remedy attached to a pattern. Template is
// written in the handler tagging language and is adapted to each matched
// plan's context at report time.
type Recommendation struct {
	Title    string  `json:"title"`
	Template string  `json:"template"`
	Category string  `json:"category,omitempty"` // INDEX, REWRITE, STATISTICS, CONFIG, MQT, CONSTRAINT
	Weight   float64 `json:"weight,omitempty"`   // expert prior in (0, 1]; 0 means 1
	// MaxOccurrences limits how many occurrences of a common pattern produce
	// a recommendation line (0 = all occurrences; paper Section 2.3).
	MaxOccurrences int `json:"maxOccurrences,omitempty"`
}

// Entry is one knowledge-base record: the problem pattern preserved both as
// an executable SPARQL query and as its declarative (JSON) form, the expert
// recommendations, and the ranking profile.
type Entry struct {
	Name            string           `json:"name"`
	Description     string           `json:"description,omitempty"`
	Pattern         *pattern.Pattern `json:"pattern"`
	SPARQL          string           `json:"sparql"`
	Recommendations []Recommendation `json:"recommendations"`
	Profile         []float64        `json:"profile,omitempty"`

	compiled *pattern.Compiled
}

// Compiled returns the compiled form of the entry's pattern.
func (e *Entry) Compiled() *pattern.Compiled { return e.compiled }

// Aliases returns the set of legal tagging aliases (uppercased).
func (e *Entry) Aliases() map[string]bool {
	out := make(map[string]bool, len(e.compiled.Handlers))
	for _, h := range e.compiled.Handlers {
		out[strings.ToUpper(h.Alias)] = true
	}
	return out
}

// kbIDs hands every knowledge base a process-unique instance ID, so two
// independently built KBs never share a cache identity even when both sit
// at the same version.
var kbIDs atomic.Uint64

// KnowledgeBase is an ordered collection of entries.
type KnowledgeBase struct {
	// id and version together identify the exact entry list for caching:
	// id is unique per lineage (snapshots inherit it), version is bumped by
	// every Add/Remove. Entries themselves are immutable after Add, so an
	// unchanged (id, version) pair means unchanged content.
	id      uint64
	version uint64

	entries []*Entry
}

// New returns an empty knowledge base.
func New() *KnowledgeBase { return &KnowledgeBase{id: kbIDs.Add(1)} }

// Generation returns the knowledge base's mutation counter: 0 when fresh,
// bumped once per successful Add or Remove. Like the engine's plan
// generation, it exists for generation-keyed caching. Callers must hold
// whatever lock guards the knowledge base's mutations (snapshots need
// none — their entry list is fixed).
func (kb *KnowledgeBase) Generation() uint64 { return kb.version }

// CacheKey returns a token identifying this knowledge base's exact entry
// list, suitable as a cache-key component: two knowledge bases with equal
// keys hold identical entries. Snapshots share the key of the state they
// were taken from.
func (kb *KnowledgeBase) CacheKey() string {
	return fmt.Sprintf("kb%d.%d", kb.id, kb.version)
}

// Len reports the number of entries.
func (kb *KnowledgeBase) Len() int { return len(kb.entries) }

// Entries returns the entries in insertion order. The slice is shared; do
// not mutate.
func (kb *KnowledgeBase) Entries() []*Entry { return kb.entries }

// Entry returns the named entry, or nil.
func (kb *KnowledgeBase) Entry(name string) *Entry {
	for _, e := range kb.entries {
		if e.Name == name {
			return e
		}
	}
	return nil
}

// Add saves a problem pattern with its recommendations (Algorithm 4:
// SavingRecommendationsKB). The pattern is compiled to SPARQL and preserved
// in both forms; every recommendation template is validated against the
// pattern's handler aliases so that context adaptation cannot fail later.
func (kb *KnowledgeBase) Add(p *pattern.Pattern, recs ...Recommendation) (*Entry, error) {
	if p.Name == "" {
		return nil, fmt.Errorf("kb: pattern must be named")
	}
	if kb.Entry(p.Name) != nil {
		return nil, fmt.Errorf("kb: entry %q already exists", p.Name)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("kb: entry %q has no recommendations", p.Name)
	}
	compiled, err := pattern.Compile(p)
	if err != nil {
		return nil, fmt.Errorf("kb: entry %q: %w", p.Name, err)
	}
	e := &Entry{
		Name:            p.Name,
		Description:     p.Description,
		Pattern:         p,
		SPARQL:          compiled.Query,
		Recommendations: recs,
		Profile:         DefaultProfile(p),
		compiled:        compiled,
	}
	aliases := e.Aliases()
	for _, rec := range recs {
		if strings.TrimSpace(rec.Template) == "" {
			return nil, fmt.Errorf("kb: entry %q: recommendation %q has empty template", p.Name, rec.Title)
		}
		if err := validateTemplate(rec.Template, aliases); err != nil {
			return nil, fmt.Errorf("kb: entry %q: recommendation %q: %w", p.Name, rec.Title, err)
		}
	}
	kb.entries = append(kb.entries, e)
	kb.version++
	return e, nil
}

// Remove deletes the named entry. It reports whether the entry existed.
// The entries slice is copied on removal so that concurrent readers holding
// the result of a previous Entries or Snapshot call are unaffected.
func (kb *KnowledgeBase) Remove(name string) bool {
	for i, e := range kb.entries {
		if e.Name == name {
			kb.entries = append(kb.entries[:i:i], kb.entries[i+1:]...)
			kb.version++
			return true
		}
	}
	return false
}

// Snapshot returns a shallow copy of the knowledge base: a new
// KnowledgeBase whose entry list is fixed at the time of the call. Entries
// themselves are immutable after Add, so the snapshot is safe to scan while
// the original keeps mutating.
func (kb *KnowledgeBase) Snapshot() *KnowledgeBase {
	return &KnowledgeBase{
		id:      kb.id,
		version: kb.version,
		entries: append([]*Entry(nil), kb.entries...),
	}
}

// SetProfile overrides the entry's expert ranking profile.
func (e *Entry) SetProfile(profile []float64) error {
	if len(profile) != NumFeatures {
		return fmt.Errorf("kb: profile must have %d features, got %d", NumFeatures, len(profile))
	}
	e.Profile = append([]float64(nil), profile...)
	return nil
}

// Ranked is one context-adapted, scored recommendation produced by matching
// a knowledge-base entry against a plan.
type Ranked struct {
	Entry          *Entry
	Recommendation Recommendation
	Occurrence     Occurrence
	Text           string  // template expanded in the plan's context
	Confidence     float64 // [0, 1]
}

// Apply expands and scores the entry's recommendations over the pattern's
// occurrences in one plan, honoring each recommendation's occurrence limit.
// Occurrences are processed in deterministic order.
func (e *Entry) Apply(occs []Occurrence) ([]Ranked, error) {
	SortOccurrences(occs)
	var out []Ranked
	for _, rec := range e.Recommendations {
		limit := rec.MaxOccurrences
		for i := range occs {
			if limit > 0 && i >= limit {
				break
			}
			text, err := expandTemplate(rec.Template, &occs[i])
			if err != nil {
				return nil, fmt.Errorf("kb: entry %q: %w", e.Name, err)
			}
			out = append(out, Ranked{
				Entry:          e,
				Recommendation: rec,
				Occurrence:     occs[i],
				Text:           text,
				Confidence:     Confidence(e.Profile, Features(&occs[i]), rec.Weight),
			})
		}
	}
	SortRanked(out)
	return out, nil
}

// SortRanked orders recommendations by confidence (descending), breaking
// ties by entry name and text for determinism.
func SortRanked(rs []Ranked) {
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].Confidence != rs[j].Confidence {
			return rs[i].Confidence > rs[j].Confidence
		}
		if rs[i].Entry.Name != rs[j].Entry.Name {
			return rs[i].Entry.Name < rs[j].Entry.Name
		}
		return rs[i].Text < rs[j].Text
	})
}

// kbFile is the persistence envelope.
type kbFile struct {
	Version int      `json:"version"`
	Entries []*Entry `json:"entries"`
}

// Save writes the knowledge base as JSON.
func (kb *KnowledgeBase) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(kbFile{Version: 1, Entries: kb.entries})
}

// Load reads a knowledge base written by Save, recompiling every pattern
// and re-validating every template. The stored SPARQL is checked against
// the recompiled form; a mismatch (hand-edited file, version skew) is
// repaired by preferring the recompiled query.
func Load(r io.Reader) (*KnowledgeBase, error) {
	var f kbFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("kb: %w", err)
	}
	out := New()
	for _, e := range f.Entries {
		if e.Pattern == nil {
			return nil, fmt.Errorf("kb: entry %q has no pattern", e.Name)
		}
		e.Pattern.Name = e.Name
		e.Pattern.Description = e.Description
		added, err := out.Add(e.Pattern, e.Recommendations...)
		if err != nil {
			return nil, err
		}
		if len(e.Profile) == NumFeatures {
			added.Profile = e.Profile
		}
	}
	return out, nil
}
