package kb

import (
	"fmt"
	"strings"
)

// The handler tagging language (paper Section 2.3) embeds dynamic components
// in otherwise static recommendation text by prefixing handler aliases with
// '@'. Supported forms:
//
//	@ALIAS          the handler's display name ("NLJOIN(2)", "CUST_DIM")
//	@ALIAS.FIELD    a field: NAME, TYPE, ID, CARD, COST, IOCOST, SELFCOST
//	@ALIAS(FN)      a helper function: INPUT, PREDICATE, COLUMNS
//	@[A,B]          apply to several handlers at once, comma-joined;
//	                combines with .FIELD and (FN): @[A,B].NAME, @[A,B](INPUT)
//	@@              a literal '@'
//
// Templates are validated against the pattern's handler aliases when the
// entry is saved to the knowledge base (Algorithm 4), so a typo'd alias is
// rejected at authoring time, not at matching time.

// templateNode is one parsed segment of a template.
type templateNode struct {
	literal string   // non-empty for literal text
	aliases []string // handler aliases for a tag node
	field   string   // .FIELD accessor, if any
	fn      string   // (FN) helper, if any
}

// parseTemplate splits a template into literal and tag nodes.
func parseTemplate(tmpl string) ([]templateNode, error) {
	var nodes []templateNode
	var lit strings.Builder
	i := 0
	flush := func() {
		if lit.Len() > 0 {
			nodes = append(nodes, templateNode{literal: lit.String()})
			lit.Reset()
		}
	}
	for i < len(tmpl) {
		c := tmpl[i]
		if c != '@' {
			lit.WriteByte(c)
			i++
			continue
		}
		if i+1 < len(tmpl) && tmpl[i+1] == '@' {
			lit.WriteByte('@')
			i += 2
			continue
		}
		flush()
		i++ // consume '@'
		node := templateNode{}
		if i < len(tmpl) && tmpl[i] == '[' {
			end := strings.IndexByte(tmpl[i:], ']')
			if end < 0 {
				return nil, fmt.Errorf("kb: unterminated @[...] group in template")
			}
			for _, a := range strings.Split(tmpl[i+1:i+end], ",") {
				a = strings.TrimSpace(a)
				if a == "" {
					return nil, fmt.Errorf("kb: empty alias in @[...] group")
				}
				node.aliases = append(node.aliases, a)
			}
			if len(node.aliases) == 0 {
				return nil, fmt.Errorf("kb: empty @[...] group")
			}
			i += end + 1
		} else {
			start := i
			for i < len(tmpl) && isAliasChar(tmpl[i]) {
				i++
			}
			if i == start {
				return nil, fmt.Errorf("kb: dangling '@' in template (use @@ for a literal '@')")
			}
			node.aliases = []string{tmpl[start:i]}
		}
		// Optional .FIELD — only when followed by an identifier.
		if i < len(tmpl) && tmpl[i] == '.' && i+1 < len(tmpl) && isAliasChar(tmpl[i+1]) {
			start := i + 1
			j := start
			for j < len(tmpl) && isAliasChar(tmpl[j]) {
				j++
			}
			node.field = tmpl[start:j]
			i = j
		}
		// Optional (FN).
		if node.field == "" && i < len(tmpl) && tmpl[i] == '(' {
			end := strings.IndexByte(tmpl[i:], ')')
			if end < 0 {
				return nil, fmt.Errorf("kb: unterminated helper call after @%s", node.aliases[0])
			}
			node.fn = strings.TrimSpace(tmpl[i+1 : i+end])
			if node.fn == "" {
				return nil, fmt.Errorf("kb: empty helper call after @%s", node.aliases[0])
			}
			i += end + 1
		}
		nodes = append(nodes, node)
	}
	flush()
	return nodes, nil
}

func isAliasChar(c byte) bool {
	return c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_'
}

// knownFields and knownFns gate template validation.
var knownFields = map[string]bool{
	FieldName: true, FieldType: true, FieldID: true, FieldCard: true,
	FieldCost: true, FieldIOCost: true, FieldSelfCost: true,
}

var knownFns = map[string]bool{FnInput: true, FnPredicate: true, FnColumns: true}

// validateTemplate checks a template against the set of legal aliases.
func validateTemplate(tmpl string, aliases map[string]bool) error {
	nodes, err := parseTemplate(tmpl)
	if err != nil {
		return err
	}
	for _, n := range nodes {
		if n.literal != "" {
			continue
		}
		for _, a := range n.aliases {
			if !aliases[strings.ToUpper(a)] {
				return fmt.Errorf("kb: template references unknown handler @%s", a)
			}
		}
		if n.field != "" && !knownFields[strings.ToUpper(n.field)] {
			return fmt.Errorf("kb: template uses unknown field .%s", n.field)
		}
		if n.fn != "" && !knownFns[strings.ToUpper(n.fn)] {
			return fmt.Errorf("kb: template uses unknown helper (%s)", n.fn)
		}
	}
	return nil
}

// expandTemplate renders a template against one occurrence, adapting the
// stored recommendation to the context of the user-supplied plan.
func expandTemplate(tmpl string, o *Occurrence) (string, error) {
	nodes, err := parseTemplate(tmpl)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, n := range nodes {
		if n.literal != "" {
			b.WriteString(n.literal)
			continue
		}
		var parts []string
		for _, alias := range n.aliases {
			var s string
			var err error
			switch {
			case n.field != "":
				s, err = o.Field(alias, n.field)
			case n.fn != "":
				s, err = o.Fn(alias, n.fn)
			default:
				s, err = o.Display(alias)
			}
			if err != nil {
				return "", err
			}
			parts = append(parts, s)
		}
		b.WriteString(strings.Join(parts, ", "))
	}
	return b.String(), nil
}
