package workload

import (
	"sort"

	"optimatch/internal/qep"
)

// graftSize returns the nominal operator count of a pattern graft, used to
// reserve budget in the surrounding random tree.
func graftSize(key string) int {
	switch key {
	case KeyA:
		return 3
	case KeyB:
		return 11
	case KeyC:
		return 1
	case KeyD:
		return 2
	case KeyG:
		return 3
	default:
		return 0
	}
}

// graft builds a subtree that is a true instance of the canonical pattern,
// returning its top operator. A fraction of the instances (HardFraction)
// use the "hard" lexical rendering (exponent-notation numbers, uncommon
// join-method variants) that trips up naive text search, per the error
// classes the paper reports for manual search (Section 3.3).
func (g *planGen) graft(key string) *qep.Operator {
	hard := g.harder.decide(key)
	switch key {
	case KeyA:
		return g.graftA(hard)
	case KeyB:
		return g.graftB(hard)
	case KeyC:
		return g.graftC(hard)
	case KeyD:
		return g.graftD(hard)
	case KeyG:
		return g.graftG(hard)
	default:
		panic("workload: unknown graft " + key)
	}
}

// graftA: NLJOIN whose outer input has cardinality > 1 and whose inner
// input is a TBSCAN with cardinality > 100 over a base object.
func (g *planGen) graftA(hard bool) *qep.Operator {
	// Outer: small index scan with cardinality > 1.
	outerObj := g.newTable(1e4, 1e6)
	outer := g.newOp("IXSCAN")
	outerCard := 5 + g.rng.Float64()*50
	g.plan.Link(outer, qep.GeneralStream, nil, outerObj, outerObj.Cardinality, g.qualCols(outerObj, 2))
	g.cost(outer, outerCard, 2)

	// Inner: full table scan with cardinality > 100. The hard variant uses a
	// huge table so the cardinality renders in exponent notation.
	var innerObj *qep.BaseObject
	var innerCard float64
	if hard {
		innerObj = g.newTable(2e6, 4e8)
		innerCard = innerObj.Cardinality * (0.8 + g.rng.Float64()*0.2)
	} else {
		innerObj = g.newTable(500, 50000)
		innerCard = maxf(innerObj.Cardinality*(0.8+g.rng.Float64()*0.2), 101)
	}
	inner := g.newOp("TBSCAN")
	g.plan.Link(inner, qep.GeneralStream, nil, innerObj, innerObj.Cardinality, g.qualCols(innerObj, 2))
	g.cost(inner, innerCard, innerObj.Cardinality/2000)

	nl := g.newOp("NLJOIN")
	nl.Predicates = []string{g.joinPredicate()}
	g.link(nl, qep.OuterStream, outer)
	g.link(nl, qep.InnerStream, inner)
	g.cost(nl, maxf(outerCard, 1), innerCard*outerCard/5e4)
	return nl
}

// graftB: a join whose outer subtree contains a left-outer join and whose
// inner subtree contains another left-outer join, both a few hops down so
// that only descendant (recursive) matching finds them.
func (g *planGen) graftB(hard bool) *qep.Operator {
	lojType := func() string {
		if hard {
			// The hard variant uses merge-scan joins; a manual search that
			// greps only for >HSJOIN / >NLJOIN misses it.
			return "MSJOIN"
		}
		if g.rng.Float64() < 0.5 {
			return "HSJOIN"
		}
		return "NLJOIN"
	}

	makeLOJ := func() *qep.Operator {
		a := g.leafScan()
		b := g.leafScan()
		if b.Type == "TBSCAN" && b.Cardinality > 100 {
			// Keep the inner side from accidentally forming Pattern A when
			// the chosen join method is NLJOIN.
			b.Type = "IXSCAN"
		}
		j := g.newOp(lojType())
		j.JoinMod = qep.LeftOuterJoin
		j.Predicates = []string{g.joinPredicate()}
		g.link(j, qep.OuterStream, a)
		g.link(j, qep.InnerStream, b)
		g.cost(j, maxf(a.Cardinality, 1), 0)
		return j
	}
	wrap := func(op *qep.Operator, typ string) *qep.Operator {
		w := g.newOp(typ)
		g.link(w, qep.GeneralStream, op)
		g.cost(w, op.Cardinality, 0)
		return w
	}

	left := wrap(makeLOJ(), "TEMP")
	right := wrap(makeLOJ(), "TBSCAN")
	top := g.newOp("NLJOIN")
	top.Predicates = []string{g.joinPredicate()}
	g.link(top, qep.OuterStream, left)
	g.link(top, qep.InnerStream, right)
	g.cost(top, maxf(left.Cardinality/2, 1), 0)
	return top
}

// graftC: a scan estimating fewer than 0.001 rows out of a base object with
// more than a million rows.
func (g *planGen) graftC(hard bool) *qep.Operator {
	obj := g.newTable(2e6, 5e8)
	typ := "IXSCAN"
	if g.rng.Float64() < 0.4 {
		typ = "TBSCAN"
	}
	op := g.newOp(typ)
	var card float64
	if hard {
		card = 1e-9 + g.rng.Float64()*9e-8 // renders as "1.3e-08"
	} else {
		card = 0.0001 + g.rng.Float64()*0.0008 // renders as "0.00052"
	}
	g.plan.Link(op, qep.GeneralStream, nil, obj, obj.Cardinality, g.qualCols(obj, 2))
	g.cost(op, card, obj.Cardinality/10000)
	op.Predicates = []string{g.localPredicate(obj), g.localPredicate(obj)}
	return op
}

// graftD: a SORT whose I/O cost exceeds its input's (spill indicator).
func (g *planGen) graftD(bool) *qep.Operator {
	in := g.leafScan()
	srt := g.newOp("SORT")
	g.link(srt, qep.GeneralStream, in)
	g.cost(srt, in.Cardinality, 0)
	srt.IOCost = in.IOCost*1.5 + 100 // spill: strictly above the input
	return srt
}

// graftG: a cartesian join — a join with NO predicates whose two inputs
// each produce more than one row.
func (g *planGen) graftG(bool) *qep.Operator {
	a := g.multiRowScan()
	b := g.multiRowScan()
	j := g.newOp("NLJOIN")
	// Deliberately no predicates: the cartesian product signature.
	g.link(j, qep.OuterStream, a)
	g.link(j, qep.InnerStream, b)
	g.cost(j, a.Cardinality*b.Cardinality, 0)
	return j
}

// multiRowScan builds a leaf scan guaranteed to produce more than one row
// (and, for NLJOIN inners, avoids the Pattern A shape).
func (g *planGen) multiRowScan() *qep.Operator {
	obj := g.newTable(1e3, 1e5)
	op := g.newOp("IXSCAN")
	card := 2 + g.rng.Float64()*60
	g.plan.Link(op, qep.GeneralStream, nil, obj, obj.Cardinality, g.qualCols(obj, 1))
	g.cost(op, card, 1)
	return op
}

// sortedObjectNames returns the plan's object names sorted, for
// deterministic statement text.
func sortedObjectNames(p *qep.Plan) []string {
	names := make([]string, 0, len(p.Objects))
	for n := range p.Objects {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
