package workload

import (
	"strings"
	"testing"

	"optimatch/internal/pattern"
	"optimatch/internal/qep"
	"optimatch/internal/rdf"
	"optimatch/internal/sparql"
	"optimatch/internal/transform"
)

func TestGenerateBasics(t *testing.T) {
	w, err := Generate(Config{Seed: 1, NumPlans: 20, MinOps: 20, MaxOps: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Plans) != 20 {
		t.Fatalf("plans = %d", len(w.Plans))
	}
	ids := make(map[string]bool)
	for _, p := range w.Plans {
		if ids[p.ID] {
			t.Errorf("duplicate plan id %s", p.ID)
		}
		ids[p.ID] = true
		if err := p.Validate(); err != nil {
			t.Errorf("plan %s invalid: %v", p.ID, err)
		}
		if p.NumOps() < 10 || p.NumOps() > 80 {
			t.Errorf("plan %s ops = %d, far from target range", p.ID, p.NumOps())
		}
		if p.TotalCost <= 0 {
			t.Errorf("plan %s total cost = %v", p.ID, p.TotalCost)
		}
		if p.Statement == "" {
			t.Errorf("plan %s missing statement", p.ID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, NumPlans: 5, MinOps: 30, MaxOps: 50, InjectA: 2, InjectB: 1, InjectC: 1, InjectD: 1}
	w1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := w1.Texts(), w2.Texts()
	for id, txt := range t1 {
		if t2[id] != txt {
			t.Fatalf("plan %s text differs between runs with same seed", id)
		}
	}
	for key := range w1.Truth {
		if w1.Truth.Count(key) != w2.Truth.Count(key) {
			t.Errorf("truth counts differ for %s", key)
		}
	}
}

func TestGenerateSeedChangesOutput(t *testing.T) {
	w1, _ := Generate(Config{Seed: 1, NumPlans: 2, MinOps: 20, MaxOps: 30})
	w2, _ := Generate(Config{Seed: 2, NumPlans: 2, MinOps: 20, MaxOps: 30})
	if qep.Text(w1.Plans[0]) == qep.Text(w2.Plans[0]) {
		t.Error("different seeds produced identical plans")
	}
}

func TestGenerateInjectionCounts(t *testing.T) {
	w, err := Generate(Config{Seed: 7, NumPlans: 100, MinOps: 30, MaxOps: 60,
		InjectA: 15, InjectB: 12, InjectC: 18, InjectD: 9})
	if err != nil {
		t.Fatal(err)
	}
	wants := map[string]int{KeyA: 15, KeyB: 12, KeyC: 18, KeyD: 9}
	for key, want := range wants {
		if got := w.Truth.Count(key); got != want {
			t.Errorf("truth %s = %d, want %d", key, got, want)
		}
	}
	// Truth refers to existing plan IDs.
	ids := make(map[string]bool)
	for _, p := range w.Plans {
		ids[p.ID] = true
	}
	for key, m := range w.Truth {
		for id := range m {
			if !ids[id] {
				t.Errorf("truth %s references unknown plan %s", key, id)
			}
		}
	}
}

func TestGenerateOpCountTargets(t *testing.T) {
	w, err := Generate(Config{Seed: 3, NumPlans: 6, OpCounts: []int{25, 125, 225}})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range w.Plans {
		target := []int{25, 125, 225}[i%3]
		got := p.NumOps()
		// The tree builder hits the budget approximately.
		if got < target*6/10 || got > target*15/10 {
			t.Errorf("plan %s ops = %d, target %d", p.ID, got, target)
		}
	}
}

func TestGenerateBimodal(t *testing.T) {
	w, err := Generate(Config{Seed: 11, NumPlans: 60, MinOps: 60, MaxOps: 240, Bimodal: true, BigFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	big := 0
	for _, p := range w.Plans {
		if p.NumOps() > 400 {
			big++
		}
	}
	if big == 0 {
		t.Error("bimodal workload has no big plans")
	}
	if big == len(w.Plans) {
		t.Error("bimodal workload has only big plans")
	}
}

func TestGeneratedPlansRoundTripThroughText(t *testing.T) {
	w, err := Generate(Config{Seed: 5, NumPlans: 4, MinOps: 20, MaxOps: 50, InjectA: 1, InjectB: 1, InjectC: 1, InjectD: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range w.Plans {
		text := qep.Text(p)
		p2, err := qep.Parse(text)
		if err != nil {
			t.Fatalf("plan %s does not re-parse: %v", p.ID, err)
		}
		if p2.NumOps() != p.NumOps() {
			t.Errorf("plan %s ops after round trip = %d, want %d", p.ID, p2.NumOps(), p.NumOps())
		}
		if p2.Root.ID != p.Root.ID {
			t.Errorf("plan %s root changed", p.ID)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Seed: 1, NumPlans: 0}); err == nil {
		t.Error("zero plans accepted")
	}
	if _, err := Generate(Config{Seed: 1, NumPlans: 5, MinOps: 50, MaxOps: 40}); err == nil {
		t.Error("bad range accepted")
	}
	if _, err := Generate(Config{Seed: 1, NumPlans: 2, InjectA: 5}); err == nil {
		t.Error("oversized injection accepted")
	}
	if _, err := Generate(Config{Seed: 1, NumPlans: 2, OpCounts: []int{1}}); err == nil {
		t.Error("tiny op count accepted")
	}
}

// matchCount runs a compiled canonical pattern against a plan and reports
// whether it matches at all.
func planMatches(t *testing.T, c *pattern.Compiled, p *qep.Plan) bool {
	t.Helper()
	r := transform.Transform(p)
	q, err := sparql.Parse(c.Query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Exec(r.Graph)
	if err != nil {
		t.Fatal(err)
	}
	return res.Len() > 0
}

// TestInjectionExactness is the central soundness check of the experimental
// substrate: OptImatch's matcher must find exactly the injected plans — no
// false positives from the random plan fabric, no misses.
func TestInjectionExactness(t *testing.T) {
	w, err := Generate(Config{Seed: 99, NumPlans: 40, MinOps: 30, MaxOps: 90,
		InjectA: 8, InjectB: 7, InjectC: 9, InjectD: 6, InjectG: 5})
	if err != nil {
		t.Fatal(err)
	}
	compiled := map[string]*pattern.Compiled{}
	for key, p := range map[string]*pattern.Pattern{
		KeyA: pattern.A(), KeyB: pattern.B(), KeyC: pattern.C(), KeyD: pattern.D(), KeyG: pattern.G(),
	} {
		c, err := pattern.Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		compiled[key] = c
	}
	for _, plan := range w.Plans {
		for key, c := range compiled {
			got := planMatches(t, c, plan)
			want := w.Truth.Has(key, plan.ID)
			if got != want {
				t.Errorf("plan %s pattern %s: matched=%v, injected=%v", plan.ID, key, got, want)
			}
		}
	}
}

func TestHardFractionProducesExponentForms(t *testing.T) {
	w, err := Generate(Config{Seed: 13, NumPlans: 30, MinOps: 20, MaxOps: 40,
		InjectC: 30, HardFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	hard, easy := 0, 0
	for _, p := range w.Plans {
		text := qep.Text(p)
		// Hard Pattern C instances render the collapsed cardinality in
		// exponent notation; easy ones in plain decimal.
		if strings.Contains(text, "e-0") {
			hard++
		} else if strings.Contains(text, "Estimated Cardinality:\t\t0.000") {
			easy++
		}
	}
	if hard == 0 || easy == 0 {
		t.Errorf("hard=%d easy=%d; want a mix", hard, easy)
	}
}

func TestTruthHelpers(t *testing.T) {
	tr := Truth{KeyA: {"Q1": true}}
	if !tr.Has(KeyA, "Q1") || tr.Has(KeyA, "Q2") || tr.Has(KeyB, "Q1") {
		t.Error("Truth.Has wrong")
	}
	if tr.Count(KeyA) != 1 || tr.Count(KeyB) != 0 {
		t.Error("Truth.Count wrong")
	}
}

var _ = rdf.NoID // keep the import for helper expansion in future tests
