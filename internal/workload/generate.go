// Package workload generates synthetic DB2-style query execution plans that
// stand in for the paper's proprietary 1000-QEP IBM customer workload
// (Section 3.1). The generator reproduces the structural properties the
// experiments depend on:
//
//   - configurable plan sizes, including the paper's bimodal distribution
//     (plans below 250 or above 500 LOLEPOPs, Section 3.2.2);
//   - realistic cost/cardinality magnitudes whose explain-file rendering
//     mixes decimal and exponent notation — the property that makes naive
//     text search error-prone (Section 3.3);
//   - controlled injection of the canonical problem patterns A–D with exact
//     ground truth, while the random plan fabric is constrained to never
//     form an accidental instance of any canonical pattern. OptImatch's
//     matches can therefore be scored exactly.
//
// All generation is driven by an explicit seed and fully deterministic.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"optimatch/internal/qep"
)

// Config controls workload generation.
type Config struct {
	Seed     int64
	NumPlans int

	// MinOps/MaxOps bound the target LOLEPOP count per plan (defaults
	// 60/240, matching the paper's "100+ operators on average").
	MinOps, MaxOps int

	// Bimodal adds the paper's second mode: BigFraction of the plans get
	// 500–550 operators.
	Bimodal     bool
	BigFraction float64 // default 0.1 when Bimodal

	// OpCounts, when non-empty, fixes the exact operator-count target of
	// each plan (cycled); it overrides MinOps/MaxOps/Bimodal. Used by the
	// Figure 10 experiment.
	OpCounts []int

	// InjectA..InjectG give the exact number of plans to inject each
	// canonical pattern into (each into distinct, randomly chosen plans;
	// a plan may receive several different patterns). G is the cartesian
	// join extension pattern; E and F are not injectable (the random
	// fabric's TEMP costs would create ambiguous truth).
	InjectA, InjectB, InjectC, InjectD, InjectG int

	// HardFraction is the fraction of injected pattern instances rendered
	// in the "hard" lexical form (exponent-notation numbers, uncommon join
	// method variants) that defeats naive text search. Default 0.35.
	// Hard instances are apportioned deterministically (every k-th instance
	// is hard), so small workloads hit the requested fraction exactly.
	HardFraction float64

	// HardFractions overrides HardFraction per pattern key ("A".."D").
	// Used by the Table 1 experiment to reproduce the paper's per-pattern
	// manual-search precisions.
	HardFractions map[string]float64
}

func (c Config) withDefaults() Config {
	if c.MinOps == 0 {
		c.MinOps = 60
	}
	if c.MaxOps == 0 {
		c.MaxOps = 240
	}
	if c.Bimodal && c.BigFraction == 0 {
		c.BigFraction = 0.1
	}
	if c.HardFraction == 0 {
		c.HardFraction = 0.35
	}
	return c
}

// Pattern keys for ground truth.
const (
	KeyA = "A"
	KeyB = "B"
	KeyC = "C"
	KeyD = "D"
	KeyG = "G"
)

// Truth records which plans had which patterns injected.
type Truth map[string]map[string]bool // pattern key -> plan ID -> present

// Has reports whether pattern key was injected into plan id.
func (t Truth) Has(key, planID string) bool { return t[key][planID] }

// Count returns the number of plans carrying pattern key.
func (t Truth) Count(key string) int { return len(t[key]) }

// Workload is a generated set of plans plus injection ground truth.
type Workload struct {
	Plans []*qep.Plan
	Truth Truth
}

// Texts renders every plan to its OEF explain text, keyed by plan ID.
func (w *Workload) Texts() map[string]string {
	out := make(map[string]string, len(w.Plans))
	for _, p := range w.Plans {
		out[p.ID] = qep.Text(p)
	}
	return out
}

// Generate builds a workload from the configuration.
func Generate(cfg Config) (*Workload, error) {
	cfg = cfg.withDefaults()
	if cfg.NumPlans <= 0 {
		return nil, fmt.Errorf("workload: NumPlans must be positive")
	}
	if cfg.MinOps < 3 || cfg.MaxOps < cfg.MinOps {
		return nil, fmt.Errorf("workload: bad op count range [%d, %d]", cfg.MinOps, cfg.MaxOps)
	}
	for _, n := range cfg.OpCounts {
		if n < 3 {
			return nil, fmt.Errorf("workload: op count target %d too small (min 3)", n)
		}
	}
	for _, inj := range []int{cfg.InjectA, cfg.InjectB, cfg.InjectC, cfg.InjectD, cfg.InjectG} {
		if inj > cfg.NumPlans {
			return nil, fmt.Errorf("workload: injection count %d exceeds NumPlans %d", inj, cfg.NumPlans)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{Truth: Truth{KeyA: {}, KeyB: {}, KeyC: {}, KeyD: {}, KeyG: {}}}
	decider := newHardDecider(cfg)

	// Decide injection targets: a random distinct subset per pattern.
	targets := map[string]map[int]bool{
		KeyA: pickDistinct(rng, cfg.NumPlans, cfg.InjectA),
		KeyB: pickDistinct(rng, cfg.NumPlans, cfg.InjectB),
		KeyC: pickDistinct(rng, cfg.NumPlans, cfg.InjectC),
		KeyD: pickDistinct(rng, cfg.NumPlans, cfg.InjectD),
		KeyG: pickDistinct(rng, cfg.NumPlans, cfg.InjectG),
	}

	for i := 0; i < cfg.NumPlans; i++ {
		target := cfg.targetOps(rng, i)
		id := fmt.Sprintf("Q%d", i+1)
		g := newPlanGen(rng, id, decider)
		for _, key := range []string{KeyA, KeyB, KeyC, KeyD, KeyG} {
			if targets[key][i] {
				g.inject = append(g.inject, key)
				w.Truth[key][id] = true
			}
		}
		p, err := g.build(target)
		if err != nil {
			return nil, fmt.Errorf("workload: plan %s: %w", id, err)
		}
		w.Plans = append(w.Plans, p)
	}
	return w, nil
}

func (c Config) targetOps(rng *rand.Rand, i int) int {
	if len(c.OpCounts) > 0 {
		return c.OpCounts[i%len(c.OpCounts)]
	}
	if c.Bimodal && rng.Float64() < c.BigFraction {
		return 500 + rng.Intn(51)
	}
	return c.MinOps + rng.Intn(c.MaxOps-c.MinOps+1)
}

func pickDistinct(rng *rand.Rand, n, k int) map[int]bool {
	out := make(map[int]bool, k)
	perm := rng.Perm(n)
	for i := 0; i < k && i < n; i++ {
		out[perm[i]] = true
	}
	return out
}

// tablePool provides realistic warehouse-style table names.
var tableBases = []string{
	"SALES_FACT", "CUST_DIM", "PROD_DIM", "STORE_DIM", "TIME_DIM",
	"TRAN_BASE", "ACCT_DIM", "TELEPHONE_DETAIL", "INVENTORY_FACT",
	"SHIPMENT_FACT", "PROMO_DIM", "RETURNS_FACT", "WEB_CLICKS",
	"LEDGER_BASE", "BRANCH_DIM",
}

var columnPool = []string{
	"CUST_ID", "PROD_ID", "STORE_ID", "TIME_ID", "ACCT_ID", "BRANCH_ID",
	"SALE_AMT", "QTY", "DISCOUNT", "REGION", "SEGMENT", "STATUS",
	"TX_DATE", "LOAD_TS", "NAME", "CATEGORY",
}

// planGen builds one synthetic plan.
type planGen struct {
	rng    *rand.Rand
	plan   *qep.Plan
	nextID int
	harder *hardDecider
	inject []string // pattern keys to graft into this plan
	// counters for unique naming
	tableSeq int
}

func newPlanGen(rng *rand.Rand, id string, harder *hardDecider) *planGen {
	return &planGen{
		rng:    rng,
		plan:   qep.NewPlan(id),
		nextID: 1,
		harder: harder,
	}
}

// hardDecider apportions "hard" pattern instances deterministically: after n
// instances of a pattern, round(n*fraction) of them have been hard.
type hardDecider struct {
	frac  map[string]float64
	total map[string]int
	hard  map[string]int
}

func newHardDecider(cfg Config) *hardDecider {
	d := &hardDecider{
		frac:  map[string]float64{},
		total: map[string]int{},
		hard:  map[string]int{},
	}
	for _, key := range []string{KeyA, KeyB, KeyC, KeyD, KeyG} {
		f := cfg.HardFraction
		if v, ok := cfg.HardFractions[key]; ok {
			f = v
		}
		d.frac[key] = f
	}
	return d
}

func (d *hardDecider) decide(key string) bool {
	d.total[key]++
	want := int(math.Round(float64(d.total[key]) * d.frac[key]))
	if d.hard[key] < want {
		d.hard[key]++
		return true
	}
	return false
}

func (g *planGen) newOp(typ string) *qep.Operator {
	op := &qep.Operator{ID: g.nextID, Type: typ, Args: map[string]string{}}
	g.nextID++
	if err := g.plan.AddOperator(op); err != nil {
		panic(err) // IDs are sequential; duplicates are impossible
	}
	return op
}

func (g *planGen) newTable(minCard, maxCard float64) *qep.BaseObject {
	g.tableSeq++
	base := tableBases[g.rng.Intn(len(tableBases))]
	name := fmt.Sprintf("%s_%d", base, g.tableSeq)
	ncols := 2 + g.rng.Intn(4)
	cols := make([]string, 0, ncols)
	seen := map[string]bool{}
	for len(cols) < ncols {
		c := columnPool[g.rng.Intn(len(columnPool))]
		if !seen[c] {
			seen[c] = true
			cols = append(cols, c)
		}
	}
	card := minCard + g.rng.Float64()*(maxCard-minCard)
	return g.plan.AddObject(&qep.BaseObject{Name: name, Type: "TABLE", Cardinality: card, Columns: cols})
}

func (g *planGen) qualCols(obj *qep.BaseObject, n int) []string {
	if n > len(obj.Columns) {
		n = len(obj.Columns)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = fmt.Sprintf("Q%d.%s", g.rng.Intn(9)+1, obj.Columns[i])
	}
	return out
}

// build assembles the plan: RETURN root over a random operator tree with the
// requested pattern grafts merged in via extra join levels.
func (g *planGen) build(targetOps int) (*qep.Plan, error) {
	root := g.newOp("RETURN")

	// Reserve operators for the grafts.
	reserve := 0
	for _, key := range g.inject {
		reserve += graftSize(key) + 1 // +1 for the stitch join
	}
	budget := targetOps - 1 - reserve // minus RETURN
	if budget < 2 {
		budget = 2
	}

	top := g.subtree(budget)

	// Stitch each graft above the current top with an innocuous hash join.
	for _, key := range g.inject {
		graft := g.graft(key)
		join := g.newOp("HSJOIN")
		join.Predicates = []string{g.joinPredicate()}
		g.link(join, qep.OuterStream, top)
		g.link(join, qep.InnerStream, graft)
		g.cost(join, maxf(top.Cardinality/4, 1), 0)
		top = join
	}

	g.link(root, qep.GeneralStream, top)
	g.cost(root, top.Cardinality, 0)
	g.plan.TotalCost = root.TotalCost
	g.plan.Statement = g.statement()

	if err := g.plan.Resolve(); err != nil {
		return nil, err
	}
	if err := g.plan.Validate(); err != nil {
		return nil, err
	}
	return g.plan, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// subtree builds a random operator subtree with approximately `budget`
// operators, carefully avoiding the canonical patterns:
//
//   - random NLJOINs never get a TBSCAN inner with cardinality > 100;
//   - random joins are all inner joins (no left-outer markers);
//   - random SORTs always have I/O cost at most their input's;
//   - random scans keep cardinality >= 1.
func (g *planGen) subtree(budget int) *qep.Operator {
	switch {
	case budget <= 1:
		return g.leafScan()
	case budget == 2:
		return g.unaryOver(g.leafScan())
	}
	r := g.rng.Float64()
	switch {
	case r < 0.45: // binary join
		left := budget / 2
		if left < 1 {
			left = 1
		}
		lop := g.subtree(left)
		rop := g.subtree(budget - 1 - left)
		return g.join(lop, rop)
	case r < 0.8: // unary operator
		return g.unaryOver(g.subtree(budget - 1))
	default: // fetch over index scan
		rem := budget - 2
		if rem < 1 {
			return g.fetchIxScan()
		}
		f := g.fetchIxScan()
		j := g.join(f, g.subtree(rem-1))
		return j
	}
}

func (g *planGen) leafScan() *qep.Operator {
	obj := g.newTable(1e3, 5e8)
	typ := "TBSCAN"
	if g.rng.Float64() < 0.4 {
		typ = "IXSCAN"
	}
	op := g.newOp(typ)
	// Selectivity keeps cardinality >= 1 (never the Pattern C collapse).
	sel := 0.001 + g.rng.Float64()*0.5
	card := maxf(obj.Cardinality*sel, 1)
	g.plan.Link(op, qep.GeneralStream, nil, obj, obj.Cardinality, g.qualCols(obj, 2))
	g.cost(op, card, obj.Cardinality/5000)
	if g.rng.Float64() < 0.5 {
		op.Predicates = []string{g.localPredicate(obj)}
	}
	return op
}

func (g *planGen) fetchIxScan() *qep.Operator {
	obj := g.newTable(1e4, 5e8)
	ix := g.newOp("IXSCAN")
	sel := 0.0005 + g.rng.Float64()*0.01
	card := maxf(obj.Cardinality*sel, 1)
	g.plan.Link(ix, qep.GeneralStream, nil, obj, obj.Cardinality, g.qualCols(obj, 1))
	g.cost(ix, card, obj.Cardinality/20000)
	fetch := g.newOp("FETCH")
	g.link(fetch, qep.GeneralStream, ix)
	g.cost(fetch, card, card/100)
	return fetch
}

var unaryTypes = []string{"SORT", "GRPBY", "FILTER", "TEMP", "UNIQUE", "TBSCAN"}

func (g *planGen) unaryOver(child *qep.Operator) *qep.Operator {
	typ := unaryTypes[g.rng.Intn(len(unaryTypes))]
	op := g.newOp(typ)
	g.link(op, qep.GeneralStream, child)
	card := child.Cardinality
	switch typ {
	case "GRPBY", "UNIQUE":
		card = maxf(card/10, 1)
	case "FILTER":
		card = maxf(card/3, 1)
	}
	g.cost(op, card, 0)
	if typ == "SORT" {
		// Never spill in the random fabric: I/O cost capped at the input's.
		childIO := child.IOCost
		op.IOCost = childIO * (0.5 + g.rng.Float64()*0.5)
	}
	return op
}

func (g *planGen) join(outer, inner *qep.Operator) *qep.Operator {
	typ := "HSJOIN"
	switch r := g.rng.Float64(); {
	case r < 0.3:
		typ = "MSJOIN"
	case r < 0.5:
		typ = "NLJOIN"
	}
	if typ == "NLJOIN" && inner.Type == "TBSCAN" && inner.Cardinality > 100 {
		// Would form Pattern A accidentally; use a hash join instead.
		typ = "HSJOIN"
	}
	op := g.newOp(typ)
	op.Predicates = []string{g.joinPredicate()}
	g.link(op, qep.OuterStream, outer)
	g.link(op, qep.InnerStream, inner)
	card := maxf(maxf(outer.Cardinality, inner.Cardinality)*(0.1+g.rng.Float64()*0.9), 1)
	g.cost(op, card, 0)
	return op
}

// link wires child under parent and is paired with cost() which accumulates
// cumulative costs from children.
func (g *planGen) link(parent *qep.Operator, kind qep.StreamKind, child *qep.Operator) {
	g.plan.Link(parent, kind, child, nil, child.Cardinality, nil)
}

// cost assigns cardinality and cumulative costs: children totals plus an
// own-cost term derived from cardinality.
func (g *planGen) cost(op *qep.Operator, card, extraIO float64) {
	op.Cardinality = card
	var childCost, childIO, childCPU float64
	for _, in := range op.Inputs {
		if in.Op != nil {
			childCost += in.Op.TotalCost
			childIO += in.Op.IOCost
			childCPU += in.Op.CPUCost
		}
	}
	self := card*(0.01+g.rng.Float64()*0.05) + 5
	op.TotalCost = childCost + self
	op.IOCost = childIO + extraIO + self/50
	op.CPUCost = childCPU + self*2e4
	op.FirstRow = op.TotalCost * (0.001 + g.rng.Float64()*0.01)
	op.Buffers = op.IOCost * (0.5 + g.rng.Float64())
}

func (g *planGen) joinPredicate() string {
	c := columnPool[g.rng.Intn(len(columnPool))]
	return fmt.Sprintf("(Q%d.%s = Q%d.%s)", g.rng.Intn(9)+1, c, g.rng.Intn(9)+1, c)
}

func (g *planGen) localPredicate(obj *qep.BaseObject) string {
	c := obj.Columns[g.rng.Intn(len(obj.Columns))]
	return fmt.Sprintf("(Q%d.%s = %d)", g.rng.Intn(9)+1, c, g.rng.Intn(1000))
}

func (g *planGen) statement() string {
	names := sortedObjectNames(g.plan)
	stmt := "SELECT *\nFROM "
	for i, n := range names {
		if i > 0 {
			stmt += ", "
		}
		if i >= 6 {
			stmt += "..."
			break
		}
		stmt += n
	}
	return stmt
}
