package textsearch

import (
	"testing"

	"optimatch/internal/fixtures"
	"optimatch/internal/qep"
	"optimatch/internal/workload"
)

func TestPredictAOnFixtures(t *testing.T) {
	if !PredictA(qep.Text(fixtures.Figure1())) {
		t.Error("Figure 1 (easy rendering) should be found by manual search")
	}
	if PredictA(qep.Text(fixtures.Figure8())) {
		t.Error("Figure 8 has no NLJOIN")
	}
	if PredictA(qep.Text(fixtures.Clean())) {
		t.Error("clean plan misreported")
	}
}

func TestPredictBOnFixtures(t *testing.T) {
	if !PredictB(qep.Text(fixtures.Figure7())) {
		t.Error("Figure 7 has >HSJOIN and >NLJOIN markers")
	}
	if PredictB(qep.Text(fixtures.Figure1())) {
		t.Error("Figure 1 has no outer joins")
	}
}

func TestPredictCOnFixtures(t *testing.T) {
	// Figure 8's collapsed cardinality renders as 1.311e-08 — the baseline's
	// naive decimal regex misses it (the paper's signature error).
	if PredictC(qep.Text(fixtures.Figure8())) {
		t.Error("exponent-form cardinality should be missed by the naive baseline")
	}
	if PredictC(qep.Text(fixtures.Clean())) {
		t.Error("clean plan misreported")
	}
}

func TestPredictDOnFixtures(t *testing.T) {
	if !PredictD(qep.Text(fixtures.SortSpill())) {
		t.Error("sort spill with decimal costs should be found")
	}
	if PredictD(qep.Text(fixtures.Clean())) {
		t.Error("clean plan misreported")
	}
}

func TestBaselineMissesHardFormsOnly(t *testing.T) {
	// All-easy workload: the baseline finds everything (PaperPrecision 1).
	easy, err := workload.Generate(workload.Config{
		Seed: 21, NumPlans: 40, MinOps: 20, MaxOps: 50,
		InjectA: 10, InjectB: 10, InjectC: 10, HardFraction: 1e-12,
	})
	if err != nil {
		t.Fatal(err)
	}
	// All-hard workload: the baseline misses everything injected.
	hard, err := workload.Generate(workload.Config{
		Seed: 22, NumPlans: 40, MinOps: 20, MaxOps: 50,
		InjectA: 10, InjectB: 10, InjectC: 10, HardFraction: 0.999999,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name       string
		w          *workload.Workload
		wantRecall float64
		cmp        func(got, want float64) bool
	}{
		{"easy", easy, 1.0, func(g, w float64) bool { return g >= w }},
		{"hard", hard, 0.0, func(g, w float64) bool { return g <= w }},
	} {
		texts := tc.w.Texts()
		var ids []string
		for _, p := range tc.w.Plans {
			ids = append(ids, p.ID)
		}
		for _, key := range []string{workload.KeyA, workload.KeyB, workload.KeyC} {
			pred := make(map[string]bool)
			for id, text := range texts {
				pred[id] = Predict(key, text)
			}
			m := Evaluate(ids, pred, tc.w.Truth[key])
			if got := m.PaperPrecision(); !tc.cmp(got, tc.wantRecall) {
				t.Errorf("%s workload pattern %s: paper precision = %.2f (TP=%d FP=%d FN=%d)",
					tc.name, key, got, m.TP, m.FP, m.FN)
			}
		}
	}
}

func TestBaselinePrecisionBetweenExtremes(t *testing.T) {
	w, err := workload.Generate(workload.Config{
		Seed: 23, NumPlans: 100, MinOps: 20, MaxOps: 60,
		InjectA: 15, InjectB: 12, InjectC: 18, HardFraction: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	texts := w.Texts()
	var ids []string
	for _, p := range w.Plans {
		ids = append(ids, p.ID)
	}
	for _, key := range []string{workload.KeyA, workload.KeyB, workload.KeyC} {
		pred := make(map[string]bool)
		for id, text := range texts {
			pred[id] = Predict(key, text)
		}
		m := Evaluate(ids, pred, w.Truth[key])
		p := m.PaperPrecision()
		if p <= 0.4 || p >= 1.0 {
			t.Errorf("pattern %s: paper precision = %.2f, want strictly between 0.4 and 1 (TP=%d FN=%d)",
				key, p, m.TP, m.FN)
		}
	}
}

func TestEvaluateAndMetrics(t *testing.T) {
	ids := []string{"a", "b", "c", "d"}
	pred := map[string]bool{"a": true, "b": true}
	truth := map[string]bool{"a": true, "c": true}
	m := Evaluate(ids, pred, truth)
	if m.TP != 1 || m.FP != 1 || m.FN != 1 || m.TN != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.PaperPrecision() != 0.5 || m.Precision() != 0.5 || m.Recall() != 0.5 {
		t.Errorf("rates wrong: %+v", m)
	}
	empty := Evaluate(nil, nil, nil)
	if empty.PaperPrecision() != 1 || empty.Precision() != 1 {
		t.Error("empty metrics should default to 1")
	}
}

func TestPredictUnknownKey(t *testing.T) {
	if Predict("Z", "anything") {
		t.Error("unknown key should predict false")
	}
}
