// Package textsearch implements the manual-search baseline of the paper's
// comparative user study (Section 3.3): an expert scanning explain files
// with grep-style tools. The baseline performs the structural navigation a
// careful human can do (follow input-stream references between operator
// blocks) but makes the lexical mistakes the paper reports for its experts:
//
//   - numbers are recognized only in plain decimal form, so values rendered
//     with an exponent ("2.5e+06", "1.3e-08") are misread and the file is
//     missed ("using grep on operand value while this information is
//     represented ... in either the decimal form or with an exponent");
//   - only the common spellings of an operator family are searched, so a
//     left-outer merge-scan join (">MSJOIN") is overlooked when the expert
//     greps for ">HSJOIN" and ">NLJOIN" ("misinterpreting information
//     stored in the QEP file").
//
// OptImatch parses plans into typed structures and is immune to both error
// classes, which is what gives it 100% precision in Table 1.
package textsearch

import (
	"regexp"
	"strconv"
	"strings"
)

// opBlock is one operator section of an explain file as the baseline sees
// it: raw text plus the few fields a grep-style scan extracts.
type opBlock struct {
	id     int
	typ    string // includes the join-modifier prefix, e.g. ">HSJOIN"
	text   string
	inputs []blockInput
}

type blockInput struct {
	opID    int    // 0 when the input is an object
	objName string // empty when the input is an operator
	kind    string // OUTER / INNER / GENERAL
}

var (
	blockHeaderRe  = regexp.MustCompile(`(?m)^\s*(\d+)\) ([<>^]?[A-Z][A-Z0-9_]*):`)
	fromOperatorRe = regexp.MustCompile(`(\d+)\) From Operator #(\d+)\s*\n\s*Stream Type:\s*(\w+)`)
	fromObjectRe   = regexp.MustCompile(`(\d+)\) From Object (\S+)\s*\n\s*Stream Type:\s*(\w+)`)
	// decimalRe is the deliberately naive number pattern: plain decimals
	// only, no exponent forms.
	decimalRe = regexp.MustCompile(`^[0-9]+(\.[0-9]+)?$`)
)

// scan splits an explain file into operator blocks.
func scan(text string) map[int]*opBlock {
	// Only the Plan Details section contains operator blocks.
	if i := strings.Index(text, "Plan Details:"); i >= 0 {
		text = text[i:]
	}
	if i := strings.Index(text, "Base Objects:"); i >= 0 {
		text = text[:i]
	}
	locs := blockHeaderRe.FindAllStringSubmatchIndex(text, -1)
	out := make(map[int]*opBlock, len(locs))
	for i, loc := range locs {
		end := len(text)
		if i+1 < len(locs) {
			end = locs[i+1][0]
		}
		id, _ := strconv.Atoi(text[loc[2]:loc[3]])
		b := &opBlock{
			id:   id,
			typ:  text[loc[4]:loc[5]],
			text: text[loc[0]:end],
		}
		for _, m := range fromOperatorRe.FindAllStringSubmatch(b.text, -1) {
			inID, _ := strconv.Atoi(m[2])
			b.inputs = append(b.inputs, blockInput{opID: inID, kind: strings.ToUpper(m[3])})
		}
		for _, m := range fromObjectRe.FindAllStringSubmatch(b.text, -1) {
			b.inputs = append(b.inputs, blockInput{objName: m[2], kind: strings.ToUpper(m[3])})
		}
		out[id] = b
	}
	return out
}

// naiveNumber extracts the value of `key:` from a block, accepting only the
// plain decimal rendering. ok is false when the line is absent or the value
// is in exponent form (the baseline's signature failure).
func naiveNumber(block *opBlock, key string) (float64, bool) {
	re := regexp.MustCompile(regexp.QuoteMeta(key) + `:\s*(\S+)`)
	m := re.FindStringSubmatch(block.text)
	if m == nil {
		return 0, false
	}
	if !decimalRe.MatchString(m[1]) {
		return 0, false
	}
	f, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

func (b *opBlock) input(kind string) *blockInput {
	for i := range b.inputs {
		if b.inputs[i].kind == kind {
			return &b.inputs[i]
		}
	}
	return nil
}

func (b *opBlock) hasObjectInput() (string, bool) {
	for _, in := range b.inputs {
		if in.objName != "" {
			return in.objName, true
		}
	}
	return "", false
}

// PredictA reports whether the manual search flags the explain text as
// containing Pattern A (NLJOIN over a large inner table scan).
func PredictA(text string) bool {
	blocks := scan(text)
	for _, b := range blocks {
		if b.typ != "NLJOIN" {
			continue
		}
		outer := b.input("OUTER")
		inner := b.input("INNER")
		if outer == nil || inner == nil || inner.opID == 0 {
			continue
		}
		innerBlock := blocks[inner.opID]
		if innerBlock == nil || innerBlock.typ != "TBSCAN" {
			continue
		}
		if _, ok := innerBlock.hasObjectInput(); !ok {
			continue
		}
		card, ok := naiveNumber(innerBlock, "Estimated Cardinality")
		if !ok || card <= 100 {
			continue // exponent-form cardinalities are misread and skipped
		}
		// Outer cardinality > 1 (naively read; a miss here also loses the file).
		var outerCard float64
		var okOuter bool
		if outer.opID != 0 {
			if ob := blocks[outer.opID]; ob != nil {
				outerCard, okOuter = naiveNumber(ob, "Estimated Cardinality")
			}
		}
		if okOuter && outerCard > 1 {
			return true
		}
	}
	return false
}

// PredictB reports whether the manual search flags Pattern B (join of two
// left-outer-join subtrees). The expert greps for the common left-outer
// markers ">HSJOIN" and ">NLJOIN" and declares a match when two distinct
// marked joins appear; ">MSJOIN" variants are overlooked.
func PredictB(text string) bool {
	count := strings.Count(text, ">HSJOIN") + strings.Count(text, ">NLJOIN")
	return count >= 2
}

// PredictC reports whether the manual search flags Pattern C (scan with a
// collapsed cardinality estimate over a huge table). The expert greps for a
// "0.000..." cardinality; collapsed estimates rendered in exponent form
// ("1.3e-08") slip through.
func PredictC(text string) bool {
	blocks := scan(text)
	for _, b := range blocks {
		if b.typ != "IXSCAN" && b.typ != "TBSCAN" {
			continue
		}
		card, ok := naiveNumber(b, "Estimated Cardinality")
		if !ok || card >= 0.001 {
			continue
		}
		if _, ok := b.hasObjectInput(); ok {
			return true
		}
	}
	return false
}

// PredictD reports whether the manual search flags Pattern D (spilling
// SORT): a SORT whose I/O cost, read naively, exceeds its input's.
func PredictD(text string) bool {
	blocks := scan(text)
	for _, b := range blocks {
		if b.typ != "SORT" {
			continue
		}
		sortIO, ok := naiveNumber(b, "Cumulative I/O Cost")
		if !ok {
			continue
		}
		in := b.input("GENERAL")
		if in == nil || in.opID == 0 {
			continue
		}
		inBlock := blocks[in.opID]
		if inBlock == nil {
			continue
		}
		inIO, ok := naiveNumber(inBlock, "Cumulative I/O Cost")
		if ok && inIO < sortIO {
			return true
		}
	}
	return false
}

// Predict dispatches on the workload pattern key ("A".."D").
func Predict(key, text string) bool {
	switch key {
	case "A":
		return PredictA(text)
	case "B":
		return PredictB(text)
	case "C":
		return PredictC(text)
	case "D":
		return PredictD(text)
	default:
		return false
	}
}

// Metrics scores a set of per-plan predictions against ground truth.
type Metrics struct {
	TP, FP, FN, TN int
}

// Evaluate scores predictions (plan ID -> predicted match) against truth
// (plan ID -> actually contains the pattern) over the given plan IDs.
func Evaluate(planIDs []string, predicted, truth map[string]bool) Metrics {
	var m Metrics
	for _, id := range planIDs {
		switch {
		case predicted[id] && truth[id]:
			m.TP++
		case predicted[id] && !truth[id]:
			m.FP++
		case !predicted[id] && truth[id]:
			m.FN++
		default:
			m.TN++
		}
	}
	return m
}

// PaperPrecision is the paper's Table 1 measure: "precision as the function
// of missed QEP files that contain the prescribed pattern", i.e. the
// fraction of true pattern files that were not missed.
func (m Metrics) PaperPrecision() float64 {
	total := m.TP + m.FN
	if total == 0 {
		return 1
	}
	return float64(m.TP) / float64(total)
}

// Precision is the conventional TP/(TP+FP).
func (m Metrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 1
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall is TP/(TP+FN) (numerically equal to PaperPrecision).
func (m Metrics) Recall() float64 { return m.PaperPrecision() }

// ExpertSecondsPerPlan models the wall-clock cost of one expert manually
// checking one explain file for one pattern. Calibrated from the paper's
// report that a manual pass over 1000 QEPs takes about five hours
// (Section 3.3); used only to reconstruct Figure 12's manual-time bars.
const ExpertSecondsPerPlan = 18.0

// PatternSpecSeconds models the one-time cost of specifying a pattern in
// the OptImatch GUI ("on average around 60 seconds", Section 3.3).
const PatternSpecSeconds = 60.0
