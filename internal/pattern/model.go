// Package pattern implements OptImatch problem patterns: the JSON object the
// paper's web GUI produces (Figure 5), a fluent Go builder for constructing
// the same object programmatically, and the handler-based compiler that
// turns a pattern into an executable SPARQL query (Algorithm 2, Figure 6).
//
// A problem pattern is a set of plan operators (pops) with properties and
// relationships: "an NLJOIN whose inner input is a TBSCAN with cardinality
// greater than 100". Relationships are either Immediate Child (one stream
// hop) or Descendant (any number of hops); properties compare an operator
// property against a constant or against another operator's property.
package pattern

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Relationship signs.
const (
	SignImmediateChild = "Immediate Child"
	SignDescendant     = "Descendant"
)

// Pseudo operator types understood by the compiler in addition to concrete
// LOLEPOP names.
const (
	TypeAny     = "ANY"     // matches any operator
	TypeJoin    = "JOIN"    // any join method (NLJOIN, HSJOIN, MSJOIN, ZZJOIN)
	TypeScan    = "SCAN"    // TBSCAN or IXSCAN
	TypeBaseObj = "BASE OB" // a base object (table/index), not a LOLEPOP
)

// Stream relationship property IDs (unprefixed predicate names).
const (
	RelOuterInput = "hasOuterInputStream"
	RelInnerInput = "hasInnerInputStream"
	RelInput      = "hasInputStream"
	RelOutput     = "hasOutputStream" // redundant reverse edge, kept for Figure 5 fidelity
)

// PropRef references another pop's property for cross-operator comparisons
// (e.g. Pattern D: a SORT whose input has lower I/O cost than the SORT
// itself).
type PropRef struct {
	Pop int    `json:"pop"`
	ID  string `json:"id"`
}

// PlanRef references a plan-level property scaled by a factor, for
// plan-relative constraints such as "operator cost above 50% of the plan's
// total cost" (the paper's second motivating question, Section 1.1).
type PlanRef struct {
	ID     string  `json:"id"`               // plan property, e.g. hasTotalCost
	Factor float64 `json:"factor,omitempty"` // scale; 0 means 1
}

// RelDistinct is the pseudo relationship asserting two handlers bind to
// different resources ("isDistinctFrom"). Needed for patterns like a shared
// common subexpression with two distinct consumers.
const RelDistinct = "isDistinctFrom"

// SignAbsent asserts a property is NOT present on the pop (compiled to
// FILTER NOT EXISTS). Needed for negative patterns such as a join carrying
// no join predicate (a cartesian product).
const SignAbsent = "ABSENT"

// Property is one entry of a pop's popProperties array: either a
// relationship (Sign is Immediate Child/Descendant and Value is the target
// pop ID) or a value constraint (Sign is a comparison operator and Value or
// ValueOf is the right-hand side).
type Property struct {
	ID      string      `json:"id"`
	Value   interface{} `json:"value,omitempty"`
	ValueOf *PropRef    `json:"valueOf,omitempty"`
	PlanOf  *PlanRef    `json:"planOf,omitempty"`
	Sign    string      `json:"sign,omitempty"`
}

// IsRelationship reports whether the property is a stream relationship.
func (p Property) IsRelationship() bool {
	return p.Sign == SignImmediateChild || p.Sign == SignDescendant
}

// TargetPop returns the related pop ID for a relationship property.
func (p Property) TargetPop() (int, error) {
	switch v := p.Value.(type) {
	case float64:
		return int(v), nil
	case int:
		return v, nil
	case json.Number:
		i, err := v.Int64()
		return int(i), err
	default:
		return 0, fmt.Errorf("pattern: relationship %q value %v is not a pop id", p.ID, p.Value)
	}
}

// Pop is one operator node of the pattern.
type Pop struct {
	ID         int        `json:"ID"`
	Type       string     `json:"type"`
	Alias      string     `json:"alias,omitempty"`
	Properties []Property `json:"popProperties"`
}

// Pattern is a complete problem pattern, the Go form of the paper's
// Figure 5 JSON object.
type Pattern struct {
	Name        string            `json:"name,omitempty"`
	Description string            `json:"description,omitempty"`
	Pops        []Pop             `json:"pops"`
	PlanDetails map[string]string `json:"planDetails,omitempty"`
}

// MarshalJSON ensures planDetails always serializes (Figure 5 includes the
// key even when empty).
func (p *Pattern) MarshalJSON() ([]byte, error) {
	type alias Pattern
	tmp := struct {
		*alias
		PlanDetails map[string]string `json:"planDetails"`
	}{alias: (*alias)(p), PlanDetails: p.PlanDetails}
	if tmp.PlanDetails == nil {
		tmp.PlanDetails = map[string]string{}
	}
	return json.Marshal(tmp)
}

// FromJSON decodes a pattern from its JSON form.
func FromJSON(data []byte) (*Pattern, error) {
	var p Pattern
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("pattern: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// ToJSON encodes the pattern.
func (p *Pattern) ToJSON() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// Pop returns the pop with the given ID, or nil.
func (p *Pattern) Pop(id int) *Pop {
	for i := range p.Pops {
		if p.Pops[i].ID == id {
			return &p.Pops[i]
		}
	}
	return nil
}

// SortedPops returns the pops ordered by ID.
func (p *Pattern) SortedPops() []Pop {
	out := append([]Pop(nil), p.Pops...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// validSigns lists the comparison signs accepted in value constraints.
var validSigns = map[string]bool{
	"": true, "=": true, "!=": true, ">": true, "<": true, ">=": true, "<=": true,
	SignAbsent: true,
}

// Validate checks structural consistency: positive unique IDs, known signs,
// resolvable relationship targets and property references.
func (p *Pattern) Validate() error {
	if len(p.Pops) == 0 {
		return fmt.Errorf("pattern %q: no pops", p.Name)
	}
	seen := make(map[int]bool)
	for _, pop := range p.Pops {
		if pop.ID <= 0 {
			return fmt.Errorf("pattern %q: pop id %d must be positive", p.Name, pop.ID)
		}
		if seen[pop.ID] {
			return fmt.Errorf("pattern %q: duplicate pop id %d", p.Name, pop.ID)
		}
		seen[pop.ID] = true
		if strings.TrimSpace(pop.Type) == "" {
			return fmt.Errorf("pattern %q: pop %d has empty type", p.Name, pop.ID)
		}
	}
	for _, pop := range p.Pops {
		for _, prop := range pop.Properties {
			if prop.ID == RelDistinct {
				target, err := prop.TargetPop()
				if err != nil {
					return fmt.Errorf("pattern %q: pop %d: %w", p.Name, pop.ID, err)
				}
				if !seen[target] {
					return fmt.Errorf("pattern %q: pop %d isDistinctFrom references unknown pop %d", p.Name, pop.ID, target)
				}
				if target == pop.ID {
					return fmt.Errorf("pattern %q: pop %d isDistinctFrom itself", p.Name, pop.ID)
				}
				continue
			}
			if prop.IsRelationship() || prop.ID == RelOutput {
				target, err := prop.TargetPop()
				if err != nil {
					return fmt.Errorf("pattern %q: pop %d: %w", p.Name, pop.ID, err)
				}
				if !seen[target] {
					return fmt.Errorf("pattern %q: pop %d relationship %s references unknown pop %d", p.Name, pop.ID, prop.ID, target)
				}
				continue
			}
			if !validSigns[prop.Sign] {
				return fmt.Errorf("pattern %q: pop %d property %s has unknown sign %q", p.Name, pop.ID, prop.ID, prop.Sign)
			}
			if prop.Sign == SignAbsent {
				if prop.Value != nil || prop.ValueOf != nil || prop.PlanOf != nil {
					return fmt.Errorf("pattern %q: pop %d property %s: ABSENT takes no value", p.Name, pop.ID, prop.ID)
				}
				continue
			}
			if prop.Value == nil && prop.ValueOf == nil && prop.PlanOf == nil {
				return fmt.Errorf("pattern %q: pop %d property %s has no value", p.Name, pop.ID, prop.ID)
			}
			if prop.PlanOf != nil && strings.TrimSpace(prop.PlanOf.ID) == "" {
				return fmt.Errorf("pattern %q: pop %d property %s has empty plan reference", p.Name, pop.ID, prop.ID)
			}
			if prop.ValueOf != nil && !seen[prop.ValueOf.Pop] {
				return fmt.Errorf("pattern %q: pop %d property %s references unknown pop %d", p.Name, pop.ID, prop.ID, prop.ValueOf.Pop)
			}
		}
	}
	return nil
}

// HandlerAlias returns the alias used to tag this pop's result handler: the
// explicit alias if set, "TOP" for the lowest pop ID, otherwise a sanitized
// type+ID name ("ANY2", "BASE4").
func (p *Pattern) HandlerAlias(pop Pop) string {
	if pop.Alias != "" {
		return pop.Alias
	}
	lowest := p.Pops[0].ID
	for _, other := range p.Pops {
		if other.ID < lowest {
			lowest = other.ID
		}
	}
	if pop.ID == lowest {
		return "TOP"
	}
	t := pop.Type
	if t == TypeBaseObj {
		t = "BASE"
	}
	t = strings.Map(func(r rune) rune {
		if r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			return r
		}
		return -1
	}, strings.ToUpper(t))
	return fmt.Sprintf("%s%d", t, pop.ID)
}
