package pattern

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"optimatch/internal/fixtures"
	"optimatch/internal/qep"
	"optimatch/internal/sparql"
	"optimatch/internal/transform"
)

func TestBuilderProducesFigure5Shape(t *testing.T) {
	p := A()
	if len(p.Pops) != 4 {
		t.Fatalf("pops = %d, want 4", len(p.Pops))
	}
	top := p.Pop(1)
	if top == nil || top.Type != "NLJOIN" {
		t.Fatalf("pop 1 = %+v", top)
	}
	var rels []string
	for _, prop := range top.Properties {
		if prop.IsRelationship() {
			rels = append(rels, prop.ID)
		}
	}
	if len(rels) != 2 || rels[0] != RelOuterInput || rels[1] != RelInnerInput {
		t.Errorf("relationships = %v", rels)
	}
	// Children carry the reverse hasOutputStream declaration as in Figure 5.
	found := false
	for _, prop := range p.Pop(2).Properties {
		if prop.ID == RelOutput {
			if target, err := prop.TargetPop(); err == nil && target == 1 {
				found = true
			}
		}
	}
	if !found {
		t.Error("child missing hasOutputStream back-reference")
	}
}

func TestPatternJSONRoundTrip(t *testing.T) {
	for _, p := range Canonical() {
		data, err := p.ToJSON()
		if err != nil {
			t.Fatalf("%s: ToJSON: %v", p.Name, err)
		}
		// Figure 5 compatibility: keys "pops", "ID", "type", "popProperties",
		// "planDetails" must appear.
		for _, key := range []string{`"pops"`, `"ID"`, `"type"`, `"popProperties"`, `"planDetails"`} {
			if !strings.Contains(string(data), key) {
				t.Errorf("%s: JSON missing key %s:\n%s", p.Name, key, data)
			}
		}
		p2, err := FromJSON(data)
		if err != nil {
			t.Fatalf("%s: FromJSON: %v", p.Name, err)
		}
		if len(p2.Pops) != len(p.Pops) || p2.Name != p.Name {
			t.Errorf("%s: round trip mismatch", p.Name)
		}
		// Both compile to the same SPARQL.
		c1, err := Compile(p)
		if err != nil {
			t.Fatalf("%s: compile original: %v", p.Name, err)
		}
		c2, err := Compile(p2)
		if err != nil {
			t.Fatalf("%s: compile round-tripped: %v", p.Name, err)
		}
		if c1.Query != c2.Query {
			t.Errorf("%s: queries differ after JSON round trip:\n%s\nvs\n%s", p.Name, c1.Query, c2.Query)
		}
	}
}

func TestFromJSONFigure5Literal(t *testing.T) {
	// A hand-written JSON object in the paper's Figure 5 style.
	raw := `{
  "pops": [
    {"ID":1,"type":"NLJOIN","popProperties":[
      {"id":"hasOuterInputStream","value":2,"sign":"Immediate Child"},
      {"id":"hasInnerInputStream","value":3,"sign":"Immediate Child"}]},
    {"ID":2,"type":"ANY","popProperties":[{"id":"hasOutputStream","value":1}]},
    {"ID":3,"type":"TBSCAN","popProperties":[
      {"id":"hasEstimateCardinality","value":"100","sign":">"},
      {"id":"hasInputStream","value":4,"sign":"Immediate Child"},
      {"id":"hasOutputStream","value":1}]},
    {"ID":4,"type":"BASE OB","popProperties":[{"id":"hasOutputStream","value":3}]}
  ],
  "planDetails": {}
}`
	p, err := FromJSON([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Matches Figure 1.
	res := execOn(t, c, "fig1")
	if res.Len() != 1 {
		t.Errorf("matches = %d, want 1", res.Len())
	}
}

func execOn(t *testing.T, c *Compiled, planName string) *sparql.Results {
	t.Helper()
	var r *transform.Result
	switch planName {
	case "fig1":
		r = transform.Transform(fixtures.Figure1())
	case "fig7":
		r = transform.Transform(fixtures.Figure7())
	case "fig8":
		r = transform.Transform(fixtures.Figure8())
	case "sort":
		r = transform.Transform(fixtures.SortSpill())
	case "clean":
		r = transform.Transform(fixtures.Clean())
	default:
		t.Fatalf("unknown plan %q", planName)
	}
	q, err := sparql.Parse(c.Query)
	if err != nil {
		t.Fatalf("generated query does not parse: %v\n%s", err, c.Query)
	}
	res, err := q.Exec(r.Graph)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	return res
}

func TestCompilePatternAQueryShape(t *testing.T) {
	c, err := Compile(A())
	if err != nil {
		t.Fatal(err)
	}
	q := c.Query
	// Figure 6 fidelity: prefixes, aliased result handlers, reified blank
	// node handlers, internal handler filters, ORDER BY.
	for _, want := range []string{
		"PREFIX preduri:",
		"?pop1 AS ?TOP",
		"?pop4 AS ?BASE4",
		`?pop1 preduri:hasPopType "NLJOIN"`,
		"?BNodeOfPop2_to_Pop1",
		"?BNodeOfPop3_to_Pop1",
		"preduri:hasOutputStream",
		"?internalHandler",
		"FILTER(?internalHandler",
		"preduri:isABaseObj",
		"ORDER BY ?pop1",
	} {
		if !strings.Contains(q, want) {
			t.Errorf("query missing %q:\n%s", want, q)
		}
	}
	if len(c.Handlers) != 4 {
		t.Errorf("handlers = %+v", c.Handlers)
	}
	if h := c.HandlerByAlias("top"); h == nil || h.PopID != 1 {
		t.Errorf("HandlerByAlias(top) = %+v", h)
	}
	if c.HandlerByAlias("nope") != nil {
		t.Error("HandlerByAlias(nope) should be nil")
	}
}

func TestPatternAMatchesFigure1Only(t *testing.T) {
	c, err := Compile(A())
	if err != nil {
		t.Fatal(err)
	}
	if res := execOn(t, c, "fig1"); res.Len() != 1 {
		t.Errorf("fig1 matches = %d, want 1", res.Len())
	}
	for _, plan := range []string{"fig8", "sort", "clean"} {
		if res := execOn(t, c, plan); res.Len() != 0 {
			t.Errorf("%s matches = %d, want 0", plan, res.Len())
		}
	}
}

func TestPatternBMatchesFigure7ViaDescendants(t *testing.T) {
	c, err := Compile(B())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Query, "preduri:hasOuterChildPop/preduri:hasChildPop*") {
		t.Errorf("descendant property path missing:\n%s", c.Query)
	}
	res := execOn(t, c, "fig7")
	if res.Len() == 0 {
		t.Fatalf("fig7 matches = 0, want >= 1\n%s", c.Query)
	}
	// The top join binding must include NLJOIN(5); the LOJ handlers the two
	// left-outer joins.
	foundTop := false
	for i := 0; i < res.Len(); i++ {
		if strings.HasSuffix(res.Get(i, "TOP").Value, "/pop/5") {
			foundTop = true
			left := res.Get(i, "LOJLEFT").Value
			right := res.Get(i, "LOJRIGHT").Value
			if !strings.HasSuffix(left, "/pop/6") {
				t.Errorf("LOJLEFT = %s", left)
			}
			if !strings.HasSuffix(right, "/pop/15") {
				t.Errorf("LOJRIGHT = %s", right)
			}
		}
	}
	if !foundTop {
		t.Errorf("NLJOIN(5) not among top bindings: %v", res.Rows)
	}
	for _, plan := range []string{"fig1", "fig8", "sort", "clean"} {
		if res := execOn(t, c, plan); res.Len() != 0 {
			t.Errorf("%s matches = %d, want 0", plan, res.Len())
		}
	}
}

func TestPatternCMatchesFigure8(t *testing.T) {
	c, err := Compile(C())
	if err != nil {
		t.Fatal(err)
	}
	if res := execOn(t, c, "fig8"); res.Len() != 1 {
		t.Errorf("fig8 matches = %d, want 1", res.Len())
	}
	// Figure 7 also contains an IXSCAN with 1.311e-8 cardinality over
	// TRAN_BASE (2.77e8 rows) — the paper notes the same subplan shape.
	if res := execOn(t, c, "fig7"); res.Len() != 1 {
		t.Errorf("fig7 matches = %d, want 1", res.Len())
	}
	for _, plan := range []string{"fig1", "sort", "clean"} {
		if res := execOn(t, c, plan); res.Len() != 0 {
			t.Errorf("%s matches = %d, want 0", plan, res.Len())
		}
	}
}

func TestPatternDMatchesSortSpill(t *testing.T) {
	c, err := Compile(D())
	if err != nil {
		t.Fatal(err)
	}
	// Cross-operator comparison compiles to a FILTER over two internal
	// handlers.
	if !strings.Contains(c.Query, "FILTER(?internalHandler") || !strings.Contains(c.Query, "?internalHandler2)") {
		t.Errorf("cross-ref filter missing:\n%s", c.Query)
	}
	if res := execOn(t, c, "sort"); res.Len() != 1 {
		t.Errorf("sort matches = %d, want 1", res.Len())
	}
	for _, plan := range []string{"fig1", "fig8", "clean"} {
		if res := execOn(t, c, plan); res.Len() != 0 {
			t.Errorf("%s matches = %d, want 0", plan, res.Len())
		}
	}
}

func TestCompilePlanDetails(t *testing.T) {
	b := NewBuilder("expensive", "whole plan is expensive")
	b.Pop("SORT")
	b.PlanDetail("hasTotalCost", "> 5000")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Query, "?plan preduri:hasTotalCost") {
		t.Errorf("plan details missing:\n%s", c.Query)
	}
	// SortSpill has total cost 9200 -> matches; Clean (310) does not.
	if res := execOn(t, c, "sort"); res.Len() != 1 {
		t.Errorf("sort matches = %d, want 1", res.Len())
	}
	if res := execOn(t, c, "clean"); res.Len() != 0 {
		t.Errorf("clean matches = %d, want 0", res.Len())
	}
}

func TestCompileAnchorsLonelyAnyPop(t *testing.T) {
	b := NewBuilder("lonely", "a single unconstrained pop")
	b.Pop(TypeAny)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Query, "?pop1 preduri:hasPopType ?internalHandler") {
		t.Errorf("lonely ANY pop not anchored:\n%s", c.Query)
	}
	// It must match every operator and base object of the clean plan (4 ops
	// + RETURN has 4 operators... count = operators + base objects).
	res := execOn(t, c, "clean")
	if res.Len() != 6 { // 4 operators + 2 base objects carry hasPopType
		t.Errorf("matches = %d, want 6", res.Len())
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		p    Pattern
	}{
		{"empty", Pattern{Name: "x"}},
		{"dupID", Pattern{Pops: []Pop{{ID: 1, Type: "SORT"}, {ID: 1, Type: "SORT"}}}},
		{"zeroID", Pattern{Pops: []Pop{{ID: 0, Type: "SORT"}}}},
		{"emptyType", Pattern{Pops: []Pop{{ID: 1, Type: " "}}}},
		{"badRelTarget", Pattern{Pops: []Pop{{ID: 1, Type: "SORT", Properties: []Property{
			{ID: RelInput, Value: 9, Sign: SignImmediateChild}}}}}},
		{"badSign", Pattern{Pops: []Pop{{ID: 1, Type: "SORT", Properties: []Property{
			{ID: "hasIOCost", Value: 5, Sign: "~"}}}}}},
		{"noValue", Pattern{Pops: []Pop{{ID: 1, Type: "SORT", Properties: []Property{
			{ID: "hasIOCost", Sign: ">"}}}}}},
		{"badRef", Pattern{Pops: []Pop{{ID: 1, Type: "SORT", Properties: []Property{
			{ID: "hasIOCost", Sign: ">", ValueOf: &PropRef{Pop: 7, ID: "hasIOCost"}}}}}}},
		{"relValueNotID", Pattern{Pops: []Pop{{ID: 1, Type: "SORT", Properties: []Property{
			{ID: RelInput, Value: "x", Sign: SignImmediateChild}}}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.p.Validate(); err == nil {
				t.Error("expected validation error")
			}
			if _, err := Compile(&c.p); err == nil {
				t.Error("Compile must reject invalid patterns")
			}
		})
	}
}

func TestHandlerAliasDefaults(t *testing.T) {
	p := Pattern{Pops: []Pop{
		{ID: 1, Type: "NLJOIN"},
		{ID: 2, Type: TypeAny},
		{ID: 4, Type: TypeBaseObj},
		{ID: 5, Type: "TBSCAN", Alias: "MYSCAN"},
	}}
	if got := p.HandlerAlias(p.Pops[0]); got != "TOP" {
		t.Errorf("alias 1 = %q", got)
	}
	if got := p.HandlerAlias(p.Pops[1]); got != "ANY2" {
		t.Errorf("alias 2 = %q", got)
	}
	if got := p.HandlerAlias(p.Pops[2]); got != "BASE4" {
		t.Errorf("alias 4 = %q", got)
	}
	if got := p.HandlerAlias(p.Pops[3]); got != "MYSCAN" {
		t.Errorf("alias 5 = %q", got)
	}
}

func TestTargetPopTypes(t *testing.T) {
	for _, v := range []interface{}{2, float64(2), json.Number("2")} {
		prop := Property{ID: RelInput, Value: v, Sign: SignImmediateChild}
		got, err := prop.TargetPop()
		if err != nil || got != 2 {
			t.Errorf("TargetPop(%T) = %d, %v", v, got, err)
		}
	}
}

func TestSplitConstraint(t *testing.T) {
	cases := []struct {
		in    string
		sign  string
		value string
		err   bool
	}{
		{"> 50000", ">", "50000", false},
		{">=1.5", ">=", "1.5", false},
		{"= FAST", "=", `"FAST"`, false},
		{"!= 3", "!=", "3", false},
		{"50000", "", "", true},
		{">", "", "", true},
	}
	for _, c := range cases {
		sign, value, err := splitConstraint(c.in)
		if c.err {
			if err == nil {
				t.Errorf("splitConstraint(%q): expected error", c.in)
			}
			continue
		}
		if err != nil || sign != c.sign || value != c.value {
			t.Errorf("splitConstraint(%q) = %q %q %v", c.in, sign, value, err)
		}
	}
}

func TestCompileDeterministic(t *testing.T) {
	for _, p := range Canonical() {
		c1, err := Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		if c1.Query != c2.Query {
			t.Errorf("%s: nondeterministic compile", p.Name)
		}
	}
}

func TestPatternEMatchesSharedTempPlan(t *testing.T) {
	c, err := Compile(E())
	if err != nil {
		t.Fatal(err)
	}
	// Plan-relative constraint appears as an arithmetic FILTER against the
	// ?plan handler.
	if !strings.Contains(c.Query, "?plan preduri:hasTotalCost") ||
		!strings.Contains(c.Query, "0.5 * ?internalHandler") {
		t.Errorf("plan-relative filter missing:\n%s", c.Query)
	}
	r := transform.Transform(fixtures.SharedTemp())
	q, err := sparql.Parse(c.Query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Exec(r.Graph)
	if err != nil {
		t.Fatal(err)
	}
	// TEMP(6) costs 600 of a 900 plan: one expensive subquery.
	if res.Len() != 1 {
		t.Fatalf("matches = %d, want 1\n%v", res.Len(), res.Rows)
	}
	if op := r.Operator(res.Get(0, "TOP")); op == nil || op.ID != 6 {
		t.Errorf("TOP = %v", res.Get(0, "TOP"))
	}
	// Figure 1's plan has no TEMP at all.
	for _, plan := range []string{"fig1", "clean"} {
		if res := execOn(t, c, plan); res.Len() != 0 {
			t.Errorf("%s matches = %d, want 0", plan, res.Len())
		}
	}
}

func TestPatternFSharedTempConsumers(t *testing.T) {
	c, err := Compile(F())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Query, "FILTER(?pop2 != ?pop3)") {
		t.Errorf("distinctness filter missing:\n%s", c.Query)
	}
	r := transform.Transform(fixtures.SharedTemp())
	q, err := sparql.Parse(c.Query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Exec(r.Graph)
	if err != nil {
		t.Fatal(err)
	}
	// The two consumers in either order: 2 solutions.
	if res.Len() != 2 {
		t.Fatalf("matches = %d, want 2\n%v", res.Len(), res.Rows)
	}
	consumers := map[string]bool{}
	for i := 0; i < res.Len(); i++ {
		consumers[r.Describe(res.Get(i, "CONSUMER2"))] = true
		consumers[r.Describe(res.Get(i, "CONSUMER3"))] = true
	}
	if !consumers["NLJOIN(3)"] || !consumers["HSJOIN(4)"] || len(consumers) != 2 {
		t.Errorf("consumers = %v", consumers)
	}
	// A single-consumer TEMP must NOT match (distinctness).
	if res := execOn(t, c, "fig7"); res.Len() != 0 {
		t.Errorf("fig7 (single-consumer TEMP) matches = %d, want 0", res.Len())
	}
}

func TestValidateExtensionErrors(t *testing.T) {
	// isDistinctFrom self-reference.
	p := Pattern{Pops: []Pop{{ID: 1, Type: "TEMP", Properties: []Property{
		{ID: RelDistinct, Value: 1}}}}}
	if err := p.Validate(); err == nil {
		t.Error("self-distinct accepted")
	}
	// isDistinctFrom unknown target.
	p = Pattern{Pops: []Pop{{ID: 1, Type: "TEMP", Properties: []Property{
		{ID: RelDistinct, Value: 5}}}}}
	if err := p.Validate(); err == nil {
		t.Error("unknown distinct target accepted")
	}
	// Empty plan reference.
	p = Pattern{Pops: []Pop{{ID: 1, Type: "TEMP", Properties: []Property{
		{ID: "hasTotalCost", Sign: ">", PlanOf: &PlanRef{ID: " "}}}}}}
	if err := p.Validate(); err == nil {
		t.Error("empty plan reference accepted")
	}
}

func TestExtendedPatternsJSONRoundTrip(t *testing.T) {
	for _, p := range []*Pattern{E(), F(), G()} {
		data, err := p.ToJSON()
		if err != nil {
			t.Fatal(err)
		}
		p2, err := FromJSON(data)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		c1, _ := Compile(p)
		c2, err := Compile(p2)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if c1.Query != c2.Query {
			t.Errorf("%s: queries differ after round trip", p.Name)
		}
	}
	if len(Extended()) != 7 {
		t.Errorf("Extended = %d patterns", len(Extended()))
	}
}

func TestPatternGCartesianJoin(t *testing.T) {
	c, err := Compile(G())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Query, "FILTER NOT EXISTS { ?pop1 preduri:hasPredicateText") {
		t.Errorf("NOT EXISTS missing:\n%s", c.Query)
	}
	// Build a plan with a predicate-less NLJOIN over two multi-row scans.
	p := qepPlanCartesian(t)
	r := transform.Transform(p)
	q, err := sparql.Parse(c.Query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Exec(r.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("matches = %d, want 1\n%v", res.Len(), res.Rows)
	}
	if op := r.Operator(res.Get(0, "TOP")); op == nil || op.ID != 2 {
		t.Errorf("TOP = %v", res.Get(0, "TOP"))
	}
	// Plans whose joins all carry predicates do not match.
	for _, plan := range []string{"fig1", "clean"} {
		if res := execOn(t, c, plan); res.Len() != 0 {
			t.Errorf("%s matches = %d, want 0", plan, res.Len())
		}
	}
}

func qepPlanCartesian(t *testing.T) *qep.Plan {
	t.Helper()
	p := qep.NewPlan("QCART")
	p.Statement = "SELECT * FROM A, B"
	p.TotalCost = 5000
	a := p.AddObject(&qep.BaseObject{Name: "A", Cardinality: 100})
	bb := p.AddObject(&qep.BaseObject{Name: "B", Cardinality: 200})
	ret := &qep.Operator{ID: 1, Type: "RETURN", TotalCost: 5000, IOCost: 50, Cardinality: 20000}
	nl := &qep.Operator{ID: 2, Type: "NLJOIN", TotalCost: 4990, IOCost: 49, Cardinality: 20000} // no predicates
	s1 := &qep.Operator{ID: 3, Type: "TBSCAN", TotalCost: 40, IOCost: 4, Cardinality: 100}
	s2 := &qep.Operator{ID: 4, Type: "TBSCAN", TotalCost: 60, IOCost: 6, Cardinality: 200}
	for _, op := range []*qep.Operator{ret, nl, s1, s2} {
		if err := p.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	p.Link(ret, qep.GeneralStream, nl, nil, 20000, nil)
	p.Link(nl, qep.OuterStream, s1, nil, 100, nil)
	p.Link(nl, qep.InnerStream, s2, nil, 200, nil)
	p.Link(s1, qep.GeneralStream, nil, a, 100, nil)
	p.Link(s2, qep.GeneralStream, nil, bb, 200, nil)
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestValidateAbsentErrors(t *testing.T) {
	p := Pattern{Pops: []Pop{{ID: 1, Type: "NLJOIN", Properties: []Property{
		{ID: "hasPredicateText", Sign: SignAbsent, Value: 5}}}}}
	if err := p.Validate(); err == nil {
		t.Error("ABSENT with a value accepted")
	}
}

// TestRandomPatternsCompileToValidSPARQL generates random (valid) patterns
// and checks every one compiles to SPARQL the engine can parse and execute.
func TestRandomPatternsCompileToValidSPARQL(t *testing.T) {
	types := []string{"NLJOIN", "HSJOIN", "TBSCAN", "SORT", "GRPBY", TypeAny, TypeJoin, TypeScan}
	props := []string{"hasEstimateCardinality", "hasTotalCost", "hasIOCost", "hasTotalCostIncrease"}
	signs := []string{">", "<", ">=", "<=", "=", "!="}
	r := transform.Transform(fixtures.Figure7())

	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 60; trial++ {
		b := NewBuilder(fmt.Sprintf("rand-%d", trial), "random pattern")
		n := 1 + rng.Intn(4)
		pops := make([]*PopBuilder, n)
		for i := range pops {
			pops[i] = b.Pop(types[rng.Intn(len(types))])
		}
		// Random tree of relationships.
		for i := 1; i < n; i++ {
			parent := pops[rng.Intn(i)]
			switch rng.Intn(4) {
			case 0:
				parent.OuterChild(pops[i])
			case 1:
				parent.InnerChild(pops[i])
			case 2:
				parent.Child(pops[i])
			default:
				parent.Descendant(pops[i])
			}
		}
		// Random constraints.
		for i := 0; i < rng.Intn(3); i++ {
			pop := pops[rng.Intn(n)]
			switch rng.Intn(4) {
			case 0:
				pop.Where(props[rng.Intn(len(props))], signs[rng.Intn(len(signs))], rng.Float64()*1000)
			case 1:
				pop.WhereAbsent("hasPredicateText")
			case 2:
				pop.WherePlan(props[rng.Intn(len(props))], ">", rng.Float64(), "hasTotalCost")
			default:
				other := pops[rng.Intn(n)]
				if other != pop {
					pop.WhereRef(props[rng.Intn(len(props))], "<", other, props[rng.Intn(len(props))])
				}
			}
		}
		p, err := b.Build()
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}
		c, err := Compile(p)
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		q, err := sparql.Parse(c.Query)
		if err != nil {
			t.Fatalf("trial %d: generated SPARQL does not parse: %v\n%s", trial, err, c.Query)
		}
		if _, err := q.Exec(r.Graph); err != nil {
			t.Fatalf("trial %d: generated SPARQL does not execute: %v\n%s", trial, err, c.Query)
		}
	}
}
