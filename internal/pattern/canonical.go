package pattern

// This file defines the paper's four canonical expert patterns (Sections 2.2
// and 2.3), used throughout the examples, tests and the experimental study:
//
//	Pattern A — NLJOIN with an expensive inner table scan  -> index advice
//	Pattern B — join of two left-outer-join subtrees       -> query rewrite
//	Pattern C — scan with a huge cardinality drop          -> statistics advice
//	Pattern D — SORT whose input has lower I/O cost        -> sort memory advice

// A returns Pattern A (paper Section 2.2, Figures 3/5/6): a LOLEPOP of type
// NLJOIN whose outer input (ANY) has cardinality greater than one, whose
// inner input is a TBSCAN with cardinality greater than 100, the TBSCAN
// reading a base object. The inner table is fully rescanned for every outer
// row.
func A() *Pattern {
	b := NewBuilder("nljoin-inner-tbscan",
		"NLJOIN repeatedly scanning a large inner table; candidate for an index on the inner table")
	top := b.Pop("NLJOIN").Alias("TOP")
	outer := b.Pop(TypeAny)
	inner := b.Pop("TBSCAN").Alias("SCAN3")
	base := b.Pop(TypeBaseObj).Alias("BASE4")
	top.OuterChild(outer)
	top.InnerChild(inner)
	outer.Where("hasEstimateCardinality", ">", 1)
	inner.Where("hasEstimateCardinality", ">", 100)
	inner.Child(base)
	return b.MustBuild()
}

// B returns Pattern B (paper Section 2.3, Figure 7): a JOIN (any method)
// with a descendant left-outer join below its outer input and a descendant
// left-outer join below its inner input — the poor-join-order shape
// (T1 LOJ T2) JOIN (T3 LOJ T4). This is the recursive pattern exercising
// arbitrary-length property paths.
func B() *Pattern {
	b := NewBuilder("loj-both-sides",
		"Join of two left-outer-join subtrees; rewrite (T1 LOJ T2) JOIN (T3 LOJ T4) as ((T1 LOJ T2) JOIN T3) LOJ T4")
	top := b.Pop(TypeJoin).Alias("TOP")
	left := b.Pop(TypeJoin).Alias("LOJLEFT")
	right := b.Pop(TypeJoin).Alias("LOJRIGHT")
	top.OuterDescendant(left)
	top.InnerDescendant(right)
	left.Where("hasJoinType", "=", "LEFT_OUTER")
	right.Where("hasJoinType", "=", "LEFT_OUTER")
	return b.MustBuild()
}

// C returns Pattern C (paper Section 2.3, Figure 8): an IXSCAN or TBSCAN
// with estimated cardinality below 0.001 reading a base object with
// cardinality above one million — a drastic and suspicious cardinality
// estimate suggesting missing column group statistics.
func C() *Pattern {
	b := NewBuilder("scan-cardinality-collapse",
		"Scan estimating under 0.001 rows out of a table with over 1e6 rows; collect column group statistics")
	scan := b.Pop(TypeScan).Alias("TOP")
	base := b.Pop(TypeBaseObj).Alias("BASE2")
	scan.Where("hasEstimateCardinality", "<", 0.001)
	base.Where("hasEstimateCardinality", ">", 1000000)
	scan.Child(base)
	return b.MustBuild()
}

// D returns Pattern D (paper Section 2.3): a SORT whose immediate input has
// an I/O cost lower than the SORT's own I/O cost, indicating sort spill.
func D() *Pattern {
	b := NewBuilder("sort-spill",
		"SORT with higher I/O cost than its input (spill indicator); increase sort memory")
	srt := b.Pop("SORT").Alias("TOP")
	in := b.Pop(TypeAny).Alias("INPUT2")
	srt.Child(in)
	in.WhereRef("hasIOCost", "<", srt, "hasIOCost")
	return b.MustBuild()
}

// E returns Pattern E (the paper's second motivating question, Section
// 1.1): a materialized subquery (TEMP) whose cumulative cost exceeds half
// of the plan's total cost — "find all the subqueries that have a cost that
// is more than 50% of the total cost of the query".
func E() *Pattern {
	b := NewBuilder("expensive-subquery",
		"Materialized subquery costing more than 50% of the whole plan")
	tmp := b.Pop("TEMP").Alias("TOP")
	in := b.Pop(TypeAny).Alias("INPUT2")
	tmp.Child(in)
	tmp.WherePlan("hasTotalCost", ">", 0.5, "hasTotalCost")
	return b.MustBuild()
}

// F returns Pattern F (the paper's Section 2.2 ambiguity example): a common
// subexpression — a TEMP — consumed by two *distinct* operators in
// different parts of the plan. The reified stream encoding is what makes
// the two consumer edges distinguishable.
func F() *Pattern {
	b := NewBuilder("shared-temp",
		"Common subexpression (TEMP) with multiple consumers")
	tmp := b.Pop("TEMP").Alias("TOP")
	c1 := b.Pop(TypeAny).Alias("CONSUMER2")
	c2 := b.Pop(TypeAny).Alias("CONSUMER3")
	c1.Child(tmp)
	c2.Child(tmp)
	c1.DistinctFrom(c2)
	return b.MustBuild()
}

// G returns Pattern G (extension): a cartesian product — a join carrying no
// join predicate while both inputs produce more than one row. Exercises the
// negative (ABSENT / FILTER NOT EXISTS) constraint.
func G() *Pattern {
	b := NewBuilder("cartesian-join",
		"Join with no join predicate over multi-row inputs (cartesian product)")
	top := b.Pop(TypeJoin).Alias("TOP")
	outer := b.Pop(TypeAny).Alias("OUTER2")
	inner := b.Pop(TypeAny).Alias("INNER3")
	top.OuterChild(outer)
	top.InnerChild(inner)
	top.WhereAbsent("hasPredicateText")
	outer.Where("hasEstimateCardinality", ">", 1)
	inner.Where("hasEstimateCardinality", ">", 1)
	return b.MustBuild()
}

// Canonical returns the four paper patterns in order A, B, C, D.
func Canonical() []*Pattern {
	return []*Pattern{A(), B(), C(), D()}
}

// Extended returns the canonical patterns plus the motivating-scenario
// extensions E (expensive subquery), F (shared common subexpression) and
// G (cartesian join).
func Extended() []*Pattern {
	return append(Canonical(), E(), F(), G())
}
