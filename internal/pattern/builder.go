package pattern

// Builder constructs patterns fluently, playing the role of the paper's
// web-based pattern builder GUI (Figure 3). Example:
//
//	b := pattern.NewBuilder("nljoin-tbscan", "NLJOIN over a large table scan")
//	top := b.Pop("NLJOIN").Alias("TOP")
//	outer := b.Pop(pattern.TypeAny)
//	inner := b.Pop("TBSCAN")
//	base := b.Pop(pattern.TypeBaseObj).Alias("BASE4")
//	top.OuterChild(outer)
//	top.InnerChild(inner)
//	outer.Where("hasEstimateCardinality", ">", 1)
//	inner.Where("hasEstimateCardinality", ">", 100)
//	inner.Child(base)
//	p, err := b.Build()
type Builder struct {
	pattern Pattern
	nextID  int
}

// NewBuilder returns a builder for a named pattern.
func NewBuilder(name, description string) *Builder {
	return &Builder{
		pattern: Pattern{Name: name, Description: description},
		nextID:  1,
	}
}

// PopBuilder wraps one pop under construction.
type PopBuilder struct {
	b  *Builder
	id int
}

// Pop adds an operator node of the given type and returns its builder.
// IDs are assigned sequentially starting from 1.
func (b *Builder) Pop(typ string) *PopBuilder {
	id := b.nextID
	b.nextID++
	b.pattern.Pops = append(b.pattern.Pops, Pop{ID: id, Type: typ})
	return &PopBuilder{b: b, id: id}
}

// PlanDetail adds a plan-level constraint, e.g. PlanDetail("hasTotalCost", "> 50000").
func (b *Builder) PlanDetail(key, constraint string) *Builder {
	if b.pattern.PlanDetails == nil {
		b.pattern.PlanDetails = make(map[string]string)
	}
	b.pattern.PlanDetails[key] = constraint
	return b
}

// Build validates and returns the pattern.
func (b *Builder) Build() (*Pattern, error) {
	p := b.pattern
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// MustBuild is Build for statically-known-good patterns; it panics on error.
func (b *Builder) MustBuild() *Pattern {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// ID returns the pop's pattern ID.
func (pb *PopBuilder) ID() int { return pb.id }

func (pb *PopBuilder) pop() *Pop { return pb.b.pattern.Pop(pb.id) }

// Alias sets the handler tagging alias used in recommendations (@ALIAS).
func (pb *PopBuilder) Alias(a string) *PopBuilder {
	pb.pop().Alias = a
	return pb
}

func (pb *PopBuilder) relate(rel, sign string, child *PopBuilder) *PopBuilder {
	pb.pop().Properties = append(pb.pop().Properties, Property{ID: rel, Value: child.id, Sign: sign})
	// Record the reverse hasOutputStream edge on the child for Figure 5
	// fidelity; the compiler treats it as redundant.
	child.pop().Properties = append(child.pop().Properties, Property{ID: RelOutput, Value: pb.id})
	return pb
}

// OuterChild declares child as the immediate outer input of this pop.
func (pb *PopBuilder) OuterChild(child *PopBuilder) *PopBuilder {
	return pb.relate(RelOuterInput, SignImmediateChild, child)
}

// InnerChild declares child as the immediate inner input of this pop.
func (pb *PopBuilder) InnerChild(child *PopBuilder) *PopBuilder {
	return pb.relate(RelInnerInput, SignImmediateChild, child)
}

// Child declares child as an immediate input (generic stream) of this pop.
func (pb *PopBuilder) Child(child *PopBuilder) *PopBuilder {
	return pb.relate(RelInput, SignImmediateChild, child)
}

// OuterDescendant declares child as a descendant reached through this pop's
// outer input (any number of further hops).
func (pb *PopBuilder) OuterDescendant(child *PopBuilder) *PopBuilder {
	return pb.relate(RelOuterInput, SignDescendant, child)
}

// InnerDescendant declares child as a descendant reached through this pop's
// inner input.
func (pb *PopBuilder) InnerDescendant(child *PopBuilder) *PopBuilder {
	return pb.relate(RelInnerInput, SignDescendant, child)
}

// Descendant declares child as a descendant through any input stream.
func (pb *PopBuilder) Descendant(child *PopBuilder) *PopBuilder {
	return pb.relate(RelInput, SignDescendant, child)
}

// Where adds a value constraint on a property of this pop, e.g.
// Where("hasEstimateCardinality", ">", 100).
func (pb *PopBuilder) Where(property, sign string, value interface{}) *PopBuilder {
	pb.pop().Properties = append(pb.pop().Properties, Property{ID: property, Sign: sign, Value: value})
	return pb
}

// WherePlan adds a plan-relative constraint comparing a property of this
// pop against a scaled plan-level property, e.g. "cumulative cost above
// half of the plan total":
// pop.WherePlan("hasTotalCost", ">", 0.5, "hasTotalCost").
func (pb *PopBuilder) WherePlan(property, sign string, factor float64, planProperty string) *PopBuilder {
	pb.pop().Properties = append(pb.pop().Properties, Property{
		ID:     property,
		Sign:   sign,
		PlanOf: &PlanRef{ID: planProperty, Factor: factor},
	})
	return pb
}

// DistinctFrom asserts that this pop and other bind to different resources
// in every match (two *distinct* consumers of a shared subexpression).
func (pb *PopBuilder) DistinctFrom(other *PopBuilder) *PopBuilder {
	pb.pop().Properties = append(pb.pop().Properties, Property{ID: RelDistinct, Value: other.id})
	return pb
}

// WhereAbsent asserts the property does not exist on this pop, e.g. a join
// with no join predicate: join.WhereAbsent("hasPredicateText").
func (pb *PopBuilder) WhereAbsent(property string) *PopBuilder {
	pb.pop().Properties = append(pb.pop().Properties, Property{ID: property, Sign: SignAbsent})
	return pb
}

// WhereRef adds a cross-operator constraint comparing a property of this pop
// against a property of another pop, e.g. the SORT spill pattern:
// input.WhereRef("hasIOCost", "<", sort, "hasIOCost").
func (pb *PopBuilder) WhereRef(property, sign string, other *PopBuilder, otherProperty string) *PopBuilder {
	pb.pop().Properties = append(pb.pop().Properties, Property{
		ID:      property,
		Sign:    sign,
		ValueOf: &PropRef{Pop: other.id, ID: otherProperty},
	})
	return pb
}
