// Package storefs is the filesystem seam under the durable store: the
// handful of operations internal/store performs against a directory —
// opening and appending to the WAL, atomic snapshot publication (temp
// file + rename + directory sync), torn-tail truncation, recovery reads —
// expressed as a small interface pair so tests can substitute a
// fault-injecting implementation (internal/faultfs) without touching the
// store's logic. The default implementation, OS, delegates straight to
// package os; it adds one virtual dispatch per filesystem call, which is
// noise next to the syscall it wraps.
package storefs

import (
	"io"
	"io/fs"
	"os"
)

// FS is the directory-level surface the store needs. Implementations must
// preserve package-os error semantics: a missing file surfaces an error
// satisfying errors.Is(err, fs.ErrNotExist) from Open and ReadFile, and
// Rename atomically replaces an existing destination.
type FS interface {
	// MkdirAll creates the store directory (and parents) like os.MkdirAll.
	MkdirAll(path string, perm fs.FileMode) error
	// Open opens a file — or a directory, for directory fsyncs — read-only.
	Open(name string) (File, error)
	// OpenFile generalizes Open with flags, used for the append-mode WAL.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// CreateTemp creates an exclusive temp file like os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile slurps a whole file like os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory like os.ReadDir.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Rename atomically replaces newpath with oldpath like os.Rename.
	Rename(oldpath, newpath string) error
	// Remove deletes a file like os.Remove.
	Remove(name string) error
	// Truncate cuts (or zero-extends) a file like os.Truncate.
	Truncate(name string, size int64) error
}

// File is the per-handle surface: sequential reads for recovery scans,
// appends and Sync for the WAL and snapshot temp files.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Name returns the path the file was opened with, like os.File.Name.
	Name() string
	// Sync flushes the file (or directory) to stable storage.
	Sync() error
}

// OS is the production FS, delegating every call to package os.
type OS struct{}

func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) Open(name string) (File, error) { return os.Open(name) }

func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Remove(name string) error { return os.Remove(name) }

func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }
