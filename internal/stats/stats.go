// Package stats provides the small statistical toolkit OptImatch uses for
// recommendation ranking (Pearson correlation between a match's cost/
// cardinality context and an expert pattern's profile, Section 2.3) and for
// the linearity checks in the experimental study (simple linear regression
// with R², Section 3.2).
package stats

import "math"

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Pearson returns the Pearson correlation coefficient of the paired samples
// (xs[i], ys[i]) in [-1, 1]. It returns 0 when either side has zero variance
// or the lengths differ.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Linear is a fitted simple linear regression y = Slope*x + Intercept.
type Linear struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination in [0, 1]
}

// LinearFit fits y = a*x + b by least squares. With fewer than two points or
// zero x-variance it returns a flat line with R2 = 0.
func LinearFit(xs, ys []float64) Linear {
	if len(xs) != len(ys) || len(xs) < 2 {
		return Linear{Intercept: Mean(ys)}
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return Linear{Intercept: my}
	}
	slope := sxy / sxx
	fit := Linear{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1 // ys constant and perfectly predicted by the flat fit
		return fit
	}
	var ssRes float64
	for i := range xs {
		r := ys[i] - (fit.Slope*xs[i] + fit.Intercept)
		ssRes += r * r
	}
	fit.R2 = 1 - ssRes/syy
	if fit.R2 < 0 {
		fit.R2 = 0
	}
	return fit
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
