package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !approx(Mean(xs), 5) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if !approx(Variance(xs), 4) {
		t.Errorf("Variance = %v", Variance(xs))
	}
	if !approx(StdDev(xs), 2) {
		t.Errorf("StdDev = %v", StdDev(xs))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty slice should yield 0")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ysPos := []float64{2, 4, 6, 8, 10}
	ysNeg := []float64{10, 8, 6, 4, 2}
	if !approx(Pearson(xs, ysPos), 1) {
		t.Errorf("perfect positive corr = %v", Pearson(xs, ysPos))
	}
	if !approx(Pearson(xs, ysNeg), -1) {
		t.Errorf("perfect negative corr = %v", Pearson(xs, ysNeg))
	}
	if Pearson(xs, []float64{3, 3, 3, 3, 3}) != 0 {
		t.Error("zero-variance side should give 0")
	}
	if Pearson(xs, xs[:3]) != 0 {
		t.Error("length mismatch should give 0")
	}
	if Pearson(nil, nil) != 0 {
		t.Error("empty should give 0")
	}
}

func TestPearsonBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		half := len(raw) / 2
		xs, ys := raw[:half], raw[half:2*half]
		for _, v := range append(xs, ys...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		r := Pearson(xs, ys)
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{100, 200, 300, 400, 500}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 7
	}
	fit := LinearFit(xs, ys)
	if !approx(fit.Slope, 3) || !approx(fit.Intercept, 7) || !approx(fit.R2, 1) {
		t.Errorf("fit = %+v", fit)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ys := []float64{1.1, 1.9, 3.2, 3.8, 5.1, 5.9, 7.2, 7.8}
	fit := LinearFit(xs, ys)
	if fit.Slope < 0.9 || fit.Slope > 1.1 {
		t.Errorf("slope = %v", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if fit := LinearFit([]float64{1}, []float64{5}); fit.Slope != 0 || fit.Intercept != 5 {
		t.Errorf("single point fit = %+v", fit)
	}
	if fit := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); fit.Slope != 0 {
		t.Errorf("zero x-variance fit = %+v", fit)
	}
	if fit := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4}); fit.R2 != 1 {
		t.Errorf("constant y fit = %+v", fit)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp wrong")
	}
}
