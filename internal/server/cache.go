// Response caching for the read-mostly API routes. The server caches
// fully-rendered response bytes (JSON reports, N-Triples dumps) in the
// shared generation-keyed cache, in front of the engine's structured-result
// tier: a warm hit costs one map lookup and one write, no rendering. Every
// cacheable route answers with an X-Cache header (hit | miss | bypass |
// collapsed), honours Cache-Control: no-cache / no-store as a per-request
// bypass, and /api/plans/{id}/rdf additionally carries an ETag keyed by
// (plan id, data generation) for If-None-Match revalidation.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"optimatch/internal/cache"
)

// WithResultCache caches rendered responses for POST /api/search,
// /api/sparql, /api/kb/run and GET /api/plans/{id}/rdf in c. Keys include
// the engine's data generation (and the knowledge base's cache key for
// kb/run), so a plan or KB mutation simply orphans old entries — they age
// out under the byte budget, and a stale response is never served. The
// cache is usually the same instance wired into the engine via
// core.WithResultCache; the key namespaces keep the tiers apart.
func WithResultCache(c *cache.Cache) Option {
	return func(s *Server) { s.cache = c }
}

// encodeJSON renders v exactly as writeJSON would put it on the wire
// (two-space indent, trailing newline), so cached and uncached responses
// are byte-identical.
func encodeJSON(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// cacheContext applies the client's cache directives to the execution
// context: Cache-Control: no-cache or no-store (the request-side
// directives) makes the whole execution — server and engine tier alike —
// bypass the cache.
func cacheContext(ctx context.Context, r *http.Request) context.Context {
	cc := strings.ToLower(r.Header.Get("Cache-Control"))
	if strings.Contains(cc, "no-cache") || strings.Contains(cc, "no-store") ||
		strings.ToLower(r.Header.Get("Pragma")) == "no-cache" {
		return cache.WithBypass(ctx)
	}
	return ctx
}

// genToken renders a data generation for use as a cache-key component.
func genToken(gen uint64) string { return strconv.FormatUint(gen, 10) }

// serveCached runs render through the response cache under key and writes
// the result with an X-Cache header. keyGen is the engine generation the
// key pins: if the generation moved while rendering, the response is still
// served but not stored, so a newer body is never filed under an older key.
// Engine errors route through execError, falling back to fallback for
// ordinary failures. With no cache configured (or a bypass in ctx) render
// runs directly and X-Cache reports "bypass".
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, ctx context.Context,
	key string, keyGen uint64, contentType string, fallback int,
	render func(context.Context) ([]byte, error)) {

	v, out, err := s.cache.Do(ctx, key, func(fctx context.Context) (cache.Result, error) {
		b, err := render(fctx)
		if err != nil {
			return cache.Result{}, err
		}
		return cache.Result{Val: b, Size: int64(len(b)), NoStore: s.eng.Generation() != keyGen}, nil
	})
	if err != nil {
		if !s.execError(w, r, err) {
			writeError(w, fallback, err)
		}
		return
	}
	b := v.([]byte)
	w.Header().Set("X-Cache", out.String())
	w.Header().Set("Content-Type", contentType)
	// Content-Length is set explicitly so HEAD answers carry the same
	// headers a GET would; the body itself is GET-only (RFC 9110 §9.3.2).
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		_, _ = w.Write(b)
	}
}

// fnv64a is the FNV-1a hash of s, used to keep plan IDs of any length and
// character set inside a well-formed ETag.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// planETag is the strong validator for GET /api/plans/{id}/rdf: it changes
// exactly when the served bytes can (the plan set mutated). gen is the
// engine data generation.
func planETag(id string, gen uint64) string {
	return `"qep-` + strconv.FormatUint(fnv64a(id), 16) + `-` + strconv.FormatUint(gen, 10) + `"`
}

// etagMatch implements the If-None-Match comparison: a comma-separated
// list of entity tags, "*" matching anything, weak prefixes compared
// weakly (RFC 9110 §8.8.3.2).
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	etag = strings.TrimPrefix(etag, "W/")
	for _, candidate := range strings.Split(header, ",") {
		candidate = strings.TrimSpace(candidate)
		if candidate == "*" {
			return true
		}
		if strings.TrimPrefix(candidate, "W/") == etag {
			return true
		}
	}
	return false
}
