package server

import (
	"strconv"
	"time"

	"optimatch/internal/cache"
	"optimatch/internal/core"
	"optimatch/internal/obs"
	"optimatch/internal/store"
)

// Metric names follow one convention: optimatch_<layer>_<what>_<unit>, with
// low-cardinality labels only (route patterns, outcome enums — never plan
// IDs or query text). See DESIGN.md §10 for the full catalogue.

// EngineInstrumentation bridges the engine's scan-stage hooks into the
// registry. Install it where the engine is constructed:
//
//	core.New(core.WithInstrumentation(server.EngineInstrumentation(reg)))
//
// core itself never imports obs — it publishes timings through the hook
// struct, and this adapter owns the metric names.
func EngineInstrumentation(reg *obs.Registry) core.Instrumentation {
	const probeName = "optimatch_core_prefilter_probe_seconds"
	const probeHelp = "Vocabulary prefilter probe latency by outcome (pass: pair goes on to evaluation, skip: discarded)."
	probePass := reg.Histogram(probeName, probeHelp, obs.MicroBuckets, "outcome", "pass")
	probeSkip := reg.Histogram(probeName, probeHelp, obs.MicroBuckets, "outcome", "skip")
	match := reg.Histogram("optimatch_core_plan_match_seconds",
		"SPARQL evaluation latency per (plan, query) pair that passed the prefilter.", nil)
	kbScan := reg.Histogram("optimatch_core_kb_scan_seconds",
		"Wall time of one whole RunKB pass over the workload.", nil)
	search := reg.Histogram("optimatch_core_search_seconds",
		"Wall time of one whole pattern/SPARQL search over the workload.", nil)
	poolWorkers := reg.Gauge("optimatch_core_pool_workers",
		"Workers used by the most recent scan fan-out.")
	poolTasks := reg.Counter("optimatch_core_pool_tasks_total",
		"Per-plan tasks dispatched to the worker pool.")
	poolFanouts := reg.Counter("optimatch_core_pool_fanouts_total",
		"Scan fan-outs dispatched to the worker pool.")
	return core.Instrumentation{
		PrefilterProbe: func(d time.Duration, skipped bool) {
			if skipped {
				probeSkip.ObserveDuration(d)
			} else {
				probePass.ObserveDuration(d)
			}
		},
		PlanMatch: func(d time.Duration) { match.ObserveDuration(d) },
		KBScan:    func(d time.Duration, _, _ int) { kbScan.ObserveDuration(d) },
		Search:    func(d time.Duration, _ int) { search.ObserveDuration(d) },
		Pool: func(workers, tasks int) {
			poolWorkers.Set(int64(workers))
			poolTasks.Add(int64(tasks))
			poolFanouts.Inc()
		},
	}
}

// StoreInstrumentation bridges the durable store's hooks into the registry.
// Install it at store.Open time via store.WithInstrumentation.
func StoreInstrumentation(reg *obs.Registry) store.Instrumentation {
	walWrite := reg.Histogram("optimatch_store_wal_append_seconds",
		"Buffered write latency of one WAL record (excludes fsync).", obs.MicroBuckets)
	walSync := reg.Histogram("optimatch_store_wal_fsync_seconds",
		"fsync latency of one WAL append — the durability cost every acknowledged mutation pays.", nil)
	const compactName = "optimatch_store_compaction_seconds"
	const compactHelp = "Snapshot compaction duration by result."
	compactOK := reg.Histogram(compactName, compactHelp, nil, "result", "ok")
	compactErr := reg.Histogram(compactName, compactHelp, nil, "result", "error")
	recovery := reg.Gauge("optimatch_store_recovery_seconds_micro",
		"Duration of the recovery pass at open, in microseconds.")
	return store.Instrumentation{
		WALAppend: func(write, sync time.Duration, _ int) {
			walWrite.ObserveDuration(write)
			walSync.ObserveDuration(sync)
		},
		Compaction: func(d time.Duration, ok bool) {
			if ok {
				compactOK.ObserveDuration(d)
			} else {
				compactErr.ObserveDuration(d)
			}
		},
		Recovery: func(d time.Duration, _, _ int64) {
			recovery.Set(d.Microseconds())
		},
	}
}

// registerStateMetrics exports the counters that already live as atomics in
// core, sparql and store as scrape-time functions, so /metrics covers every
// layer even when the engine was built without EngineInstrumentation.
func (s *Server) registerStateMetrics() {
	reg := s.metrics
	reg.GaugeFunc("optimatch_core_plans_loaded", "Plans currently loaded in the engine.",
		func() float64 { return float64(s.eng.NumPlans()) })
	reg.GaugeFunc("optimatch_kb_entries", "Knowledge-base entries currently served.",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.kb.Len())
		})

	const cacheName = "optimatch_core_query_cache_total"
	const cacheHelp = "Parse-once query cache lookups by result."
	reg.CounterFunc(cacheName, cacheHelp, func() float64 { return float64(s.eng.CacheStats().Hits) }, "result", "hit")
	reg.CounterFunc(cacheName, cacheHelp, func() float64 { return float64(s.eng.CacheStats().Misses) }, "result", "miss")
	reg.GaugeFunc("optimatch_core_query_cache_entries", "Parsed queries currently held by the parse-once cache.",
		func() float64 { return float64(s.eng.CacheStats().Size) })
	reg.GaugeFunc("optimatch_core_query_cache_bytes", "Query-text bytes held by the parse-once cache.",
		func() float64 { return float64(s.eng.CacheStats().Bytes) })

	const pfName = "optimatch_core_prefilter_pairs_total"
	const pfHelp = "(plan, query) pairs probed by the vocabulary prefilter, by outcome."
	reg.CounterFunc(pfName, pfHelp, func() float64 {
		st := s.eng.PrefilterStats()
		return float64(st.Probed - st.Skipped)
	}, "outcome", "passed")
	reg.CounterFunc(pfName, pfHelp, func() float64 { return float64(s.eng.PrefilterStats().Skipped) }, "outcome", "skipped")
	reg.CounterFunc("optimatch_core_prefilter_shard_skips_total",
		"(shard, query) pairs discarded wholesale by the shard-level union-vocabulary probe.",
		func() float64 { return float64(s.eng.PrefilterStats().ShardSkips) })

	// Per-shard plan-store gauges: the shard count is fixed at construction,
	// so one GaugeFunc per shard keeps cardinality bounded.
	const shardPlansName = "optimatch_core_shard_plans"
	const shardPlansHelp = "Plans held by each shard of the plan repository."
	const shardGenName = "optimatch_core_shard_generation"
	const shardGenHelp = "Mutation counter of each shard of the plan repository."
	for i := 0; i < s.eng.NumShards(); i++ {
		shard := strconv.Itoa(i)
		idx := i
		reg.GaugeFunc(shardPlansName, shardPlansHelp,
			func() float64 { return float64(s.eng.ShardStats()[idx].Plans) }, "shard", shard)
		reg.GaugeFunc(shardGenName, shardGenHelp,
			func() float64 { return float64(s.eng.ShardStats()[idx].Generation) }, "shard", shard)
	}

	const batchName = "optimatch_ingest_batch_records_total"
	const batchHelp = "NDJSON records received by POST /api/plans:batch, by outcome."
	reg.CounterFunc(batchName, batchHelp, func() float64 { return float64(s.batch.accepted.Load()) }, "outcome", "accepted")
	reg.CounterFunc(batchName, batchHelp, func() float64 { return float64(s.batch.rejected.Load()) }, "outcome", "rejected")
	reg.CounterFunc("optimatch_ingest_batch_requests_total",
		"Batch ingest requests that passed framing checks.",
		func() float64 { return float64(s.batch.requests.Load()) })

	const evalName = "optimatch_sparql_eval_total"
	const evalHelp = "SPARQL executions by evaluator path."
	reg.CounterFunc(evalName, evalHelp, func() float64 { return float64(s.eng.EvalStats().Specialized) }, "path", "specialized")
	reg.CounterFunc(evalName, evalHelp, func() float64 { return float64(s.eng.EvalStats().Fallback) }, "path", "fallback")
	reg.CounterFunc(evalName, evalHelp, func() float64 { return float64(s.eng.EvalStats().ConstantBailouts) }, "path", "constant_bailout")

	reg.GaugeFunc("optimatch_exec_in_flight", "Weighted units of engine scan work currently admitted.",
		func() float64 { return float64(s.exec.inFlight.Load()) })
	reg.CounterFunc("optimatch_exec_cancelled_total",
		"Engine executions stopped because the client disconnected or the daemon shut down.",
		func() float64 { return float64(s.exec.cancelled.Load()) })
	reg.CounterFunc("optimatch_exec_deadline_total",
		"Engine executions stopped at their query deadline (504s).",
		func() float64 { return float64(s.exec.deadline.Load()) })
	reg.CounterFunc("optimatch_exec_shed_total",
		"Requests turned away by the admission gate (503s).",
		func() float64 { return float64(s.exec.shed.Load()) })

	if s.cache != nil {
		cst := func(f func(cache.Stats) float64) func() float64 {
			return func() float64 { return f(s.cache.Stats()) }
		}
		const reqName = "optimatch_cache_requests_total"
		const reqHelp = "Result-cache lookups by outcome (hit: served from cache, miss: executed and possibly stored, collapsed: joined an in-flight execution)."
		reg.CounterFunc(reqName, reqHelp, cst(func(st cache.Stats) float64 { return float64(st.Hits) }), "result", "hit")
		reg.CounterFunc(reqName, reqHelp, cst(func(st cache.Stats) float64 { return float64(st.Misses) }), "result", "miss")
		reg.CounterFunc(reqName, reqHelp, cst(func(st cache.Stats) float64 { return float64(st.Collapsed) }), "result", "collapsed")
		reg.CounterFunc("optimatch_cache_evictions_total", "Result-cache entries evicted under the byte budget.",
			cst(func(st cache.Stats) float64 { return float64(st.Evictions) }))
		reg.CounterFunc("optimatch_cache_expired_total", "Result-cache entries dropped at lookup past their TTL.",
			cst(func(st cache.Stats) float64 { return float64(st.Expired) }))
		reg.CounterFunc("optimatch_cache_rejected_total", "Results not admitted to the cache (cost floor, oversized).",
			cst(func(st cache.Stats) float64 { return float64(st.Rejected) }))
		reg.GaugeFunc("optimatch_cache_bytes", "Bytes currently held by result-cache entries.",
			cst(func(st cache.Stats) float64 { return float64(st.Bytes) }))
		reg.GaugeFunc("optimatch_cache_entries", "Entries currently in the result cache.",
			cst(func(st cache.Stats) float64 { return float64(st.Entries) }))
		reg.GaugeFunc("optimatch_cache_hit_ratio", "Hits over all completed result-cache lookups since start.",
			cst(func(st cache.Stats) float64 { return st.HitRatio }))
	}

	const pathName = "optimatch_sparql_path_total"
	const pathHelp = "Property-path closure acceleration events by kind (CSR snapshot builds/cache hits, per-evaluation memo hits/misses)."
	reg.CounterFunc(pathName, pathHelp, func() float64 { return float64(s.eng.EvalStats().Path.CSRBuilds) }, "kind", "csr_build")
	reg.CounterFunc(pathName, pathHelp, func() float64 { return float64(s.eng.EvalStats().Path.CSRHits) }, "kind", "csr_hit")
	reg.CounterFunc(pathName, pathHelp, func() float64 { return float64(s.eng.EvalStats().Path.MemoHits) }, "kind", "memo_hit")
	reg.CounterFunc(pathName, pathHelp, func() float64 { return float64(s.eng.EvalStats().Path.MemoMisses) }, "kind", "memo_miss")
	reg.CounterFunc("optimatch_sparql_path_bfs_steps_total",
		"Edges traversed by closure BFS walks.",
		func() float64 { return float64(s.eng.EvalStats().Path.BFSSteps) })
	reg.CounterFunc("optimatch_sparql_path_bitset_bytes_total",
		"Bytes allocated for closure visited bitsets (pool misses).",
		func() float64 { return float64(s.eng.EvalStats().Path.BitsetBytes) })

	if s.st == nil {
		return
	}
	stat := func(f func(store.Stats) float64) func() float64 {
		return func() float64 { return f(s.st.Stats()) }
	}
	reg.GaugeFunc("optimatch_store_wal_records", "Records currently in the WAL.",
		stat(func(st store.Stats) float64 { return float64(st.WALRecords) }))
	reg.GaugeFunc("optimatch_store_wal_bytes", "Bytes currently in the WAL.",
		stat(func(st store.Stats) float64 { return float64(st.WALBytes) }))
	reg.GaugeFunc("optimatch_store_generation", "Snapshot compaction generation.",
		stat(func(st store.Stats) float64 { return float64(st.Generation) }))
	reg.GaugeFunc("optimatch_store_last_seq", "Newest applied log sequence number.",
		stat(func(st store.Stats) float64 { return float64(st.LastSeq) }))
	reg.CounterFunc("optimatch_store_appended_records_total", "WAL records appended since open.",
		stat(func(st store.Stats) float64 { return float64(st.AppendedRecords) }))
	reg.CounterFunc("optimatch_store_appended_bytes_total", "WAL bytes appended since open.",
		stat(func(st store.Stats) float64 { return float64(st.AppendedBytes) }))
	reg.CounterFunc("optimatch_store_recovered_records_total", "WAL records replayed at open.",
		stat(func(st store.Stats) float64 { return float64(st.RecoveredRecords) }))
	reg.CounterFunc("optimatch_store_recovery_truncations_total", "Torn WAL tails truncated at open.",
		stat(func(st store.Stats) float64 { return float64(st.RecoveryTruncations) }))
	reg.CounterFunc("optimatch_store_compactions_total", "Compactions since open.",
		stat(func(st store.Stats) float64 { return float64(st.Compactions) }))
	reg.CounterFunc("optimatch_store_fsyncs_total", "WAL fsyncs since open (one per acknowledged append).",
		stat(func(st store.Stats) float64 { return float64(st.Fsyncs) }))
	const batchStoreName = "optimatch_store_batch_appends_total"
	reg.CounterFunc(batchStoreName, "Batch WAL records appended since open.",
		stat(func(st store.Stats) float64 { return float64(st.BatchAppends) }))
	reg.CounterFunc("optimatch_store_batch_plans_total", "Plans persisted through batch records since open.",
		stat(func(st store.Stats) float64 { return float64(st.BatchPlans) }))

	reg.GaugeFunc("optimatch_store_degraded", "1 while the store is in degraded read-only mode (writes rejected, reads serving).",
		stat(func(st store.Stats) float64 {
			if st.Degraded {
				return 1
			}
			return 0
		}))
	const faultName = "optimatch_store_fault_total"
	const faultHelp = "Durability faults observed by the store, by failing operation."
	reg.CounterFunc(faultName, faultHelp,
		stat(func(st store.Stats) float64 { return float64(st.FaultWrites) }), "op", "append")
	reg.CounterFunc(faultName, faultHelp,
		stat(func(st store.Stats) float64 { return float64(st.FaultSyncs) }), "op", "fsync")
	reg.CounterFunc(faultName, faultHelp,
		stat(func(st store.Stats) float64 { return float64(st.FaultCompactions) }), "op", "compact")
	const reopenName = "optimatch_store_reopen_total"
	const reopenHelp = "Degraded-mode reopen attempts, by result."
	reg.CounterFunc(reopenName, reopenHelp,
		stat(func(st store.Stats) float64 { return float64(st.Reopens) }), "result", "ok")
	reg.CounterFunc(reopenName, reopenHelp,
		stat(func(st store.Stats) float64 { return float64(st.ReopenFailures) }), "result", "error")
}
