// Package server exposes the OptImatch engine over HTTP, mirroring the
// paper's client/server architecture (Figure 4: a web-based GUI in front of
// the transformation engine; Section 3.2.1 explicitly discusses
// client-server communication). The API is JSON-first:
//
//	GET    /healthz                  liveness
//	GET    /readyz                   readiness: ok | degraded | closed (store write path)
//	GET    /api/plans                loaded plans (id, operators, total cost)
//	POST   /api/plans                upload an explain file (text/plain body)
//	POST   /api/plans:batch          batch upload (NDJSON, per-record outcomes)
//	DELETE /api/plans/{id}           unload a plan (404 if unknown)
//	GET    /api/plans/{id}/render    the ASCII plan graph
//	GET    /api/plans/{id}/rdf       the plan's RDF as N-Triples
//	POST   /api/search               match a pattern (JSON body, Figure 5 form)
//	POST   /api/sparql               run a raw SPARQL query (text body)
//	GET    /api/kb                   knowledge-base entries
//	POST   /api/kb/entries           add an entry {pattern, recommendations}
//	DELETE /api/kb/entries/{name}    remove an entry (404 if unknown)
//	POST   /api/kb/run               scan all plans, ranked recommendations
//	GET    /api/stats                engine + store counters
//	POST   /api/admin/compact        fold the durable store's WAL into a snapshot
//	POST   /api/admin/reopen         re-verify the disk and leave degraded mode
//
// When constructed with WithStore, plan uploads/deletions and
// knowledge-base mutations write through the durable store, so the served
// state survives a restart. If the store degrades (a WAL append or
// compaction failed), writes answer 503 with Retry-After while reads and
// cache hits keep serving; GET /readyz reports the state and POST
// /api/admin/reopen recovers once the disk is healthy again.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"optimatch/internal/cache"
	"optimatch/internal/core"
	"optimatch/internal/kb"
	"optimatch/internal/obs"
	"optimatch/internal/pattern"
	"optimatch/internal/qep"
	"optimatch/internal/rdf"
	"optimatch/internal/sparql"
	"optimatch/internal/store"
)

// maxBodyBytes bounds uploaded explain files and queries.
const maxBodyBytes = 16 << 20

// Server wires an engine and a knowledge base behind an http.Handler.
type Server struct {
	eng *core.Engine
	st  *store.Store // nil when running in-memory only

	log     *slog.Logger  // nil: no access logging
	metrics *obs.Registry // nil: no /metrics endpoint
	slow    time.Duration // 0: no slow-request log line
	maxBody int64

	queryTimeout time.Duration   // 0: engine executions run without a deadline
	adm          *admission      // nil: no admission gate
	baseCtx      context.Context // nil: shutdown indistinguishable from disconnect
	exec         execCounters
	cache        *cache.Cache // nil: responses render per request (see cache.go)

	batchMaxRecords int   // NDJSON records per batch (see batch.go)
	batchMaxBytes   int64 // request-body bytes per batch
	batch           batchCounters

	// mu guards kb access: mutation handlers hold the write lock (also
	// around write-through store calls), read handlers the read lock.
	// Scans that outlive the lock work on a kb.Snapshot.
	mu sync.RWMutex
	kb *kb.KnowledgeBase
}

// Option configures a Server.
type Option func(*Server)

// WithStore routes every mutation through the durable store. The engine
// and knowledge base passed to New must be the store's own (store.Engine,
// store.KB) so that served and journaled state are one and the same.
func WithStore(st *store.Store) Option {
	return func(s *Server) { s.st = st }
}

// WithLogger enables the structured access log (one line per request,
// tagged with the request ID) on the given logger.
func WithLogger(log *slog.Logger) Option {
	return func(s *Server) { s.log = log }
}

// WithMetrics serves the registry at GET /metrics and instruments every
// route with request counters and latency histograms. The registry is
// usually the same one wired into the engine via EngineInstrumentation and
// the store via StoreInstrumentation, so one scrape covers every layer.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Server) { s.metrics = reg }
}

// WithSlowThreshold logs a WARN line for any request that takes at least d
// (requires WithLogger; 0 disables).
func WithSlowThreshold(d time.Duration) Option {
	return func(s *Server) { s.slow = d }
}

// WithMaxBody overrides the request-body size limit (default 16 MiB).
// Oversized bodies are rejected with 413 Request Entity Too Large.
func WithMaxBody(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// WithQueryTimeout bounds every engine execution (search, SPARQL, kb/run)
// to d. Executions that hit the deadline return 504 Gateway Timeout. A
// client can shorten — never extend — the deadline per request with an
// X-Timeout-Ms header. 0 disables the deadline.
func WithQueryTimeout(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.queryTimeout = d
		}
	}
}

// WithAdmission caps concurrently admitted scan work at maxInflight
// weighted units (search and SPARQL cost 1, a kb/run full scan 2).
// Requests over the cap wait FIFO for at most queueWait, then are shed
// with 503 + Retry-After. maxInflight <= 0 disables the gate.
func WithAdmission(maxInflight int, queueWait time.Duration) Option {
	return func(s *Server) {
		if maxInflight <= 0 {
			return
		}
		if queueWait <= 0 {
			queueWait = time.Nanosecond // queue disabled: shed immediately
		}
		s.adm = &admission{sem: newSemaphore(int64(maxInflight)), queueWait: queueWait}
	}
}

// WithBaseContext tells the server which context its http.Server derives
// request contexts from (wire the same context into
// http.Server.BaseContext). When engine work is cancelled, the server
// checks this context to tell daemon shutdown (503 + Retry-After, the
// connection is still open) apart from a client disconnect (499, nobody is
// listening).
func WithBaseContext(ctx context.Context) Option {
	return func(s *Server) { s.baseCtx = ctx }
}

// New returns a server over the given engine and knowledge base. A nil
// knowledge base starts with the canonical expert patterns.
func New(eng *core.Engine, base *kb.KnowledgeBase, opts ...Option) *Server {
	if base == nil {
		base = kb.MustCanonical()
	}
	s := &Server{
		eng: eng, kb: base, maxBody: maxBodyBytes,
		batchMaxRecords: defaultBatchMaxRecords,
		batchMaxBytes:   defaultBatchMaxBytes,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /api/plans", s.handleListPlans)
	mux.HandleFunc("POST /api/plans", s.handleUploadPlan)
	// Batch ingest runs under the admission gate at the weight of a full
	// scan: one batch can move as much data as many single uploads.
	mux.HandleFunc("POST /api/plans:batch", s.gated(2, s.handleBatchUpload))
	mux.HandleFunc("DELETE /api/plans/{id}", s.handleDeletePlan)
	mux.HandleFunc("GET /api/plans/{id}/render", s.handleRenderPlan)
	mux.HandleFunc("GET /api/plans/{id}/rdf", s.handlePlanRDF)
	// The three exec routes run engine scans: they share the admission
	// gate, with a full knowledge-base scan weighing twice a point query.
	mux.HandleFunc("POST /api/search", s.gated(1, s.handleSearch))
	mux.HandleFunc("POST /api/sparql", s.gated(1, s.handleSPARQL))
	mux.HandleFunc("GET /api/kb", s.handleListKB)
	mux.HandleFunc("POST /api/kb/entries", s.handleAddEntry)
	mux.HandleFunc("DELETE /api/kb/entries/{name}", s.handleDeleteEntry)
	mux.HandleFunc("POST /api/kb/run", s.gated(2, s.handleRunKB))
	mux.HandleFunc("GET /api/stats", s.handleStats)
	mux.HandleFunc("POST /api/admin/compact", s.handleCompact)
	mux.HandleFunc("POST /api/admin/reopen", s.handleReopen)
	if s.metrics != nil {
		mux.Handle("GET /metrics", s.metrics.Handler())
		s.registerStateMetrics()
	}
	return s.withObservability(mux)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // network write errors are the client's problem
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// readBody reads the request body under the configured size limit. The real
// ResponseWriter goes to MaxBytesReader so oversized requests also close the
// connection instead of leaving the unread tail to stall keep-alive.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) (string, error) {
	data, err := readBodyLimited(w, r, s.maxBody)
	return string(data), err
}

// readBodyLimited is readBody under an explicit limit (the batch route has
// its own, separate from the per-plan cap).
func readBodyLimited(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	return data, nil
}

// bodyErrStatus maps a readBody failure to its status: an oversized body is
// the client's 413, anything else a plain 400.
func bodyErrStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// planInfo is the list representation of a loaded plan.
type planInfo struct {
	ID        string  `json:"id"`
	Operators int     `json:"operators"`
	TotalCost float64 `json:"totalCost"`
	Statement string  `json:"statement,omitempty"`
}

func (s *Server) handleListPlans(w http.ResponseWriter, _ *http.Request) {
	plans := s.eng.Plans()
	out := make([]planInfo, 0, len(plans))
	for _, p := range plans {
		out = append(out, planInfo{ID: p.ID, Operators: p.NumOps(), TotalCost: p.TotalCost, Statement: p.Statement})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleUploadPlan(w http.ResponseWriter, r *http.Request) {
	body, err := s.readBody(w, r)
	if err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	var p *qep.Plan
	if s.st != nil {
		p, err = s.st.AddPlan(body)
	} else {
		p, err = s.eng.LoadText(body)
	}
	if err != nil {
		// A duplicate ID is a conflict with served state, not a malformed
		// plan: 409 lets idempotent re-uploads (the optimatchd -load path)
		// distinguish "already there" from "rejected".
		if errors.Is(err, core.ErrDuplicatePlan) {
			writeError(w, http.StatusConflict, err)
			return
		}
		s.writeStoreError(w, err, http.StatusUnprocessableEntity)
		return
	}
	writeJSON(w, http.StatusCreated, planInfo{ID: p.ID, Operators: p.NumOps(), TotalCost: p.TotalCost})
}

func (s *Server) handleDeletePlan(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var (
		ok  bool
		err error
	)
	if s.st != nil {
		ok, err = s.st.RemovePlan(id)
	} else {
		ok = s.eng.RemovePlan(id)
	}
	if err != nil {
		s.writeStoreError(w, err, http.StatusInternalServerError)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("plan %q not loaded", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) plan(w http.ResponseWriter, r *http.Request) *qep.Plan {
	id := r.PathValue("id")
	p := s.eng.Plan(id)
	if p == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("plan %q not loaded", id))
	}
	return p
}

func (s *Server) handleRenderPlan(w http.ResponseWriter, r *http.Request) {
	p := s.plan(w, r)
	if p == nil {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, qep.Render(p))
}

func (s *Server) handlePlanRDF(w http.ResponseWriter, r *http.Request) {
	// Serve the engine's own transformed graph: no O(plan) re-transform per
	// GET, and the bytes are exactly the graph matches run against (a fresh
	// Transform could differ in blank-node labels). The generation is read
	// before the plan lookup so the ETag never claims a newer state than
	// the graph about to be serialized.
	id := r.PathValue("id")
	gen := s.eng.Generation()
	res := s.eng.Result(id)
	if res == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("plan %q not loaded", id))
		return
	}
	etag := planETag(id, gen)
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("ETag", etag)
	ctx := cacheContext(r.Context(), r)
	key := cache.Key("http.rdf", genToken(gen), id)
	s.serveCached(w, r, ctx, key, gen, "application/n-triples", http.StatusInternalServerError,
		func(context.Context) ([]byte, error) {
			var buf bytes.Buffer
			if err := rdf.WriteNTriples(&buf, res.Graph); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		})
}

// matchBody is the wire form of one match.
type matchBody struct {
	Plan     string            `json:"plan"`
	Bindings map[string]string `json:"bindings"` // alias -> display name
}

func matchesToWire(ms []core.Match) []matchBody {
	out := make([]matchBody, 0, len(ms))
	for _, m := range ms {
		mb := matchBody{Plan: m.Plan.ID, Bindings: make(map[string]string, len(m.Bindings))}
		for _, b := range m.Bindings {
			mb.Bindings[b.Alias] = b.Display
		}
		out = append(out, mb)
	}
	return out
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	body, err := s.readBody(w, r)
	if err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	p, err := pattern.FromJSON([]byte(body))
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	// Compile here (FindPatternContext would otherwise do it) so the cache
	// key names the canonical compiled query, not the JSON spelling: two
	// bodies that compile identically share one entry.
	c, err := pattern.Compile(p)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	ctx, cancel, err := s.execContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	ctx = cacheContext(ctx, r)
	gen := s.eng.Generation()
	key := cache.Key("http.search", genToken(gen), p.Name, c.Query)
	s.serveCached(w, r, ctx, key, gen, "application/json", http.StatusUnprocessableEntity,
		func(fctx context.Context) ([]byte, error) {
			matches, err := s.eng.FindCompiledContext(fctx, c)
			if err != nil {
				return nil, err
			}
			return encodeJSON(map[string]interface{}{
				"pattern": p.Name,
				"matches": matchesToWire(matches),
			})
		})
}

func (s *Server) handleSPARQL(w http.ResponseWriter, r *http.Request) {
	query, err := s.readBody(w, r)
	if err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	if strings.TrimSpace(query) == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty query"))
		return
	}
	ctx, cancel, err := s.execContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	ctx = cacheContext(ctx, r)
	gen := s.eng.Generation()
	key := cache.Key("http.sparql", genToken(gen), query)
	s.serveCached(w, r, ctx, key, gen, "application/json", http.StatusUnprocessableEntity,
		func(fctx context.Context) ([]byte, error) {
			matches, err := s.eng.FindSPARQLContext(fctx, query)
			if err != nil {
				return nil, err
			}
			return encodeJSON(map[string]interface{}{"matches": matchesToWire(matches)})
		})
}

// entryInfo is the list representation of a knowledge-base entry.
type entryInfo struct {
	Name            string `json:"name"`
	Description     string `json:"description,omitempty"`
	Recommendations int    `json:"recommendations"`
}

func (s *Server) handleListKB(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]entryInfo, 0, s.kb.Len())
	for _, e := range s.kb.Entries() {
		out = append(out, entryInfo{Name: e.Name, Description: e.Description, Recommendations: len(e.Recommendations)})
	}
	writeJSON(w, http.StatusOK, out)
}

// addEntryRequest is the POST /api/kb/entries body.
type addEntryRequest struct {
	Pattern         *pattern.Pattern    `json:"pattern"`
	Recommendations []kb.Recommendation `json:"recommendations"`
}

func (s *Server) handleAddEntry(w http.ResponseWriter, r *http.Request) {
	body, err := s.readBody(w, r)
	if err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	var req addEntryRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding entry: %w", err))
		return
	}
	if req.Pattern == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("entry needs a pattern"))
		return
	}
	s.mu.Lock()
	var entry *kb.Entry
	if s.st != nil {
		entry, err = s.st.AddEntry(req.Pattern, req.Recommendations...)
	} else {
		entry, err = s.kb.Add(req.Pattern, req.Recommendations...)
	}
	s.mu.Unlock()
	if err != nil {
		s.writeStoreError(w, err, http.StatusUnprocessableEntity)
		return
	}
	writeJSON(w, http.StatusCreated, entryInfo{Name: entry.Name, Description: entry.Description, Recommendations: len(entry.Recommendations)})
}

func (s *Server) handleDeleteEntry(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	var (
		ok  bool
		err error
	)
	if s.st != nil {
		ok, err = s.st.RemoveEntry(name)
	} else {
		ok = s.kb.Remove(name)
	}
	s.mu.Unlock()
	if err != nil {
		s.writeStoreError(w, err, http.StatusInternalServerError)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("kb entry %q not found", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// recBody is the wire form of one ranked recommendation.
type recBody struct {
	Entry      string  `json:"entry"`
	Title      string  `json:"title"`
	Category   string  `json:"category,omitempty"`
	Confidence float64 `json:"confidence"`
	Text       string  `json:"text"`
}

// reportBody is the wire form of one plan report.
type reportBody struct {
	Plan            string    `json:"plan"`
	Message         string    `json:"message"`
	Recommendations []recBody `json:"recommendations,omitempty"`
}

func (s *Server) handleRunKB(w http.ResponseWriter, r *http.Request) {
	// Scan a point-in-time snapshot: the entry list is fixed here, so a
	// concurrent POST /api/kb/entries cannot race the walk below.
	s.mu.RLock()
	base := s.kb.Snapshot()
	s.mu.RUnlock()
	ctx, cancel, err := s.execContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	ctx = cacheContext(ctx, r)
	gen := s.eng.Generation()
	// The snapshot's cache key pins the exact entry list, so a concurrent
	// KB mutation changes the key rather than racing the scan.
	key := cache.Key("http.kbrun", genToken(gen), base.CacheKey())
	s.serveCached(w, r, ctx, key, gen, "application/json", http.StatusInternalServerError,
		func(fctx context.Context) ([]byte, error) {
			reports, err := s.eng.RunKBContext(fctx, base)
			if err != nil {
				return nil, err
			}
			out := make([]reportBody, 0, len(reports))
			for i := range reports {
				rb := reportBody{Plan: reports[i].Plan.ID, Message: reports[i].Message()}
				for _, rec := range reports[i].Recommendations {
					rb.Recommendations = append(rb.Recommendations, recBody{
						Entry:      rec.Entry.Name,
						Title:      rec.Recommendation.Title,
						Category:   rec.Recommendation.Category,
						Confidence: rec.Confidence,
						Text:       rec.Text,
					})
				}
				out = append(out, rb)
			}
			return encodeJSON(out)
		})
}

// statsBody is the GET /api/stats response. New counter groups are only
// ever added — existing fields never change shape, so old clients keep
// decoding it.
type statsBody struct {
	Plans      int                 `json:"plans"`
	KBEntries  int                 `json:"kbEntries"`
	Prefilter  core.PrefilterStats `json:"prefilter"`
	QueryCache core.CacheStats     `json:"queryCache"`
	Eval       sparql.EvalSnapshot `json:"eval"`
	Exec       ExecStats           `json:"exec"`
	Batch      BatchStats          `json:"batch"`
	Shards     []core.ShardStat    `json:"shards,omitempty"` // per-shard plan-store state
	Cache      *cache.Stats        `json:"cache,omitempty"`  // nil without -cache-bytes
	Store      *store.Stats        `json:"store,omitempty"`  // nil without -data
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	entries := s.kb.Len()
	s.mu.RUnlock()
	body := statsBody{
		Plans:      s.eng.NumPlans(),
		KBEntries:  entries,
		Prefilter:  s.eng.PrefilterStats(),
		QueryCache: s.eng.CacheStats(),
		Eval:       s.eng.EvalStats(),
		Exec:       s.exec.snapshot(),
		Batch:      s.batch.snapshot(),
		Shards:     s.eng.ShardStats(),
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		body.Cache = &cs
	}
	if s.st != nil {
		st := s.st.Stats()
		body.Store = &st
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleCompact(w http.ResponseWriter, _ *http.Request) {
	if s.st == nil {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("no durable store configured (start optimatchd with -data)"))
		return
	}
	if err := s.st.Compact(); err != nil {
		s.writeStoreError(w, err, http.StatusInternalServerError)
		return
	}
	st := s.st.Stats()
	writeJSON(w, http.StatusOK, st)
}
