// Degraded-mode handling: when the durable store observes a disk failure
// it stops accepting writes (store.ErrDegraded) while reads stay correct.
// The server keeps the distinction visible: the write path answers 503
// with Retry-After (the client did nothing wrong, retry after the operator
// or a reopen fixes the disk), GET /readyz reports the state machine for
// load balancers and probes, and POST /api/admin/reopen drives the
// recovery transition.
package server

import (
	"errors"
	"fmt"
	"net/http"

	"optimatch/internal/store"
)

// degradedRetryAfter is the Retry-After value on writes rejected while the
// store is degraded. Recovery needs an operator (or an automated reopen)
// to fix the disk, so the hint is a polling interval, not an estimate.
const degradedRetryAfter = "10"

// writeStoreError maps a failed durable mutation to its status: a degraded
// store is an explicit 503 + Retry-After (the server is up, the disk is
// not), and that includes the persistence failure that just *caused* the
// degradation — the client's write did not commit and retrying after a
// reopen is the correct move either way. Persistence failures that left
// the store writable and a closed store are 500s; anything else is the
// caller's fallback (typically a 4xx validation status).
func (s *Server) writeStoreError(w http.ResponseWriter, err error, fallback int) {
	status := fallback
	switch {
	case errors.Is(err, store.ErrDegraded),
		errors.Is(err, store.ErrPersist) && s.st != nil && s.st.Health().State == store.HealthDegraded:
		w.Header().Set("Retry-After", degradedRetryAfter)
		status = http.StatusServiceUnavailable
	case errors.Is(err, store.ErrPersist) || errors.Is(err, store.ErrClosed):
		status = http.StatusInternalServerError
	}
	writeError(w, status, err)
}

// readyzBody is the GET /readyz response.
type readyzBody struct {
	Status string `json:"status"` // ok | degraded | closed
	Reason string `json:"reason,omitempty"`
}

// handleReadyz reports write-path readiness, distinct from /healthz
// liveness: a degraded daemon is alive (reads and cached responses still
// serve) but not ready for traffic that mutates state. Degraded and closed
// states answer 503 so load balancers drain writes without killing the
// process.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.st == nil {
		writeJSON(w, http.StatusOK, readyzBody{Status: store.HealthOK})
		return
	}
	h := s.st.Health()
	status := http.StatusOK
	if h.State != store.HealthOK {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", degradedRetryAfter)
	}
	writeJSON(w, status, readyzBody{Status: h.State, Reason: h.Reason})
}

// reopenBody is the POST /api/admin/reopen response.
type reopenBody struct {
	Health store.Health `json:"health"`
	Stats  store.Stats  `json:"stats"`
}

// handleReopen re-verifies the store's on-disk tail and, when it checks
// out (or was repaired), returns the daemon to accepting writes. A healthy
// store reopens as a no-op, so the endpoint is safe to retry.
func (s *Server) handleReopen(w http.ResponseWriter, _ *http.Request) {
	if s.st == nil {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("no durable store configured (start optimatchd with -data)"))
		return
	}
	if err := s.st.Reopen(); err != nil {
		// Still degraded: the disk failed again during re-verification.
		w.Header().Set("Retry-After", degradedRetryAfter)
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, reopenBody{Health: s.st.Health(), Stats: s.st.Stats()})
}
