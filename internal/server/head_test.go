package server

import (
	"net/http"
	"strconv"
	"testing"
)

// TestHeadMatchesGetForPlanRDF is the HEAD conformance test for
// /api/plans/{id}/rdf: a HEAD answers with the same status, ETag, X-Cache,
// Content-Type and Content-Length a GET would — including 304 revalidation —
// but never writes a body.
func TestHeadMatchesGetForPlanRDF(t *testing.T) {
	_, ts, _ := cachedTestServer(t)
	url := ts.URL + "/api/plans/Q2/rdf"

	// Cold GET fills the cache and yields the reference headers and body.
	getResp, getBody := cacheReq(t, "GET", url, "", nil)
	if getResp.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d", getResp.StatusCode)
	}
	etag := getResp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("GET without ETag")
	}
	if got := getResp.Header.Get("Content-Length"); got != strconv.Itoa(len(getBody)) {
		t.Fatalf("GET Content-Length = %q, body is %d bytes", got, len(getBody))
	}

	// HEAD after the warm-up: identical headers, hit in the cache, no body.
	headResp, headBody := cacheReq(t, "HEAD", url, "", nil)
	if headResp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD status = %d", headResp.StatusCode)
	}
	if headBody != "" {
		t.Fatalf("HEAD wrote a %d-byte body", len(headBody))
	}
	for _, h := range []string{"ETag", "Content-Type", "Content-Length", "X-Cache"} {
		want := getResp.Header.Get(h)
		if h == "X-Cache" {
			want = "hit" // the GET warmed the cache
		}
		if got := headResp.Header.Get(h); got != want {
			t.Errorf("HEAD %s = %q, want %q", h, got, want)
		}
	}

	// Conditional HEAD revalidates exactly like a conditional GET: 304 with
	// the ETag, no body.
	for _, method := range []string{"GET", "HEAD"} {
		resp, body := cacheReq(t, method, url, "", map[string]string{"If-None-Match": etag})
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("conditional %s status = %d, want 304", method, resp.StatusCode)
		}
		if body != "" {
			t.Fatalf("conditional %s wrote a body", method)
		}
		if got := resp.Header.Get("ETag"); got != etag {
			t.Fatalf("conditional %s ETag = %q, want %q", method, got, etag)
		}
	}

	// A HEAD for an unknown plan is the same 404 a GET gets.
	resp, _ := cacheReq(t, "HEAD", ts.URL+"/api/plans/NOPE/rdf", "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("HEAD unknown plan status = %d, want 404", resp.StatusCode)
	}
}

// TestHeadOnColdCache: a HEAD that misses the cache still renders (to learn
// the length) but sends no body, and files the entry for a later GET.
func TestHeadOnColdCache(t *testing.T) {
	_, ts, _ := cachedTestServer(t)
	url := ts.URL + "/api/plans/Q9/rdf"

	headResp, headBody := cacheReq(t, "HEAD", url, "", nil)
	if headResp.StatusCode != http.StatusOK || headBody != "" {
		t.Fatalf("cold HEAD: status %d, body %d bytes", headResp.StatusCode, len(headBody))
	}
	if got := headResp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("cold HEAD X-Cache = %q, want miss", got)
	}
	cl, err := strconv.Atoi(headResp.Header.Get("Content-Length"))
	if err != nil || cl <= 0 {
		t.Fatalf("cold HEAD Content-Length = %q", headResp.Header.Get("Content-Length"))
	}

	getResp, getBody := cacheReq(t, "GET", url, "", nil)
	if got := getResp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("GET after HEAD X-Cache = %q, want hit (HEAD should warm the cache)", got)
	}
	if len(getBody) != cl {
		t.Fatalf("GET body is %d bytes, HEAD promised %d", len(getBody), cl)
	}
}
