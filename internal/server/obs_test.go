package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"optimatch/internal/core"
	"optimatch/internal/fixtures"
	"optimatch/internal/obs"
	"optimatch/internal/qep"
	"optimatch/internal/rdf"
	"optimatch/internal/store"
)

// doReq issues one request and returns the status code.
func doReq(t *testing.T, method, url, body string) int {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// TestStatusCodes pins the API's error contract across every failure class:
// oversized body -> 413, duplicate plan -> 409, unknown resource -> 404,
// invalid payload -> 422, durability failure -> 500.
func TestStatusCodes(t *testing.T) {
	eng := core.New()
	if err := eng.LoadPlans(fixtures.All()); err != nil {
		t.Fatal(err)
	}
	s := New(eng, nil, WithMaxBody(4<<10))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// A store-backed server whose store is closed under it: every durable
	// mutation hits store.ErrClosed, the 500 class.
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	closedTS := httptest.NewServer(New(st.Engine(), st.KB(), WithStore(st)).Handler())
	t.Cleanup(closedTS.Close)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	q2 := qep.Text(fixtures.All()[0])
	oversized := strings.Repeat("x", 8<<10)
	tests := []struct {
		name   string
		method string
		base   *httptest.Server
		path   string
		body   string
		want   int
	}{
		{"oversized plan upload", "POST", ts, "/api/plans", oversized, http.StatusRequestEntityTooLarge},
		{"oversized search", "POST", ts, "/api/search", oversized, http.StatusRequestEntityTooLarge},
		{"oversized sparql", "POST", ts, "/api/sparql", oversized, http.StatusRequestEntityTooLarge},
		{"oversized kb entry", "POST", ts, "/api/kb/entries", oversized, http.StatusRequestEntityTooLarge},
		{"duplicate plan", "POST", ts, "/api/plans", q2, http.StatusConflict},
		{"unknown plan delete", "DELETE", ts, "/api/plans/GHOST", "", http.StatusNotFound},
		{"unknown plan rdf", "GET", ts, "/api/plans/GHOST/rdf", "", http.StatusNotFound},
		{"unknown kb entry delete", "DELETE", ts, "/api/kb/entries/ghost", "", http.StatusNotFound},
		{"garbage plan", "POST", ts, "/api/plans", "not a plan", http.StatusUnprocessableEntity},
		{"garbage sparql", "POST", ts, "/api/sparql", "nonsense", http.StatusUnprocessableEntity},
		{"closed store upload", "POST", closedTS, "/api/plans", q2, http.StatusInternalServerError},
		{"closed store kb delete", "DELETE", closedTS, "/api/kb/entries/loj-both-sides", "", http.StatusInternalServerError},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := doReq(t, tc.method, tc.base.URL+tc.path, tc.body); got != tc.want {
				t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, got, tc.want)
			}
		})
	}
	// The oversized rejections must not have loaded anything.
	if got := eng.NumPlans(); got != len(fixtures.All()) {
		t.Errorf("plans after rejected uploads = %d", got)
	}
}

// TestDuplicatePlanConflictWithStore pins 409 on the durable path too — the
// same sentinel the optimatchd -load/-data restart loop keys on.
func TestDuplicatePlanConflictWithStore(t *testing.T) {
	_, ts := storeServer(t, t.TempDir())
	q2 := qep.Text(fixtures.All()[0])
	postBody(t, ts.URL+"/api/plans", q2, http.StatusCreated, nil)
	postBody(t, ts.URL+"/api/plans", q2, http.StatusConflict, nil)
	// 409 left the plan served and intact.
	var plans []planInfo
	getJSON(t, ts.URL+"/api/plans", http.StatusOK, &plans)
	if len(plans) != 1 {
		t.Errorf("plans after conflict = %d, want 1", len(plans))
	}
}

// TestPlanRDFServedFromEngineCache pins the /api/plans/{id}/rdf fix: the
// endpoint serves the engine's own transformed graph, so repeated GETs are
// byte-identical and match exactly what the matcher evaluates against.
func TestPlanRDFServedFromEngineCache(t *testing.T) {
	eng := core.New()
	if err := eng.LoadPlans(fixtures.All()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, nil).Handler())
	t.Cleanup(ts.Close)

	get := func() []byte {
		resp, err := http.Get(ts.URL + "/api/plans/Q2/rdf")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	first, second := get(), get()
	if !bytes.Equal(first, second) {
		t.Error("repeated GETs returned different N-Triples")
	}
	// And they are the engine's graph, not a re-transformation.
	var engineGraph bytes.Buffer
	if err := rdf.WriteNTriples(&engineGraph, eng.Result("Q2").Graph); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, engineGraph.Bytes()) {
		t.Error("served RDF differs from the engine's cached graph")
	}
}

// metricValue extracts the value of one exposition line by exact series
// match ("name{labels}" or bare "name"), or -1 if absent. Label values may
// contain spaces, so match by prefix rather than cutting at the first space.
func metricValue(t *testing.T, exposition, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		value, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			t.Fatalf("series %s has malformed value %q", series, value)
		}
		return v
	}
	return -1
}

// TestMetricsEndToEnd drives upload -> search -> kb/run -> delete against a
// fully instrumented store-backed server and asserts the counters and
// histograms of every layer moved, and that the exposition parses.
func TestMetricsEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	st, err := store.Open(dir,
		store.WithEngineOptions(core.WithInstrumentation(EngineInstrumentation(reg))),
		store.WithInstrumentation(StoreInstrumentation(reg)),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ts := httptest.NewServer(New(st.Engine(), st.KB(), WithStore(st), WithMetrics(reg)).Handler())
	t.Cleanup(ts.Close)

	for _, p := range fixtures.All() {
		postBody(t, ts.URL+"/api/plans", qep.Text(p), http.StatusCreated, nil)
	}
	query := `PREFIX preduri: <http://optimatch/pred/>
SELECT ?s WHERE { ?s preduri:hasPopType "SORT" }`
	postBody(t, ts.URL+"/api/sparql", query, http.StatusOK, nil)
	postBody(t, ts.URL+"/api/kb/run", "", http.StatusOK, nil)
	doDelete(t, ts.URL+"/api/plans/Q9", http.StatusOK)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)

	// Every non-comment line must be valid exposition format.
	// Label values may themselves contain spaces and braces (route patterns
	// like "DELETE /api/plans/{id}"), so the label block is matched greedily.
	line := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.+\})? -?[0-9+.eInf-]+$`)
	for _, l := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		if !line.MatchString(l) {
			t.Errorf("malformed exposition line: %q", l)
		}
	}

	// One series per layer must have moved: HTTP, core scan stages, sparql
	// evaluator, prefilter, store.
	positive := []string{
		`optimatch_http_requests_total{route="POST /api/plans",method="POST",class="2xx"}`,
		`optimatch_http_request_seconds_count{route="POST /api/kb/run"}`,
		`optimatch_core_plan_match_seconds_count`,
		`optimatch_core_kb_scan_seconds_count`,
		`optimatch_core_search_seconds_count`,
		`optimatch_core_pool_tasks_total`,
		`optimatch_core_plans_loaded`,
		`optimatch_core_query_cache_total{result="miss"}`,
		`optimatch_sparql_eval_total{path="specialized"}`,
		// The canonical KB patterns use descendant (`hasChildPop+`) paths,
		// so a kb/run must build CSR snapshots and run closure BFS walks.
		`optimatch_sparql_path_total{kind="csr_build"}`,
		`optimatch_sparql_path_total{kind="memo_miss"}`,
		`optimatch_sparql_path_bfs_steps_total`,
		`optimatch_sparql_path_bitset_bytes_total`,
		`optimatch_core_prefilter_pairs_total{outcome="passed"}`,
		`optimatch_store_wal_fsync_seconds_count`,
		`optimatch_store_appended_records_total`,
		`optimatch_kb_entries`,
	}
	for _, series := range positive {
		if v := metricValue(t, out, series); v <= 0 {
			t.Errorf("series %s = %v, want > 0", series, v)
		}
	}
	// The delete left 4 of 5 plans.
	if v := metricValue(t, out, "optimatch_core_plans_loaded"); v != 4 {
		t.Errorf("optimatch_core_plans_loaded = %v, want 4", v)
	}
	// The prefilter probed pairs during kb/run: probed = passed + skipped.
	stats := st.Engine().PrefilterStats()
	if stats.Probed == 0 {
		t.Error("prefilter probed nothing during kb/run")
	}

	// Request IDs are minted and echoed.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get("X-Request-ID") == "" {
		t.Error("response missing X-Request-ID")
	}
}

// TestAccessLogAndSlowRequests asserts the middleware writes one structured
// line per request and a WARN line past the slow threshold.
func TestAccessLogAndSlowRequests(t *testing.T) {
	var buf bytes.Buffer
	log := obs.NewLogger(&buf, 0 /* info */, "json")
	eng := core.New()
	if err := eng.LoadPlans(fixtures.All()); err != nil {
		t.Fatal(err)
	}
	// Threshold of 0 disables slow logging; 1ns flags everything.
	ts := httptest.NewServer(New(eng, nil, WithLogger(log), WithSlowThreshold(1)).Handler())
	t.Cleanup(ts.Close)

	getJSON(t, ts.URL+"/api/plans", http.StatusOK, nil)
	out := buf.String()
	for _, want := range []string{
		`"msg":"request"`, `"route":"GET /api/plans"`, `"status":200`, `"request_id"`,
		`"msg":"slow request"`, `"level":"WARN"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("access log missing %s:\n%s", want, out)
		}
	}
	// Client-supplied request IDs are honored end to end.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "client-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-abc-123" {
		t.Errorf("X-Request-ID = %q, want client-abc-123", got)
	}
	if !strings.Contains(buf.String(), `"request_id":"client-abc-123"`) {
		t.Error("client request ID missing from access log")
	}
}

// TestStatsGainsObservabilityCounters pins the backward-compatible /api/stats
// extension: the original fields survive and the new counter groups appear.
func TestStatsGainsObservabilityCounters(t *testing.T) {
	_, ts := testServer(t)
	postBody(t, ts.URL+"/api/kb/run", "", http.StatusOK, nil)
	postBody(t, ts.URL+"/api/kb/run", "", http.StatusOK, nil)
	var stats statsBody
	getJSON(t, ts.URL+"/api/stats", http.StatusOK, &stats)
	if stats.Plans != 5 || stats.KBEntries != 4 {
		t.Errorf("legacy stats fields broken: %+v", stats)
	}
	if stats.QueryCache.Misses == 0 {
		t.Errorf("queryCache misses = 0 after kb/run: %+v", stats.QueryCache)
	}
	if stats.QueryCache.Hits == 0 {
		t.Errorf("queryCache hits = 0 after second kb/run: %+v", stats.QueryCache)
	}
	if stats.Eval.Specialized == 0 {
		t.Errorf("eval.specialized = 0 after kb/run: %+v", stats.Eval)
	}
	// The canonical KB descendant patterns run closures: the first kb/run
	// builds CSR snapshots, the second is served from the per-graph cache.
	if p := stats.Eval.Path; p.CSRBuilds == 0 || p.CSRHits == 0 || p.MemoMisses == 0 || p.BFSSteps == 0 {
		t.Errorf("eval.path counters did not move: %+v", stats.Eval.Path)
	}
}
