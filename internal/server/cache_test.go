package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"optimatch/internal/cache"
	"optimatch/internal/core"
	"optimatch/internal/fixtures"
	"optimatch/internal/obs"
	"optimatch/internal/pattern"
)

const sortQuery = `PREFIX preduri: <http://optimatch/pred/>
SELECT ?s WHERE { ?s preduri:hasPopType "SORT" }`

// cachedTestServer builds a server whose engine and response layer share
// one result cache, mirroring the optimatchd wiring.
func cachedTestServer(t *testing.T, opts ...Option) (*Server, *httptest.Server, *cache.Cache) {
	t.Helper()
	c := cache.New(cache.Config{MaxBytes: 16 << 20})
	eng := core.New(core.WithResultCache(c))
	if err := eng.LoadPlans(fixtures.All()); err != nil {
		t.Fatal(err)
	}
	s := New(eng, nil, append([]Option{WithResultCache(c)}, opts...)...)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, c
}

// cacheReq issues one request and returns the response (body fully read
// into a string, connection closed).
func cacheReq(t *testing.T, method, url, body string, hdr map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func TestXCacheMissThenHit(t *testing.T) {
	_, ts, _ := cachedTestServer(t)

	resp, first := cacheReq(t, "POST", ts.URL+"/api/sparql", sortQuery, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first X-Cache = %q, want miss", got)
	}
	resp, second := cacheReq(t, "POST", ts.URL+"/api/sparql", sortQuery, nil)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second X-Cache = %q, want hit", got)
	}
	if first != second {
		t.Fatalf("cached body differs:\n%s\nvs\n%s", first, second)
	}
}

func TestXCacheBypassHeader(t *testing.T) {
	_, ts, c := cachedTestServer(t)

	noCache := map[string]string{"Cache-Control": "no-cache"}
	resp, first := cacheReq(t, "POST", ts.URL+"/api/sparql", sortQuery, noCache)
	if got := resp.Header.Get("X-Cache"); got != "bypass" {
		t.Fatalf("X-Cache = %q, want bypass", got)
	}
	if st := c.Stats(); st.Hits+st.Misses != 0 {
		t.Fatalf("bypassed request touched the cache: %+v", st)
	}
	// The bypass is per-request: the next plain request misses, executes
	// and returns the same bytes.
	resp, second := cacheReq(t, "POST", ts.URL+"/api/sparql", sortQuery, nil)
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache = %q, want miss", got)
	}
	if first != second {
		t.Fatal("bypassed and cached bodies differ")
	}
}

// A server without WithResultCache still answers, reporting bypass.
func TestXCacheDisabled(t *testing.T) {
	_, ts := testServer(t)
	resp, _ := cacheReq(t, "POST", ts.URL+"/api/sparql", sortQuery, nil)
	if got := resp.Header.Get("X-Cache"); got != "bypass" {
		t.Fatalf("X-Cache = %q, want bypass with no cache configured", got)
	}
}

func TestSearchCached(t *testing.T) {
	_, ts, _ := cachedTestServer(t)
	data, err := pattern.A().ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)

	resp, first := cacheReq(t, "POST", ts.URL+"/api/search", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, first)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first X-Cache = %q, want miss", got)
	}
	resp, second := cacheReq(t, "POST", ts.URL+"/api/search", body, nil)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second X-Cache = %q, want hit", got)
	}
	if first != second {
		t.Fatal("cached search body differs")
	}
}

func TestKBRunCachedAndInvalidatedByPlanMutation(t *testing.T) {
	s, ts, _ := cachedTestServer(t)

	resp, first := cacheReq(t, "POST", ts.URL+"/api/kb/run", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first X-Cache = %q, want miss", got)
	}
	resp, second := cacheReq(t, "POST", ts.URL+"/api/kb/run", "", nil)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second X-Cache = %q, want hit", got)
	}
	if first != second {
		t.Fatal("cached kb/run body differs")
	}

	// A plan mutation bumps the generation: the old entry is orphaned and
	// the next run misses.
	if err := s.eng.LoadPlan(fixtures.Renamed(fixtures.Clean(), "CACHE-X")); err != nil {
		t.Fatal(err)
	}
	resp, _ = cacheReq(t, "POST", ts.URL+"/api/kb/run", "", nil)
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("post-mutation X-Cache = %q, want miss", got)
	}
}

func TestPlanRDFETag(t *testing.T) {
	s, ts, _ := cachedTestServer(t)

	resp, body := cacheReq(t, "GET", ts.URL+"/api/plans/Q2/rdf", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"qep-`) {
		t.Fatalf("ETag = %q", etag)
	}
	if resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("X-Cache = %q, want miss", resp.Header.Get("X-Cache"))
	}
	if !strings.Contains(body, "http://optimatch/") {
		t.Fatalf("N-Triples body looks wrong: %.100s", body)
	}

	// Revalidation: matching If-None-Match answers 304 with no body.
	resp, body = cacheReq(t, "GET", ts.URL+"/api/plans/Q2/rdf", "", map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("status = %d, want 304", resp.StatusCode)
	}
	if body != "" {
		t.Fatalf("304 carried a body: %q", body)
	}
	if resp.Header.Get("ETag") != etag {
		t.Fatalf("304 ETag = %q, want %q", resp.Header.Get("ETag"), etag)
	}
	// Wildcard and list forms match too; weak comparison accepted.
	for _, h := range []string{"*", `"other", ` + etag, "W/" + etag} {
		resp, _ = cacheReq(t, "GET", ts.URL+"/api/plans/Q2/rdf", "", map[string]string{"If-None-Match": h})
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("If-None-Match %q: status = %d, want 304", h, resp.StatusCode)
		}
	}

	// A generation bump changes the validator: the old tag revalidates as
	// a full 200 with a new ETag, served from a fresh cache entry.
	if err := s.eng.LoadPlan(fixtures.Renamed(fixtures.Clean(), "ETAG-X")); err != nil {
		t.Fatal(err)
	}
	resp, _ = cacheReq(t, "GET", ts.URL+"/api/plans/Q2/rdf", "", map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-mutation status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("ETag"); got == etag || got == "" {
		t.Fatalf("post-mutation ETag = %q, want a new tag", got)
	}

	// Second GET at the new generation is a cache hit with identical bytes.
	resp2, bodyA := cacheReq(t, "GET", ts.URL+"/api/plans/Q2/rdf", "", nil)
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("X-Cache = %q, want hit", resp2.Header.Get("X-Cache"))
	}
	respB, bodyB := cacheReq(t, "GET", ts.URL+"/api/plans/Q2/rdf", "", map[string]string{"Cache-Control": "no-store"})
	if respB.Header.Get("X-Cache") != "bypass" {
		t.Fatalf("X-Cache = %q, want bypass", respB.Header.Get("X-Cache"))
	}
	if bodyA != bodyB {
		t.Fatal("cached and bypassed RDF bodies differ")
	}
}

func TestStatsCacheGroup(t *testing.T) {
	_, ts, _ := cachedTestServer(t)
	// Warm one entry so the counters are nonzero.
	cacheReq(t, "POST", ts.URL+"/api/sparql", sortQuery, nil)
	cacheReq(t, "POST", ts.URL+"/api/sparql", sortQuery, nil)

	var stats struct {
		Cache *cache.Stats `json:"cache"`
		Query struct {
			Capacity int `json:"capacity"`
		} `json:"queryCache"`
	}
	getJSON(t, ts.URL+"/api/stats", http.StatusOK, &stats)
	if stats.Cache == nil {
		t.Fatal("stats missing cache group")
	}
	if stats.Cache.Hits < 1 || stats.Cache.Misses < 1 || stats.Cache.Entries < 1 {
		t.Fatalf("cache stats = %+v", stats.Cache)
	}
	if stats.Cache.HitRatio <= 0 || stats.Cache.HitRatio > 1 {
		t.Fatalf("hit ratio = %v", stats.Cache.HitRatio)
	}
	if stats.Query.Capacity <= 0 {
		t.Fatalf("query cache capacity = %d", stats.Query.Capacity)
	}

	// A cache-less server omits the group.
	_, plain := testServer(t)
	var bare struct {
		Cache *cache.Stats `json:"cache"`
	}
	getJSON(t, plain.URL+"/api/stats", http.StatusOK, &bare)
	if bare.Cache != nil {
		t.Fatalf("cache group present without a cache: %+v", bare.Cache)
	}
}

func TestCacheMetricsExported(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts, _ := cachedTestServer(t, WithMetrics(reg))
	cacheReq(t, "POST", ts.URL+"/api/sparql", sortQuery, nil)
	cacheReq(t, "POST", ts.URL+"/api/sparql", sortQuery, nil)

	_, metrics := cacheReq(t, "GET", ts.URL+"/metrics", "", nil)
	for _, want := range []string{
		`optimatch_cache_requests_total{result="hit"}`,
		`optimatch_cache_requests_total{result="miss"}`,
		`optimatch_cache_requests_total{result="collapsed"}`,
		"optimatch_cache_bytes",
		"optimatch_cache_entries",
		"optimatch_cache_hit_ratio",
		"optimatch_cache_evictions_total",
		"optimatch_cache_rejected_total",
		"optimatch_core_query_cache_entries",
		"optimatch_core_query_cache_bytes",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
