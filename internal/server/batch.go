// Batched plan ingest: POST /api/plans:batch accepts an NDJSON stream of
// plans — one JSON value per line, either a bare string of explain text or
// an object {"text": "..."} — validates every record individually, and
// applies the accepted plans as ONE repository mutation: a single WAL batch
// record with a single fsync (with -data) and a single engine
// data-generation bump, so the result cache invalidates once per batch
// instead of once per plan. The response reports a per-record outcome; the
// overall status is 201 when every record loaded, 207 on mixed outcomes,
// 422 when every record was rejected, and 400 for malformed framing (empty
// batch, too many records, oversized body).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"

	"optimatch/internal/core"
)

// Default batch-ingest limits (override with WithBatchLimits / the daemon's
// -batch-max-records and -batch-max-bytes flags). The byte limit stays well
// under the store's 32 MiB WAL-record cap so an accepted batch always fits
// one journal record even after JSON escaping of the plan texts.
const (
	defaultBatchMaxRecords = 1024
	defaultBatchMaxBytes   = 8 << 20
)

// WithBatchLimits bounds POST /api/plans:batch: at most maxRecords NDJSON
// records and maxBytes of request body per batch. Non-positive values keep
// the defaults.
func WithBatchLimits(maxRecords int, maxBytes int64) Option {
	return func(s *Server) {
		if maxRecords > 0 {
			s.batchMaxRecords = maxRecords
		}
		if maxBytes > 0 {
			s.batchMaxBytes = maxBytes
		}
	}
}

// batchCounters feed the optimatch_ingest_batch_* metrics and /api/stats.
type batchCounters struct {
	requests atomic.Int64 // batch requests that passed framing checks
	records  atomic.Int64 // NDJSON records seen across all batches
	accepted atomic.Int64 // records loaded (and persisted, with a store)
	rejected atomic.Int64 // records refused (parse, validation, duplicate)
}

// BatchStats is the /api/stats view of the batch-ingest counters.
type BatchStats struct {
	Requests int64 `json:"requests"`
	Records  int64 `json:"records"`
	Accepted int64 `json:"accepted"`
	Rejected int64 `json:"rejected"`
}

func (c *batchCounters) snapshot() BatchStats {
	return BatchStats{
		Requests: c.requests.Load(),
		Records:  c.records.Load(),
		Accepted: c.accepted.Load(),
		Rejected: c.rejected.Load(),
	}
}

// batchRecordResult is the per-record outcome in the batch response.
type batchRecordResult struct {
	Index  int    `json:"index"`
	ID     string `json:"id,omitempty"`    // plan ID when the text parsed
	Status int    `json:"status"`          // 201, 409 or 422, per record
	Error  string `json:"error,omitempty"` // set when Status != 201
}

// batchResponse is the POST /api/plans:batch body.
type batchResponse struct {
	Accepted int                 `json:"accepted"`
	Rejected int                 `json:"rejected"`
	Results  []batchRecordResult `json:"results"`
}

// batchLine decodes one NDJSON record: either a bare JSON string or an
// object carrying the explain text under "text".
func batchLine(line []byte) (string, error) {
	var text string
	if err := json.Unmarshal(line, &text); err == nil {
		return text, nil
	}
	var obj struct {
		Text *string `json:"text"`
	}
	if err := json.Unmarshal(line, &obj); err != nil {
		return "", fmt.Errorf("record is neither a JSON string nor an object: %v", err)
	}
	if obj.Text == nil {
		return "", fmt.Errorf(`record object has no "text" field`)
	}
	return *obj.Text, nil
}

func (s *Server) handleBatchUpload(w http.ResponseWriter, r *http.Request) {
	limit := s.batchMaxBytes
	if s.maxBody > limit {
		limit = s.maxBody // honour a raised -max-body for batches too
	}
	body, err := readBodyLimited(w, r, limit)
	if err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	lines := splitNDJSON(body)
	if len(lines) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch: want NDJSON, one plan per line"))
		return
	}
	if len(lines) > s.batchMaxRecords {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d records exceeds the %d-record limit", len(lines), s.batchMaxRecords))
		return
	}
	s.batch.requests.Add(1)
	s.batch.records.Add(int64(len(lines)))

	// Decode the framing first: records that are not valid NDJSON values
	// fail individually, and only well-formed texts reach the store.
	results := make([]batchRecordResult, len(lines))
	texts := make([]string, 0, len(lines))
	toRecord := make([]int, 0, len(lines)) // texts index -> results index
	for i, line := range lines {
		results[i].Index = i
		text, err := batchLine(line)
		if err != nil {
			results[i].Status = http.StatusUnprocessableEntity
			results[i].Error = err.Error()
			continue
		}
		texts = append(texts, text)
		toRecord = append(toRecord, i)
	}

	if len(texts) > 0 {
		ids := make([]string, len(texts))
		errs := make([]error, len(texts))
		if s.st != nil {
			out, err := s.st.AddPlanBatch(texts)
			if err != nil {
				// The durability layer failed: nothing was persisted and the
				// engine was rolled back, so the whole batch is a 5xx — or a
				// 503 + Retry-After when the store is degraded.
				s.writeStoreError(w, err, http.StatusInternalServerError)
				return
			}
			for j, o := range out {
				if o.Plan != nil {
					ids[j] = o.Plan.ID
				}
				errs[j] = o.Err
			}
		} else {
			plans, lerrs := s.eng.LoadTextBatch(texts)
			for j, p := range plans {
				if p != nil {
					ids[j] = p.ID
				}
			}
			copy(errs, lerrs)
		}
		for j, ri := range toRecord {
			results[ri].ID = ids[j]
			switch {
			case errs[j] == nil:
				results[ri].Status = http.StatusCreated
			case errors.Is(errs[j], core.ErrDuplicatePlan):
				results[ri].Status = http.StatusConflict
				results[ri].Error = errs[j].Error()
			default:
				results[ri].Status = http.StatusUnprocessableEntity
				results[ri].Error = errs[j].Error()
			}
		}
	}

	resp := batchResponse{Results: results}
	for i := range results {
		if results[i].Status == http.StatusCreated {
			resp.Accepted++
		} else {
			resp.Rejected++
		}
	}
	s.batch.accepted.Add(int64(resp.Accepted))
	s.batch.rejected.Add(int64(resp.Rejected))
	status := http.StatusCreated
	switch {
	case resp.Accepted == 0:
		status = http.StatusUnprocessableEntity
	case resp.Rejected > 0:
		status = http.StatusMultiStatus
	}
	writeJSON(w, status, resp)
}

// splitNDJSON cuts the body into records on newlines, dropping blank lines
// (a trailing newline is the common case, not an empty record).
func splitNDJSON(body []byte) [][]byte {
	var out [][]byte
	for _, line := range strings.Split(string(body), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		out = append(out, []byte(line))
	}
	return out
}
