// Deadline-aware, load-shedding execution for the three routes that run
// engine scans (POST /api/search, /api/sparql, /api/kb/run). Every exec
// request gets a context that expires at the configured query timeout
// (clients may shorten — never extend — it per request via X-Timeout-Ms),
// and an optional weighted admission gate bounds how much scan work runs
// concurrently: requests over the limit wait in FIFO order for at most the
// configured queue wait, then are shed with 503 + Retry-After. The engine
// observes the same context cooperatively, so a deadline, a client
// disconnect or daemon shutdown stops the scan mid-flight instead of
// burning the worker pool on an answer nobody will read.
package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// StatusClientClosedRequest is the non-standard 499 status (nginx
// convention) recorded when the client went away before the response. The
// bytes never reach anyone; the value exists so the access log and metrics
// distinguish "client hung up" from a server-side failure.
const StatusClientClosedRequest = 499

// errShed reports that the admission gate turned a request away.
var errShed = errors.New("server overloaded: admission queue wait exceeded")

// ExecStats counts execution outcomes on the gated routes. Served in
// /api/stats (additive — the group only ever gains fields) and re-exported
// at scrape time as optimatch_exec_* in /metrics.
type ExecStats struct {
	// InFlight is the weighted units of scan work currently admitted.
	InFlight int64 `json:"inFlight"`
	// Cancelled counts executions stopped because the client disconnected
	// or the daemon began shutting down.
	Cancelled int64 `json:"cancelled"`
	// Deadline counts executions stopped at their deadline (504s).
	Deadline int64 `json:"deadline"`
	// Shed counts requests turned away by the admission gate (503s).
	Shed int64 `json:"shed"`
}

// execCounters holds the atomics behind ExecStats.
type execCounters struct {
	inFlight  atomic.Int64
	cancelled atomic.Int64
	deadline  atomic.Int64
	shed      atomic.Int64
}

func (c *execCounters) snapshot() ExecStats {
	return ExecStats{
		InFlight:  c.inFlight.Load(),
		Cancelled: c.cancelled.Load(),
		Deadline:  c.deadline.Load(),
		Shed:      c.shed.Load(),
	}
}

// semWaiter is one queued Acquire.
type semWaiter struct {
	n     int64
	ready chan struct{} // closed by Release when the weight is granted
}

// semaphore is a weighted FIFO semaphore (the x/sync shape, rebuilt on the
// stdlib because the repo takes no dependencies). FIFO matters: without it
// a stream of cheap requests can starve an admitted-but-waiting expensive
// one indefinitely.
type semaphore struct {
	size    int64
	mu      sync.Mutex
	cur     int64
	waiters list.List // of *semWaiter
}

func newSemaphore(n int64) *semaphore { return &semaphore{size: n} }

// Acquire blocks until n units are granted or ctx is done. Weights above
// the semaphore size are clamped to it, so an expensive route still runs
// (alone) under a small -max-inflight rather than deadlocking.
func (s *semaphore) Acquire(ctx context.Context, n int64) error {
	if n > s.size {
		n = s.size
	}
	s.mu.Lock()
	if s.size-s.cur >= n && s.waiters.Len() == 0 {
		s.cur += n
		s.mu.Unlock()
		return nil
	}
	w := &semWaiter{n: n, ready: make(chan struct{})}
	elem := s.waiters.PushBack(w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		err := ctx.Err()
		s.mu.Lock()
		select {
		case <-w.ready:
			// Granted between ctx firing and taking the lock: keep the
			// grant and report success; the caller will Release normally.
			err = nil
		default:
			front := s.waiters.Front() == elem
			s.waiters.Remove(elem)
			if front {
				// The cancelled waiter may have been the only thing
				// blocking smaller waiters behind it.
				s.grantLocked()
			}
		}
		s.mu.Unlock()
		return err
	}
}

// Release returns n units and wakes whichever queued waiters now fit.
func (s *semaphore) Release(n int64) {
	if n > s.size {
		n = s.size
	}
	s.mu.Lock()
	s.cur -= n
	if s.cur < 0 {
		s.mu.Unlock()
		panic("server: semaphore released more than held")
	}
	s.grantLocked()
	s.mu.Unlock()
}

// grantLocked admits waiters from the front while capacity lasts.
func (s *semaphore) grantLocked() {
	for {
		front := s.waiters.Front()
		if front == nil {
			return
		}
		w := front.Value.(*semWaiter)
		if s.size-s.cur < w.n {
			return
		}
		s.cur += w.n
		s.waiters.Remove(front)
		close(w.ready)
	}
}

// admission is the configured gate: a shared weighted semaphore plus the
// bounded time a request may queue for a slot.
type admission struct {
	sem       *semaphore
	queueWait time.Duration
}

// execContext derives the context one engine execution runs under: the
// request context (so client disconnects and shutdown propagate), bounded
// by the server's query timeout. A client may shorten the deadline with an
// X-Timeout-Ms header; a malformed or non-positive value is an error (the
// caller answers 400) rather than a silent fallback to the server cap, and
// values above the cap are clamped to it, so the flag stays the ceiling.
func (s *Server) execContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.queryTimeout
	if hdr := r.Header.Get("X-Timeout-Ms"); hdr != "" {
		ms, err := strconv.ParseInt(hdr, 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("invalid X-Timeout-Ms %q: want a positive integer of milliseconds", hdr)
		}
		if ms <= 0 {
			return nil, nil, fmt.Errorf("invalid X-Timeout-Ms %q: must be positive", hdr)
		}
		hd := time.Duration(math.MaxInt64) // ms counts that overflow a Duration clamp to the max
		if ms <= int64(hd/time.Millisecond) {
			hd = time.Duration(ms) * time.Millisecond
		}
		if d == 0 || hd < d {
			d = hd
		}
	}
	if d <= 0 {
		ctx, cancel := context.WithCancel(r.Context())
		return ctx, cancel, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// retryAfterHint renders the Retry-After value for a shed response: the
// configured queue-wait budget rounded up to whole seconds, floored at 1 —
// retrying sooner than the queue budget would just queue and shed again.
func retryAfterHint(queueWait time.Duration) string {
	secs := (queueWait + time.Second - 1) / time.Second
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(int64(secs), 10)
}

// gated wraps an exec handler with the admission gate. weight expresses
// relative cost (a kb/run scans every plan for every entry; a single search
// is one query), so under -max-inflight N a full scan consumes more of the
// budget than a point query.
func (s *Server) gated(weight int64, h http.HandlerFunc) http.HandlerFunc {
	if s.adm == nil {
		return func(w http.ResponseWriter, r *http.Request) {
			s.exec.inFlight.Add(weight)
			defer s.exec.inFlight.Add(-weight)
			h(w, r)
		}
	}
	return func(w http.ResponseWriter, r *http.Request) {
		waitCtx, cancel := context.WithTimeout(r.Context(), s.adm.queueWait)
		err := s.adm.sem.Acquire(waitCtx, weight)
		cancel()
		if err != nil {
			if r.Context().Err() != nil {
				// The client gave up while queued — nothing to shed, no
				// one to answer. Record the 499 for the access log.
				s.exec.cancelled.Add(1)
				w.WriteHeader(StatusClientClosedRequest)
				return
			}
			s.exec.shed.Add(1)
			w.Header().Set("Retry-After", retryAfterHint(s.adm.queueWait))
			writeError(w, http.StatusServiceUnavailable, errShed)
			return
		}
		defer s.adm.sem.Release(weight)
		s.exec.inFlight.Add(weight)
		defer s.exec.inFlight.Add(-weight)
		h(w, r)
	}
}

// execError writes the response for a failed engine execution, mapping
// context errors to honest statuses:
//
//   - deadline exceeded  -> 504 Gateway Timeout
//   - daemon shutdown    -> 503 + Retry-After (come back after restart)
//   - client disconnect  -> 499 recorded for the log; no body — the
//     connection is gone
//
// Any other error is the caller's fallback status (typically 422 for a
// malformed query). Returns true when it classified a cancellation, so
// handlers skip their ordinary error path.
func (s *Server) execError(w http.ResponseWriter, r *http.Request, err error) bool {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.exec.deadline.Add(1)
		writeError(w, http.StatusGatewayTimeout,
			fmt.Errorf("query deadline exceeded: %w", err))
		return true
	case errors.Is(err, context.Canceled):
		s.exec.cancelled.Add(1)
		if s.baseCtx != nil && s.baseCtx.Err() != nil {
			// Shutdown cancelled the work, not the client: the connection
			// is still open, so say so and invite a retry elsewhere.
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("server shutting down"))
			return true
		}
		if r.Context().Err() != nil {
			w.WriteHeader(StatusClientClosedRequest)
			return true
		}
		writeError(w, http.StatusServiceUnavailable, err)
		return true
	}
	return false
}
