package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"optimatch/internal/cache"
	"optimatch/internal/core"
	"optimatch/internal/faultfs"
	"optimatch/internal/fixtures"
	"optimatch/internal/obs"
	"optimatch/internal/qep"
	"optimatch/internal/store"
	"optimatch/internal/storefs"
)

// degradedTestServer builds the full daemon wiring — durable store behind a
// fault injector, shared result cache, metrics registry — so the HTTP
// contract under storage faults is tested end to end.
func degradedTestServer(t *testing.T) (*faultfs.FS, *store.Store, *httptest.Server, *obs.Registry) {
	t.Helper()
	ffs := faultfs.Wrap(storefs.OS{})
	c := cache.New(cache.Config{MaxBytes: 16 << 20})
	reg := obs.NewRegistry()
	st, err := store.Open(t.TempDir(),
		store.WithFS(ffs),
		store.WithEngineOptions(core.WithResultCache(c)),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s := New(st.Engine(), st.KB(),
		WithStore(st), WithResultCache(c), WithMetrics(reg))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ffs, st, ts, reg
}

// readyState decodes a /readyz body's status field.
func readyState(t *testing.T, body string) string {
	t.Helper()
	var rb readyzBody
	if err := json.Unmarshal([]byte(body), &rb); err != nil {
		t.Fatalf("/readyz body %q: %v", body, err)
	}
	return rb.Status
}

func TestDegradedModeHTTPContract(t *testing.T) {
	ffs, st, ts, _ := degradedTestServer(t)
	plans := fixtures.All()

	// Healthy baseline: writes land, /readyz reports ok, the cacheable read
	// paths go miss -> hit.
	resp, _ := cacheReq(t, "POST", ts.URL+"/api/plans", qep.Text(plans[0]), nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d", resp.StatusCode)
	}
	resp, body := cacheReq(t, "GET", ts.URL+"/readyz", "", nil)
	if resp.StatusCode != http.StatusOK || readyState(t, body) != "ok" {
		t.Fatalf("/readyz = %d %s", resp.StatusCode, body)
	}
	rdfURL := ts.URL + "/api/plans/" + plans[0].ID + "/rdf"
	resp, rdfWant := cacheReq(t, "GET", rdfURL, "", nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first rdf = %d, X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	resp, runWant := cacheReq(t, "POST", ts.URL+"/api/kb/run", "", nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first kb/run = %d, X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}

	// Break the disk under the next WAL append.
	ffs.FailNth(faultfs.OpWrite, 1, faultfs.KindENOSPC)
	resp, body = cacheReq(t, "POST", ts.URL+"/api/plans", qep.Text(plans[1]), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degrading upload status = %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Fatal("degrading upload missing Retry-After")
	}

	// Every write now refuses with 503 + Retry-After without killing the
	// process: plans, batches, deletes, KB entries, compaction.
	for _, w := range []struct{ method, path, body string }{
		{"POST", "/api/plans", qep.Text(plans[2])},
		{"POST", "/api/plans:batch", `"` + plans[2].ID + `"`},
		{"DELETE", "/api/plans/" + plans[0].ID, ""},
		{"DELETE", "/api/kb/entries/none", ""},
		{"POST", "/api/admin/compact", ""},
	} {
		resp, body := cacheReq(t, w.method, ts.URL+w.path, w.body, nil)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s %s while degraded = %d, body %s", w.method, w.path, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s %s while degraded missing Retry-After", w.method, w.path)
		}
	}

	// Readiness flips to 503/degraded while liveness-style reads keep
	// working, including cache hits with the bytes from before the fault.
	resp, body = cacheReq(t, "GET", ts.URL+"/readyz", "", nil)
	if resp.StatusCode != http.StatusServiceUnavailable || readyState(t, body) != "degraded" {
		t.Fatalf("/readyz while degraded = %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("/readyz while degraded missing Retry-After")
	}
	// The failed mutation's load+rollback bumped the data generation, so the
	// first read after the fault is a legitimate miss that re-executes and
	// reproduces the exact pre-fault bytes; the repeat must hit.
	resp, got := cacheReq(t, "GET", rdfURL, "", nil)
	if resp.StatusCode != http.StatusOK || got != rdfWant {
		t.Fatalf("rdf while degraded = %d, bytes match %v", resp.StatusCode, got == rdfWant)
	}
	resp, got = cacheReq(t, "GET", rdfURL, "", nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" || got != rdfWant {
		t.Fatalf("repeat rdf while degraded = %d, X-Cache %q, bytes match %v",
			resp.StatusCode, resp.Header.Get("X-Cache"), got == rdfWant)
	}
	resp, got = cacheReq(t, "POST", ts.URL+"/api/kb/run", "", nil)
	if resp.StatusCode != http.StatusOK || got != runWant {
		t.Fatalf("kb/run while degraded = %d, bytes match %v", resp.StatusCode, got == runWant)
	}
	resp, got = cacheReq(t, "POST", ts.URL+"/api/kb/run", "", nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" || got != runWant {
		t.Fatalf("repeat kb/run while degraded = %d, X-Cache %q, bytes match %v",
			resp.StatusCode, resp.Header.Get("X-Cache"), got == runWant)
	}
	resp, _ = cacheReq(t, "GET", ts.URL+"/api/plans", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan listing while degraded = %d", resp.StatusCode)
	}

	// The degraded state is visible to scrapes and /api/stats.
	resp, metrics := cacheReq(t, "GET", ts.URL+"/metrics", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if v := metricValue(t, metrics, "optimatch_store_degraded"); v != 1 {
		t.Errorf("optimatch_store_degraded = %v, want 1", v)
	}
	if v := metricValue(t, metrics, `optimatch_store_fault_total{op="append"}`); v != 1 {
		t.Errorf(`optimatch_store_fault_total{op="append"} = %v, want 1`, v)
	}
	var stats statsBody
	getJSON(t, ts.URL+"/api/stats", http.StatusOK, &stats)
	if stats.Store == nil || !stats.Store.Degraded || stats.Store.FaultWrites != 1 {
		t.Fatalf("store stats while degraded = %+v", stats.Store)
	}

	// Reopen on a still-broken disk answers 503 and stays degraded.
	ffs.FailNth(faultfs.OpRead, 1, faultfs.KindErr)
	resp, body = cacheReq(t, "POST", ts.URL+"/api/admin/reopen", "", nil)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("reopen on broken disk = %d %s", resp.StatusCode, body)
	}

	// Heal the disk: reopen succeeds, readiness recovers, writes land again.
	ffs.Clear()
	resp, body = cacheReq(t, "POST", ts.URL+"/api/admin/reopen", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reopen after heal = %d %s", resp.StatusCode, body)
	}
	var reopened reopenBody
	if err := json.Unmarshal([]byte(body), &reopened); err != nil {
		t.Fatalf("reopen body: %v", err)
	}
	if reopened.Health.State != store.HealthOK || reopened.Stats.Reopens != 1 || reopened.Stats.ReopenFailures != 1 {
		t.Fatalf("reopen body = %+v", reopened)
	}
	resp, body = cacheReq(t, "GET", ts.URL+"/readyz", "", nil)
	if resp.StatusCode != http.StatusOK || readyState(t, body) != "ok" {
		t.Fatalf("/readyz after reopen = %d %s", resp.StatusCode, body)
	}
	resp, _ = cacheReq(t, "POST", ts.URL+"/api/plans", qep.Text(plans[1]), nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload after reopen = %d", resp.StatusCode)
	}
	if st.Engine().Plan(plans[1].ID) == nil {
		t.Fatal("post-reopen upload not applied")
	}
	_, metrics = cacheReq(t, "GET", ts.URL+"/metrics", "", nil)
	if v := metricValue(t, metrics, "optimatch_store_degraded"); v != 0 {
		t.Errorf("optimatch_store_degraded after reopen = %v, want 0", v)
	}
	if v := metricValue(t, metrics, `optimatch_store_reopen_total{result="ok"}`); v != 1 {
		t.Errorf("reopen ok counter = %v, want 1", v)
	}
	if v := metricValue(t, metrics, `optimatch_store_reopen_total{result="error"}`); v != 1 {
		t.Errorf("reopen error counter = %v, want 1", v)
	}
}

// TestReadyzWithoutStore pins the stateless deployment: no durable store
// means no degraded state machine, so readiness is simply ok and reopen is
// explicit about being unavailable.
func TestReadyzWithoutStore(t *testing.T) {
	eng := core.New()
	if err := eng.LoadPlans(fixtures.All()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, nil).Handler())
	t.Cleanup(ts.Close)

	resp, body := cacheReq(t, "GET", ts.URL+"/readyz", "", nil)
	if resp.StatusCode != http.StatusOK || readyState(t, body) != "ok" {
		t.Fatalf("/readyz = %d %s", resp.StatusCode, body)
	}
	resp, _ = cacheReq(t, "POST", ts.URL+"/api/admin/reopen", "", nil)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("reopen without store = %d", resp.StatusCode)
	}
}
