package server

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"optimatch/internal/obs"
)

// statusRecorder captures the status code and body size a handler wrote so
// the access log and metrics can report them after the fact.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// statusClass buckets a status code into "2xx".."5xx" for low-cardinality
// metric labels.
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}

// withObservability wraps the mux with the access-log/metrics middleware:
// every request gets an X-Request-ID (minted unless the client sent one), a
// per-route latency/status-class measurement, a structured access-log line,
// and a WARN line when it ran longer than the slow threshold. With neither a
// logger nor a registry configured the mux is returned untouched.
func (s *Server) withObservability(mux *http.ServeMux) http.Handler {
	if s.log == nil && s.metrics == nil {
		return mux
	}
	var inFlight *obs.Gauge
	if s.metrics != nil {
		inFlight = s.metrics.Gauge("optimatch_http_in_flight", "Requests currently being served.")
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		rec := &statusRecorder{ResponseWriter: w}
		if inFlight != nil {
			inFlight.Add(1)
		}
		mux.ServeHTTP(rec, r.WithContext(obs.WithRequestID(r.Context(), id)))
		if inFlight != nil {
			inFlight.Add(-1)
		}
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		elapsed := time.Since(start)

		// Label series by the registered route pattern, never the raw URL:
		// "/api/plans/{id}" keeps cardinality bounded where "/api/plans/Q1",
		// "/api/plans/Q2", ... would not.
		_, route := mux.Handler(r)
		if route == "" {
			route = "unrouted"
		}
		if s.metrics != nil {
			s.metrics.Counter("optimatch_http_requests_total",
				"HTTP requests by route pattern, method and status class.",
				"route", route, "method", r.Method, "class", statusClass(rec.status)).Inc()
			s.metrics.Histogram("optimatch_http_request_seconds",
				"HTTP request latency by route pattern.", nil,
				"route", route).ObserveDuration(elapsed)
		}
		if s.log != nil {
			attrs := []slog.Attr{
				slog.String("request_id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", rec.status),
				slog.Int64("bytes", rec.bytes),
				slog.Duration("elapsed", elapsed),
				slog.String("remote", r.RemoteAddr),
			}
			// A 499 means the client hung up mid-request: log it under its
			// own message so disconnect spikes are one grep away, and never
			// as an ordinary "request" that appears to have been answered.
			msg := "request"
			if rec.status == StatusClientClosedRequest {
				msg = "client closed request"
			}
			s.log.LogAttrs(r.Context(), slog.LevelInfo, msg, attrs...)
			if s.slow > 0 && elapsed >= s.slow {
				s.log.LogAttrs(r.Context(), slog.LevelWarn, "slow request",
					append(attrs, slog.Duration("threshold", s.slow))...)
			}
		}
	})
}
