package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"optimatch/internal/core"
	"optimatch/internal/workload"
)

// slowQuery joins two unanchored transitive closures with no shared
// variable: a cross product of O(n^2) path relations per plan, far too much
// work to finish inside the test deadlines but cancellable within one
// poll stride.
const slowQuery = `PREFIX preduri: <http://optimatch/pred/>
SELECT ?a ?y WHERE { ?x preduri:hasChildPop+ ?y . ?a preduri:hasChildPop+ ?b }`

const fastQuery = `PREFIX preduri: <http://optimatch/pred/>
SELECT ?op WHERE { ?op preduri:hasPopType "TBSCAN" } LIMIT 1`

// slowServer serves a workload big enough that slowQuery runs for seconds
// if nothing stops it.
func slowServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	w, err := workload.Generate(workload.Config{Seed: 3, NumPlans: 30, MinOps: 20, MaxOps: 40})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New()
	if err := eng.LoadPlans(w.Plans); err != nil {
		t.Fatal(err)
	}
	s := New(eng, nil, opts...)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestDeadlineReturns504(t *testing.T) {
	s, ts := slowServer(t, WithQueryTimeout(10*time.Millisecond))
	start := time.Now()
	resp, err := http.Post(ts.URL+"/api/sparql", "text/plain", strings.NewReader(slowQuery))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, body)
	}
	// The cooperative checks poll every few hundred iterations, so the 504
	// should land promptly after the 10ms deadline — the bound is generous
	// only for loaded CI machines.
	if elapsed > time.Second {
		t.Fatalf("504 took %v; deadline enforcement is not prompt", elapsed)
	}
	if got := s.exec.snapshot().Deadline; got < 1 {
		t.Fatalf("exec.Deadline = %d, want >= 1", got)
	}
}

func TestHeaderShortensDeadlineNeverExtends(t *testing.T) {
	s := New(core.New(), nil, WithQueryTimeout(30*time.Second))

	r := httptest.NewRequest("POST", "/api/sparql", nil)
	r.Header.Set("X-Timeout-Ms", "5")
	ctx, cancel, err := s.execContext(r)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := ctx.Deadline()
	cancel()
	if !ok || time.Until(d) > 10*time.Millisecond {
		t.Fatalf("header did not shorten the deadline (deadline in %v)", time.Until(d))
	}

	// Values above the server cap — including ms counts that would overflow
	// a time.Duration — clamp to the cap instead of extending it.
	for _, above := range []string{"3600000" /* 1h */, "9223372036854775807" /* overflows Duration */} {
		r = httptest.NewRequest("POST", "/api/sparql", nil)
		r.Header.Set("X-Timeout-Ms", above)
		ctx, cancel, err = s.execContext(r)
		if err != nil {
			t.Fatalf("header %q: %v", above, err)
		}
		d, ok = ctx.Deadline()
		cancel()
		if !ok || time.Until(d) > 31*time.Second {
			t.Fatalf("header %q extended the deadline past the cap (deadline in %v)", above, time.Until(d))
		}
	}

	// An absent header runs at the server cap.
	r = httptest.NewRequest("POST", "/api/sparql", nil)
	ctx, cancel, err = s.execContext(r)
	if err != nil {
		t.Fatal(err)
	}
	d, ok = ctx.Deadline()
	cancel()
	if !ok || time.Until(d) < 29*time.Second {
		t.Fatalf("absent header changed the deadline (deadline in %v)", time.Until(d))
	}

	// Malformed and non-positive values are rejected, not silently ignored.
	for _, bad := range []string{"abc", "-5", "0", "1.5", "10s", "99999999999999999999" /* overflows int64 */} {
		r = httptest.NewRequest("POST", "/api/sparql", nil)
		r.Header.Set("X-Timeout-Ms", bad)
		if _, _, err := s.execContext(r); err == nil {
			t.Fatalf("header %q accepted, want an error", bad)
		}
	}
}

// TestMalformedTimeoutHeaderIs400 drives the rejection through the full
// handler stack: a bad X-Timeout-Ms answers 400 with a JSON error body on
// every gated route.
func TestMalformedTimeoutHeaderIs400(t *testing.T) {
	_, ts := slowServer(t, WithQueryTimeout(time.Minute))
	for _, tc := range []struct{ name, value string }{
		{"letters", "abc"},
		{"zero", "0"},
		{"negative", "-5"},
		{"int64 overflow", "99999999999999999999"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, route := range []string{"/api/sparql", "/api/kb/run"} {
				req, _ := http.NewRequest("POST", ts.URL+route, strings.NewReader(fastQuery))
				req.Header.Set("X-Timeout-Ms", tc.value)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				var eb errorBody
				decodeErr := json.NewDecoder(resp.Body).Decode(&eb)
				resp.Body.Close()
				if resp.StatusCode != http.StatusBadRequest {
					t.Fatalf("%s with X-Timeout-Ms %q: status = %d, want 400", route, tc.value, resp.StatusCode)
				}
				if decodeErr != nil || !strings.Contains(eb.Error, "X-Timeout-Ms") {
					t.Fatalf("%s: error body %q does not name the header (decode err %v)", route, eb.Error, decodeErr)
				}
			}
		})
	}
}

// TestRetryAfterHint pins the shed back-off derivation: the queue-wait
// budget rounded up to whole seconds, floored at one.
func TestRetryAfterHint(t *testing.T) {
	for _, tc := range []struct {
		wait time.Duration
		want string
	}{
		{0, "1"},
		{5 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1001 * time.Millisecond, "2"},
		{2500 * time.Millisecond, "3"},
		{10 * time.Second, "10"},
	} {
		if got := retryAfterHint(tc.wait); got != tc.want {
			t.Errorf("retryAfterHint(%v) = %q, want %q", tc.wait, got, tc.want)
		}
	}
}

// deadlineWithConcurrentFastQuery is the acceptance scenario: a doomed slow
// query must not take fast traffic down with it.
func TestDeadlineWithConcurrentFastQuery(t *testing.T) {
	_, ts := slowServer(t, WithQueryTimeout(time.Minute))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req, _ := http.NewRequest("POST", ts.URL+"/api/sparql", strings.NewReader(slowQuery))
		req.Header.Set("X-Timeout-Ms", "10")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Errorf("slow query: %v", err)
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Errorf("slow query status = %d, want 504", resp.StatusCode)
		}
	}()

	resp, err := http.Post(ts.URL+"/api/sparql", "text/plain", strings.NewReader(fastQuery))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fast query status = %d, want 200", resp.StatusCode)
	}
	wg.Wait()
}

func TestAdmissionShedsWith503(t *testing.T) {
	s, ts := slowServer(t,
		WithQueryTimeout(time.Minute),
		WithAdmission(1, 5*time.Millisecond))

	// Occupy the only slot with a slow query we can abort afterwards.
	slowCtx, stopSlow := context.WithCancel(context.Background())
	defer stopSlow()
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		req, _ := http.NewRequestWithContext(slowCtx, "POST", ts.URL+"/api/sparql", strings.NewReader(slowQuery))
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()

	waitFor(t, func() bool { return s.exec.snapshot().InFlight >= 1 })

	resp, err := http.Post(ts.URL+"/api/sparql", "text/plain", strings.NewReader(fastQuery))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	// The hint derives from the configured queue wait (5ms rounds up to the
	// 1s floor), not a hardcoded constant.
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want %q (ceil of the 5ms queue-wait budget, floored at 1s)", got, "1")
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, "overloaded") {
		t.Fatalf("error body %q does not mention overload", eb.Error)
	}

	// The shed counter is on /api/stats (ungated) and /metrics.
	var stats struct {
		Exec ExecStats `json:"exec"`
	}
	getJSON(t, ts.URL+"/api/stats", http.StatusOK, &stats)
	if stats.Exec.Shed < 1 {
		t.Fatalf("exec.shed = %d, want >= 1", stats.Exec.Shed)
	}

	stopSlow()
	<-slowDone
	waitFor(t, func() bool { return s.exec.snapshot().InFlight == 0 })
}

func TestClientDisconnectLogs499(t *testing.T) {
	var buf syncBuffer
	log := slog.New(slog.NewTextHandler(&buf, nil))
	s, ts := slowServer(t, WithQueryTimeout(time.Minute), WithLogger(log))

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/api/sparql", strings.NewReader(slowQuery))
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()

	waitFor(t, func() bool { return s.exec.snapshot().InFlight >= 1 })
	cancel() // client hangs up mid-scan
	<-done

	waitFor(t, func() bool { return s.exec.snapshot().Cancelled >= 1 })
	waitFor(t, func() bool {
		line := buf.String()
		return strings.Contains(line, "client closed request") &&
			strings.Contains(line, fmt.Sprintf("status=%d", StatusClientClosedRequest))
	})
}

func TestKBRunHonoursDeadline(t *testing.T) {
	_, ts := slowServer(t, WithQueryTimeout(time.Minute))
	req, _ := http.NewRequest("POST", ts.URL+"/api/kb/run", nil)
	req.Header.Set("X-Timeout-Ms", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// A 1ms budget may or may not expire before the scan ends on a fast
	// machine; both 200 and 504 are legal, anything else is not.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 200 or 504", resp.StatusCode)
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// syncBuffer is a bytes.Buffer safe for the logger goroutine + test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestSemaphoreFIFOAndWeights(t *testing.T) {
	sem := newSemaphore(2)
	if err := sem.Acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}

	// A queued waiter is granted in FIFO order on release.
	got := make(chan int, 2)
	ready := make(chan struct{})
	go func() {
		close(ready)
		if err := sem.Acquire(context.Background(), 1); err == nil {
			got <- 1
		}
	}()
	<-ready
	waitFor(t, func() bool {
		sem.mu.Lock()
		defer sem.mu.Unlock()
		return sem.waiters.Len() == 1
	})
	sem.Release(2)
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("queued waiter never granted")
	}
	sem.Release(1)

	// Weights above the size are clamped, not deadlocked.
	if err := sem.Acquire(context.Background(), 99); err != nil {
		t.Fatalf("oversized acquire: %v", err)
	}
	sem.Release(99)

	// A cancelled waiter leaves the queue and does not wedge later grants.
	if err := sem.Acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := sem.Acquire(ctx, 1); err == nil {
		t.Fatal("acquire over capacity succeeded")
	}
	sem.Release(2)
	if err := sem.Acquire(context.Background(), 2); err != nil {
		t.Fatalf("post-cancel acquire: %v", err)
	}
	sem.Release(2)
}
