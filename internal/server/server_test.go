package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"optimatch/internal/core"
	"optimatch/internal/fixtures"
	"optimatch/internal/kb"
	"optimatch/internal/pattern"
	"optimatch/internal/qep"
	"optimatch/internal/store"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	eng := core.New()
	if err := eng.LoadPlans(fixtures.All()); err != nil {
		t.Fatal(err)
	}
	s := New(eng, nil)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, wantStatus int, into interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
}

func postBody(t *testing.T, url, body string, wantStatus int, into interface{}) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
}

func TestHealthAndPlanList(t *testing.T) {
	_, ts := testServer(t)
	var health map[string]string
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &health)
	if health["status"] != "ok" {
		t.Errorf("health = %v", health)
	}
	var plans []planInfo
	getJSON(t, ts.URL+"/api/plans", http.StatusOK, &plans)
	if len(plans) != 5 {
		t.Fatalf("plans = %d", len(plans))
	}
	found := false
	for _, p := range plans {
		if p.ID == "Q2" && p.Operators == 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("Q2 missing from %v", plans)
	}
}

func TestUploadRenderAndRDF(t *testing.T) {
	_, ts := testServer(t)
	extra := fixtures.SharedTemp()
	var info planInfo
	postBody(t, ts.URL+"/api/plans", qep.Text(extra), http.StatusCreated, &info)
	if info.ID != "QCSE" || info.Operators != 8 {
		t.Errorf("uploaded = %+v", info)
	}
	// Duplicate upload rejected as a conflict with served state.
	postBody(t, ts.URL+"/api/plans", qep.Text(extra), http.StatusConflict, nil)
	// Garbage rejected.
	postBody(t, ts.URL+"/api/plans", "not a plan", http.StatusUnprocessableEntity, nil)

	// Render.
	resp, err := http.Get(ts.URL + "/api/plans/QCSE/render")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "TEMP") {
		t.Errorf("render output missing TEMP")
	}
	// RDF.
	resp2, err := http.Get(ts.URL + "/api/plans/QCSE/rdf")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	n, _ = resp2.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "hasPopType") {
		t.Errorf("rdf output missing predicates")
	}
	// Unknown plan -> 404.
	getJSON(t, ts.URL+"/api/plans/GHOST/render", http.StatusNotFound, nil)
}

func TestSearchEndpoint(t *testing.T) {
	_, ts := testServer(t)
	data, err := pattern.A().ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Pattern string      `json:"pattern"`
		Matches []matchBody `json:"matches"`
	}
	postBody(t, ts.URL+"/api/search", string(data), http.StatusOK, &out)
	if len(out.Matches) != 1 || out.Matches[0].Plan != "Q2" {
		t.Fatalf("matches = %+v", out.Matches)
	}
	if out.Matches[0].Bindings["BASE4"] != "CUST_DIM" {
		t.Errorf("bindings = %v", out.Matches[0].Bindings)
	}
	// Malformed pattern -> 422.
	postBody(t, ts.URL+"/api/search", `{"pops":[]}`, http.StatusUnprocessableEntity, nil)
}

func TestSPARQLEndpoint(t *testing.T) {
	_, ts := testServer(t)
	query := `PREFIX preduri: <http://optimatch/pred/>
SELECT ?s WHERE { ?s preduri:hasPopType "SORT" }`
	var out struct {
		Matches []matchBody `json:"matches"`
	}
	postBody(t, ts.URL+"/api/sparql", query, http.StatusOK, &out)
	if len(out.Matches) != 1 || out.Matches[0].Plan != "Q9" {
		t.Errorf("matches = %+v", out.Matches)
	}
	postBody(t, ts.URL+"/api/sparql", "", http.StatusBadRequest, nil)
	postBody(t, ts.URL+"/api/sparql", "nonsense", http.StatusUnprocessableEntity, nil)
}

func TestKBEndpoints(t *testing.T) {
	_, ts := testServer(t)
	var entries []entryInfo
	getJSON(t, ts.URL+"/api/kb", http.StatusOK, &entries)
	if len(entries) != 4 {
		t.Fatalf("entries = %d", len(entries))
	}

	// Add an entry over the wire.
	req := addEntryRequest{
		Pattern: pattern.F(),
		Recommendations: []kb.Recommendation{{
			Title: "review CSE", Template: "check @TOP shared by @CONSUMER2 and @CONSUMER3",
		}},
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	postBody(t, ts.URL+"/api/kb/entries", string(body), http.StatusCreated, nil)
	getJSON(t, ts.URL+"/api/kb", http.StatusOK, &entries)
	if len(entries) != 5 {
		t.Fatalf("entries after add = %d", len(entries))
	}
	// Duplicate name rejected.
	postBody(t, ts.URL+"/api/kb/entries", string(body), http.StatusUnprocessableEntity, nil)
	// Entry without pattern rejected.
	postBody(t, ts.URL+"/api/kb/entries", `{"recommendations":[]}`, http.StatusBadRequest, nil)

	// Run the KB.
	var reports []reportBody
	postBody(t, ts.URL+"/api/kb/run", "", http.StatusOK, &reports)
	if len(reports) != 5 {
		t.Fatalf("reports = %d", len(reports))
	}
	var q2 *reportBody
	for i := range reports {
		if reports[i].Plan == "Q2" {
			q2 = &reports[i]
		}
	}
	if q2 == nil || len(q2.Recommendations) == 0 {
		t.Fatalf("Q2 report = %+v", q2)
	}
	if !strings.Contains(q2.Recommendations[0].Text, "CUST_DIM") {
		t.Errorf("recommendation lacks context: %s", q2.Recommendations[0].Text)
	}
}

func TestNilKBDefaultsToCanonical(t *testing.T) {
	s := New(core.New(), nil)
	if s.kb.Len() != 4 {
		t.Errorf("default kb entries = %d", s.kb.Len())
	}
}

func doDelete(t *testing.T, url string, wantStatus int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("DELETE %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
}

func TestDeletePlanEndpoint(t *testing.T) {
	_, ts := testServer(t)
	doDelete(t, ts.URL+"/api/plans/Q2", http.StatusOK)
	doDelete(t, ts.URL+"/api/plans/Q2", http.StatusNotFound)
	var plans []planInfo
	getJSON(t, ts.URL+"/api/plans", http.StatusOK, &plans)
	if len(plans) != 4 {
		t.Errorf("plans after delete = %d", len(plans))
	}
	// The removed ID is free for re-upload.
	for _, p := range fixtures.All() {
		if p.ID == "Q2" {
			postBody(t, ts.URL+"/api/plans", qep.Text(p), http.StatusCreated, nil)
		}
	}
}

func TestDeleteKBEntryEndpoint(t *testing.T) {
	_, ts := testServer(t)
	doDelete(t, ts.URL+"/api/kb/entries/loj-both-sides", http.StatusOK)
	doDelete(t, ts.URL+"/api/kb/entries/loj-both-sides", http.StatusNotFound)
	var entries []entryInfo
	getJSON(t, ts.URL+"/api/kb", http.StatusOK, &entries)
	if len(entries) != 3 {
		t.Errorf("entries after delete = %d", len(entries))
	}
}

func TestStatsEndpointWithoutStore(t *testing.T) {
	_, ts := testServer(t)
	var stats statsBody
	getJSON(t, ts.URL+"/api/stats", http.StatusOK, &stats)
	if stats.Plans != 5 || stats.KBEntries != 4 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Store != nil {
		t.Errorf("store stats without store: %+v", stats.Store)
	}
	// Compaction needs a durable store.
	postBody(t, ts.URL+"/api/admin/compact", "", http.StatusNotImplemented, nil)
}

// storeServer builds a server over a durable store in dir.
func storeServer(t *testing.T, dir string) (*store.Store, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ts := httptest.NewServer(New(st.Engine(), st.KB(), WithStore(st)).Handler())
	t.Cleanup(ts.Close)
	return st, ts
}

func TestStoreBackedServerSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st, ts := storeServer(t, dir)

	for _, p := range fixtures.All() {
		postBody(t, ts.URL+"/api/plans", qep.Text(p), http.StatusCreated, nil)
	}
	req := addEntryRequest{
		Pattern: pattern.F(),
		Recommendations: []kb.Recommendation{{
			Title: "review CSE", Template: "check @TOP shared by @CONSUMER2 and @CONSUMER3",
		}},
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	postBody(t, ts.URL+"/api/kb/entries", string(body), http.StatusCreated, nil)
	doDelete(t, ts.URL+"/api/plans/Q9", http.StatusOK)

	var stats statsBody
	getJSON(t, ts.URL+"/api/stats", http.StatusOK, &stats)
	if stats.Store == nil || stats.Store.AppendedRecords != 7 {
		t.Fatalf("store stats = %+v", stats.Store)
	}
	// Compaction over the API shrinks the WAL without changing state.
	postBody(t, ts.URL+"/api/admin/compact", "", http.StatusOK, nil)
	getJSON(t, ts.URL+"/api/stats", http.StatusOK, &stats)
	if stats.Store.WALBytes != 0 || stats.Store.Generation != 1 {
		t.Fatalf("store stats after compact = %+v", stats.Store)
	}
	ts.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh store over the same directory serves the same state.
	_, ts2 := storeServer(t, dir)
	var plans []planInfo
	getJSON(t, ts2.URL+"/api/plans", http.StatusOK, &plans)
	if len(plans) != 4 {
		t.Fatalf("plans after restart = %d", len(plans))
	}
	for _, p := range plans {
		if p.ID == "Q9" {
			t.Error("deleted plan resurrected")
		}
	}
	var entries []entryInfo
	getJSON(t, ts2.URL+"/api/kb", http.StatusOK, &entries)
	if len(entries) != 5 {
		t.Fatalf("kb entries after restart = %d", len(entries))
	}
}

// TestConcurrentKBReadsAndWrites hammers the KB read paths while entries
// are being added; run with -race this fails if any path touches the entry
// list without synchronization.
func TestConcurrentKBReadsAndWrites(t *testing.T) {
	_, ts := testServer(t)
	const writers, readers, iters = 8, 8, 25
	var wg sync.WaitGroup
	for wtr := 0; wtr < writers; wtr++ {
		wg.Add(1)
		go func(wtr int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				b := pattern.NewBuilder(fmt.Sprintf("hammer-%d-%d", wtr, i), "race test")
				b.Pop("SORT").Alias("TOP")
				req := addEntryRequest{
					Pattern:         b.MustBuild(),
					Recommendations: []kb.Recommendation{{Title: "t", Template: "inspect @TOP"}},
				}
				body, err := json.Marshal(req)
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := http.Post(ts.URL+"/api/kb/entries", "application/json", strings.NewReader(string(body)))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusCreated {
					t.Errorf("add entry: status %d", resp.StatusCode)
				}
			}
		}(wtr)
	}
	for rdr := 0; rdr < readers; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Get(ts.URL + "/api/kb")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				resp, err = http.Post(ts.URL+"/api/kb/run", "text/plain", nil)
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	var entries []entryInfo
	getJSON(t, ts.URL+"/api/kb", http.StatusOK, &entries)
	if len(entries) != 4+writers*iters {
		t.Errorf("entries = %d, want %d", len(entries), 4+writers*iters)
	}
}
