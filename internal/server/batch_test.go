package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"optimatch/internal/cache"
	"optimatch/internal/core"
	"optimatch/internal/fixtures"
	"optimatch/internal/qep"
	"optimatch/internal/store"
)

// ndjson renders explain texts as an NDJSON batch body, one JSON string per
// line (the explain text itself is multi-line, hence the JSON framing).
func ndjson(t *testing.T, texts ...string) string {
	t.Helper()
	var b strings.Builder
	for _, text := range texts {
		line, err := json.Marshal(text)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteString("\n")
	}
	return b.String()
}

// fixtureTexts renders n distinctly-named fixture plans to explain text.
func fixtureTexts(n int) []string {
	plans := fixtures.Numbered(n)
	out := make([]string, n)
	for i, p := range plans {
		out[i] = qep.Text(p)
	}
	return out
}

func postBatch(t *testing.T, url, body string) (*http.Response, batchResponse) {
	t.Helper()
	resp, err := http.Post(url+"/api/plans:batch", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br batchResponse
	if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusInternalServerError {
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatalf("decoding batch response: %v", err)
		}
	}
	return resp, br
}

func TestBatchUploadAllCreated(t *testing.T) {
	eng := core.New(core.WithShards(4))
	s := New(eng, nil)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	texts := fixtureTexts(6)
	genBefore := eng.Generation()
	resp, br := postBatch(t, ts.URL, ndjson(t, texts...))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d, want 201", resp.StatusCode)
	}
	if br.Accepted != len(texts) || br.Rejected != 0 {
		t.Fatalf("accepted/rejected = %d/%d, want %d/0", br.Accepted, br.Rejected, len(texts))
	}
	for i, res := range br.Results {
		if res.Status != http.StatusCreated || res.ID == "" || res.Index != i {
			t.Fatalf("result %d = %+v, want 201 with an ID", i, res)
		}
	}
	if got := eng.NumPlans(); got != len(texts) {
		t.Fatalf("NumPlans = %d, want %d", got, len(texts))
	}
	// The whole batch is one generation bump: a result cache keyed on the
	// generation invalidates once, not per plan.
	if got := eng.Generation(); got != genBefore+1 {
		t.Fatalf("generation moved %d -> %d across one batch, want exactly +1", genBefore, got)
	}
}

func TestBatchUploadMixedOutcomes207(t *testing.T) {
	eng := core.New(core.WithShards(2))
	if err := eng.LoadPlans(fixtures.Numbered(1)); err != nil { // W1 pre-loaded
		t.Fatal(err)
	}
	s := New(eng, nil)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	texts := fixtureTexts(3) // W1 (dup), W2, W3
	body := ndjson(t, texts[0], texts[1], "garbage explain", texts[2]) + "{\"noText\":1}\nnot-json\n"
	resp, br := postBatch(t, ts.URL, body)
	if resp.StatusCode != http.StatusMultiStatus {
		t.Fatalf("status = %d, want 207", resp.StatusCode)
	}
	wantStatus := []int{
		http.StatusConflict,            // duplicate of the pre-loaded W1
		http.StatusCreated,             // fresh
		http.StatusUnprocessableEntity, // parses as JSON, not as a plan
		http.StatusCreated,             // fresh
		http.StatusUnprocessableEntity, // object without "text"
		http.StatusUnprocessableEntity, // not valid JSON at all
	}
	if len(br.Results) != len(wantStatus) {
		t.Fatalf("results = %d, want %d", len(br.Results), len(wantStatus))
	}
	for i, want := range wantStatus {
		if br.Results[i].Status != want {
			t.Fatalf("result %d status = %d (%s), want %d", i, br.Results[i].Status, br.Results[i].Error, want)
		}
		if want != http.StatusCreated && br.Results[i].Error == "" {
			t.Fatalf("result %d rejected without an error message", i)
		}
	}
	if br.Accepted != 2 || br.Rejected != 4 {
		t.Fatalf("accepted/rejected = %d/%d, want 2/4", br.Accepted, br.Rejected)
	}
	if got := eng.NumPlans(); got != 3 {
		t.Fatalf("NumPlans = %d, want 3", got)
	}
}

func TestBatchUploadAllRejected422(t *testing.T) {
	_, ts := testServer(t)
	resp, br := postBatch(t, ts.URL, "\"garbage one\"\n\"garbage two\"\n")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
	if br.Accepted != 0 || br.Rejected != 2 {
		t.Fatalf("accepted/rejected = %d/%d, want 0/2", br.Accepted, br.Rejected)
	}
}

func TestBatchUploadFraming400(t *testing.T) {
	eng := core.New()
	s := New(eng, nil, WithBatchLimits(2, 0))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Empty body (and blank lines only) is malformed framing.
	for _, body := range []string{"", "\n\n  \n"} {
		resp, _ := postBatch(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("empty batch: status = %d, want 400", resp.StatusCode)
		}
	}
	// Over the record limit: rejected before any record is examined.
	resp, _ := postBatch(t, ts.URL, "\"a\"\n\"b\"\n\"c\"\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status = %d, want 400", resp.StatusCode)
	}
	if got := eng.NumPlans(); got != 0 {
		t.Fatalf("rejected framing loaded %d plans", got)
	}
}

// TestBatchUploadObjectRecords: the {"text": ...} record form loads like the
// bare-string form.
func TestBatchUploadObjectRecords(t *testing.T) {
	eng := core.New()
	s := New(eng, nil)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	texts := fixtureTexts(2)
	var b strings.Builder
	for _, text := range texts {
		line, err := json.Marshal(map[string]string{"text": text})
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteString("\n")
	}
	resp, br := postBatch(t, ts.URL, b.String())
	if resp.StatusCode != http.StatusCreated || br.Accepted != 2 {
		t.Fatalf("status = %d accepted = %d, want 201 / 2", resp.StatusCode, br.Accepted)
	}
}

// TestBatchUploadStoreSingleFsync is the durability half of the batch
// contract over HTTP: a store-backed batch of N plans costs one WAL record
// and one fsync, and /api/stats exposes the batch counters.
func TestBatchUploadStoreSingleFsync(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.WithEngineOptions(core.WithShards(4)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s := New(st.Engine(), st.KB(), WithStore(st))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	texts := fixtureTexts(8)
	before := st.Stats()
	resp, br := postBatch(t, ts.URL, ndjson(t, texts...))
	if resp.StatusCode != http.StatusCreated || br.Accepted != len(texts) {
		t.Fatalf("status = %d accepted = %d, want 201 / %d", resp.StatusCode, br.Accepted, len(texts))
	}
	after := st.Stats()
	if got := after.Fsyncs - before.Fsyncs; got != 1 {
		t.Fatalf("batch of %d plans cost %d fsyncs, want 1", len(texts), got)
	}
	if after.BatchAppends != 1 || after.BatchPlans != int64(len(texts)) {
		t.Fatalf("store batch counters = %d appends / %d plans, want 1 / %d",
			after.BatchAppends, after.BatchPlans, len(texts))
	}

	var stats statsBody
	getJSON(t, ts.URL+"/api/stats", http.StatusOK, &stats)
	if stats.Batch.Requests != 1 || stats.Batch.Accepted != int64(len(texts)) {
		t.Fatalf("stats.Batch = %+v", stats.Batch)
	}
	if len(stats.Shards) != 4 {
		t.Fatalf("stats.Shards has %d entries, want 4", len(stats.Shards))
	}
	totalPlans := 0
	for _, sh := range stats.Shards {
		totalPlans += sh.Plans
	}
	if totalPlans != len(texts) {
		t.Fatalf("shard stats sum to %d plans, want %d", totalPlans, len(texts))
	}
}

// TestBatchHammerRace mixes concurrent batch ingests with cached and
// bypassed KB scans; under -race it proves the sharded snapshot/generation
// protocol holds with the full HTTP stack in the loop.
func TestBatchHammerRace(t *testing.T) {
	c := cache.New(cache.Config{MaxBytes: 16 << 20})
	eng := core.New(core.WithShards(4), core.WithResultCache(c))
	s := New(eng, nil, WithResultCache(c))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	const batches = 6
	var wg sync.WaitGroup
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			plans := fixtures.Numbered(4)
			texts := make([]string, len(plans))
			for i, p := range plans {
				texts[i] = qep.Text(fixtures.Renamed(p, fmt.Sprintf("H%d-%d", b, i)))
			}
			resp, br := postBatch(t, ts.URL, ndjson(t, texts...))
			if resp.StatusCode != http.StatusCreated || br.Accepted != len(texts) {
				t.Errorf("batch %d: status %d accepted %d", b, resp.StatusCode, br.Accepted)
			}
		}(b)
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			hdr := map[string]string{}
			if g%2 == 1 {
				hdr["Cache-Control"] = "no-cache" // bypass: always scans
			}
			for i := 0; i < 3; i++ {
				resp, _ := cacheReq(t, "POST", ts.URL+"/api/kb/run", "", hdr)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("kb/run: status %d", resp.StatusCode)
				}
			}
		}(g)
	}
	wg.Wait()
	if got, want := eng.NumPlans(), batches*4; got != want {
		t.Fatalf("NumPlans = %d, want %d", got, want)
	}
	// A final scan after the dust settles must see every plan exactly once.
	resp, body := cacheReq(t, "POST", ts.URL+"/api/kb/run", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final kb/run: status %d", resp.StatusCode)
	}
	var reports []reportBody
	if err := json.Unmarshal([]byte(body), &reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != batches*4 {
		t.Fatalf("final scan reported %d plans, want %d", len(reports), batches*4)
	}
}
