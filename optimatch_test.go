package optimatch

import (
	"bytes"
	"strings"
	"testing"

	"optimatch/internal/fixtures"
)

// TestPublicAPIEndToEnd drives the whole pipeline through the facade only:
// plan text -> engine -> pattern search -> knowledge-base recommendations.
func TestPublicAPIEndToEnd(t *testing.T) {
	eng := New(WithWorkers(2))

	var buf bytes.Buffer
	if err := WritePlan(&buf, fixtures.Figure1()); err != nil {
		t.Fatal(err)
	}
	plan, err := eng.LoadText(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if plan.ID != "Q2" {
		t.Fatalf("plan = %s", plan.ID)
	}

	// Render for humans.
	if !strings.Contains(RenderPlan(plan), "NLJOIN") {
		t.Error("rendered plan missing NLJOIN")
	}

	// Canonical pattern search.
	matches, err := eng.FindPattern(PatternA())
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].Binding("BASE4").Display != "CUST_DIM" {
		t.Fatalf("matches = %+v", matches)
	}

	// Knowledge-base scan.
	reports, err := eng.RunKB(CanonicalKB())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || !reports[0].HasRecommendations() {
		t.Fatalf("reports = %+v", reports)
	}
	if s := Summarize(reports); s.PlansMatched != 1 {
		t.Errorf("summary = %+v", s)
	}
}

func TestPublicAPICustomPattern(t *testing.T) {
	b := NewPatternBuilder("expensive-sort-over-join", "sort above any join")
	srt := b.Pop("SORT")
	j := b.Pop(TypeJoin)
	srt.Descendant(j)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := CompilePattern(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Query, "SELECT") {
		t.Error("compiled query malformed")
	}

	// JSON round trip through the facade.
	data, err := p.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParsePatternJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Name != p.Name {
		t.Error("JSON round trip lost name")
	}
}

func TestPublicAPIClustering(t *testing.T) {
	w, err := GenerateWorkload(WorkloadConfig{Seed: 9, NumPlans: 24, MinOps: 15, MaxOps: 120, InjectA: 6})
	if err != nil {
		t.Fatal(err)
	}
	eng := New()
	if err := eng.LoadPlans(w.Plans); err != nil {
		t.Fatal(err)
	}
	clusters, err := ClusterWorkload(w.Plans, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if clusters.K() != 3 {
		t.Fatalf("K = %d", clusters.K())
	}
	matches, err := eng.FindPattern(PatternA())
	if err != nil {
		t.Fatal(err)
	}
	pc := CorrelateMatches(clusters, "A", matches, len(w.Plans))
	if pc.Overall <= 0 {
		t.Errorf("overall rate = %v", pc.Overall)
	}
	sum := 0.0
	for c, cl := range clusters.Clusters {
		sum += pc.Rate[c] * float64(len(cl.PlanIDs))
	}
	if diff := sum - pc.Overall*float64(len(w.Plans)); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("cluster rates inconsistent with overall: %v", diff)
	}
}

func TestPublicAPIGenericGraph(t *testing.T) {
	g := NewGraph()
	g.Add(IRI("urn:e1"), IRI("urn:kind"), Lit("REQUEST"))
	g.Add(IRI("urn:e1"), IRI("urn:caused"), IRI("urn:e2"))
	g.Add(IRI("urn:e2"), IRI("urn:kind"), Lit("TIMEOUT"))
	g.Add(IRI("urn:e2"), IRI("urn:latency"), Num(5000))
	g.Add(IRI("urn:e2"), IRI("urn:flag"), BoolTerm(true))
	_ = Blank("b")

	res, err := Query(g, `SELECT ?r WHERE { ?r <urn:kind> "REQUEST" . ?r <urn:caused>+ ?t . ?t <urn:kind> "TIMEOUT" }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Get(0, "r").Value != "urn:e1" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if _, err := Query(g, "not sparql"); err == nil {
		t.Error("bad query accepted")
	}

	var buf bytes.Buffer
	if err := WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != g.Len() {
		t.Errorf("round trip = %d triples, want %d", g2.Len(), g.Len())
	}
}

func TestPublicAPIWorkloadAndKBPersistence(t *testing.T) {
	w, err := GenerateWorkload(WorkloadConfig{Seed: 5, NumPlans: 8, MinOps: 15, MaxOps: 30, InjectA: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := New()
	if err := eng.LoadPlans(w.Plans); err != nil {
		t.Fatal(err)
	}
	matches, err := eng.FindPattern(PatternA())
	if err != nil {
		t.Fatal(err)
	}
	planSet := map[string]bool{}
	for _, m := range matches {
		planSet[m.Plan.ID] = true
	}
	if len(planSet) != 2 {
		t.Errorf("matched plans = %d, want 2", len(planSet))
	}

	var buf bytes.Buffer
	k := CanonicalKB()
	if err := k.Save(&buf); err != nil {
		t.Fatal(err)
	}
	k2, err := LoadKB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if k2.Len() != k.Len() {
		t.Error("KB persistence through facade broken")
	}
}
