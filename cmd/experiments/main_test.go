package main

import (
	"flag"
	"os"
	"testing"
)

// runExperiments invokes run() with a fresh flag set.
func runExperiments(t *testing.T, args ...string) error {
	t.Helper()
	oldArgs := os.Args
	oldCmd := flag.CommandLine
	defer func() {
		os.Args = oldArgs
		flag.CommandLine = oldCmd
	}()
	flag.CommandLine = flag.NewFlagSet("experiments", flag.ContinueOnError)
	os.Args = append([]string{"experiments"}, args...)
	return run()
}

// TestQuickTable1 smoke-tests the experiment driver end to end at the
// smallest scale (the precision study over 100 small plans).
func TestQuickTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment driver run")
	}
	if err := runExperiments(t, "-quick", "-table1", "-seed", "7"); err != nil {
		t.Fatal(err)
	}
}
