// Command experiments regenerates every table and figure of the paper's
// evaluation section against the synthetic workload (see DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	experiments -all            # every figure, table and ablation at paper scale
//	experiments -all -quick     # scaled-down run (seconds, for smoke testing)
//	experiments -fig 9          # a single figure (9, 10, 11 or 12)
//	experiments -table1         # Table 1 only
//	experiments -ablations      # the DESIGN.md ablation studies
package main

import (
	"flag"
	"fmt"
	"os"

	"optimatch/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		all       = flag.Bool("all", false, "run everything")
		fig       = flag.Int("fig", 0, "run one figure (9, 10, 11, 12)")
		table1    = flag.Bool("table1", false, "run Table 1 (precision study)")
		ablations = flag.Bool("ablations", false, "run the ablation studies")
		quick     = flag.Bool("quick", false, "scaled-down configuration")
		seed      = flag.Int64("seed", 2016, "experiment seed")
	)
	flag.Parse()
	if !*all && *fig == 0 && !*table1 && !*ablations {
		*all = true
	}

	if *all || *fig == 9 {
		cfg := experiments.Fig9Config{Seed: *seed}
		if *quick {
			cfg.Sizes = []int{20, 40, 60, 80, 100}
			cfg.Reps = 2
			cfg.MinOps, cfg.MaxOps = 30, 90
		}
		fmt.Fprintln(os.Stderr, "running Figure 9 (search time vs workload size)...")
		res, err := experiments.Figure9(cfg)
		if err != nil {
			return err
		}
		res.Table().Fprint(os.Stdout)
	}

	if *all || *fig == 10 {
		cfg := experiments.Fig10Config{Seed: *seed}
		if *quick {
			cfg.BucketTargets = []int{25, 75, 125, 225}
			cfg.PlansPerSize = 4
			cfg.Reps = 2
		}
		fmt.Fprintln(os.Stderr, "running Figure 10 (per-plan time vs LOLEPOP count)...")
		res, err := experiments.Figure10(cfg)
		if err != nil {
			return err
		}
		res.Table().Fprint(os.Stdout)
	}

	if *all || *fig == 11 {
		cfg := experiments.Fig11Config{Seed: *seed}
		if *quick {
			cfg.NumPlans = 60
			cfg.KBSizes = []int{1, 10, 25, 50}
			cfg.MinOps, cfg.MaxOps = 30, 90
		}
		fmt.Fprintln(os.Stderr, "running Figure 11 (scan time vs KB size)...")
		res, err := experiments.Figure11(cfg)
		if err != nil {
			return err
		}
		res.Table().Fprint(os.Stdout)
	}

	if *all || *fig == 12 || *table1 {
		cfg := experiments.Fig12Config{Seed: *seed}
		if *quick {
			cfg.MinOps, cfg.MaxOps = 30, 90
		}
		fmt.Fprintln(os.Stderr, "running Figure 12 / Table 1 (comparative user study)...")
		res, err := experiments.Figure12(cfg)
		if err != nil {
			return err
		}
		if *all || *fig == 12 {
			res.TimeTable().Fprint(os.Stdout)
		}
		if *all || *table1 {
			res.PrecisionTable().Fprint(os.Stdout)
		}
	}

	if *all || *ablations {
		cfg := experiments.AblationConfig{Seed: *seed}
		if *quick {
			cfg.NumPlans = 30
			cfg.MinOps, cfg.MaxOps = 30, 90
		}
		fmt.Fprintln(os.Stderr, "running ablations...")
		var results []experiments.AblationResult
		idx, err := experiments.AblationIndexes(cfg)
		if err != nil {
			return err
		}
		results = append(results, idx)
		reorder, err := experiments.AblationReorder(cfg)
		if err != nil {
			return err
		}
		results = append(results, reorder)
		derived, err := experiments.AblationDerivedPredicates(cfg)
		if err != nil {
			return err
		}
		results = append(results, derived)
		experiments.AblationTable(results).Fprint(os.Stdout)
	}
	return nil
}
