// Command optimatchd serves the OptImatch engine over HTTP — the paper's
// client/server deployment (Figure 4). Load a workload directory at start,
// then drive it with the JSON API (see internal/server for endpoints):
//
//	optimatchd -addr :8080 -load ./workload -extended
//
//	curl localhost:8080/api/plans
//	curl -X POST --data-binary @plan.exfmt localhost:8080/api/plans
//	curl -X POST --data-binary @pattern.json localhost:8080/api/search
//	curl -X POST localhost:8080/api/kb/run
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"optimatch/internal/core"
	"optimatch/internal/kb"
	"optimatch/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "optimatchd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		load      = flag.String("load", "", "directory of explain files to load at start")
		kbFile    = flag.String("kb", "", "knowledge base JSON (default: built-in canonical patterns)")
		extended  = flag.Bool("extended", false, "use the extended built-in knowledge base (patterns E-G)")
		workers   = flag.Int("workers", 0, "matcher worker-pool size (default: GOMAXPROCS)")
		prefilter = flag.Bool("prefilter", true, "vocabulary prefilter + per-graph query specialization")
	)
	flag.Parse()

	// The engine caches parsed queries, so repeated searches over the API
	// skip the SPARQL parser entirely.
	eng := core.New(core.WithWorkers(*workers), core.WithPrefilter(*prefilter))
	if *load != "" {
		n, err := eng.LoadDir(*load)
		if err != nil {
			return err
		}
		log.Printf("loaded %d plan(s) from %s", n, *load)
	}

	var base *kb.KnowledgeBase
	switch {
	case *kbFile != "":
		f, err := os.Open(*kbFile)
		if err != nil {
			return err
		}
		base, err = kb.Load(f)
		f.Close()
		if err != nil {
			return err
		}
	case *extended:
		base = kb.MustExtended()
	default:
		base = kb.MustCanonical()
	}
	log.Printf("knowledge base: %d entries", base.Len())

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(eng, base).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("optimatchd listening on %s", *addr)
	return srv.ListenAndServe()
}
