// Command optimatchd serves the OptImatch engine over HTTP — the paper's
// client/server deployment (Figure 4). Load a workload directory at start,
// then drive it with the JSON API (see internal/server for endpoints):
//
//	optimatchd -addr :8080 -load ./workload -extended
//
//	curl localhost:8080/api/plans
//	curl -X POST --data-binary @plan.exfmt localhost:8080/api/plans
//	curl -X POST --data-binary @pattern.json localhost:8080/api/search
//	curl -X POST localhost:8080/api/kb/run
//
// With -data the daemon becomes stateful: plan uploads and knowledge-base
// mutations are journaled to a write-ahead log under the given directory
// and recovered on the next start, so the repository of problem plans
// accumulates across sessions:
//
//	optimatchd -addr :8080 -data ./optimatch-data
//
// The plan repository is sharded (-shards; 0 = auto) so concurrent ingest
// and scans on different shards never contend; results are byte-identical
// at any shard count. Workload-scale ingest goes through POST
// /api/plans:batch (NDJSON, one plan per line, bounded by
// -batch-max-records/-batch-max-bytes): the whole batch is one WAL record,
// one fsync and one result-cache invalidation, with a per-record outcome
// report.
//
// The daemon is observable in production: every request gets a structured
// access-log line (-log-format json for machine ingestion, -slow-ms for a
// WARN on slow requests), GET /metrics exposes per-stage counters and
// latency histograms across every layer in the Prometheus text format, and
// -debug-addr serves net/http/pprof on a separate, private listener.
//
// Execution is deadline-aware: -query-timeout bounds every engine scan
// (clients may shorten it per request with an X-Timeout-Ms header; 504 on
// expiry), and -max-inflight/-queue-wait add an admission gate that sheds
// excess load with 503 + Retry-After instead of queueing without bound.
//
// Repeated searches and scans are served from a generation-keyed result
// cache (-cache-bytes budget, optional -cache-ttl/-cache-min-cost):
// mutations change the cache key instead of invalidating, concurrent
// identical requests collapse onto one execution, responses carry an
// X-Cache header, and Cache-Control: no-cache bypasses per request.
//
// Storage faults do not kill the daemon: when a WAL append or compaction
// hits a disk error the store enters degraded read-only mode — writes
// answer 503 + Retry-After while reads, scans and cached responses keep
// serving — and GET /readyz reports ok|degraded|closed for probes. Every
// fault and degraded/recovered transition is logged; POST
// /api/admin/reopen re-verifies the journal tail and resumes writes once
// the disk is fixed. With -fail-on-degraded the daemon exits with code 3
// when it shuts down while still degraded, so supervisors distinguish a
// clean stop from one that left the store read-only.
//
// On SIGINT/SIGTERM the daemon drains in-flight requests — cancelling
// still-running engine scans halfway through the drain window — and
// flushes the store before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"optimatch/internal/cache"
	"optimatch/internal/core"
	"optimatch/internal/kb"
	"optimatch/internal/obs"
	"optimatch/internal/server"
	"optimatch/internal/store"
)

// shutdownTimeout bounds how long draining in-flight requests may take.
const shutdownTimeout = 10 * time.Second

// errDegradedExit reports a shutdown that left the store degraded while
// -fail-on-degraded was set. main turns it into exit code 3 so process
// supervisors can page on "stopped read-only" separately from crashes.
var errDegradedExit = errors.New("store was degraded at shutdown")

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "optimatchd:", err)
		if errors.Is(err, errDegradedExit) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		load         = flag.String("load", "", "directory of explain files to load at start")
		kbFile       = flag.String("kb", "", "knowledge base JSON (default: built-in canonical patterns)")
		extended     = flag.Bool("extended", false, "use the extended built-in knowledge base (patterns E-G)")
		workers      = flag.Int("workers", 0, "matcher worker-pool size (default: GOMAXPROCS)")
		prefilter    = flag.Bool("prefilter", true, "vocabulary prefilter + per-graph query specialization")
		shards       = flag.Int("shards", 0, "plan-store shard count; scans stay byte-identical at any value (0: auto = GOMAXPROCS capped at 16)")
		batchMaxRecs = flag.Int("batch-max-records", 1024, "max NDJSON records accepted by one POST /api/plans:batch")
		batchMaxB    = flag.Int64("batch-max-bytes", 8<<20, "max request-body bytes for one POST /api/plans:batch")
		data         = flag.String("data", "", "durable store directory (empty: in-memory only, state lost on exit)")
		compactEvery = flag.Int64("compact-every", 1024, "auto-compact the store once its WAL holds this many records (0: manual only)")
		failDegraded = flag.Bool("fail-on-degraded", false, "exit with code 3 when shutting down while the store is degraded (read-only)")
		queryTimeout = flag.Duration("query-timeout", 30*time.Second, "deadline for one engine execution (search/sparql/kb-run); clients may shorten it per request with X-Timeout-Ms (0: no deadline)")
		cacheBytes   = flag.Int64("cache-bytes", 64<<20, "byte budget for the generation-keyed result cache (0: caching disabled)")
		cacheTTL     = flag.Duration("cache-ttl", 0, "optional max age for cached results; generation keying already guarantees freshness, a TTL only bounds memory held by idle entries (0: no TTL)")
		cacheMinCost = flag.Duration("cache-min-cost", 0, "only cache results whose execution took at least this long (0: cache everything)")
		maxInflight  = flag.Int("max-inflight", 0, "cap on concurrently admitted scan work, in weighted units (kb/run counts 2, search/sparql 1; 0: unlimited)")
		queueWait    = flag.Duration("queue-wait", 100*time.Millisecond, "how long a request may queue for an admission slot before being shed with 503")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat    = flag.String("log-format", "text", "log format: text or json")
		slowMS       = flag.Int64("slow-ms", 500, "WARN-log requests slower than this many milliseconds (0: disabled)")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof and /metrics on this private address (empty: disabled)")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	if *logFormat != "text" && *logFormat != "json" {
		return fmt.Errorf("unknown -log-format %q (want text or json)", *logFormat)
	}
	log := obs.NewLogger(os.Stderr, level, *logFormat)
	slog.SetDefault(log)
	reg := obs.NewRegistry()

	engOpts := []core.Option{
		core.WithWorkers(*workers),
		core.WithPrefilter(*prefilter),
		core.WithShards(*shards),
		core.WithInstrumentation(server.EngineInstrumentation(reg)),
	}

	// One cache instance backs both tiers: the engine caches structured scan
	// results, the server caches rendered response bytes. Namespaced keys
	// keep them apart while one -cache-bytes budget bounds the total.
	var resCache *cache.Cache
	if *cacheBytes > 0 {
		resCache = cache.New(cache.Config{
			MaxBytes: *cacheBytes,
			TTL:      *cacheTTL,
			MinCost:  *cacheMinCost,
		})
		engOpts = append(engOpts, core.WithResultCache(resCache))
	}

	base, err := loadKB(*kbFile, *extended)
	if err != nil {
		return err
	}

	// execCtx is the base context of every request: cancelling it stops all
	// in-flight engine work cooperatively. It fires halfway through the
	// shutdown drain, so well-behaved requests finish naturally and
	// long-running scans are cut short instead of holding the drain hostage.
	execCtx, cancelExec := context.WithCancel(context.Background())
	defer cancelExec()

	serverOpts := []server.Option{
		server.WithLogger(log),
		server.WithMetrics(reg),
		server.WithSlowThreshold(time.Duration(*slowMS) * time.Millisecond),
		server.WithQueryTimeout(*queryTimeout),
		server.WithAdmission(*maxInflight, *queueWait),
		server.WithBaseContext(execCtx),
		server.WithBatchLimits(*batchMaxRecs, *batchMaxB),
	}
	if resCache != nil {
		serverOpts = append(serverOpts, server.WithResultCache(resCache))
	}
	var (
		eng *core.Engine
		st  *store.Store
	)
	if *data != "" {
		// The store owns the engine and knowledge base: recovery replays
		// the snapshot + WAL tail into them before we serve a byte. The
		// -kb/-extended flags only seed a store that has no snapshot yet.
		instr := server.StoreInstrumentation(reg)
		// Fault and recovery transitions are operator events, not just
		// metrics: log them at ERROR/INFO so a degraded daemon is visible in
		// the stream even without a Prometheus scrape.
		instr.Degrade = func(op string, cause error) {
			log.Error("store degraded: writes rejected until reopen",
				"op", op, "error", cause)
		}
		instr.Reopen = func(ok bool) {
			if ok {
				log.Info("store reopened: accepting writes again")
			} else {
				log.Error("store reopen failed: still degraded")
			}
		}
		st, err = store.Open(*data,
			store.WithEngineOptions(engOpts...),
			store.WithDefaultKB(base),
			store.WithAutoCompact(*compactEvery),
			store.WithInstrumentation(instr),
		)
		if err != nil {
			return err
		}
		defer st.Close()
		eng = st.Engine()
		base = st.KB()
		serverOpts = append(serverOpts, server.WithStore(st))
		stats := st.Stats()
		log.Info("store recovered", "dir", *data, "generation", stats.Generation,
			"plans", eng.NumPlans(), "walRecordsReplayed", stats.RecoveredRecords,
			"tornTailsTruncated", stats.RecoveryTruncations)
	} else {
		// The engine caches parsed queries, so repeated searches over the
		// API skip the SPARQL parser entirely.
		eng = core.New(engOpts...)
	}

	if *load != "" {
		n, err := loadDir(eng, st, *load)
		if err != nil {
			return err
		}
		log.Info("workload loaded", "dir", *load, "plans", n)
	}
	log.Info("knowledge base ready", "entries", base.Len())

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(eng, base, serverOpts...).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return execCtx },
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           debugMux(reg),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Info("debug listener up (pprof + metrics)", "addr", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Error("debug listener failed", "error", err)
			}
		}()
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests and flush
	// the store so acknowledged mutations are on disk before we exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Info("optimatchd listening", "addr", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // bind failure or unexpected server stop
	case <-ctx.Done():
	}
	stop()
	log.Info("shutting down", "drainTimeout", shutdownTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	// Give in-flight requests half the drain window to finish on their own,
	// then cancel the base context: engine scans observe it and return (the
	// server answers those with 503 + Retry-After), so a runaway query can
	// delay shutdown by at most half the timeout instead of all of it.
	cutShort := time.AfterFunc(shutdownTimeout/2, cancelExec)
	defer cutShort.Stop()
	if debugSrv != nil {
		_ = debugSrv.Shutdown(shutdownCtx)
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("draining: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if st != nil {
		degraded := st.Health().State == store.HealthDegraded
		if err := st.Close(); err != nil {
			return err
		}
		log.Info("store flushed and closed")
		if degraded && *failDegraded {
			return errDegradedExit
		}
	}
	return nil
}

// debugMux serves pprof and the metrics registry on the -debug-addr
// listener, which is meant to stay private (bind it to localhost).
func debugMux(reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /metrics", reg.Handler())
	return mux
}

// loadKB resolves the -kb/-extended flags to a knowledge base.
func loadKB(kbFile string, extended bool) (*kb.KnowledgeBase, error) {
	switch {
	case kbFile != "":
		f, err := os.Open(kbFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return kb.Load(f)
	case extended:
		return kb.MustExtended(), nil
	default:
		return kb.MustCanonical(), nil
	}
}

// loadDir seeds the engine from a directory of explain files. With a store,
// plans go through the durable ingest path and already-recovered IDs are
// skipped (core.ErrDuplicatePlan — the same sentinel the server maps to
// 409), so -load -data restarts are idempotent.
func loadDir(eng *core.Engine, st *store.Store, dir string) (int, error) {
	if st == nil {
		return eng.LoadDir(dir)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		switch filepath.Ext(ent.Name()) {
		case ".txt", ".exfmt", ".exp":
		default:
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			return n, err
		}
		if _, err := st.AddPlan(string(data)); err != nil {
			if errors.Is(err, core.ErrDuplicatePlan) {
				continue // recovered from the store already
			}
			return n, fmt.Errorf("%s: %w", ent.Name(), err)
		}
		n++
	}
	return n, nil
}
