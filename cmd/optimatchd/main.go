// Command optimatchd serves the OptImatch engine over HTTP — the paper's
// client/server deployment (Figure 4). Load a workload directory at start,
// then drive it with the JSON API (see internal/server for endpoints):
//
//	optimatchd -addr :8080 -load ./workload -extended
//
//	curl localhost:8080/api/plans
//	curl -X POST --data-binary @plan.exfmt localhost:8080/api/plans
//	curl -X POST --data-binary @pattern.json localhost:8080/api/search
//	curl -X POST localhost:8080/api/kb/run
//
// With -data the daemon becomes stateful: plan uploads and knowledge-base
// mutations are journaled to a write-ahead log under the given directory
// and recovered on the next start, so the repository of problem plans
// accumulates across sessions:
//
//	optimatchd -addr :8080 -data ./optimatch-data
//
// On SIGINT/SIGTERM the daemon drains in-flight requests and flushes the
// store before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"optimatch/internal/core"
	"optimatch/internal/kb"
	"optimatch/internal/server"
	"optimatch/internal/store"
)

// shutdownTimeout bounds how long draining in-flight requests may take.
const shutdownTimeout = 10 * time.Second

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "optimatchd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		load         = flag.String("load", "", "directory of explain files to load at start")
		kbFile       = flag.String("kb", "", "knowledge base JSON (default: built-in canonical patterns)")
		extended     = flag.Bool("extended", false, "use the extended built-in knowledge base (patterns E-G)")
		workers      = flag.Int("workers", 0, "matcher worker-pool size (default: GOMAXPROCS)")
		prefilter    = flag.Bool("prefilter", true, "vocabulary prefilter + per-graph query specialization")
		data         = flag.String("data", "", "durable store directory (empty: in-memory only, state lost on exit)")
		compactEvery = flag.Int64("compact-every", 1024, "auto-compact the store once its WAL holds this many records (0: manual only)")
	)
	flag.Parse()

	engOpts := []core.Option{core.WithWorkers(*workers), core.WithPrefilter(*prefilter)}

	base, err := loadKB(*kbFile, *extended)
	if err != nil {
		return err
	}

	var (
		eng        *core.Engine
		st         *store.Store
		serverOpts []server.Option
	)
	if *data != "" {
		// The store owns the engine and knowledge base: recovery replays
		// the snapshot + WAL tail into them before we serve a byte. The
		// -kb/-extended flags only seed a store that has no snapshot yet.
		st, err = store.Open(*data,
			store.WithEngineOptions(engOpts...),
			store.WithDefaultKB(base),
			store.WithAutoCompact(*compactEvery),
		)
		if err != nil {
			return err
		}
		defer st.Close()
		eng = st.Engine()
		base = st.KB()
		serverOpts = append(serverOpts, server.WithStore(st))
		stats := st.Stats()
		log.Printf("store %s: generation %d, %d plan(s) recovered, %d WAL record(s) replayed, %d torn tail(s) truncated",
			*data, stats.Generation, eng.NumPlans(), stats.RecoveredRecords, stats.RecoveryTruncations)
	} else {
		// The engine caches parsed queries, so repeated searches over the
		// API skip the SPARQL parser entirely.
		eng = core.New(engOpts...)
	}

	if *load != "" {
		n, err := loadDir(eng, st, *load)
		if err != nil {
			return err
		}
		log.Printf("loaded %d plan(s) from %s", n, *load)
	}
	log.Printf("knowledge base: %d entries", base.Len())

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(eng, base, serverOpts...).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests and flush
	// the store so acknowledged mutations are on disk before we exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("optimatchd listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // bind failure or unexpected server stop
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutting down (draining for up to %s)", shutdownTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("draining: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if st != nil {
		if err := st.Close(); err != nil {
			return err
		}
		log.Printf("store flushed and closed")
	}
	return nil
}

// loadKB resolves the -kb/-extended flags to a knowledge base.
func loadKB(kbFile string, extended bool) (*kb.KnowledgeBase, error) {
	switch {
	case kbFile != "":
		f, err := os.Open(kbFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return kb.Load(f)
	case extended:
		return kb.MustExtended(), nil
	default:
		return kb.MustCanonical(), nil
	}
}

// loadDir seeds the engine from a directory of explain files. With a store,
// plans go through the durable ingest path and already-recovered IDs are
// skipped, so -load -data restarts are idempotent.
func loadDir(eng *core.Engine, st *store.Store, dir string) (int, error) {
	if st == nil {
		return eng.LoadDir(dir)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		switch filepath.Ext(ent.Name()) {
		case ".txt", ".exfmt", ".exp":
		default:
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			return n, err
		}
		if _, err := st.AddPlan(string(data)); err != nil {
			if errors.Is(err, core.ErrDuplicatePlan) {
				continue // recovered from the store already
			}
			return n, fmt.Errorf("%s: %w", ent.Name(), err)
		}
		n++
	}
	return n, nil
}
