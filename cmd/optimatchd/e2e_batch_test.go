//go:build e2e

package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"optimatch/internal/workload"
)

// TestCrashRecoveryBatchE2E is the batched-ingest counterpart of
// TestCrashRecoveryE2E: it streams NDJSON batches at POST /api/plans:batch,
// SIGKILLs the daemon while appends are in flight, restarts it over the same
// directory, and checks two invariants of the batch WAL record:
//
//  1. every acknowledged batch survives in full (the 201/207 answer is sent
//     only after the single fsync), and
//  2. no batch survives partially — a torn batch record at the WAL tail is
//     truncated wholesale, so each batch's plans are all-or-nothing.
func TestCrashRecoveryBatchE2E(t *testing.T) {
	bin := buildDaemon(t)
	data := filepath.Join(t.TempDir(), "data")
	addr := freeAddr(t)

	wl, err := workload.Generate(workload.Config{Seed: 11, NumPlans: 48, MinOps: 12, MaxOps: 24})
	if err != nil {
		t.Fatal(err)
	}
	texts := wl.Texts()
	ids := make([]string, 0, len(texts))
	for id := range texts {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	// Group the workload into batches of 6 plans each.
	const batchSize = 6
	var batches [][]string
	for i := 0; i < len(ids); i += batchSize {
		batches = append(batches, ids[i:i+batchSize])
	}
	ndjsonBody := func(batch []string) []byte {
		var b bytes.Buffer
		for _, id := range batch {
			line, err := json.Marshal(texts[id])
			if err != nil {
				t.Fatal(err)
			}
			b.Write(line)
			b.WriteByte('\n')
		}
		return b.Bytes()
	}

	cmd, logs := startDaemon(t, bin, addr, data)

	// Stream batches from a goroutine; record which ones were acknowledged.
	var (
		mu    sync.Mutex
		acked int
	)
	uploadsDone := make(chan struct{})
	go func() {
		defer close(uploadsDone)
		for _, batch := range batches {
			resp, err := http.Post("http://"+addr+"/api/plans:batch",
				"application/x-ndjson", bytes.NewReader(ndjsonBody(batch)))
			if err != nil {
				return // the daemon died under us — expected
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				return
			}
			mu.Lock()
			acked++
			mu.Unlock()
		}
	}()
	for {
		mu.Lock()
		n := acked
		mu.Unlock()
		if n >= 2 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL mid-append
		t.Fatal(err)
	}
	cmd.Wait()
	<-uploadsDone
	mu.Lock()
	ackedBatches := acked
	mu.Unlock()
	t.Logf("killed daemon with %d acknowledged batches", ackedBatches)

	// Restart: the WAL may end in a torn batch record, which recovery must
	// drop at the frame boundary without refusing the log.
	cmd2, logs2 := startDaemon(t, bin, addr, data)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	got := listPlanIDs(t, addr)
	have := make(map[string]bool, len(got))
	for _, id := range got {
		have[id] = true
	}

	// Invariant 2: all-or-nothing per batch — no partial batch survives.
	for i, batch := range batches {
		present := 0
		for _, id := range batch {
			if have[id] {
				present++
			}
		}
		if present != 0 && present != len(batch) {
			t.Errorf("batch %d recovered partially: %d of %d plans\nfirst run logs:\n%s\nsecond run logs:\n%s",
				i, present, len(batch), logs.String(), logs2.String())
		}
		// Invariant 1: acknowledged batches survive in full.
		if i < ackedBatches && present != len(batch) {
			t.Errorf("acknowledged batch %d lost after crash: %d of %d plans recovered",
				i, present, len(batch))
		}
	}
	if extra := diff(got, ids); len(extra) > 0 {
		t.Errorf("recovered plans never uploaded: %v", extra)
	}

	// Every recovered plan must render, i.e. no half-written text survived.
	for _, id := range got {
		resp, err := http.Get("http://" + addr + "/api/plans/" + id + "/render")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("recovered plan %s: status %d", id, resp.StatusCode)
		}
	}
}
