package main

import (
	"os"
	"path/filepath"
	"testing"

	"optimatch/internal/fixtures"
	"optimatch/internal/qep"
	"optimatch/internal/store"
)

// writeWorkload materializes the fixture plans as explain files in dir.
func writeWorkload(t *testing.T, dir string) int {
	t.Helper()
	plans := fixtures.All()
	for _, p := range plans {
		path := filepath.Join(dir, p.ID+".exfmt")
		if err := os.WriteFile(path, []byte(qep.Text(p)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return len(plans)
}

// TestLoadDirIdempotentWithStore covers the -load + -data restart path: the
// second boot recovers every plan from the store, so re-seeding the same
// directory must skip each file on core.ErrDuplicatePlan instead of failing
// the boot.
func TestLoadDirIdempotentWithStore(t *testing.T) {
	workload := t.TempDir()
	want := writeWorkload(t, workload)
	dataDir := t.TempDir()

	st, err := store.Open(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	n, err := loadDir(st.Engine(), st, workload)
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("first load ingested %d plans, want %d", n, want)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: recovery already holds every plan; -load must be a no-op.
	st2, err := store.Open(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Engine().NumPlans(); got != want {
		t.Fatalf("recovered %d plans, want %d", got, want)
	}
	n, err = loadDir(st2.Engine(), st2, workload)
	if err != nil {
		t.Fatalf("re-seeding a recovered store failed: %v", err)
	}
	if n != 0 {
		t.Errorf("re-seed ingested %d plans, want 0 (all duplicates)", n)
	}
	if got := st2.Engine().NumPlans(); got != want {
		t.Errorf("plans after re-seed = %d, want %d", got, want)
	}
}

// TestLoadDirWithoutStore pins the in-memory path to the same behavior the
// engine's LoadDir provides.
func TestLoadDirWithoutStore(t *testing.T) {
	workload := t.TempDir()
	want := writeWorkload(t, workload)
	st := (*store.Store)(nil)
	eng, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	n, err := loadDir(eng.Engine(), st, workload)
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("loaded %d plans, want %d", n, want)
	}
}
