//go:build e2e

// End-to-end crash-recovery test: builds the real optimatchd binary, runs
// it against a durable store, SIGKILLs it in the middle of an upload
// stream, restarts it, and checks that every acknowledged mutation
// survived. Kept behind the e2e build tag because it execs a built binary;
// CI runs it as its own step (go test -tags e2e ./cmd/optimatchd).
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"optimatch/internal/kb"
	"optimatch/internal/pattern"
	"optimatch/internal/workload"
)

// buildDaemon compiles optimatchd into a temp dir once per test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "optimatchd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building optimatchd: %v\n%s", err, out)
	}
	return bin
}

// freeAddr grabs an ephemeral localhost port for the daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startDaemon launches the binary and waits until /healthz answers.
func startDaemon(t *testing.T, bin, addr, data string) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	var logs bytes.Buffer
	cmd := exec.Command(bin, "-addr", addr, "-data", data)
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd, &logs
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatalf("daemon never became healthy; logs:\n%s", logs.String())
	return nil, nil
}

func listPlanIDs(t *testing.T, addr string) []string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/api/plans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var plans []struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&plans); err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, len(plans))
	for _, p := range plans {
		ids = append(ids, p.ID)
	}
	sort.Strings(ids)
	return ids
}

func TestCrashRecoveryE2E(t *testing.T) {
	bin := buildDaemon(t)
	data := filepath.Join(t.TempDir(), "data")
	addr := freeAddr(t)

	wl, err := workload.Generate(workload.Config{Seed: 5, NumPlans: 24, MinOps: 12, MaxOps: 24})
	if err != nil {
		t.Fatal(err)
	}
	texts := wl.Texts()
	ids := make([]string, 0, len(texts))
	for id := range texts {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	cmd, logs := startDaemon(t, bin, addr, data)

	// A knowledge-base mutation that must survive the crash.
	entryReq, err := json.Marshal(struct {
		Pattern         *pattern.Pattern    `json:"pattern"`
		Recommendations []kb.Recommendation `json:"recommendations"`
	}{pattern.F(), []kb.Recommendation{{
		Title: "review CSE", Template: "check @TOP shared by @CONSUMER2 and @CONSUMER3",
	}}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/api/kb/entries", "application/json", bytes.NewReader(entryReq))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("kb entry: status %d", resp.StatusCode)
	}

	// Hammer plan uploads from a goroutine and SIGKILL the daemon once a
	// batch has been acknowledged — mid-stream, with uploads in flight.
	var (
		mu    sync.Mutex
		acked []string
	)
	uploadsDone := make(chan struct{})
	go func() {
		defer close(uploadsDone)
		for _, id := range ids {
			resp, err := http.Post("http://"+addr+"/api/plans", "text/plain", strings.NewReader(texts[id]))
			if err != nil {
				return // the daemon died under us — expected
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				return
			}
			mu.Lock()
			acked = append(acked, id)
			mu.Unlock()
		}
	}()
	for {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= 10 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no shutdown hooks
		t.Fatal(err)
	}
	cmd.Wait()
	<-uploadsDone
	mu.Lock()
	want := append([]string(nil), acked...)
	mu.Unlock()
	sort.Strings(want)
	t.Logf("killed daemon with %d acknowledged uploads", len(want))

	// Restart over the same directory: every acknowledged plan and the KB
	// entry must be served again.
	cmd2, logs2 := startDaemon(t, bin, addr, data)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	got := listPlanIDs(t, addr)
	missing := diff(want, got)
	if len(missing) > 0 {
		t.Fatalf("acknowledged plans lost after crash: %v\nfirst run logs:\n%s\nsecond run logs:\n%s",
			missing, logs.String(), logs2.String())
	}
	if extra := diff(got, ids); len(extra) > 0 {
		t.Errorf("recovered plans never uploaded: %v", extra)
	}
	resp, err = http.Get("http://" + addr + "/api/kb")
	if err != nil {
		t.Fatal(err)
	}
	var entries []struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, e := range entries {
		if e.Name == pattern.F().Name {
			found = true
		}
	}
	if !found {
		t.Errorf("kb entry lost after crash; entries = %+v", entries)
	}

	// Compaction over the API, then graceful shutdown via SIGTERM: the
	// daemon must drain and exit zero.
	resp, err = http.Post("http://"+addr+"/api/admin/compact", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact: status %d", resp.StatusCode)
	}
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd2.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("graceful shutdown exit: %v\nlogs:\n%s", err, logs2.String())
		}
	case <-time.After(15 * time.Second):
		cmd2.Process.Kill()
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if !strings.Contains(logs2.String(), "store flushed and closed") {
		t.Errorf("shutdown did not flush the store; logs:\n%s", logs2.String())
	}

	// Third start: compacted state still serves everything.
	cmd3, _ := startDaemon(t, bin, addr, data)
	defer func() {
		cmd3.Process.Kill()
		cmd3.Wait()
	}()
	got3 := listPlanIDs(t, addr)
	if fmt.Sprint(got3) != fmt.Sprint(got) {
		t.Errorf("state changed across compaction + restart:\nbefore %v\nafter  %v", got, got3)
	}
}

// diff returns the elements of a missing from b.
func diff(a, b []string) []string {
	have := make(map[string]bool, len(b))
	for _, s := range b {
		have[s] = true
	}
	var out []string
	for _, s := range a {
		if !have[s] {
			out = append(out, s)
		}
	}
	return out
}
