// Command qepgen generates a synthetic explain-file workload (the stand-in
// for the paper's proprietary IBM customer workload) and writes one .exfmt
// file per plan plus a truth.json with the pattern-injection ground truth.
//
// Usage:
//
//	qepgen -out ./workload -n 1000 -seed 1 -inject-a 150 -inject-b 120 -inject-c 180
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"optimatch/internal/qep"
	"optimatch/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qepgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out     = flag.String("out", "workload", "output directory")
		n       = flag.Int("n", 100, "number of plans")
		seed    = flag.Int64("seed", 1, "generation seed")
		minOps  = flag.Int("min-ops", 60, "minimum operators per plan")
		maxOps  = flag.Int("max-ops", 240, "maximum operators per plan")
		bimodal = flag.Bool("bimodal", false, "add a 500-550 operator mode (paper Section 3.2.2)")
		injA    = flag.Int("inject-a", 0, "plans containing Pattern A (NLJOIN over large inner scan)")
		injB    = flag.Int("inject-b", 0, "plans containing Pattern B (LOJ on both join sides)")
		injC    = flag.Int("inject-c", 0, "plans containing Pattern C (cardinality collapse)")
		injD    = flag.Int("inject-d", 0, "plans containing Pattern D (spilling sort)")
		injG    = flag.Int("inject-g", 0, "plans containing Pattern G (cartesian join)")
		hard    = flag.Float64("hard", 0.35, "fraction of injected instances in grep-hostile rendering")
	)
	flag.Parse()

	w, err := workload.Generate(workload.Config{
		Seed: *seed, NumPlans: *n, MinOps: *minOps, MaxOps: *maxOps, Bimodal: *bimodal,
		InjectA: *injA, InjectB: *injB, InjectC: *injC, InjectD: *injD, InjectG: *injG,
		HardFraction: *hard,
	})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, p := range w.Plans {
		f, err := os.Create(filepath.Join(*out, p.ID+".exfmt"))
		if err != nil {
			return err
		}
		if err := qep.Write(f, p); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	truth, err := os.Create(filepath.Join(*out, "truth.json"))
	if err != nil {
		return err
	}
	defer truth.Close()
	enc := json.NewEncoder(truth)
	enc.SetIndent("", "  ")
	if err := enc.Encode(w.Truth); err != nil {
		return err
	}
	fmt.Printf("wrote %d explain files and truth.json to %s\n", len(w.Plans), *out)
	return nil
}
