package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"optimatch/internal/core"
	"optimatch/internal/pattern"
)

// runQepgen invokes run() with a fresh flag set and the given arguments.
func runQepgen(t *testing.T, args ...string) error {
	t.Helper()
	oldArgs := os.Args
	oldCmd := flag.CommandLine
	defer func() {
		os.Args = oldArgs
		flag.CommandLine = oldCmd
	}()
	flag.CommandLine = flag.NewFlagSet("qepgen", flag.ContinueOnError)
	os.Args = append([]string{"qepgen"}, args...)
	return run()
}

func TestQepgenWritesWorkloadAndTruth(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wl")
	err := runQepgen(t,
		"-out", dir, "-n", "8", "-seed", "3", "-min-ops", "15", "-max-ops", "30",
		"-inject-a", "2", "-inject-d", "1")
	if err != nil {
		t.Fatal(err)
	}

	// The files load back into an engine and the injected patterns match.
	eng := core.New()
	n, err := eng.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("loaded %d plans, want 8", n)
	}
	matches, err := eng.FindPattern(pattern.A())
	if err != nil {
		t.Fatal(err)
	}
	plans := map[string]bool{}
	for _, m := range matches {
		plans[m.Plan.ID] = true
	}
	if len(plans) != 2 {
		t.Errorf("pattern A plans = %d, want 2", len(plans))
	}

	// truth.json agrees.
	data, err := os.ReadFile(filepath.Join(dir, "truth.json"))
	if err != nil {
		t.Fatal(err)
	}
	var truth map[string]map[string]bool
	if err := json.Unmarshal(data, &truth); err != nil {
		t.Fatal(err)
	}
	if len(truth["A"]) != 2 || len(truth["D"]) != 1 {
		t.Errorf("truth = %v", truth)
	}
	for id := range truth["A"] {
		if !plans[id] {
			t.Errorf("truth plan %s not matched", id)
		}
	}
}

func TestQepgenRejectsBadConfig(t *testing.T) {
	if err := runQepgen(t, "-out", t.TempDir(), "-n", "0"); err == nil {
		t.Error("n=0 accepted")
	}
	if err := runQepgen(t, "-out", t.TempDir(), "-n", "2", "-inject-a", "9"); err == nil {
		t.Error("oversized injection accepted")
	}
}
