package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"optimatch/internal/fixtures"
	"optimatch/internal/kb"
	"optimatch/internal/pattern"
	"optimatch/internal/qep"
)

// writeFixtures writes the fixture plans as explain files in a temp dir.
func writeFixtures(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, p := range fixtures.All() {
		if err := os.WriteFile(filepath.Join(dir, p.ID+".exfmt"), []byte(qep.Text(p)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func fixtureFile(t *testing.T, dir, id string) string {
	t.Helper()
	return filepath.Join(dir, id+".exfmt")
}

func TestRunRender(t *testing.T) {
	dir := writeFixtures(t)
	if err := run([]string{"render", fixtureFile(t, dir, "Q2")}); err != nil {
		t.Errorf("render: %v", err)
	}
	if err := run([]string{"render"}); err == nil {
		t.Error("render without file accepted")
	}
	if err := run([]string{"render", filepath.Join(dir, "missing.exfmt")}); err == nil {
		t.Error("render of missing file accepted")
	}
}

func TestRunTransform(t *testing.T) {
	dir := writeFixtures(t)
	if err := run([]string{"transform", fixtureFile(t, dir, "Q2")}); err != nil {
		t.Errorf("transform: %v", err)
	}
	if err := run([]string{"transform", "a", "b"}); err == nil {
		t.Error("transform with two files accepted")
	}
}

func TestRunCompile(t *testing.T) {
	for _, letter := range []string{"a", "b", "c", "d"} {
		if err := run([]string{"compile", "-pattern", letter}); err != nil {
			t.Errorf("compile %s: %v", letter, err)
		}
	}
	if err := run([]string{"compile", "-pattern", ""}); err == nil {
		t.Error("compile without pattern accepted")
	}
	if err := run([]string{"compile", "-pattern", "/no/such/file.json"}); err == nil {
		t.Error("compile with missing pattern file accepted")
	}
}

func TestRunSearchCanonical(t *testing.T) {
	dir := writeFixtures(t)
	if err := run([]string{"search", "-pattern", "a", dir}); err != nil {
		t.Errorf("search: %v", err)
	}
	if err := run([]string{"search", "-pattern", "a"}); err == nil {
		t.Error("search without inputs accepted")
	}
}

func TestRunSearchJSONPattern(t *testing.T) {
	dir := writeFixtures(t)
	p := pattern.D()
	p.Name = "" // exercise the name-from-filename path
	data, err := p.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	pfile := filepath.Join(dir, "sortspill.json")
	if err := os.WriteFile(pfile, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"search", "-pattern", pfile, fixtureFile(t, dir, "Q9")}); err != nil {
		t.Errorf("search with JSON pattern: %v", err)
	}
	// Malformed pattern JSON.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"search", "-pattern", bad, dir}); err == nil {
		t.Error("malformed pattern accepted")
	}
}

func TestRunSPARQL(t *testing.T) {
	dir := writeFixtures(t)
	qfile := filepath.Join(dir, "q.rq")
	query := `PREFIX preduri: <http://optimatch/pred/>
SELECT ?s WHERE { ?s preduri:hasPopType "SORT" }`
	if err := os.WriteFile(qfile, []byte(query), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"sparql", "-query", qfile, dir}); err != nil {
		t.Errorf("sparql: %v", err)
	}
	if err := run([]string{"sparql", dir}); err == nil {
		t.Error("sparql without -query accepted")
	}
}

func TestRunKBCanonicalAndFile(t *testing.T) {
	dir := writeFixtures(t)
	if err := run([]string{"kb", dir}); err != nil {
		t.Errorf("kb canonical: %v", err)
	}
	// Saved KB file.
	kfile := filepath.Join(dir, "kb.json")
	f, err := os.Create(kfile)
	if err != nil {
		t.Fatal(err)
	}
	if err := kb.MustCanonical().Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run([]string{"kb", "-kb", kfile, fixtureFile(t, dir, "Q2")}); err != nil {
		t.Errorf("kb from file: %v", err)
	}
	// Corrupt KB file.
	bad := filepath.Join(dir, "badkb.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"kb", "-kb", bad, dir}); err == nil {
		t.Error("corrupt kb accepted")
	}
}

func TestRunUsageAndErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help: %v", err)
	}
}

func TestResolvePatternJSONName(t *testing.T) {
	dir := t.TempDir()
	p := pattern.A()
	p.Name = ""
	data, _ := json.Marshal(p)
	file := filepath.Join(dir, "mypattern.json")
	if err := os.WriteFile(file, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := resolvePattern(file)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "mypattern" {
		t.Errorf("name = %q, want mypattern", got.Name)
	}
}

func TestRunFromGraph(t *testing.T) {
	dir := t.TempDir()
	gfile := filepath.Join(dir, "snippet.txt")
	if err := os.WriteFile(gfile, []byte(qep.Render(fixtures.Figure1())), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"fromgraph", gfile}); err != nil {
		t.Errorf("fromgraph: %v", err)
	}
	if err := run([]string{"fromgraph"}); err == nil {
		t.Error("fromgraph without file accepted")
	}
	if err := run([]string{"fromgraph", filepath.Join(dir, "nope.txt")}); err == nil {
		t.Error("fromgraph of missing file accepted")
	}
}

func TestRunKBExtended(t *testing.T) {
	dir := writeFixtures(t)
	if err := run([]string{"kb", "-extended", dir}); err != nil {
		t.Errorf("kb -extended: %v", err)
	}
}

func TestRunStats(t *testing.T) {
	dir := writeFixtures(t)
	if err := run([]string{"stats", "-k", "2", dir}); err != nil {
		t.Errorf("stats: %v", err)
	}
	if err := run([]string{"stats", "-k", "9", dir}); err == nil {
		t.Error("k > plans accepted")
	}
	if err := run([]string{"stats"}); err == nil {
		t.Error("stats without inputs accepted")
	}
}
